// End-to-end pipeline executor benchmark: staged vs overlapped build
// scheduling plus content-addressed checkpoint restore.
//
// Shape checks (smoke and full):
//   * staged and overlapped builds produce byte-identical artifacts
//     (digest over the checkpoint serializers covers every artifact),
//   * a checkpoint-restored context is byte-identical to the cold build
//     that populated the cache, with full hit/miss accounting,
//   * an edit-K incremental rebuild restores exactly N-K per-document
//     artifacts, recomputes exactly K, and matches a fresh rebuild
//     byte-for-byte,
//   * the virtual-time schedule simulator is deterministic, overlap
//     never loses to barriers, and both modes agree on total work.
//
// Full mode additionally:
//   * sweeps the schedule simulator over worker counts {1,2,4,8} at the
//     paper reproduction scale and requires the overlapped schedule to
//     beat the staged one by >= 1.5x at 8 workers (the speedup is
//     structural — same per-task cost model, different DAG — so it is
//     reproducible on any host, including single-core CI),
//   * measures real cold-vs-warm wall clock for a checkpointed build
//     and requires the warm rebuild to be >= 5x faster,
//   * writes BENCH_pipeline.json with the sweep, the stage timing
//     breakdown, and the checkpoint traffic.

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "core/checkpoint.hpp"
#include "core/executor.hpp"
#include "json/json.hpp"
#include "util/hash.hpp"

namespace {

using namespace mcqa;
using core::ExecutionMode;
using core::PipelineConfig;
using core::PipelineContext;

bool g_all_pass = true;

void check(const char* name, bool pass) {
  std::printf("shape check: %-58s %s\n", name, pass ? "PASS" : "FAIL");
  g_all_pass = g_all_pass && pass;
}

PipelineConfig scaled_config(double scale, ExecutionMode mode,
                             std::string checkpoint_dir = {}) {
  PipelineConfig cfg = PipelineConfig::paper_scale(scale);
  cfg.execution = mode;
  cfg.checkpoint_dir = std::move(checkpoint_dir);
  return cfg;
}

/// One digest over every build artifact, via the checkpoint serializers:
/// digest equality is byte equality of parsed docs, chunks, both kinds
/// of vector store, the benchmark, and all per-mode traces.
std::uint64_t artifact_digest(const PipelineContext& ctx) {
  const auto& s = ctx.stats();
  core::ParsedArtifact parsed{ctx.parsed(), s.routing, s.parse_failures,
                              s.documents};
  core::BenchmarkArtifact bench{ctx.benchmark(), s.funnel};
  std::uint64_t h = util::fnv1a64(core::serialize_parsed(parsed));
  h = util::hash_combine(h,
                         util::fnv1a64(core::serialize_chunks(ctx.chunks())));
  h = util::hash_combine(h, util::fnv1a64(ctx.chunk_store().save()));
  h = util::hash_combine(h, util::fnv1a64(core::serialize_benchmark(bench)));
  for (int m = 0; m < trace::kTraceModeCount; ++m) {
    const auto mode = static_cast<trace::TraceMode>(m);
    core::TraceArtifact traces{ctx.traces(mode), {}};
    h = util::hash_combine(h, util::fnv1a64(core::serialize_traces(traces)));
    h = util::hash_combine(h, util::fnv1a64(ctx.trace_store(mode).save()));
  }
  return h;
}

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    static std::atomic<int> counter{0};
    path = std::filesystem::temp_directory_path() /
           ("mcqa-bench-e2e-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

void print_stage_timings(const char* label, const core::PipelineStats& s) {
  const auto& t = s.stage_seconds;
  std::printf(
      "%s: total %.3fs  (kb+corpus %.3f, parse %.3f, chunk %.3f, "
      "embed+index %.3f, qgen %.3f, traces %.3f, overlapped %.3f, "
      "exam %.3f)\n",
      label, s.build_seconds, t.kb_corpus, t.parse, t.chunk, t.embed_index,
      t.qgen, t.traces, t.overlapped, t.exam);
}

json::Value timings_json(const core::PipelineStats& s) {
  const auto& t = s.stage_seconds;
  json::Value v = json::Value::object();
  v["total_s"] = s.build_seconds;
  v["kb_corpus_s"] = t.kb_corpus;
  v["parse_s"] = t.parse;
  v["chunk_s"] = t.chunk;
  v["embed_index_s"] = t.embed_index;
  v["qgen_s"] = t.qgen;
  v["traces_s"] = t.traces;
  v["overlapped_s"] = t.overlapped;
  v["exam_s"] = t.exam;
  v["checkpoint_hits"] = s.checkpoint_hits;
  v["checkpoint_misses"] = s.checkpoint_misses;
  v["checkpoint_corrupt"] = s.checkpoint_corrupt;
  v["doc_artifacts_restored"] = s.doc_artifacts_restored;
  v["doc_artifacts_recomputed"] = s.doc_artifacts_recomputed;
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  mcqa::bench::parse_args(argc, argv);
  // Smoke shrinks the corpus; full mode runs the reproduction scale the
  // other benches use, so the timing rows are comparable to them.
  const double scale = bench::smoke() ? 0.008 : 0.025;

  std::printf("Pipeline executor end-to-end (scale %.3f)\n\n", scale);

  // --- byte identity: staged vs overlapped -----------------------------------
  const auto staged =
      std::make_unique<PipelineContext>(scaled_config(scale,
                                                      ExecutionMode::kStaged));
  const std::uint64_t staged_digest = artifact_digest(*staged);
  print_stage_timings("staged build   ", staged->stats());
  const double staged_seconds = staged->stats().build_seconds;
  const auto staged_timings = timings_json(staged->stats());

  const TempDir ckpt_dir;
  const auto cold_cfg = scaled_config(scale, ExecutionMode::kOverlapped,
                                      ckpt_dir.path.string());
  const auto cold = std::make_unique<PipelineContext>(cold_cfg);
  print_stage_timings("overlapped cold", cold->stats());
  check("overlapped artifacts byte-identical to staged",
        artifact_digest(*cold) == staged_digest);
  check("cold build saw only checkpoint misses",
        cold->stats().checkpoint_hits == 0 &&
            cold->stats().checkpoint_misses > 0);
  const double cold_seconds = cold->stats().build_seconds;
  const auto cold_timings = timings_json(cold->stats());

  // --- byte identity: checkpoint-warm restore --------------------------------
  const auto warm = std::make_unique<PipelineContext>(cold_cfg);
  print_stage_timings("checkpoint warm", warm->stats());
  check("checkpoint-restored artifacts byte-identical",
        artifact_digest(*warm) == staged_digest);
  check("warm build saw only checkpoint hits",
        warm->stats().checkpoint_hits > 0 &&
            warm->stats().checkpoint_misses == 0);
  const double warm_seconds = warm->stats().build_seconds;
  const double warm_speedup = warm_seconds > 0.0
                                  ? cold_seconds / warm_seconds
                                  : 0.0;
  const auto warm_timings = timings_json(warm->stats());
  std::printf("\ncheckpoint-warm rebuild: %.3fs vs %.3fs cold (%.1fx)\n\n",
              warm_seconds, cold_seconds, warm_speedup);

  // --- incremental edit-K rebuilds -------------------------------------------
  // Each row edits K documents (revision = K, so every row's edited
  // content is distinct and the restored / recomputed counters stay
  // exact even though the cache accumulates blobs across rows).  The
  // identity row also builds a fresh no-cache reference with the same
  // edits and requires byte-identical artifacts.
  const std::size_t doc_count = warm->stats().documents;
  const std::vector<std::size_t> edit_ks =
      bench::smoke() ? std::vector<std::size_t>{3}
                     : std::vector<std::size_t>{1, 10, 100};
  const std::size_t identity_k = bench::smoke() ? 3 : 10;
  eval::TableWriter edit_table(
      {"Edited K", "Seconds", "Speedup", "Restored", "Recomputed"});
  json::Array edit_rows;
  bool edit_counters_ok = true;
  bool edit_identical = false;
  for (const std::size_t k : edit_ks) {
    auto incr_cfg = cold_cfg;
    incr_cfg.corpus.edits.count = k;
    incr_cfg.corpus.edits.revision = k;
    const auto incr = std::make_unique<PipelineContext>(incr_cfg);
    const auto& st = incr->stats();
    edit_counters_ok = edit_counters_ok &&
                       st.doc_artifacts_restored == doc_count - k &&
                       st.doc_artifacts_recomputed == k &&
                       st.checkpoint_corrupt == 0;
    const double incr_seconds = st.build_seconds;
    const double incr_speedup =
        incr_seconds > 0.0 ? cold_seconds / incr_seconds : 0.0;
    if (k == identity_k) {
      auto ref_cfg = scaled_config(scale, ExecutionMode::kOverlapped);
      ref_cfg.corpus.edits.count = k;
      ref_cfg.corpus.edits.revision = k;
      const auto ref = std::make_unique<PipelineContext>(ref_cfg);
      edit_identical = artifact_digest(*incr) == artifact_digest(*ref);
    }
    edit_table.add_row({std::to_string(k), eval::fmt_acc(incr_seconds),
                        eval::fmt_acc(incr_speedup) + "x",
                        std::to_string(st.doc_artifacts_restored),
                        std::to_string(st.doc_artifacts_recomputed)});
    json::Value row = json::Value::object();
    row["k"] = k;
    row["seconds"] = incr_seconds;
    row["speedup_vs_cold"] = incr_speedup;
    row["doc_artifacts_restored"] = st.doc_artifacts_restored;
    row["doc_artifacts_recomputed"] = st.doc_artifacts_recomputed;
    edit_rows.push_back(std::move(row));
  }
  std::printf("Incremental rebuild after editing K of %zu documents:\n\n%s\n",
              doc_count, edit_table.render().c_str());
  check("edit-K rebuilds restored N-K and recomputed K",
        edit_counters_ok);
  check("edit-K incremental byte-identical to fresh rebuild",
        edit_identical);

  // --- schedule simulator ----------------------------------------------------
  const core::ScheduleModel model = core::schedule_model_from(*warm);
  const std::vector<std::size_t> workers{1, 2, 4, 8};
  eval::TableWriter sim_table(
      {"Workers", "Staged", "Overlapped", "Speedup"});
  json::Array sim_rows;
  bool sim_ordered = true;
  double speedup8 = 0.0;
  for (const std::size_t w : workers) {
    const double st = core::simulated_makespan(model, ExecutionMode::kStaged, w);
    const double ov =
        core::simulated_makespan(model, ExecutionMode::kOverlapped, w);
    sim_ordered = sim_ordered && ov <= st * 1.001;
    const double speedup = ov > 0.0 ? st / ov : 0.0;
    if (w == 8) speedup8 = speedup;
    sim_table.add_row({std::to_string(w), eval::fmt_acc(st),
                       eval::fmt_acc(ov),
                       eval::fmt_acc(speedup) + "x"});
    json::Value row = json::Value::object();
    row["workers"] = w;
    row["staged_makespan"] = st;
    row["overlapped_makespan"] = ov;
    row["speedup"] = speedup;
    sim_rows.push_back(std::move(row));
  }
  std::printf("Simulated build makespan (virtual time units):\n\n%s\n",
              sim_table.render().c_str());

  const double staged1 =
      core::simulated_makespan(model, ExecutionMode::kStaged, 1);
  const double over1 =
      core::simulated_makespan(model, ExecutionMode::kOverlapped, 1);
  check("simulator deterministic across repeated runs",
        core::simulated_makespan(model, ExecutionMode::kStaged, 8) ==
            core::simulated_makespan(model, ExecutionMode::kStaged, 8));
  check("overlap never loses to barriers, W in {1,2,4,8}", sim_ordered);
  check("equal total work at one worker (|ratio-1| < 0.05)",
        staged1 > 0.0 && std::abs(over1 / staged1 - 1.0) < 0.05);

  if (bench::smoke()) {
    std::printf("\n%s\n", g_all_pass ? "ALL CHECKS PASSED" : "FAILURES");
    return g_all_pass ? 0 : 1;
  }

  // Threshold checks run at full scale only: the structural speedup
  // grows with corpus size (more overlap to exploit), and the warm
  // restore amortizes a fixed kb+corpus cost over a bigger build.
  check("overlapped >= 1.5x staged at 8 workers (simulated)",
        speedup8 >= 1.5);
  check("checkpoint-warm rebuild >= 5x faster (wall clock)",
        warm_speedup >= 5.0);

  json::Value report = json::Value::object();
  report["bench"] = "pipeline_e2e";
  bench::add_kernel_metadata(report);
  report["scale"] = scale;
  report["documents"] = warm->stats().documents;
  report["chunks"] = warm->stats().chunks;
  report["questions"] = warm->benchmark().size();
  report["staged_seconds"] = staged_seconds;
  report["overlapped_cold_seconds"] = cold_seconds;
  report["checkpoint_warm_seconds"] = warm_seconds;
  report["checkpoint_warm_speedup"] = warm_speedup;
  report["simulated_speedup_8_workers"] = speedup8;
  report["staged_timings"] = staged_timings;
  report["overlapped_cold_timings"] = cold_timings;
  report["checkpoint_warm_timings"] = warm_timings;
  report["simulated_sweep"] = json::Value(std::move(sim_rows));
  report["edit_k_rows"] = json::Value(std::move(edit_rows));
  report["artifacts_byte_identical"] =
      artifact_digest(*warm) == staged_digest;

  std::ofstream out("BENCH_pipeline.json");
  out << report.dump(2) << "\n";
  std::printf("\nwrote BENCH_pipeline.json\n");
  std::printf("%s\n", g_all_pass ? "ALL CHECKS PASSED" : "FAILURES");
  return g_all_pass ? 0 : 1;
}
