// Figure 6 reproduction: percent accuracy improvement on the NO-MATH
// subset of the Astro exam — trace retrieval vs baseline and vs chunks.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  mcqa::bench::parse_args(argc, argv);
  using namespace mcqa;
  const auto& ctx = bench::shared_context();
  bench::print_scale_banner(ctx);

  const eval::SweepResult sweep =
      bench::run_full_sweep(ctx, ctx.exam_no_math());
  const bench::GainSeries gains = bench::compute_gains(sweep);
  bench::print_gain_figure(
      "Figure 6: % accuracy improvement, Astro exam (no-math subset)",
      gains);

  std::printf("paper reference gains (derived from Table 4):\n");
  for (const auto& row : eval::paper_table4()) {
    std::printf(
        "  %-26s vs baseline %7s   vs chunks %7s\n",
        std::string(row.model).c_str(),
        eval::fmt_pct(eval::pct_improvement(row.accuracy[2], row.accuracy[0]))
            .c_str(),
        eval::fmt_pct(eval::pct_improvement(row.accuracy[2], row.accuracy[1]))
            .c_str());
  }

  // §3.2.2: every model should show positive gains over BOTH conditions.
  std::size_t positive_both = 0;
  for (std::size_t i = 0; i < gains.models.size(); ++i) {
    positive_both +=
        (gains.vs_baseline[i] > 0.0 && gains.vs_chunks[i] > 0.0) ? 1 : 0;
  }
  std::printf("\nshape check: positive gains over both baseline and chunks "
              "for %zu/8 models (paper: 8/8)\n",
              positive_both);
  return 0;
}
