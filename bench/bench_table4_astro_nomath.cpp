// Table 4 reproduction: Astro exam restricted to the no-math subset
// (classified by the simulated GPT-5), Baseline / RAG-Chunks / RAG-RTs.

#include <algorithm>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  mcqa::bench::parse_args(argc, argv);
  using namespace mcqa;
  const auto& ctx = bench::shared_context();
  bench::print_scale_banner(ctx);

  std::printf("no-math subset: %zu of %zu usable questions "
              "(paper: 189 of 335)\n\n",
              ctx.exam_no_math().size(), ctx.exam_all().size());

  const eval::SweepResult sweep =
      bench::run_full_sweep(ctx, ctx.exam_no_math());
  bench::print_exam_table("Table 4: Astro exam, no-math subset", sweep,
                          eval::paper_table4());

  std::size_t rt_best = 0;
  std::size_t beat_gpt4 = 0;
  for (const auto& card : llm::student_registry()) {
    const double base =
        sweep.at(card.spec.name, rag::Condition::kBaseline).value();
    const double chunks =
        sweep.at(card.spec.name, rag::Condition::kChunks).value();
    const double best = sweep.best_trace(card.spec.name).second.value();
    rt_best += (best > base && best > chunks) ? 1 : 0;
    beat_gpt4 += best > llm::kGpt4AstroReference ? 1 : 0;
  }
  std::printf("shape check: RT strictly best for %zu/8 models "
              "(paper: 8/8 on the no-math subset)\n",
              rt_best);
  std::printf("shape check: %zu/8 models beat the ~%.2f GPT-4 reference "
              "with trace retrieval (paper: \"several\")\n",
              beat_gpt4, llm::kGpt4AstroReference);
  return 0;
}
