// Embedding ablation (E1): the allocation-free streaming embedding
// kernel versus the string-materializing reference formulation, and
// bulk (parallel-embed) store construction versus the sequential add()
// loop.
//
// The contract under test is bit-identity: the streaming kernel hashes
// n-grams through an incremental FNV-1a over string views, which folds
// bytes exactly as hashing the materialized n-gram string would, so the
// two paths must agree on every float.  Likewise add_batch embeds in
// parallel but inserts sequentially, so the built index must serialize
// to the same bytes as one grown row by row — at every thread count.
//
// Beyond the google-benchmark sweeps this binary:
//   * verifies streaming == reference over the whole corpus sample,
//   * verifies add_batch index save() blobs == sequential add() blobs
//     for flat / IVF / HNSW,
//   * verifies VectorStore::add_batch query results == sequential at
//     1/2/4/8 threads,
//   * measures the content-hash embedding-cache hit rate on a repeated
//     workload, and
//   * writes BENCH_embed.json so later PRs can track the trajectory.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "chunk/chunker.hpp"
#include "corpus/corpus_builder.hpp"
#include "embed/embedding_cache.hpp"
#include "embed/hashed_embedder.hpp"
#include "index/vector_index.hpp"
#include "index/vector_store.hpp"
#include "json/json.hpp"
#include "parallel/thread_pool.hpp"
#include "parse/adaptive.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace mcqa;

struct EmbedData {
  std::vector<std::string> ids;
  std::vector<std::string> texts;
  std::size_t bytes = 0;
};

/// Self-contained chunk sample: synthetic corpus -> parse -> fixed-size
/// chunks.  Fixed chunking keeps data prep off the embedder under test.
const EmbedData& data() {
  static const EmbedData d = [] {
    EmbedData out;
    const corpus::KnowledgeBase kb = corpus::KnowledgeBase::generate(
        corpus::KbConfig{.facts_per_topic = 24, .seed = 7,
                         .math_fraction = 0.4});
    corpus::CorpusConfig cfg;
    cfg.scale = bench::smoke() ? 0.002 : 0.008;
    const corpus::SyntheticCorpus corpus = build_corpus(kb, cfg);
    const parse::AdaptiveParser parser;
    const chunk::FixedSizeChunker chunker;
    for (const auto& doc : corpus.documents) {
      const parse::ParseOutcome outcome = parser.parse(doc.bytes);
      if (!outcome.ok) continue;
      for (auto& c : chunker.chunk(outcome.document)) {
        out.bytes += c.text.size();
        out.ids.push_back(std::move(c.chunk_id));
        out.texts.push_back(std::move(c.text));
      }
    }
    return out;
  }();
  return d;
}

const embed::HashedNGramEmbedder& embedder() {
  static const embed::HashedNGramEmbedder e = embed::make_biomed_encoder();
  return e;
}

// --- google-benchmark sweeps -------------------------------------------------

void BM_EmbedStrings(benchmark::State& state) {
  const auto& d = data();
  std::size_t i = 0;
  std::int64_t bytes = 0;
  for (auto _ : state) {
    const std::string& t = d.texts[i % d.texts.size()];
    benchmark::DoNotOptimize(embedder().embed_reference(t));
    bytes += static_cast<std::int64_t>(t.size());
    ++i;
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_EmbedStrings);

void BM_EmbedStreaming(benchmark::State& state) {
  const auto& d = data();
  std::size_t i = 0;
  std::int64_t bytes = 0;
  for (auto _ : state) {
    const std::string& t = d.texts[i % d.texts.size()];
    benchmark::DoNotOptimize(embedder().embed(t));
    bytes += static_cast<std::int64_t>(t.size());
    ++i;
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_EmbedStreaming);

void BM_StoreBuildBatch(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto& d = data();
  parallel::ThreadPool pool(threads);
  for (auto _ : state) {
    index::VectorStore store(embedder(), index::IndexKind::kFlat);
    store.add_batch(d.ids, d.texts, pool);
    store.build();
    benchmark::DoNotOptimize(store.size());
  }
  state.counters["chunks/s"] = benchmark::Counter(
      static_cast<double>(d.texts.size()),
      benchmark::Counter::kIsIterationInvariantRate);
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_StoreBuildBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// --- identity checks ---------------------------------------------------------

/// Streaming embed() must return the same bits as embed_reference() for
/// every sampled chunk.
bool streaming_matches_reference() {
  for (const auto& t : data().texts) {
    if (embedder().embed(t) != embedder().embed_reference(t)) return false;
  }
  return true;
}

/// add_batch must build the same index bytes as a sequential add() loop
/// for every index kind (save() blobs compared after build()).
bool batch_blobs_match_sequential(std::vector<std::string>* kinds_checked) {
  const std::vector<embed::Vector> vectors =
      embedder().embed_batch(data().texts);
  const std::size_t dim = embedder().dim();

  const auto blob_pair = [&](auto make) {
    auto seq = make();
    for (const auto& v : vectors) seq.add(v);
    seq.build();
    auto batch = make();
    batch.add_batch(vectors);
    batch.build();
    return std::pair<std::string, std::string>(seq.save(), batch.save());
  };

  bool ok = true;
  {
    const auto [seq, batch] =
        blob_pair([&] { return index::FlatIndex(dim); });
    ok = ok && seq == batch;
    kinds_checked->push_back("flat");
  }
  {
    const auto [seq, batch] = blob_pair([&] { return index::IvfIndex(dim); });
    ok = ok && seq == batch;
    kinds_checked->push_back("ivf");
  }
  {
    const auto [seq, batch] = blob_pair([&] { return index::HnswIndex(dim); });
    ok = ok && seq == batch;
    kinds_checked->push_back("hnsw");
  }
  return ok;
}

/// VectorStore::add_batch must answer queries identically to a store
/// grown with sequential add(), at every pool width.
bool store_matches_sequential() {
  const auto& d = data();
  index::VectorStore want(embedder(), index::IndexKind::kFlat);
  for (std::size_t i = 0; i < d.texts.size(); ++i) {
    want.add(d.ids[i], d.texts[i]);
  }
  want.build();
  const std::size_t n_queries = std::min<std::size_t>(32, d.texts.size());

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    parallel::ThreadPool pool(threads);
    index::VectorStore got(embedder(), index::IndexKind::kFlat);
    got.add_batch(d.ids, d.texts, pool);
    got.build();
    if (got.size() != want.size()) return false;
    for (std::size_t i = 0; i < n_queries; ++i) {
      const auto a = want.query(d.texts[i], 5);
      const auto b = got.query(d.texts[i], 5);
      if (a.size() != b.size()) return false;
      for (std::size_t j = 0; j < a.size(); ++j) {
        if (a[j].id != b[j].id || a[j].score != b[j].score) return false;
      }
    }
  }
  return true;
}

// --- measured sections -------------------------------------------------------

struct Throughput {
  double mb_s_strings = 0.0;
  double mb_s_streaming = 0.0;
  double speedup = 0.0;
};

Throughput measure_embed_throughput(std::size_t repeats) {
  const auto& d = data();
  Throughput t;
  const double mb =
      static_cast<double>(d.bytes * repeats) / (1024.0 * 1024.0);
  {
    util::Stopwatch sw;
    for (std::size_t r = 0; r < repeats; ++r) {
      for (const auto& text : d.texts) {
        benchmark::DoNotOptimize(embedder().embed_reference(text));
      }
    }
    t.mb_s_strings = mb / sw.seconds();
  }
  {
    util::Stopwatch sw;
    for (std::size_t r = 0; r < repeats; ++r) {
      for (const auto& text : d.texts) {
        benchmark::DoNotOptimize(embedder().embed(text));
      }
    }
    t.mb_s_streaming = mb / sw.seconds();
  }
  t.speedup = t.mb_s_streaming / t.mb_s_strings;
  return t;
}

struct BuildTiming {
  std::size_t threads = 0;
  double seconds = 0.0;
};

double measure_sequential_build() {
  const auto& d = data();
  util::Stopwatch sw;
  index::VectorStore store(embedder(), index::IndexKind::kFlat);
  for (std::size_t i = 0; i < d.texts.size(); ++i) {
    store.add(d.ids[i], d.texts[i]);
  }
  store.build();
  benchmark::DoNotOptimize(store.size());
  return sw.seconds();
}

std::vector<BuildTiming> measure_batch_builds() {
  const auto& d = data();
  std::vector<BuildTiming> out;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    parallel::ThreadPool pool(threads);
    util::Stopwatch sw;
    index::VectorStore store(embedder(), index::IndexKind::kFlat);
    store.add_batch(d.ids, d.texts, pool);
    store.build();
    benchmark::DoNotOptimize(store.size());
    out.push_back(BuildTiming{threads, sw.seconds()});
  }
  return out;
}

struct CacheResult {
  embed::EmbeddingCacheStats stats;
  bool identical = true;
};

/// Embed the corpus twice through the cache: the second pass must be
/// all hits, and every cached vector must equal the base embedder's.
CacheResult measure_cache() {
  CacheResult r;
  const embed::CachingEmbedder cache(embedder());
  for (std::size_t pass = 0; pass < 2; ++pass) {
    for (const auto& t : data().texts) {
      if (cache.embed(t) != embedder().embed(t)) r.identical = false;
    }
  }
  r.stats = cache.stats();
  return r;
}

int run_checks_and_report(bool smoke) {
  std::vector<std::string> kinds;
  const bool id_stream = streaming_matches_reference();
  const bool id_blobs = batch_blobs_match_sequential(&kinds);
  const bool id_store = store_matches_sequential();
  const CacheResult cache = measure_cache();
  std::printf(
      "shape check: streaming embed() == embed_reference() for %zu chunks: "
      "%s\n",
      data().texts.size(), id_stream ? "PASS" : "FAIL");
  std::printf(
      "shape check: add_batch save() blobs == sequential (flat/ivf/hnsw): "
      "%s\n",
      id_blobs ? "PASS" : "FAIL");
  std::printf(
      "shape check: VectorStore::add_batch == sequential add at 1/2/4/8 "
      "threads: %s\n",
      id_store ? "PASS" : "FAIL");
  std::printf(
      "shape check: cache returns base-embedder bits, second pass all "
      "hits: %s (hit rate %.3f)\n",
      cache.identical && cache.stats.hits >= data().texts.size() ? "PASS"
                                                                 : "FAIL",
      cache.stats.hit_rate());

  const bool all_pass = id_stream && id_blobs && id_store &&
                        cache.identical &&
                        cache.stats.hits >= data().texts.size();
  if (smoke) return all_pass ? 0 : 1;

  const Throughput t = measure_embed_throughput(/*repeats=*/4);
  const double seq_seconds = measure_sequential_build();
  const std::vector<BuildTiming> builds = measure_batch_builds();

  std::printf("\nembed throughput: strings %.1f MB/s, streaming %.1f MB/s "
              "(%.2fx)\n",
              t.mb_s_strings, t.mb_s_streaming, t.speedup);
  std::printf("store build (%zu chunks): sequential %.3fs",
              data().texts.size(), seq_seconds);
  for (const auto& b : builds) {
    std::printf(", batch@%zu %.3fs", b.threads, b.seconds);
  }
  std::printf("\n");

  json::Value report = json::Value::object();
  report["bench"] = "embed_ablation";
  bench::add_kernel_metadata(report);
  report["chunks"] = data().texts.size();
  report["bytes"] = data().bytes;
  report["dim"] = embedder().dim();
  {
    json::Value e = json::Value::object();
    e["mb_s_strings"] = t.mb_s_strings;
    e["mb_s_streaming"] = t.mb_s_streaming;
    e["speedup"] = t.speedup;
    e["streaming_matches_reference"] = id_stream;
    report["embed"] = std::move(e);
  }
  {
    json::Value b = json::Value::object();
    b["seconds_sequential"] = seq_seconds;
    json::Array batch;
    for (const auto& bt : builds) {
      json::Value entry = json::Value::object();
      entry["threads"] = bt.threads;
      entry["seconds"] = bt.seconds;
      entry["chunks_s"] =
          static_cast<double>(data().texts.size()) / bt.seconds;
      batch.push_back(std::move(entry));
    }
    b["batch"] = json::Value(std::move(batch));
    b["batch_matches_sequential"] = id_store;
    b["index_blobs_match"] = id_blobs;
    report["store_build"] = std::move(b);
  }
  {
    json::Value c = json::Value::object();
    c["hits"] = cache.stats.hits;
    c["misses"] = cache.stats.misses;
    c["entries"] = cache.stats.entries;
    c["hit_rate"] = cache.stats.hit_rate();
    c["identical_to_base"] = cache.identical;
    report["cache"] = std::move(c);
  }
  std::ofstream out("BENCH_embed.json");
  out << report.dump(2) << "\n";
  std::printf("wrote BENCH_embed.json\n");
  return all_pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = mcqa::bench::parse_args(&argc, argv);
  std::printf(
      "Embedding ablation (E1): streaming allocation-free embed kernel "
      "vs string-materializing reference over %zu chunks (%zu bytes), "
      "plus bulk store construction vs thread count.\n\n",
      data().texts.size(), data().bytes);
  if (smoke) return run_checks_and_report(/*smoke=*/true);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf("\n");
  return run_checks_and_report(/*smoke=*/false);
}
