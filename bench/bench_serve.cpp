// Online serving engine benchmark: the offline pipeline's stores turned
// into a deterministic query service (serve/engine.hpp).  Verifies the
// serving-layer contracts as shape checks and, in full mode, sweeps
//   * shard count x batch cutoff at fixed load (scan vs merge vs wait),
//   * offered load vs shed/expiry (admission control past capacity),
//   * worker slots vs tail latency (p99 monotone nonincreasing),
// writing BENCH_serve.json so later PRs can track the trajectory.
//
// Shape checks (smoke and full):
//   * sharded scatter-gather top-k bit-identical to the unsharded store
//     for shard counts {1,2,4,8} (chunk store and a trace store),
//   * served tasks fieldwise-identical to RagPipeline::prepare,
//   * statuses/latencies/metrics identical across runs and pool thread
//     counts {1,4},
//   * p99 latency monotone nonincreasing as workers grow at fixed load,
//   * shed count zero under light load, positive past capacity.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "json/json.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/engine.hpp"
#include "serve/metrics.hpp"
#include "serve/sharded_store.hpp"

namespace {

using namespace mcqa;

bool g_all_pass = true;

void check(const char* name, bool pass) {
  std::printf("shape check: %-58s %s\n", name, pass ? "PASS" : "FAIL");
  g_all_pass = g_all_pass && pass;
}

rag::RetrievalStores context_stores(const core::PipelineContext& ctx) {
  rag::RetrievalStores stores;
  stores.chunks = &ctx.chunk_store();
  for (int m = 0; m < trace::kTraceModeCount; ++m) {
    stores.traces[static_cast<std::size_t>(m)] =
        &ctx.trace_store(static_cast<trace::TraceMode>(m));
  }
  return stores;
}

bool same_hits(const std::vector<index::Hit>& a,
               const std::vector<index::Hit>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].text != b[i].text ||
        a[i].score != b[i].score) {
      return false;
    }
  }
  return true;
}

bool same_task(const llm::McqTask& a, const llm::McqTask& b) {
  return a.id == b.id && a.stem == b.stem && a.options == b.options &&
         a.context == b.context && a.correct_index == b.correct_index &&
         a.fact == b.fact && a.has_fact == b.has_fact && a.math == b.math &&
         a.fact_importance == b.fact_importance &&
         a.ambiguity == b.ambiguity && a.exam_item == b.exam_item &&
         a.context_is_trace == b.context_is_trace &&
         a.context_is_terse == b.context_is_terse &&
         a.context_has_fact == b.context_has_fact &&
         a.context_saliency == b.context_saliency &&
         a.context_has_elimination == b.context_has_elimination &&
         a.context_has_worked_math == b.context_has_worked_math &&
         a.context_misleading_options == b.context_misleading_options &&
         a.context_mislead_strength == b.context_mislead_strength;
}

/// Sharded top-k must be bit-identical to the unsharded store for every
/// shard count — over real queries (record stems / renderings).
void check_shard_exactness(const core::PipelineContext& ctx,
                           const std::vector<qgen::McqRecord>& records) {
  const std::size_t queries = bench::smoke() ? 12 : 48;
  bool chunks_ok = true;
  bool traces_ok = true;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    const serve::ShardedStore chunk_shards(ctx.chunk_store(), shards);
    const serve::ShardedStore trace_shards(
        ctx.trace_store(trace::TraceMode::kFocused), shards);
    for (std::size_t i = 0; i < std::min(queries, records.size()); ++i) {
      const auto& r = records[i];
      chunks_ok = chunks_ok &&
                  same_hits(chunk_shards.query(r.stem, 10),
                            ctx.chunk_store().query(r.stem, 10));
      traces_ok =
          traces_ok &&
          same_hits(trace_shards.query(r.question, 3),
                    ctx.trace_store(trace::TraceMode::kFocused)
                        .query(r.question, 3));
    }
  }
  check("sharded == unsharded top-k, chunk store, S in {1,2,4,8}",
        chunks_ok);
  check("sharded == unsharded top-k, trace store, S in {1,2,4,8}",
        traces_ok);
}

serve::WorkloadConfig base_workload(std::size_t records) {
  serve::WorkloadConfig wl;
  wl.requests = bench::smoke() ? 160 : 512;
  wl.offered_qps = 400.0;
  (void)records;
  return wl;
}

/// Served tasks must be fieldwise-identical to the offline prepare().
void check_task_identity(const core::PipelineContext& ctx,
                         const rag::RetrievalStores& stores,
                         const std::vector<qgen::McqRecord>& records,
                         const llm::ModelSpec& spec) {
  serve::ServeConfig cfg;
  cfg.deadline_ms = 1e7;  // relaxed: every request completes
  cfg.queue_capacity = 1 << 20;
  const serve::QueryEngine engine(ctx.rag(), stores, spec, cfg);
  serve::WorkloadConfig wl = base_workload(records.size());
  wl.requests = bench::smoke() ? 64 : 256;
  const auto requests = serve::synth_workload(wl, records.size());
  serve::ServerMetrics metrics;
  const auto results = engine.serve(records, requests, &metrics);
  bool ok = metrics.completed == requests.size();
  for (std::size_t i = 0; ok && i < results.size(); ++i) {
    ok = results[i].status == serve::RequestStatus::kOk &&
         same_task(results[i].task,
                   ctx.rag().prepare(records[requests[i].record],
                                     requests[i].condition, spec));
  }
  check("served tasks fieldwise == RagPipeline::prepare", ok);
}

/// Same statuses, latencies (bitwise) and metrics across runs and pool
/// thread counts.
void check_determinism(const core::PipelineContext& ctx,
                       const rag::RetrievalStores& stores,
                       const std::vector<qgen::McqRecord>& records,
                       const llm::ModelSpec& spec) {
  serve::ServeConfig cfg;
  cfg.deadline_ms = 30.0;
  cfg.transient_failure_rate = 0.15;
  cfg.max_retries = 2;
  cfg.queue_capacity = 32;
  const serve::QueryEngine engine(ctx.rag(), stores, spec, cfg);
  serve::WorkloadConfig wl = base_workload(records.size());
  wl.offered_qps = 2000.0;  // stressed: sheds, expiries and retries
  const auto requests = serve::synth_workload(wl, records.size());

  parallel::ThreadPool pool_1(1);
  parallel::ThreadPool pool_4(4);
  serve::ServerMetrics m_a, m_b;
  const auto a = engine.serve(records, requests, pool_1, &m_a);
  const auto b = engine.serve(records, requests, pool_4, &m_b);
  bool ok = a.size() == b.size();
  for (std::size_t i = 0; ok && i < a.size(); ++i) {
    ok = a[i].status == b[i].status && a[i].attempts == b[i].attempts &&
         a[i].latency_ms == b[i].latency_ms &&
         a[i].enqueue_wait_ms == b[i].enqueue_wait_ms &&
         (a[i].status != serve::RequestStatus::kOk ||
          same_task(a[i].task, b[i].task));
  }
  ok = ok && m_a.completed == m_b.completed &&
       m_a.rejected == m_b.rejected && m_a.expired == m_b.expired &&
       m_a.failed == m_b.failed && m_a.retries == m_b.retries &&
       m_a.batches == m_b.batches &&
       m_a.lane_serviced == m_b.lane_serviced &&
       m_a.latency.p99() == m_b.latency.p99() &&
       m_a.makespan_ms == m_b.makespan_ms;
  check("serve identical across runs and pool threads {1,4}", ok);
}

/// Worker sweep at fixed load: with no transient failures the serviced
/// sample set is worker-independent, so p99 must be monotone
/// nonincreasing as slots are added.
std::vector<serve::ServerMetrics> worker_sweep(
    const core::PipelineContext& ctx, const rag::RetrievalStores& stores,
    const std::vector<qgen::McqRecord>& records, const llm::ModelSpec& spec,
    const std::vector<std::size_t>& workers) {
  serve::WorkloadConfig wl = base_workload(records.size());
  wl.offered_qps = 1200.0;  // saturates one worker, relaxes with more
  const auto requests = serve::synth_workload(wl, records.size());
  std::vector<serve::ServerMetrics> sweep;
  for (const std::size_t w : workers) {
    serve::ServeConfig cfg;
    cfg.workers = w;
    cfg.transient_failure_rate = 0.0;
    cfg.max_retries = 0;
    cfg.queue_capacity = wl.requests;  // nothing sheds at any width
    cfg.deadline_ms = 1e7;             // nothing expires either
    const serve::QueryEngine engine(ctx.rag(), stores, spec, cfg);
    serve::ServerMetrics metrics;
    engine.serve(records, requests, &metrics);
    sweep.push_back(std::move(metrics));
  }
  return sweep;
}

void check_worker_monotonicity(
    const std::vector<std::size_t>& workers,
    const std::vector<serve::ServerMetrics>& sweep) {
  bool monotone = true;
  bool all_served = true;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    if (i > 0) {
      monotone =
          monotone && sweep[i].latency.p99() <= sweep[i - 1].latency.p99();
    }
    all_served = all_served && sweep[i].rejected == 0 &&
                 sweep[i].completed == sweep[i].offered;
  }
  (void)workers;
  check("p99 monotone nonincreasing over workers {1,2,4,8}", monotone);
  check("worker sweep sheds nothing (sample sets comparable)", all_served);
}

/// Admission control: zero shed under light load, positive shed past
/// configured capacity.
void check_shedding(const core::PipelineContext& ctx,
                    const rag::RetrievalStores& stores,
                    const std::vector<qgen::McqRecord>& records,
                    const llm::ModelSpec& spec) {
  serve::WorkloadConfig wl = base_workload(records.size());
  wl.requests = bench::smoke() ? 128 : 384;

  serve::ServeConfig light;
  light.queue_capacity = 64;
  const serve::QueryEngine light_engine(ctx.rag(), stores, spec, light);
  wl.offered_qps = 100.0;
  serve::ServerMetrics m_light;
  light_engine.serve(records, serve::synth_workload(wl, records.size()),
                     &m_light);
  check("no shed under light load", m_light.rejected == 0);

  serve::ServeConfig heavy;
  heavy.queue_capacity = 16;
  heavy.workers = 1;
  const serve::QueryEngine heavy_engine(ctx.rag(), stores, spec, heavy);
  wl.offered_qps = 20000.0;
  serve::ServerMetrics m_heavy;
  heavy_engine.serve(records, serve::synth_workload(wl, records.size()),
                     &m_heavy);
  check("shed > 0 past configured capacity", m_heavy.rejected > 0);
  check("terminal statuses partition offered requests",
        m_heavy.completed + m_heavy.rejected + m_heavy.expired +
                m_heavy.failed ==
            m_heavy.offered);
}

json::Value metrics_row(const serve::ServerMetrics& m) {
  json::Value v = json::Value::object();
  v["completed"] = m.completed;
  v["rejected"] = m.rejected;
  v["expired"] = m.expired;
  v["p50_ms"] = m.latency.p50();
  v["p99_ms"] = m.latency.p99();
  v["mean_batch_fill"] = m.mean_batch_fill();
  v["throughput_qps"] = m.throughput_qps();
  v["utilization"] = m.utilization();
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  mcqa::bench::parse_args(argc, argv);
  const auto& ctx = bench::shared_context();
  bench::print_scale_banner(ctx);

  const auto records = bench::smoke_subset(ctx.benchmark());
  const rag::RetrievalStores stores = context_stores(ctx);
  const llm::ModelSpec spec =
      llm::student_card("Llama-3.1-8B-Instruct").spec;

  check_shard_exactness(ctx, records);
  check_task_identity(ctx, stores, records, spec);
  check_determinism(ctx, stores, records, spec);
  const std::vector<std::size_t> workers{1, 2, 4, 8};
  const auto sweep = worker_sweep(ctx, stores, records, spec, workers);
  check_worker_monotonicity(workers, sweep);
  check_shedding(ctx, stores, records, spec);

  if (bench::smoke()) return g_all_pass ? 0 : 1;

  json::Value report = json::Value::object();
  report["bench"] = "serve";
  report["records"] = records.size();
  report["chunk_rows"] = ctx.chunk_store().size();

  // Worker sweep table (the monotonicity data).
  std::printf("\nWorker sweep (1200 qps offered, batch<=8 or 4ms):\n\n");
  eval::TableWriter worker_table(
      {"Workers", "p50 latency", "p99 latency", "Throughput", "Utilization"});
  json::Array worker_rows;
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const auto& m = sweep[i];
    worker_table.add_row({std::to_string(workers[i]),
                          eval::fmt_acc(m.latency.p50()) + " ms",
                          eval::fmt_acc(m.latency.p99()) + " ms",
                          eval::fmt_acc(m.throughput_qps()) + " qps",
                          eval::fmt_pct(100.0 * m.utilization())});
    json::Value row = metrics_row(m);
    row["workers"] = workers[i];
    worker_rows.push_back(std::move(row));
  }
  std::printf("%s\n", worker_table.render().c_str());
  report["worker_sweep"] = json::Value(std::move(worker_rows));

  // Shards x batch cutoff at fixed load: scan shrinks with shards,
  // merge grows, and the cutoff trades batching wait against fill.
  std::printf("Shard x cutoff sweep (400 qps offered, 512 requests):\n\n");
  eval::TableWriter shard_table(
      {"Shards", "Cutoff", "p50 latency", "p99 latency", "Mean fill"});
  json::Array shard_rows;
  serve::WorkloadConfig wl = base_workload(records.size());
  const auto requests = serve::synth_workload(wl, records.size());
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    for (const double cutoff : {1.0, 4.0, 16.0}) {
      serve::ServeConfig cfg;
      cfg.shards = shards;
      cfg.batch_cutoff_ms = cutoff;
      cfg.queue_capacity = wl.requests;
      const serve::QueryEngine engine(ctx.rag(), stores, spec, cfg);
      serve::ServerMetrics m;
      engine.serve(records, requests, &m);
      shard_table.add_row({std::to_string(shards), eval::fmt_acc(cutoff),
                           eval::fmt_acc(m.latency.p50()) + " ms",
                           eval::fmt_acc(m.latency.p99()) + " ms",
                           eval::fmt_acc(m.mean_batch_fill())});
      json::Value row = metrics_row(m);
      row["shards"] = shards;
      row["cutoff_ms"] = cutoff;
      shard_rows.push_back(std::move(row));
    }
  }
  std::printf("%s\n", shard_table.render().c_str());
  report["shard_cutoff_sweep"] = json::Value(std::move(shard_rows));

  // Offered-load sweep: completion holds, then admission sheds.
  std::printf("Offered-load sweep (capacity 64, 4 workers):\n\n");
  eval::TableWriter load_table(
      {"Offered qps", "Completed", "Rejected", "Expired", "p99 latency"});
  json::Array load_rows;
  for (const double qps : {100.0, 400.0, 1600.0, 6400.0, 25600.0}) {
    serve::ServeConfig cfg;
    cfg.deadline_ms = 250.0;
    const serve::QueryEngine engine(ctx.rag(), stores, spec, cfg);
    serve::WorkloadConfig load_wl = base_workload(records.size());
    load_wl.offered_qps = qps;
    serve::ServerMetrics m;
    engine.serve(records, serve::synth_workload(load_wl, records.size()),
                 &m);
    load_table.add_row({eval::fmt_acc(qps), std::to_string(m.completed),
                        std::to_string(m.rejected),
                        std::to_string(m.expired),
                        eval::fmt_acc(m.latency.p99()) + " ms"});
    json::Value row = metrics_row(m);
    row["offered_qps"] = qps;
    load_rows.push_back(std::move(row));
  }
  std::printf("%s\n", load_table.render().c_str());
  report["load_sweep"] = json::Value(std::move(load_rows));

  std::ofstream out("BENCH_serve.json");
  out << report.dump(2) << "\n";
  std::printf(
      "Reading: sharding trades scan time against merge overhead, the "
      "cutoff trades batching wait against fill, and admission control "
      "converts overload into explicit sheds instead of unbounded "
      "queueing — all on a simulated clock, so every number above is "
      "bit-reproducible.\n");
  std::printf("wrote BENCH_serve.json\n");
  return g_all_pass ? 0 : 1;
}
