// Online serving engine benchmark: the offline pipeline's stores turned
// into a deterministic query service (serve/engine.hpp).  Verifies the
// serving-layer contracts as shape checks and, in full mode, sweeps
//   * shard count x batch cutoff at fixed load (scan vs merge vs wait),
//   * offered load vs shed/expiry (admission control past capacity),
//   * worker slots vs tail latency (p99 monotone nonincreasing),
// writing BENCH_serve.json so later PRs can track the trajectory.
//
// Shape checks (smoke and full):
//   * sharded scatter-gather top-k bit-identical to the unsharded store
//     for shard counts {1,2,4,8} (chunk store and a trace store),
//   * served tasks fieldwise-identical to RagPipeline::prepare,
//   * statuses/latencies/metrics identical across runs and pool thread
//     counts {1,4},
//   * p99 latency monotone nonincreasing as workers grow at fixed load,
//   * shed count zero under light load, positive past capacity.
//
// Live-tier shape checks (smoke and full; DESIGN.md §15):
//   * every published LiveStore epoch bit-identical to a from-scratch
//     rebuild of its live rows, queried from 1/2/8 concurrent readers,
//   * hedged p99.9 <= 0.5x unhedged under injected replica slowdown,
//     with hedges accounted exactly once (wins + cancels + failed),
//   * interactive-lane p99 <= 1.1x the uncontended run under a
//     saturating batch-class flood (reserved slots + capped admission).
// Full mode adds hedge/lane sweeps and a sustained rolling-update run
// (staleness: pending mutations, epoch age, compactions) to the JSON.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "json/json.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/engine.hpp"
#include "serve/live_store.hpp"
#include "serve/metrics.hpp"
#include "serve/sharded_store.hpp"

namespace {

using namespace mcqa;

bool g_all_pass = true;

void check(const char* name, bool pass) {
  std::printf("shape check: %-58s %s\n", name, pass ? "PASS" : "FAIL");
  g_all_pass = g_all_pass && pass;
}

rag::RetrievalStores context_stores(const core::PipelineContext& ctx) {
  rag::RetrievalStores stores;
  stores.chunks = &ctx.chunk_store();
  for (int m = 0; m < trace::kTraceModeCount; ++m) {
    stores.traces[static_cast<std::size_t>(m)] =
        &ctx.trace_store(static_cast<trace::TraceMode>(m));
  }
  return stores;
}

bool same_hits(const std::vector<index::Hit>& a,
               const std::vector<index::Hit>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].text != b[i].text ||
        a[i].score != b[i].score) {
      return false;
    }
  }
  return true;
}

bool same_task(const llm::McqTask& a, const llm::McqTask& b) {
  return a.id == b.id && a.stem == b.stem && a.options == b.options &&
         a.context == b.context && a.correct_index == b.correct_index &&
         a.fact == b.fact && a.has_fact == b.has_fact && a.math == b.math &&
         a.fact_importance == b.fact_importance &&
         a.ambiguity == b.ambiguity && a.exam_item == b.exam_item &&
         a.context_is_trace == b.context_is_trace &&
         a.context_is_terse == b.context_is_terse &&
         a.context_has_fact == b.context_has_fact &&
         a.context_saliency == b.context_saliency &&
         a.context_has_elimination == b.context_has_elimination &&
         a.context_has_worked_math == b.context_has_worked_math &&
         a.context_misleading_options == b.context_misleading_options &&
         a.context_mislead_strength == b.context_mislead_strength;
}

/// Sharded top-k must be bit-identical to the unsharded store for every
/// shard count — over real queries (record stems / renderings).
void check_shard_exactness(const core::PipelineContext& ctx,
                           const std::vector<qgen::McqRecord>& records) {
  const std::size_t queries = bench::smoke() ? 12 : 48;
  bool chunks_ok = true;
  bool traces_ok = true;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    const serve::ShardedStore chunk_shards(ctx.chunk_store(), shards);
    const serve::ShardedStore trace_shards(
        ctx.trace_store(trace::TraceMode::kFocused), shards);
    for (std::size_t i = 0; i < std::min(queries, records.size()); ++i) {
      const auto& r = records[i];
      chunks_ok = chunks_ok &&
                  same_hits(chunk_shards.query(r.stem, 10),
                            ctx.chunk_store().query(r.stem, 10));
      traces_ok =
          traces_ok &&
          same_hits(trace_shards.query(r.question, 3),
                    ctx.trace_store(trace::TraceMode::kFocused)
                        .query(r.question, 3));
    }
  }
  check("sharded == unsharded top-k, chunk store, S in {1,2,4,8}",
        chunks_ok);
  check("sharded == unsharded top-k, trace store, S in {1,2,4,8}",
        traces_ok);
}

serve::WorkloadConfig base_workload(std::size_t records) {
  serve::WorkloadConfig wl;
  wl.requests = bench::smoke() ? 160 : 512;
  wl.offered_qps = 400.0;
  (void)records;
  return wl;
}

/// Served tasks must be fieldwise-identical to the offline prepare().
void check_task_identity(const core::PipelineContext& ctx,
                         const rag::RetrievalStores& stores,
                         const std::vector<qgen::McqRecord>& records,
                         const llm::ModelSpec& spec) {
  serve::ServeConfig cfg;
  cfg.deadline_ms = 1e7;  // relaxed: every request completes
  cfg.queue_capacity = 1 << 20;
  const serve::QueryEngine engine(ctx.rag(), stores, spec, cfg);
  serve::WorkloadConfig wl = base_workload(records.size());
  wl.requests = bench::smoke() ? 64 : 256;
  const auto requests = serve::synth_workload(wl, records.size());
  serve::ServerMetrics metrics;
  const auto results = engine.serve(records, requests, &metrics);
  bool ok = metrics.completed == requests.size();
  for (std::size_t i = 0; ok && i < results.size(); ++i) {
    ok = results[i].status == serve::RequestStatus::kOk &&
         same_task(results[i].task,
                   ctx.rag().prepare(records[requests[i].record],
                                     requests[i].condition, spec));
  }
  check("served tasks fieldwise == RagPipeline::prepare", ok);
}

/// Same statuses, latencies (bitwise) and metrics across runs and pool
/// thread counts.
void check_determinism(const core::PipelineContext& ctx,
                       const rag::RetrievalStores& stores,
                       const std::vector<qgen::McqRecord>& records,
                       const llm::ModelSpec& spec) {
  serve::ServeConfig cfg;
  cfg.deadline_ms = 30.0;
  cfg.transient_failure_rate = 0.15;
  cfg.max_retries = 2;
  cfg.queue_capacity = 32;
  const serve::QueryEngine engine(ctx.rag(), stores, spec, cfg);
  serve::WorkloadConfig wl = base_workload(records.size());
  wl.offered_qps = 2000.0;  // stressed: sheds, expiries and retries
  const auto requests = serve::synth_workload(wl, records.size());

  parallel::ThreadPool pool_1(1);
  parallel::ThreadPool pool_4(4);
  serve::ServerMetrics m_a, m_b;
  const auto a = engine.serve(records, requests, pool_1, &m_a);
  const auto b = engine.serve(records, requests, pool_4, &m_b);
  bool ok = a.size() == b.size();
  for (std::size_t i = 0; ok && i < a.size(); ++i) {
    ok = a[i].status == b[i].status && a[i].attempts == b[i].attempts &&
         a[i].latency_ms == b[i].latency_ms &&
         a[i].enqueue_wait_ms == b[i].enqueue_wait_ms &&
         (a[i].status != serve::RequestStatus::kOk ||
          same_task(a[i].task, b[i].task));
  }
  ok = ok && m_a.completed == m_b.completed &&
       m_a.rejected == m_b.rejected && m_a.expired == m_b.expired &&
       m_a.failed == m_b.failed && m_a.retries == m_b.retries &&
       m_a.batches == m_b.batches &&
       m_a.lane_serviced == m_b.lane_serviced &&
       m_a.latency.p99() == m_b.latency.p99() &&
       m_a.makespan_ms == m_b.makespan_ms;
  check("serve identical across runs and pool threads {1,4}", ok);
}

/// Worker sweep at fixed load: with no transient failures the serviced
/// sample set is worker-independent, so p99 must be monotone
/// nonincreasing as slots are added.
std::vector<serve::ServerMetrics> worker_sweep(
    const core::PipelineContext& ctx, const rag::RetrievalStores& stores,
    const std::vector<qgen::McqRecord>& records, const llm::ModelSpec& spec,
    const std::vector<std::size_t>& workers) {
  serve::WorkloadConfig wl = base_workload(records.size());
  wl.offered_qps = 1200.0;  // saturates one worker, relaxes with more
  const auto requests = serve::synth_workload(wl, records.size());
  std::vector<serve::ServerMetrics> sweep;
  for (const std::size_t w : workers) {
    serve::ServeConfig cfg;
    cfg.workers = w;
    cfg.transient_failure_rate = 0.0;
    cfg.max_retries = 0;
    cfg.queue_capacity = wl.requests;  // nothing sheds at any width
    cfg.deadline_ms = 1e7;             // nothing expires either
    const serve::QueryEngine engine(ctx.rag(), stores, spec, cfg);
    serve::ServerMetrics metrics;
    engine.serve(records, requests, &metrics);
    sweep.push_back(std::move(metrics));
  }
  return sweep;
}

void check_worker_monotonicity(
    const std::vector<std::size_t>& workers,
    const std::vector<serve::ServerMetrics>& sweep) {
  bool monotone = true;
  bool all_served = true;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    if (i > 0) {
      monotone =
          monotone && sweep[i].latency.p99() <= sweep[i - 1].latency.p99();
    }
    all_served = all_served && sweep[i].rejected == 0 &&
                 sweep[i].completed == sweep[i].offered;
  }
  (void)workers;
  check("p99 monotone nonincreasing over workers {1,2,4,8}", monotone);
  check("worker sweep sheds nothing (sample sets comparable)", all_served);
}

/// Admission control: zero shed under light load, positive shed past
/// configured capacity.
void check_shedding(const core::PipelineContext& ctx,
                    const rag::RetrievalStores& stores,
                    const std::vector<qgen::McqRecord>& records,
                    const llm::ModelSpec& spec) {
  serve::WorkloadConfig wl = base_workload(records.size());
  wl.requests = bench::smoke() ? 128 : 384;

  serve::ServeConfig light;
  light.queue_capacity = 64;
  const serve::QueryEngine light_engine(ctx.rag(), stores, spec, light);
  wl.offered_qps = 100.0;
  serve::ServerMetrics m_light;
  light_engine.serve(records, serve::synth_workload(wl, records.size()),
                     &m_light);
  check("no shed under light load", m_light.rejected == 0);

  serve::ServeConfig heavy;
  heavy.queue_capacity = 16;
  heavy.workers = 1;
  const serve::QueryEngine heavy_engine(ctx.rag(), stores, spec, heavy);
  wl.offered_qps = 20000.0;
  serve::ServerMetrics m_heavy;
  heavy_engine.serve(records, serve::synth_workload(wl, records.size()),
                     &m_heavy);
  check("shed > 0 past configured capacity", m_heavy.rejected > 0);
  check("terminal statuses partition offered requests",
        m_heavy.completed + m_heavy.rejected + m_heavy.expired +
                m_heavy.failed ==
            m_heavy.offered);
}

json::Value metrics_row(const serve::ServerMetrics& m) {
  json::Value v = json::Value::object();
  v["completed"] = m.completed;
  v["rejected"] = m.rejected;
  v["expired"] = m.expired;
  v["failed"] = m.failed;
  v["p50_ms"] = m.latency.p50();
  v["p99_ms"] = m.latency.p99();
  v["p999_ms"] = m.latency.p999();
  v["mean_batch_fill"] = m.mean_batch_fill();
  v["throughput_qps"] = m.throughput_qps();
  v["utilization"] = m.utilization();
  return v;
}

// --- live tier ---------------------------------------------------------------

index::VectorStore rebuild_store(const embed::Embedder& embedder,
                                 const serve::StoreSnapshot& snap) {
  index::VectorStore store(embedder);
  for (const auto& [id, text] : snap.live_rows()) store.add(id, text);
  store.build();
  return store;
}

/// Sustained rolling updates against a LiveStore seeded from the chunk
/// corpus: every published epoch must be bit-identical to a from-scratch
/// rebuild of its live rows, with the same snapshot queried from 1/2/8
/// concurrent readers.  Returns per-publish staleness rows for the JSON
/// report (pending mutations at publish, epoch age, compactions).
json::Array check_live_epoch_identity(
    const core::PipelineContext& ctx,
    const std::vector<qgen::McqRecord>& records) {
  const embed::Embedder& embedder = ctx.chunk_store().embedder();
  serve::LiveStoreConfig lcfg;
  lcfg.compact_kind = index::IndexKind::kSq8;
  lcfg.compact_threshold = 48;
  lcfg.min_candidates = 1u << 20;  // candidate floor covers any base: exact
  serve::LiveStore live(ctx.chunk_store(), lcfg);

  const std::size_t ticks = bench::smoke() ? 6 : 16;
  const std::size_t appends = 8;
  const double tick_ms = 10.0;
  const std::size_t queries = std::min<std::size_t>(records.size(), 12);
  bool ok = true;
  json::Array staleness_rows;
  double last_publish_ms = 0.0;
  std::vector<std::string> ids;  // appended ids eligible for tombstoning
  for (std::size_t t = 0; t < ticks; ++t) {
    for (std::size_t j = 0; j < appends; ++j) {
      const std::size_t src = (t * appends + j) % ctx.chunk_store().size();
      std::string id = "upd_" + std::to_string(t) + "_" + std::to_string(j);
      live.append(id, std::string(ctx.chunk_store().text_of(src)) + " [rev " +
                          std::to_string(t) + "]");
      ids.push_back(std::move(id));
    }
    if (t % 3 == 2) live.tombstone(ids[(t / 3) * 5]);
    const std::size_t pending_before = live.pending();
    const double now_ms = tick_ms * static_cast<double>(t + 1);
    const auto snap = live.publish(now_ms);
    const index::VectorStore oracle = rebuild_store(embedder, *snap);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      std::atomic<bool> all_ok{true};
      std::vector<std::thread> pool;
      pool.reserve(threads);
      for (std::size_t w = 0; w < threads; ++w) {
        pool.emplace_back([&, w] {
          std::vector<std::string> texts;
          for (std::size_t i = w; i < queries; i += threads) {
            texts.push_back(records[i].stem);
            if (!same_hits(snap->query(records[i].stem, 10),
                           oracle.query(records[i].stem, 10))) {
              all_ok.store(false);
            }
          }
          // The tiled batch path must agree with the same oracle while
          // readers race each other through search_tiled over the
          // shared snapshot segments.
          const auto batched = snap->query_batch(texts, 10);
          for (std::size_t i = w, j = 0; i < queries; i += threads, ++j) {
            if (!same_hits(batched[j], oracle.query(records[i].stem, 10))) {
              all_ok.store(false);
            }
          }
        });
      }
      for (auto& th : pool) th.join();
      ok = ok && all_ok.load();
    }
    json::Value row = json::Value::object();
    row["tick"] = t;
    row["epoch"] = snap->epoch();
    row["pending_at_publish"] = pending_before;
    row["epoch_age_ms"] = now_ms - last_publish_ms;
    row["rows"] = snap->rows();
    row["delta_segments"] = snap->delta_segments();
    row["tombstones"] = snap->tombstones();
    row["compactions"] = live.compactions();
    staleness_rows.push_back(std::move(row));
    last_publish_ms = now_ms;
  }
  ok = ok && live.compactions() > 0;  // the threshold actually crossed
  check("live epochs == from-scratch rebuild @ readers {1,2,8} "
        "(per-query + tiled batch)",
        ok);
  return staleness_rows;
}

/// Hedged vs unhedged tails under injected replica slowdown.  Returns
/// (plain, hedged) metrics for the full-mode report.
std::pair<serve::ServerMetrics, serve::ServerMetrics> check_hedging_tail(
    const core::PipelineContext& ctx, const rag::RetrievalStores& stores,
    const std::vector<qgen::McqRecord>& records, const llm::ModelSpec& spec) {
  // The slow rate keeps the unhedged tail saturated with injections
  // (~1.4% of dispatches) while the both-replicas-slow probability —
  // the only tail a hedge cannot beat — stays under the p99.9 rank.
  serve::ServeConfig plain;
  plain.workers = 4;
  plain.replicas = 2;
  plain.replica_slow_rate = 0.01;
  plain.replica_slow_factor = 10.0;
  plain.queue_capacity = 1u << 20;
  plain.deadline_ms = 1e7;
  serve::ServeConfig hedged = plain;
  hedged.hedge = true;
  serve::WorkloadConfig wl;
  wl.requests = bench::smoke() ? 256 : 1024;
  wl.offered_qps = 150.0;  // light load: the tail is injection, not queueing
  const auto requests = serve::synth_workload(wl, records.size());
  serve::ServerMetrics m_plain, m_hedged;
  serve::QueryEngine(ctx.rag(), stores, spec, plain)
      .serve(records, requests, &m_plain);
  serve::QueryEngine(ctx.rag(), stores, spec, hedged)
      .serve(records, requests, &m_hedged);
  check("hedged p99.9 <= 0.5x unhedged under injected slowdown",
        m_hedged.hedges > 0 &&
            m_hedged.latency.p999() <= 0.5 * m_plain.latency.p999());
  check("hedges accounted exactly once (wins + cancels + failed)",
        m_hedged.hedges == m_hedged.hedge_wins + m_hedged.hedge_cancels +
                               m_hedged.hedge_failed);
  return {std::move(m_plain), std::move(m_hedged)};
}

/// Interactive tail with and without a saturating batch-class flood.
/// Returns (alone, under_flood) metrics for the full-mode report.
std::pair<serve::ServerMetrics, serve::ServerMetrics> check_lane_isolation(
    const core::PipelineContext& ctx, const rag::RetrievalStores& stores,
    const std::vector<qgen::McqRecord>& records, const llm::ModelSpec& spec) {
  serve::ServeConfig cfg;
  cfg.workers = 4;
  cfg.reserved_interactive_slots = 2;
  cfg.queue_capacity = 1u << 20;
  cfg.deadline_ms = 1e7;
  const serve::QueryEngine engine(ctx.rag(), stores, spec, cfg);

  serve::WorkloadConfig wl;
  wl.requests = bench::smoke() ? 160 : 640;
  wl.offered_qps = 400.0;
  const auto interactive = serve::synth_workload(wl, records.size());

  serve::WorkloadConfig flood_cfg;
  flood_cfg.requests = 2 * wl.requests;
  flood_cfg.offered_qps = 4000.0;  // saturating bulk traffic
  flood_cfg.seed = 0xb17eULL;
  auto flood = serve::synth_workload(flood_cfg, records.size());
  for (std::size_t i = 0; i < flood.size(); ++i) {
    flood[i].request_id = "bq_" + std::to_string(i);
    flood[i].klass = serve::RequestClass::kBatch;
  }
  std::vector<serve::QueryRequest> merged;
  merged.reserve(interactive.size() + flood.size());
  std::merge(interactive.begin(), interactive.end(), flood.begin(),
             flood.end(), std::back_inserter(merged),
             [](const serve::QueryRequest& x, const serve::QueryRequest& y) {
               return x.arrival_ms < y.arrival_ms;
             });

  serve::ServerMetrics alone, under_flood;
  engine.serve(records, interactive, &alone);
  engine.serve(records, merged, &under_flood);
  check("interactive p99 <= 1.1x uncontended under batch-class flood",
        under_flood.batch_latency.count() > 0 &&
            under_flood.interactive_latency.p99() <=
                1.1 * alone.interactive_latency.p99());
  return {std::move(alone), std::move(under_flood)};
}

}  // namespace

int main(int argc, char** argv) {
  mcqa::bench::parse_args(argc, argv);
  const auto& ctx = bench::shared_context();
  bench::print_scale_banner(ctx);

  const auto records = bench::smoke_subset(ctx.benchmark());
  const rag::RetrievalStores stores = context_stores(ctx);
  const llm::ModelSpec spec =
      llm::student_card("Llama-3.1-8B-Instruct").spec;

  check_shard_exactness(ctx, records);
  check_task_identity(ctx, stores, records, spec);
  check_determinism(ctx, stores, records, spec);
  const std::vector<std::size_t> workers{1, 2, 4, 8};
  const auto sweep = worker_sweep(ctx, stores, records, spec, workers);
  check_worker_monotonicity(workers, sweep);
  check_shedding(ctx, stores, records, spec);
  json::Array staleness_rows = check_live_epoch_identity(ctx, records);
  const auto [hedge_plain, hedge_on] =
      check_hedging_tail(ctx, stores, records, spec);
  const auto [lane_alone, lane_flood] =
      check_lane_isolation(ctx, stores, records, spec);

  if (bench::smoke()) return g_all_pass ? 0 : 1;

  json::Value report = json::Value::object();
  report["bench"] = "serve";
  bench::add_kernel_metadata(report);
  report["records"] = records.size();
  report["chunk_rows"] = ctx.chunk_store().size();

  // Worker sweep table (the monotonicity data).
  std::printf("\nWorker sweep (1200 qps offered, batch<=8 or 4ms):\n\n");
  eval::TableWriter worker_table(
      {"Workers", "p50 latency", "p99 latency", "Throughput", "Utilization"});
  json::Array worker_rows;
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const auto& m = sweep[i];
    worker_table.add_row({std::to_string(workers[i]),
                          eval::fmt_acc(m.latency.p50()) + " ms",
                          eval::fmt_acc(m.latency.p99()) + " ms",
                          eval::fmt_acc(m.throughput_qps()) + " qps",
                          eval::fmt_pct(100.0 * m.utilization())});
    json::Value row = metrics_row(m);
    row["workers"] = workers[i];
    worker_rows.push_back(std::move(row));
  }
  std::printf("%s\n", worker_table.render().c_str());
  report["worker_sweep"] = json::Value(std::move(worker_rows));

  // Shards x batch cutoff at fixed load: scan shrinks with shards,
  // merge grows, and the cutoff trades batching wait against fill.
  std::printf("Shard x cutoff sweep (400 qps offered, 512 requests):\n\n");
  eval::TableWriter shard_table(
      {"Shards", "Cutoff", "p50 latency", "p99 latency", "Mean fill"});
  json::Array shard_rows;
  serve::WorkloadConfig wl = base_workload(records.size());
  const auto requests = serve::synth_workload(wl, records.size());
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    for (const double cutoff : {1.0, 4.0, 16.0}) {
      serve::ServeConfig cfg;
      cfg.shards = shards;
      cfg.batch_cutoff_ms = cutoff;
      cfg.queue_capacity = wl.requests;
      const serve::QueryEngine engine(ctx.rag(), stores, spec, cfg);
      serve::ServerMetrics m;
      engine.serve(records, requests, &m);
      shard_table.add_row({std::to_string(shards), eval::fmt_acc(cutoff),
                           eval::fmt_acc(m.latency.p50()) + " ms",
                           eval::fmt_acc(m.latency.p99()) + " ms",
                           eval::fmt_acc(m.mean_batch_fill())});
      json::Value row = metrics_row(m);
      row["shards"] = shards;
      row["cutoff_ms"] = cutoff;
      shard_rows.push_back(std::move(row));
    }
  }
  std::printf("%s\n", shard_table.render().c_str());
  report["shard_cutoff_sweep"] = json::Value(std::move(shard_rows));

  // Offered-load sweep: completion holds, then admission sheds.
  std::printf("Offered-load sweep (capacity 64, 4 workers):\n\n");
  eval::TableWriter load_table(
      {"Offered qps", "Completed", "Rejected", "Expired", "p99 latency"});
  json::Array load_rows;
  for (const double qps : {100.0, 400.0, 1600.0, 6400.0, 25600.0}) {
    serve::ServeConfig cfg;
    cfg.deadline_ms = 250.0;
    const serve::QueryEngine engine(ctx.rag(), stores, spec, cfg);
    serve::WorkloadConfig load_wl = base_workload(records.size());
    load_wl.offered_qps = qps;
    serve::ServerMetrics m;
    engine.serve(records, serve::synth_workload(load_wl, records.size()),
                 &m);
    load_table.add_row({eval::fmt_acc(qps), std::to_string(m.completed),
                        std::to_string(m.rejected),
                        std::to_string(m.expired),
                        eval::fmt_acc(m.latency.p99()) + " ms"});
    json::Value row = metrics_row(m);
    row["offered_qps"] = qps;
    load_rows.push_back(std::move(row));
  }
  std::printf("%s\n", load_table.render().c_str());
  report["load_sweep"] = json::Value(std::move(load_rows));

  // Hedge sweep: replica slowdown injection with hedging off/on.
  std::printf("Hedge sweep (2 replicas, 4 workers each, 150 qps):\n\n");
  eval::TableWriter hedge_table({"Slow rate", "Hedge", "p50 latency",
                                 "p99 latency", "p99.9 latency", "Hedges",
                                 "Wins"});
  json::Array hedge_rows;
  {
    serve::WorkloadConfig hwl;
    hwl.requests = 1024;
    hwl.offered_qps = 150.0;
    const auto hedge_requests = serve::synth_workload(hwl, records.size());
    for (const double rate : {0.0, 0.01, 0.05}) {
      for (const bool hedge : {false, true}) {
        serve::ServeConfig cfg;
        cfg.workers = 4;
        cfg.replicas = 2;
        cfg.hedge = hedge;
        cfg.replica_slow_rate = rate;
        cfg.replica_slow_factor = 10.0;
        cfg.queue_capacity = 1u << 20;
        cfg.deadline_ms = 1e7;
        const serve::QueryEngine engine(ctx.rag(), stores, spec, cfg);
        serve::ServerMetrics m;
        engine.serve(records, hedge_requests, &m);
        hedge_table.add_row({eval::fmt_acc(rate), hedge ? "on" : "off",
                             eval::fmt_acc(m.latency.p50()) + " ms",
                             eval::fmt_acc(m.latency.p99()) + " ms",
                             eval::fmt_acc(m.latency.p999()) + " ms",
                             std::to_string(m.hedges),
                             std::to_string(m.hedge_wins)});
        json::Value row = metrics_row(m);
        row["replica_slow_rate"] = rate;
        row["hedge"] = hedge;
        row["hedges"] = m.hedges;
        row["hedge_wins"] = m.hedge_wins;
        row["hedge_cancels"] = m.hedge_cancels;
        row["hedge_failed"] = m.hedge_failed;
        hedge_rows.push_back(std::move(row));
      }
    }
  }
  std::printf("%s\n", hedge_table.render().c_str());
  report["hedge_sweep"] = json::Value(std::move(hedge_rows));

  // Lane isolation: the interactive tail with and without the flood.
  std::printf("Priority lanes (4 workers, 2 reserved, batch flood):\n\n");
  eval::TableWriter lane_table({"Scenario", "Interactive p99",
                                "Interactive p99.9", "Batch p99",
                                "Completed"});
  const auto lane_row = [&](const char* name,
                            const serve::ServerMetrics& m) {
    lane_table.add_row(
        {name, eval::fmt_acc(m.interactive_latency.p99()) + " ms",
         eval::fmt_acc(m.interactive_latency.p999()) + " ms",
         m.batch_latency.count() > 0
             ? eval::fmt_acc(m.batch_latency.p99()) + " ms"
             : "-",
         std::to_string(m.completed)});
    json::Value row = metrics_row(m);
    row["scenario"] = name;
    row["interactive_p99_ms"] = m.interactive_latency.p99();
    row["interactive_p999_ms"] = m.interactive_latency.p999();
    row["batch_p99_ms"] = m.batch_latency.p99();
    return row;
  };
  json::Array lane_rows;
  lane_rows.push_back(lane_row("interactive alone", lane_alone));
  lane_rows.push_back(lane_row("with batch flood", lane_flood));
  std::printf("%s\n", lane_table.render().c_str());
  report["lane_isolation"] = json::Value(std::move(lane_rows));

  // Hedge headline numbers from the shape-check run.
  {
    json::Value h = json::Value::object();
    h["unhedged"] = metrics_row(hedge_plain);
    h["hedged"] = metrics_row(hedge_on);
    h["p999_ratio"] =
        hedge_plain.latency.p999() > 0.0
            ? hedge_on.latency.p999() / hedge_plain.latency.p999()
            : 0.0;
    report["hedged_tail"] = std::move(h);
  }

  // Sustained rolling updates: staleness of the live store per publish.
  std::printf("Live store rolling updates (8 appends/tick, publish each "
              "tick):\n\n");
  eval::TableWriter live_table({"Tick", "Epoch", "Pending", "Rows",
                                "Deltas", "Tombstones", "Compactions"});
  for (const json::Value& row : staleness_rows) {
    live_table.add_row({std::to_string(row.at("tick").as_int()),
                        std::to_string(row.at("epoch").as_int()),
                        std::to_string(row.at("pending_at_publish").as_int()),
                        std::to_string(row.at("rows").as_int()),
                        std::to_string(row.at("delta_segments").as_int()),
                        std::to_string(row.at("tombstones").as_int()),
                        std::to_string(row.at("compactions").as_int())});
  }
  std::printf("%s\n", live_table.render().c_str());
  report["live_store"] = json::Value(std::move(staleness_rows));

  std::ofstream out("BENCH_serve.json");
  out << report.dump(2) << "\n";
  std::printf(
      "Reading: sharding trades scan time against merge overhead, the "
      "cutoff trades batching wait against fill, and admission control "
      "converts overload into explicit sheds instead of unbounded "
      "queueing; hedging trades duplicate work for the injected tail, "
      "reserved slots keep the interactive tail flat under a batch "
      "flood, and live epochs stay bit-identical to rebuilds while the "
      "corpus mutates — all on a simulated clock, so every number above "
      "is bit-reproducible.\n");
  std::printf("wrote BENCH_serve.json\n");
  return g_all_pass ? 0 : 1;
}
