// Figure 4 reproduction: percent accuracy improvement on the synthetic
// benchmark — reasoning-trace retrieval versus baseline and versus
// chunk retrieval, per model.

#include <algorithm>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  mcqa::bench::parse_args(argc, argv);
  using namespace mcqa;
  const auto& ctx = bench::shared_context();
  bench::print_scale_banner(ctx);

  const eval::SweepResult sweep = bench::run_full_sweep(ctx, ctx.benchmark());
  const bench::GainSeries gains = bench::compute_gains(sweep);
  bench::print_gain_figure(
      "Figure 4: % accuracy improvement, synthetic benchmark "
      "(RAG-RT best vs Baseline / vs RAG-Chunks)",
      gains);

  // Paper-side gains for comparison, from Table 2.
  std::printf("paper reference gains (derived from Table 2):\n");
  for (const auto& row : eval::paper_table2()) {
    const double best = std::max(
        {row.accuracy[2], row.accuracy[3], row.accuracy[4]});
    std::printf("  %-26s vs baseline %7s   vs chunks %7s\n",
                std::string(row.model).c_str(),
                eval::fmt_pct(eval::pct_improvement(best, row.accuracy[0]))
                    .c_str(),
                eval::fmt_pct(eval::pct_improvement(best, row.accuracy[1]))
                    .c_str());
  }
  return 0;
}
