// Figure 5 reproduction: percent accuracy improvement on ALL questions
// of the Astro exam — trace retrieval vs baseline and vs chunks.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  mcqa::bench::parse_args(argc, argv);
  using namespace mcqa;
  const auto& ctx = bench::shared_context();
  bench::print_scale_banner(ctx);

  const eval::SweepResult sweep = bench::run_full_sweep(ctx, ctx.exam_all());
  const bench::GainSeries gains = bench::compute_gains(sweep);
  bench::print_gain_figure(
      "Figure 5: % accuracy improvement, Astro exam (all questions)",
      gains);

  std::printf("paper reference gains (derived from Table 3):\n");
  for (const auto& row : eval::paper_table3()) {
    std::printf(
        "  %-26s vs baseline %7s   vs chunks %7s\n",
        std::string(row.model).c_str(),
        eval::fmt_pct(eval::pct_improvement(row.accuracy[2], row.accuracy[0]))
            .c_str(),
        eval::fmt_pct(eval::pct_improvement(row.accuracy[2], row.accuracy[1]))
            .c_str());
  }
  std::printf(
      "\nNote the paper's observation: improvements over RAG-Chunks are "
      "smaller and sometimes negative here (e.g. Llama-3-8B-Instruct), "
      "yet traces remain the more stable retrieval source.\n");
  return 0;
}
