// Table 1 reproduction: overview of evaluated SLMs (parameter counts,
// release years, context windows), printed from the model registry the
// evaluation actually runs with.

#include <cstdio>

#include "bench_common.hpp"
#include "eval/report.hpp"
#include "llm/model_spec.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  mcqa::bench::parse_args(argc, argv);
  using namespace mcqa;
  std::printf("Table 1: Overview of evaluated SLMs\n\n");
  eval::TableWriter table(
      {"Model Name", "Params", "Release Year", "Context Window", "Vendor"});
  for (const auto& card : llm::student_registry()) {
    table.add_row({card.spec.name,
                   util::format_param_count(card.spec.params_billions),
                   std::to_string(card.spec.release_year),
                   std::to_string(card.spec.context_window),
                   card.spec.vendor});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "Calibrated behavioural profiles (the reproduction's stand-in for "
      "model weights):\n\n");
  eval::TableWriter profile(
      {"Model", "know", "extract", "elim", "chunk-dist", "math-conf",
       "arith", "abstr", "transfer", "format", "exam-fam"});
  for (const auto& card : llm::student_registry()) {
    const auto& p = card.profile;
    profile.add_row({card.spec.name, eval::fmt_acc(p.knowledge),
                     eval::fmt_acc(p.extraction), eval::fmt_acc(p.elimination),
                     eval::fmt_acc(p.chunk_distraction),
                     eval::fmt_acc(p.trace_math_confusion),
                     eval::fmt_acc(p.arithmetic), eval::fmt_acc(p.abstraction),
                     eval::fmt_acc(p.transfer),
                     eval::fmt_acc(p.format_reliability),
                     util::format_double(p.exam_familiarity, 2)});
  }
  std::printf("%s", profile.render().c_str());
  return 0;
}
