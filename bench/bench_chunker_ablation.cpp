// Chunker ablation (A2 in DESIGN.md): semantic (drift-based) versus
// fixed-size chunking — chunk statistics, and the downstream effect on
// RAG-Chunks accuracy for a weak and a strong reader.  The paper chose
// semantic chunking; this quantifies what that choice buys.

#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  mcqa::bench::parse_args(argc, argv);
  using namespace mcqa;

  // Build two pipelines identical except for the chunker.
  core::PipelineConfig semantic_cfg =
      core::PipelineConfig::paper_scale(bench::smoke() ? 0.006 : 0.015);
  semantic_cfg.semantic_chunking = true;
  core::PipelineConfig fixed_cfg = semantic_cfg;
  fixed_cfg.semantic_chunking = false;

  std::printf("building semantic-chunking pipeline...\n");
  const core::PipelineContext semantic(semantic_cfg);
  std::printf("building fixed-chunking pipeline...\n\n");
  const core::PipelineContext fixed(fixed_cfg);

  eval::TableWriter stats(
      {"Chunker", "Chunks", "Mean words", "Questions", "Acceptance"});
  for (const auto* ctx : {&semantic, &fixed}) {
    double words = 0.0;
    for (const auto& c : ctx->chunks()) {
      words += static_cast<double>(c.word_count);
    }
    stats.add_row(
        {ctx->config().semantic_chunking ? "semantic" : "fixed",
         std::to_string(ctx->stats().chunks),
         eval::fmt_acc(words / static_cast<double>(ctx->stats().chunks)),
         std::to_string(ctx->benchmark().size()),
         eval::fmt_pct(100.0 * ctx->stats().funnel.acceptance_rate())});
  }
  std::printf("Chunker ablation (A2)\n\n%s\n", stats.render().c_str());

  // Downstream RAG effect: evaluate each pipeline's own benchmark under
  // RAG-Chunks for two contrasting readers.
  std::printf("RAG-Chunks accuracy on each pipeline's own benchmark:\n\n");
  eval::TableWriter acc_table(
      {"Model", "semantic chunks", "fixed chunks", "delta"});
  for (const char* name : {"TinyLlama-1.1B-Chat", "SmolLM3-3B",
                           "Llama-3.1-8B-Instruct"}) {
    const auto& card = llm::student_card(name);
    const llm::StudentModel model(card);
    const eval::EvalHarness sem_harness(semantic.rag());
    const eval::EvalHarness fix_harness(fixed.rag());
    const double sem = sem_harness
                           .evaluate(model, card.spec, semantic.benchmark(),
                                     rag::Condition::kChunks)
                           .value();
    const double fix = fix_harness
                           .evaluate(model, card.spec, fixed.benchmark(),
                                     rag::Condition::kChunks)
                           .value();
    acc_table.add_row({name, eval::fmt_acc(sem), eval::fmt_acc(fix),
                       eval::fmt_pct(eval::pct_improvement(sem, fix))});
  }
  std::printf("%s\n", acc_table.render().c_str());
  std::printf(
      "Semantic chunks keep fact sentences intact (sentence-aligned "
      "boundaries), so the probed fact survives retrieval more often than "
      "with fixed word windows that cut mid-sentence.\n");
  return 0;
}
