// Pipeline-funnel reproduction (paper §2): documents -> chunks ->
// candidates -> quality filter -> accepted questions -> traces, with
// linear extrapolation to the paper's full corpus size, the FP16
// embedding footprint (paper: 747 MB), and the AdaParse-style routing
// ledger.

#include <cmath>

#include "bench_common.hpp"
#include "util/histogram.hpp"

int main(int argc, char** argv) {
  mcqa::bench::parse_args(argc, argv);
  using namespace mcqa;
  const auto& ctx = bench::shared_context();
  const auto& s = ctx.stats();
  const double scale = ctx.config().corpus.scale;

  std::printf("Pipeline funnel (paper section 2)\n");
  std::printf("values: measured @ scale %.3f | extrapolated to 1.0 | paper\n\n",
              scale);

  const auto extrapolate = [scale](std::size_t measured) {
    return static_cast<std::size_t>(
        std::llround(static_cast<double>(measured) / scale));
  };

  eval::TableWriter funnel({"Stage", "Measured", "Extrapolated", "Paper"});
  funnel.add_row({"documents", std::to_string(s.documents),
                  std::to_string(extrapolate(s.documents)),
                  std::to_string(eval::PaperFunnel::kDocuments)});
  funnel.add_row({"chunks", std::to_string(s.chunks),
                  std::to_string(extrapolate(s.chunks)),
                  std::to_string(eval::PaperFunnel::kChunks)});
  funnel.add_row({"MCQ candidates", std::to_string(s.funnel.candidates),
                  std::to_string(extrapolate(s.funnel.candidates)),
                  std::to_string(eval::PaperFunnel::kCandidates)});
  funnel.add_row({"accepted (>=7/10)", std::to_string(s.funnel.accepted),
                  std::to_string(extrapolate(s.funnel.accepted)),
                  std::to_string(eval::PaperFunnel::kAccepted)});
  for (int m = 0; m < trace::kTraceModeCount; ++m) {
    const auto mi = static_cast<std::size_t>(m);
    const auto mode = static_cast<trace::TraceMode>(m);
    funnel.add_row({"traces (" + std::string(trace::trace_mode_name(mode)) +
                        ")",
                    std::to_string(s.traces_per_mode[mi]),
                    std::to_string(extrapolate(s.traces_per_mode[mi])),
                    std::to_string(eval::PaperFunnel::kAccepted)});
  }
  std::printf("%s\n", funnel.render().c_str());

  std::printf("trace grading accuracy (teacher self-grading): ");
  for (int m = 0; m < trace::kTraceModeCount; ++m) {
    const auto mi = static_cast<std::size_t>(m);
    const auto mode = static_cast<trace::TraceMode>(m);
    std::printf("%s=%.3f%s", std::string(trace::trace_mode_name(mode)).c_str(),
                s.trace_grading_accuracy[mi],
                m + 1 < trace::kTraceModeCount ? ", " : "\n");
  }

  std::printf("acceptance rate: %.1f%% of chunks (paper: %.1f%%)\n",
              100.0 * s.funnel.acceptance_rate(),
              100.0 * eval::PaperFunnel::acceptance_rate());
  std::printf("rejections: %zu no-fact chunks, %zu relevance, %zu quality\n\n",
              s.funnel.rejected_no_fact, s.funnel.rejected_relevance,
              s.funnel.rejected_quality);

  // FP16 embedding footprint.  The paper stores 173,318 x 768-d vectors
  // (747 MB); ours are 256-d, so the apples-to-apples comparison scales
  // by both corpus size and dimensionality.
  const double measured_mb =
      static_cast<double>(s.embedding_bytes) / 1048576.0;
  const double extrapolated_mb = measured_mb / scale;
  const double dim_adjusted_mb = extrapolated_mb * (768.0 / 256.0);
  std::printf("chunk embedding store (FP16 at rest):\n");
  std::printf("  measured          : %8.2f MB (%zu vectors x %zu dims)\n",
              measured_mb, ctx.chunk_store().size(), ctx.embedder().dim());
  std::printf("  @ full corpus     : %8.2f MB\n", extrapolated_mb);
  std::printf("  @ 768-d (paper)   : %8.2f MB   (paper reports %.0f MB)\n",
              dim_adjusted_mb, eval::PaperFunnel::kEmbeddingMegabytes);
  std::printf(
      "  note: 173,318 x 768-d FP16 is ~254 MB of raw payload; the "
      "paper's 747 MB figure implies ~2.2 KB/vector, i.e. FAISS index "
      "structures and metadata on top of the raw FP16 — our number is "
      "payload-only.\n\n");

  // Adaptive-parser routing ledger.
  const auto& r = s.routing;
  std::printf("adaptive parsing (AdaParse-equivalent routing):\n");
  std::printf("  fast-routed       : %zu\n", r.fast_routed);
  std::printf("  escalated         : %zu (fast parse rejected by quality)\n",
              r.escalated);
  std::printf("  accurate-routed   : %zu\n", r.accurate_routed);
  std::printf("  non-SPDF          : %zu (markdown/plain text)\n", r.non_spdf);
  std::printf("  failed            : %zu (corrupt/truncated streams)\n",
              r.failed);
  std::printf("  compute saved     : %.1f%% vs always-accurate\n\n",
              100.0 * r.compute_saving());

  // Chunk length distribution (drives retrieval granularity).
  util::Histogram lengths(0.0, 400.0, 16);
  for (const auto& c : ctx.chunks()) {
    lengths.add(static_cast<double>(c.word_count));
  }
  std::printf("chunk length distribution (words):\n%s",
              lengths.render(36).c_str());
  std::printf("  mean %.1f words, p50 %.0f, p90 %.0f\n",
              lengths.stats().mean(), lengths.quantile(0.5),
              lengths.quantile(0.9));
  std::printf("\nbuild time: %.2fs end-to-end at this scale\n",
              s.build_seconds);
  return 0;
}
