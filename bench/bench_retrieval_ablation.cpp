// Retrieval ablation (A3 in DESIGN.md): sensitivity of the headline
// result to retrieval depth k, per-mode trace sensitivity, and an
// independent statistical cross-check with the n-gram LM backend.

#include <cstdio>

#include <algorithm>

#include "bench_common.hpp"
#include "llm/ngram_lm.hpp"

int main(int argc, char** argv) {
  mcqa::bench::parse_args(argc, argv);
  using namespace mcqa;
  const auto& ctx = bench::shared_context();
  bench::print_scale_banner(ctx);

  const auto& card = llm::student_card("SmolLM3-3B");
  const llm::StudentModel model(card);

  // --- retrieval depth sweep -------------------------------------------------
  std::printf("Retrieval depth sweep (SmolLM3-3B, synthetic benchmark):\n\n");
  eval::TableWriter depth({"k (chunks/traces)", "RAG-Chunks",
                           "RAG-RT-Focused"});
  for (const std::size_t k : {1u, 3u, 5u, 10u}) {
    rag::RagConfig cfg;
    cfg.top_k_chunks = k;
    cfg.top_k_traces = k;
    rag::RetrievalStores stores;
    stores.chunks = &ctx.chunk_store();
    for (int m = 0; m < trace::kTraceModeCount; ++m) {
      stores.traces[static_cast<std::size_t>(m)] =
          &ctx.trace_store(static_cast<trace::TraceMode>(m));
    }
    const rag::RagPipeline rag(ctx.kb(), ctx.matcher(), stores, cfg);
    const eval::EvalHarness harness(rag);
    const double chunks = harness
                              .evaluate(model, card.spec, ctx.benchmark(),
                                        rag::Condition::kChunks)
                              .value();
    const double traces = harness
                              .evaluate(model, card.spec, ctx.benchmark(),
                                        rag::Condition::kTraceFocused)
                              .value();
    depth.add_row({std::to_string(k), eval::fmt_acc(chunks),
                   eval::fmt_acc(traces)});
  }
  std::printf("%s\n", depth.render().c_str());

  // --- trace-mode sensitivity across all models ---------------------------------
  std::printf("Trace-mode spread per model (synthetic benchmark):\n\n");
  const eval::SweepResult sweep = bench::run_full_sweep(ctx, ctx.benchmark());
  eval::TableWriter spread(
      {"Model", "Detail", "Focused", "Efficient", "max-min"});
  for (const auto& c : llm::student_registry()) {
    const double d =
        sweep.at(c.spec.name, rag::Condition::kTraceDetailed).value();
    const double f =
        sweep.at(c.spec.name, rag::Condition::kTraceFocused).value();
    const double e =
        sweep.at(c.spec.name, rag::Condition::kTraceEfficient).value();
    spread.add_row({c.spec.name, eval::fmt_acc(d), eval::fmt_acc(f),
                    eval::fmt_acc(e),
                    eval::fmt_acc(std::max({d, f, e}) - std::min({d, f, e}))});
  }
  std::printf("%s", spread.render().c_str());
  std::printf(
      "paper (section 3.1.3): all three modes land close together; the "
      "spread should stay within a few points except for the smallest "
      "model, which loses ground on terse `efficient` rationales.\n\n");

  // --- statistical cross-check: n-gram LM scores options by likelihood ----------
  std::printf("N-gram LM cross-check (likelihood-ranked answering):\n\n");
  std::string train_text;
  for (const auto& doc : ctx.parsed()) {
    train_text += doc.body_text();
    train_text += '\n';
    if (train_text.size() > 2'000'000) break;
  }
  llm::NgramLmConfig lm_cfg;
  lm_cfg.bpe_vocab = 1500;
  lm_cfg.name = "ngram-trigram";
  const llm::NgramLm lm = llm::NgramLm::train(train_text, lm_cfg);

  const eval::EvalHarness harness(ctx.rag());
  const llm::ModelSpec lm_spec{"ngram-trigram", "in-tree", 0.001, 2026, 8192};
  std::vector<qgen::McqRecord> subset(ctx.benchmark().begin(),
                                      ctx.benchmark().begin() +
                                          std::min<std::size_t>(
                                              150, ctx.benchmark().size()));
  const double lm_base =
      harness.evaluate(lm, lm_spec, subset, rag::Condition::kBaseline).value();
  const double lm_traces =
      harness.evaluate(lm, lm_spec, subset, rag::Condition::kTraceFocused)
          .value();
  std::printf("  trained on %zu KB of parsed corpus, vocab %zu, %zu trigrams\n",
              train_text.size() / 1024, lm.vocab_size(), lm.trigram_count());
  std::printf("  baseline accuracy     : %.3f (chance = %.3f on 7 options)\n",
              lm_base, 1.0 / 7.0);
  std::printf("  RAG-RT-Focused        : %.3f\n", lm_traces);
  std::printf(
      "  A pure likelihood ranker, with no mechanistic simulation at all, "
      "%s from trace context — independent evidence the retrieval channel "
      "carries answer-relevant signal.\n",
      lm_traces > lm_base ? "also gains" : "does not gain");
  return 0;
}
