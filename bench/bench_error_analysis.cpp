// Error analysis: where the accuracy comes from and where it is lost,
// broken down by question type (relational / quantitative-recall /
// arithmetic) and by the judge's failure classes.  The paper reports
// aggregate accuracy; this bench decomposes it so the mechanisms in §3
// (arithmetic failures, trace transfer, misleading retrieval) are
// visible per slice.

#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "eval/judge.hpp"

namespace {

using namespace mcqa;

const char* question_class(const corpus::KnowledgeBase& kb,
                           const qgen::McqRecord& r) {
  if (r.math) return "arithmetic";
  const corpus::Fact& f = kb.fact(r.fact);
  return f.quantitative ? "value-recall" : "relational";
}

struct Slice {
  std::size_t total = 0;
  std::size_t correct = 0;
  std::size_t unparseable = 0;
  double acc() const {
    return total ? static_cast<double>(correct) / total : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  mcqa::bench::parse_args(argc, argv);
  using namespace mcqa;
  const auto& ctx = bench::shared_context();
  bench::print_scale_banner(ctx);

  const eval::Judge judge;
  std::printf("Per-question-type accuracy, synthetic benchmark\n\n");

  for (const char* model_name :
       {"TinyLlama-1.1B-Chat", "SmolLM3-3B", "Llama-3-8B-Instruct"}) {
    const auto& card = llm::student_card(model_name);
    const llm::StudentModel model(card);

    eval::TableWriter table({"Condition", "relational", "value-recall",
                             "arithmetic", "unparseable"});
    for (const rag::Condition condition :
         {rag::Condition::kBaseline, rag::Condition::kChunks,
          rag::Condition::kTraceFocused}) {
      std::map<std::string, Slice> slices;
      std::size_t unparseable = 0;
      for (const auto& record : ctx.benchmark()) {
        const llm::McqTask task =
            ctx.rag().prepare(record, condition, card.spec);
        const auto grading = judge.grade(task, model.answer(task).text);
        Slice& s = slices[question_class(ctx.kb(), record)];
        ++s.total;
        s.correct += grading.is_correct ? 1 : 0;
        unparseable += grading.extracted_option_number < 0 ? 1 : 0;
      }
      table.add_row({std::string(rag::condition_name(condition)),
                     eval::fmt_acc(slices["relational"].acc()) + " (n=" +
                         std::to_string(slices["relational"].total) + ")",
                     eval::fmt_acc(slices["value-recall"].acc()) + " (n=" +
                         std::to_string(slices["value-recall"].total) + ")",
                     eval::fmt_acc(slices["arithmetic"].acc()) + " (n=" +
                         std::to_string(slices["arithmetic"].total) + ")",
                     std::to_string(unparseable)});
    }
    std::printf("%s\n%s\n", model_name, table.render().c_str());
  }

  // Exam-side decomposition: math vs no-math per condition for the two
  // models whose Table 3 behaviour the paper highlights.
  std::printf("Astro exam decomposition (math vs no-math accuracy)\n\n");
  for (const char* model_name : {"OLMo-7B", "Llama-3-8B-Instruct"}) {
    const auto& card = llm::student_card(model_name);
    const llm::StudentModel model(card);
    eval::TableWriter table({"Condition", "math items", "no-math items"});
    for (const rag::Condition condition :
         {rag::Condition::kBaseline, rag::Condition::kChunks,
          rag::Condition::kTraceFocused}) {
      Slice math;
      Slice nomath;
      for (const auto& record : ctx.exam_all()) {
        const llm::McqTask task =
            ctx.rag().prepare(record, condition, card.spec);
        const auto grading = judge.grade(task, model.answer(task).text);
        Slice& s = record.math ? math : nomath;
        ++s.total;
        s.correct += grading.is_correct ? 1 : 0;
      }
      table.add_row({std::string(rag::condition_name(condition)),
                     eval::fmt_acc(math.acc()) + " (n=" +
                         std::to_string(math.total) + ")",
                     eval::fmt_acc(nomath.acc()) + " (n=" +
                         std::to_string(nomath.total) + ")"});
    }
    std::printf("%s\n%s\n", model_name, table.render().c_str());
  }
  std::printf(
      "Expected signatures: Llama-3's trace regression concentrates in "
      "the math column (stale-arithmetic copying); arithmetic items stay "
      "hard for every weak model under every condition; trace retrieval "
      "lifts the relational column the most.\n\n");

  // Sub-domain organization (paper section 5): per-sub-domain accuracy
  // for one mid-size model under the best condition.
  std::printf("Per-sub-domain accuracy (SmolLM3-3B, RT-Focused)\n\n");
  {
    const auto& card = llm::student_card("SmolLM3-3B");
    const llm::StudentModel model(card);
    std::map<std::string, Slice> by_domain;
    for (const auto& record : ctx.benchmark()) {
      const llm::McqTask task = ctx.rag().prepare(
          record, rag::Condition::kTraceFocused, card.spec);
      const auto grading = judge.grade(task, model.answer(task).text);
      Slice& s = by_domain[record.sub_domain];
      ++s.total;
      s.correct += grading.is_correct ? 1 : 0;
    }
    eval::TableWriter table({"Sub-domain", "Questions", "Accuracy"});
    for (const auto& [domain, slice] : by_domain) {
      table.add_row({domain, std::to_string(slice.total),
                     eval::fmt_acc(slice.acc())});
    }
    std::printf("%s", table.render().c_str());
  }
  return 0;
}
