// Table 3 reproduction: Astro exam (all 335 usable questions) accuracy
// under Baseline, RAG-Chunks, and best-of-three reasoning-trace modes.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  mcqa::bench::parse_args(argc, argv);
  using namespace mcqa;
  const auto& ctx = bench::shared_context();
  bench::print_scale_banner(ctx);

  const eval::SweepResult sweep = bench::run_full_sweep(ctx, ctx.exam_all());
  bench::print_exam_table("Table 3: Astro exam, all questions", sweep,
                          eval::paper_table3());

  // Distinctive Table 3 shapes the paper calls out.
  const double olmo_base =
      sweep.at("OLMo-7B", rag::Condition::kBaseline).value();
  const double olmo_chunks =
      sweep.at("OLMo-7B", rag::Condition::kChunks).value();
  std::printf("shape check: OLMo-7B chunks (%0.3f) %s baseline (%0.3f) "
              "(paper: chunk retrieval HURTS OLMo, 0.269 < 0.446)\n",
              olmo_chunks, olmo_chunks < olmo_base ? "<" : ">=", olmo_base);

  const double llama3_base =
      sweep.at("Llama-3-8B-Instruct", rag::Condition::kBaseline).value();
  const double llama3_rt =
      sweep.best_trace("Llama-3-8B-Instruct").second.value();
  std::printf("shape check: Llama-3-8B RT-best (%0.3f) %s baseline (%0.3f) "
              "(paper: traces HURT Llama-3 on the full exam, 0.542 < 0.665)\n",
              llama3_rt, llama3_rt < llama3_base ? "<" : ">=", llama3_base);

  std::printf(
      "reference: the paper cites a GPT-4 Astro baseline of roughly %.2f "
      "[Beattie et al., approximate].\n",
      llm::kGpt4AstroReference);
  return 0;
}
