// Future-work experiment (paper §5): "we will explore pretraining LLMs
// on reasoning traces to systematically compare their performance
// against contemporary peers."
//
// Implemented here with the statistical backend: train two n-gram LMs
// on an equal byte budget — one on parsed corpus text, one on distilled
// reasoning-trace text — and compare their likelihood-ranked MCQA
// accuracy with no retrieval at all.  If traces are the denser knowledge
// medium the paper argues they are, the trace-pretrained model should
// answer more questions per training byte.
//
// Since DESIGN.md §16 the same question is also asked with a *trained*
// parametric student: the src/train log-bilinear roster rows
// (trace-trained vs chunk-trained, equal budget) report held-out
// perplexity next to their MCQA accuracy.  Rows land in
// BENCH_trace_pretraining.json with the same per-row schema as
// BENCH_train.json.

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "bench_common.hpp"
#include "json/json.hpp"
#include "llm/ngram_lm.hpp"
#include "llm/trained_student.hpp"

int main(int argc, char** argv) {
  mcqa::bench::parse_args(argc, argv);
  using namespace mcqa;
  const auto& ctx = bench::shared_context();
  bench::print_scale_banner(ctx);

  // Assemble the two training corpora.
  std::string corpus_text;
  for (const auto& doc : ctx.parsed()) {
    corpus_text += doc.body_text();
    corpus_text += '\n';
  }
  std::string trace_text;
  for (int m = 0; m < trace::kTraceModeCount; ++m) {
    for (const auto& t : ctx.traces(static_cast<trace::TraceMode>(m))) {
      trace_text += t.retrieval_text();  // answers withheld, as stored
      trace_text += '\n';
    }
  }
  const std::size_t budget = std::min(corpus_text.size(), trace_text.size());
  corpus_text.resize(budget);
  trace_text.resize(budget);

  std::printf("Trace-pretraining experiment (paper section 5, future work)\n");
  std::printf("equal training budget: %zu KB each\n\n", budget / 1024);

  llm::NgramLmConfig cfg;
  cfg.bpe_vocab = 1500;
  cfg.name = "lm-papers";
  const llm::NgramLm lm_papers = llm::NgramLm::train(corpus_text, cfg);
  cfg.name = "lm-traces";
  const llm::NgramLm lm_traces = llm::NgramLm::train(trace_text, cfg);

  const eval::EvalHarness harness(ctx.rag());
  const llm::ModelSpec spec{"ngram", "in-tree", 0.001, 2026, 8192};

  // Evaluate with NO retrieval: pure parametric comparison.  Sweep over
  // held-in benchmark questions and the independent exam.
  json::Array report_rows;
  eval::TableWriter table({"Pretraining corpus", "Synthetic benchmark",
                           "Astro exam (no-math)"});
  for (const auto* lm : {&lm_papers, &lm_traces}) {
    const double synth =
        harness
            .evaluate(*lm, spec, ctx.benchmark(), rag::Condition::kBaseline)
            .value();
    const double astro =
        harness
            .evaluate(*lm, spec, ctx.exam_no_math(),
                      rag::Condition::kBaseline)
            .value();
    table.add_row({std::string(lm->name()), eval::fmt_acc(synth),
                   eval::fmt_acc(astro)});
    json::Value v = json::Value::object();
    v["model"] = json::Value(std::string(lm->name()));
    v["medium"] = json::Value(std::string(
        lm == &lm_papers ? "parsed papers" : "reasoning traces"));
    v["held_out_perplexity"] = json::Value(nullptr);  // n-gram: not tracked
    v["synthetic_accuracy"] = json::Value(synth);
    v["astro_nomath_accuracy"] = json::Value(astro);
    report_rows.push_back(std::move(v));
  }
  std::printf("%s\n", table.render().c_str());

  // Trainable-LM rows (DESIGN.md §16): the roster's log-bilinear pair,
  // trace-trained vs chunk-trained on the pipeline's equal-budget
  // training texts, likelihood-ranked under the same no-retrieval
  // condition — plus the held-out perplexity the n-gram rows can't
  // report.
  const core::PipelineContext::TrainedRoster& roster = ctx.trained_roster();
  eval::TableWriter lbl_table({"Trainable student", "Held-out ppl",
                               "Synthetic benchmark", "Astro exam (no-math)"});
  for (const llm::TrainedStudent* lm : {roster.traces.get(),
                                        roster.chunks.get()}) {
    const double synth = harness
                             .evaluate(*lm, lm->spec(), ctx.benchmark(),
                                       rag::Condition::kBaseline)
                             .value();
    const double astro = harness
                             .evaluate(*lm, lm->spec(), ctx.exam_no_math(),
                                       rag::Condition::kBaseline)
                             .value();
    const double ppl = lm->report().held_out_perplexity;
    lbl_table.add_row({std::string(lm->name()),
                       std::to_string(ppl).substr(0, 7), eval::fmt_acc(synth),
                       eval::fmt_acc(astro)});
    json::Value v = json::Value::object();
    v["model"] = json::Value(std::string(lm->name()));
    v["medium"] = json::Value(std::string(
        lm == roster.traces.get() ? "reasoning traces" : "source chunks"));
    v["held_out_perplexity"] = json::Value(ppl);
    v["synthetic_accuracy"] = json::Value(synth);
    v["astro_nomath_accuracy"] = json::Value(astro);
    report_rows.push_back(std::move(v));
  }
  std::printf("%s\n", lbl_table.render().c_str());
  std::printf("chance levels: %.3f (7 options) / %.3f (5 options)\n\n",
              1.0 / 7.0, 1.0 / 5.0);

  const double synth_papers =
      harness
          .evaluate(lm_papers, spec, ctx.benchmark(),
                    rag::Condition::kBaseline)
          .value();
  const double synth_traces =
      harness
          .evaluate(lm_traces, spec, ctx.benchmark(),
                    rag::Condition::kBaseline)
          .value();
  std::printf(
      "finding: per training byte, trace text is the %s knowledge medium "
      "for MCQA (traces restate one fact per record in answer-adjacent "
      "phrasing; papers bury facts in method/discussion prose).\n",
      synth_traces > synth_papers ? "denser" : "sparser");

  json::Value report = json::Value::object();
  bench::add_kernel_metadata(report);
  report["smoke"] = json::Value(bench::smoke());
  report["ngram_budget_bytes"] =
      json::Value(static_cast<std::int64_t>(budget));
  report["rows"] = json::Value(std::move(report_rows));
  std::ofstream out("BENCH_trace_pretraining.json");
  out << report.dump(2) << "\n";
  std::printf("wrote BENCH_trace_pretraining.json\n");
  return 0;
}
