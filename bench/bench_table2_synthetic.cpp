// Table 2 reproduction: accuracy of the eight SLMs on the synthetic
// radiation/cancer-biology benchmark under Baseline, RAG-Chunks and the
// three reasoning-trace retrieval modes.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  mcqa::bench::parse_args(argc, argv);
  using namespace mcqa;
  const auto& ctx = bench::shared_context();
  bench::print_scale_banner(ctx);

  std::printf("Table 2: synthetic benchmark accuracy\n");
  std::printf("values: measured (paper)\n\n");

  const eval::SweepResult sweep = bench::run_full_sweep(ctx, ctx.benchmark());

  eval::TableWriter table({"Model", "Baseline", "RAG-Chunks", "RAG-RT-Detail",
                           "RAG-RT-Focused", "RAG-RT-Efficient"});
  double dev = 0.0;
  int cells = 0;
  for (const auto& row : eval::paper_table2()) {
    std::vector<std::string> cols{std::string(row.model)};
    for (const rag::Condition c : eval::all_conditions()) {
      const double measured = sweep.at(row.model, c).value();
      const double paper = row.accuracy[eval::paper_condition_index(c)];
      cols.push_back(bench::cell(measured, paper));
      dev += std::abs(measured - paper);
      ++cells;
    }
    table.add_row(std::move(cols));
  }
  std::printf("%s\nmean |measured-paper| = %.3f\n\n", table.render().c_str(),
              dev / cells);

  // The paper's §3.1 qualitative claims, checked live.
  std::size_t rt_beats_chunks = 0;
  std::size_t chunks_beats_base = 0;
  for (const auto& row : eval::paper_table2()) {
    const double base = sweep.at(row.model, rag::Condition::kBaseline).value();
    const double chunks = sweep.at(row.model, rag::Condition::kChunks).value();
    const double best = sweep.best_trace(row.model).second.value();
    rt_beats_chunks += best > chunks ? 1 : 0;
    chunks_beats_base += chunks > base ? 1 : 0;
  }
  std::printf("shape check: RAG-RT(best) > RAG-Chunks for %zu/8 models "
              "(paper: 8/8)\n",
              rt_beats_chunks);
  std::printf("shape check: RAG-Chunks > Baseline for %zu/8 models "
              "(paper: 8/8)\n",
              chunks_beats_base);
  return 0;
}
