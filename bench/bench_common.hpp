#pragma once
// Shared plumbing for the experiment-reproduction benches: the shared
// pipeline context, sweep runners, and measured-vs-paper table printing.

#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/eval_cache.hpp"
#include "core/pipeline.hpp"
#include "eval/paper_reference.hpp"
#include "eval/report.hpp"
#include "index/kernels.hpp"
#include "json/json.hpp"
#include "parallel/thread_pool.hpp"

namespace mcqa::bench {

// --- smoke mode --------------------------------------------------------------
//
// Every bench binary accepts `--smoke`: the fast path the `bench`-labelled
// ctest entries run.  Smoke mode keeps every shape check but shrinks the
// work — sweeps run on a record prefix, google-benchmark timing sweeps are
// skipped — so `ctest -L bench` verifies the suite in seconds per binary
// instead of minutes.  Full runs (no flag) are unchanged.

inline bool g_smoke = false;

/// Detect `--smoke` and strip it from argv (so benchmark::Initialize in
/// the gbench binaries never sees an unknown flag).
inline bool parse_args(int* argc, char** argv) {
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    if (std::string_view(argv[r]) == "--smoke") {
      g_smoke = true;
      continue;
    }
    argv[w++] = argv[r];
  }
  *argc = w;
  return g_smoke;
}

/// Convenience overload for benches that never re-read argv.
inline bool parse_args(int argc, char** argv) {
  return parse_args(&argc, argv);
}

inline bool smoke() { return g_smoke; }

/// Smoke-mode record cap: a deterministic prefix, so smoke runs are
/// reproducible (just not comparable to the paper's numbers).
inline std::vector<qgen::McqRecord> smoke_subset(
    const std::vector<qgen::McqRecord>& records, std::size_t cap = 96) {
  if (!g_smoke || records.size() <= cap) return records;
  return std::vector<qgen::McqRecord>(records.begin(),
                                      records.begin() + static_cast<std::ptrdiff_t>(cap));
}

/// The context every table/figure bench evaluates against.  Built once
/// per process at the default reproduction scale.
inline const core::PipelineContext& shared_context() {
  return core::PipelineContext::shared();
}

inline void print_scale_banner(const core::PipelineContext& ctx) {
  const auto& s = ctx.stats();
  std::printf(
      "[reproduction scale %.3f: %zu docs, %zu chunks, %zu questions, "
      "%zu exam items; paper ran 22,548 docs / 173,318 chunks / 16,680 "
      "questions]\n\n",
      ctx.config().corpus.scale, s.documents, s.chunks,
      ctx.benchmark().size(), ctx.exam_all().size());
}

/// Stamp the kernel-dispatch provenance every BENCH_*.json carries:
/// which scan-kernel ISA the runtime dispatcher selected (scalar or
/// avx2 — a pure function of the CPU and MCQA_KERNEL_ISA, DESIGN.md
/// §18) and the multi-query tile width the scan layer ran with.
/// Numbers from different hosts are only comparable when these match.
inline void add_kernel_metadata(json::Value& report) {
  report["kernel_isa"] =
      index::kernels::isa_name(index::kernels::dispatched_isa());
  report["kernel_tile_q"] = index::kernels::kTileQ;
}

/// One pool for every sweep a bench binary runs (sweeps never nest).
inline parallel::ThreadPool& shared_sweep_pool() {
  static parallel::ThreadPool pool(0);
  return pool;
}

/// Run the five-condition sweep for all registered students.  In smoke
/// mode the sweep covers a deterministic record prefix (accuracies then
/// deviate from the paper columns — smoke verifies shape, not values).
///
/// When the context checkpoints (`$MCQA_CHECKPOINT_DIR`), finished cells
/// are served from the content-addressed eval-cell cache alongside the
/// stage-1..5 artifacts, so a warm bench re-run skips evaluation
/// entirely; cold behavior (and every accuracy) is unchanged.
inline eval::SweepResult run_full_sweep(
    const core::PipelineContext& ctx,
    const std::vector<qgen::McqRecord>& records) {
  const std::vector<qgen::McqRecord> subset = smoke_subset(records);
  if (subset.size() != records.size()) {
    std::printf("[smoke: sweeping first %zu of %zu records]\n", subset.size(),
                records.size());
  }
  std::unique_ptr<core::EvalCellCache> cell_cache;
  if (!ctx.config().checkpoint_dir.empty()) {
    cell_cache = std::make_unique<core::EvalCellCache>(
        ctx.config().checkpoint_dir, core::EvalCellCache::sweep_key(ctx, subset));
  }
  eval::HarnessConfig hc;
  hc.pool = &shared_sweep_pool();
  hc.cell_cache = cell_cache.get();
  const eval::EvalHarness harness(ctx.rag(), hc);
  return harness.sweep(ctx.student_ptrs(), ctx.student_specs(), subset,
                       eval::all_conditions());
}

/// "measured (paper)" cell text.
inline std::string cell(double measured, double paper) {
  return eval::fmt_acc(measured) + " (" + eval::fmt_acc(paper) + ")";
}

/// Print a Table 3/4-style table: baseline, chunks, best-of-traces.
inline void print_exam_table(const char* title,
                             const eval::SweepResult& sweep,
                             const std::vector<eval::PaperRow3>& paper) {
  eval::TableWriter table(
      {"Model", "Baseline", "RAG-Chunks", "RAG-RTs (best)", "best mode"});
  double dev = 0.0;
  int cells = 0;
  for (const auto& row : paper) {
    const std::string model(row.model);
    const double base = sweep.at(model, rag::Condition::kBaseline).value();
    const double chunks = sweep.at(model, rag::Condition::kChunks).value();
    const auto [best_cond, best_acc] = sweep.best_trace(model);
    table.add_row({model, cell(base, row.accuracy[0]),
                   cell(chunks, row.accuracy[1]),
                   cell(best_acc.value(), row.accuracy[2]),
                   std::string(rag::condition_name(best_cond))});
    dev += std::abs(base - row.accuracy[0]) +
           std::abs(chunks - row.accuracy[1]) +
           std::abs(best_acc.value() - row.accuracy[2]);
    cells += 3;
  }
  std::printf("%s\nvalues: measured (paper)\n\n%s\nmean |measured-paper| = %.3f\n\n",
              title, table.render().c_str(), dev / cells);
}

/// Figure 4/5/6 payload: per-model % improvement of best-RT vs baseline
/// and vs chunks.
struct GainSeries {
  std::vector<std::string> models;
  std::vector<double> vs_baseline;
  std::vector<double> vs_chunks;
};

inline GainSeries compute_gains(const eval::SweepResult& sweep) {
  GainSeries g;
  for (const auto& card : llm::student_registry()) {
    const std::string& model = card.spec.name;
    const double base = sweep.at(model, rag::Condition::kBaseline).value();
    const double chunks = sweep.at(model, rag::Condition::kChunks).value();
    const double best = sweep.best_trace(model).second.value();
    g.models.push_back(model);
    g.vs_baseline.push_back(eval::pct_improvement(best, base));
    g.vs_chunks.push_back(eval::pct_improvement(best, chunks));
  }
  return g;
}

inline void print_gain_figure(const char* title, const GainSeries& g) {
  const std::vector<eval::FigureSeries> series{
      {"RT vs Baseline", g.vs_baseline},
      {"RT vs RAG-Chunks", g.vs_chunks},
  };
  std::printf("%s\n", eval::render_grouped_bars(g.models, series, title,
                                                /*scale=*/4.0)
                          .c_str());
}

}  // namespace mcqa::bench
