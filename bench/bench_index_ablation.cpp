// Index ablation (A1 in DESIGN.md): recall@10, query throughput and
// bytes/vector for flat / IVF / HNSW / SQ8 / IVF-PQ indexes,
// reproducing the accuracy/speed/memory trade-off surface the paper
// delegates to FAISS.
//
// Two corpora:
//   * the real chunk-embedding distribution from the shared pipeline
//     context (google-benchmark sweeps + the per-kind JSON entries), and
//   * a clustered synthetic vector corpus (corpus/vector_corpus.hpp)
//     scaled to ~1M rows — the sweep that actually separates the tiers:
//     {flat, ivf, hnsw, sq8, ivfpq} x {resident, mmap}, reporting QPS,
//     bytes/vector and recall@10 to BENCH_index.json.
//
// Flags (defaults reproduce the historic tracking numbers exactly):
//   --rows N / --dim N   kernel-layer FlatIndex tracking case
//                        (default 50000 x 256, generation stream
//                        unchanged at the defaults)
//   --sweep-rows N       synthetic sweep size (default 1,000,000)
//   --smoke              shape checks on a shrunk (~2k-row) sweep; no
//                        timing, no JSON (the ctest entry)
//
// Shape checks (smoke and full):
//   * batched == sequential results at 1/2/8 threads, all five kinds,
//   * SQ8/IVF-PQ with candidates covering the store are bit-identical
//     (rows AND scores) to FlatIndex — the exact-rerank contract
//     (smoke scale only; at 1M the covering scan would dwarf the sweep),
//   * quantized recall@10 >= 0.95 after rerank,
//   * IVF-PQ scan payload <= 0.35x flat bytes/vector (SQ8 is 0.5x by
//     construction: 1 byte/dim vs fp16's 2),
//   * mmap variants open O(1) (payload stays a view: mmap_backed()) and
//     return results bit-identical to the resident index.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "corpus/vector_corpus.hpp"
#include "embed/embedder.hpp"
#include "index/kernels.hpp"
#include "index/quantized.hpp"
#include "index/vector_index.hpp"
#include "index/vector_store.hpp"
#include "json/json.hpp"
#include "parallel/thread_pool.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace mcqa;

// --- flags -------------------------------------------------------------------

struct Flags {
  std::size_t rows = 50000;          ///< tracking case rows
  std::size_t dim = 256;             ///< tracking case dim
  std::size_t sweep_rows = 1000000;  ///< synthetic sweep size
};

Flags g_flags;

/// Strip --rows/--dim/--sweep-rows (with their values) from argv so
/// benchmark::Initialize never sees them.
void parse_flags(int* argc, char** argv) {
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    const std::string_view arg(argv[r]);
    std::size_t* slot = nullptr;
    if (arg == "--rows") slot = &g_flags.rows;
    else if (arg == "--dim") slot = &g_flags.dim;
    else if (arg == "--sweep-rows") slot = &g_flags.sweep_rows;
    if (slot != nullptr && r + 1 < *argc) {
      *slot = static_cast<std::size_t>(std::strtoull(argv[r + 1], nullptr, 10));
      ++r;
      continue;
    }
    argv[w++] = argv[r];
  }
  *argc = w;
  if (g_flags.rows == 0) g_flags.rows = 1;
  if (g_flags.dim == 0) g_flags.dim = 1;
  if (g_flags.sweep_rows == 0) g_flags.sweep_rows = 1;
}

// --- real-chunk data (gbench sweeps + per-kind JSON entries) -----------------

struct AblationData {
  std::vector<embed::Vector> base;
  std::vector<embed::Vector> queries;
};

const AblationData& data() {
  static const AblationData d = [] {
    AblationData out;
    const auto& ctx = bench::shared_context();
    const auto& store = ctx.chunk_store();
    const auto& embedder = ctx.embedder();
    for (std::size_t i = 0; i < store.size(); ++i) {
      out.base.push_back(embedder.embed(store.text_of(i)));
    }
    for (const auto& record : ctx.benchmark()) {
      out.queries.push_back(embedder.embed(record.stem));
      if (out.queries.size() >= 64) break;
    }
    return out;
  }();
  return d;
}

double mean_recall(const index::VectorIndex& idx, std::size_t k = 10) {
  double sum = 0.0;
  for (const auto& q : data().queries) {
    sum += index::recall_at_k(idx.search(q, k),
                              index::exact_search(data().base, q, k));
  }
  return sum / static_cast<double>(data().queries.size());
}

template <typename MakeIndex>
void run_search_bench(benchmark::State& state, MakeIndex make) {
  const auto idx = make();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        idx->search(data().queries[i % data().queries.size()], 10));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
  state.counters["recall@10"] = mean_recall(*idx);
  state.counters["n"] = static_cast<double>(data().base.size());
}

std::unique_ptr<index::VectorIndex> make_kind(index::IndexKind kind,
                                              std::size_t dim) {
  switch (kind) {
    case index::IndexKind::kFlat:
      return std::make_unique<index::FlatIndex>(dim);
    case index::IndexKind::kIvf: {
      index::IvfConfig cfg;
      cfg.nlist = 64;
      return std::make_unique<index::IvfIndex>(dim, cfg);
    }
    case index::IndexKind::kHnsw:
      return std::make_unique<index::HnswIndex>(dim);
    case index::IndexKind::kSq8:
      return std::make_unique<index::Sq8Index>(dim);
    case index::IndexKind::kIvfPq: {
      index::IvfPqConfig cfg;
      cfg.nlist = 64;
      cfg.ksub = 64;
      return std::make_unique<index::IvfPqIndex>(dim, cfg);
    }
  }
  return nullptr;
}

constexpr index::IndexKind kAllKinds[] = {
    index::IndexKind::kFlat, index::IndexKind::kIvf, index::IndexKind::kHnsw,
    index::IndexKind::kSq8, index::IndexKind::kIvfPq};

void BM_FlatSearch(benchmark::State& state) {
  run_search_bench(state, [] {
    auto idx = std::make_unique<index::FlatIndex>(data().base[0].size());
    for (const auto& v : data().base) idx->add(v);
    idx->build();
    return idx;
  });
}
BENCHMARK(BM_FlatSearch);

void BM_IvfSearch(benchmark::State& state) {
  const auto nprobe = static_cast<std::size_t>(state.range(0));
  run_search_bench(state, [nprobe] {
    index::IvfConfig cfg;
    cfg.nlist = 64;
    cfg.nprobe = nprobe;
    auto idx =
        std::make_unique<index::IvfIndex>(data().base[0].size(), cfg);
    for (const auto& v : data().base) idx->add(v);
    idx->build();
    return idx;
  });
}
BENCHMARK(BM_IvfSearch)->Arg(1)->Arg(4)->Arg(16);

void BM_HnswSearch(benchmark::State& state) {
  const auto ef = static_cast<std::size_t>(state.range(0));
  run_search_bench(state, [ef] {
    index::HnswConfig cfg;
    cfg.ef_search = ef;
    auto idx =
        std::make_unique<index::HnswIndex>(data().base[0].size(), cfg);
    for (const auto& v : data().base) idx->add(v);
    return idx;
  });
}
BENCHMARK(BM_HnswSearch)->Arg(16)->Arg(64)->Arg(128);

void BM_Sq8Search(benchmark::State& state) {
  const auto oversample = static_cast<std::size_t>(state.range(0));
  run_search_bench(state, [oversample] {
    index::Sq8Config cfg;
    cfg.oversample = oversample;
    auto idx =
        std::make_unique<index::Sq8Index>(data().base[0].size(), cfg);
    for (const auto& v : data().base) idx->add(v);
    idx->build();
    return idx;
  });
}
BENCHMARK(BM_Sq8Search)->Arg(2)->Arg(4)->Arg(8);

void BM_IvfPqSearch(benchmark::State& state) {
  const auto nprobe = static_cast<std::size_t>(state.range(0));
  run_search_bench(state, [nprobe] {
    index::IvfPqConfig cfg;
    cfg.nlist = 64;
    cfg.ksub = 64;
    cfg.nprobe = nprobe;
    auto idx =
        std::make_unique<index::IvfPqIndex>(data().base[0].size(), cfg);
    for (const auto& v : data().base) idx->add(v);
    idx->build();
    return idx;
  });
}
BENCHMARK(BM_IvfPqSearch)->Arg(4)->Arg(8)->Arg(16);

// --- kernel-layer tracking case (default: dim 256 / 50k rows) ----------------

struct FlatCase {
  std::unique_ptr<index::FlatIndex> idx;
  std::vector<embed::Vector> queries;
};

const FlatCase& flat_case() {
  static const FlatCase c = [] {
    const std::size_t dim = g_flags.dim;
    const std::size_t rows = g_flags.rows;
    FlatCase out;
    out.idx = std::make_unique<index::FlatIndex>(dim);
    // Generation stream unchanged at the default 50000 x 256, so the
    // tracked numbers stay comparable across PRs.
    util::Rng rng(1);
    embed::Vector v(dim);
    for (std::size_t i = 0; i < rows; ++i) {
      for (auto& x : v) x = static_cast<float>(rng.normal());
      embed::normalize(v);
      out.idx->add(v);
    }
    for (std::size_t i = 0; i < 32; ++i) {
      for (auto& x : v) x = static_cast<float>(rng.normal());
      embed::normalize(v);
      out.queries.push_back(v);
    }
    return out;
  }();
  return c;
}

void BM_FlatSearchTrackingCase(benchmark::State& state) {
  const auto& c = flat_case();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        c.idx->search(c.queries[i % c.queries.size()], 10));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
  state.counters["rows"] = static_cast<double>(c.idx->size());
  state.counters["dim"] = static_cast<double>(c.idx->dim());
}
BENCHMARK(BM_FlatSearchTrackingCase);

// --- shared checks -----------------------------------------------------------

bool results_equal(const std::vector<index::SearchResult>& a,
                   const std::vector<index::SearchResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].row != b[i].row || a[i].score != b[i].score) return false;
  }
  return true;
}

double timed_batch_qps(const index::VectorIndex& idx,
                       const std::vector<embed::Vector>& queries,
                       parallel::ThreadPool& pool, std::size_t k = 10,
                       std::size_t repeats = 4) {
  util::Stopwatch sw;
  std::size_t done = 0;
  for (std::size_t r = 0; r < repeats; ++r) {
    benchmark::DoNotOptimize(idx.search_batch(queries, k, pool));
    done += queries.size();
  }
  return static_cast<double>(done) / sw.seconds();
}

/// Batched results must equal the sequential loop at any thread count
/// (rows and scores) — the determinism contract of search_batch.
bool batch_matches_sequential(const index::VectorIndex& idx,
                              const std::vector<embed::Vector>& queries,
                              std::size_t k = 10) {
  std::vector<std::vector<index::SearchResult>> want;
  for (const auto& q : queries) want.push_back(idx.search(q, k));
  for (const std::size_t threads : {1u, 2u, 8u}) {
    parallel::ThreadPool pool(threads);
    const auto got = idx.search_batch(queries, k, pool);
    if (got.size() != want.size()) return false;
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (!results_equal(got[i], want[i])) return false;
    }
  }
  return true;
}

bool check(bool ok, const char* what) {
  std::printf("shape check [%s]: %s\n", what, ok ? "PASS" : "FAIL");
  return ok;
}

// --- query-batch-width sweep (DESIGN.md §18) ---------------------------------

/// Order-sensitive digest over (row, score-bits): equal digests mean
/// bit-identical result sets in identical rank order.
std::uint64_t digest_results(
    const std::vector<std::vector<index::SearchResult>>& results) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 64; b += 8) {
      h ^= (v >> b) & 0xffu;
      h *= 1099511628211ULL;
    }
  };
  for (const auto& per_query : results) {
    mix(per_query.size());
    for (const auto& r : per_query) {
      mix(r.row);
      mix(std::bit_cast<std::uint32_t>(r.score));
    }
  }
  return h;
}

/// One tiled pass over `queries` in groups of `width` (single thread,
/// so the speedup measured is the tile kernels', not the pool's).
std::vector<std::vector<index::SearchResult>> tiled_pass(
    const index::VectorIndex& idx, const std::vector<embed::Vector>& queries,
    std::size_t width, std::size_t k) {
  std::vector<std::vector<index::SearchResult>> out;
  out.reserve(queries.size());
  for (std::size_t b = 0; b < queries.size(); b += width) {
    const std::size_t e = std::min(b + width, queries.size());
    const std::vector<embed::Vector> group(
        queries.begin() + static_cast<std::ptrdiff_t>(b),
        queries.begin() + static_cast<std::ptrdiff_t>(e));
    auto part = idx.search_tiled(group, k);
    for (auto& r : part) out.push_back(std::move(r));
  }
  return out;
}

struct WidthSweepOutcome {
  json::Value report = json::Value::object();
  bool checks_pass = true;
  double best_speedup = 0.0;  ///< max over widths >= kTileQ
};

/// Q=1/4/8/16 batch-width sweep: per-width tiled QPS against the
/// per-query scan, digest equality at every width, and — when both
/// kernel tables are compiled — a scalar-vs-AVX2 digest comparison via
/// the in-process dispatch override.  Shape checks: digests identical
/// everywhere; tiled QPS >= single-query QPS for every width >= 4
/// (width 1 runs the same work through the tile path, so it is only
/// reported, not gated).
WidthSweepOutcome run_width_sweep(const index::VectorIndex& idx,
                                  const std::vector<embed::Vector>& queries,
                                  std::size_t repeats) {
  constexpr std::size_t kWidths[] = {1, 4, 8, 16};
  constexpr std::size_t kK = 10;
  WidthSweepOutcome out;

  // Per-query reference: best-of-`repeats` wall time.
  std::vector<std::vector<index::SearchResult>> want;
  double single_s = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < repeats; ++r) {
    util::Stopwatch sw;
    want.clear();
    for (const auto& q : queries) want.push_back(idx.search(q, kK));
    single_s = std::min(single_s, sw.seconds());
  }
  const double qps_single = static_cast<double>(queries.size()) / single_s;
  const std::uint64_t want_digest = digest_results(want);

  out.report["rows"] = idx.size();
  out.report["dim"] = idx.dim();
  out.report["queries"] = queries.size();
  out.report["k"] = kK;
  out.report["qps_single"] = qps_single;
  out.report["digest"] = util::hex_digest(want_digest, 16);

  json::Array widths;
  for (const std::size_t w : kWidths) {
    std::vector<std::vector<index::SearchResult>> got;
    double tiled_s = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < repeats; ++r) {
      util::Stopwatch sw;
      got = tiled_pass(idx, queries, w, kK);
      tiled_s = std::min(tiled_s, sw.seconds());
    }
    const double qps = static_cast<double>(queries.size()) / tiled_s;
    const bool digest_ok = digest_results(got) == want_digest;
    out.checks_pass &= digest_ok;
    if (w >= 4) out.checks_pass &= qps >= qps_single;
    if (w >= index::kernels::kTileQ) {
      out.best_speedup = std::max(out.best_speedup, qps / qps_single);
    }
    char label[96];
    std::snprintf(label, sizeof(label),
                  "width %zu: digest == per-query%s", w,
                  w >= 4 ? " && tiled qps >= single qps" : "");
    check(digest_ok && (w < 4 || qps >= qps_single), label);
    std::printf("  width %2zu: %10.0f qps (%.2fx single)\n", w, qps,
                qps / qps_single);

    json::Value entry = json::Value::object();
    entry["width"] = w;
    entry["qps_tiled"] = qps;
    entry["speedup_vs_single"] = qps / qps_single;
    entry["digest_matches_single"] = digest_ok;
    widths.push_back(std::move(entry));
  }
  out.report["widths"] = json::Value(std::move(widths));

  // Cross-ISA digest: rerun one tiled pass per compiled table through
  // the in-process dispatch override; every table must produce the
  // per-query digest bit-for-bit.
  const index::kernels::KernelIsa before = index::kernels::dispatched_isa();
  json::Array isa_entries;
  bool isa_ok = true;
  for (const index::kernels::KernelIsa isa :
       {index::kernels::KernelIsa::kScalar,
        index::kernels::KernelIsa::kAvx2}) {
    if (!index::kernels::set_dispatch_for_testing(isa)) continue;
    const std::uint64_t d =
        digest_results(tiled_pass(idx, queries, index::kernels::kTileQ, kK));
    isa_ok &= d == want_digest;
    json::Value entry = json::Value::object();
    entry["isa"] = index::kernels::isa_name(isa);
    entry["digest"] = util::hex_digest(d, 16);
    isa_entries.push_back(std::move(entry));
  }
  index::kernels::set_dispatch_for_testing(before);
  out.checks_pass &= isa_ok;
  out.report["isa_digests"] = json::Value(std::move(isa_entries));
  check(isa_ok, "tiled digests identical across compiled kernel ISAs");
  return out;
}

// --- synthetic million-row sweep ---------------------------------------------

struct SweepConfig {
  std::size_t rows = 1000000;
  std::size_t dim = 256;
  std::size_t clusters = 0;  ///< 0 = rows/32 (mean topic ~32 rows)
  std::size_t queries = 32;
  std::size_t k = 10;
  /// Covering-rerank bit-identity check (candidate set = whole store):
  /// smoke scale only — at 1M the covering scan would dwarf the sweep.
  bool check_rerank_identity = false;
};

std::size_t sweep_nlist(std::size_t rows) {
  if (rows >= 500000) return 256;
  if (rows >= 50000) return 128;
  return 64;
}

std::unique_ptr<index::VectorIndex> make_sweep_index(index::IndexKind kind,
                                                     const SweepConfig& sc) {
  const bool big = sc.rows >= 100000;
  switch (kind) {
    case index::IndexKind::kFlat:
      return std::make_unique<index::FlatIndex>(sc.dim);
    case index::IndexKind::kIvf: {
      index::IvfConfig cfg;
      cfg.nlist = sweep_nlist(sc.rows);
      cfg.nprobe = 16;
      cfg.train_iters = big ? 4 : 12;  // Lloyd cost is O(n * nlist * dim)
      return std::make_unique<index::IvfIndex>(sc.dim, cfg);
    }
    case index::IndexKind::kHnsw: {
      index::HnswConfig cfg;
      // In-cluster rows near-tie; the default beam misses badly there.
      cfg.ef_search = 128;
      return std::make_unique<index::HnswIndex>(sc.dim, cfg);
    }
    case index::IndexKind::kSq8: {
      index::Sq8Config cfg;
      cfg.oversample = 16;
      return std::make_unique<index::Sq8Index>(sc.dim, cfg);
    }
    case index::IndexKind::kIvfPq: {
      index::IvfPqConfig cfg;
      cfg.nlist = sweep_nlist(sc.rows);
      cfg.nprobe = 32;
      cfg.m = 16;
      cfg.ksub = big ? 256 : 64;  // amortize codebooks at small scale
      // Candidates must cover the query's whole topic (its rows
      // near-tie in ADC score); the biggest topic is ~11x the mean of
      // 32 rows, so k * 64 = 640 covers with margin.
      cfg.oversample = big ? 64 : 16;
      return std::make_unique<index::IvfPqIndex>(sc.dim, cfg);
    }
  }
  return nullptr;
}

struct SweepOutcome {
  json::Value report = json::Value::object();
  bool checks_pass = true;
};

SweepOutcome run_sweep(const SweepConfig& sc, bool timing) {
  corpus::VectorCorpusConfig cc;
  cc.rows = sc.rows;
  cc.dim = sc.dim;
  cc.clusters = sc.clusters != 0 ? sc.clusters
                                 : std::max<std::size_t>(64, sc.rows / 32);
  const corpus::VectorCorpus vc(cc);
  parallel::ThreadPool& pool = bench::shared_sweep_pool();

  std::vector<embed::Vector> queries;
  queries.reserve(sc.queries);
  for (std::size_t j = 0; j < sc.queries; ++j) queries.push_back(vc.query(j));

  std::printf("sweep: %zu rows x dim %zu (%zu clusters), %zu queries, "
              "k=%zu\n",
              sc.rows, sc.dim, cc.clusters, sc.queries, sc.k);

  SweepOutcome out;
  out.report["rows"] = sc.rows;
  out.report["dim"] = sc.dim;
  out.report["clusters"] = cc.clusters;
  out.report["queries"] = sc.queries;
  out.report["k"] = sc.k;
  json::Array entries;

  const std::filesystem::path blob_dir =
      std::filesystem::temp_directory_path() / "mcqa_index_sweep";
  std::filesystem::create_directories(blob_dir);

  // Ground truth + flat reference for the bit-identity and recall
  // checks (FlatIndex is exact over the fp16-at-rest rows — the same
  // precision the rerank pass sees).
  std::vector<std::vector<index::SearchResult>> truth(queries.size());
  double flat_bytes_per_vec = 0.0;
  bool have_truth = false;

  for (const index::IndexKind kind : kAllKinds) {
    auto idx = make_sweep_index(kind, sc);
    util::Stopwatch build_sw;
    constexpr std::size_t kBlock = 65536;
    for (std::size_t at = 0; at < sc.rows; at += kBlock) {
      idx->add_batch(vc.block(at, std::min(sc.rows, at + kBlock), pool));
    }
    idx->build(pool);
    const double build_s = build_sw.seconds();

    std::vector<std::vector<index::SearchResult>> results(queries.size());
    util::Stopwatch query_sw;
    for (std::size_t j = 0; j < queries.size(); ++j) {
      results[j] = idx->search(queries[j], sc.k);
    }
    const double qps =
        static_cast<double>(queries.size()) / query_sw.seconds();

    if (kind == index::IndexKind::kFlat) {
      truth = results;
      have_truth = true;
      flat_bytes_per_vec = static_cast<double>(idx->payload_bytes()) /
                           static_cast<double>(sc.rows);
    }
    double recall = 0.0;
    for (std::size_t j = 0; j < queries.size(); ++j) {
      recall += index::recall_at_k(results[j], truth[j]);
    }
    recall /= static_cast<double>(queries.size());

    const double bytes_per_vec = static_cast<double>(idx->payload_bytes()) /
                                 static_cast<double>(sc.rows);
    const double rerank_per_vec = static_cast<double>(idx->rerank_bytes()) /
                                  static_cast<double>(sc.rows);

    // mmap variant: save, reopen as views, re-run the queries.
    const std::string blob_path =
        (blob_dir / (std::string(index::index_kind_name(kind)) + ".idx"))
            .string();
    {
      const std::string blob = idx->save();
      std::ofstream f(blob_path, std::ios::binary);
      f.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    }
    util::Stopwatch open_sw;
    const index::MappedIndex mapped = index::open_index_mmap(blob_path);
    const double open_s = open_sw.seconds();

    std::vector<std::vector<index::SearchResult>> mmap_results(
        queries.size());
    util::Stopwatch mmap_sw;
    for (std::size_t j = 0; j < queries.size(); ++j) {
      mmap_results[j] = mapped.index->search(queries[j], sc.k);
    }
    const double mmap_qps =
        static_cast<double>(queries.size()) / mmap_sw.seconds();

    bool mmap_identical = true;
    for (std::size_t j = 0; j < queries.size(); ++j) {
      mmap_identical =
          mmap_identical && results_equal(results[j], mmap_results[j]);
    }

    char label[64];
    std::snprintf(label, sizeof(label), "%s: mmap open O(1) + identical",
                  std::string(index::index_kind_name(kind)).c_str());
    out.checks_pass &=
        check(mapped.index->mmap_backed() && mmap_identical, label);

    for (const bool is_mmap : {false, true}) {
      json::Value entry = json::Value::object();
      entry["kind"] = index::index_kind_name(kind);
      entry["storage"] = is_mmap ? "mmap" : "resident";
      entry["bytes_per_vector"] = bytes_per_vec;
      entry["rerank_bytes_per_vector"] = rerank_per_vec;
      entry["recall_at_10"] = recall;
      if (is_mmap) {
        entry["open_s"] = open_s;
        entry["qps"] = mmap_qps;
        entry["mmap_backed"] = mapped.index->mmap_backed();
      } else {
        entry["build_s"] = build_s;
        entry["qps"] = qps;
      }
      entries.push_back(std::move(entry));
    }
    if (timing) {
      std::printf(
          "  %-5s  build %7.2fs  qps %9.1f | mmap open %.6fs qps %9.1f | "
          "%7.1f B/vec (+%5.1f rerank)  recall@10 %.3f\n",
          std::string(index::index_kind_name(kind)).c_str(), build_s, qps,
          open_s, mmap_qps, bytes_per_vec, rerank_per_vec, recall);
    }

    // Quantized-tier checks: recall floor and memory envelope.
    if (kind == index::IndexKind::kSq8 || kind == index::IndexKind::kIvfPq) {
      std::snprintf(label, sizeof(label), "%s: recall@10 >= 0.95",
                    std::string(index::index_kind_name(kind)).c_str());
      out.checks_pass &= check(recall >= 0.95, label);
    }
    if (kind == index::IndexKind::kIvfPq && have_truth) {
      out.checks_pass &= check(bytes_per_vec <= 0.35 * flat_bytes_per_vec,
                               "ivfpq: scan payload <= 0.35x flat");
    }
    if (kind == index::IndexKind::kSq8 && have_truth) {
      out.checks_pass &= check(bytes_per_vec <= 0.52 * flat_bytes_per_vec,
                               "sq8: scan payload <= 0.52x flat");
    }

    // Exact-rerank bit-identity under full candidate coverage.
    if (sc.check_rerank_identity &&
        (kind == index::IndexKind::kSq8 ||
         kind == index::IndexKind::kIvfPq)) {
      std::unique_ptr<index::VectorIndex> covering;
      if (kind == index::IndexKind::kSq8) {
        index::Sq8Config cfg;
        cfg.min_candidates = sc.rows;
        covering = std::make_unique<index::Sq8Index>(sc.dim, cfg);
      } else {
        index::IvfPqConfig cfg;
        cfg.nlist = sweep_nlist(sc.rows);
        cfg.nprobe = sc.rows;  // probe everything
        cfg.ksub = 64;
        cfg.min_candidates = sc.rows;
        covering = std::make_unique<index::IvfPqIndex>(sc.dim, cfg);
      }
      for (std::size_t at = 0; at < sc.rows; at += kBlock) {
        covering->add_batch(vc.block(at, std::min(sc.rows, at + kBlock),
                                     pool));
      }
      covering->build(pool);
      bool identical = true;
      for (std::size_t j = 0; j < queries.size(); ++j) {
        identical = identical &&
                    results_equal(covering->search(queries[j], sc.k),
                                  truth[j]);
      }
      std::snprintf(label, sizeof(label),
                    "%s: covering rerank == FlatIndex bit-identical",
                    std::string(index::index_kind_name(kind)).c_str());
      out.checks_pass &= check(identical, label);
    }
  }
  out.report["indexes"] = json::Value(std::move(entries));
  std::error_code ec;
  std::filesystem::remove_all(blob_dir, ec);
  return out;
}

// --- smoke / full drivers ----------------------------------------------------

/// Smoke path: determinism + quantized-tier shape checks on shrunk
/// inputs (no timing, no JSON) — what the `bench`-labelled ctest entry
/// runs.
int run_smoke() {
  bool pass = true;

  const std::size_t dim = data().base[0].size();
  const std::vector<embed::Vector> queries(
      data().queries.begin(),
      data().queries.begin() +
          static_cast<std::ptrdiff_t>(std::min<std::size_t>(
              16, data().queries.size())));
  for (const index::IndexKind kind : kAllKinds) {
    auto idx = make_kind(kind, dim);
    idx->add_batch(data().base);
    idx->build();
    char label[64];
    std::snprintf(label, sizeof(label),
                  "%s: batched == sequential at 1/2/8 threads",
                  std::string(index::index_kind_name(kind)).c_str());
    pass &= check(batch_matches_sequential(*idx, queries), label);
  }

  SweepConfig sc;
  sc.rows = 2048;
  sc.clusters = 64;
  sc.queries = 16;
  sc.check_rerank_identity = true;
  pass &= run_sweep(sc, /*timing=*/false).checks_pass;

  // Query-batch-width sweep on a shrunk synthetic flat case: digests
  // identical at Q=1/4/8/16, tiled QPS >= single-query QPS from Q=4 up,
  // and scalar/AVX2 digest equality.  8192 x 256 keeps the kernel (not
  // fixture noise) dominant while staying smoke-fast.
  {
    std::printf("\nquery-batch-width sweep (8192 rows x dim 256):\n");
    index::FlatIndex flat(256);
    util::Rng rng(7);
    embed::Vector v(256);
    for (std::size_t i = 0; i < 8192; ++i) {
      for (auto& x : v) x = static_cast<float>(rng.normal());
      embed::normalize(v);
      flat.add(v);
    }
    std::vector<embed::Vector> wq;
    for (std::size_t i = 0; i < 16; ++i) {
      for (auto& x : v) x = static_cast<float>(rng.normal());
      embed::normalize(v);
      wq.push_back(v);
    }
    pass &= run_width_sweep(flat, wq, /*repeats=*/3).checks_pass;
  }
  return pass ? 0 : 1;
}

void write_bench_json() {
  const std::size_t dim = data().base[0].size();
  parallel::ThreadPool pool;  // machine-sized

  json::Value report = json::Value::object();
  report["bench"] = "index_ablation";
  bench::add_kernel_metadata(report);
  report["n"] = data().base.size();
  report["dim"] = dim;
  report["k"] = 10;
  report["batch_threads"] = pool.thread_count();

  json::Array indexes;
  bool all_deterministic = true;
  for (const index::IndexKind kind : kAllKinds) {
    auto idx = make_kind(kind, dim);
    for (const auto& v : data().base) idx->add(v);
    idx->build();

    // Single-query throughput (sequential loop).
    util::Stopwatch sw;
    std::size_t singles = 0;
    for (std::size_t r = 0; r < 2; ++r) {
      for (const auto& q : data().queries) {
        benchmark::DoNotOptimize(idx->search(q, 10));
        ++singles;
      }
    }
    const double qps_single = static_cast<double>(singles) / sw.seconds();
    const double qps_batch = timed_batch_qps(*idx, data().queries, pool);
    const bool deterministic =
        batch_matches_sequential(*idx, data().queries);
    all_deterministic = all_deterministic && deterministic;

    json::Value entry = json::Value::object();
    entry["kind"] = index::index_kind_name(kind);
    entry["qps_single"] = qps_single;
    entry["qps_batch"] = qps_batch;
    entry["recall_at_10"] = mean_recall(*idx);
    entry["bytes_per_vector"] =
        static_cast<double>(idx->payload_bytes()) /
        static_cast<double>(std::max<std::size_t>(idx->size(), 1));
    entry["batch_matches_sequential"] = deterministic;
    indexes.push_back(std::move(entry));
  }
  report["indexes"] = json::Value(std::move(indexes));

  // The kernel-layer tracking case (default: dim 256 / 50k rows).
  {
    const auto& c = flat_case();
    util::Stopwatch sw;
    std::size_t singles = 0;
    for (const auto& q : c.queries) {
      benchmark::DoNotOptimize(c.idx->search(q, 10));
      ++singles;
    }
    json::Value entry = json::Value::object();
    entry["rows"] = c.idx->size();
    entry["dim"] = c.idx->dim();
    entry["qps_single"] = static_cast<double>(singles) / sw.seconds();
    entry["qps_batch"] = timed_batch_qps(*c.idx, c.queries, pool, 10, 1);
    report["flat_50k_dim256"] = std::move(entry);
  }

  // Query-batch-width sweep on the tracking case (Q=1/4/8/16): the
  // tiled scan layer's acceptance bar is >= 2x the per-query QPS at
  // Q >= kTileQ, digests bit-identical throughout.
  {
    std::printf("\nquery-batch-width sweep (tracking case):\n");
    const auto& c = flat_case();
    WidthSweepOutcome ws = run_width_sweep(*c.idx, c.queries, /*repeats=*/3);
    ws.report["speedup_at_tile_width"] = ws.best_speedup;
    ws.report["meets_2x_bar"] = ws.best_speedup >= 2.0;
    check(ws.best_speedup >= 2.0,
          "tracking case: tiled qps >= 2x single-query at Q >= 8");
    all_deterministic = all_deterministic && ws.checks_pass;
    report["batch_width_sweep"] = std::move(ws.report);
  }

  // The synthetic clustered sweep (the tier-separating experiment).
  SweepConfig sc;
  sc.rows = g_flags.sweep_rows;
  const SweepOutcome sweep = run_sweep(sc, /*timing=*/true);
  report["sweep"] = sweep.report;

  std::ofstream out("BENCH_index.json");
  out << report.dump(2) << "\n";
  std::printf(
      "\nshape check: batched results identical to sequential search at "
      "1/2/8 threads for all index kinds: %s\n",
      all_deterministic ? "PASS" : "FAIL");
  std::printf("sweep shape checks: %s\n",
              sweep.checks_pass ? "PASS" : "FAIL");
  std::printf("wrote BENCH_index.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  parse_flags(&argc, argv);
  const bool smoke = mcqa::bench::parse_args(&argc, argv);
  std::printf(
      "Index ablation (A1): recall@10 vs throughput vs bytes/vector — "
      "flat/IVF/HNSW plus the quantized tier (SQ8, IVF-PQ with exact "
      "fp16 rerank), resident and mmap.\n"
      "Similarity kernels: blocked fixed-lane-order (see DESIGN.md); "
      "top-k via bounded heap; batched path fans across the thread "
      "pool.\n\n");
  if (smoke) return run_smoke();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_bench_json();
  return 0;
}
