// Index ablation (A1 in DESIGN.md): recall@10 and query throughput for
// flat / IVF / HNSW indexes over the real chunk-embedding distribution,
// reproducing the accuracy/speed trade-off the paper delegates to FAISS.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "index/vector_index.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace mcqa;

struct AblationData {
  std::vector<embed::Vector> base;
  std::vector<embed::Vector> queries;
};

const AblationData& data() {
  static const AblationData d = [] {
    AblationData out;
    const auto& ctx = bench::shared_context();
    const auto& store = ctx.chunk_store();
    const auto& embedder = ctx.embedder();
    for (std::size_t i = 0; i < store.size(); ++i) {
      out.base.push_back(embedder.embed(store.text_of(i)));
    }
    for (const auto& record : ctx.benchmark()) {
      out.queries.push_back(embedder.embed(record.stem));
      if (out.queries.size() >= 64) break;
    }
    return out;
  }();
  return d;
}

double mean_recall(const index::VectorIndex& idx, std::size_t k = 10) {
  double sum = 0.0;
  for (const auto& q : data().queries) {
    sum += index::recall_at_k(idx.search(q, k),
                              index::exact_search(data().base, q, k));
  }
  return sum / static_cast<double>(data().queries.size());
}

template <typename MakeIndex>
void run_search_bench(benchmark::State& state, MakeIndex make) {
  const auto idx = make();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        idx->search(data().queries[i % data().queries.size()], 10));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
  state.counters["recall@10"] = mean_recall(*idx);
  state.counters["n"] = static_cast<double>(data().base.size());
}

void BM_FlatSearch(benchmark::State& state) {
  run_search_bench(state, [] {
    auto idx = std::make_unique<index::FlatIndex>(data().base[0].size());
    for (const auto& v : data().base) idx->add(v);
    idx->build();
    return idx;
  });
}
BENCHMARK(BM_FlatSearch);

void BM_IvfSearch(benchmark::State& state) {
  const auto nprobe = static_cast<std::size_t>(state.range(0));
  run_search_bench(state, [nprobe] {
    index::IvfConfig cfg;
    cfg.nlist = 64;
    cfg.nprobe = nprobe;
    auto idx =
        std::make_unique<index::IvfIndex>(data().base[0].size(), cfg);
    for (const auto& v : data().base) idx->add(v);
    idx->build();
    return idx;
  });
}
BENCHMARK(BM_IvfSearch)->Arg(1)->Arg(4)->Arg(16);

void BM_HnswSearch(benchmark::State& state) {
  const auto ef = static_cast<std::size_t>(state.range(0));
  run_search_bench(state, [ef] {
    index::HnswConfig cfg;
    cfg.ef_search = ef;
    auto idx =
        std::make_unique<index::HnswIndex>(data().base[0].size(), cfg);
    for (const auto& v : data().base) idx->add(v);
    return idx;
  });
}
BENCHMARK(BM_HnswSearch)->Arg(16)->Arg(64)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "Index ablation (A1): recall@10 vs throughput over %zu chunk "
      "embeddings — the FAISS-style accuracy/speed trade-off.\n\n",
      data().base.size());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
