// Index ablation (A1 in DESIGN.md): recall@10 and query throughput for
// flat / IVF / HNSW indexes over the real chunk-embedding distribution,
// reproducing the accuracy/speed trade-off the paper delegates to
// FAISS.
//
// Beyond the google-benchmark sweeps this binary:
//   * measures the dim-256 / 50k-row FlatIndex case the kernel layer is
//     tracked against (blocked fp16 kernels + bounded-heap top-k),
//   * measures queries/second through the batched search path,
//   * verifies batched == sequential results (the determinism shape
//     check), and
//   * writes BENCH_index.json (QPS + recall per index kind) so later
//     PRs can track the perf trajectory machine-readably.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>

#include "bench_common.hpp"
#include "embed/embedder.hpp"
#include "index/vector_index.hpp"
#include "index/vector_store.hpp"
#include "json/json.hpp"
#include "parallel/thread_pool.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace mcqa;

struct AblationData {
  std::vector<embed::Vector> base;
  std::vector<embed::Vector> queries;
};

const AblationData& data() {
  static const AblationData d = [] {
    AblationData out;
    const auto& ctx = bench::shared_context();
    const auto& store = ctx.chunk_store();
    const auto& embedder = ctx.embedder();
    for (std::size_t i = 0; i < store.size(); ++i) {
      out.base.push_back(embedder.embed(store.text_of(i)));
    }
    for (const auto& record : ctx.benchmark()) {
      out.queries.push_back(embedder.embed(record.stem));
      if (out.queries.size() >= 64) break;
    }
    return out;
  }();
  return d;
}

double mean_recall(const index::VectorIndex& idx, std::size_t k = 10) {
  double sum = 0.0;
  for (const auto& q : data().queries) {
    sum += index::recall_at_k(idx.search(q, k),
                              index::exact_search(data().base, q, k));
  }
  return sum / static_cast<double>(data().queries.size());
}

template <typename MakeIndex>
void run_search_bench(benchmark::State& state, MakeIndex make) {
  const auto idx = make();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        idx->search(data().queries[i % data().queries.size()], 10));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
  state.counters["recall@10"] = mean_recall(*idx);
  state.counters["n"] = static_cast<double>(data().base.size());
}

std::unique_ptr<index::VectorIndex> make_kind(index::IndexKind kind,
                                              std::size_t dim) {
  switch (kind) {
    case index::IndexKind::kFlat:
      return std::make_unique<index::FlatIndex>(dim);
    case index::IndexKind::kIvf: {
      index::IvfConfig cfg;
      cfg.nlist = 64;
      return std::make_unique<index::IvfIndex>(dim, cfg);
    }
    case index::IndexKind::kHnsw:
      return std::make_unique<index::HnswIndex>(dim);
  }
  return nullptr;
}

void BM_FlatSearch(benchmark::State& state) {
  run_search_bench(state, [] {
    auto idx = std::make_unique<index::FlatIndex>(data().base[0].size());
    for (const auto& v : data().base) idx->add(v);
    idx->build();
    return idx;
  });
}
BENCHMARK(BM_FlatSearch);

void BM_IvfSearch(benchmark::State& state) {
  const auto nprobe = static_cast<std::size_t>(state.range(0));
  run_search_bench(state, [nprobe] {
    index::IvfConfig cfg;
    cfg.nlist = 64;
    cfg.nprobe = nprobe;
    auto idx =
        std::make_unique<index::IvfIndex>(data().base[0].size(), cfg);
    for (const auto& v : data().base) idx->add(v);
    idx->build();
    return idx;
  });
}
BENCHMARK(BM_IvfSearch)->Arg(1)->Arg(4)->Arg(16);

void BM_HnswSearch(benchmark::State& state) {
  const auto ef = static_cast<std::size_t>(state.range(0));
  run_search_bench(state, [ef] {
    index::HnswConfig cfg;
    cfg.ef_search = ef;
    auto idx =
        std::make_unique<index::HnswIndex>(data().base[0].size(), cfg);
    for (const auto& v : data().base) idx->add(v);
    return idx;
  });
}
BENCHMARK(BM_HnswSearch)->Arg(16)->Arg(64)->Arg(128);

// --- kernel-layer tracking case: FlatIndex at dim 256 / 50k rows -------------

struct FlatCase {
  std::unique_ptr<index::FlatIndex> idx;
  std::vector<embed::Vector> queries;
};

const FlatCase& flat_50k() {
  static const FlatCase c = [] {
    constexpr std::size_t kDim = 256;
    constexpr std::size_t kRows = 50000;
    FlatCase out;
    out.idx = std::make_unique<index::FlatIndex>(kDim);
    util::Rng rng(1);
    embed::Vector v(kDim);
    for (std::size_t i = 0; i < kRows; ++i) {
      for (auto& x : v) x = static_cast<float>(rng.normal());
      embed::normalize(v);
      out.idx->add(v);
    }
    for (std::size_t i = 0; i < 32; ++i) {
      for (auto& x : v) x = static_cast<float>(rng.normal());
      embed::normalize(v);
      out.queries.push_back(v);
    }
    return out;
  }();
  return c;
}

void BM_FlatSearch50kDim256(benchmark::State& state) {
  const auto& c = flat_50k();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        c.idx->search(c.queries[i % c.queries.size()], 10));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_FlatSearch50kDim256);

// --- batched-path QPS + machine-readable report ------------------------------

double timed_batch_qps(const index::VectorIndex& idx,
                       const std::vector<embed::Vector>& queries,
                       parallel::ThreadPool& pool, std::size_t k = 10,
                       std::size_t repeats = 4) {
  util::Stopwatch sw;
  std::size_t done = 0;
  for (std::size_t r = 0; r < repeats; ++r) {
    benchmark::DoNotOptimize(idx.search_batch(queries, k, pool));
    done += queries.size();
  }
  return static_cast<double>(done) / sw.seconds();
}

/// Batched results must equal the sequential loop at any thread count
/// (rows and scores) — the determinism contract of search_batch.
bool batch_matches_sequential(const index::VectorIndex& idx,
                              const std::vector<embed::Vector>& queries,
                              std::size_t k = 10) {
  std::vector<std::vector<index::SearchResult>> want;
  for (const auto& q : queries) want.push_back(idx.search(q, k));
  for (const std::size_t threads : {1u, 2u, 8u}) {
    parallel::ThreadPool pool(threads);
    const auto got = idx.search_batch(queries, k, pool);
    if (got.size() != want.size()) return false;
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (got[i].size() != want[i].size()) return false;
      for (std::size_t j = 0; j < got[i].size(); ++j) {
        if (got[i][j].row != want[i][j].row ||
            got[i][j].score != want[i][j].score) {
          return false;
        }
      }
    }
  }
  return true;
}

/// Smoke path: determinism shape checks only (no timing, no JSON) —
/// batched search must match sequential for every index kind.
int run_smoke() {
  const std::size_t dim = data().base[0].size();
  const std::vector<embed::Vector> queries(
      data().queries.begin(),
      data().queries.begin() +
          static_cast<std::ptrdiff_t>(std::min<std::size_t>(
              16, data().queries.size())));
  bool all_deterministic = true;
  for (const index::IndexKind kind :
       {index::IndexKind::kFlat, index::IndexKind::kIvf,
        index::IndexKind::kHnsw}) {
    auto idx = make_kind(kind, dim);
    idx->add_batch(data().base);
    idx->build();
    const bool deterministic = batch_matches_sequential(*idx, queries);
    std::printf("shape check [%s]: batched == sequential at 1/2/8 threads: %s\n",
                std::string(index::index_kind_name(kind)).c_str(),
                deterministic ? "PASS" : "FAIL");
    all_deterministic = all_deterministic && deterministic;
  }
  return all_deterministic ? 0 : 1;
}

void write_bench_json() {
  const std::size_t dim = data().base[0].size();
  parallel::ThreadPool pool;  // machine-sized

  json::Value report = json::Value::object();
  report["bench"] = "index_ablation";
  report["n"] = data().base.size();
  report["dim"] = dim;
  report["k"] = 10;
  report["batch_threads"] = pool.thread_count();

  json::Array indexes;
  bool all_deterministic = true;
  for (const index::IndexKind kind :
       {index::IndexKind::kFlat, index::IndexKind::kIvf,
        index::IndexKind::kHnsw}) {
    auto idx = make_kind(kind, dim);
    for (const auto& v : data().base) idx->add(v);
    idx->build();

    // Single-query throughput (sequential loop).
    util::Stopwatch sw;
    std::size_t singles = 0;
    for (std::size_t r = 0; r < 2; ++r) {
      for (const auto& q : data().queries) {
        benchmark::DoNotOptimize(idx->search(q, 10));
        ++singles;
      }
    }
    const double qps_single = static_cast<double>(singles) / sw.seconds();
    const double qps_batch = timed_batch_qps(*idx, data().queries, pool);
    const bool deterministic =
        batch_matches_sequential(*idx, data().queries);
    all_deterministic = all_deterministic && deterministic;

    json::Value entry = json::Value::object();
    entry["kind"] = index::index_kind_name(kind);
    entry["qps_single"] = qps_single;
    entry["qps_batch"] = qps_batch;
    entry["recall_at_10"] = mean_recall(*idx);
    entry["batch_matches_sequential"] = deterministic;
    indexes.push_back(std::move(entry));
  }
  report["indexes"] = json::Value(std::move(indexes));

  // The kernel-layer tracking case (dim 256 / 50k rows).
  {
    const auto& c = flat_50k();
    util::Stopwatch sw;
    std::size_t singles = 0;
    for (const auto& q : c.queries) {
      benchmark::DoNotOptimize(c.idx->search(q, 10));
      ++singles;
    }
    json::Value entry = json::Value::object();
    entry["rows"] = c.idx->size();
    entry["dim"] = c.idx->dim();
    entry["qps_single"] = static_cast<double>(singles) / sw.seconds();
    entry["qps_batch"] = timed_batch_qps(*c.idx, c.queries, pool, 10, 1);
    report["flat_50k_dim256"] = std::move(entry);
  }

  std::ofstream out("BENCH_index.json");
  out << report.dump(2) << "\n";
  std::printf(
      "\nshape check: batched results identical to sequential search at "
      "1/2/8 threads for all index kinds: %s\n",
      all_deterministic ? "PASS" : "FAIL");
  std::printf("wrote BENCH_index.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = mcqa::bench::parse_args(&argc, argv);
  std::printf(
      "Index ablation (A1): recall@10 vs throughput over %zu chunk "
      "embeddings — the FAISS-style accuracy/speed trade-off.\n"
      "Similarity kernels: blocked fixed-lane-order (see DESIGN.md); "
      "top-k via bounded heap; batched path fans across the thread "
      "pool.\n\n",
      data().base.size());
  if (smoke) return run_smoke();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_bench_json();
  return 0;
}
