// Batched generation through the simulated Argo proxy (paper §2:
// "Chunks are fed to GPT-4.1 in batches through the Argo-Proxy API").
// Sweeps batch size and in-flight worker slots against simulated
// makespan, and shows the retry tax at elevated transient-failure rates
// — the operational trade-offs of driving a remote LLM from an HPC
// pipeline.

#include <cstdio>

#include "bench_common.hpp"
#include "llm/argo_proxy.hpp"

int main(int argc, char** argv) {
  mcqa::bench::parse_args(argc, argv);
  using namespace mcqa;
  const auto& ctx = bench::shared_context();
  bench::print_scale_banner(ctx);

  // Use a slice of the real chunk stream as the request load.
  std::vector<chunk::Chunk> load(
      ctx.chunks().begin(),
      ctx.chunks().begin() + std::min<std::size_t>(512, ctx.chunks().size()));

  std::printf("Batch-size sweep (%zu requests, 4 in-flight slots, "
              "2%% transient failures):\n\n",
              load.size());
  eval::TableWriter batch_table({"Batch size", "Upstream calls", "Retries",
                                 "Simulated makespan", "Req/s"});
  for (const std::size_t batch : {1u, 4u, 8u, 16u, 32u, 64u}) {
    llm::ProxyConfig cfg;
    cfg.batch_size = batch;
    const llm::BatchTeacherClient client(ctx.teacher(), cfg);
    llm::ProxyStats stats;
    client.generate_mcqs(load, &stats);
    batch_table.add_row(
        {std::to_string(batch), std::to_string(stats.batches),
         std::to_string(stats.retries),
         eval::fmt_acc(stats.simulated_wall_ms / 1000.0) + " s",
         eval::fmt_acc(stats.throughput_per_s())});
  }
  std::printf("%s\n", batch_table.render().c_str());

  std::printf("Worker-slot sweep (batch 8):\n\n");
  eval::TableWriter worker_table({"Workers", "Simulated makespan", "Req/s",
                                  "Parallel efficiency"});
  double base_wall = 0.0;
  for (const std::size_t workers : {1u, 2u, 4u, 8u, 16u}) {
    llm::ProxyConfig cfg;
    cfg.workers = workers;
    const llm::BatchTeacherClient client(ctx.teacher(), cfg);
    llm::ProxyStats stats;
    client.generate_mcqs(load, &stats);
    if (workers == 1) base_wall = stats.simulated_wall_ms;
    const double eff =
        base_wall / (stats.simulated_wall_ms * static_cast<double>(workers));
    worker_table.add_row(
        {std::to_string(workers),
         eval::fmt_acc(stats.simulated_wall_ms / 1000.0) + " s",
         eval::fmt_acc(stats.throughput_per_s()),
         eval::fmt_pct(100.0 * eff - 100.0 + 100.0)});
  }
  std::printf("%s\n", worker_table.render().c_str());

  std::printf("Failure-rate sweep (batch 8, 4 workers, 3 retries):\n\n");
  eval::TableWriter fail_table({"Transient failure rate", "Retries",
                                "Permanent failures", "Makespan overhead"});
  double clean_wall = 0.0;
  for (const double rate : {0.0, 0.02, 0.10, 0.25, 0.50}) {
    llm::ProxyConfig cfg;
    cfg.transient_failure_rate = rate;
    const llm::BatchTeacherClient client(ctx.teacher(), cfg);
    llm::ProxyStats stats;
    client.generate_mcqs(load, &stats);
    if (rate == 0.0) clean_wall = stats.simulated_wall_ms;
    fail_table.add_row(
        {eval::fmt_pct(100.0 * rate), std::to_string(stats.retries),
         std::to_string(stats.permanent_failures),
         eval::fmt_pct(eval::pct_improvement(stats.simulated_wall_ms,
                                             clean_wall))});
  }
  std::printf("%s\n", fail_table.render().c_str());
  std::printf(
      "Reading: per-call overhead dominates at batch 1; batching "
      "amortizes it, worker slots parallelize it, and the retry tax "
      "grows super-linearly with the failure rate — the glue economics "
      "the paper's Parsl deployment manages.\n");
  return 0;
}
