// Trainable-student experiment (DESIGN.md §16): the src/train
// log-bilinear model, minibatch-SGD-trained on reasoning-trace text vs
// chunk text at an equal byte budget, evaluated as eval-grid rows next
// to the frozen calibrated roster.
//
// Shape checks (smoke and full):
//   * trained weights byte-identical across pool thread counts {1,2,8}
//     and across runs (the fixed-lane gradient reduction contract);
//   * warm checkpoint restore byte-identical to the cold train that
//     produced the blob;
//   * SGD beats the untrained seeded init on held-out perplexity;
//   * trace-trained MCQA accuracy >= chunk-trained, and both beat the
//     untrained-init baseline (the paper's traces-as-denser-medium
//     claim, now measured with a *trained* parametric student);
//   * the roster rows ("lbl-traces"/"lbl-chunks") register their
//     (config, data) fingerprints for eval-cell keying.
//
// Full mode additionally sweeps the two trainable rows across every
// retrieval condition (the extended eval grid) and writes
// BENCH_train.json so later PRs can track the trajectory.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/checkpoint.hpp"
#include "json/json.hpp"
#include "llm/trained_student.hpp"
#include "train/train_io.hpp"
#include "train/trainer.hpp"

namespace {

using namespace mcqa;

bool g_all_pass = true;

void check(const char* name, bool pass) {
  std::printf("shape check: %-58s %s\n", name, pass ? "PASS" : "FAIL");
  g_all_pass = g_all_pass && pass;
}

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    path = std::filesystem::temp_directory_path() /
           ("mcqa-bench-train-" + std::to_string(::getpid()));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

/// Byte-identity across thread counts and across runs, on a prefix of
/// the real trace text (small enough to retrain three times here).
void check_thread_identity(const std::string& trace_text) {
  train::TrainConfig cfg = core::PipelineContext::roster_train_config();
  cfg.epochs = 1;
  const std::string prefix =
      trace_text.substr(0, std::min<std::size_t>(trace_text.size(), 48 * 1024));
  std::string blob1, blob8;
  {
    parallel::ThreadPool pool(1);
    blob1 = train::serialize_trained(train::train_lbl(prefix, cfg, &pool));
  }
  {
    parallel::ThreadPool pool(2);
    const std::string blob2 =
        train::serialize_trained(train::train_lbl(prefix, cfg, &pool));
    check("weights byte-identical, pool threads {1,2}", blob1 == blob2);
  }
  {
    parallel::ThreadPool pool(8);
    blob8 = train::serialize_trained(train::train_lbl(prefix, cfg, &pool));
    check("weights byte-identical, pool threads {1,8}", blob1 == blob8);
  }
  {
    parallel::ThreadPool pool(8);
    const std::string again =
        train::serialize_trained(train::train_lbl(prefix, cfg, &pool));
    check("weights byte-identical across runs", blob8 == again);
  }
}

/// Warm restore from the artifact cache == the cold train, byte for
/// byte (the trained-weights checkpoint contract).
void check_warm_cold(const std::string& trace_text) {
  train::TrainConfig cfg = core::PipelineContext::roster_train_config();
  cfg.epochs = 1;
  const std::string prefix =
      trace_text.substr(0, std::min<std::size_t>(trace_text.size(), 48 * 1024));
  TempDir dir;
  const core::ArtifactCache cache(dir.path.string());
  const std::uint64_t key = train::trained_checkpoint_key(
      core::code_fingerprint(), cfg, prefix);
  const std::string cold =
      train::serialize_trained(train::train_lbl(prefix, cfg));
  cache.store("trained-lbl", key, cold);
  const auto blob = cache.load("trained-lbl", key);
  const bool hit = blob.has_value();
  const std::string warm =
      hit ? train::serialize_trained(train::deserialize_trained(*blob))
          : std::string();
  check("warm checkpoint restore byte-identical to cold train",
        hit && warm == cold);
}

}  // namespace

int main(int argc, char** argv) {
  mcqa::bench::parse_args(argc, argv);
  using namespace mcqa;
  const auto& ctx = bench::shared_context();
  bench::print_scale_banner(ctx);

  std::printf("Trainable student (log-bilinear, minibatch SGD) — "
              "trace-trained vs chunk-trained roster rows\n\n");

  auto [trace_text, chunk_text] = ctx.training_texts();
  std::printf("equal training budget: %zu KB each\n\n",
              trace_text.size() / 1024);

  check_thread_identity(trace_text);
  check_warm_cold(trace_text);

  // --- the experiment: train on each medium, evaluate with no retrieval -----
  train::TrainConfig tc = core::PipelineContext::roster_train_config();
  std::unique_ptr<llm::TrainedStudent> traces_owned, chunks_owned;
  const llm::TrainedStudent* lbl_traces = nullptr;
  const llm::TrainedStudent* lbl_chunks = nullptr;
  if (bench::smoke()) {
    // Smoke trains on a capped budget so ctest stays fast; the shape
    // checks are unchanged.
    const std::size_t cap =
        std::min<std::size_t>(trace_text.size(), 160 * 1024);
    trace_text.resize(cap);
    chunk_text.resize(cap);
    llm::TrainedStudentConfig cfg;
    cfg.train = tc;
    cfg.name = "lbl-traces";
    traces_owned = std::make_unique<llm::TrainedStudent>(
        llm::TrainedStudent::train(trace_text, cfg, &bench::shared_sweep_pool()));
    cfg.name = "lbl-chunks";
    chunks_owned = std::make_unique<llm::TrainedStudent>(
        llm::TrainedStudent::train(chunk_text, cfg, &bench::shared_sweep_pool()));
    lbl_traces = traces_owned.get();
    lbl_chunks = chunks_owned.get();
  } else {
    // Full mode uses the lazily-built roster rows themselves (warm-
    // loaded from $MCQA_CHECKPOINT_DIR when set, byte-identical).
    const auto& roster = ctx.trained_roster();
    lbl_traces = roster.traces.get();
    lbl_chunks = roster.chunks.get();
    check("roster rows registered for eval-cell keying",
          core::registered_model_fingerprint("lbl-traces") ==
                  roster.traces->fingerprint() &&
              core::registered_model_fingerprint("lbl-chunks") ==
                  roster.chunks->fingerprint());
  }

  // Untrained-init baseline: identical tokenizer/classes/seeded
  // weights, zero SGD steps.
  llm::TrainedStudentConfig untrained_cfg;
  untrained_cfg.train = tc;
  untrained_cfg.train.epochs = 0;
  untrained_cfg.name = "lbl-untrained";
  const llm::TrainedStudent lbl_untrained = llm::TrainedStudent::train(
      trace_text, untrained_cfg, &bench::shared_sweep_pool());

  const auto records = bench::smoke_subset(ctx.benchmark(), 48);
  const auto exam = bench::smoke_subset(ctx.exam_no_math(), 48);
  eval::HarnessConfig hc;
  hc.pool = &bench::shared_sweep_pool();
  const eval::EvalHarness harness(ctx.rag(), hc);

  struct Row {
    const llm::TrainedStudent* model;
    double synth = 0.0;
    double astro = 0.0;
  };
  std::vector<Row> rows = {{lbl_traces}, {lbl_chunks}, {&lbl_untrained}};
  eval::TableWriter table({"Model", "Training medium", "Held-out ppl",
                           "Synthetic benchmark", "Astro exam (no-math)"});
  const char* media[] = {"reasoning traces", "source chunks", "(untrained)"};
  json::Array report_rows;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    Row& row = rows[i];
    const llm::ModelSpec spec = row.model->spec();
    row.synth = harness
                    .evaluate(*row.model, spec, records,
                              rag::Condition::kBaseline)
                    .value();
    row.astro =
        harness.evaluate(*row.model, spec, exam, rag::Condition::kBaseline)
            .value();
    const double ppl = row.model->report().held_out_perplexity;
    table.add_row({std::string(row.model->name()), media[i],
                   std::to_string(ppl).substr(0, 7), eval::fmt_acc(row.synth),
                   eval::fmt_acc(row.astro)});
    json::Value v = json::Value::object();
    v["model"] = json::Value(std::string(row.model->name()));
    v["medium"] = json::Value(std::string(media[i]));
    v["held_out_perplexity"] = json::Value(ppl);
    v["synthetic_accuracy"] = json::Value(row.synth);
    v["astro_nomath_accuracy"] = json::Value(row.astro);
    v["params"] =
        json::Value(static_cast<std::int64_t>(row.model->model().param_count()));
    v["train_tokens"] = json::Value(
        static_cast<std::int64_t>(row.model->report().train_tokens));
    report_rows.push_back(std::move(v));
  }
  std::printf("\n%s\n", table.render().c_str());
  std::printf("chance levels: %.3f (7 options) / %.3f (5 options)\n\n",
              1.0 / 7.0, 1.0 / 5.0);

  check("SGD lowers held-out perplexity vs untrained init",
        lbl_traces->report().held_out_perplexity <
            lbl_untrained.report().held_out_perplexity);
  check("trace-trained accuracy >= chunk-trained (synthetic)",
        rows[0].synth >= rows[1].synth);
  check("trace-trained beats untrained init (synthetic)",
        rows[0].synth > rows[2].synth);
  check("chunk-trained beats untrained init (synthetic)",
        rows[1].synth > rows[2].synth);

  // --- extended eval grid: the trainable rows under every condition ---------
  json::Array grid_rows;
  {
    const std::vector<const llm::LanguageModel*> models = {lbl_traces,
                                                           lbl_chunks};
    const std::vector<llm::ModelSpec> specs = {lbl_traces->spec(),
                                               lbl_chunks->spec()};
    const auto conditions = eval::all_conditions();
    const eval::SweepResult sweep =
        harness.sweep(models, specs, records, conditions);
    eval::TableWriter grid({"Model", "Condition", "Accuracy"});
    for (const auto& cell : sweep.cells) {
      grid.add_row({cell.model, std::string(rag::condition_name(cell.condition)),
                    eval::fmt_acc(cell.accuracy.value())});
      json::Value v = json::Value::object();
      v["model"] = json::Value(cell.model);
      v["condition"] = json::Value(std::string(rag::condition_name(cell.condition)));
      v["accuracy"] = json::Value(cell.accuracy.value());
      grid_rows.push_back(std::move(v));
    }
    std::printf("extended eval grid (trainable rows):\n%s\n",
                grid.render().c_str());
  }

  json::Value report = json::Value::object();
  bench::add_kernel_metadata(report);
  report["smoke"] = json::Value(bench::smoke());
  report["budget_bytes"] = json::Value(static_cast<std::int64_t>(trace_text.size()));
  report["rows"] = json::Value(std::move(report_rows));
  report["extended_grid"] = json::Value(std::move(grid_rows));
  report["all_pass"] = json::Value(g_all_pass);
  std::ofstream out("BENCH_train.json");
  out << report.dump(2) << "\n";

  std::printf(
      "Reading: with a *trained* parametric student the paper's claim "
      "survives — per training byte, reasoning-trace text yields more "
      "answerable questions than source-chunk text, and the whole "
      "trajectory (init, minibatch order, gradient reduction) is "
      "byte-reproducible at any thread count.\n");
  std::printf("wrote BENCH_train.json\n");
  return g_all_pass ? 0 : 1;
}
