// Scaling experiment (S1 in DESIGN.md): the paper's HPC claim is that
// the pipeline parallelizes across workers (Parsl on ALCF machines).
// This bench measures parse+chunk+embed throughput against thread count
// on a fixed document set, using google-benchmark for timing.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <thread>

#include "bench_common.hpp"
#include "chunk/chunker.hpp"
#include "corpus/corpus_builder.hpp"
#include "embed/hashed_embedder.hpp"
#include "index/vector_index.hpp"
#include "parallel/thread_pool.hpp"
#include "parse/adaptive.hpp"
#include "util/rng.hpp"

namespace {

using namespace mcqa;

const corpus::SyntheticCorpus& fixed_corpus() {
  static const corpus::SyntheticCorpus corpus = [] {
    const corpus::KnowledgeBase kb = corpus::KnowledgeBase::generate(
        corpus::KbConfig{.facts_per_topic = 24, .seed = 7, .math_fraction = 0.4});
    corpus::CorpusConfig cfg;
    cfg.scale = 0.004;  // ~90 docs: enough work to exercise the pool
    return build_corpus(kb, cfg);
  }();
  return corpus;
}

/// One full parse -> chunk -> embed pass with `threads` workers.
std::size_t run_pipeline(std::size_t threads) {
  const auto& corpus = fixed_corpus();
  const parse::AdaptiveParser parser;
  const embed::HashedNGramEmbedder embedder;
  const chunk::SemanticChunker chunker(embedder);

  parallel::ThreadPool pool(threads);
  std::vector<std::size_t> chunk_counts(corpus.documents.size(), 0);
  parallel::parallel_for(pool, 0, corpus.documents.size(), [&](std::size_t i) {
    const parse::ParseOutcome outcome =
        parser.parse(corpus.documents[i].bytes);
    if (!outcome.ok) return;
    const auto chunks = chunker.chunk(outcome.document);
    std::size_t embedded = 0;
    for (const auto& c : chunks) {
      benchmark::DoNotOptimize(embedder.embed(c.text));
      ++embedded;
    }
    chunk_counts[i] = embedded;
  });
  std::size_t total = 0;
  for (const std::size_t n : chunk_counts) total += n;
  return total;
}

void BM_ParseChunkEmbed(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  std::size_t chunks = 0;
  for (auto _ : state) {
    chunks = run_pipeline(threads);
    benchmark::DoNotOptimize(chunks);
  }
  state.counters["docs/s"] = benchmark::Counter(
      static_cast<double>(fixed_corpus().documents.size()),
      benchmark::Counter::kIsIterationInvariantRate);
  state.counters["chunks"] = static_cast<double>(chunks);
  state.counters["threads"] = static_cast<double>(threads);
}

BENCHMARK(BM_ParseChunkEmbed)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// --- batched index search vs thread count ------------------------------------

struct BatchSearchData {
  index::FlatIndex idx{128};
  std::vector<embed::Vector> queries;
};

const BatchSearchData& batch_search_data() {
  static const BatchSearchData d = [] {
    BatchSearchData out;
    util::Rng rng(11);
    embed::Vector v(out.idx.dim());
    for (std::size_t i = 0; i < 20000; ++i) {
      for (auto& x : v) x = static_cast<float>(rng.normal());
      embed::normalize(v);
      out.idx.add(v);
    }
    for (std::size_t i = 0; i < 256; ++i) {
      for (auto& x : v) x = static_cast<float>(rng.normal());
      embed::normalize(v);
      out.queries.push_back(v);
    }
    return out;
  }();
  return d;
}

/// search_batch fans per-query work across the pool; results must be
/// identical at every thread count (per-query independent computation).
void BM_SearchBatch(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto& d = batch_search_data();
  parallel::ThreadPool pool(threads);
  std::size_t queries = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.idx.search_batch(d.queries, 10, pool));
    queries += d.queries.size();
  }
  state.counters["queries/s"] = benchmark::Counter(
      static_cast<double>(d.queries.size()),
      benchmark::Counter::kIsIterationInvariantRate);
  state.counters["threads"] = static_cast<double>(threads);

  // Shape check: batched results at this thread count are bit-identical
  // to the sequential single-query loop.
  const auto batched = d.idx.search_batch(d.queries, 10, pool);
  bool identical = batched.size() == d.queries.size();
  for (std::size_t i = 0; identical && i < batched.size(); ++i) {
    const auto want = d.idx.search(d.queries[i], 10);
    identical = batched[i].size() == want.size();
    for (std::size_t j = 0; identical && j < want.size(); ++j) {
      identical = batched[i][j].row == want[j].row &&
                  batched[i][j].score == want[j].score;
    }
  }
  state.counters["batch==sequential"] = identical ? 1.0 : 0.0;
  if (!identical) state.SkipWithError("search_batch diverged from search");
}

BENCHMARK(BM_SearchBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_AdaptiveParseOnly(benchmark::State& state) {
  const auto& corpus = fixed_corpus();
  const parse::AdaptiveParser parser;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        parser.parse(corpus.documents[i % corpus.documents.size()].bytes));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_AdaptiveParseOnly);

void BM_EmbedderThroughput(benchmark::State& state) {
  const embed::HashedNGramEmbedder embedder;
  const std::string text =
      "Mechanistic experiments establish that ATM phosphorylates CHK2 "
      "after radiation exposure, consistent with checkpoint signaling in "
      "irradiated primary human fibroblasts under standard conditions.";
  std::int64_t bytes = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(embedder.embed(text));
    bytes += static_cast<std::int64_t>(text.size());
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_EmbedderThroughput);

/// Smoke path: the batch==sequential shape check at 1/2/8 threads plus
/// one parse->chunk->embed pass, no timing sweeps.
int run_smoke() {
  const auto& d = batch_search_data();
  std::vector<std::vector<index::SearchResult>> want;
  for (const auto& q : d.queries) want.push_back(d.idx.search(q, 10));
  bool identical = true;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    parallel::ThreadPool pool(threads);
    const auto got = d.idx.search_batch(d.queries, 10, pool);
    for (std::size_t i = 0; identical && i < want.size(); ++i) {
      identical = got[i].size() == want[i].size();
      for (std::size_t j = 0; identical && j < want[i].size(); ++j) {
        identical = got[i][j].row == want[i][j].row &&
                    got[i][j].score == want[i][j].score;
      }
    }
  }
  std::printf("shape check: search_batch == sequential at 1/2/8 threads: %s\n",
              identical ? "PASS" : "FAIL");
  const std::size_t chunks = run_pipeline(2);
  std::printf("shape check: parse->chunk->embed produced %zu chunks: %s\n",
              chunks, chunks > 0 ? "PASS" : "FAIL");
  return identical && chunks > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = mcqa::bench::parse_args(&argc, argv);
  std::printf(
      "Scaling experiment (S1): parse -> chunk -> embed throughput vs "
      "worker count over %zu documents, plus batched index search "
      "(search_batch) vs thread count with a batch==sequential shape "
      "check.\n"
      "NOTE: this host exposes %u hardware thread(s); wall-clock speedup "
      "requires more cores — on a multi-core node the docs/s counter "
      "scales with the Arg (thread) value.\n\n",
      fixed_corpus().documents.size(),
      std::thread::hardware_concurrency());
  if (smoke) return run_smoke();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
