// Memoized cell-parallel evaluation engine benchmark.
//
// Shape checks (smoke and full):
//   * the shared-plan grid sweep is fieldwise-identical to the naive
//     per-cell sweep (serial double loop over evaluate(), the seed
//     semantics),
//   * store queries drop >= 4x versus the per-cell path (retrieval is
//     computed once per condition and shared by all 8 models),
//   * the sweep is identical at 1/2/8 worker threads,
//   * a cache-backed sweep equals the uncached one, restores every
//     cell on the second run, and the warm re-sweep is >= 5x faster
//     than the cold one (wall clock),
//   * the virtual-time grid simulator is deterministic, the shared-plan
//     schedule never loses to the per-cell one, and its 8-worker
//     speedup is >= 1.5x (structural: same per-task costs, different
//     DAG — reproducible on any host, including single-core CI).
//
// Writes BENCH_eval.json with the retrieval accounting, the cold/warm
// timings and the simulated worker sweep (smoke and full).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/eval_cache.hpp"
#include "core/executor.hpp"
#include "json/json.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace mcqa;

bool g_all_pass = true;

void check(const char* name, bool pass) {
  std::printf("shape check: %-58s %s\n", name, pass ? "PASS" : "FAIL");
  g_all_pass = g_all_pass && pass;
}

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    static std::atomic<int> counter{0};
    path = std::filesystem::temp_directory_path() /
           ("mcqa-bench-eval-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The seed harness semantics: a serial double loop over evaluate(),
/// one cell at a time (retrieval re-done per cell).
eval::SweepResult naive_sweep(const core::PipelineContext& ctx,
                              const std::vector<qgen::McqRecord>& records,
                              parallel::ThreadPool& pool) {
  eval::HarnessConfig hc;
  hc.pool = &pool;
  const eval::EvalHarness harness(ctx.rag(), hc);
  const auto models = ctx.student_ptrs();
  const auto specs = ctx.student_specs();
  eval::SweepResult out;
  for (std::size_t m = 0; m < models.size(); ++m) {
    for (const rag::Condition c : eval::all_conditions()) {
      eval::CellResult cell;
      cell.model = std::string(models[m]->name());
      cell.condition = c;
      cell.accuracy = harness.evaluate(*models[m], specs[m], records, c);
      out.cells.push_back(std::move(cell));
    }
  }
  return out;
}

eval::SweepResult grid_sweep(const core::PipelineContext& ctx,
                             const std::vector<qgen::McqRecord>& records,
                             parallel::ThreadPool& pool,
                             const eval::CellCache* cache = nullptr,
                             eval::SweepStats* stats = nullptr) {
  eval::HarnessConfig hc;
  hc.pool = &pool;
  hc.cell_cache = cache;
  const eval::EvalHarness harness(ctx.rag(), hc);
  return harness.sweep(ctx.student_ptrs(), ctx.student_specs(), records,
                       eval::all_conditions(), stats);
}

bool sweeps_equal(const eval::SweepResult& a, const eval::SweepResult& b) {
  if (a.cells.size() != b.cells.size()) return false;
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const auto& x = a.cells[i];
    const auto& y = b.cells[i];
    if (x.model != y.model || x.condition != y.condition ||
        x.accuracy.correct != y.accuracy.correct ||
        x.accuracy.total != y.accuracy.total ||
        x.accuracy.unparseable != y.accuracy.unparseable) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  mcqa::bench::parse_args(argc, argv);
  const core::PipelineContext& ctx = bench::shared_context();
  const std::vector<qgen::McqRecord> records =
      bench::smoke_subset(ctx.benchmark());

  std::printf("Evaluation engine (%zu records x 8 models x 5 conditions)\n\n",
              records.size());

  // --- shared-plan grid vs naive per-cell sweep ------------------------------
  parallel::ThreadPool pool(0);
  const auto t_naive = std::chrono::steady_clock::now();
  const eval::SweepResult naive = naive_sweep(ctx, records, pool);
  const double naive_seconds = seconds_since(t_naive);

  eval::SweepStats stats;
  const auto t_grid = std::chrono::steady_clock::now();
  const eval::SweepResult grid = grid_sweep(ctx, records, pool, nullptr,
                                            &stats);
  const double grid_seconds = seconds_since(t_grid);
  check("shared-plan grid sweep == naive per-cell sweep",
        sweeps_equal(grid, naive));

  const double query_drop =
      stats.retrieval_queries > 0
          ? static_cast<double>(stats.naive_retrieval_queries) /
                static_cast<double>(stats.retrieval_queries)
          : 0.0;
  std::printf(
      "\nretrieval queries: %zu shared-plan vs %zu per-cell (%.1fx fewer)\n"
      "grid sweep %.3fs vs naive %.3fs\n\n",
      stats.retrieval_queries, stats.naive_retrieval_queries, query_drop,
      grid_seconds, naive_seconds);
  check("retrieval queries drop >= 4x (plan shared by 8 models)",
        query_drop >= 4.0);

  // --- thread-count invariance -----------------------------------------------
  bool thread_identical = true;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    parallel::ThreadPool small(threads);
    thread_identical = thread_identical &&
                       sweeps_equal(grid_sweep(ctx, records, small), grid);
  }
  check("sweep identical at 1/2/8 worker threads", thread_identical);

  // --- eval-cell cache: identity, full restore, warm speedup -----------------
  const TempDir cache_dir;
  const core::EvalCellCache cache(
      cache_dir.path.string(), core::EvalCellCache::sweep_key(ctx, records));
  eval::SweepStats cold_stats;
  const auto t_cold = std::chrono::steady_clock::now();
  const eval::SweepResult cold = grid_sweep(ctx, records, pool, &cache,
                                            &cold_stats);
  const double cold_seconds = seconds_since(t_cold);

  eval::SweepStats warm_stats;
  const auto t_warm = std::chrono::steady_clock::now();
  const eval::SweepResult warm = grid_sweep(ctx, records, pool, &cache,
                                            &warm_stats);
  const double warm_seconds = seconds_since(t_warm);
  const double warm_speedup =
      warm_seconds > 0.0 ? cold_seconds / warm_seconds : 0.0;

  check("cache-backed sweep == uncached sweep (cold and warm)",
        sweeps_equal(cold, grid) && sweeps_equal(warm, grid));
  check("cold run computed every cell, warm run restored every cell",
        cold_stats.cells_restored == 0 &&
            cold_stats.cells_computed == grid.cells.size() &&
            warm_stats.cells_restored == grid.cells.size() &&
            warm_stats.cells_computed == 0 &&
            warm_stats.retrieval_queries == 0);
  std::printf("\nwarm re-sweep: %.4fs vs %.4fs cold (%.1fx)\n\n",
              warm_seconds, cold_seconds, warm_speedup);
  check("warm-cache re-sweep >= 5x faster (wall clock)", warm_speedup >= 5.0);

  // --- simulated grid scheduling ---------------------------------------------
  const core::EvalGridModel model = core::eval_grid_model_from(
      ctx, records, ctx.students().size(), eval::all_conditions());
  eval::TableWriter sim_table({"Workers", "Per-cell", "Shared-plan",
                               "Speedup"});
  json::Array sim_rows;
  bool sim_ordered = true;
  double speedup8 = 0.0;
  for (const std::size_t w : {1, 2, 4, 8}) {
    const double pc = core::simulated_grid_makespan(
        model, core::EvalGridMode::kPerCell, w);
    const double sp = core::simulated_grid_makespan(
        model, core::EvalGridMode::kSharedPlan, w);
    sim_ordered = sim_ordered && sp <= pc * 1.001;
    const double speedup = sp > 0.0 ? pc / sp : 0.0;
    if (w == 8) speedup8 = speedup;
    sim_table.add_row({std::to_string(w), eval::fmt_acc(pc),
                       eval::fmt_acc(sp), eval::fmt_acc(speedup) + "x"});
    json::Value row = json::Value::object();
    row["workers"] = w;
    row["per_cell_makespan"] = pc;
    row["shared_plan_makespan"] = sp;
    row["speedup"] = speedup;
    sim_rows.push_back(std::move(row));
  }
  std::printf("Simulated sweep makespan (virtual time units):\n\n%s\n",
              sim_table.render().c_str());
  check("grid simulator deterministic across repeated runs",
        core::simulated_grid_makespan(model, core::EvalGridMode::kSharedPlan,
                                      8) ==
            core::simulated_grid_makespan(model,
                                          core::EvalGridMode::kSharedPlan, 8));
  check("shared plan never loses to per-cell, W in {1,2,4,8}", sim_ordered);
  check("shared plan >= 1.5x per-cell at 8 workers (simulated)",
        speedup8 >= 1.5);

  json::Value report = json::Value::object();
  report["bench"] = "eval_engine";
  bench::add_kernel_metadata(report);
  report["smoke"] = bench::smoke();
  report["records"] = records.size();
  report["models"] = ctx.students().size();
  report["conditions"] = eval::all_conditions().size();
  report["retrieval_queries"] = stats.retrieval_queries;
  report["naive_retrieval_queries"] = stats.naive_retrieval_queries;
  report["retrieval_query_drop"] = query_drop;
  report["naive_sweep_seconds"] = naive_seconds;
  report["grid_sweep_seconds"] = grid_seconds;
  report["cold_sweep_seconds"] = cold_seconds;
  report["warm_sweep_seconds"] = warm_seconds;
  report["warm_speedup"] = warm_speedup;
  report["cells_restored_warm"] = warm_stats.cells_restored;
  report["simulated_speedup_8_workers"] = speedup8;
  report["simulated_sweep"] = json::Value(std::move(sim_rows));

  std::ofstream out("BENCH_eval.json");
  out << report.dump(2) << "\n";
  std::printf("\nwrote BENCH_eval.json\n");
  std::printf("%s\n", g_all_pass ? "ALL CHECKS PASSED" : "FAILURES");
  return g_all_pass ? 0 : 1;
}
