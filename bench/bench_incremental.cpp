// Incremental rebuild benchmark (DESIGN.md §17): per-document artifact
// invalidation, delta index updates, and O(K) warm rebuilds.
//
// Shape checks (smoke and full):
//   * a cold checkpointed build recomputes all N documents; editing K
//     documents and re-running restores exactly N-K per-doc artifacts
//     and recomputes exactly K, at 1/2/8 threads, with every artifact
//     byte-identical to a from-scratch cold build of the edited corpus;
//   * the grouped (delta) eval sweep over the edited revision is
//     bitwise-identical to a plain sweep while restoring unchanged
//     record groups from the previous revision's tallies — only cells
//     whose record subset (content or retrieval hits) moved re-run;
//   * prune_cache drops the stranded previous-revision blobs and keeps
//     everything the current manifest needs (a warm re-run after the
//     sweep restores all N documents).
//
// Full mode additionally sizes the corpus to ~1000 documents, measures
// cold vs incremental wall clock for the K=10 edit, requires the
// incremental rebuild to be >= 10x faster end-to-end, and writes
// BENCH_incremental.json.

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/checkpoint.hpp"
#include "json/json.hpp"
#include "util/hash.hpp"

namespace {

using namespace mcqa;
using core::ExecutionMode;
using core::PipelineConfig;
using core::PipelineContext;

bool g_all_pass = true;

void check(const char* name, bool pass) {
  std::printf("shape check: %-58s %s\n", name, pass ? "PASS" : "FAIL");
  g_all_pass = g_all_pass && pass;
}

/// One digest over every build artifact, via the checkpoint serializers.
std::uint64_t artifact_digest(const PipelineContext& ctx) {
  const auto& s = ctx.stats();
  core::ParsedArtifact parsed{ctx.parsed(), s.routing, s.parse_failures,
                              s.documents};
  core::BenchmarkArtifact bench{ctx.benchmark(), s.funnel};
  std::uint64_t h = util::fnv1a64(core::serialize_parsed(parsed));
  h = util::hash_combine(h,
                         util::fnv1a64(core::serialize_chunks(ctx.chunks())));
  h = util::hash_combine(h, util::fnv1a64(ctx.chunk_store().save()));
  h = util::hash_combine(h, util::fnv1a64(core::serialize_benchmark(bench)));
  for (int m = 0; m < trace::kTraceModeCount; ++m) {
    const auto mode = static_cast<trace::TraceMode>(m);
    core::TraceArtifact traces{ctx.traces(mode), {}};
    h = util::hash_combine(h, util::fnv1a64(core::serialize_traces(traces)));
    h = util::hash_combine(h, util::fnv1a64(ctx.trace_store(mode).save()));
  }
  return h;
}

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    static std::atomic<int> counter{0};
    path = std::filesystem::temp_directory_path() /
           ("mcqa-bench-incr-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

void copy_dir(const std::filesystem::path& from,
              const std::filesystem::path& to) {
  std::filesystem::copy(from, to,
                        std::filesystem::copy_options::recursive |
                            std::filesystem::copy_options::overwrite_existing);
}

PipelineConfig base_config(double scale, std::string checkpoint_dir) {
  PipelineConfig cfg = PipelineConfig::paper_scale(scale);
  cfg.checkpoint_dir = std::move(checkpoint_dir);
  return cfg;
}

PipelineConfig edited_config(const PipelineConfig& base, std::size_t count,
                             std::uint64_t revision) {
  PipelineConfig cfg = base;
  cfg.corpus.edits.count = count;
  cfg.corpus.edits.revision = revision;
  return cfg;
}

bool sweeps_equal(const eval::SweepResult& a, const eval::SweepResult& b) {
  if (a.cells.size() != b.cells.size()) return false;
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    if (a.cells[i].model != b.cells[i].model ||
        a.cells[i].condition != b.cells[i].condition ||
        a.cells[i].accuracy.correct != b.cells[i].accuracy.correct ||
        a.cells[i].accuracy.total != b.cells[i].accuracy.total ||
        a.cells[i].accuracy.unparseable != b.cells[i].accuracy.unparseable) {
      return false;
    }
  }
  return true;
}

std::vector<qgen::McqRecord> capped(const std::vector<qgen::McqRecord>& r,
                                    std::size_t cap) {
  if (r.size() <= cap) return r;
  return std::vector<qgen::McqRecord>(
      r.begin(), r.begin() + static_cast<std::ptrdiff_t>(cap));
}

}  // namespace

int main(int argc, char** argv) {
  mcqa::bench::parse_args(argc, argv);
  // Full mode sizes the corpus to ~1000 documents so the K=10 edit is
  // a 1% dirty fraction — the regime the O(K) claim is about.
  const double scale = bench::smoke() ? 0.008 : 0.04435;
  const std::size_t k_edits = bench::smoke() ? 2 : 10;
  const std::size_t record_cap = bench::smoke() ? 96 : 240;
  const std::size_t sweep_models = bench::smoke() ? 2 : 3;

  std::printf("Incremental rebuild (scale %.4f, K=%zu edited docs)\n\n",
              scale, k_edits);

  // --- cold checkpointed build of revision 0 ---------------------------------
  const TempDir cache_dir;
  const auto base = base_config(scale, cache_dir.path.string());
  const auto rev0 = std::make_unique<PipelineContext>(base);
  const std::size_t n = rev0->stats().documents;
  std::printf("revision 0: %zu docs, %zu chunks, %zu questions, cold "
              "checkpointed build %.3fs\n",
              n, rev0->stats().chunks, rev0->benchmark().size(),
              rev0->stats().build_seconds);
  check("cold build recomputed every per-doc artifact",
        rev0->stats().doc_artifacts_restored == 0 &&
            rev0->stats().doc_artifacts_recomputed == n);

  // --- ground truth for the edited corpus: from-scratch, no cache -----------
  const auto edited = edited_config(base, k_edits, 1);
  auto fresh_cfg = edited;
  fresh_cfg.checkpoint_dir.clear();
  const auto fresh = std::make_unique<PipelineContext>(fresh_cfg);
  const std::uint64_t reference = artifact_digest(*fresh);
  const double cold_seconds = fresh->stats().build_seconds;
  std::printf("revision 1 cold rebuild (no cache): %.3fs\n", cold_seconds);

  // --- thread-count independence ---------------------------------------------
  // Copies are taken now, while the cache holds only revision 0, so the
  // restore counters stay exact in every copy.
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const TempDir copy;
    copy_dir(cache_dir.path, copy.path);
    auto cfg = edited_config(
        base_config(scale, copy.path.string()), k_edits, 1);
    cfg.threads = threads;
    const PipelineContext ctx(cfg);
    char label[96];
    std::snprintf(label, sizeof label,
                  "incremental byte-identical + N-K/K at %zu threads",
                  threads);
    check(label, artifact_digest(ctx) == reference &&
                     ctx.stats().doc_artifacts_restored == n - k_edits &&
                     ctx.stats().doc_artifacts_recomputed == k_edits);
  }

  // --- incremental rebuild on the populated cache ----------------------------
  const auto incr = std::make_unique<PipelineContext>(edited);
  const double incr_seconds = incr->stats().build_seconds;
  const double speedup =
      incr_seconds > 0.0 ? cold_seconds / incr_seconds : 0.0;
  std::printf("revision 1 incremental rebuild: %.3fs (%.1fx vs cold), "
              "restored %zu, recomputed %zu\n\n",
              incr_seconds, speedup, incr->stats().doc_artifacts_restored,
              incr->stats().doc_artifacts_recomputed);
  check("incremental artifacts byte-identical to cold rebuild",
        artifact_digest(*incr) == reference);
  check("restored exactly N-K, recomputed exactly K",
        incr->stats().doc_artifacts_restored == n - k_edits &&
            incr->stats().doc_artifacts_recomputed == k_edits);
  check("no corrupt blobs on the happy path",
        incr->stats().checkpoint_corrupt == 0);

  // --- delta eval across revisions -------------------------------------------
  // Sweep revision 0 with the group tier populated, then revision 1:
  // its sweep key moved (the benchmark changed), so every cell misses —
  // but groups whose content and retrieval hits are untouched restore
  // their tallies, and only the perturbed remainder re-answers.
  const auto all_models0 = rev0->student_ptrs();
  const auto all_specs0 = rev0->student_specs();
  const std::vector<const llm::LanguageModel*> models0(
      all_models0.begin(), all_models0.begin() + sweep_models);
  const std::vector<llm::ModelSpec> specs0(
      all_specs0.begin(), all_specs0.begin() + sweep_models);
  const auto conditions = eval::all_conditions();

  const auto records0 = capped(rev0->benchmark(), record_cap);
  const auto groups0 = core::record_groups(*rev0, records0);
  {
    const core::EvalCellCache cache(
        cache_dir.path.string(), core::EvalCellCache::sweep_key(*rev0, records0),
        core::EvalCellCache::group_base_key(*rev0));
    eval::HarnessConfig hc;
    hc.pool = &bench::shared_sweep_pool();
    hc.cell_cache = &cache;
    hc.groups = &groups0;
    const eval::EvalHarness harness(rev0->rag(), hc);
    harness.sweep(models0, specs0, records0, conditions);
  }

  const auto all_models1 = incr->student_ptrs();
  const auto all_specs1 = incr->student_specs();
  const std::vector<const llm::LanguageModel*> models1(
      all_models1.begin(), all_models1.begin() + sweep_models);
  const std::vector<llm::ModelSpec> specs1(
      all_specs1.begin(), all_specs1.begin() + sweep_models);
  const auto records1 = capped(incr->benchmark(), record_cap);
  const auto groups1 = core::record_groups(*incr, records1);

  eval::HarnessConfig plain_hc;
  plain_hc.pool = &bench::shared_sweep_pool();
  const eval::EvalHarness plain(incr->rag(), plain_hc);
  const eval::SweepResult plain_sweep =
      plain.sweep(models1, specs1, records1, conditions);

  eval::SweepStats delta_stats;
  {
    const core::EvalCellCache cache(
        cache_dir.path.string(), core::EvalCellCache::sweep_key(*incr, records1),
        core::EvalCellCache::group_base_key(*incr));
    eval::HarnessConfig hc;
    hc.pool = &bench::shared_sweep_pool();
    hc.cell_cache = &cache;
    hc.groups = &groups1;
    const eval::EvalHarness harness(incr->rag(), hc);
    const eval::SweepResult delta =
        harness.sweep(models1, specs1, records1, conditions, &delta_stats);
    check("delta sweep bitwise-identical to plain sweep",
          sweeps_equal(delta, plain_sweep));
  }
  const std::size_t full_evals =
      models1.size() * conditions.size() * records1.size();
  std::printf("delta eval: %zu groups restored, %zu computed; %zu of %zu "
              "(cell, record) evaluations executed\n\n",
              delta_stats.groups_restored, delta_stats.groups_computed,
              delta_stats.records_evaluated, full_evals);
  check("unchanged groups restored from the previous revision",
        delta_stats.groups_restored > 0);
  check("delta sweep answered fewer records than a full sweep",
        delta_stats.records_evaluated < full_evals);

  // --- prune: drop the stranded revision-0 blobs -----------------------------
  const core::ArtifactCache cache(cache_dir.path.string());
  const std::uint64_t manifest_key =
      core::derive_manifest_key(edited, incr->embedder().dim());
  const auto manifest_blob = cache.load("manifest", manifest_key);
  check("manifest present for the current revision",
        manifest_blob.has_value());
  core::PruneReport prune;
  if (manifest_blob.has_value()) {
    const core::ManifestArtifact manifest =
        core::deserialize_manifest(*manifest_blob);
    prune = core::prune_cache(cache_dir.path.string(), manifest, manifest_key);
    std::printf("prune: scanned %zu, kept %zu, removed %zu (%ju bytes)\n",
                prune.scanned, prune.kept, prune.removed,
                static_cast<std::uintmax_t>(prune.removed_bytes));
    check("prune removed the stranded previous-revision blobs",
          prune.removed > 0);
    const PipelineContext warm(edited);
    check("post-prune warm run restores all N documents",
          warm.stats().doc_artifacts_recomputed == 0 &&
              warm.stats().doc_artifacts_restored == n &&
              artifact_digest(warm) == reference);
  }

  if (!bench::smoke()) {
    check("incremental rebuild >= 10x faster than cold (wall clock)",
          speedup >= 10.0);

    json::Value report = json::Value::object();
    report["bench"] = "incremental";
    bench::add_kernel_metadata(report);
    report["scale"] = scale;
    report["documents"] = n;
    report["edited_docs"] = k_edits;
    report["cold_seconds"] = cold_seconds;
    report["incremental_seconds"] = incr_seconds;
    report["speedup"] = speedup;
    report["doc_artifacts_restored"] = incr->stats().doc_artifacts_restored;
    report["doc_artifacts_recomputed"] =
        incr->stats().doc_artifacts_recomputed;
    report["checkpoint_corrupt"] = incr->stats().checkpoint_corrupt;
    report["delta_groups_restored"] = delta_stats.groups_restored;
    report["delta_groups_computed"] = delta_stats.groups_computed;
    report["delta_records_evaluated"] = delta_stats.records_evaluated;
    report["full_sweep_records"] = full_evals;
    report["prune_removed"] = prune.removed;
    report["prune_removed_bytes"] =
        static_cast<std::size_t>(prune.removed_bytes);
    std::ofstream out("BENCH_incremental.json");
    out << report.dump(2) << "\n";
    std::printf("\nwrote BENCH_incremental.json\n");
  }

  std::printf("\n%s\n", g_all_pass ? "ALL CHECKS PASSED" : "FAILURES");
  return g_all_pass ? 0 : 1;
}
