#include "parse/quality.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace mcqa::parse {

DifficultyFeatures extract_difficulty_features(std::string_view bytes,
                                               std::size_t max_lines) {
  DifficultyFeatures f;
  f.truncated = bytes.find("%%EOF") == std::string_view::npos;

  std::size_t body_lines = 0;
  std::size_t hyphen_lines = 0;
  std::size_t marker_lines = 0;
  std::size_t placeholders = 0;
  std::size_t scanned_bytes = 0;

  std::size_t pos = 0;
  while (pos < bytes.size() && body_lines < max_lines) {
    std::size_t nl = bytes.find('\n', pos);
    if (nl == std::string_view::npos) nl = bytes.size();
    const std::string_view line = bytes.substr(pos, nl - pos);
    pos = nl + 1;
    scanned_bytes += line.size();
    if (line.empty() || line[0] == '%' ||
        util::starts_with(line, "<<section")) {
      continue;
    }
    ++body_lines;
    if (!line.empty() && line.back() == '-') ++hyphen_lines;
    if (util::starts_with(line, "~HDR~") || util::starts_with(line, "~FTR~")) {
      ++marker_lines;
    }
    placeholders += static_cast<std::size_t>(
        std::count(line.begin(), line.end(), '\x01'));
  }

  f.sampled_lines = body_lines;
  if (body_lines > 0) {
    f.hyphen_line_rate =
        static_cast<double>(hyphen_lines) / static_cast<double>(body_lines);
    f.marker_rate =
        static_cast<double>(marker_lines) / static_cast<double>(body_lines);
  }
  if (scanned_bytes > 0) {
    f.placeholder_rate = static_cast<double>(placeholders) * 1024.0 /
                         static_cast<double>(scanned_bytes);
  }
  return f;
}

double predict_fast_parser_success(const DifficultyFeatures& f) {
  // Hand-calibrated logistic: clean docs score ~0.95, moderate ~0.4,
  // hard ~0.05.  Truncation is an immediate near-zero.
  if (f.truncated) return 0.02;
  const double z = 3.0 - 14.0 * f.hyphen_line_rate - 22.0 * f.marker_rate -
                   9.0 * f.placeholder_rate;
  return 1.0 / (1.0 + std::exp(-z));
}

double quality_score(const ParsedDocument& doc) {
  const std::string body = doc.body_text();
  if (body.empty()) return 0.0;

  std::size_t placeholders = 0;
  std::size_t marker_hits = 0;
  std::size_t midword_hyphen_space = 0;

  for (std::size_t i = 0; i < body.size(); ++i) {
    if (body[i] == '\x01') ++placeholders;
    // "dam- age": a hyphen followed by a space inside a sentence is the
    // footprint of unrepaired line-wrap hyphenation.
    if (body[i] == '-' && i + 1 < body.size() && body[i + 1] == ' ' && i > 0 &&
        std::isalpha(static_cast<unsigned char>(body[i - 1]))) {
      ++midword_hyphen_space;
    }
  }
  std::size_t search = 0;
  while ((search = body.find("~HDR~", search)) != std::string::npos) {
    ++marker_hits;
    search += 5;
  }
  search = 0;
  while ((search = body.find("~FTR~", search)) != std::string::npos) {
    ++marker_hits;
    search += 5;
  }

  const double kb = static_cast<double>(body.size()) / 1024.0;
  const double damage = (static_cast<double>(placeholders) * 3.0 +
                         static_cast<double>(marker_hits) * 6.0 +
                         static_cast<double>(midword_hyphen_space) * 1.5) /
                        std::max(0.25, kb);
  // Structural sanity: a parsed paper should have sections.
  const double structure_bonus = doc.sections.empty() ? -0.3 : 0.0;
  const double score = 1.0 / (1.0 + 0.35 * damage) + structure_bonus;
  return std::clamp(score, 0.0, 1.0);
}

}  // namespace mcqa::parse
