#include "parse/parsers.hpp"

#include <algorithm>
#include <cctype>

#include "util/strings.hpp"

namespace mcqa::parse {

namespace {

bool is_header_footer(std::string_view line) {
  return util::starts_with(line, "~HDR~") || util::starts_with(line, "~FTR~");
}

/// Assemble sections from scan lines using a cleanup functor applied per
/// body line (may drop a line by returning false).
template <typename LineFilter>
ParsedDocument assemble(const SpdfScan& scan, LineFilter filter,
                        bool dehyphenate) {
  ParsedDocument doc;
  doc.doc_id = scan.doc_id;
  doc.title = scan.title;
  doc.kind = scan.kind.empty() ? "unknown" : scan.kind;
  doc.pages = scan.pages;

  // Map line index -> heading starting there.
  std::size_t next_heading = 0;
  ParsedSection current;
  const auto flush = [&doc, &current]() {
    if (!current.text.empty() || !current.heading.empty()) {
      // Trim the trailing space left by concatenation.
      while (!current.text.empty() && current.text.back() == ' ') {
        current.text.pop_back();
      }
      doc.sections.push_back(std::move(current));
      current = ParsedSection{};
    }
  };

  bool pending_hyphen = false;
  std::string hyphen_carry;

  for (std::size_t i = 0; i < scan.lines.size(); ++i) {
    while (next_heading < scan.headings.size() &&
           scan.headings[next_heading].first == i) {
      flush();
      current.heading = scan.headings[next_heading].second;
      ++next_heading;
    }
    std::string line = scan.lines[i];
    if (!filter(line)) continue;
    if (line.empty()) continue;

    if (pending_hyphen) {
      // Join the carried prefix with this line's first word.
      const auto first_space = line.find(' ');
      const std::string head = line.substr(0, first_space);
      current.text += hyphen_carry + head;
      current.text += ' ';
      line = first_space == std::string::npos ? std::string()
                                              : line.substr(first_space + 1);
      pending_hyphen = false;
      hyphen_carry.clear();
      if (line.empty()) continue;
    }

    if (dehyphenate && line.size() > 1 && line.back() == '-' &&
        std::isalpha(static_cast<unsigned char>(line[line.size() - 2]))) {
      // Word split across lines: carry the fragment (without '-') into
      // the next line.
      const auto last_space = line.rfind(' ');
      const std::size_t frag_begin =
          last_space == std::string::npos ? 0 : last_space + 1;
      hyphen_carry = line.substr(frag_begin, line.size() - 1 - frag_begin);
      line.resize(frag_begin);
      pending_hyphen = true;
      if (line.empty()) continue;
    }

    current.text += line;
    current.text += ' ';
  }
  if (pending_hyphen) {
    current.text += hyphen_carry;
    current.text += ' ';
  }
  flush();
  return doc;
}

}  // namespace

SpdfScan scan_spdf(std::string_view bytes) {
  if (!util::starts_with(bytes, "%SPDF-")) {
    throw ParseFailure("not an SPDF stream");
  }
  SpdfScan scan;
  bool in_page = false;
  for (const auto raw_line : util::split(bytes, '\n')) {
    const std::string_view line = raw_line;
    if (util::starts_with(line, "%SPDF-")) continue;
    if (util::starts_with(line, "%%Title: ")) {
      scan.title = std::string(line.substr(9));
    } else if (util::starts_with(line, "%%DocId: ")) {
      scan.doc_id = std::string(line.substr(9));
    } else if (util::starts_with(line, "%%Kind: ")) {
      scan.kind = std::string(line.substr(8));
    } else if (util::starts_with(line, "%%BeginPage")) {
      in_page = true;
      ++scan.pages;
    } else if (util::starts_with(line, "%%EndPage")) {
      in_page = false;
    } else if (util::starts_with(line, "%%EOF")) {
      scan.saw_eof = true;
    } else if (in_page) {
      if (util::starts_with(line, "<<section ") && util::ends_with(line, ">>")) {
        scan.headings.emplace_back(
            scan.lines.size(),
            std::string(line.substr(10, line.size() - 12)));
      } else {
        scan.lines.emplace_back(line);
      }
    }
  }
  if (scan.pages == 0) throw ParseFailure("SPDF stream has no pages");
  return scan;
}

// --- FastSpdfParser ---------------------------------------------------------

bool FastSpdfParser::accepts(std::string_view bytes) const {
  return util::starts_with(bytes, "%SPDF-");
}

ParsedDocument FastSpdfParser::parse(std::string_view bytes) const {
  const SpdfScan scan = scan_spdf(bytes);
  // Fast path: keep every body line verbatim — headers, hyphens and
  // ligature placeholders all leak into the text.
  ParsedDocument doc = assemble(
      scan, [](std::string&) { return true; }, /*dehyphenate=*/false);
  doc.parser_used = std::string(name());
  return doc;
}

// --- AccurateSpdfParser -----------------------------------------------------

bool AccurateSpdfParser::accepts(std::string_view bytes) const {
  return util::starts_with(bytes, "%SPDF-");
}

ParsedDocument AccurateSpdfParser::parse(std::string_view bytes) const {
  const SpdfScan scan = scan_spdf(bytes);
  ParsedDocument doc = assemble(
      scan,
      [](std::string& line) {
        if (is_header_footer(line)) return false;
        // Ligature placeholder repair: '\x01' stood for a dropped fi/fl
        // glyph; "fi" is by far the most frequent in scientific English,
        // so restore that (occasionally wrong, as in real OCR cleanup).
        std::size_t pos = 0;
        while ((pos = line.find('\x01', pos)) != std::string::npos) {
          line.replace(pos, 1, "fi");
          pos += 2;
        }
        return true;
      },
      /*dehyphenate=*/true);
  doc.parser_used = std::string(name());
  return doc;
}

// --- MarkdownParser ---------------------------------------------------------

bool MarkdownParser::accepts(std::string_view bytes) const {
  return util::starts_with(bytes, "# ");
}

ParsedDocument MarkdownParser::parse(std::string_view bytes) const {
  if (!accepts(bytes)) throw ParseFailure("not a Markdown document");
  ParsedDocument doc;
  doc.kind = "unknown";
  doc.pages = 1;
  ParsedSection current;
  bool have_section = false;
  for (const auto line_view : util::split(bytes, '\n')) {
    const std::string_view line = util::trim(line_view);
    if (line.empty()) continue;
    if (util::starts_with(line, "# ")) {
      doc.title = std::string(line.substr(2));
    } else if (util::starts_with(line, "## ")) {
      if (have_section) doc.sections.push_back(std::move(current));
      current = ParsedSection{};
      current.heading = std::string(line.substr(3));
      have_section = true;
    } else {
      if (!current.text.empty()) current.text += ' ';
      current.text += std::string(line);
      have_section = true;
    }
  }
  if (have_section) doc.sections.push_back(std::move(current));
  doc.parser_used = std::string(name());
  return doc;
}

// --- PlainTextParser --------------------------------------------------------

bool PlainTextParser::accepts(std::string_view bytes) const {
  return !bytes.empty();
}

ParsedDocument PlainTextParser::parse(std::string_view bytes) const {
  if (bytes.empty()) throw ParseFailure("empty document");
  ParsedDocument doc;
  doc.kind = "unknown";
  doc.pages = 1;
  // First line is the title; paragraphs (blank-line separated) become
  // sections.
  const auto lines = util::split(bytes, '\n');
  std::size_t i = 0;
  while (i < lines.size() && util::trim(lines[i]).empty()) ++i;
  if (i < lines.size()) {
    doc.title = std::string(util::trim(lines[i]));
    ++i;
  }
  ParsedSection current;
  for (; i < lines.size(); ++i) {
    const std::string_view line = util::trim(lines[i]);
    if (line.empty()) {
      if (!current.text.empty()) {
        doc.sections.push_back(std::move(current));
        current = ParsedSection{};
      }
      continue;
    }
    // A short line with no terminal punctuation acts as a heading.
    if (line.size() < 60 && current.text.empty() &&
        !line.empty() && line.back() != '.' && line.back() != '?') {
      current.heading = std::string(line);
      continue;
    }
    if (!current.text.empty()) current.text += ' ';
    current.text += std::string(line);
  }
  if (!current.text.empty() || !current.heading.empty()) {
    doc.sections.push_back(std::move(current));
  }
  doc.parser_used = std::string(name());
  return doc;
}

}  // namespace mcqa::parse
