#pragma once
// Adaptive parser dispatch (AdaParse-equivalent).
//
// Routing policy per document:
//   1. detect format (SPDF / Markdown / plain text);
//   2. for SPDF, predict fast-parser success from sampled raw bytes;
//      route to the fast strategy when the prediction clears
//      `route_threshold`, else straight to the accurate strategy;
//   3. score the parsed text; if it misses `accept_threshold` and a
//      stronger strategy remains, escalate and re-parse;
//   4. on hard failure (truncated/corrupt), record an error outcome —
//      the pipeline drops the document but keeps the ledger entry.
//
// The dispatcher also keeps aggregate routing statistics, which the
// throughput bench reports (fraction fast-routed, escalation rate,
// estimated compute saved versus always-accurate).

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "parse/parsers.hpp"
#include "parse/quality.hpp"

namespace mcqa::parse {

struct AdaptiveConfig {
  double route_threshold = 0.5;   ///< fast-parser success prob needed
  double accept_threshold = 0.8;  ///< min quality to accept a parse
};

struct ParseOutcome {
  bool ok = false;
  ParsedDocument document;  ///< valid when ok
  std::string error;        ///< set when !ok
  std::string route;        ///< "fast", "accurate", "fast->accurate", ...
  double predicted_fast_success = 0.0;
  double compute_cost = 0.0;  ///< sum of strategy costs actually paid
};

struct RoutingStats {
  std::size_t total = 0;
  std::size_t fast_routed = 0;
  std::size_t escalated = 0;
  std::size_t accurate_routed = 0;
  std::size_t failed = 0;
  std::size_t non_spdf = 0;
  double compute_cost = 0.0;
  double always_accurate_cost = 0.0;  ///< counterfactual

  void merge(const RoutingStats& other);
  double compute_saving() const;
};

class AdaptiveParser {
 public:
  explicit AdaptiveParser(AdaptiveConfig config = {});

  /// Parse one raw document.  Thread-safe (const).
  ParseOutcome parse(std::string_view bytes) const;

  const AdaptiveConfig& config() const { return config_; }

 private:
  AdaptiveConfig config_;
  FastSpdfParser fast_;
  AccurateSpdfParser accurate_;
  MarkdownParser markdown_;
  PlainTextParser text_;
};

}  // namespace mcqa::parse
