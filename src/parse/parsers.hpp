#pragma once
// Parser strategies.
//
// AdaParse's core idea is a portfolio of extractors with very different
// cost/quality trade-offs, routed per document.  We reproduce the
// portfolio over SPDF/Markdown/plain-text inputs:
//
//   FastSpdfParser      cheap; strips container markup only, leaves
//                       hyphenation, running headers and ligature damage
//                       in the text (like pypdf on a hard PDF)
//   AccurateSpdfParser  expensive; dehyphenates wrapped words, removes
//                       headers/footers, repairs ligature placeholders
//                       (like Nougat/GROBID-class extractors)
//   MarkdownParser      structured, lossless
//   PlainTextParser     trivial
//
// Strategies throw ParseFailure on malformed input; the adaptive
// dispatcher catches and falls back.

#include <memory>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "parse/document.hpp"

namespace mcqa::parse {

class ParseFailure : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ParserStrategy {
 public:
  virtual ~ParserStrategy() = default;

  virtual std::string_view name() const = 0;

  /// Relative compute cost (1.0 == fast parser); the dispatcher's
  /// cost-aware routing and the throughput bench both use this.
  virtual double cost() const = 0;

  /// Can this strategy plausibly handle these bytes?
  virtual bool accepts(std::string_view bytes) const = 0;

  virtual ParsedDocument parse(std::string_view bytes) const = 0;
};

class FastSpdfParser final : public ParserStrategy {
 public:
  std::string_view name() const override { return "spdf-fast"; }
  double cost() const override { return 1.0; }
  bool accepts(std::string_view bytes) const override;
  ParsedDocument parse(std::string_view bytes) const override;
};

class AccurateSpdfParser final : public ParserStrategy {
 public:
  std::string_view name() const override { return "spdf-accurate"; }
  double cost() const override { return 8.0; }
  bool accepts(std::string_view bytes) const override;
  ParsedDocument parse(std::string_view bytes) const override;
};

class MarkdownParser final : public ParserStrategy {
 public:
  std::string_view name() const override { return "markdown"; }
  double cost() const override { return 0.5; }
  bool accepts(std::string_view bytes) const override;
  ParsedDocument parse(std::string_view bytes) const override;
};

class PlainTextParser final : public ParserStrategy {
 public:
  std::string_view name() const override { return "text"; }
  double cost() const override { return 0.2; }
  bool accepts(std::string_view bytes) const override;
  ParsedDocument parse(std::string_view bytes) const override;
};

/// Shared SPDF scanning used by both SPDF strategies.
struct SpdfScan {
  std::string title;
  std::string doc_id;
  std::string kind;
  std::size_t pages = 0;
  bool saw_eof = false;
  /// Raw body lines in order (markup lines removed, page structure
  /// flattened).  Header/footer lines are included; cleanup is the
  /// strategy's job.
  std::vector<std::string> lines;
  /// Section heading markers, as (line index, heading) pairs.
  std::vector<std::pair<std::size_t, std::string>> headings;
};

SpdfScan scan_spdf(std::string_view bytes);

}  // namespace mcqa::parse
