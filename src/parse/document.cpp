#include "parse/document.hpp"

namespace mcqa::parse {

std::string ParsedDocument::body_text() const {
  std::string out;
  for (const auto& s : sections) {
    if (!out.empty()) out += "\n\n";
    out += s.text;
  }
  return out;
}

json::Value ParsedDocument::to_json() const {
  json::Value v = json::Value::object();
  v["doc_id"] = doc_id;
  v["title"] = title;
  v["kind"] = kind;
  json::Array sects;
  for (const auto& s : sections) {
    json::Value sv = json::Value::object();
    sv["heading"] = s.heading;
    sv["text"] = s.text;
    sects.push_back(std::move(sv));
  }
  v["sections"] = json::Value(std::move(sects));
  json::Value meta = json::Value::object();
  meta["parser"] = parser_used;
  meta["quality"] = quality;
  meta["pages"] = pages;
  v["metadata"] = std::move(meta);
  return v;
}

ParsedDocument ParsedDocument::from_json(const json::Value& v) {
  ParsedDocument d;
  d.doc_id = v.get_or("doc_id", "");
  d.title = v.get_or("title", "");
  d.kind = v.get_or("kind", "unknown");
  if (const auto* sects = v.as_object().find("sections")) {
    for (const auto& sv : sects->as_array()) {
      ParsedSection s;
      s.heading = sv.get_or("heading", "");
      s.text = sv.get_or("text", "");
      d.sections.push_back(std::move(s));
    }
  }
  if (const auto* meta = v.as_object().find("metadata")) {
    d.parser_used = meta->get_or("parser", "");
    d.quality = meta->get_or("quality", 0.0);
    d.pages = static_cast<std::size_t>(meta->get_or("pages", std::int64_t{0}));
  }
  return d;
}

}  // namespace mcqa::parse
