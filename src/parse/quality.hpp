#pragma once
// Parse-quality estimation: the "Ada" in AdaParse.
//
// Two models:
//  * DifficultyPredictor inspects raw bytes cheaply (sampled lines) and
//    predicts whether the fast parser will produce acceptable text —
//    this is what lets the dispatcher send most documents down the cheap
//    path and reserve the expensive extractor for hard ones.
//  * quality_score inspects *parsed* text and measures residual damage
//    (ligature placeholders, mid-word hyphens, header residue, token
//    shape), yielding the accept/retry signal.

#include <string_view>

#include "parse/document.hpp"

namespace mcqa::parse {

struct DifficultyFeatures {
  double hyphen_line_rate = 0.0;   ///< lines ending in '-'
  double marker_rate = 0.0;        ///< ~HDR~/~FTR~ lines per body line
  double placeholder_rate = 0.0;   ///< '\x01' glyphs per KB
  bool truncated = false;          ///< missing %%EOF
  std::size_t sampled_lines = 0;
};

DifficultyFeatures extract_difficulty_features(std::string_view bytes,
                                               std::size_t max_lines = 200);

/// Predicted probability that the *fast* parser's output will pass the
/// quality threshold.  Logistic over the features above.
double predict_fast_parser_success(const DifficultyFeatures& f);

/// Post-parse quality of extracted text in [0, 1].
double quality_score(const ParsedDocument& doc);

}  // namespace mcqa::parse
