#pragma once
// Parsed-document model: what the parsing stage hands to chunking.

#include <string>
#include <vector>

#include "json/json.hpp"

namespace mcqa::parse {

struct ParsedSection {
  std::string heading;
  std::string text;
};

struct ParsedDocument {
  std::string doc_id;
  std::string title;
  std::string kind;  ///< "paper" | "abstract" | "unknown"
  std::vector<ParsedSection> sections;

  std::string parser_used;  ///< which strategy produced this
  double quality = 0.0;     ///< post-parse quality score in [0,1]
  std::size_t pages = 0;

  /// Body text: sections joined with blank lines (no headings).
  std::string body_text() const;

  /// AdaParse-style JSON record (text + metadata).
  json::Value to_json() const;
  static ParsedDocument from_json(const json::Value& v);
};

}  // namespace mcqa::parse
