#include "parse/adaptive.hpp"

namespace mcqa::parse {

void RoutingStats::merge(const RoutingStats& other) {
  total += other.total;
  fast_routed += other.fast_routed;
  escalated += other.escalated;
  accurate_routed += other.accurate_routed;
  failed += other.failed;
  non_spdf += other.non_spdf;
  compute_cost += other.compute_cost;
  always_accurate_cost += other.always_accurate_cost;
}

double RoutingStats::compute_saving() const {
  if (always_accurate_cost <= 0.0) return 0.0;
  return 1.0 - compute_cost / always_accurate_cost;
}

AdaptiveParser::AdaptiveParser(AdaptiveConfig config) : config_(config) {}

ParseOutcome AdaptiveParser::parse(std::string_view bytes) const {
  ParseOutcome out;

  try {
    if (markdown_.accepts(bytes)) {
      out.document = markdown_.parse(bytes);
      out.route = "markdown";
      out.compute_cost = markdown_.cost();
    } else if (fast_.accepts(bytes)) {
      const DifficultyFeatures features = extract_difficulty_features(bytes);
      out.predicted_fast_success = predict_fast_parser_success(features);

      if (out.predicted_fast_success >= config_.route_threshold) {
        out.document = fast_.parse(bytes);
        out.compute_cost = fast_.cost();
        out.document.quality = quality_score(out.document);
        if (out.document.quality >= config_.accept_threshold) {
          out.route = "fast";
        } else {
          // Escalate: pay for the accurate pass too.
          out.document = accurate_.parse(bytes);
          out.compute_cost += accurate_.cost();
          out.route = "fast->accurate";
        }
      } else {
        out.document = accurate_.parse(bytes);
        out.compute_cost = accurate_.cost();
        out.route = "accurate";
      }
    } else if (text_.accepts(bytes)) {
      out.document = text_.parse(bytes);
      out.route = "text";
      out.compute_cost = text_.cost();
    } else {
      out.error = "unrecognized or empty document";
      out.route = "none";
      return out;
    }
  } catch (const ParseFailure& e) {
    out.error = e.what();
    out.route = out.route.empty() ? "failed" : out.route + "->failed";
    return out;
  }

  out.document.quality = quality_score(out.document);
  out.ok = true;
  return out;
}

}  // namespace mcqa::parse
