#include "qgen/mcq_record.hpp"

namespace mcqa::qgen {

std::string McqRecord::render_question(
    const std::string& stem, const std::vector<std::string>& options) {
  std::string out = stem;
  out += "\n";
  for (std::size_t i = 0; i < options.size(); ++i) {
    out += "\n" + std::to_string(i + 1) + ". " + options[i];
  }
  return out;
}

json::Value McqRecord::to_json() const {
  json::Value v = json::Value::object();
  v["question"] = question;
  v["answer"] = answer;
  v["text"] = text;
  v["type"] = type;
  v["chunk_id"] = chunk_id;
  v["cleaning_version"] = cleaning_version;
  v["path"] = path;

  json::Value rel = json::Value::object();
  rel["score"] = relevance_score;
  rel["type"] = relevance_type;
  rel["reasoning"] = relevance_reasoning;
  v["relevance_check"] = std::move(rel);

  json::Value qual = json::Value::object();
  qual["score"] = quality_score;
  qual["critique"] = quality_critique;
  qual["raw_output"] = quality_raw_output;
  v["quality_check"] = std::move(qual);

  json::Value meta = json::Value::object();
  meta["record_id"] = record_id;
  meta["stem"] = stem;
  json::Array opts;
  for (const auto& o : options) opts.emplace_back(o);
  meta["options"] = json::Value(std::move(opts));
  meta["correct_index"] = correct_index;
  meta["fact"] = static_cast<std::int64_t>(fact);
  meta["math"] = math;
  meta["fact_importance"] = fact_importance;
  meta["key_principle"] = key_principle;
  meta["ambiguity"] = ambiguity;
  meta["exam_item"] = exam_item;
  meta["sub_domain"] = sub_domain;
  v["eval_metadata"] = std::move(meta);
  return v;
}

McqRecord McqRecord::from_json(const json::Value& v) {
  McqRecord r;
  r.question = v.get_or("question", "");
  r.answer = v.get_or("answer", "");
  r.text = v.get_or("text", "");
  r.type = v.get_or("type", "multiple-choice");
  r.chunk_id = v.get_or("chunk_id", "");
  r.cleaning_version = v.get_or("cleaning_version", "1.0");
  r.path = v.get_or("path", "");

  if (const auto* rel = v.as_object().find("relevance_check")) {
    r.relevance_score = rel->get_or("score", 0.0);
    r.relevance_type = rel->get_or("type", "domain");
    r.relevance_reasoning = rel->get_or("reasoning", "");
  }
  if (const auto* qual = v.as_object().find("quality_check")) {
    r.quality_score = qual->get_or("score", 0.0);
    r.quality_critique = qual->get_or("critique", "");
    r.quality_raw_output = qual->get_or("raw_output", "");
  }
  if (const auto* meta = v.as_object().find("eval_metadata")) {
    r.record_id = meta->get_or("record_id", "");
    r.stem = meta->get_or("stem", "");
    if (const auto* opts = meta->as_object().find("options")) {
      for (const auto& o : opts->as_array()) r.options.push_back(o.as_string());
    }
    r.correct_index =
        static_cast<int>(meta->get_or("correct_index", std::int64_t{-1}));
    r.fact = static_cast<corpus::FactId>(meta->get_or("fact", std::int64_t{0}));
    r.math = meta->get_or("math", false);
    r.fact_importance = meta->get_or("fact_importance", 0.5);
    r.key_principle = meta->get_or("key_principle", "");
    r.ambiguity = meta->get_or("ambiguity", 0.0);
    r.exam_item = meta->get_or("exam_item", false);
    r.sub_domain = meta->get_or("sub_domain", "");
  }
  return r;
}

llm::McqTask McqRecord::to_task() const {
  llm::McqTask task;
  task.id = record_id;
  task.stem = stem;
  task.options = options;
  task.correct_index = correct_index;
  task.fact = fact;
  task.has_fact = true;
  task.math = math;
  task.fact_importance = fact_importance;
  task.ambiguity = ambiguity;
  task.exam_item = exam_item;
  return task;
}

}  // namespace mcqa::qgen
