#pragma once
// MCQA record: the paper's Fig. 2 JSON schema, plus the simulation-layer
// fields our evaluation needs (probed fact id, correct index, math flag).

#include <string>
#include <vector>

#include "corpus/knowledge_base.hpp"
#include "json/json.hpp"
#include "llm/language_model.hpp"

namespace mcqa::qgen {

struct McqRecord {
  // --- Fig. 2 schema fields -------------------------------------------------
  std::string question;  ///< context + stem + numbered choices
  std::string answer;    ///< restated correct option
  std::string text;      ///< source chunk text
  std::string type = "multiple-choice";
  std::string chunk_id;  ///< filehash_index provenance
  std::string cleaning_version = "1.0";
  std::string path;      ///< source file path

  double relevance_score = 0.0;
  std::string relevance_type = "domain";
  std::string relevance_reasoning;

  double quality_score = 0.0;
  std::string quality_critique;
  std::string quality_raw_output;

  // --- working / simulation-layer fields ------------------------------------
  std::string record_id;  ///< stable id, e.g. "q_<chunkid>"
  std::string stem;
  std::vector<std::string> options;
  int correct_index = -1;
  corpus::FactId fact = 0;
  bool math = false;
  double fact_importance = 0.5;
  std::string key_principle;
  /// Item-level flaw probability: automated generation leaves residual
  /// ambiguity that the quality filter cannot fully remove; expert exams
  /// carry far less.
  double ambiguity = 0.0;
  /// True for expert-exam items (Astro) as opposed to generated ones.
  bool exam_item = false;
  /// Sub-domain organization (paper §5), derived from the probed fact's
  /// topic: molecular-mechanisms / clinical-radiotherapy /
  /// radiation-physics.
  std::string sub_domain;

  /// Fig. 2-faithful serialization (simulation fields nested under
  /// "eval_metadata" so the public schema stays recognizable).
  json::Value to_json() const;
  static McqRecord from_json(const json::Value& v);

  /// Render the "question" field from stem + numbered options.
  static std::string render_question(const std::string& stem,
                                     const std::vector<std::string>& options);

  /// Baseline (no retrieval) evaluation task for this record.
  llm::McqTask to_task() const;
};

}  // namespace mcqa::qgen
