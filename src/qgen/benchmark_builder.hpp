#pragma once
// Benchmark construction: chunks -> candidate MCQs -> quality filter.
//
// One candidate per chunk (the paper generates 173,318 candidates from
// 173,318 chunks), then the two LLM checks gate acceptance:
// relevance >= threshold AND quality >= threshold keeps a record.  The
// paper's funnel lands at 16,680 accepted (~9.6%).

#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

#include "chunk/chunker.hpp"
#include "llm/teacher_model.hpp"
#include "qgen/mcq_record.hpp"

namespace mcqa::qgen {

struct BuilderConfig {
  double quality_threshold = 7.0;    ///< the paper's published filter
  double relevance_threshold = 5.0;  ///< relevance gate
  /// Residual flaw probability of accepted items (what the 1-10 filter
  /// cannot see); propagated into each record.
  double residual_ambiguity = 0.10;
  std::size_t threads = 0;           ///< 0 = hardware concurrency
};

struct FunnelStats {
  std::size_t chunks = 0;
  std::size_t candidates = 0;       ///< drafts the teacher produced
  std::size_t rejected_no_fact = 0; ///< chunk carried nothing testable
  std::size_t rejected_quality = 0;
  std::size_t rejected_relevance = 0;
  std::size_t accepted = 0;

  double acceptance_rate() const {
    return chunks == 0 ? 0.0
                       : static_cast<double>(accepted) /
                             static_cast<double>(chunks);
  }
};

/// Shared funnel tally for callers that run build_one concurrently
/// (the overlapped executor).  `accepted` and `chunks` are derived by
/// the caller from its merge, so only rejection paths live here.
struct FunnelCounters {
  std::atomic<std::size_t> candidates{0};
  std::atomic<std::size_t> rejected_no_fact{0};
  std::atomic<std::size_t> rejected_quality{0};
  std::atomic<std::size_t> rejected_relevance{0};
};

class BenchmarkBuilder {
 public:
  BenchmarkBuilder(const llm::TeacherModel& teacher, BuilderConfig config = {});

  /// Build the benchmark from chunks.  Deterministic, order-stable.
  std::vector<McqRecord> build(const std::vector<chunk::Chunk>& chunks,
                               FunnelStats* stats = nullptr) const;

  /// Draft + filter the candidate for one chunk.  Pure per chunk and
  /// thread-safe, so callers may fan chunks out in any order; build()
  /// is exactly build_one over every chunk merged in input order.
  std::optional<McqRecord> build_one(const chunk::Chunk& chunk,
                                     FunnelCounters& tally) const;

 private:
  const llm::TeacherModel& teacher_;
  BuilderConfig config_;
};

}  // namespace mcqa::qgen
