#include "qgen/benchmark_builder.hpp"

#include "parallel/thread_pool.hpp"

namespace mcqa::qgen {

BenchmarkBuilder::BenchmarkBuilder(const llm::TeacherModel& teacher,
                                   BuilderConfig config)
    : teacher_(teacher), config_(config) {}

std::optional<McqRecord> BenchmarkBuilder::build_one(
    const chunk::Chunk& chunk, FunnelCounters& tally) const {
  const auto draft = teacher_.generate_mcq(chunk);
  if (!draft.has_value()) {
    tally.rejected_no_fact.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  tally.candidates.fetch_add(1, std::memory_order_relaxed);

  const llm::ScoreCheck relevance = teacher_.relevance_check(chunk);
  if (relevance.score < config_.relevance_threshold) {
    tally.rejected_relevance.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const llm::ScoreCheck quality = teacher_.quality_check(*draft, chunk);
  if (quality.score < config_.quality_threshold) {
    tally.rejected_quality.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }

  McqRecord record;
  record.record_id = "q_" + chunk.chunk_id;
  record.stem = draft->stem;
  record.options = draft->options;
  record.correct_index = draft->correct_index;
  record.fact = draft->fact;
  record.math = draft->math;
  record.fact_importance = draft->fact_importance;
  record.key_principle = draft->key_principle;
  record.ambiguity = config_.residual_ambiguity;
  record.sub_domain = std::string(corpus::sub_domain_of_topic(
      teacher_.kb().topic(teacher_.kb().fact(draft->fact).topic).name));

  record.question = McqRecord::render_question(draft->stem, draft->options);
  record.answer =
      draft->correct_index >= 0
          ? draft->options[static_cast<std::size_t>(draft->correct_index)]
          : "";
  record.text = chunk.text;
  record.chunk_id = chunk.chunk_id;
  record.path = chunk.path;
  record.relevance_score = relevance.score;
  record.relevance_reasoning = relevance.reasoning;
  record.quality_score = quality.score;
  record.quality_critique = quality.reasoning;
  record.quality_raw_output =
      "score=" + std::to_string(quality.score) + "; " + quality.reasoning;
  return record;
}

std::vector<McqRecord> BenchmarkBuilder::build(
    const std::vector<chunk::Chunk>& chunks, FunnelStats* stats) const {
  std::vector<std::optional<McqRecord>> slots(chunks.size());
  FunnelCounters tally;

  parallel::ThreadPool pool(config_.threads);
  parallel::parallel_for(pool, 0, chunks.size(), [&](std::size_t i) {
    slots[i] = build_one(chunks[i], tally);
  });

  std::vector<McqRecord> accepted;
  for (auto& slot : slots) {
    if (slot.has_value()) accepted.push_back(std::move(*slot));
  }

  if (stats != nullptr) {
    stats->chunks = chunks.size();
    stats->candidates = tally.candidates.load();
    stats->rejected_no_fact = tally.rejected_no_fact.load();
    stats->rejected_quality = tally.rejected_quality.load();
    stats->rejected_relevance = tally.rejected_relevance.load();
    stats->accepted = accepted.size();
  }
  return accepted;
}

}  // namespace mcqa::qgen
