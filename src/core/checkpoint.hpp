#pragma once
// Content-addressed artifact checkpointing.
//
// Every expensive pipeline artifact — parsed documents, chunks, the
// chunk store, the benchmark, and the per-mode traces and trace stores
// — is keyed by an fnv1a hash chain:
//
//   key(artifact) = fnv1a( format version
//                        , code fingerprint (executable identity)
//                        , fingerprint(configs the artifact depends on)
//                        , key(upstream artifact) )
//
// and saved/loaded as index_io-style length-prefixed binary blobs.  A
// PipelineContext with a checkpoint directory cold-builds once and
// warm-loads after; restored artifacts are byte-identical to built ones
// (tested), because the key only decides hit/miss — artifact bytes
// never depend on it.
//
// Determinism contract: keys contain no wall-clock, no thread counts,
// no scheduling state.  The executable fingerprint (path, size, mtime
// of /proc/self/exe) is invalidation metadata — it conservatively
// retires entries whenever the binary is relinked, so stale caches can
// never survive a code change.

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "chunk/chunker.hpp"
#include "parse/adaptive.hpp"
#include "parse/document.hpp"
#include "qgen/benchmark_builder.hpp"
#include "qgen/mcq_record.hpp"
#include "trace/trace_grading.hpp"
#include "trace/trace_record.hpp"

namespace mcqa::core {

struct PipelineConfig;

/// Bump when any serialization format or generation semantics change
/// without a relink being enough (e.g. hand-edited cache files).
constexpr std::uint64_t kCheckpointFormatVersion = 1;

/// Stable fingerprint of the running executable (path + size + mtime
/// of /proc/self/exe; falls back to the format version alone when the
/// platform hides the executable).  Computed once per process.
std::uint64_t code_fingerprint();

/// Per-artifact cache keys, chained through the build DAG.
struct CheckpointKeys {
  std::uint64_t parsed = 0;
  std::uint64_t chunks = 0;
  std::uint64_t chunk_store = 0;
  std::uint64_t benchmark = 0;
  std::array<std::uint64_t, trace::kTraceModeCount> traces{};
  std::array<std::uint64_t, trace::kTraceModeCount> trace_stores{};
};

/// Derive the key chain from the build configuration.  Thread counts,
/// the embed cache flag and the execution mode are deliberately
/// excluded: they never change artifact bytes (tested), so staged,
/// overlapped and differently-threaded builds share cache entries.
CheckpointKeys derive_checkpoint_keys(const PipelineConfig& config,
                                      std::size_t embed_dim);

/// A directory of content-addressed artifact files
/// (`<name>-<hexkey>.ckpt`).  Writes are atomic (temp file + rename),
/// so concurrent processes building the same configuration race
/// benignly: both produce identical bytes for identical keys.
class ArtifactCache {
 public:
  /// Creates `dir` (and parents) when missing.
  explicit ArtifactCache(std::string dir);

  const std::string& dir() const { return dir_; }

  /// The blob stored for (name, key), or nullopt on miss.
  std::optional<std::string> load(std::string_view name,
                                  std::uint64_t key) const;

  /// Atomically persist `blob` under (name, key).
  void store(std::string_view name, std::uint64_t key,
             std::string_view blob) const;

  std::string path_for(std::string_view name, std::uint64_t key) const;

 private:
  std::string dir_;
};

// --- artifact payloads -------------------------------------------------------
//
// Each artifact serializes the data plus the stats block its build
// stage produced, so a warm load restores PipelineStats faithfully.

struct ParsedArtifact {
  std::vector<parse::ParsedDocument> documents;  ///< successes, doc order
  parse::RoutingStats routing;
  std::size_t parse_failures = 0;
  std::size_t total_documents = 0;  ///< corpus size incl. failures
};

struct BenchmarkArtifact {
  std::vector<qgen::McqRecord> records;
  qgen::FunnelStats funnel;
};

struct TraceArtifact {
  std::vector<trace::TraceRecord> traces;  ///< post-filter, record order
  trace::TraceGradingStats grading;        ///< pre-filter grading tally
};

std::string serialize_parsed(const ParsedArtifact& a);
ParsedArtifact deserialize_parsed(std::string_view blob);

std::string serialize_chunks(const std::vector<chunk::Chunk>& chunks);
std::vector<chunk::Chunk> deserialize_chunks(std::string_view blob);

std::string serialize_benchmark(const BenchmarkArtifact& a);
BenchmarkArtifact deserialize_benchmark(std::string_view blob);

std::string serialize_traces(const TraceArtifact& a);
TraceArtifact deserialize_traces(std::string_view blob);

/// One evaluation-grid cell: the accuracy tally of (model, condition)
/// over a fixed record set.  Plain counters so the codec stays free of
/// eval-layer types; core::EvalCellCache adapts it to eval::Accuracy.
struct EvalCellArtifact {
  std::string model;            ///< student model name
  std::int64_t condition = 0;   ///< rag::Condition as an integer
  std::uint64_t correct = 0;
  std::uint64_t total = 0;
  std::uint64_t unparseable = 0;
};

std::string serialize_eval_cell(const EvalCellArtifact& a);
EvalCellArtifact deserialize_eval_cell(std::string_view blob);

/// Cache-entry name for a per-mode artifact, e.g. "traces-detailed".
std::string trace_mode_blob_name(std::string_view prefix,
                                 trace::TraceMode mode);

}  // namespace mcqa::core
