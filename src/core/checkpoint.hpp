#pragma once
// Content-addressed artifact checkpointing.
//
// Every expensive pipeline artifact — parsed documents, chunks, the
// chunk store, the benchmark, and the per-mode traces and trace stores
// — is keyed by an fnv1a hash chain:
//
//   key(artifact) = fnv1a( format version
//                        , code fingerprint (executable identity)
//                        , fingerprint(configs the artifact depends on)
//                        , key(upstream artifact) )
//
// and saved/loaded as index_io-style length-prefixed binary blobs.  A
// PipelineContext with a checkpoint directory cold-builds once and
// warm-loads after; restored artifacts are byte-identical to built ones
// (tested), because the key only decides hit/miss — artifact bytes
// never depend on it.
//
// Determinism contract: keys contain no wall-clock, no thread counts,
// no scheduling state.  The executable fingerprint (path, size, mtime
// of /proc/self/exe) is invalidation metadata — it conservatively
// retires entries whenever the binary is relinked, so stale caches can
// never survive a code change.

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "chunk/chunker.hpp"
#include "embed/embedder.hpp"
#include "parse/adaptive.hpp"
#include "parse/document.hpp"
#include "qgen/benchmark_builder.hpp"
#include "qgen/mcq_record.hpp"
#include "trace/trace_grading.hpp"
#include "trace/trace_record.hpp"

namespace mcqa::corpus {
struct SyntheticCorpus;
}

namespace mcqa::core {

struct PipelineConfig;

/// Bump when any serialization format or generation semantics change
/// without a relink being enough (e.g. hand-edited cache files).
constexpr std::uint64_t kCheckpointFormatVersion = 1;

/// Stable fingerprint of the running executable (path + size + mtime
/// of /proc/self/exe; falls back to the format version alone when the
/// platform hides the executable).  Computed once per process.
std::uint64_t code_fingerprint();

/// Per-artifact cache keys, chained through the build DAG.
struct CheckpointKeys {
  std::uint64_t parsed = 0;
  std::uint64_t chunks = 0;
  std::uint64_t chunk_store = 0;
  std::uint64_t benchmark = 0;
  std::array<std::uint64_t, trace::kTraceModeCount> traces{};
  std::array<std::uint64_t, trace::kTraceModeCount> trace_stores{};
};

/// Derive the key chain from the build configuration.  Thread counts,
/// the embed cache flag and the execution mode are deliberately
/// excluded: they never change artifact bytes (tested), so staged,
/// overlapped and differently-threaded builds share cache entries.
CheckpointKeys derive_checkpoint_keys(const PipelineConfig& config,
                                      std::size_t embed_dim);

// --- per-document artifact DAG -----------------------------------------------
//
// The monolithic keys above give all-or-nothing restores.  The
// per-document layer keys each document's whole build subtree — parse
// outcome, chunks, chunk embeddings, accepted record and the three
// trace lanes — individually:
//
//   doc key = H("docart", doc config fingerprint, doc id, doc bytes)
//
// so editing K of N documents dirties exactly K keys.  A manifest blob
// (keyed by the config *family*, excluding corpus-edit knobs) maps the
// corpus to its current artifact set and aggregate store keys, which is
// how a warm run finds the previous revision's stores to delta against
// and how `prune_cache` decides reachability.

/// Fingerprint of every configuration knob that can change a single
/// document's build outputs, independent of the rest of the corpus:
/// parser routing/acceptance, chunker geometry + semantic flag, the
/// embedder identity/dimension, builder thresholds, the knowledge base
/// (the teacher reads it) and the trace generator seed.  Corpus-level
/// knobs are deliberately absent — the document's own bytes carry them.
std::uint64_t doc_config_fingerprint(const PipelineConfig& config,
                                     std::size_t embed_dim);

/// Per-document artifact keys, aligned with `corpus.documents`.
std::vector<std::uint64_t> derive_doc_keys(
    const PipelineConfig& config, const corpus::SyntheticCorpus& corpus,
    std::size_t embed_dim);

/// The manifest slot for this configuration family.  Corpus-edit knobs
/// (seed/count/revision) are excluded on purpose: every revision of the
/// same corpus writes the same slot, so the newest manifest always
/// names the latest artifact set — the previous revision's stores stay
/// reachable through the old aggregate keys until the slot is
/// overwritten, which is exactly the window the IVF-PQ delta path needs
/// its donor in.
std::uint64_t derive_manifest_key(const PipelineConfig& config,
                                  std::size_t embed_dim);

/// A directory of content-addressed artifact files
/// (`<name>-<hexkey>.ckpt`).  Writes are atomic (temp file + rename),
/// so concurrent processes building the same configuration race
/// benignly: both produce identical bytes for identical keys.
class ArtifactCache {
 public:
  /// Load/store/corruption counters for one cache handle (process-local,
  /// not persisted).  `corrupt_blobs` counts blobs that loaded but
  /// failed to decode — the caller reports decode failures through
  /// note_corrupt(), which also reclassifies the load as a miss, so
  /// `hits` only ever counts restores that actually stuck.
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t stores = 0;
    std::size_t corrupt_blobs = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
  };

  /// Creates `dir` (and parents) when missing.
  explicit ArtifactCache(std::string dir);

  const std::string& dir() const { return dir_; }

  /// The blob stored for (name, key), or nullopt on miss.
  std::optional<std::string> load(std::string_view name,
                                  std::uint64_t key) const;

  /// Atomically persist `blob` under (name, key).
  void store(std::string_view name, std::uint64_t key,
             std::string_view blob) const;

  /// Record that the most recent successful load held a corrupt blob
  /// the caller had to discard (it recomputes instead): counts it in
  /// corrupt_blobs and reclassifies the hit as a miss.
  void note_corrupt() const;

  Stats stats() const;

  std::string path_for(std::string_view name, std::uint64_t key) const;

 private:
  std::string dir_;
  mutable std::atomic<std::size_t> hits_{0};
  mutable std::atomic<std::size_t> misses_{0};
  mutable std::atomic<std::size_t> stores_{0};
  mutable std::atomic<std::size_t> corrupt_{0};
  mutable std::atomic<std::uint64_t> bytes_read_{0};
  mutable std::atomic<std::uint64_t> bytes_written_{0};
};

// --- artifact payloads -------------------------------------------------------
//
// Each artifact serializes the data plus the stats block its build
// stage produced, so a warm load restores PipelineStats faithfully.

struct ParsedArtifact {
  std::vector<parse::ParsedDocument> documents;  ///< successes, doc order
  parse::RoutingStats routing;
  std::size_t parse_failures = 0;
  std::size_t total_documents = 0;  ///< corpus size incl. failures
};

struct BenchmarkArtifact {
  std::vector<qgen::McqRecord> records;
  qgen::FunnelStats funnel;
};

struct TraceArtifact {
  std::vector<trace::TraceRecord> traces;  ///< post-filter, record order
  trace::TraceGradingStats grading;        ///< pre-filter grading tally
};

std::string serialize_parsed(const ParsedArtifact& a);
ParsedArtifact deserialize_parsed(std::string_view blob);

std::string serialize_chunks(const std::vector<chunk::Chunk>& chunks);
std::vector<chunk::Chunk> deserialize_chunks(std::string_view blob);

std::string serialize_benchmark(const BenchmarkArtifact& a);
BenchmarkArtifact deserialize_benchmark(std::string_view blob);

std::string serialize_traces(const TraceArtifact& a);
TraceArtifact deserialize_traces(std::string_view blob);

/// One evaluation-grid cell: the accuracy tally of (model, condition)
/// over a fixed record set.  Plain counters so the codec stays free of
/// eval-layer types; core::EvalCellCache adapts it to eval::Accuracy.
struct EvalCellArtifact {
  std::string model;            ///< student model name
  std::int64_t condition = 0;   ///< rag::Condition as an integer
  std::uint64_t correct = 0;
  std::uint64_t total = 0;
  std::uint64_t unparseable = 0;
};

std::string serialize_eval_cell(const EvalCellArtifact& a);
EvalCellArtifact deserialize_eval_cell(std::string_view blob);

// --- per-document artifacts --------------------------------------------------

/// One trace-mode lane of one record: present (kept) only when the
/// teacher's trace graded correct — exactly the filter the executor's
/// fused trace task applies.
struct DocTraceArtifact {
  bool kept = false;
  trace::TraceRecord trace;
  std::string retrieval;  ///< trace.retrieval_text(), captured post-grade
  embed::Vector vector;   ///< embed(retrieval), raw fp32 bits
};

/// One chunk's slice of the document subtree.
struct DocChunkArtifact {
  chunk::Chunk chunk;
  embed::Vector vector;  ///< embed(chunk.text), raw fp32 bits
  bool has_record = false;
  qgen::McqRecord record;  ///< valid iff has_record
  std::array<DocTraceArtifact, trace::kTraceModeCount> traces;
};

/// Everything one document's build subtree produces, self-contained so
/// a warm run can restore it without touching any other document.  The
/// per-document funnel deltas sum (in document order) to the global
/// FunnelStats; grading tallies are derived at merge time (graded ==
/// record count per mode, correct == kept count).
struct DocArtifact {
  bool parsed_ok = false;
  std::string route;  ///< AdaptiveParser routing label
  double compute_cost = 0.0;
  parse::ParsedDocument document;  ///< valid iff parsed_ok
  std::vector<DocChunkArtifact> chunks;
  std::uint64_t funnel_candidates = 0;
  std::uint64_t funnel_rejected_no_fact = 0;
  std::uint64_t funnel_rejected_quality = 0;
  std::uint64_t funnel_rejected_relevance = 0;
};

std::string serialize_docart(const DocArtifact& a);
DocArtifact deserialize_docart(std::string_view blob);

/// The corpus -> artifact-set map for one configuration family: the
/// aggregate store keys of the latest revision plus every document's
/// (id, key) pair.  `prune_cache` treats exactly this set as reachable.
struct ManifestArtifact {
  CheckpointKeys keys;
  std::vector<std::string> doc_ids;
  std::vector<std::uint64_t> doc_keys;  ///< aligned with doc_ids
};

std::string serialize_manifest(const ManifestArtifact& a);
ManifestArtifact deserialize_manifest(std::string_view blob);

/// Cache-entry name for a per-mode artifact, e.g. "traces-detailed".
std::string trace_mode_blob_name(std::string_view prefix,
                                 trace::TraceMode mode);

// --- cache maintenance (`mcqa cache`) ----------------------------------------

struct CacheInventoryRow {
  std::string prefix;  ///< blob name ("docart", "eval-cell", ...)
  std::size_t files = 0;
  std::uintmax_t bytes = 0;
};

struct CacheInventory {
  std::vector<CacheInventoryRow> rows;  ///< sorted by prefix
  std::size_t total_files = 0;
  std::uintmax_t total_bytes = 0;
};

/// Per-prefix file/byte counts over the `.ckpt` files in `dir`
/// (deterministic: aggregated by name, never by directory order).
CacheInventory inventory_cache(const std::string& dir);

struct PruneReport {
  std::size_t scanned = 0;
  std::size_t kept = 0;
  std::size_t removed = 0;
  std::uintmax_t removed_bytes = 0;
};

/// Deterministic mark-and-sweep over `dir`: keeps exactly the blobs
/// reachable from `manifest` (the manifest file itself, its per-doc
/// artifacts, and its aggregate store blobs) and removes every other
/// build-artifact blob — including stale revisions and other
/// configurations' manifests.  Eval-cell/eval-group blobs and trained
/// model weights are left alone unless `prune_eval_cells` is set (they
/// are keyed independently of the manifest).  No atime, no wall-clock:
/// two prunes of the same directory state remove the same files.
PruneReport prune_cache(const std::string& dir,
                        const ManifestArtifact& manifest,
                        std::uint64_t manifest_key,
                        bool prune_eval_cells = false);

}  // namespace mcqa::core
