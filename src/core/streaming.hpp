#pragma once
// Streaming ingest: the Parsl-style dataflow form of the pipeline's
// front half (parse -> chunk -> embed), built on parallel::run_stage
// with per-stage worker counts and bounded queues for backpressure.
//
// The batch PipelineContext materializes each stage before starting the
// next; the streaming form lets document i+1 parse while document i is
// still chunking — the shape the paper runs across ALCF nodes.  Both
// forms produce byte-identical artifacts (order is restored by sequence
// number), which the tests assert.

#include <vector>

#include "chunk/chunker.hpp"
#include "corpus/corpus_builder.hpp"
#include "embed/embedder.hpp"
#include "parse/adaptive.hpp"

namespace mcqa::core {

struct StreamingConfig {
  std::size_t parse_workers = 2;
  std::size_t chunk_workers = 2;
  std::size_t embed_workers = 2;
  parse::AdaptiveConfig parser;
  chunk::ChunkerConfig chunker;
};

struct StreamingResult {
  std::vector<parse::ParsedDocument> documents;  ///< successfully parsed
  std::size_t parse_failures = 0;
  std::vector<chunk::Chunk> chunks;
  /// Embedding per chunk, aligned with `chunks`.
  std::vector<embed::Vector> embeddings;
};

/// Run the streaming front half over a document batch.
StreamingResult run_streaming_ingest(
    const std::vector<corpus::RawDocument>& documents,
    const embed::Embedder& embedder, const StreamingConfig& config = {});

}  // namespace mcqa::core
