#include "core/pipeline.hpp"

#include <cstdlib>
#include <utility>

#include "core/checkpoint.hpp"
#include "core/eval_cache.hpp"
#include "core/executor.hpp"
#include "train/train_io.hpp"
#include "parallel/thread_pool.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace mcqa::core {

std::string_view execution_mode_name(ExecutionMode mode) {
  switch (mode) {
    case ExecutionMode::kStaged: return "staged";
    case ExecutionMode::kOverlapped: return "overlapped";
  }
  return "unknown";
}

std::string default_checkpoint_dir() {
  const char* env = std::getenv("MCQA_CHECKPOINT_DIR");
  return (env != nullptr && *env != '\0') ? std::string(env) : std::string();
}

PipelineConfig PipelineConfig::paper_scale(double scale) {
  PipelineConfig cfg;
  cfg.corpus.scale = scale;
  cfg.checkpoint_dir = default_checkpoint_dir();
  return cfg;
}

PipelineContext::PipelineContext(const PipelineConfig& config)
    : config_(config),
      kb_(corpus::KnowledgeBase::generate(config.kb)),
      matcher_(kb_),
      embedder_(embed::make_biomed_encoder()) {
  util::Stopwatch total;
  {
    util::Stopwatch watch;
    corpus_ = corpus::build_corpus(kb_, config_.corpus, config_.threads);
    stats_.stage_seconds.kb_corpus = watch.seconds();
  }

  parallel::ThreadPool pool(config_.threads);
  if (config_.embed_cache) {
    embed_cache_ = std::make_unique<embed::CachingEmbedder>(embedder_);
  }
  teacher_ = std::make_unique<llm::TeacherModel>(kb_, matcher_);

  bool restored = false;
  if (!config_.checkpoint_dir.empty()) {
    // Checkpointed builds always route through the incremental
    // dataflow executor (byte-identical to both plain modes; tested):
    // it restores the per-document artifacts that still match and
    // recomputes only the dirty subtrees.
    const ArtifactCache cache(config_.checkpoint_dir);
    util::Stopwatch watch;
    OverlappedBuilder(*this).run_incremental(pool, cache);
    stats_.stage_seconds.overlapped = watch.seconds();
    const ArtifactCache::Stats cs = cache.stats();
    stats_.checkpoint_hits = cs.hits;
    stats_.checkpoint_misses = cs.misses;
    stats_.checkpoint_corrupt = cs.corrupt_blobs;
    restored = stats_.doc_artifacts_recomputed == 0;
  } else if (config_.execution == ExecutionMode::kOverlapped) {
    build_overlapped(pool);
  } else {
    build_staged(pool);
  }

  finalize_exam_and_rag();

  if (embed_cache_) stats_.embed_cache = embed_cache_->stats();
  stats_.build_seconds = total.seconds();
  MCQA_INFO("pipeline") << "built (" << execution_mode_name(config_.execution)
                        << (restored ? ", checkpoint-restored" : "") << "): "
                        << stats_.documents << " docs, " << stats_.chunks
                        << " chunks, " << benchmark_.size() << " questions, "
                        << exam_all_.size() << " exam items in "
                        << stats_.build_seconds << "s";
}

void PipelineContext::build_staged(parallel::ThreadPool& pool) {
  const embed::Embedder& embedder = active_embedder();
  util::Stopwatch watch;

  // --- Stage 1: adaptive parsing -------------------------------------------
  const parse::AdaptiveParser parser(config_.parser);
  std::vector<parse::ParseOutcome> outcomes(corpus_.documents.size());
  parallel::parallel_for(pool, 0, corpus_.documents.size(), [&](std::size_t i) {
    outcomes[i] = parser.parse(corpus_.documents[i].bytes);
  });
  std::size_t ok_docs = 0;
  for (const auto& outcome : outcomes) ok_docs += outcome.ok ? 1 : 0;
  parsed_.reserve(ok_docs);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    auto& outcome = outcomes[i];
    ++stats_.routing.total;
    stats_.routing.compute_cost += outcome.compute_cost;
    stats_.routing.always_accurate_cost += 8.0;  // AccurateSpdfParser::cost
    if (outcome.route == "fast") ++stats_.routing.fast_routed;
    else if (outcome.route == "accurate") ++stats_.routing.accurate_routed;
    else if (outcome.route == "fast->accurate") ++stats_.routing.escalated;
    else if (outcome.route == "markdown" || outcome.route == "text")
      ++stats_.routing.non_spdf;
    if (!outcome.ok) {
      ++stats_.routing.failed;
      ++stats_.parse_failures;
      continue;
    }
    // Ensure provenance survives formats that don't embed a doc id.
    if (outcome.document.doc_id.empty()) {
      outcome.document.doc_id = corpus_.documents[i].doc_id;
    }
    parsed_.push_back(std::move(outcome.document));
  }
  stats_.documents = corpus_.documents.size();
  stats_.stage_seconds.parse = watch.seconds();

  // --- Stage 2: chunking ----------------------------------------------------
  watch.reset();
  {
    std::unique_ptr<chunk::Chunker> chunker;
    if (config_.semantic_chunking) {
      chunker = std::make_unique<chunk::SemanticChunker>(embedder,
                                                         config_.chunker);
    } else {
      chunker = std::make_unique<chunk::FixedSizeChunker>(config_.chunker);
    }
    std::vector<std::vector<chunk::Chunk>> per_doc(parsed_.size());
    parallel::parallel_for(pool, 0, parsed_.size(), [&](std::size_t i) {
      per_doc[i] = chunker->chunk(parsed_[i]);
    });
    std::size_t total_chunks = 0;
    for (const auto& doc_chunks : per_doc) total_chunks += doc_chunks.size();
    chunks_.reserve(total_chunks);
    for (auto& doc_chunks : per_doc) {
      for (auto& c : doc_chunks) chunks_.push_back(std::move(c));
    }
  }
  stats_.chunks = chunks_.size();
  stats_.stage_seconds.chunk = watch.seconds();

  // --- Stage 3: embed + index the chunk store -------------------------------
  watch.reset();
  chunk_store_ =
      std::make_unique<index::VectorStore>(embedder, config_.index_kind);
  {
    std::vector<std::string> ids;
    std::vector<std::string> texts;
    ids.reserve(chunks_.size());
    texts.reserve(chunks_.size());
    for (const auto& c : chunks_) {
      ids.push_back(c.chunk_id);
      texts.push_back(c.text);
    }
    chunk_store_->add_batch(std::move(ids), std::move(texts), pool);
  }
  chunk_store_->build();
  stats_.embedding_bytes = chunk_store_->embedding_bytes();
  stats_.stage_seconds.embed_index = watch.seconds();

  // --- Stage 4: MCQ generation + quality filter ------------------------------
  watch.reset();
  {
    qgen::BuilderConfig builder_cfg = config_.builder;
    builder_cfg.threads = config_.threads;
    const qgen::BenchmarkBuilder builder(*teacher_, builder_cfg);
    benchmark_ = builder.build(chunks_, &stats_.funnel);
  }
  stats_.stage_seconds.qgen = watch.seconds();

  // --- Stage 5: reasoning-trace distillation ---------------------------------
  watch.reset();
  {
    trace::TraceGenConfig trace_cfg = config_.tracegen;
    trace_cfg.threads = config_.threads;
    const trace::TraceGenerator tracer(*teacher_, trace_cfg);
    for (int m = 0; m < trace::kTraceModeCount; ++m) {
      const auto mode = static_cast<trace::TraceMode>(m);
      const auto mi = static_cast<std::size_t>(m);
      traces_[mi] = tracer.generate_all(benchmark_, mode);
      // Fill the Fig. 3 grading_result block; teacher predictions grade
      // near-ceiling, so the store keeps essentially every trace, but
      // the gate exists (and is exercised) for noisier teachers.
      const trace::TraceGradingStats grading = trace::grade_all(traces_[mi]);
      stats_.trace_grading_accuracy[mi] = grading.accuracy();
      trace::filter_incorrect(traces_[mi]);
      stats_.traces_per_mode[mi] = traces_[mi].size();
      trace_stores_[mi] =
          std::make_unique<index::VectorStore>(embedder, config_.index_kind);
      {
        std::vector<std::string> ids;
        std::vector<std::string> texts;
        ids.reserve(traces_[mi].size());
        texts.reserve(traces_[mi].size());
        for (const auto& t : traces_[mi]) {
          ids.push_back(t.trace_id);
          texts.push_back(t.retrieval_text());
        }
        trace_stores_[mi]->add_batch(std::move(ids), std::move(texts), pool);
      }
      trace_stores_[mi]->build();
    }
  }
  stats_.stage_seconds.traces = watch.seconds();
}

void PipelineContext::build_overlapped(parallel::ThreadPool& pool) {
  util::Stopwatch watch;
  OverlappedBuilder(*this).run(pool);
  stats_.stage_seconds.overlapped = watch.seconds();
}

void PipelineContext::finalize_exam_and_rag() {
  util::Stopwatch watch;
  // --- Stage 6: retrieval fact coverage + Astro exam -------------------------
  {
    // A fact is "covered" for exam purposes when the benchmark probes it:
    // such facts have both a retrievable source chunk and distilled
    // reasoning traces.  (Chunk-only coverage is broader, but traces are
    // the retrieval source whose exam behaviour the paper measures.)
    for (const auto& record : benchmark_) {
      covered_facts_.insert(record.fact);
    }

    const exam::AstroExamBuilder exam_builder(kb_, config_.exam);
    exam_ = exam_builder.build(covered_facts_);
    exam_all_ = exam_.usable();
    const exam::MathClassifier classifier;
    exam_no_math_ = classifier.no_math_subset(exam_);
  }

  // --- Stage 7: retrieval pipeline + students --------------------------------
  {
    rag::RetrievalStores stores;
    stores.chunks = chunk_store_.get();
    for (int m = 0; m < trace::kTraceModeCount; ++m) {
      stores.traces[static_cast<std::size_t>(m)] = trace_stores_[m].get();
    }
    rag_ = std::make_unique<rag::RagPipeline>(kb_, matcher_, stores,
                                              config_.rag);
  }
  for (const auto& card : llm::student_registry()) {
    students_.push_back(
        std::make_unique<llm::StudentModel>(card, config_.sim));
  }
  stats_.stage_seconds.exam = watch.seconds();
}

std::vector<const llm::LanguageModel*> PipelineContext::student_ptrs() const {
  std::vector<const llm::LanguageModel*> out;
  out.reserve(students_.size());
  for (const auto& s : students_) out.push_back(s.get());
  return out;
}

std::vector<llm::ModelSpec> PipelineContext::student_specs() const {
  std::vector<llm::ModelSpec> out;
  out.reserve(students_.size());
  for (const auto& s : students_) out.push_back(s->card().spec);
  return out;
}

std::pair<std::string, std::string> PipelineContext::training_texts() const {
  // Efficient-mode traces only: the densest medium (one distilled fact
  // line per record), and the one where equal-byte budgets cover every
  // benchmark topic.  Concatenating all three verbosity tiers mostly
  // restates the same records with more boilerplate per fact, which
  // measured worse per training byte.
  std::string trace_text;
  for (const auto& t : traces_[static_cast<std::size_t>(
           trace::TraceMode::kEfficient)]) {
    trace_text += t.retrieval_text();  // answers withheld, as stored
    trace_text += '\n';
  }
  std::string chunk_text;
  for (const auto& chunk : chunks_) {
    chunk_text += chunk.text;
    chunk_text += '\n';
  }
  // Equal byte budget, so accuracy differences measure the medium, not
  // the amount of text.
  const std::size_t budget = std::min(trace_text.size(), chunk_text.size());
  trace_text.resize(budget);
  chunk_text.resize(budget);
  return {std::move(trace_text), std::move(chunk_text)};
}

train::TrainConfig PipelineContext::roster_train_config() {
  // Frozen alongside the student profiles: re-tune only via bench_train
  // (the shape checks there pin trace >= chunk > untrained).
  train::TrainConfig cfg;
  cfg.bpe_vocab = 1500;
  cfg.epochs = 8;
  cfg.minibatch = 256;
  cfg.step_size = 0.3;
  return cfg;
}

namespace {

/// Train or warm-restore one trainable roster row.  The checkpoint key
/// chain pins (format, executable, config, training bytes); corrupt or
/// truncated blobs fall through to a retrain, §12-style.
std::unique_ptr<llm::TrainedStudent> build_trained_row(
    std::string name, const std::string& text, const train::TrainConfig& tc,
    const std::string& checkpoint_dir) {
  llm::TrainedStudentConfig cfg;
  cfg.train = tc;
  cfg.name = std::move(name);
  const std::uint64_t fp = train::trained_model_fingerprint(tc, text);
  if (!checkpoint_dir.empty()) {
    const ArtifactCache cache(checkpoint_dir);
    const std::uint64_t key =
        train::trained_checkpoint_key(code_fingerprint(), tc, text);
    if (const auto blob = cache.load("trained-lbl", key)) {
      try {
        return std::make_unique<llm::TrainedStudent>(
            llm::TrainedStudent::restore(*blob, cfg, fp));
      } catch (const std::exception& e) {
        // Corrupt blob: count it, then retrain and overwrite below.
        cache.note_corrupt();
        MCQA_INFO("pipeline") << "corrupt trained-lbl checkpoint ("
                              << e.what() << "); retraining";
      }
    }
    auto model = std::make_unique<llm::TrainedStudent>(
        llm::TrainedStudent::train(text, cfg));
    cache.store("trained-lbl", key, model->serialize());
    return model;
  }
  return std::make_unique<llm::TrainedStudent>(
      llm::TrainedStudent::train(text, cfg));
}

}  // namespace

const PipelineContext::TrainedRoster& PipelineContext::trained_roster() const {
  const std::lock_guard<std::mutex> lock(trained_mu_);
  if (trained_.traces == nullptr) {
    const auto [trace_text, chunk_text] = training_texts();
    const train::TrainConfig tc = roster_train_config();
    trained_.traces =
        build_trained_row("lbl-traces", trace_text, tc, config_.checkpoint_dir);
    trained_.chunks =
        build_trained_row("lbl-chunks", chunk_text, tc, config_.checkpoint_dir);
    // Eval-cell keys for these rows must move when the training inputs
    // move (and only then) — see core/eval_cache.
    register_model_fingerprint(trained_.traces->name(),
                               trained_.traces->fingerprint());
    register_model_fingerprint(trained_.chunks->name(),
                               trained_.chunks->fingerprint());
  }
  return trained_;
}

std::vector<const llm::LanguageModel*> PipelineContext::extended_student_ptrs()
    const {
  const TrainedRoster& roster = trained_roster();
  std::vector<const llm::LanguageModel*> out = student_ptrs();
  out.push_back(roster.traces.get());
  out.push_back(roster.chunks.get());
  return out;
}

std::vector<llm::ModelSpec> PipelineContext::extended_student_specs() const {
  const TrainedRoster& roster = trained_roster();
  std::vector<llm::ModelSpec> out = student_specs();
  out.push_back(roster.traces->spec());
  out.push_back(roster.chunks->spec());
  return out;
}

const PipelineContext& PipelineContext::shared() {
  static const PipelineContext ctx(PipelineConfig::paper_scale());
  return ctx;
}

}  // namespace mcqa::core
