#include "core/pipeline.hpp"

#include <atomic>
#include <mutex>

#include "parallel/thread_pool.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace mcqa::core {

PipelineConfig PipelineConfig::paper_scale(double scale) {
  PipelineConfig cfg;
  cfg.corpus.scale = scale;
  return cfg;
}

PipelineContext::PipelineContext(const PipelineConfig& config)
    : config_(config),
      kb_(corpus::KnowledgeBase::generate(config.kb)),
      matcher_(kb_),
      corpus_(corpus::build_corpus(kb_, config.corpus, config.threads)),
      embedder_(embed::make_biomed_encoder()) {
  util::Stopwatch watch;
  parallel::ThreadPool pool(config_.threads);

  if (config_.embed_cache) {
    embed_cache_ = std::make_unique<embed::CachingEmbedder>(embedder_);
  }
  const embed::Embedder& embedder = active_embedder();

  // --- Stage 1: adaptive parsing -------------------------------------------
  const parse::AdaptiveParser parser(config_.parser);
  std::vector<parse::ParseOutcome> outcomes(corpus_.documents.size());
  parallel::parallel_for(pool, 0, corpus_.documents.size(), [&](std::size_t i) {
    outcomes[i] = parser.parse(corpus_.documents[i].bytes);
  });
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    auto& outcome = outcomes[i];
    ++stats_.routing.total;
    stats_.routing.compute_cost += outcome.compute_cost;
    stats_.routing.always_accurate_cost += 8.0;  // AccurateSpdfParser::cost
    if (outcome.route == "fast") ++stats_.routing.fast_routed;
    else if (outcome.route == "accurate") ++stats_.routing.accurate_routed;
    else if (outcome.route == "fast->accurate") ++stats_.routing.escalated;
    else if (outcome.route == "markdown" || outcome.route == "text")
      ++stats_.routing.non_spdf;
    if (!outcome.ok) {
      ++stats_.routing.failed;
      ++stats_.parse_failures;
      continue;
    }
    // Ensure provenance survives formats that don't embed a doc id.
    if (outcome.document.doc_id.empty()) {
      outcome.document.doc_id = corpus_.documents[i].doc_id;
    }
    parsed_.push_back(std::move(outcome.document));
  }
  stats_.documents = corpus_.documents.size();

  // --- Stage 2: chunking ----------------------------------------------------
  {
    std::unique_ptr<chunk::Chunker> chunker;
    if (config_.semantic_chunking) {
      chunker = std::make_unique<chunk::SemanticChunker>(embedder,
                                                         config_.chunker);
    } else {
      chunker = std::make_unique<chunk::FixedSizeChunker>(config_.chunker);
    }
    std::vector<std::vector<chunk::Chunk>> per_doc(parsed_.size());
    parallel::parallel_for(pool, 0, parsed_.size(), [&](std::size_t i) {
      per_doc[i] = chunker->chunk(parsed_[i]);
    });
    for (auto& doc_chunks : per_doc) {
      for (auto& c : doc_chunks) chunks_.push_back(std::move(c));
    }
  }
  stats_.chunks = chunks_.size();

  // --- Stage 3: embed + index the chunk store -------------------------------
  chunk_store_ =
      std::make_unique<index::VectorStore>(embedder, config_.index_kind);
  {
    std::vector<std::string> ids;
    std::vector<std::string> texts;
    ids.reserve(chunks_.size());
    texts.reserve(chunks_.size());
    for (const auto& c : chunks_) {
      ids.push_back(c.chunk_id);
      texts.push_back(c.text);
    }
    chunk_store_->add_batch(std::move(ids), std::move(texts), pool);
  }
  chunk_store_->build();
  stats_.embedding_bytes = chunk_store_->embedding_bytes();

  // --- Stage 4: MCQ generation + quality filter ------------------------------
  teacher_ = std::make_unique<llm::TeacherModel>(kb_, matcher_);
  {
    qgen::BuilderConfig builder_cfg = config_.builder;
    builder_cfg.threads = config_.threads;
    const qgen::BenchmarkBuilder builder(*teacher_, builder_cfg);
    benchmark_ = builder.build(chunks_, &stats_.funnel);
  }

  // --- Stage 5: reasoning-trace distillation ---------------------------------
  {
    trace::TraceGenConfig trace_cfg = config_.tracegen;
    trace_cfg.threads = config_.threads;
    const trace::TraceGenerator tracer(*teacher_, trace_cfg);
    for (int m = 0; m < trace::kTraceModeCount; ++m) {
      const auto mode = static_cast<trace::TraceMode>(m);
      traces_[m] = tracer.generate_all(benchmark_, mode);
      // Fill the Fig. 3 grading_result block; teacher predictions grade
      // near-ceiling, so the store keeps essentially every trace, but
      // the gate exists (and is exercised) for noisier teachers.
      const trace::TraceGradingStats grading =
          trace::grade_all(traces_[m]);
      stats_.trace_grading_accuracy = grading.accuracy();
      trace::filter_incorrect(traces_[m]);
      trace_stores_[m] =
          std::make_unique<index::VectorStore>(embedder, config_.index_kind);
      {
        std::vector<std::string> ids;
        std::vector<std::string> texts;
        ids.reserve(traces_[m].size());
        texts.reserve(traces_[m].size());
        for (const auto& t : traces_[m]) {
          ids.push_back(t.trace_id);
          texts.push_back(t.retrieval_text());
        }
        trace_stores_[m]->add_batch(std::move(ids), std::move(texts), pool);
      }
      trace_stores_[m]->build();
    }
    stats_.traces_per_mode = traces_[0].size();
  }

  // --- Stage 6: retrieval fact coverage + Astro exam -------------------------
  {
    // A fact is "covered" for exam purposes when the benchmark probes it:
    // such facts have both a retrievable source chunk and distilled
    // reasoning traces.  (Chunk-only coverage is broader, but traces are
    // the retrieval source whose exam behaviour the paper measures.)
    for (const auto& record : benchmark_) {
      covered_facts_.insert(record.fact);
    }

    const exam::AstroExamBuilder exam_builder(kb_, config_.exam);
    exam_ = exam_builder.build(covered_facts_);
    exam_all_ = exam_.usable();
    const exam::MathClassifier classifier;
    exam_no_math_ = classifier.no_math_subset(exam_);
  }

  // --- Stage 7: retrieval pipeline + students --------------------------------
  {
    rag::RetrievalStores stores;
    stores.chunks = chunk_store_.get();
    for (int m = 0; m < trace::kTraceModeCount; ++m) {
      stores.traces[static_cast<std::size_t>(m)] = trace_stores_[m].get();
    }
    rag_ = std::make_unique<rag::RagPipeline>(kb_, matcher_, stores,
                                              config_.rag);
  }
  for (const auto& card : llm::student_registry()) {
    students_.push_back(
        std::make_unique<llm::StudentModel>(card, config_.sim));
  }

  if (embed_cache_) stats_.embed_cache = embed_cache_->stats();
  stats_.build_seconds = watch.seconds();
  MCQA_INFO("pipeline") << "built: " << stats_.documents << " docs, "
                        << stats_.chunks << " chunks, "
                        << benchmark_.size() << " questions, "
                        << exam_all_.size() << " exam items in "
                        << stats_.build_seconds << "s";
}

std::vector<const llm::LanguageModel*> PipelineContext::student_ptrs() const {
  std::vector<const llm::LanguageModel*> out;
  out.reserve(students_.size());
  for (const auto& s : students_) out.push_back(s.get());
  return out;
}

std::vector<llm::ModelSpec> PipelineContext::student_specs() const {
  std::vector<llm::ModelSpec> out;
  out.reserve(students_.size());
  for (const auto& s : students_) out.push_back(s->card().spec);
  return out;
}

const PipelineContext& PipelineContext::shared() {
  static const PipelineContext ctx(PipelineConfig::paper_scale());
  return ctx;
}

}  // namespace mcqa::core
