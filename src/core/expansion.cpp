#include "core/expansion.hpp"

#include "trace/trace_grading.hpp"

#include "parallel/thread_pool.hpp"

namespace mcqa::core {

ExpansionResult expand_benchmark(
    const std::vector<corpus::RawDocument>& new_documents,
    const std::unordered_set<std::string>& existing_chunk_ids,
    const embed::Embedder& embedder, const llm::TeacherModel& teacher,
    const ExpansionConfig& config) {
  ExpansionResult result;
  result.documents_in = new_documents.size();

  // Stage 1: parse the batch.
  const parse::AdaptiveParser parser(config.parser);
  std::vector<parse::ParsedDocument> parsed(new_documents.size());
  std::vector<bool> ok(new_documents.size(), false);
  parallel::ThreadPool pool(config.threads);
  parallel::parallel_for(pool, 0, new_documents.size(), [&](std::size_t i) {
    parse::ParseOutcome outcome = parser.parse(new_documents[i].bytes);
    if (!outcome.ok) return;
    if (outcome.document.doc_id.empty()) {
      outcome.document.doc_id = new_documents[i].doc_id;
    }
    parsed[i] = std::move(outcome.document);
    ok[i] = true;
  });

  // Stage 2: chunk, dropping content already present in the benchmark
  // (content-addressed chunk ids make re-ingestion idempotent).
  const chunk::SemanticChunker chunker(embedder, config.chunker);
  std::vector<chunk::Chunk> fresh_chunks;
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    if (!ok[i]) continue;
    ++result.documents_parsed;
    const auto chunks = chunker.chunk(parsed[i]);
    bool any_fresh = false;
    for (const auto& c : chunks) {
      if (existing_chunk_ids.contains(c.chunk_id)) continue;
      fresh_chunks.push_back(c);
      any_fresh = true;
    }
    if (!any_fresh && !chunks.empty()) ++result.documents_skipped;
  }
  result.new_chunks = fresh_chunks.size();

  // Stage 3: generate + filter questions for the fresh chunks only.
  qgen::BuilderConfig builder_cfg = config.builder;
  builder_cfg.threads = config.threads;
  const qgen::BenchmarkBuilder builder(teacher, builder_cfg);
  result.new_records = builder.build(fresh_chunks, &result.funnel);

  // Stage 4: distill traces for the new records.
  trace::TraceGenConfig trace_cfg = config.tracegen;
  trace_cfg.threads = config.threads;
  const trace::TraceGenerator tracer(teacher, trace_cfg);
  for (int m = 0; m < trace::kTraceModeCount; ++m) {
    result.new_traces[static_cast<std::size_t>(m)] =
        tracer.generate_all(result.new_records,
                            static_cast<trace::TraceMode>(m));
    trace::grade_all(result.new_traces[static_cast<std::size_t>(m)]);
  }
  return result;
}

}  // namespace mcqa::core
