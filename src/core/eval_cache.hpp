#pragma once
// Content-addressed eval-cell cache (the evaluation-grid counterpart of
// core/checkpoint's build-artifact cache).
//
// One cached cell is the Accuracy tally of (model, condition) over a
// fixed record set.  The key chain mirrors derive_checkpoint_keys:
//
//   sweep key = fnv1a( format version , code fingerprint
//                    , benchmark + chunk/trace store checkpoint keys
//                    , record-set content fingerprint (the swept subset
//                      — full benchmark, exam_all and exam_no_math all
//                      key differently)
//                    , RAG config , judge fingerprint
//                    , simulation coefficients )
//   cell key  = fnv1a( sweep key , model name + card fingerprint
//                    , condition )
//
// so a cached cell can only hit when every input that could change its
// counts is unchanged.  Loads are all-or-nothing per cell: a missing,
// corrupt or mismatched blob is a miss and the harness recomputes.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "eval/harness.hpp"
#include "qgen/mcq_record.hpp"

namespace mcqa::core {

class PipelineContext;

/// Process-wide fingerprint registry for *trainable* models.  The
/// frozen roster's cell keys derive from the calibrated model cards;
/// a trained model's behaviour is instead pinned by its (training
/// config, training text) fingerprint.  Whoever builds such a model
/// registers that fingerprint under the model's roster name, and
/// cell_key() folds it in — so flipping one training document
/// invalidates exactly the trainable rows and nothing else.
/// Re-registering a name overwrites (latest wins); thread-safe.
void register_model_fingerprint(std::string_view name, std::uint64_t fp);

/// The registered fingerprint for `name`, or 0 when none (frozen
/// profiles and custom backends take the card/name-only path).
std::uint64_t registered_model_fingerprint(std::string_view name);

class EvalCellCache final : public eval::CellCache {
 public:
  /// `sweep_key` scopes every cell to one (pipeline, record set,
  /// harness config) combination — see sweep_key().
  EvalCellCache(std::string dir, std::uint64_t sweep_key);

  /// Delta-eval variant: `group_base` (from group_base_key()) scopes
  /// per-group tallies.  Unlike the sweep key it deliberately excludes
  /// the benchmark/store checkpoint keys and the swept subset — a
  /// group's own content and retrieval-hit fingerprints carry that
  /// dependence, which is exactly what lets unchanged groups hit
  /// across corpus revisions that would flip the sweep key.
  EvalCellCache(std::string dir, std::uint64_t sweep_key,
                std::uint64_t group_base);

  /// The sweep-scope key for evaluating `records` against `ctx`'s
  /// stores, RAG config, judge and simulation coefficients.
  static std::uint64_t sweep_key(const PipelineContext& ctx,
                                 const std::vector<qgen::McqRecord>& records);

  /// The revision-stable scope for group tallies: format version, code
  /// fingerprint, KB config, RAG config, judge and simulation
  /// coefficients — everything that affects a group's counts *except*
  /// its content and hits (the harness fingerprints those per group).
  static std::uint64_t group_base_key(const PipelineContext& ctx);

  std::optional<eval::Accuracy> load(std::string_view model,
                                     rag::Condition condition,
                                     std::size_t expected_total) const override;

  void store(std::string_view model, rag::Condition condition,
             const eval::Accuracy& accuracy) const override;

  bool supports_groups() const override { return group_base_ != 0; }
  std::optional<eval::Accuracy> load_group(
      std::string_view model, rag::Condition condition,
      std::uint64_t group_fp, std::size_t expected_total) const override;
  void store_group(std::string_view model, rag::Condition condition,
                   std::uint64_t group_fp,
                   const eval::Accuracy& accuracy) const override;

  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t stores = 0;
    std::size_t group_hits = 0;
    std::size_t group_misses = 0;
    std::size_t group_stores = 0;
    /// Blobs that loaded but failed to decode (counted as misses).
    std::size_t corrupt_blobs = 0;
  };
  Stats stats() const {
    return {hits_.load(),        misses_.load(),       stores_.load(),
            group_hits_.load(),  group_misses_.load(), group_stores_.load(),
            cache_.stats().corrupt_blobs};
  }

 private:
  std::uint64_t cell_key(std::string_view model,
                         rag::Condition condition) const;
  std::uint64_t group_key(std::string_view model, rag::Condition condition,
                          std::uint64_t group_fp) const;

  ArtifactCache cache_;
  std::uint64_t sweep_key_;
  std::uint64_t group_base_ = 0;  ///< 0 disables the group tier
  mutable std::atomic<std::size_t> hits_{0};
  mutable std::atomic<std::size_t> misses_{0};
  mutable std::atomic<std::size_t> stores_{0};
  mutable std::atomic<std::size_t> group_hits_{0};
  mutable std::atomic<std::size_t> group_misses_{0};
  mutable std::atomic<std::size_t> group_stores_{0};
};

/// The delta-eval partition of `records` for sweeping against `ctx`:
/// one group per source document (records grouped by the chunk's
/// doc_id, first-appearance order), with records whose chunk_id is not
/// in ctx.chunks() — exam items — as singleton groups.  Each group's
/// content_fp covers its records' serialized bytes.
std::vector<eval::RecordGroup> record_groups(
    const PipelineContext& ctx, const std::vector<qgen::McqRecord>& records);

}  // namespace mcqa::core
