#include "core/checkpoint.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "core/pipeline.hpp"
#include "util/hash.hpp"

namespace mcqa::core {

namespace {

// --- primitive codecs (index_io idiom) ---------------------------------------

void put_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

std::uint64_t take_u64(std::string_view blob, std::size_t& pos) {
  if (pos + 8 > blob.size()) {
    throw std::runtime_error("checkpoint load: truncated integer");
  }
  std::uint64_t v = 0;
  std::memcpy(&v, blob.data() + pos, 8);
  pos += 8;
  return v;
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

std::int64_t take_i64(std::string_view blob, std::size_t& pos) {
  return static_cast<std::int64_t>(take_u64(blob, pos));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, 8);
  put_u64(out, bits);
}

double take_f64(std::string_view blob, std::size_t& pos) {
  const std::uint64_t bits = take_u64(blob, pos);
  double v = 0.0;
  std::memcpy(&v, &bits, 8);
  return v;
}

void put_str(std::string& out, std::string_view s) {
  put_u64(out, s.size());
  out.append(s);
}

std::string take_str(std::string_view blob, std::size_t& pos) {
  const std::size_t n = take_u64(blob, pos);
  if (pos + n > blob.size()) {
    throw std::runtime_error("checkpoint load: truncated string");
  }
  std::string s(blob.substr(pos, n));
  pos += n;
  return s;
}

/// Element count, bounded by the bytes actually left in the blob so a
/// corrupt header raises a load error instead of a giant reserve().
std::size_t take_count(std::string_view blob, std::size_t& pos) {
  const std::size_t n = take_u64(blob, pos);
  if (n > blob.size() - pos) {
    throw std::runtime_error("checkpoint load: implausible count");
  }
  return n;
}

void put_str_vec(std::string& out, const std::vector<std::string>& v) {
  put_u64(out, v.size());
  for (const auto& s : v) put_str(out, s);
}

std::vector<std::string> take_str_vec(std::string_view blob,
                                      std::size_t& pos) {
  const std::size_t n = take_count(blob, pos);
  std::vector<std::string> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(take_str(blob, pos));
  return v;
}

void expect_magic(std::string_view blob, std::size_t& pos,
                  std::string_view magic) {
  if (blob.substr(0, magic.size()) != magic) {
    throw std::runtime_error("checkpoint load: bad magic");
  }
  pos = magic.size();
}

// --- config fingerprints -----------------------------------------------------

std::uint64_t hash_f64(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, 8);
  return util::hash_combine(h, util::fnv1a64(bits));
}

std::uint64_t hash_u64(std::uint64_t h, std::uint64_t v) {
  return util::hash_combine(h, util::fnv1a64(v));
}

}  // namespace

std::uint64_t code_fingerprint() {
  static const std::uint64_t fp = [] {
    std::uint64_t h = util::fnv1a64(kCheckpointFormatVersion);
    char path[4096];
    const ssize_t n = ::readlink("/proc/self/exe", path, sizeof(path) - 1);
    if (n <= 0) return h;
    path[n] = '\0';
    h = util::hash_combine(h, util::fnv1a64(std::string_view(path)));
    struct stat st{};
    if (::stat(path, &st) == 0) {
      h = hash_u64(h, static_cast<std::uint64_t>(st.st_size));
      h = hash_u64(h, static_cast<std::uint64_t>(st.st_mtim.tv_sec));
      h = hash_u64(h, static_cast<std::uint64_t>(st.st_mtim.tv_nsec));
    }
    return h;
  }();
  return fp;
}

CheckpointKeys derive_checkpoint_keys(const PipelineConfig& config,
                                      std::size_t embed_dim) {
  std::uint64_t root = util::fnv1a64(kCheckpointFormatVersion);
  root = hash_u64(root, code_fingerprint());

  // Knowledge base + corpus: every generation knob upstream of parsing.
  std::uint64_t kb = util::fnv1a64("kb");
  kb = hash_u64(kb, config.kb.facts_per_topic);
  kb = hash_u64(kb, config.kb.seed);
  kb = hash_f64(kb, config.kb.math_fraction);

  std::uint64_t corpus = util::hash_combine(util::fnv1a64("corpus"), kb);
  corpus = hash_f64(corpus, config.corpus.scale);
  corpus = hash_u64(corpus, config.corpus.seed);
  corpus = hash_f64(corpus, config.corpus.paper_gen.facts_per_paper);
  corpus = hash_f64(corpus, config.corpus.paper_gen.facts_per_abstract);
  corpus = hash_f64(corpus, config.corpus.paper_gen.filler_ratio);
  corpus = hash_f64(corpus, config.corpus.moderate_fraction);
  corpus = hash_f64(corpus, config.corpus.hard_fraction);
  corpus = hash_f64(corpus, config.corpus.markdown_fraction);
  corpus = hash_f64(corpus, config.corpus.text_fraction);
  // Corpus edits change document bytes, so they must retire every
  // aggregate downstream of parsing.  Folded only when active so that
  // default-configured builds keep their pre-edit keys.
  if (config.corpus.edits.count > 0) {
    corpus = hash_u64(corpus, config.corpus.edits.seed);
    corpus = hash_u64(corpus, config.corpus.edits.count);
    corpus = hash_u64(corpus, config.corpus.edits.revision);
  }
  corpus = util::hash_combine(root, corpus);

  // Embedder identity: the encoder family is fixed in code (covered by
  // the code fingerprint); the dimension pins the vector shape.
  std::uint64_t embed = util::fnv1a64("hashed-ngram-biomed");
  embed = hash_u64(embed, embed_dim);

  CheckpointKeys keys;
  std::uint64_t parsed = util::hash_combine(util::fnv1a64("parsed"), corpus);
  parsed = hash_f64(parsed, config.parser.route_threshold);
  parsed = hash_f64(parsed, config.parser.accept_threshold);
  keys.parsed = parsed;

  std::uint64_t chunks =
      util::hash_combine(util::fnv1a64("chunks"), keys.parsed);
  chunks = hash_u64(chunks, config.chunker.target_words);
  chunks = hash_u64(chunks, config.chunker.max_words);
  chunks = hash_u64(chunks, config.chunker.min_words);
  chunks = hash_f64(chunks, config.chunker.drift_threshold);
  chunks = hash_u64(chunks, config.chunker.overlap_words);
  chunks = hash_u64(chunks, config.semantic_chunking ? 1 : 0);
  chunks = util::hash_combine(chunks, embed);
  keys.chunks = chunks;

  std::uint64_t store =
      util::hash_combine(util::fnv1a64("chunk-store"), keys.chunks);
  store = hash_u64(store, static_cast<std::uint64_t>(config.index_kind));
  store = util::hash_combine(store, embed);
  keys.chunk_store = store;

  std::uint64_t bench =
      util::hash_combine(util::fnv1a64("benchmark"), keys.chunks);
  bench = hash_f64(bench, config.builder.quality_threshold);
  bench = hash_f64(bench, config.builder.relevance_threshold);
  bench = hash_f64(bench, config.builder.residual_ambiguity);
  bench = util::hash_combine(bench, kb);  // teacher reads the KB directly
  keys.benchmark = bench;

  for (int m = 0; m < trace::kTraceModeCount; ++m) {
    std::uint64_t tr =
        util::hash_combine(util::fnv1a64("traces"), keys.benchmark);
    tr = hash_u64(tr, config.tracegen.seed);
    tr = hash_u64(tr, static_cast<std::uint64_t>(m));
    keys.traces[static_cast<std::size_t>(m)] = tr;

    std::uint64_t ts = util::hash_combine(util::fnv1a64("trace-store"), tr);
    ts = hash_u64(ts, static_cast<std::uint64_t>(config.index_kind));
    ts = util::hash_combine(ts, embed);
    keys.trace_stores[static_cast<std::size_t>(m)] = ts;
  }
  return keys;
}

// --- per-document artifact DAG -----------------------------------------------

std::uint64_t doc_config_fingerprint(const PipelineConfig& config,
                                     std::size_t embed_dim) {
  std::uint64_t h = util::fnv1a64("doc-config");
  h = hash_u64(h, kCheckpointFormatVersion);
  h = hash_u64(h, code_fingerprint());

  // The teacher (question generation + trace grading) reads the KB.
  h = hash_u64(h, config.kb.facts_per_topic);
  h = hash_u64(h, config.kb.seed);
  h = hash_f64(h, config.kb.math_fraction);

  h = hash_f64(h, config.parser.route_threshold);
  h = hash_f64(h, config.parser.accept_threshold);

  h = hash_u64(h, config.chunker.target_words);
  h = hash_u64(h, config.chunker.max_words);
  h = hash_u64(h, config.chunker.min_words);
  h = hash_f64(h, config.chunker.drift_threshold);
  h = hash_u64(h, config.chunker.overlap_words);
  h = hash_u64(h, config.semantic_chunking ? 1 : 0);
  h = util::hash_combine(h, util::fnv1a64("hashed-ngram-biomed"));
  h = hash_u64(h, embed_dim);

  h = hash_f64(h, config.builder.quality_threshold);
  h = hash_f64(h, config.builder.relevance_threshold);
  h = hash_f64(h, config.builder.residual_ambiguity);

  h = hash_u64(h, config.tracegen.seed);
  return h;
}

std::vector<std::uint64_t> derive_doc_keys(
    const PipelineConfig& config, const corpus::SyntheticCorpus& corpus,
    std::size_t embed_dim) {
  const std::uint64_t cfg = doc_config_fingerprint(config, embed_dim);
  std::vector<std::uint64_t> keys;
  keys.reserve(corpus.documents.size());
  for (const auto& doc : corpus.documents) {
    std::uint64_t h = util::hash_combine(util::fnv1a64("docart"), cfg);
    h = util::hash_combine(h, util::fnv1a64(doc.doc_id));
    h = hash_u64(h, util::fnv1a64(doc.bytes));
    keys.push_back(h);
  }
  return keys;
}

std::uint64_t derive_manifest_key(const PipelineConfig& config,
                                  std::size_t embed_dim) {
  std::uint64_t h = util::hash_combine(
      util::fnv1a64("manifest"), doc_config_fingerprint(config, embed_dim));
  h = hash_u64(h, static_cast<std::uint64_t>(config.index_kind));
  // The corpus *family*: generation knobs minus the edit fields, so
  // successive revisions of one corpus share the manifest slot.
  h = hash_f64(h, config.corpus.scale);
  h = hash_u64(h, config.corpus.seed);
  h = hash_f64(h, config.corpus.paper_gen.facts_per_paper);
  h = hash_f64(h, config.corpus.paper_gen.facts_per_abstract);
  h = hash_f64(h, config.corpus.paper_gen.filler_ratio);
  h = hash_f64(h, config.corpus.moderate_fraction);
  h = hash_f64(h, config.corpus.hard_fraction);
  h = hash_f64(h, config.corpus.markdown_fraction);
  h = hash_f64(h, config.corpus.text_fraction);
  return h;
}

// --- ArtifactCache -----------------------------------------------------------

ArtifactCache::ArtifactCache(std::string dir) : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

std::string ArtifactCache::path_for(std::string_view name,
                                    std::uint64_t key) const {
  return dir_ + "/" + std::string(name) + "-" + util::hex_digest(key, 16) +
         ".ckpt";
}

std::optional<std::string> ArtifactCache::load(std::string_view name,
                                               std::uint64_t key) const {
  // Sized bulk read: the per-doc restore pass loads hundreds of blobs
  // per run, and a byte-at-a-time istreambuf read dominates it.
  std::ifstream in(path_for(name, key),
                   std::ios::binary | std::ios::ate);
  if (!in) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const std::streamoff size = in.tellg();
  if (size < 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  std::string blob(static_cast<std::size_t>(size), '\0');
  in.seekg(0);
  in.read(blob.data(), size);
  if (!in.good()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(blob.size(), std::memory_order_relaxed);
  return blob;
}

void ArtifactCache::note_corrupt() const {
  corrupt_.fetch_add(1, std::memory_order_relaxed);
  hits_.fetch_sub(1, std::memory_order_relaxed);
  misses_.fetch_add(1, std::memory_order_relaxed);
}

ArtifactCache::Stats ArtifactCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  s.corrupt_blobs = corrupt_.load(std::memory_order_relaxed);
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  return s;
}

void ArtifactCache::store(std::string_view name, std::uint64_t key,
                          std::string_view blob) const {
  const std::string final_path = path_for(name, key);
  const std::string tmp_path =
      final_path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return;  // cache is best-effort; a miss next time is safe
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    if (!out.good()) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp_path, ec);
      return;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    std::filesystem::remove(tmp_path, ec);
    return;
  }
  stores_.fetch_add(1, std::memory_order_relaxed);
  bytes_written_.fetch_add(blob.size(), std::memory_order_relaxed);
}

std::string trace_mode_blob_name(std::string_view prefix,
                                 trace::TraceMode mode) {
  std::string name(prefix);
  name += '-';
  name += trace::trace_mode_name(mode);
  return name;
}

// --- parsed documents --------------------------------------------------------

std::string serialize_parsed(const ParsedArtifact& a) {
  std::string out = "ckparse1\n";
  put_u64(out, a.total_documents);
  put_u64(out, a.parse_failures);
  put_u64(out, a.routing.total);
  put_u64(out, a.routing.fast_routed);
  put_u64(out, a.routing.escalated);
  put_u64(out, a.routing.accurate_routed);
  put_u64(out, a.routing.failed);
  put_u64(out, a.routing.non_spdf);
  put_f64(out, a.routing.compute_cost);
  put_f64(out, a.routing.always_accurate_cost);
  put_u64(out, a.documents.size());
  for (const auto& d : a.documents) {
    put_str(out, d.doc_id);
    put_str(out, d.title);
    put_str(out, d.kind);
    put_u64(out, d.sections.size());
    for (const auto& s : d.sections) {
      put_str(out, s.heading);
      put_str(out, s.text);
    }
    put_str(out, d.parser_used);
    put_f64(out, d.quality);
    put_u64(out, d.pages);
  }
  return out;
}

ParsedArtifact deserialize_parsed(std::string_view blob) {
  std::size_t pos = 0;
  expect_magic(blob, pos, "ckparse1\n");
  ParsedArtifact a;
  a.total_documents = take_u64(blob, pos);
  a.parse_failures = take_u64(blob, pos);
  a.routing.total = take_u64(blob, pos);
  a.routing.fast_routed = take_u64(blob, pos);
  a.routing.escalated = take_u64(blob, pos);
  a.routing.accurate_routed = take_u64(blob, pos);
  a.routing.failed = take_u64(blob, pos);
  a.routing.non_spdf = take_u64(blob, pos);
  a.routing.compute_cost = take_f64(blob, pos);
  a.routing.always_accurate_cost = take_f64(blob, pos);
  const std::size_t n = take_count(blob, pos);
  a.documents.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    parse::ParsedDocument d;
    d.doc_id = take_str(blob, pos);
    d.title = take_str(blob, pos);
    d.kind = take_str(blob, pos);
    const std::size_t sections = take_count(blob, pos);
    d.sections.reserve(sections);
    for (std::size_t s = 0; s < sections; ++s) {
      parse::ParsedSection sec;
      sec.heading = take_str(blob, pos);
      sec.text = take_str(blob, pos);
      d.sections.push_back(std::move(sec));
    }
    d.parser_used = take_str(blob, pos);
    d.quality = take_f64(blob, pos);
    d.pages = take_u64(blob, pos);
    a.documents.push_back(std::move(d));
  }
  return a;
}

// --- chunks ------------------------------------------------------------------

std::string serialize_chunks(const std::vector<chunk::Chunk>& chunks) {
  std::string out = "ckchunk1\n";
  put_u64(out, chunks.size());
  for (const auto& c : chunks) {
    put_str(out, c.chunk_id);
    put_str(out, c.doc_id);
    put_str(out, c.path);
    put_str(out, c.text);
    put_u64(out, c.index);
    put_u64(out, c.word_count);
    put_u64(out, c.sentence_count);
  }
  return out;
}

std::vector<chunk::Chunk> deserialize_chunks(std::string_view blob) {
  std::size_t pos = 0;
  expect_magic(blob, pos, "ckchunk1\n");
  const std::size_t n = take_count(blob, pos);
  std::vector<chunk::Chunk> chunks;
  chunks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    chunk::Chunk c;
    c.chunk_id = take_str(blob, pos);
    c.doc_id = take_str(blob, pos);
    c.path = take_str(blob, pos);
    c.text = take_str(blob, pos);
    c.index = take_u64(blob, pos);
    c.word_count = take_u64(blob, pos);
    c.sentence_count = take_u64(blob, pos);
    chunks.push_back(std::move(c));
  }
  return chunks;
}

// --- benchmark ---------------------------------------------------------------

namespace {

void put_record(std::string& out, const qgen::McqRecord& r) {
  put_str(out, r.question);
  put_str(out, r.answer);
  put_str(out, r.text);
  put_str(out, r.type);
  put_str(out, r.chunk_id);
  put_str(out, r.cleaning_version);
  put_str(out, r.path);
  put_f64(out, r.relevance_score);
  put_str(out, r.relevance_type);
  put_str(out, r.relevance_reasoning);
  put_f64(out, r.quality_score);
  put_str(out, r.quality_critique);
  put_str(out, r.quality_raw_output);
  put_str(out, r.record_id);
  put_str(out, r.stem);
  put_str_vec(out, r.options);
  put_i64(out, r.correct_index);
  put_u64(out, r.fact);
  put_u64(out, r.math ? 1 : 0);
  put_f64(out, r.fact_importance);
  put_str(out, r.key_principle);
  put_f64(out, r.ambiguity);
  put_u64(out, r.exam_item ? 1 : 0);
  put_str(out, r.sub_domain);
}

qgen::McqRecord take_record(std::string_view blob, std::size_t& pos) {
  qgen::McqRecord r;
  r.question = take_str(blob, pos);
  r.answer = take_str(blob, pos);
  r.text = take_str(blob, pos);
  r.type = take_str(blob, pos);
  r.chunk_id = take_str(blob, pos);
  r.cleaning_version = take_str(blob, pos);
  r.path = take_str(blob, pos);
  r.relevance_score = take_f64(blob, pos);
  r.relevance_type = take_str(blob, pos);
  r.relevance_reasoning = take_str(blob, pos);
  r.quality_score = take_f64(blob, pos);
  r.quality_critique = take_str(blob, pos);
  r.quality_raw_output = take_str(blob, pos);
  r.record_id = take_str(blob, pos);
  r.stem = take_str(blob, pos);
  r.options = take_str_vec(blob, pos);
  r.correct_index = static_cast<int>(take_i64(blob, pos));
  r.fact = static_cast<corpus::FactId>(take_u64(blob, pos));
  r.math = take_u64(blob, pos) != 0;
  r.fact_importance = take_f64(blob, pos);
  r.key_principle = take_str(blob, pos);
  r.ambiguity = take_f64(blob, pos);
  r.exam_item = take_u64(blob, pos) != 0;
  r.sub_domain = take_str(blob, pos);
  return r;
}

}  // namespace

std::string serialize_benchmark(const BenchmarkArtifact& a) {
  std::string out = "ckbench1\n";
  put_u64(out, a.funnel.chunks);
  put_u64(out, a.funnel.candidates);
  put_u64(out, a.funnel.rejected_no_fact);
  put_u64(out, a.funnel.rejected_quality);
  put_u64(out, a.funnel.rejected_relevance);
  put_u64(out, a.funnel.accepted);
  put_u64(out, a.records.size());
  for (const auto& r : a.records) put_record(out, r);
  return out;
}

BenchmarkArtifact deserialize_benchmark(std::string_view blob) {
  std::size_t pos = 0;
  expect_magic(blob, pos, "ckbench1\n");
  BenchmarkArtifact a;
  a.funnel.chunks = take_u64(blob, pos);
  a.funnel.candidates = take_u64(blob, pos);
  a.funnel.rejected_no_fact = take_u64(blob, pos);
  a.funnel.rejected_quality = take_u64(blob, pos);
  a.funnel.rejected_relevance = take_u64(blob, pos);
  a.funnel.accepted = take_u64(blob, pos);
  const std::size_t n = take_count(blob, pos);
  a.records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.records.push_back(take_record(blob, pos));
  }
  return a;
}

// --- traces ------------------------------------------------------------------

namespace {

void put_trace(std::string& out, const trace::TraceRecord& t) {
  put_str(out, t.trace_id);
  put_str(out, t.question);
  put_str(out, t.context);
  put_str_vec(out, t.options);
  put_i64(out, t.correct_answer_index);
  put_str(out, t.correct_answer);
  put_u64(out, static_cast<std::uint64_t>(t.mode));
  put_str_vec(out, t.thought_process);
  put_str(out, t.scientific_conclusion);
  put_str(out, t.key_principle);
  put_str_vec(out, t.dismissed_options);
  put_str(out, t.quick_elimination_reasoning);
  put_str_vec(out, t.viable_options);
  put_str(out, t.focused_detailed_reasoning);
  put_str(out, t.quick_analysis);
  put_str(out, t.elimination);
  put_str(out, t.prediction.predicted_answer);
  put_str(out, t.prediction.prediction_reasoning);
  put_str(out, t.prediction.confidence_level);
  put_str(out, t.prediction.confidence_explanation);
  put_u64(out, t.has_grading ? 1 : 0);
  put_u64(out, t.grading.is_correct ? 1 : 0);
  put_f64(out, t.grading.confidence);
  put_str(out, t.grading.reasoning);
  put_i64(out, t.grading.extracted_option_number);
  put_i64(out, t.grading.correct_option_number);
  put_str(out, t.source_record_id);
}

trace::TraceRecord take_trace(std::string_view blob, std::size_t& pos) {
  trace::TraceRecord t;
  t.trace_id = take_str(blob, pos);
  t.question = take_str(blob, pos);
  t.context = take_str(blob, pos);
  t.options = take_str_vec(blob, pos);
  t.correct_answer_index = static_cast<int>(take_i64(blob, pos));
  t.correct_answer = take_str(blob, pos);
  t.mode = static_cast<trace::TraceMode>(take_u64(blob, pos));
  t.thought_process = take_str_vec(blob, pos);
  t.scientific_conclusion = take_str(blob, pos);
  t.key_principle = take_str(blob, pos);
  t.dismissed_options = take_str_vec(blob, pos);
  t.quick_elimination_reasoning = take_str(blob, pos);
  t.viable_options = take_str_vec(blob, pos);
  t.focused_detailed_reasoning = take_str(blob, pos);
  t.quick_analysis = take_str(blob, pos);
  t.elimination = take_str(blob, pos);
  t.prediction.predicted_answer = take_str(blob, pos);
  t.prediction.prediction_reasoning = take_str(blob, pos);
  t.prediction.confidence_level = take_str(blob, pos);
  t.prediction.confidence_explanation = take_str(blob, pos);
  t.has_grading = take_u64(blob, pos) != 0;
  t.grading.is_correct = take_u64(blob, pos) != 0;
  t.grading.confidence = take_f64(blob, pos);
  t.grading.reasoning = take_str(blob, pos);
  t.grading.extracted_option_number = static_cast<int>(take_i64(blob, pos));
  t.grading.correct_option_number = static_cast<int>(take_i64(blob, pos));
  t.source_record_id = take_str(blob, pos);
  return t;
}

}  // namespace

std::string serialize_traces(const TraceArtifact& a) {
  std::string out = "cktrace1\n";
  put_u64(out, a.grading.graded);
  put_u64(out, a.grading.correct);
  put_u64(out, a.traces.size());
  for (const auto& t : a.traces) put_trace(out, t);
  return out;
}

TraceArtifact deserialize_traces(std::string_view blob) {
  std::size_t pos = 0;
  expect_magic(blob, pos, "cktrace1\n");
  TraceArtifact a;
  a.grading.graded = take_u64(blob, pos);
  a.grading.correct = take_u64(blob, pos);
  const std::size_t n = take_count(blob, pos);
  a.traces.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.traces.push_back(take_trace(blob, pos));
  }
  return a;
}

// --- eval cells --------------------------------------------------------------

std::string serialize_eval_cell(const EvalCellArtifact& a) {
  std::string out = "ckcell1\n";
  put_str(out, a.model);
  put_i64(out, a.condition);
  put_u64(out, a.correct);
  put_u64(out, a.total);
  put_u64(out, a.unparseable);
  return out;
}

EvalCellArtifact deserialize_eval_cell(std::string_view blob) {
  std::size_t pos = 0;
  expect_magic(blob, pos, "ckcell1\n");
  EvalCellArtifact a;
  a.model = take_str(blob, pos);
  a.condition = take_i64(blob, pos);
  a.correct = take_u64(blob, pos);
  a.total = take_u64(blob, pos);
  a.unparseable = take_u64(blob, pos);
  return a;
}

// --- per-document artifacts --------------------------------------------------

namespace {

/// Raw fp32 bits — embeddings restore bit-exactly, never re-rounded.
void put_f32_vec(std::string& out, const embed::Vector& v) {
  put_u64(out, v.size());
  out.append(reinterpret_cast<const char*>(v.data()),
             v.size() * sizeof(float));
}

embed::Vector take_f32_vec(std::string_view blob, std::size_t& pos) {
  const std::size_t n = take_u64(blob, pos);
  if (n > (blob.size() - pos) / sizeof(float)) {
    throw std::runtime_error("checkpoint load: truncated vector");
  }
  embed::Vector v(n);
  std::memcpy(v.data(), blob.data() + pos, n * sizeof(float));
  pos += n * sizeof(float);
  return v;
}

void put_document(std::string& out, const parse::ParsedDocument& d) {
  put_str(out, d.doc_id);
  put_str(out, d.title);
  put_str(out, d.kind);
  put_u64(out, d.sections.size());
  for (const auto& s : d.sections) {
    put_str(out, s.heading);
    put_str(out, s.text);
  }
  put_str(out, d.parser_used);
  put_f64(out, d.quality);
  put_u64(out, d.pages);
}

parse::ParsedDocument take_document(std::string_view blob, std::size_t& pos) {
  parse::ParsedDocument d;
  d.doc_id = take_str(blob, pos);
  d.title = take_str(blob, pos);
  d.kind = take_str(blob, pos);
  const std::size_t sections = take_count(blob, pos);
  d.sections.reserve(sections);
  for (std::size_t s = 0; s < sections; ++s) {
    parse::ParsedSection sec;
    sec.heading = take_str(blob, pos);
    sec.text = take_str(blob, pos);
    d.sections.push_back(std::move(sec));
  }
  d.parser_used = take_str(blob, pos);
  d.quality = take_f64(blob, pos);
  d.pages = take_u64(blob, pos);
  return d;
}

void put_chunk(std::string& out, const chunk::Chunk& c) {
  put_str(out, c.chunk_id);
  put_str(out, c.doc_id);
  put_str(out, c.path);
  put_str(out, c.text);
  put_u64(out, c.index);
  put_u64(out, c.word_count);
  put_u64(out, c.sentence_count);
}

chunk::Chunk take_chunk(std::string_view blob, std::size_t& pos) {
  chunk::Chunk c;
  c.chunk_id = take_str(blob, pos);
  c.doc_id = take_str(blob, pos);
  c.path = take_str(blob, pos);
  c.text = take_str(blob, pos);
  c.index = take_u64(blob, pos);
  c.word_count = take_u64(blob, pos);
  c.sentence_count = take_u64(blob, pos);
  return c;
}

}  // namespace

std::string serialize_docart(const DocArtifact& a) {
  std::string out = "ckdoc1\n";
  put_u64(out, a.parsed_ok ? 1 : 0);
  put_str(out, a.route);
  put_f64(out, a.compute_cost);
  if (a.parsed_ok) put_document(out, a.document);
  put_u64(out, a.funnel_candidates);
  put_u64(out, a.funnel_rejected_no_fact);
  put_u64(out, a.funnel_rejected_quality);
  put_u64(out, a.funnel_rejected_relevance);
  put_u64(out, a.chunks.size());
  for (const auto& c : a.chunks) {
    put_chunk(out, c.chunk);
    put_f32_vec(out, c.vector);
    put_u64(out, c.has_record ? 1 : 0);
    if (!c.has_record) continue;
    put_record(out, c.record);
    for (const auto& lane : c.traces) {
      put_u64(out, lane.kept ? 1 : 0);
      if (!lane.kept) continue;
      put_trace(out, lane.trace);
      put_str(out, lane.retrieval);
      put_f32_vec(out, lane.vector);
    }
  }
  return out;
}

DocArtifact deserialize_docart(std::string_view blob) {
  std::size_t pos = 0;
  expect_magic(blob, pos, "ckdoc1\n");
  DocArtifact a;
  a.parsed_ok = take_u64(blob, pos) != 0;
  a.route = take_str(blob, pos);
  a.compute_cost = take_f64(blob, pos);
  if (a.parsed_ok) a.document = take_document(blob, pos);
  a.funnel_candidates = take_u64(blob, pos);
  a.funnel_rejected_no_fact = take_u64(blob, pos);
  a.funnel_rejected_quality = take_u64(blob, pos);
  a.funnel_rejected_relevance = take_u64(blob, pos);
  const std::size_t n = take_count(blob, pos);
  a.chunks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    DocChunkArtifact c;
    c.chunk = take_chunk(blob, pos);
    c.vector = take_f32_vec(blob, pos);
    c.has_record = take_u64(blob, pos) != 0;
    if (c.has_record) {
      c.record = take_record(blob, pos);
      for (auto& lane : c.traces) {
        lane.kept = take_u64(blob, pos) != 0;
        if (!lane.kept) continue;
        lane.trace = take_trace(blob, pos);
        lane.retrieval = take_str(blob, pos);
        lane.vector = take_f32_vec(blob, pos);
      }
    }
    a.chunks.push_back(std::move(c));
  }
  return a;
}

// --- manifest ----------------------------------------------------------------

std::string serialize_manifest(const ManifestArtifact& a) {
  std::string out = "ckmani1\n";
  put_u64(out, a.keys.parsed);
  put_u64(out, a.keys.chunks);
  put_u64(out, a.keys.chunk_store);
  put_u64(out, a.keys.benchmark);
  for (const std::uint64_t k : a.keys.traces) put_u64(out, k);
  for (const std::uint64_t k : a.keys.trace_stores) put_u64(out, k);
  put_u64(out, a.doc_ids.size());
  for (std::size_t i = 0; i < a.doc_ids.size(); ++i) {
    put_str(out, a.doc_ids[i]);
    put_u64(out, a.doc_keys[i]);
  }
  return out;
}

ManifestArtifact deserialize_manifest(std::string_view blob) {
  std::size_t pos = 0;
  expect_magic(blob, pos, "ckmani1\n");
  ManifestArtifact a;
  a.keys.parsed = take_u64(blob, pos);
  a.keys.chunks = take_u64(blob, pos);
  a.keys.chunk_store = take_u64(blob, pos);
  a.keys.benchmark = take_u64(blob, pos);
  for (auto& k : a.keys.traces) k = take_u64(blob, pos);
  for (auto& k : a.keys.trace_stores) k = take_u64(blob, pos);
  const std::size_t n = take_count(blob, pos);
  a.doc_ids.reserve(n);
  a.doc_keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.doc_ids.push_back(take_str(blob, pos));
    a.doc_keys.push_back(take_u64(blob, pos));
  }
  return a;
}

// --- cache maintenance -------------------------------------------------------

namespace {

constexpr std::string_view kCkptSuffix = ".ckpt";

bool is_hex16(std::string_view s) {
  if (s.size() != 16) return false;
  for (const char c : s) {
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return false;
  }
  return true;
}

/// "docart-0123456789abcdef.ckpt" -> "docart"; non-conforming names
/// group under "other".
std::string blob_prefix_of(std::string_view filename) {
  if (filename.size() <= kCkptSuffix.size() ||
      filename.substr(filename.size() - kCkptSuffix.size()) != kCkptSuffix) {
    return "other";
  }
  const std::string_view stem =
      filename.substr(0, filename.size() - kCkptSuffix.size());
  const std::size_t dash = stem.rfind('-');
  if (dash == std::string_view::npos || !is_hex16(stem.substr(dash + 1))) {
    return "other";
  }
  return std::string(stem.substr(0, dash));
}

/// Sorted `.ckpt`-suffixed filenames in `dir` (deterministic sweep
/// order regardless of directory enumeration order).
std::vector<std::string> sorted_ckpt_files(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return names;
  for (const auto& entry : it) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (name.size() > kCkptSuffix.size() &&
        name.compare(name.size() - kCkptSuffix.size(), kCkptSuffix.size(),
                     kCkptSuffix) == 0) {
      names.push_back(std::move(name));
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

/// Blob names the incremental builder owns; everything else in the
/// cache (eval cells, trained weights) has an independent lifecycle.
bool is_build_prefix(std::string_view prefix) {
  if (prefix == "manifest" || prefix == "docart" ||
      prefix == "chunk-store" || prefix == "parsed" || prefix == "chunks" ||
      prefix == "benchmark") {
    return true;
  }
  for (int m = 0; m < trace::kTraceModeCount; ++m) {
    const auto mode = static_cast<trace::TraceMode>(m);
    if (prefix == trace_mode_blob_name("traces", mode) ||
        prefix == trace_mode_blob_name("trace-store", mode)) {
      return true;
    }
  }
  return false;
}

bool is_eval_prefix(std::string_view prefix) {
  return prefix == "eval-cell" || prefix == "eval-group";
}

}  // namespace

CacheInventory inventory_cache(const std::string& dir) {
  CacheInventory inv;
  std::vector<CacheInventoryRow> rows;
  for (const std::string& name : sorted_ckpt_files(dir)) {
    const std::string prefix = blob_prefix_of(name);
    std::error_code ec;
    const std::uintmax_t bytes =
        std::filesystem::file_size(std::filesystem::path(dir) / name, ec);
    const std::uintmax_t sz = ec ? 0 : bytes;
    auto it = std::find_if(rows.begin(), rows.end(), [&](const auto& r) {
      return r.prefix == prefix;
    });
    if (it == rows.end()) {
      rows.push_back(CacheInventoryRow{prefix, 1, sz});
    } else {
      ++it->files;
      it->bytes += sz;
    }
    ++inv.total_files;
    inv.total_bytes += sz;
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.prefix < b.prefix; });
  inv.rows = std::move(rows);
  return inv;
}

PruneReport prune_cache(const std::string& dir,
                        const ManifestArtifact& manifest,
                        std::uint64_t manifest_key, bool prune_eval_cells) {
  const ArtifactCache cache(dir);
  std::vector<std::string> reachable;
  auto mark = [&](std::string_view name, std::uint64_t key) {
    reachable.push_back(std::filesystem::path(cache.path_for(name, key))
                            .filename()
                            .string());
  };
  mark("manifest", manifest_key);
  for (const std::uint64_t k : manifest.doc_keys) mark("docart", k);
  mark("chunk-store", manifest.keys.chunk_store);
  for (int m = 0; m < trace::kTraceModeCount; ++m) {
    const auto mode = static_cast<trace::TraceMode>(m);
    mark(trace_mode_blob_name("trace-store", mode),
         manifest.keys.trace_stores[static_cast<std::size_t>(m)]);
  }
  std::sort(reachable.begin(), reachable.end());

  PruneReport report;
  for (const std::string& name : sorted_ckpt_files(dir)) {
    ++report.scanned;
    const bool is_reachable =
        std::binary_search(reachable.begin(), reachable.end(), name);
    const std::string prefix = blob_prefix_of(name);
    const bool sweepable =
        !is_reachable && (is_build_prefix(prefix) ||
                          (prune_eval_cells && is_eval_prefix(prefix)));
    if (!sweepable) {
      ++report.kept;
      continue;
    }
    const std::filesystem::path path = std::filesystem::path(dir) / name;
    std::error_code ec;
    const std::uintmax_t bytes = std::filesystem::file_size(path, ec);
    std::error_code rm_ec;
    if (std::filesystem::remove(path, rm_ec) && !rm_ec) {
      ++report.removed;
      report.removed_bytes += ec ? 0 : bytes;
    } else {
      ++report.kept;
    }
  }
  return report;
}

}  // namespace mcqa::core
