#include "core/streaming.hpp"

#include <atomic>
#include <optional>

#include "parallel/pipeline.hpp"
#include "parallel/thread_pool.hpp"

namespace mcqa::core {

StreamingResult run_streaming_ingest(
    const std::vector<corpus::RawDocument>& documents,
    const embed::Embedder& embedder, const StreamingConfig& config) {
  StreamingResult result;

  // Stage 1: parse.  One-to-(zero-or-one): failures produce no output.
  const parse::AdaptiveParser parser(config.parser);
  std::atomic<std::size_t> failures{0};
  result.documents = parallel::run_stage<corpus::RawDocument,
                                         parse::ParsedDocument>(
      documents,
      [&](const corpus::RawDocument& raw) {
        std::vector<parse::ParsedDocument> out;
        parse::ParseOutcome outcome = parser.parse(raw.bytes);
        if (!outcome.ok) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return out;
        }
        if (outcome.document.doc_id.empty()) {
          outcome.document.doc_id = raw.doc_id;
        }
        out.push_back(std::move(outcome.document));
        return out;
      },
      config.parse_workers);
  result.parse_failures = failures.load();

  // Stage 2: chunk.  One-to-many, input-major order preserved.
  const chunk::SemanticChunker chunker(embedder, config.chunker);
  result.chunks = parallel::run_stage<parse::ParsedDocument, chunk::Chunk>(
      result.documents,
      [&](const parse::ParsedDocument& doc) { return chunker.chunk(doc); },
      config.chunk_workers);

  // Stage 3: embed.  One-to-one, via the bulk batch path (results are
  // bit-identical to per-chunk embed() at any worker count).
  {
    std::vector<std::string_view> texts;
    texts.reserve(result.chunks.size());
    for (const auto& c : result.chunks) texts.push_back(c.text);
    parallel::ThreadPool pool(config.embed_workers);
    result.embeddings = embedder.embed_batch(texts, pool);
  }

  return result;
}

}  // namespace mcqa::core
