#pragma once
// Provenance index: the paper's "provenance links to the source
// literature" made queryable.  Every benchmark question traces back
// through its chunk_id to the source chunk, the parsed document, the
// original raw bytes, and the ground-truth facts it realizes — the
// lineage the Fig. 2 schema promises (chunk_id + path + text).

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/pipeline.hpp"

namespace mcqa::core {

struct Lineage {
  const qgen::McqRecord* record = nullptr;
  const chunk::Chunk* chunk = nullptr;               ///< source chunk
  const parse::ParsedDocument* document = nullptr;   ///< parsed source doc
  const corpus::RawDocument* raw = nullptr;          ///< original bytes
  std::vector<corpus::FactId> chunk_facts;           ///< facts in the chunk
  /// Every other accepted question generated from the same document.
  std::vector<const qgen::McqRecord*> sibling_questions;
};

class ProvenanceIndex {
 public:
  explicit ProvenanceIndex(const PipelineContext& ctx);

  /// Full lineage for a benchmark record id; nullopt when unknown.
  std::optional<Lineage> lookup(std::string_view record_id) const;

  /// All questions whose source chunk contains `fact`.
  std::vector<const qgen::McqRecord*> questions_probing(
      corpus::FactId fact) const;

  /// All questions derived from one document.
  std::vector<const qgen::McqRecord*> questions_from_document(
      std::string_view doc_id) const;

  std::size_t size() const { return by_record_.size(); }

 private:
  const PipelineContext& ctx_;
  std::unordered_map<std::string, const qgen::McqRecord*> by_record_;
  std::unordered_map<std::string, const chunk::Chunk*> chunk_by_id_;
  std::unordered_map<std::string, const parse::ParsedDocument*> doc_by_id_;
  std::unordered_map<std::string, const corpus::RawDocument*> raw_by_id_;
  std::unordered_map<corpus::FactId, std::vector<const qgen::McqRecord*>>
      by_fact_;
  std::unordered_map<std::string, std::vector<const qgen::McqRecord*>>
      by_doc_;
};

}  // namespace mcqa::core
