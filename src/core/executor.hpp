#pragma once
// Overlapped pipeline executor — the two-plane design the serving
// engine established (see serve/engine.hpp):
//
//  * Execution plane (OverlappedBuilder): stages 1-5 of the build run
//    as one dataflow on a single ThreadPool.  Each document's
//    parse+chunk task spawns that document's per-chunk embed and MCQ
//    generation tasks the moment its chunks exist; every accepted
//    record immediately spawns its three trace-mode tasks
//    (generate + grade + retrieval-text embed, fused), so the
//    detailed/focused/efficient lanes run concurrently instead of
//    sequentially.  All results land in per-item slots and are merged
//    in (document, chunk, mode) order afterwards, which makes every
//    artifact byte-identical to the staged build at any thread count.
//
//  * Measurement plane (ScheduleModel + simulated_makespan): a
//    deterministic virtual-time list-schedule simulation over the real
//    task DAG of a built pipeline, with per-task costs derived from
//    real artifact sizes plus id-hashed jitter.  Staged and overlapped
//    schedules share one cost model; the speedup reported by
//    bench_pipeline_e2e is therefore purely structural — barriers and
//    serial segments (grade_all loops, retrieval-text extraction,
//    store inserts, index builds) versus dataflow overlap — and
//    reproducible on any host, including single-core CI.

#include <array>
#include <cstdint>
#include <vector>

#include "core/pipeline.hpp"

namespace mcqa::parallel {
class ThreadPool;
}

namespace mcqa::core {

class ArtifactCache;
struct DocArtifact;

/// Runs stages 1-5 (parse .. trace stores) for a PipelineContext whose
/// corpus and embedder are already in place.  Fills the same fields and
/// stats the staged build fills.
class OverlappedBuilder {
 public:
  explicit OverlappedBuilder(PipelineContext& ctx) : ctx_(ctx) {}

  void run(parallel::ThreadPool& pool);

  /// Incremental build against a per-document artifact cache (DESIGN.md
  /// §17).  Restores every document whose artifact key still matches,
  /// recomputes only the dirty subtrees through the same dataflow tree
  /// run() uses, rebuilds the four stores (delta-aware for IVF-PQ),
  /// and rewrites the manifest.  Artifacts are byte-identical to a
  /// cold run() at any thread count: restored slots hold exactly the
  /// bytes the dataflow would have produced, and the merge is
  /// index-ordered either way.  Fills stats.doc_artifacts_*.
  void run_incremental(parallel::ThreadPool& pool, const ArtifactCache& cache);

 private:
  struct TraceSlot;
  struct DocSlots;
  struct StoreRows;

  /// Run the per-document dataflow tree into `slots`; when `dirty` is
  /// non-null only the flagged documents are (re)computed.
  void build_slots(parallel::ThreadPool& pool, std::vector<DocSlots>& slots,
                   const std::vector<char>* dirty);
  /// Merge `slots` into the context in (document, chunk, mode) order and
  /// return the store-ready rows.  Consumes the slots' payloads.
  StoreRows merge_slots(std::vector<DocSlots>& slots);
  /// Create + build the four stores from merged rows (cold path).
  void finish_stores(parallel::ThreadPool& pool, StoreRows&& rows);

  static DocArtifact to_artifact(const DocSlots& slot);
  static void fill_slot(DocSlots& slot, DocArtifact&& artifact);

  PipelineContext& ctx_;
};

// --- virtual-time schedule simulation ----------------------------------------

/// The build DAG of a finished pipeline, with per-task costs in
/// abstract work units (derived from document bytes, chunk words and
/// question sizes, jittered by an fnv1a hash of each item's index so
/// schedules exhibit realistic heterogeneity).  No wall-clock anywhere:
/// two runs over the same context produce identical models.
struct ScheduleModel {
  struct Doc {
    double parse = 0.0;
    double chunk = 0.0;                ///< zero when the parse failed
    std::vector<std::uint32_t> chunks; ///< indexes into `chunks`
  };
  struct ChunkWork {
    double embed = 0.0;
    double qgen = 0.0;
    std::uint32_t doc = 0;
    bool accepted = false;
  };
  struct RecordWork {
    std::array<double, trace::kTraceModeCount> generate{};
    std::uint32_t chunk = 0;
  };

  std::vector<Doc> docs;
  std::vector<ChunkWork> chunks;
  std::vector<RecordWork> records;

  /// Serial-segment cost knobs (fractions of the work they follow).
  double grade_fraction = 0.45;    ///< grade_trace vs generate cost
  double extract_fraction = 0.35;  ///< retrieval_text() vs generate cost
  double insert_cost = 0.02;       ///< per store row (serial add path)
  double build_cost = 0.012;       ///< per row, index finalization
  double merge_cost = 0.006;       ///< per item, stage merge loops
};

/// Derive the schedule model from a built pipeline.
ScheduleModel schedule_model_from(const PipelineContext& ctx);

/// Deterministic greedy list-schedule makespan of the build DAG under
/// `mode` with `workers` identical workers (virtual time units).
/// Staged inserts stage barriers and runs the three trace lanes
/// sequentially with serial grading/extraction segments, mirroring
/// build_staged; overlapped keeps only true data dependencies,
/// mirroring OverlappedBuilder.
double simulated_makespan(const ScheduleModel& model, ExecutionMode mode,
                          std::size_t workers);

// --- evaluation-grid schedule simulation -------------------------------------

/// How the models x conditions accuracy grid is scheduled.
///
///   kPerCell    — the seed harness: cells run strictly sequentially
///                 (the serial double loop), each cell re-running its
///                 own retrieval fan before its answer fan.
///   kSharedPlan — the memoized engine: one retrieval fan per
///                 condition, shared by every model's cells, which all
///                 fan out on one pool as soon as the plan exists.
enum class EvalGridMode { kPerCell, kSharedPlan };

/// Cost model of one sweep, in the same abstract work units as
/// ScheduleModel: per-record retrieval costs per retrieval-active
/// condition (from the real query texts) and per-record answer+grade
/// costs (from the real question sizes), jittered by stable id hashes.
/// Both grid modes draw identical per-task costs, so the makespan gap
/// is purely structural: retrieval repeated per cell versus shared.
struct EvalGridModel {
  std::size_t model_count = 0;
  /// [condition][record] retrieval cost; inner vector empty for
  /// conditions that do not retrieve (baseline / absent store).
  std::vector<std::vector<double>> retrieval;
  /// [record] answer+grade base cost; each (model, condition) cell
  /// applies its own jitter on top.
  std::vector<double> answer;
  /// Retrieval work per condition relative to one model's answer work
  /// (embedding the query + scanning the store dominates one simulated
  /// answer); eval_grid_model_from normalizes retrieval costs to it.
  double retrieval_answer_ratio = 1.2;
  double merge_cost = 0.006;  ///< per item, slot-merge loops
};

/// Derive the grid cost model for sweeping `records` with `model_count`
/// students under `conditions`, against `ctx`'s stores.
EvalGridModel eval_grid_model_from(
    const PipelineContext& ctx, const std::vector<qgen::McqRecord>& records,
    std::size_t model_count, const std::vector<rag::Condition>& conditions);

/// Deterministic greedy list-schedule makespan of one sweep under
/// `mode` with `workers` identical workers (virtual time units).
double simulated_grid_makespan(const EvalGridModel& model, EvalGridMode mode,
                               std::size_t workers);

}  // namespace mcqa::core
