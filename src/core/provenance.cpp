#include "core/provenance.hpp"

namespace mcqa::core {

ProvenanceIndex::ProvenanceIndex(const PipelineContext& ctx) : ctx_(ctx) {
  for (const auto& c : ctx.chunks()) {
    chunk_by_id_.emplace(c.chunk_id, &c);
  }
  for (const auto& d : ctx.parsed()) {
    doc_by_id_.emplace(d.doc_id, &d);
  }
  for (const auto& r : ctx.corpus().documents) {
    raw_by_id_.emplace(r.doc_id, &r);
  }
  for (const auto& record : ctx.benchmark()) {
    by_record_.emplace(record.record_id, &record);
    by_fact_[record.fact].push_back(&record);
    const auto chunk_it = chunk_by_id_.find(record.chunk_id);
    if (chunk_it != chunk_by_id_.end()) {
      by_doc_[chunk_it->second->doc_id].push_back(&record);
    }
  }
}

std::optional<Lineage> ProvenanceIndex::lookup(
    std::string_view record_id) const {
  const auto rec_it = by_record_.find(std::string(record_id));
  if (rec_it == by_record_.end()) return std::nullopt;

  Lineage lineage;
  lineage.record = rec_it->second;

  const auto chunk_it = chunk_by_id_.find(lineage.record->chunk_id);
  if (chunk_it != chunk_by_id_.end()) {
    lineage.chunk = chunk_it->second;
    lineage.chunk_facts = ctx_.matcher().match(lineage.chunk->text);

    const auto doc_it = doc_by_id_.find(lineage.chunk->doc_id);
    if (doc_it != doc_by_id_.end()) lineage.document = doc_it->second;
    const auto raw_it = raw_by_id_.find(lineage.chunk->doc_id);
    if (raw_it != raw_by_id_.end()) lineage.raw = raw_it->second;

    const auto siblings_it = by_doc_.find(lineage.chunk->doc_id);
    if (siblings_it != by_doc_.end()) {
      for (const auto* sibling : siblings_it->second) {
        if (sibling != lineage.record) {
          lineage.sibling_questions.push_back(sibling);
        }
      }
    }
  }
  return lineage;
}

std::vector<const qgen::McqRecord*> ProvenanceIndex::questions_probing(
    corpus::FactId fact) const {
  const auto it = by_fact_.find(fact);
  return it == by_fact_.end() ? std::vector<const qgen::McqRecord*>{}
                              : it->second;
}

std::vector<const qgen::McqRecord*> ProvenanceIndex::questions_from_document(
    std::string_view doc_id) const {
  const auto it = by_doc_.find(std::string(doc_id));
  return it == by_doc_.end() ? std::vector<const qgen::McqRecord*>{}
                             : it->second;
}

}  // namespace mcqa::core
