#pragma once
// Continuous benchmark expansion (paper §1: "This design enables
// continuous expansion of benchmarks as new publications appear,
// ensuring evaluations remain timely, reproducible, and extensible").
//
// An ExpansionBatch ingests newly arrived raw documents through the
// same parse -> chunk -> generate -> filter -> distill stages and emits
// *additional* records and traces that merge into an existing benchmark
// without disturbing prior ids (chunk ids are content-addressed, so
// re-ingesting an already-seen document is a detected no-op).

#include <array>
#include <unordered_set>
#include <vector>

#include "chunk/chunker.hpp"
#include "corpus/corpus_builder.hpp"
#include "embed/hashed_embedder.hpp"
#include "llm/teacher_model.hpp"
#include "parse/adaptive.hpp"
#include "qgen/benchmark_builder.hpp"
#include "trace/trace_generator.hpp"

namespace mcqa::core {

struct ExpansionConfig {
  parse::AdaptiveConfig parser;
  chunk::ChunkerConfig chunker;
  qgen::BuilderConfig builder;
  trace::TraceGenConfig tracegen;
  std::size_t threads = 0;
};

struct ExpansionResult {
  std::size_t documents_in = 0;
  std::size_t documents_parsed = 0;
  std::size_t documents_skipped = 0;  ///< already in the benchmark
  std::size_t new_chunks = 0;
  qgen::FunnelStats funnel;
  std::vector<qgen::McqRecord> new_records;
  /// New traces per mode, aligned with trace::TraceMode values.
  std::array<std::vector<trace::TraceRecord>, trace::kTraceModeCount>
      new_traces;
};

/// Process a batch of newly arrived documents against an existing
/// benchmark.  `existing_chunk_ids` identifies already-ingested content
/// (pass the chunk_ids of the current benchmark's chunks); records for
/// those chunks are not regenerated.
ExpansionResult expand_benchmark(
    const std::vector<corpus::RawDocument>& new_documents,
    const std::unordered_set<std::string>& existing_chunk_ids,
    const embed::Embedder& embedder, const llm::TeacherModel& teacher,
    const ExpansionConfig& config = {});

}  // namespace mcqa::core
