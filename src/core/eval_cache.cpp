#include "core/eval_cache.hpp"

#include <cstring>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "core/pipeline.hpp"
#include "llm/model_spec.hpp"
#include "llm/student_model.hpp"
#include "util/hash.hpp"

namespace mcqa::core {

namespace {

constexpr std::string_view kCellBlobName = "eval-cell";
constexpr std::string_view kGroupBlobName = "eval-group";

std::uint64_t hash_f64(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, 8);
  return util::hash_combine(h, util::fnv1a64(bits));
}

std::uint64_t hash_u64(std::uint64_t h, std::uint64_t v) {
  return util::hash_combine(h, util::fnv1a64(v));
}

std::uint64_t hash_str(std::uint64_t h, std::string_view s) {
  return util::hash_combine(h, util::fnv1a64(s));
}

struct FingerprintRegistry {
  std::mutex mu;
  std::unordered_map<std::string, std::uint64_t> by_name;
};

FingerprintRegistry& fingerprint_registry() {
  static FingerprintRegistry reg;
  return reg;
}

/// Fingerprint of one student: the spec pins the context window (which
/// changes assembled prompts) and the profile pins the behavioural
/// dials.  Trainable models registered via register_model_fingerprint
/// additionally fold in their (training config, training text)
/// fingerprint.  Unknown names (custom LanguageModel impls) fall back
/// to the name alone — still a stable key, just without profile
/// sensitivity.
std::uint64_t model_fingerprint(std::string_view name) {
  std::uint64_t h = util::fnv1a64(name);
  if (const std::uint64_t fp = registered_model_fingerprint(name); fp != 0) {
    return util::hash_combine(h, util::fnv1a64(fp));
  }
  try {
    const llm::ModelCard& card = llm::student_card(name);
    h = hash_str(h, card.spec.vendor);
    h = hash_f64(h, card.spec.params_billions);
    h = hash_u64(h, static_cast<std::uint64_t>(card.spec.release_year));
    h = hash_u64(h, card.spec.context_window);
    const llm::StudentProfile& p = card.profile;
    h = hash_f64(h, p.knowledge);
    h = hash_f64(h, p.extraction);
    h = hash_f64(h, p.elimination);
    h = hash_f64(h, p.chunk_distraction);
    h = hash_f64(h, p.trace_math_confusion);
    h = hash_f64(h, p.arithmetic);
    h = hash_f64(h, p.abstraction);
    h = hash_f64(h, p.transfer);
    h = hash_f64(h, p.format_reliability);
    h = hash_f64(h, p.trace_elimination_boost);
    h = hash_f64(h, p.exam_familiarity);
  } catch (const std::out_of_range&) {
  }
  return h;
}

}  // namespace

void register_model_fingerprint(std::string_view name, std::uint64_t fp) {
  FingerprintRegistry& reg = fingerprint_registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  reg.by_name[std::string(name)] = fp;
}

std::uint64_t registered_model_fingerprint(std::string_view name) {
  FingerprintRegistry& reg = fingerprint_registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  const auto it = reg.by_name.find(std::string(name));
  return it == reg.by_name.end() ? 0 : it->second;
}

EvalCellCache::EvalCellCache(std::string dir, std::uint64_t sweep_key)
    : cache_(std::move(dir)), sweep_key_(sweep_key) {}

EvalCellCache::EvalCellCache(std::string dir, std::uint64_t sweep_key,
                             std::uint64_t group_base)
    : cache_(std::move(dir)), sweep_key_(sweep_key), group_base_(group_base) {}

std::uint64_t EvalCellCache::sweep_key(
    const PipelineContext& ctx, const std::vector<qgen::McqRecord>& records) {
  const CheckpointKeys keys =
      derive_checkpoint_keys(ctx.config(), ctx.embedder().dim());

  std::uint64_t h = util::fnv1a64("eval-sweep");
  h = hash_u64(h, kCheckpointFormatVersion);
  h = hash_u64(h, code_fingerprint());

  // Upstream artifact identity: what is retrieved from, and what the
  // questions were built from.
  h = hash_u64(h, keys.benchmark);
  h = hash_u64(h, keys.chunk_store);
  for (const std::uint64_t ts : keys.trace_stores) h = hash_u64(h, ts);

  // The swept record *subset*: benches sweep the full benchmark, the
  // exam slices, or a smoke prefix — each must key separately.  Reuse
  // the benchmark codec as the canonical record serialization.
  BenchmarkArtifact subset;
  subset.records = records;
  h = hash_str(h, serialize_benchmark(subset));

  // Harness-side configuration: retrieval depth/budget, judge floor,
  // and the frozen simulation coefficients.
  const rag::RagConfig& rc = ctx.config().rag;
  h = hash_u64(h, rc.top_k_chunks);
  h = hash_u64(h, rc.top_k_traces);
  h = hash_u64(h, rc.reserve_tokens);
  h = hash_f64(h, eval::Judge().min_similarity());
  const llm::SimulationCoefficients& sim = ctx.config().sim;
  h = hash_f64(h, sim.importance_tilt);
  h = hash_f64(h, sim.importance_center);
  h = hash_f64(h, sim.saliency_floor);
  h = hash_f64(h, sim.recall_fidelity);
  h = hash_f64(h, sim.extract_fidelity);
  h = hash_f64(h, sim.worked_math_boost);
  h = hash_f64(h, sim.mislead_scale);
  return h;
}

std::uint64_t EvalCellCache::group_base_key(const PipelineContext& ctx) {
  // Deliberately excludes the benchmark/store checkpoint keys and the
  // swept subset: a group's content_fp pins its questions and the
  // harness's hits fingerprint pins everything it retrieves, so folding
  // whole-corpus identity here would only defeat cross-revision reuse.
  std::uint64_t h = util::fnv1a64("eval-group-base");
  h = hash_u64(h, kCheckpointFormatVersion);
  h = hash_u64(h, code_fingerprint());
  h = hash_u64(h, ctx.config().kb.facts_per_topic);
  h = hash_u64(h, ctx.config().kb.seed);
  h = hash_f64(h, ctx.config().kb.math_fraction);
  const rag::RagConfig& rc = ctx.config().rag;
  h = hash_u64(h, rc.top_k_chunks);
  h = hash_u64(h, rc.top_k_traces);
  h = hash_u64(h, rc.reserve_tokens);
  h = hash_f64(h, eval::Judge().min_similarity());
  const llm::SimulationCoefficients& sim = ctx.config().sim;
  h = hash_f64(h, sim.importance_tilt);
  h = hash_f64(h, sim.importance_center);
  h = hash_f64(h, sim.saliency_floor);
  h = hash_f64(h, sim.recall_fidelity);
  h = hash_f64(h, sim.extract_fidelity);
  h = hash_f64(h, sim.worked_math_boost);
  h = hash_f64(h, sim.mislead_scale);
  return h;
}

std::uint64_t EvalCellCache::cell_key(std::string_view model,
                                      rag::Condition condition) const {
  std::uint64_t h = util::hash_combine(util::fnv1a64("eval-cell"), sweep_key_);
  h = util::hash_combine(h, model_fingerprint(model));
  h = hash_u64(h, static_cast<std::uint64_t>(condition));
  return h;
}

std::optional<eval::Accuracy> EvalCellCache::load(
    std::string_view model, rag::Condition condition,
    std::size_t expected_total) const {
  const auto blob = cache_.load(kCellBlobName, cell_key(model, condition));
  if (blob.has_value()) {
    try {
      const EvalCellArtifact cell = deserialize_eval_cell(*blob);
      // All-or-nothing: the payload must agree with what the key
      // promised and with the sweep asking for it.
      if (cell.model == model &&
          cell.condition == static_cast<std::int64_t>(condition) &&
          cell.total == expected_total) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        eval::Accuracy acc;
        acc.correct = cell.correct;
        acc.total = cell.total;
        acc.unparseable = cell.unparseable;
        return acc;
      }
    } catch (const std::exception&) {
      // Corrupt blob: fall through to a miss and recompute.
      cache_.note_corrupt();
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void EvalCellCache::store(std::string_view model, rag::Condition condition,
                          const eval::Accuracy& accuracy) const {
  EvalCellArtifact cell;
  cell.model = std::string(model);
  cell.condition = static_cast<std::int64_t>(condition);
  cell.correct = accuracy.correct;
  cell.total = accuracy.total;
  cell.unparseable = accuracy.unparseable;
  cache_.store(kCellBlobName, cell_key(model, condition),
               serialize_eval_cell(cell));
  stores_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t EvalCellCache::group_key(std::string_view model,
                                       rag::Condition condition,
                                       std::uint64_t group_fp) const {
  std::uint64_t h = util::hash_combine(util::fnv1a64("eval-group"),
                                       group_base_);
  h = util::hash_combine(h, model_fingerprint(model));
  h = hash_u64(h, static_cast<std::uint64_t>(condition));
  h = hash_u64(h, group_fp);
  return h;
}

std::optional<eval::Accuracy> EvalCellCache::load_group(
    std::string_view model, rag::Condition condition, std::uint64_t group_fp,
    std::size_t expected_total) const {
  if (group_base_ == 0) return std::nullopt;
  const auto blob =
      cache_.load(kGroupBlobName, group_key(model, condition, group_fp));
  if (blob.has_value()) {
    try {
      const EvalCellArtifact cell = deserialize_eval_cell(*blob);
      if (cell.model == model &&
          cell.condition == static_cast<std::int64_t>(condition) &&
          cell.total == expected_total) {
        group_hits_.fetch_add(1, std::memory_order_relaxed);
        eval::Accuracy acc;
        acc.correct = cell.correct;
        acc.total = cell.total;
        acc.unparseable = cell.unparseable;
        return acc;
      }
    } catch (const std::exception&) {
      cache_.note_corrupt();
    }
  }
  group_misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void EvalCellCache::store_group(std::string_view model,
                                rag::Condition condition,
                                std::uint64_t group_fp,
                                const eval::Accuracy& accuracy) const {
  if (group_base_ == 0) return;
  EvalCellArtifact cell;
  cell.model = std::string(model);
  cell.condition = static_cast<std::int64_t>(condition);
  cell.correct = accuracy.correct;
  cell.total = accuracy.total;
  cell.unparseable = accuracy.unparseable;
  cache_.store(kGroupBlobName, group_key(model, condition, group_fp),
               serialize_eval_cell(cell));
  group_stores_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<eval::RecordGroup> record_groups(
    const PipelineContext& ctx, const std::vector<qgen::McqRecord>& records) {
  std::unordered_map<std::string, std::string> doc_of_chunk;
  doc_of_chunk.reserve(ctx.chunks().size());
  for (const chunk::Chunk& c : ctx.chunks()) {
    doc_of_chunk.emplace(c.chunk_id, c.doc_id);
  }

  // Group indexes by provenance unit in first-appearance order.  Exam
  // records (chunk_id not in the chunk table) become singleton groups
  // keyed by their record id.
  std::vector<eval::RecordGroup> groups;
  std::unordered_map<std::string, std::size_t> slot_of_unit;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto it = doc_of_chunk.find(records[i].chunk_id);
    const std::string unit =
        it != doc_of_chunk.end() ? it->second : "exam:" + records[i].record_id;
    const auto [slot, inserted] =
        slot_of_unit.emplace(unit, groups.size());
    if (inserted) groups.emplace_back();
    groups[slot->second].indexes.push_back(i);
  }

  // Fingerprint each group's record bytes via the canonical benchmark
  // codec (same serialization the sweep key uses).
  for (eval::RecordGroup& g : groups) {
    BenchmarkArtifact subset;
    subset.records.reserve(g.indexes.size());
    for (const std::size_t i : g.indexes) subset.records.push_back(records[i]);
    g.content_fp = util::fnv1a64(serialize_benchmark(subset));
  }
  return groups;
}

}  // namespace mcqa::core
