#pragma once
// End-to-end pipeline orchestration (Fig. 1 of the paper):
//
//   corpus synthesis -> adaptive parsing -> semantic chunking ->
//   FP16 embedding + vector store -> MCQ generation + quality filter ->
//   reasoning-trace distillation (3 modes, 3 stores) ->
//   Astro-exam synthesis -> evaluation-ready retrieval pipeline.
//
// PipelineContext owns every artifact and is non-movable so internal
// references stay valid; build it once per process (it is the expensive
// step) and share across benches/tests.

#include <array>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "chunk/chunker.hpp"
#include "corpus/corpus_builder.hpp"
#include "corpus/fact_matcher.hpp"
#include "corpus/knowledge_base.hpp"
#include "embed/embedding_cache.hpp"
#include "embed/hashed_embedder.hpp"
#include "eval/harness.hpp"
#include "exam/astro_exam.hpp"
#include "index/vector_store.hpp"
#include "llm/student_model.hpp"
#include "llm/teacher_model.hpp"
#include "llm/trained_student.hpp"
#include "parse/adaptive.hpp"
#include "qgen/benchmark_builder.hpp"
#include "rag/rag_pipeline.hpp"
#include "trace/trace_generator.hpp"
#include "trace/trace_grading.hpp"

namespace mcqa::core {

/// How PipelineContext schedules the build DAG.
///
///   kStaged     — seven fully-barriered batch stages (the classic form;
///                 baseline for the executor bench).
///   kOverlapped — dataflow execution on one pool: per-document
///                 parse+chunk tasks fan out per-chunk embed and MCQ
///                 generation tasks as soon as their document is ready,
///                 and every accepted record immediately spawns its
///                 three trace-mode lanes, which run concurrently.
///
/// Both modes produce byte-identical artifacts at any thread count
/// (slot-indexed writes, index-ordered merges; tested).
enum class ExecutionMode { kStaged, kOverlapped };

std::string_view execution_mode_name(ExecutionMode mode);

struct PipelineConfig {
  corpus::KbConfig kb;
  corpus::CorpusConfig corpus;
  parse::AdaptiveConfig parser;
  chunk::ChunkerConfig chunker;
  bool semantic_chunking = true;  ///< false = fixed-size baseline (A2)
  qgen::BuilderConfig builder;
  trace::TraceGenConfig tracegen;
  exam::ExamConfig exam;
  rag::RagConfig rag;
  index::IndexKind index_kind = index::IndexKind::kFlat;
  llm::SimulationCoefficients sim;
  std::size_t threads = 0;
  /// Memoize embeddings by content hash.  Purely a speed knob: the cache
  /// returns vectors computed by the same embedder for the same bytes,
  /// so every artifact is byte-identical with it on or off (tested).
  bool embed_cache = true;

  /// Build scheduling (see ExecutionMode).  A speed knob only: artifacts
  /// are byte-identical in either mode.
  ExecutionMode execution = ExecutionMode::kOverlapped;

  /// Content-addressed artifact checkpoint directory; empty disables
  /// checkpointing.  Each document's build subtree (parse outcome,
  /// chunks, embeddings, record, trace lanes) is keyed individually by
  /// (config fingerprint, doc id, doc bytes) plus the executable
  /// identity, so a warm run restores every unchanged document and
  /// recomputes only the dirty ones — byte-identical to a cold build
  /// at any thread count (tested).  Never part of artifact content, so
  /// it cannot affect results.  Checkpointed builds always run through
  /// the overlapped dataflow tree (whose artifacts are byte-identical
  /// to staged; tested), regardless of `execution`.
  std::string checkpoint_dir;

  /// Incremental IVF-PQ rebuild policy (ignored by other index kinds):
  /// when at most this fraction of a store's rows changed since the
  /// previous revision, the quantizers are not retrained — rows are
  /// re-encoded against the previous store's frozen codebooks.  Query
  /// results stay exact either way (the fp16 rerank contract), so this
  /// is a speed knob, excluded from artifact keys; only the saved
  /// IVF-PQ store bytes may differ from a cold retrain's.
  double ivfpq_retrain_threshold = 0.25;

  /// The default configuration used by all paper-reproduction benches:
  /// 1/40-scale corpus, flat index, semantic chunking.  Checkpointing
  /// goes to $MCQA_CHECKPOINT_DIR when that is set and non-empty.
  static PipelineConfig paper_scale(double scale = 0.025);
};

/// $MCQA_CHECKPOINT_DIR, or empty (checkpointing disabled) when unset.
std::string default_checkpoint_dir();

/// Wall-clock seconds per build stage (staged mode fills every field;
/// overlapped mode fills the phases it keeps distinct).
struct StageTimings {
  double kb_corpus = 0.0;   ///< knowledge base + corpus synthesis
  double parse = 0.0;
  double chunk = 0.0;
  double embed_index = 0.0;  ///< chunk store embed + index build
  double qgen = 0.0;
  double traces = 0.0;       ///< all three mode lanes
  double exam = 0.0;
  double overlapped = 0.0;   ///< parse..traces when run as one dataflow
};

struct PipelineStats {
  std::size_t documents = 0;
  std::size_t parse_failures = 0;
  parse::RoutingStats routing;
  std::size_t chunks = 0;
  qgen::FunnelStats funnel;
  /// Post-filter retrieval-store trace counts, indexed by TraceMode.
  std::array<std::size_t, trace::kTraceModeCount> traces_per_mode{};
  /// Teacher self-grading pass rate, indexed by TraceMode.
  std::array<double, trace::kTraceModeCount> trace_grading_accuracy{};
  std::size_t embedding_bytes = 0;  ///< chunk store, FP16 at rest
  embed::EmbeddingCacheStats embed_cache;  ///< zeros when the cache is off
  /// Artifact checkpoint traffic (zeros when checkpointing is off).
  std::size_t checkpoint_hits = 0;
  std::size_t checkpoint_misses = 0;
  /// Blobs that loaded but failed to decode; each was silently
  /// recomputed (and also counts as a miss, never a hit).
  std::size_t checkpoint_corrupt = 0;
  /// Per-document artifact accounting for the incremental build: on a
  /// warm run with K of N documents changed, restored == N-K and
  /// recomputed == K.  Both zero when checkpointing is off.
  std::size_t doc_artifacts_restored = 0;
  std::size_t doc_artifacts_recomputed = 0;
  StageTimings stage_seconds;
  double build_seconds = 0.0;
};

class PipelineContext {
 public:
  explicit PipelineContext(const PipelineConfig& config);

  PipelineContext(const PipelineContext&) = delete;
  PipelineContext& operator=(const PipelineContext&) = delete;

  const PipelineConfig& config() const { return config_; }
  const PipelineStats& stats() const { return stats_; }

  const corpus::KnowledgeBase& kb() const { return kb_; }
  const corpus::FactMatcher& matcher() const { return matcher_; }
  const corpus::SyntheticCorpus& corpus() const { return corpus_; }
  const std::vector<parse::ParsedDocument>& parsed() const { return parsed_; }
  const std::vector<chunk::Chunk>& chunks() const { return chunks_; }
  const embed::HashedNGramEmbedder& embedder() const { return embedder_; }
  /// The embedder the pipeline actually routes through: the content-hash
  /// cache when `config.embed_cache` is on, the raw embedder otherwise.
  const embed::Embedder& active_embedder() const {
    return embed_cache_ ? static_cast<const embed::Embedder&>(*embed_cache_)
                        : embedder_;
  }
  const index::VectorStore& chunk_store() const { return *chunk_store_; }
  const index::VectorStore& trace_store(trace::TraceMode mode) const {
    return *trace_stores_[static_cast<std::size_t>(mode)];
  }
  const llm::TeacherModel& teacher() const { return *teacher_; }
  const std::vector<qgen::McqRecord>& benchmark() const { return benchmark_; }
  const std::vector<trace::TraceRecord>& traces(trace::TraceMode mode) const {
    return traces_[static_cast<std::size_t>(mode)];
  }
  const exam::Exam& astro_exam() const { return exam_; }
  const std::vector<qgen::McqRecord>& exam_all() const { return exam_all_; }
  const std::vector<qgen::McqRecord>& exam_no_math() const {
    return exam_no_math_;
  }
  const std::unordered_set<corpus::FactId>& covered_facts() const {
    return covered_facts_;
  }
  const rag::RagPipeline& rag() const { return *rag_; }

  /// The eight simulated students (registry order), plus their specs.
  const std::vector<std::unique_ptr<llm::StudentModel>>& students() const {
    return students_;
  }
  std::vector<const llm::LanguageModel*> student_ptrs() const;
  std::vector<llm::ModelSpec> student_specs() const;

  /// The trainable roster extension (DESIGN.md §16): two TrainedStudent
  /// rows — "lbl-traces" minibatch-SGD-trained on distilled reasoning-
  /// trace text and "lbl-chunks" on chunk text, equal byte budget.
  struct TrainedRoster {
    std::unique_ptr<llm::TrainedStudent> traces;
    std::unique_ptr<llm::TrainedStudent> chunks;
  };

  /// Lazily trains (or, with checkpointing on, warm-restores — byte-
  /// identical) the trainable rows on first use and registers their
  /// (config, training text) fingerprints with the eval-cell cache.
  /// The frozen eight never pay for this; benches that only sweep the
  /// calibrated roster never call it.  Thread-safe.
  const TrainedRoster& trained_roster() const;

  /// Training corpora for the trainable rows: (trace text, chunk text)
  /// concatenated in artifact order and trimmed to an equal byte
  /// budget — the bench_trace_pretraining discipline.
  std::pair<std::string, std::string> training_texts() const;

  /// The frozen TrainConfig the roster rows train under.
  static train::TrainConfig roster_train_config();

  /// 8 frozen + 2 trainable rows, in that order, for extended sweeps
  /// (bench_train, train tests).  run_full_sweep and every pre-existing
  /// bench stay on the frozen-8 student_ptrs().
  std::vector<const llm::LanguageModel*> extended_student_ptrs() const;
  std::vector<llm::ModelSpec> extended_student_specs() const;

  /// Process-wide shared context at the default paper scale; built on
  /// first use.  Benches share it to avoid rebuilding per binary run.
  static const PipelineContext& shared();

 private:
  friend class OverlappedBuilder;

  /// Stage 1-5 as barriered batch stages (ExecutionMode::kStaged).
  void build_staged(parallel::ThreadPool& pool);
  /// Stage 1-5 as one overlapped dataflow (ExecutionMode::kOverlapped).
  void build_overlapped(parallel::ThreadPool& pool);
  /// Stages 6-7: exam synthesis, retrieval wiring, students.
  void finalize_exam_and_rag();

  PipelineConfig config_;
  PipelineStats stats_;

  corpus::KnowledgeBase kb_;
  corpus::FactMatcher matcher_;
  corpus::SyntheticCorpus corpus_;
  std::vector<parse::ParsedDocument> parsed_;
  std::vector<chunk::Chunk> chunks_;
  embed::HashedNGramEmbedder embedder_;
  std::unique_ptr<embed::CachingEmbedder> embed_cache_;
  std::unique_ptr<index::VectorStore> chunk_store_;
  std::unique_ptr<llm::TeacherModel> teacher_;
  std::vector<qgen::McqRecord> benchmark_;
  std::array<std::vector<trace::TraceRecord>, trace::kTraceModeCount> traces_;
  std::array<std::unique_ptr<index::VectorStore>, trace::kTraceModeCount>
      trace_stores_;
  std::unordered_set<corpus::FactId> covered_facts_;
  exam::Exam exam_;
  std::vector<qgen::McqRecord> exam_all_;
  std::vector<qgen::McqRecord> exam_no_math_;
  std::unique_ptr<rag::RagPipeline> rag_;
  std::vector<std::unique_ptr<llm::StudentModel>> students_;
  mutable std::mutex trained_mu_;
  mutable TrainedRoster trained_;  ///< lazily built; guarded by trained_mu_
};

}  // namespace mcqa::core
