#pragma once
// End-to-end pipeline orchestration (Fig. 1 of the paper):
//
//   corpus synthesis -> adaptive parsing -> semantic chunking ->
//   FP16 embedding + vector store -> MCQ generation + quality filter ->
//   reasoning-trace distillation (3 modes, 3 stores) ->
//   Astro-exam synthesis -> evaluation-ready retrieval pipeline.
//
// PipelineContext owns every artifact and is non-movable so internal
// references stay valid; build it once per process (it is the expensive
// step) and share across benches/tests.

#include <array>
#include <memory>
#include <unordered_set>
#include <vector>

#include "chunk/chunker.hpp"
#include "corpus/corpus_builder.hpp"
#include "corpus/fact_matcher.hpp"
#include "corpus/knowledge_base.hpp"
#include "embed/embedding_cache.hpp"
#include "embed/hashed_embedder.hpp"
#include "eval/harness.hpp"
#include "exam/astro_exam.hpp"
#include "index/vector_store.hpp"
#include "llm/student_model.hpp"
#include "llm/teacher_model.hpp"
#include "parse/adaptive.hpp"
#include "qgen/benchmark_builder.hpp"
#include "rag/rag_pipeline.hpp"
#include "trace/trace_generator.hpp"
#include "trace/trace_grading.hpp"

namespace mcqa::core {

struct PipelineConfig {
  corpus::KbConfig kb;
  corpus::CorpusConfig corpus;
  parse::AdaptiveConfig parser;
  chunk::ChunkerConfig chunker;
  bool semantic_chunking = true;  ///< false = fixed-size baseline (A2)
  qgen::BuilderConfig builder;
  trace::TraceGenConfig tracegen;
  exam::ExamConfig exam;
  rag::RagConfig rag;
  index::IndexKind index_kind = index::IndexKind::kFlat;
  llm::SimulationCoefficients sim;
  std::size_t threads = 0;
  /// Memoize embeddings by content hash.  Purely a speed knob: the cache
  /// returns vectors computed by the same embedder for the same bytes,
  /// so every artifact is byte-identical with it on or off (tested).
  bool embed_cache = true;

  /// The default configuration used by all paper-reproduction benches:
  /// 1/40-scale corpus, flat index, semantic chunking.
  static PipelineConfig paper_scale(double scale = 0.025);
};

struct PipelineStats {
  std::size_t documents = 0;
  std::size_t parse_failures = 0;
  parse::RoutingStats routing;
  std::size_t chunks = 0;
  qgen::FunnelStats funnel;
  std::size_t traces_per_mode = 0;
  double trace_grading_accuracy = 0.0;  ///< teacher self-grading pass rate
  std::size_t embedding_bytes = 0;  ///< chunk store, FP16 at rest
  embed::EmbeddingCacheStats embed_cache;  ///< zeros when the cache is off
  double build_seconds = 0.0;
};

class PipelineContext {
 public:
  explicit PipelineContext(const PipelineConfig& config);

  PipelineContext(const PipelineContext&) = delete;
  PipelineContext& operator=(const PipelineContext&) = delete;

  const PipelineConfig& config() const { return config_; }
  const PipelineStats& stats() const { return stats_; }

  const corpus::KnowledgeBase& kb() const { return kb_; }
  const corpus::FactMatcher& matcher() const { return matcher_; }
  const corpus::SyntheticCorpus& corpus() const { return corpus_; }
  const std::vector<parse::ParsedDocument>& parsed() const { return parsed_; }
  const std::vector<chunk::Chunk>& chunks() const { return chunks_; }
  const embed::HashedNGramEmbedder& embedder() const { return embedder_; }
  /// The embedder the pipeline actually routes through: the content-hash
  /// cache when `config.embed_cache` is on, the raw embedder otherwise.
  const embed::Embedder& active_embedder() const {
    return embed_cache_ ? static_cast<const embed::Embedder&>(*embed_cache_)
                        : embedder_;
  }
  const index::VectorStore& chunk_store() const { return *chunk_store_; }
  const index::VectorStore& trace_store(trace::TraceMode mode) const {
    return *trace_stores_[static_cast<std::size_t>(mode)];
  }
  const llm::TeacherModel& teacher() const { return *teacher_; }
  const std::vector<qgen::McqRecord>& benchmark() const { return benchmark_; }
  const std::vector<trace::TraceRecord>& traces(trace::TraceMode mode) const {
    return traces_[static_cast<std::size_t>(mode)];
  }
  const exam::Exam& astro_exam() const { return exam_; }
  const std::vector<qgen::McqRecord>& exam_all() const { return exam_all_; }
  const std::vector<qgen::McqRecord>& exam_no_math() const {
    return exam_no_math_;
  }
  const std::unordered_set<corpus::FactId>& covered_facts() const {
    return covered_facts_;
  }
  const rag::RagPipeline& rag() const { return *rag_; }

  /// The eight simulated students (registry order), plus their specs.
  const std::vector<std::unique_ptr<llm::StudentModel>>& students() const {
    return students_;
  }
  std::vector<const llm::LanguageModel*> student_ptrs() const;
  std::vector<llm::ModelSpec> student_specs() const;

  /// Process-wide shared context at the default paper scale; built on
  /// first use.  Benches share it to avoid rebuilding per binary run.
  static const PipelineContext& shared();

 private:
  PipelineConfig config_;
  PipelineStats stats_;

  corpus::KnowledgeBase kb_;
  corpus::FactMatcher matcher_;
  corpus::SyntheticCorpus corpus_;
  std::vector<parse::ParsedDocument> parsed_;
  std::vector<chunk::Chunk> chunks_;
  embed::HashedNGramEmbedder embedder_;
  std::unique_ptr<embed::CachingEmbedder> embed_cache_;
  std::unique_ptr<index::VectorStore> chunk_store_;
  std::unique_ptr<llm::TeacherModel> teacher_;
  std::vector<qgen::McqRecord> benchmark_;
  std::array<std::vector<trace::TraceRecord>, trace::kTraceModeCount> traces_;
  std::array<std::unique_ptr<index::VectorStore>, trace::kTraceModeCount>
      trace_stores_;
  std::unordered_set<corpus::FactId> covered_facts_;
  exam::Exam exam_;
  std::vector<qgen::McqRecord> exam_all_;
  std::vector<qgen::McqRecord> exam_no_math_;
  std::unique_ptr<rag::RagPipeline> rag_;
  std::vector<std::unique_ptr<llm::StudentModel>> students_;
};

}  // namespace mcqa::core
