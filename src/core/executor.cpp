#include "core/executor.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <queue>
#include <unordered_map>
#include <utility>

#include "core/checkpoint.hpp"
#include "parallel/dag.hpp"
#include "parallel/thread_pool.hpp"
#include "util/hash.hpp"

namespace mcqa::core {

// --- execution plane ---------------------------------------------------------

/// Per-trace slot filled by a fused generate+grade+embed task.
struct OverlappedBuilder::TraceSlot {
  trace::TraceRecord trace;
  std::string retrieval;
  embed::Vector vector;
};

/// Everything one document's task tree produces, slot-indexed so
/// concurrent writers never touch the same element.  The funnel
/// counters are per-document so an incremental run can persist and
/// restore each document's rejection tally exactly; document-ordered
/// sums of relaxed counters equal the old process-global totals
/// bit-for-bit (commutative integer adds).  Atomics make DocSlots
/// immovable — the slots vector is sized once and never reallocated.
struct OverlappedBuilder::DocSlots {
  parse::ParseOutcome outcome;
  std::vector<chunk::Chunk> chunks;
  std::vector<embed::Vector> vectors;
  std::vector<std::optional<qgen::McqRecord>> records;
  std::vector<std::array<std::unique_ptr<TraceSlot>, trace::kTraceModeCount>>
      traces;
  qgen::FunnelCounters funnel;
};

/// Store-ready rows extracted by merge_slots in (document, chunk, mode)
/// order.
struct OverlappedBuilder::StoreRows {
  struct Rows {
    std::vector<std::string> ids;
    std::vector<std::string> texts;
    std::vector<embed::Vector> vectors;
  };
  Rows chunks;
  std::array<Rows, trace::kTraceModeCount> traces;
};

void OverlappedBuilder::build_slots(parallel::ThreadPool& pool,
                                    std::vector<DocSlots>& slots,
                                    const std::vector<char>* dirty) {
  PipelineContext& ctx = ctx_;
  const PipelineConfig& config = ctx.config_;
  const embed::Embedder& embedder = ctx.active_embedder();

  const parse::AdaptiveParser parser(config.parser);
  std::unique_ptr<chunk::Chunker> chunker;
  if (config.semantic_chunking) {
    chunker = std::make_unique<chunk::SemanticChunker>(embedder,
                                                       config.chunker);
  } else {
    chunker = std::make_unique<chunk::FixedSizeChunker>(config.chunker);
  }
  const qgen::BenchmarkBuilder builder(*ctx.teacher_, config.builder);
  const trace::TraceGenerator tracer(*ctx.teacher_, config.tracegen);

  const auto& docs = ctx.corpus_.documents;

  // The dataflow: one task per document fans out per-chunk embed and
  // question tasks as soon as its chunks exist; each accepted record
  // fans out its three trace-mode tasks.  Tasks only write their own
  // slot and only spawn — never block — so the group drains without
  // any cross-task waiting.  Every per-item computation is a pure
  // function of that item's content, so running the tree over any
  // dirty subset yields the same slot bytes as running it over all.
  parallel::TaskGroup group(pool);
  for (std::size_t i = 0; i < docs.size(); ++i) {
    if (dirty != nullptr && (*dirty)[i] == 0) continue;
    group.spawn([&, i]() {
      DocSlots& slot = slots[i];
      slot.outcome = parser.parse(docs[i].bytes);
      if (!slot.outcome.ok) return;
      // Provenance fallback must precede chunking: chunk ids derive
      // from the doc id (same order of operations as the staged build).
      if (slot.outcome.document.doc_id.empty()) {
        slot.outcome.document.doc_id = docs[i].doc_id;
      }
      slot.chunks = chunker->chunk(slot.outcome.document);
      const std::size_t n = slot.chunks.size();
      slot.vectors.resize(n);
      slot.records.resize(n);
      slot.traces.resize(n);
      for (std::size_t c = 0; c < n; ++c) {
        group.spawn([&, i, c]() {
          DocSlots& s = slots[i];
          s.vectors[c] = embedder.embed(s.chunks[c].text);
        });
        group.spawn([&, i, c]() {
          DocSlots& s = slots[i];
          s.records[c] = builder.build_one(s.chunks[c], s.funnel);
          if (!s.records[c].has_value()) return;
          for (int m = 0; m < trace::kTraceModeCount; ++m) {
            group.spawn([&, i, c, m]() {
              DocSlots& sm = slots[i];
              auto out = std::make_unique<TraceSlot>();
              out->trace = tracer.generate(*sm.records[c],
                                           static_cast<trace::TraceMode>(m));
              trace::grade_trace(out->trace);
              if (!out->trace.grading.is_correct) return;
              out->retrieval = out->trace.retrieval_text();
              out->vector = embedder.embed(out->retrieval);
              sm.traces[c][static_cast<std::size_t>(m)] = std::move(out);
            });
          }
        });
      }
    });
  }
  group.wait();
}

OverlappedBuilder::StoreRows OverlappedBuilder::merge_slots(
    std::vector<DocSlots>& slots) {
  // Merge in (document, chunk, mode) order — identical traversal to the
  // staged build's per-stage merges, so the artifacts come out
  // byte-for-byte the same.
  PipelineContext& ctx = ctx_;
  PipelineStats& stats = ctx.stats_;
  std::size_t ok_docs = 0;
  std::size_t total_chunks = 0;
  for (const auto& slot : slots) {
    ok_docs += slot.outcome.ok ? 1 : 0;
    total_chunks += slot.chunks.size();
  }
  ctx.parsed_.reserve(ok_docs);
  ctx.chunks_.reserve(total_chunks);

  for (std::size_t i = 0; i < slots.size(); ++i) {
    auto& outcome = slots[i].outcome;
    ++stats.routing.total;
    stats.routing.compute_cost += outcome.compute_cost;
    stats.routing.always_accurate_cost += 8.0;  // AccurateSpdfParser::cost
    if (outcome.route == "fast") ++stats.routing.fast_routed;
    else if (outcome.route == "accurate") ++stats.routing.accurate_routed;
    else if (outcome.route == "fast->accurate") ++stats.routing.escalated;
    else if (outcome.route == "markdown" || outcome.route == "text")
      ++stats.routing.non_spdf;
    if (!outcome.ok) {
      ++stats.routing.failed;
      ++stats.parse_failures;
      continue;
    }
    ctx.parsed_.push_back(std::move(outcome.document));
  }
  stats.documents = slots.size();

  StoreRows rows;
  rows.chunks.ids.reserve(total_chunks);
  rows.chunks.texts.reserve(total_chunks);
  rows.chunks.vectors.reserve(total_chunks);
  for (auto& slot : slots) {
    for (std::size_t c = 0; c < slot.chunks.size(); ++c) {
      rows.chunks.ids.push_back(slot.chunks[c].chunk_id);
      rows.chunks.texts.push_back(slot.chunks[c].text);
      rows.chunks.vectors.push_back(std::move(slot.vectors[c]));
      ctx.chunks_.push_back(std::move(slot.chunks[c]));
    }
  }
  stats.chunks = ctx.chunks_.size();

  for (auto& slot : slots) {
    for (auto& record : slot.records) {
      if (record.has_value()) ctx.benchmark_.push_back(std::move(*record));
    }
  }
  std::size_t candidates = 0;
  std::size_t rejected_no_fact = 0;
  std::size_t rejected_quality = 0;
  std::size_t rejected_relevance = 0;
  for (const auto& slot : slots) {
    candidates += slot.funnel.candidates.load();
    rejected_no_fact += slot.funnel.rejected_no_fact.load();
    rejected_quality += slot.funnel.rejected_quality.load();
    rejected_relevance += slot.funnel.rejected_relevance.load();
  }
  stats.funnel.chunks = total_chunks;
  stats.funnel.candidates = candidates;
  stats.funnel.rejected_no_fact = rejected_no_fact;
  stats.funnel.rejected_quality = rejected_quality;
  stats.funnel.rejected_relevance = rejected_relevance;
  stats.funnel.accepted = ctx.benchmark_.size();

  for (int m = 0; m < trace::kTraceModeCount; ++m) {
    const auto mi = static_cast<std::size_t>(m);
    auto& lane = rows.traces[mi];
    lane.ids.reserve(ctx.benchmark_.size());
    lane.texts.reserve(ctx.benchmark_.size());
    lane.vectors.reserve(ctx.benchmark_.size());
    for (auto& slot : slots) {
      for (auto& lanes : slot.traces) {
        if (!lanes[mi]) continue;
        lane.ids.push_back(lanes[mi]->trace.trace_id);
        lane.texts.push_back(std::move(lanes[mi]->retrieval));
        lane.vectors.push_back(std::move(lanes[mi]->vector));
        ctx.traces_[mi].push_back(std::move(lanes[mi]->trace));
      }
    }
    stats.traces_per_mode[mi] = ctx.traces_[mi].size();
    // Every record was traced and graded in each mode; the filter kept
    // exactly the correct ones, so the pre-filter tally is the record
    // count — the same integers the dataflow's completion counters
    // held, now derivable for any restored/recomputed doc mix.
    const std::size_t graded = ctx.benchmark_.size();
    stats.trace_grading_accuracy[mi] =
        graded == 0 ? 0.0
                    : static_cast<double>(ctx.traces_[mi].size()) /
                          static_cast<double>(graded);
  }
  return rows;
}

void OverlappedBuilder::finish_stores(parallel::ThreadPool& pool,
                                      StoreRows&& rows) {
  PipelineContext& ctx = ctx_;
  const PipelineConfig& config = ctx.config_;
  const embed::Embedder& embedder = ctx.active_embedder();

  ctx.chunk_store_ =
      std::make_unique<index::VectorStore>(embedder, config.index_kind);
  ctx.chunk_store_->add_precomputed(std::move(rows.chunks.ids),
                                    std::move(rows.chunks.texts),
                                    rows.chunks.vectors);
  for (int m = 0; m < trace::kTraceModeCount; ++m) {
    const auto mi = static_cast<std::size_t>(m);
    ctx.trace_stores_[mi] =
        std::make_unique<index::VectorStore>(embedder, config.index_kind);
    ctx.trace_stores_[mi]->add_precomputed(std::move(rows.traces[mi].ids),
                                           std::move(rows.traces[mi].texts),
                                           rows.traces[mi].vectors);
  }

  // The four index builds are independent of each other; overlap them.
  parallel::TaskGroup builds(pool);
  builds.spawn([&ctx]() { ctx.chunk_store_->build(); });
  for (int m = 0; m < trace::kTraceModeCount; ++m) {
    builds.spawn([&ctx, m]() {
      ctx.trace_stores_[static_cast<std::size_t>(m)]->build();
    });
  }
  builds.wait();
  ctx.stats_.embedding_bytes = ctx.chunk_store_->embedding_bytes();
}

void OverlappedBuilder::run(parallel::ThreadPool& pool) {
  std::vector<DocSlots> slots(ctx_.corpus_.documents.size());
  build_slots(pool, slots, nullptr);
  StoreRows rows = merge_slots(slots);
  finish_stores(pool, std::move(rows));
}

DocArtifact OverlappedBuilder::to_artifact(const DocSlots& slot) {
  DocArtifact art;
  art.parsed_ok = slot.outcome.ok;
  art.route = slot.outcome.route;
  art.compute_cost = slot.outcome.compute_cost;
  if (slot.outcome.ok) art.document = slot.outcome.document;
  art.funnel_candidates = slot.funnel.candidates.load();
  art.funnel_rejected_no_fact = slot.funnel.rejected_no_fact.load();
  art.funnel_rejected_quality = slot.funnel.rejected_quality.load();
  art.funnel_rejected_relevance = slot.funnel.rejected_relevance.load();
  art.chunks.resize(slot.chunks.size());
  for (std::size_t c = 0; c < slot.chunks.size(); ++c) {
    DocChunkArtifact& ca = art.chunks[c];
    ca.chunk = slot.chunks[c];
    ca.vector = slot.vectors[c];
    ca.has_record = slot.records[c].has_value();
    if (!ca.has_record) continue;
    ca.record = *slot.records[c];
    for (int m = 0; m < trace::kTraceModeCount; ++m) {
      const auto mi = static_cast<std::size_t>(m);
      const auto& lane = slot.traces[c][mi];
      if (!lane) continue;
      ca.traces[mi].kept = true;
      ca.traces[mi].trace = lane->trace;
      ca.traces[mi].retrieval = lane->retrieval;
      ca.traces[mi].vector = lane->vector;
    }
  }
  return art;
}

void OverlappedBuilder::fill_slot(DocSlots& slot, DocArtifact&& art) {
  slot.outcome.ok = art.parsed_ok;
  slot.outcome.route = std::move(art.route);
  slot.outcome.compute_cost = art.compute_cost;
  if (art.parsed_ok) slot.outcome.document = std::move(art.document);
  slot.funnel.candidates.store(art.funnel_candidates);
  slot.funnel.rejected_no_fact.store(art.funnel_rejected_no_fact);
  slot.funnel.rejected_quality.store(art.funnel_rejected_quality);
  slot.funnel.rejected_relevance.store(art.funnel_rejected_relevance);
  const std::size_t n = art.chunks.size();
  slot.chunks.reserve(n);
  slot.vectors.reserve(n);
  slot.records.reserve(n);
  slot.traces.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    DocChunkArtifact& ca = art.chunks[c];
    slot.chunks.push_back(std::move(ca.chunk));
    slot.vectors.push_back(std::move(ca.vector));
    if (ca.has_record) {
      slot.records.emplace_back(std::move(ca.record));
      for (int m = 0; m < trace::kTraceModeCount; ++m) {
        const auto mi = static_cast<std::size_t>(m);
        if (!ca.traces[mi].kept) continue;
        auto out = std::make_unique<TraceSlot>();
        out->trace = std::move(ca.traces[mi].trace);
        out->retrieval = std::move(ca.traces[mi].retrieval);
        out->vector = std::move(ca.traces[mi].vector);
        slot.traces[c][mi] = std::move(out);
      }
    } else {
      slot.records.emplace_back(std::nullopt);
    }
  }
}

void OverlappedBuilder::run_incremental(parallel::ThreadPool& pool,
                                        const ArtifactCache& cache) {
  PipelineContext& ctx = ctx_;
  const PipelineConfig& config = ctx.config_;
  const embed::Embedder& embedder = ctx.active_embedder();
  const auto& docs = ctx.corpus_.documents;
  const std::size_t n = docs.size();

  const CheckpointKeys keys = derive_checkpoint_keys(config, embedder.dim());
  const std::vector<std::uint64_t> doc_keys =
      derive_doc_keys(config, ctx.corpus_, embedder.dim());
  const std::uint64_t manifest_key =
      derive_manifest_key(config, embedder.dim());

  // The previous revision's manifest (same configuration family): the
  // IVF-PQ delta path finds its donor stores through its aggregate
  // keys.  A corrupt manifest is ignored — it only costs the donor.
  std::optional<ManifestArtifact> previous;
  if (const auto blob = cache.load("manifest", manifest_key)) {
    try {
      previous = deserialize_manifest(*blob);
    } catch (const std::exception&) {
      cache.note_corrupt();
    }
  }

  // Restore pass: every document's subtree loads independently, in
  // parallel.  Decode fully before touching the slot, so a corrupt
  // blob dirties the document instead of half-filling it.
  std::vector<DocSlots> slots(n);
  std::vector<char> dirty(n, 0);
  parallel::parallel_for(pool, 0, n, [&](std::size_t i) {
    const auto blob = cache.load("docart", doc_keys[i]);
    if (!blob.has_value()) {
      dirty[i] = 1;
      return;
    }
    std::optional<DocArtifact> art;
    try {
      art.emplace(deserialize_docart(*blob));
    } catch (const std::exception&) {
      cache.note_corrupt();
      dirty[i] = 1;
      return;
    }
    fill_slot(slots[i], std::move(*art));
  });

  std::size_t dirty_count = 0;
  for (const char d : dirty) dirty_count += static_cast<std::size_t>(d);
  ctx.stats_.doc_artifacts_restored = n - dirty_count;
  ctx.stats_.doc_artifacts_recomputed = dirty_count;

  if (dirty_count > 0) {
    build_slots(pool, slots, &dirty);
    // Persist the recomputed subtrees before the merge moves them out.
    parallel::parallel_for(pool, 0, n, [&](std::size_t i) {
      if (dirty[i] == 0) return;
      cache.store("docart", doc_keys[i], serialize_docart(to_artifact(slots[i])));
    });
  }

  // Changed-row fractions per store, computed before the merge consumes
  // the slots.  A restored document contributes unchanged rows.
  std::size_t chunk_rows = 0;
  std::size_t dirty_chunk_rows = 0;
  std::array<std::size_t, trace::kTraceModeCount> trace_rows{};
  std::array<std::size_t, trace::kTraceModeCount> dirty_trace_rows{};
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = slots[i].chunks.size();
    chunk_rows += c;
    if (dirty[i] != 0) dirty_chunk_rows += c;
    for (const auto& lanes : slots[i].traces) {
      for (int m = 0; m < trace::kTraceModeCount; ++m) {
        const auto mi = static_cast<std::size_t>(m);
        if (!lanes[mi]) continue;
        ++trace_rows[mi];
        if (dirty[i] != 0) ++dirty_trace_rows[mi];
      }
    }
  }
  const auto fraction_of = [](std::size_t dirty_rows, std::size_t total) {
    return total == 0
               ? 0.0
               : static_cast<double>(dirty_rows) / static_cast<double>(total);
  };

  StoreRows rows = merge_slots(slots);

  // Stores: a fully-restored run warm-loads the store blobs outright;
  // otherwise (or when a blob is corrupt/missing) the store is
  // assembled from the merged rows — reusing every surviving embedding
  // — and finalized delta-aware: IVF-PQ re-encodes against the donor's
  // frozen codebooks when the changed fraction is at or under the
  // retrain threshold, every other kind rebuilds exactly as cold.
  const auto assemble = [&](std::unique_ptr<index::VectorStore>& target,
                            const std::string& name, std::uint64_t key,
                            StoreRows::Rows&& data, double changed,
                            std::uint64_t donor_key) {
    if (dirty_count == 0) {
      if (const auto blob = cache.load(name, key)) {
        try {
          target = std::make_unique<index::VectorStore>(
              index::VectorStore::load(embedder, *blob));
          return;
        } catch (const std::exception&) {
          cache.note_corrupt();
        }
      }
    }
    target = std::make_unique<index::VectorStore>(embedder, config.index_kind);
    target->add_precomputed(std::move(data.ids), std::move(data.texts),
                            data.vectors);
    std::unique_ptr<index::VectorStore> donor;
    if (config.index_kind == index::IndexKind::kIvfPq &&
        previous.has_value() && changed <= config.ivfpq_retrain_threshold &&
        donor_key != key) {
      if (const auto blob = cache.load(name, donor_key)) {
        try {
          donor = std::make_unique<index::VectorStore>(
              index::VectorStore::load(embedder, *blob));
        } catch (const std::exception&) {
          cache.note_corrupt();
        }
      }
    }
    target->build_delta(donor.get(), changed, config.ivfpq_retrain_threshold);
    cache.store(name, key, target->save());
  };

  assemble(ctx.chunk_store_, "chunk-store", keys.chunk_store,
           std::move(rows.chunks), fraction_of(dirty_chunk_rows, chunk_rows),
           previous.has_value() ? previous->keys.chunk_store : keys.chunk_store);
  for (int m = 0; m < trace::kTraceModeCount; ++m) {
    const auto mi = static_cast<std::size_t>(m);
    assemble(ctx.trace_stores_[mi],
             trace_mode_blob_name("trace-store",
                                  static_cast<trace::TraceMode>(m)),
             keys.trace_stores[mi], std::move(rows.traces[mi]),
             fraction_of(dirty_trace_rows[mi], trace_rows[mi]),
             previous.has_value() ? previous->keys.trace_stores[mi]
                                  : keys.trace_stores[mi]);
  }
  ctx.stats_.embedding_bytes = ctx.chunk_store_->embedding_bytes();

  // Manifest last: it must only ever name a fully-persisted artifact
  // set.  Rewritten every run — the slot is keyed by configuration
  // family, so this is what retires the previous revision.
  ManifestArtifact manifest;
  manifest.keys = keys;
  manifest.doc_ids.reserve(n);
  for (const auto& doc : docs) manifest.doc_ids.push_back(doc.doc_id);
  manifest.doc_keys = doc_keys;
  cache.store("manifest", manifest_key, serialize_manifest(manifest));
}

// --- measurement plane -------------------------------------------------------

namespace {

/// Cost heterogeneity: deterministic per-item multiplier in [0.85, 1.15).
double jitter(std::uint64_t key) {
  return 0.85 + 0.3 * static_cast<double>(util::fnv1a64(key) % 1000u) / 1000.0;
}

/// Trace-mode cost scale: detailed writes option-by-option analyses,
/// efficient a compact summary.
constexpr std::array<double, trace::kTraceModeCount> kModeScale = {1.7, 1.25,
                                                                   0.85};
/// Trace retrieval-text embed cost relative to its generation cost.
constexpr double kTraceEmbedFraction = 0.6;

struct SimTask {
  double cost = 0.0;
  std::vector<std::uint32_t> deps;
};

/// Deterministic greedy list schedule: ready tasks are served in
/// (release time, task id) order to the earliest-free worker.
double run_schedule(const std::vector<SimTask>& tasks, std::size_t workers) {
  const std::size_t n = tasks.size();
  std::vector<std::uint32_t> indeg(n, 0);
  std::vector<std::vector<std::uint32_t>> dependents(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::uint32_t d : tasks[i].deps) {
      dependents[d].push_back(static_cast<std::uint32_t>(i));
      ++indeg[i];
    }
  }
  std::vector<double> release(n, 0.0);
  using Entry = std::pair<double, std::uint32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) ready.push({0.0, static_cast<std::uint32_t>(i)});
  }
  std::priority_queue<double, std::vector<double>, std::greater<>> free;
  for (std::size_t w = 0; w < std::max<std::size_t>(workers, 1); ++w) {
    free.push(0.0);
  }
  double makespan = 0.0;
  while (!ready.empty()) {
    const auto [rel, id] = ready.top();
    ready.pop();
    const double worker = free.top();
    free.pop();
    const double finish = std::max(rel, worker) + tasks[id].cost;
    free.push(finish);
    makespan = std::max(makespan, finish);
    for (const std::uint32_t d : dependents[id]) {
      release[d] = std::max(release[d], finish);
      if (--indeg[d] == 0) ready.push({release[d], d});
    }
  }
  return makespan;
}

class DagBuilder {
 public:
  std::uint32_t add(double cost, std::vector<std::uint32_t> deps = {}) {
    tasks_.push_back(SimTask{cost, std::move(deps)});
    return static_cast<std::uint32_t>(tasks_.size() - 1);
  }
  const std::vector<SimTask>& tasks() const { return tasks_; }

 private:
  std::vector<SimTask> tasks_;
};

double sum_generate(const ScheduleModel& m, std::size_t mode) {
  double s = 0.0;
  for (const auto& r : m.records) s += r.generate[mode];
  return s;
}

double staged_makespan(const ScheduleModel& m, std::size_t workers) {
  DagBuilder dag;
  const double n_docs = static_cast<double>(m.docs.size());
  const double n_chunks = static_cast<double>(m.chunks.size());
  const double n_records = static_cast<double>(m.records.size());

  // Stage 1: parse fan-out, serial outcome merge.
  std::vector<std::uint32_t> parse_tasks;
  for (const auto& d : m.docs) parse_tasks.push_back(dag.add(d.parse));
  const std::uint32_t b1 = dag.add(n_docs * m.merge_cost, parse_tasks);

  // Stage 2: chunk fan-out, serial chunk merge.
  std::vector<std::uint32_t> chunk_tasks;
  for (const auto& d : m.docs) {
    if (d.chunk > 0.0) chunk_tasks.push_back(dag.add(d.chunk, {b1}));
  }
  const std::uint32_t b2 = dag.add(n_chunks * m.merge_cost, chunk_tasks);

  // Stage 3: embed fan-out, serial store insert + index build.
  std::vector<std::uint32_t> embed_tasks;
  for (const auto& c : m.chunks) embed_tasks.push_back(dag.add(c.embed, {b2}));
  const std::uint32_t b3 =
      dag.add(n_chunks * (m.insert_cost + m.build_cost), embed_tasks);

  // Stage 4: question fan-out, serial record collection.
  std::vector<std::uint32_t> qgen_tasks;
  for (const auto& c : m.chunks) qgen_tasks.push_back(dag.add(c.qgen, {b3}));
  std::uint32_t prev = dag.add(n_chunks * m.merge_cost, qgen_tasks);

  // Stage 5: the three mode lanes, strictly sequential; grading and
  // retrieval-text extraction are serial loops between the parallel
  // generate and embed fans (mirroring grade_all + the ids/texts loop).
  for (std::size_t mode = 0; mode < static_cast<std::size_t>(trace::kTraceModeCount); ++mode) {
    std::vector<std::uint32_t> gen_tasks;
    for (const auto& r : m.records) {
      gen_tasks.push_back(dag.add(r.generate[mode], {prev}));
    }
    const double lane_work = sum_generate(m, mode);
    const std::uint32_t grade =
        dag.add(lane_work * m.grade_fraction, gen_tasks);
    const std::uint32_t extract =
        dag.add(lane_work * m.extract_fraction, {grade});
    std::vector<std::uint32_t> trace_embed_tasks;
    for (const auto& r : m.records) {
      trace_embed_tasks.push_back(
          dag.add(r.generate[mode] * kTraceEmbedFraction, {extract}));
    }
    prev = dag.add(n_records * (m.insert_cost + m.build_cost),
                   trace_embed_tasks);
  }
  return run_schedule(dag.tasks(), workers);
}

double overlapped_makespan(const ScheduleModel& m, std::size_t workers) {
  DagBuilder dag;
  const double n_docs = static_cast<double>(m.docs.size());
  const double n_chunks = static_cast<double>(m.chunks.size());
  const double n_records = static_cast<double>(m.records.size());

  // Fused parse+chunk per document.
  std::vector<std::uint32_t> doc_tasks(m.docs.size());
  for (std::size_t d = 0; d < m.docs.size(); ++d) {
    doc_tasks[d] = dag.add(m.docs[d].parse + m.docs[d].chunk);
  }
  // Per-chunk embed and question tasks, released by their document.
  std::vector<std::uint32_t> qgen_tasks(m.chunks.size());
  std::vector<std::uint32_t> leaves;
  for (std::size_t c = 0; c < m.chunks.size(); ++c) {
    leaves.push_back(dag.add(m.chunks[c].embed, {doc_tasks[m.chunks[c].doc]}));
    qgen_tasks[c] = dag.add(m.chunks[c].qgen, {doc_tasks[m.chunks[c].doc]});
  }
  // Fused generate+grade+extract+embed per (record, mode), released by
  // the record's question task; the three lanes interleave freely.
  for (const auto& r : m.records) {
    for (std::size_t mode = 0; mode < static_cast<std::size_t>(trace::kTraceModeCount); ++mode) {
      const double cost =
          r.generate[mode] *
          (1.0 + m.grade_fraction + m.extract_fraction + kTraceEmbedFraction);
      leaves.push_back(dag.add(cost, {qgen_tasks[r.chunk]}));
    }
  }
  for (const std::uint32_t q : qgen_tasks) leaves.push_back(q);

  // One serial merge (stats, ordered moves, store inserts), then the
  // four index builds run as overlapping tasks.
  const double rows =
      n_chunks + n_records * static_cast<double>(trace::kTraceModeCount);
  const std::uint32_t merge = dag.add(
      (n_docs + n_chunks) * m.merge_cost + rows * m.insert_cost, leaves);
  dag.add(n_chunks * m.build_cost, {merge});
  for (std::size_t mode = 0; mode < static_cast<std::size_t>(trace::kTraceModeCount); ++mode) {
    dag.add(n_records * m.build_cost, {merge});
  }
  return run_schedule(dag.tasks(), workers);
}

}  // namespace

ScheduleModel schedule_model_from(const PipelineContext& ctx) {
  ScheduleModel model;
  const auto& docs = ctx.corpus().documents;
  model.docs.resize(docs.size());

  std::unordered_map<std::string_view, std::uint32_t> doc_index;
  for (std::size_t i = 0; i < docs.size(); ++i) {
    doc_index.emplace(docs[i].doc_id, static_cast<std::uint32_t>(i));
    model.docs[i].parse =
        static_cast<double>(docs[i].bytes.size()) / 2000.0 * jitter(i);
  }

  std::unordered_map<std::string_view, std::uint32_t> chunk_index;
  model.chunks.resize(ctx.chunks().size());
  for (std::size_t c = 0; c < ctx.chunks().size(); ++c) {
    const auto& ch = ctx.chunks()[c];
    chunk_index.emplace(ch.chunk_id, static_cast<std::uint32_t>(c));
    auto& work = model.chunks[c];
    const auto it = doc_index.find(ch.doc_id);
    work.doc = it != doc_index.end() ? it->second : 0;
    const double words = static_cast<double>(ch.word_count);
    work.embed = words / 150.0 * jitter(0x10000u + c);
    work.qgen = (0.4 + words / 300.0) * jitter(0x20000u + c);
    // Semantic chunking embeds every sentence of the document; charge
    // the document's chunking cost from its chunks' word mass.
    model.docs[work.doc].chunk += words / 250.0 * jitter(0x30000u + c);
    model.docs[work.doc].chunks.push_back(static_cast<std::uint32_t>(c));
  }

  model.records.resize(ctx.benchmark().size());
  for (std::size_t r = 0; r < ctx.benchmark().size(); ++r) {
    const auto& record = ctx.benchmark()[r];
    auto& work = model.records[r];
    const auto it = chunk_index.find(record.chunk_id);
    if (it != chunk_index.end()) {
      work.chunk = it->second;
      model.chunks[it->second].accepted = true;
    }
    const double base = static_cast<double>(record.question.size()) / 360.0;
    for (std::size_t mode = 0; mode < static_cast<std::size_t>(trace::kTraceModeCount); ++mode) {
      work.generate[mode] =
          base * kModeScale[mode] * jitter(0x40000u + r * 3 + mode);
    }
  }
  return model;
}

double simulated_makespan(const ScheduleModel& model, ExecutionMode mode,
                          std::size_t workers) {
  return mode == ExecutionMode::kStaged ? staged_makespan(model, workers)
                                        : overlapped_makespan(model, workers);
}

// --- evaluation-grid simulation ----------------------------------------------

namespace {

/// Stable jitter key for the answer task of (model, condition, record);
/// shared by both grid modes so their total work is identical.
double answer_jitter(std::size_t m, std::size_t ci, std::size_t i,
                     std::size_t c_count, std::size_t n) {
  return jitter(0x50000u + ((m * c_count + ci) * n + i));
}

double per_cell_grid_makespan(const EvalGridModel& m, std::size_t workers) {
  DagBuilder dag;
  const std::size_t c_count = m.retrieval.size();
  const std::size_t n = m.answer.size();
  // The seed's serial double loop: each cell's fans are internally
  // parallel, but cell k+1 cannot start until cell k's merge finished
  // (and every retrieval-active cell re-runs its own retrieval fan).
  std::vector<std::uint32_t> prev;
  for (std::size_t mi = 0; mi < m.model_count; ++mi) {
    for (std::size_t ci = 0; ci < c_count; ++ci) {
      std::vector<std::uint32_t> gate = prev;
      if (!m.retrieval[ci].empty()) {
        std::vector<std::uint32_t> ret_tasks;
        ret_tasks.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
          ret_tasks.push_back(dag.add(m.retrieval[ci][i], prev));
        }
        gate = {dag.add(static_cast<double>(n) * m.merge_cost, ret_tasks)};
      }
      std::vector<std::uint32_t> answer_tasks;
      answer_tasks.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        answer_tasks.push_back(dag.add(
            m.answer[i] * answer_jitter(mi, ci, i, c_count, n), gate));
      }
      prev = {dag.add(static_cast<double>(n) * m.merge_cost, answer_tasks)};
    }
  }
  return run_schedule(dag.tasks(), workers);
}

double shared_plan_grid_makespan(const EvalGridModel& m, std::size_t workers) {
  DagBuilder dag;
  const std::size_t c_count = m.retrieval.size();
  const std::size_t n = m.answer.size();
  // One retrieval fan per condition; every model's answer tasks for that
  // condition depend only on the shared plan, so the whole grid runs as
  // one dataflow with a single final merge.
  std::vector<std::vector<std::uint32_t>> gates(c_count);
  for (std::size_t ci = 0; ci < c_count; ++ci) {
    if (m.retrieval[ci].empty()) continue;
    std::vector<std::uint32_t> ret_tasks;
    ret_tasks.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      ret_tasks.push_back(dag.add(m.retrieval[ci][i]));
    }
    gates[ci] = {dag.add(static_cast<double>(n) * m.merge_cost, ret_tasks)};
  }
  std::vector<std::uint32_t> answer_tasks;
  answer_tasks.reserve(m.model_count * c_count * n);
  for (std::size_t mi = 0; mi < m.model_count; ++mi) {
    for (std::size_t ci = 0; ci < c_count; ++ci) {
      for (std::size_t i = 0; i < n; ++i) {
        answer_tasks.push_back(dag.add(
            m.answer[i] * answer_jitter(mi, ci, i, c_count, n), gates[ci]));
      }
    }
  }
  dag.add(static_cast<double>(m.model_count * c_count) * m.merge_cost,
          answer_tasks);
  return run_schedule(dag.tasks(), workers);
}

/// Does `condition` retrieve against a non-empty store in `ctx`?
bool grid_condition_active(const PipelineContext& ctx, rag::Condition c) {
  switch (c) {
    case rag::Condition::kBaseline:
      return false;
    case rag::Condition::kChunks:
      return ctx.chunk_store().size() > 0;
    case rag::Condition::kTraceDetailed:
      return ctx.trace_store(trace::TraceMode::kDetailed).size() > 0;
    case rag::Condition::kTraceFocused:
      return ctx.trace_store(trace::TraceMode::kFocused).size() > 0;
    case rag::Condition::kTraceEfficient:
      return ctx.trace_store(trace::TraceMode::kEfficient).size() > 0;
  }
  return false;
}

}  // namespace

EvalGridModel eval_grid_model_from(
    const PipelineContext& ctx, const std::vector<qgen::McqRecord>& records,
    std::size_t model_count, const std::vector<rag::Condition>& conditions) {
  EvalGridModel model;
  model.model_count = model_count;
  const std::size_t n = records.size();

  model.answer.resize(n);
  double answer_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    model.answer[i] = (0.3 + static_cast<double>(records[i].question.size()) /
                                360.0) *
                      jitter(0x60000u + i);
    answer_sum += model.answer[i];
  }

  model.retrieval.resize(conditions.size());
  for (std::size_t ci = 0; ci < conditions.size(); ++ci) {
    if (!grid_condition_active(ctx, conditions[ci])) continue;
    auto& costs = model.retrieval[ci];
    costs.resize(n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::string query = ctx.rag().query_for(records[i], conditions[ci]);
      costs[i] = (0.2 + static_cast<double>(query.size()) / 300.0) *
                 jitter(0x70000u + ci * n + i);
      sum += costs[i];
    }
    // Normalize: one condition's retrieval fan costs
    // retrieval_answer_ratio x one model's answer fan, keeping the
    // query-size-driven shape.
    if (sum > 0.0) {
      const double scale = model.retrieval_answer_ratio * answer_sum / sum;
      for (double& c : costs) c *= scale;
    }
  }
  return model;
}

double simulated_grid_makespan(const EvalGridModel& model, EvalGridMode mode,
                               std::size_t workers) {
  return mode == EvalGridMode::kPerCell
             ? per_cell_grid_makespan(model, workers)
             : shared_plan_grid_makespan(model, workers);
}

}  // namespace mcqa::core
