#include "core/executor.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <queue>
#include <unordered_map>
#include <utility>

#include "parallel/dag.hpp"
#include "parallel/thread_pool.hpp"
#include "util/hash.hpp"

namespace mcqa::core {

// --- execution plane ---------------------------------------------------------

namespace {

/// Per-trace slot filled by a fused generate+grade+embed task.
struct TraceSlot {
  trace::TraceRecord trace;
  std::string retrieval;
  embed::Vector vector;
};

/// Everything one document's task tree produces, slot-indexed so
/// concurrent writers never touch the same element.
struct DocSlots {
  parse::ParseOutcome outcome;
  std::vector<chunk::Chunk> chunks;
  std::vector<embed::Vector> vectors;
  std::vector<std::optional<qgen::McqRecord>> records;
  std::vector<std::array<std::unique_ptr<TraceSlot>, trace::kTraceModeCount>>
      traces;
};

}  // namespace

void OverlappedBuilder::run(parallel::ThreadPool& pool) {
  PipelineContext& ctx = ctx_;
  const PipelineConfig& config = ctx.config_;
  const embed::Embedder& embedder = ctx.active_embedder();

  const parse::AdaptiveParser parser(config.parser);
  std::unique_ptr<chunk::Chunker> chunker;
  if (config.semantic_chunking) {
    chunker = std::make_unique<chunk::SemanticChunker>(embedder,
                                                       config.chunker);
  } else {
    chunker = std::make_unique<chunk::FixedSizeChunker>(config.chunker);
  }
  const qgen::BenchmarkBuilder builder(*ctx.teacher_, config.builder);
  const trace::TraceGenerator tracer(*ctx.teacher_, config.tracegen);

  const auto& docs = ctx.corpus_.documents;
  std::vector<DocSlots> slots(docs.size());
  qgen::FunnelCounters funnel;
  std::array<std::atomic<std::size_t>, trace::kTraceModeCount> graded{};
  std::array<std::atomic<std::size_t>, trace::kTraceModeCount> correct{};

  // The dataflow: one task per document fans out per-chunk embed and
  // question tasks as soon as its chunks exist; each accepted record
  // fans out its three trace-mode tasks.  Tasks only write their own
  // slot and only spawn — never block — so the group drains without
  // any cross-task waiting.
  parallel::TaskGroup group(pool);
  for (std::size_t i = 0; i < docs.size(); ++i) {
    group.spawn([&, i]() {
      DocSlots& slot = slots[i];
      slot.outcome = parser.parse(docs[i].bytes);
      if (!slot.outcome.ok) return;
      // Provenance fallback must precede chunking: chunk ids derive
      // from the doc id (same order of operations as the staged build).
      if (slot.outcome.document.doc_id.empty()) {
        slot.outcome.document.doc_id = docs[i].doc_id;
      }
      slot.chunks = chunker->chunk(slot.outcome.document);
      const std::size_t n = slot.chunks.size();
      slot.vectors.resize(n);
      slot.records.resize(n);
      slot.traces.resize(n);
      for (std::size_t c = 0; c < n; ++c) {
        group.spawn([&, i, c]() {
          DocSlots& s = slots[i];
          s.vectors[c] = embedder.embed(s.chunks[c].text);
        });
        group.spawn([&, i, c]() {
          DocSlots& s = slots[i];
          s.records[c] = builder.build_one(s.chunks[c], funnel);
          if (!s.records[c].has_value()) return;
          for (int m = 0; m < trace::kTraceModeCount; ++m) {
            group.spawn([&, i, c, m]() {
              DocSlots& sm = slots[i];
              auto out = std::make_unique<TraceSlot>();
              out->trace = tracer.generate(*sm.records[c],
                                           static_cast<trace::TraceMode>(m));
              trace::grade_trace(out->trace);
              const auto mi = static_cast<std::size_t>(m);
              graded[mi].fetch_add(1, std::memory_order_relaxed);
              if (!out->trace.grading.is_correct) return;
              correct[mi].fetch_add(1, std::memory_order_relaxed);
              out->retrieval = out->trace.retrieval_text();
              out->vector = embedder.embed(out->retrieval);
              sm.traces[c][mi] = std::move(out);
            });
          }
        });
      }
    });
  }
  group.wait();

  // --- merge, in (document, chunk, mode) order -------------------------------
  // Identical traversal to the staged build's per-stage merges, so the
  // artifacts come out byte-for-byte the same.
  PipelineStats& stats = ctx.stats_;
  std::size_t ok_docs = 0;
  std::size_t total_chunks = 0;
  for (const auto& slot : slots) {
    ok_docs += slot.outcome.ok ? 1 : 0;
    total_chunks += slot.chunks.size();
  }
  ctx.parsed_.reserve(ok_docs);
  ctx.chunks_.reserve(total_chunks);

  for (std::size_t i = 0; i < slots.size(); ++i) {
    auto& outcome = slots[i].outcome;
    ++stats.routing.total;
    stats.routing.compute_cost += outcome.compute_cost;
    stats.routing.always_accurate_cost += 8.0;  // AccurateSpdfParser::cost
    if (outcome.route == "fast") ++stats.routing.fast_routed;
    else if (outcome.route == "accurate") ++stats.routing.accurate_routed;
    else if (outcome.route == "fast->accurate") ++stats.routing.escalated;
    else if (outcome.route == "markdown" || outcome.route == "text")
      ++stats.routing.non_spdf;
    if (!outcome.ok) {
      ++stats.routing.failed;
      ++stats.parse_failures;
      continue;
    }
    ctx.parsed_.push_back(std::move(outcome.document));
  }
  stats.documents = docs.size();

  std::vector<std::string> chunk_ids;
  std::vector<std::string> chunk_texts;
  std::vector<embed::Vector> chunk_vectors;
  chunk_ids.reserve(total_chunks);
  chunk_texts.reserve(total_chunks);
  chunk_vectors.reserve(total_chunks);
  for (auto& slot : slots) {
    for (std::size_t c = 0; c < slot.chunks.size(); ++c) {
      chunk_ids.push_back(slot.chunks[c].chunk_id);
      chunk_texts.push_back(slot.chunks[c].text);
      chunk_vectors.push_back(std::move(slot.vectors[c]));
      ctx.chunks_.push_back(std::move(slot.chunks[c]));
    }
  }
  stats.chunks = ctx.chunks_.size();

  ctx.chunk_store_ =
      std::make_unique<index::VectorStore>(embedder, config.index_kind);
  ctx.chunk_store_->add_precomputed(std::move(chunk_ids),
                                    std::move(chunk_texts), chunk_vectors);

  for (auto& slot : slots) {
    for (auto& record : slot.records) {
      if (record.has_value()) ctx.benchmark_.push_back(std::move(*record));
    }
  }
  stats.funnel.chunks = total_chunks;
  stats.funnel.candidates = funnel.candidates.load();
  stats.funnel.rejected_no_fact = funnel.rejected_no_fact.load();
  stats.funnel.rejected_quality = funnel.rejected_quality.load();
  stats.funnel.rejected_relevance = funnel.rejected_relevance.load();
  stats.funnel.accepted = ctx.benchmark_.size();

  for (int m = 0; m < trace::kTraceModeCount; ++m) {
    const auto mi = static_cast<std::size_t>(m);
    std::vector<std::string> ids;
    std::vector<std::string> texts;
    std::vector<embed::Vector> vectors;
    ids.reserve(graded[mi].load());
    texts.reserve(graded[mi].load());
    vectors.reserve(graded[mi].load());
    for (auto& slot : slots) {
      for (auto& lanes : slot.traces) {
        if (!lanes[mi]) continue;
        ids.push_back(lanes[mi]->trace.trace_id);
        texts.push_back(std::move(lanes[mi]->retrieval));
        vectors.push_back(std::move(lanes[mi]->vector));
        ctx.traces_[mi].push_back(std::move(lanes[mi]->trace));
      }
    }
    stats.traces_per_mode[mi] = ctx.traces_[mi].size();
    const std::size_t g = graded[mi].load();
    stats.trace_grading_accuracy[mi] =
        g == 0 ? 0.0
               : static_cast<double>(correct[mi].load()) /
                     static_cast<double>(g);
    ctx.trace_stores_[mi] =
        std::make_unique<index::VectorStore>(embedder, config.index_kind);
    ctx.trace_stores_[mi]->add_precomputed(std::move(ids), std::move(texts),
                                           vectors);
  }

  // The four index builds are independent of each other; overlap them.
  parallel::TaskGroup builds(pool);
  builds.spawn([&ctx]() { ctx.chunk_store_->build(); });
  for (int m = 0; m < trace::kTraceModeCount; ++m) {
    builds.spawn([&ctx, m]() {
      ctx.trace_stores_[static_cast<std::size_t>(m)]->build();
    });
  }
  builds.wait();
  stats.embedding_bytes = ctx.chunk_store_->embedding_bytes();
}

// --- measurement plane -------------------------------------------------------

namespace {

/// Cost heterogeneity: deterministic per-item multiplier in [0.85, 1.15).
double jitter(std::uint64_t key) {
  return 0.85 + 0.3 * static_cast<double>(util::fnv1a64(key) % 1000u) / 1000.0;
}

/// Trace-mode cost scale: detailed writes option-by-option analyses,
/// efficient a compact summary.
constexpr std::array<double, trace::kTraceModeCount> kModeScale = {1.7, 1.25,
                                                                   0.85};
/// Trace retrieval-text embed cost relative to its generation cost.
constexpr double kTraceEmbedFraction = 0.6;

struct SimTask {
  double cost = 0.0;
  std::vector<std::uint32_t> deps;
};

/// Deterministic greedy list schedule: ready tasks are served in
/// (release time, task id) order to the earliest-free worker.
double run_schedule(const std::vector<SimTask>& tasks, std::size_t workers) {
  const std::size_t n = tasks.size();
  std::vector<std::uint32_t> indeg(n, 0);
  std::vector<std::vector<std::uint32_t>> dependents(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::uint32_t d : tasks[i].deps) {
      dependents[d].push_back(static_cast<std::uint32_t>(i));
      ++indeg[i];
    }
  }
  std::vector<double> release(n, 0.0);
  using Entry = std::pair<double, std::uint32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) ready.push({0.0, static_cast<std::uint32_t>(i)});
  }
  std::priority_queue<double, std::vector<double>, std::greater<>> free;
  for (std::size_t w = 0; w < std::max<std::size_t>(workers, 1); ++w) {
    free.push(0.0);
  }
  double makespan = 0.0;
  while (!ready.empty()) {
    const auto [rel, id] = ready.top();
    ready.pop();
    const double worker = free.top();
    free.pop();
    const double finish = std::max(rel, worker) + tasks[id].cost;
    free.push(finish);
    makespan = std::max(makespan, finish);
    for (const std::uint32_t d : dependents[id]) {
      release[d] = std::max(release[d], finish);
      if (--indeg[d] == 0) ready.push({release[d], d});
    }
  }
  return makespan;
}

class DagBuilder {
 public:
  std::uint32_t add(double cost, std::vector<std::uint32_t> deps = {}) {
    tasks_.push_back(SimTask{cost, std::move(deps)});
    return static_cast<std::uint32_t>(tasks_.size() - 1);
  }
  const std::vector<SimTask>& tasks() const { return tasks_; }

 private:
  std::vector<SimTask> tasks_;
};

double sum_generate(const ScheduleModel& m, std::size_t mode) {
  double s = 0.0;
  for (const auto& r : m.records) s += r.generate[mode];
  return s;
}

double staged_makespan(const ScheduleModel& m, std::size_t workers) {
  DagBuilder dag;
  const double n_docs = static_cast<double>(m.docs.size());
  const double n_chunks = static_cast<double>(m.chunks.size());
  const double n_records = static_cast<double>(m.records.size());

  // Stage 1: parse fan-out, serial outcome merge.
  std::vector<std::uint32_t> parse_tasks;
  for (const auto& d : m.docs) parse_tasks.push_back(dag.add(d.parse));
  const std::uint32_t b1 = dag.add(n_docs * m.merge_cost, parse_tasks);

  // Stage 2: chunk fan-out, serial chunk merge.
  std::vector<std::uint32_t> chunk_tasks;
  for (const auto& d : m.docs) {
    if (d.chunk > 0.0) chunk_tasks.push_back(dag.add(d.chunk, {b1}));
  }
  const std::uint32_t b2 = dag.add(n_chunks * m.merge_cost, chunk_tasks);

  // Stage 3: embed fan-out, serial store insert + index build.
  std::vector<std::uint32_t> embed_tasks;
  for (const auto& c : m.chunks) embed_tasks.push_back(dag.add(c.embed, {b2}));
  const std::uint32_t b3 =
      dag.add(n_chunks * (m.insert_cost + m.build_cost), embed_tasks);

  // Stage 4: question fan-out, serial record collection.
  std::vector<std::uint32_t> qgen_tasks;
  for (const auto& c : m.chunks) qgen_tasks.push_back(dag.add(c.qgen, {b3}));
  std::uint32_t prev = dag.add(n_chunks * m.merge_cost, qgen_tasks);

  // Stage 5: the three mode lanes, strictly sequential; grading and
  // retrieval-text extraction are serial loops between the parallel
  // generate and embed fans (mirroring grade_all + the ids/texts loop).
  for (std::size_t mode = 0; mode < static_cast<std::size_t>(trace::kTraceModeCount); ++mode) {
    std::vector<std::uint32_t> gen_tasks;
    for (const auto& r : m.records) {
      gen_tasks.push_back(dag.add(r.generate[mode], {prev}));
    }
    const double lane_work = sum_generate(m, mode);
    const std::uint32_t grade =
        dag.add(lane_work * m.grade_fraction, gen_tasks);
    const std::uint32_t extract =
        dag.add(lane_work * m.extract_fraction, {grade});
    std::vector<std::uint32_t> trace_embed_tasks;
    for (const auto& r : m.records) {
      trace_embed_tasks.push_back(
          dag.add(r.generate[mode] * kTraceEmbedFraction, {extract}));
    }
    prev = dag.add(n_records * (m.insert_cost + m.build_cost),
                   trace_embed_tasks);
  }
  return run_schedule(dag.tasks(), workers);
}

double overlapped_makespan(const ScheduleModel& m, std::size_t workers) {
  DagBuilder dag;
  const double n_docs = static_cast<double>(m.docs.size());
  const double n_chunks = static_cast<double>(m.chunks.size());
  const double n_records = static_cast<double>(m.records.size());

  // Fused parse+chunk per document.
  std::vector<std::uint32_t> doc_tasks(m.docs.size());
  for (std::size_t d = 0; d < m.docs.size(); ++d) {
    doc_tasks[d] = dag.add(m.docs[d].parse + m.docs[d].chunk);
  }
  // Per-chunk embed and question tasks, released by their document.
  std::vector<std::uint32_t> qgen_tasks(m.chunks.size());
  std::vector<std::uint32_t> leaves;
  for (std::size_t c = 0; c < m.chunks.size(); ++c) {
    leaves.push_back(dag.add(m.chunks[c].embed, {doc_tasks[m.chunks[c].doc]}));
    qgen_tasks[c] = dag.add(m.chunks[c].qgen, {doc_tasks[m.chunks[c].doc]});
  }
  // Fused generate+grade+extract+embed per (record, mode), released by
  // the record's question task; the three lanes interleave freely.
  for (const auto& r : m.records) {
    for (std::size_t mode = 0; mode < static_cast<std::size_t>(trace::kTraceModeCount); ++mode) {
      const double cost =
          r.generate[mode] *
          (1.0 + m.grade_fraction + m.extract_fraction + kTraceEmbedFraction);
      leaves.push_back(dag.add(cost, {qgen_tasks[r.chunk]}));
    }
  }
  for (const std::uint32_t q : qgen_tasks) leaves.push_back(q);

  // One serial merge (stats, ordered moves, store inserts), then the
  // four index builds run as overlapping tasks.
  const double rows =
      n_chunks + n_records * static_cast<double>(trace::kTraceModeCount);
  const std::uint32_t merge = dag.add(
      (n_docs + n_chunks) * m.merge_cost + rows * m.insert_cost, leaves);
  dag.add(n_chunks * m.build_cost, {merge});
  for (std::size_t mode = 0; mode < static_cast<std::size_t>(trace::kTraceModeCount); ++mode) {
    dag.add(n_records * m.build_cost, {merge});
  }
  return run_schedule(dag.tasks(), workers);
}

}  // namespace

ScheduleModel schedule_model_from(const PipelineContext& ctx) {
  ScheduleModel model;
  const auto& docs = ctx.corpus().documents;
  model.docs.resize(docs.size());

  std::unordered_map<std::string_view, std::uint32_t> doc_index;
  for (std::size_t i = 0; i < docs.size(); ++i) {
    doc_index.emplace(docs[i].doc_id, static_cast<std::uint32_t>(i));
    model.docs[i].parse =
        static_cast<double>(docs[i].bytes.size()) / 2000.0 * jitter(i);
  }

  std::unordered_map<std::string_view, std::uint32_t> chunk_index;
  model.chunks.resize(ctx.chunks().size());
  for (std::size_t c = 0; c < ctx.chunks().size(); ++c) {
    const auto& ch = ctx.chunks()[c];
    chunk_index.emplace(ch.chunk_id, static_cast<std::uint32_t>(c));
    auto& work = model.chunks[c];
    const auto it = doc_index.find(ch.doc_id);
    work.doc = it != doc_index.end() ? it->second : 0;
    const double words = static_cast<double>(ch.word_count);
    work.embed = words / 150.0 * jitter(0x10000u + c);
    work.qgen = (0.4 + words / 300.0) * jitter(0x20000u + c);
    // Semantic chunking embeds every sentence of the document; charge
    // the document's chunking cost from its chunks' word mass.
    model.docs[work.doc].chunk += words / 250.0 * jitter(0x30000u + c);
    model.docs[work.doc].chunks.push_back(static_cast<std::uint32_t>(c));
  }

  model.records.resize(ctx.benchmark().size());
  for (std::size_t r = 0; r < ctx.benchmark().size(); ++r) {
    const auto& record = ctx.benchmark()[r];
    auto& work = model.records[r];
    const auto it = chunk_index.find(record.chunk_id);
    if (it != chunk_index.end()) {
      work.chunk = it->second;
      model.chunks[it->second].accepted = true;
    }
    const double base = static_cast<double>(record.question.size()) / 360.0;
    for (std::size_t mode = 0; mode < static_cast<std::size_t>(trace::kTraceModeCount); ++mode) {
      work.generate[mode] =
          base * kModeScale[mode] * jitter(0x40000u + r * 3 + mode);
    }
  }
  return model;
}

double simulated_makespan(const ScheduleModel& model, ExecutionMode mode,
                          std::size_t workers) {
  return mode == ExecutionMode::kStaged ? staged_makespan(model, workers)
                                        : overlapped_makespan(model, workers);
}

// --- evaluation-grid simulation ----------------------------------------------

namespace {

/// Stable jitter key for the answer task of (model, condition, record);
/// shared by both grid modes so their total work is identical.
double answer_jitter(std::size_t m, std::size_t ci, std::size_t i,
                     std::size_t c_count, std::size_t n) {
  return jitter(0x50000u + ((m * c_count + ci) * n + i));
}

double per_cell_grid_makespan(const EvalGridModel& m, std::size_t workers) {
  DagBuilder dag;
  const std::size_t c_count = m.retrieval.size();
  const std::size_t n = m.answer.size();
  // The seed's serial double loop: each cell's fans are internally
  // parallel, but cell k+1 cannot start until cell k's merge finished
  // (and every retrieval-active cell re-runs its own retrieval fan).
  std::vector<std::uint32_t> prev;
  for (std::size_t mi = 0; mi < m.model_count; ++mi) {
    for (std::size_t ci = 0; ci < c_count; ++ci) {
      std::vector<std::uint32_t> gate = prev;
      if (!m.retrieval[ci].empty()) {
        std::vector<std::uint32_t> ret_tasks;
        ret_tasks.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
          ret_tasks.push_back(dag.add(m.retrieval[ci][i], prev));
        }
        gate = {dag.add(static_cast<double>(n) * m.merge_cost, ret_tasks)};
      }
      std::vector<std::uint32_t> answer_tasks;
      answer_tasks.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        answer_tasks.push_back(dag.add(
            m.answer[i] * answer_jitter(mi, ci, i, c_count, n), gate));
      }
      prev = {dag.add(static_cast<double>(n) * m.merge_cost, answer_tasks)};
    }
  }
  return run_schedule(dag.tasks(), workers);
}

double shared_plan_grid_makespan(const EvalGridModel& m, std::size_t workers) {
  DagBuilder dag;
  const std::size_t c_count = m.retrieval.size();
  const std::size_t n = m.answer.size();
  // One retrieval fan per condition; every model's answer tasks for that
  // condition depend only on the shared plan, so the whole grid runs as
  // one dataflow with a single final merge.
  std::vector<std::vector<std::uint32_t>> gates(c_count);
  for (std::size_t ci = 0; ci < c_count; ++ci) {
    if (m.retrieval[ci].empty()) continue;
    std::vector<std::uint32_t> ret_tasks;
    ret_tasks.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      ret_tasks.push_back(dag.add(m.retrieval[ci][i]));
    }
    gates[ci] = {dag.add(static_cast<double>(n) * m.merge_cost, ret_tasks)};
  }
  std::vector<std::uint32_t> answer_tasks;
  answer_tasks.reserve(m.model_count * c_count * n);
  for (std::size_t mi = 0; mi < m.model_count; ++mi) {
    for (std::size_t ci = 0; ci < c_count; ++ci) {
      for (std::size_t i = 0; i < n; ++i) {
        answer_tasks.push_back(dag.add(
            m.answer[i] * answer_jitter(mi, ci, i, c_count, n), gates[ci]));
      }
    }
  }
  dag.add(static_cast<double>(m.model_count * c_count) * m.merge_cost,
          answer_tasks);
  return run_schedule(dag.tasks(), workers);
}

/// Does `condition` retrieve against a non-empty store in `ctx`?
bool grid_condition_active(const PipelineContext& ctx, rag::Condition c) {
  switch (c) {
    case rag::Condition::kBaseline:
      return false;
    case rag::Condition::kChunks:
      return ctx.chunk_store().size() > 0;
    case rag::Condition::kTraceDetailed:
      return ctx.trace_store(trace::TraceMode::kDetailed).size() > 0;
    case rag::Condition::kTraceFocused:
      return ctx.trace_store(trace::TraceMode::kFocused).size() > 0;
    case rag::Condition::kTraceEfficient:
      return ctx.trace_store(trace::TraceMode::kEfficient).size() > 0;
  }
  return false;
}

}  // namespace

EvalGridModel eval_grid_model_from(
    const PipelineContext& ctx, const std::vector<qgen::McqRecord>& records,
    std::size_t model_count, const std::vector<rag::Condition>& conditions) {
  EvalGridModel model;
  model.model_count = model_count;
  const std::size_t n = records.size();

  model.answer.resize(n);
  double answer_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    model.answer[i] = (0.3 + static_cast<double>(records[i].question.size()) /
                                360.0) *
                      jitter(0x60000u + i);
    answer_sum += model.answer[i];
  }

  model.retrieval.resize(conditions.size());
  for (std::size_t ci = 0; ci < conditions.size(); ++ci) {
    if (!grid_condition_active(ctx, conditions[ci])) continue;
    auto& costs = model.retrieval[ci];
    costs.resize(n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::string query = ctx.rag().query_for(records[i], conditions[ci]);
      costs[i] = (0.2 + static_cast<double>(query.size()) / 300.0) *
                 jitter(0x70000u + ci * n + i);
      sum += costs[i];
    }
    // Normalize: one condition's retrieval fan costs
    // retrieval_answer_ratio x one model's answer fan, keeping the
    // query-size-driven shape.
    if (sum > 0.0) {
      const double scale = model.retrieval_answer_ratio * answer_sum / sum;
      for (double& c : costs) c *= scale;
    }
  }
  return model;
}

double simulated_grid_makespan(const EvalGridModel& model, EvalGridMode mode,
                               std::size_t workers) {
  return mode == EvalGridMode::kPerCell
             ? per_cell_grid_makespan(model, workers)
             : shared_plan_grid_makespan(model, workers);
}

}  // namespace mcqa::core
