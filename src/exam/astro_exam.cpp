#include "exam/astro_exam.hpp"

#include <algorithm>
#include <cmath>

#include "corpus/realization.hpp"
#include "util/hash.hpp"

namespace mcqa::exam {

std::vector<qgen::McqRecord> Exam::usable() const {
  std::vector<qgen::McqRecord> out;
  for (const auto& q : questions) {
    if (!q.multimodal) out.push_back(q.record);
  }
  return out;
}

std::vector<qgen::McqRecord> Exam::no_math_truth() const {
  std::vector<qgen::McqRecord> out;
  for (const auto& q : questions) {
    if (!q.multimodal && !q.math) out.push_back(q.record);
  }
  return out;
}

AstroExamBuilder::AstroExamBuilder(const corpus::KnowledgeBase& kb,
                                   ExamConfig config)
    : kb_(kb), config_(config) {}

Exam AstroExamBuilder::build(
    const std::unordered_set<corpus::FactId>& covered_facts) const {
  util::Rng rng(config_.seed);

  // Partition KB facts into the pools the sampler draws from.
  std::vector<corpus::FactId> covered;
  std::vector<corpus::FactId> uncovered;
  std::vector<corpus::FactId> math_capable;
  for (const auto& f : kb_.facts()) {
    if (f.math) {
      math_capable.push_back(f.id);
    } else if (covered_facts.contains(f.id)) {
      covered.push_back(f.id);
    } else {
      uncovered.push_back(f.id);
    }
  }

  Exam exam;
  const std::size_t usable =
      config_.total_questions - config_.multimodal_questions;
  const auto math_target =
      static_cast<std::size_t>(std::llround(config_.math_fraction *
                                            static_cast<double>(usable)));

  std::size_t serial = 0;
  const auto make_question = [&](corpus::FactId fid, bool want_math) {
    const corpus::Fact& fact = kb_.fact(fid);
    util::Rng qrng = rng.fork(util::hash_combine(fid, serial));
    corpus::QuestionRealization real = corpus::realize_question(
        kb_, fact, qrng, config_.options - 1);

    ExamQuestion q;
    q.math = real.math;
    (void)want_math;

    qgen::McqRecord& r = q.record;
    r.record_id = "astro_" + std::to_string(serial++);
    r.stem = std::move(real.stem);
    r.options.push_back(real.correct);
    for (auto& d : real.distractors) {
      if (r.options.size() >= config_.options) break;
      r.options.push_back(std::move(d));
    }
    std::vector<std::size_t> order(r.options.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    qrng.shuffle(order);
    std::vector<std::string> shuffled(r.options.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      shuffled[i] = std::move(r.options[order[i]]);
      if (order[i] == 0) r.correct_index = static_cast<int>(i);
    }
    r.options = std::move(shuffled);
    r.answer = r.options[static_cast<std::size_t>(r.correct_index)];
    r.question = qgen::McqRecord::render_question(r.stem, r.options);
    r.fact = fid;
    r.math = q.math;
    r.fact_importance = fact.importance;
    r.key_principle = std::move(real.key_principle);
    r.ambiguity = config_.ambiguity;
    r.exam_item = true;
    r.sub_domain = std::string(
        corpus::sub_domain_of_topic(kb_.topic(fact.topic).name));
    r.path = "exam/astro_2023_study_guide.pdf";
    r.chunk_id = "exam";
    r.type = "multiple-choice";
    return q;
  };

  // Math questions first (sampling math-capable facts with replacement;
  // each draw realizes different numbers).
  std::size_t math_made = 0;
  while (math_made < math_target && !math_capable.empty()) {
    const corpus::FactId fid = math_capable[rng.bounded(
        static_cast<std::uint32_t>(math_capable.size()))];
    ExamQuestion q = make_question(fid, /*want_math=*/true);
    if (!q.math) continue;  // quantity fact realized as recall; resample
    exam.questions.push_back(std::move(q));
    ++math_made;
  }

  // Non-math questions: covered vs uncovered mix, without replacement
  // until a pool runs dry.
  util::Rng shuffle_rng = rng.fork("pools");
  shuffle_rng.shuffle(covered);
  shuffle_rng.shuffle(uncovered);
  std::size_t ci = 0;
  std::size_t ui = 0;
  while (exam.questions.size() < usable) {
    const bool pick_covered =
        (ci < covered.size()) &&
        (ui >= uncovered.size() || rng.chance(config_.covered_fraction));
    corpus::FactId fid = 0;
    if (pick_covered) {
      fid = covered[ci++];
    } else if (ui < uncovered.size()) {
      fid = uncovered[ui++];
    } else if (ci < covered.size()) {
      fid = covered[ci++];
    } else {
      // Both pools exhausted (tiny KB): reuse covered facts.
      fid = covered.empty()
                ? math_capable[rng.bounded(
                      static_cast<std::uint32_t>(math_capable.size()))]
                : covered[rng.bounded(
                      static_cast<std::uint32_t>(covered.size()))];
    }
    ExamQuestion q = make_question(fid, /*want_math=*/false);
    if (q.math && math_made >= math_target) continue;  // keep the ratio
    if (q.math) ++math_made;
    exam.questions.push_back(std::move(q));
  }

  // Interleave math/non-math deterministically, then append the two
  // multimodal items.
  shuffle_rng.shuffle(exam.questions);
  for (std::size_t m = 0; m < config_.multimodal_questions; ++m) {
    const corpus::FactId fid =
        kb_.facts()[rng.bounded(static_cast<std::uint32_t>(kb_.facts().size()))]
            .id;
    ExamQuestion q = make_question(fid, false);
    q.multimodal = true;
    q.record.stem =
        "Refer to the survival-curve figure shown. " + q.record.stem;
    q.record.question =
        qgen::McqRecord::render_question(q.record.stem, q.record.options);
    exam.questions.push_back(std::move(q));
  }
  return exam;
}

bool MathClassifier::classify(const qgen::McqRecord& record,
                              bool truth_math) const {
  util::Rng rng(util::hash_combine(seed_, util::fnv1a64(record.record_id)));
  return rng.chance(accuracy_) ? truth_math : !truth_math;
}

std::vector<qgen::McqRecord> MathClassifier::no_math_subset(
    const Exam& exam) const {
  std::vector<qgen::McqRecord> out;
  for (const auto& q : exam.questions) {
    if (q.multimodal) continue;
    if (!classify(q.record, q.math)) out.push_back(q.record);
  }
  return out;
}

}  // namespace mcqa::exam
