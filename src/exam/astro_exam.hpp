#pragma once
// Expert-exam synthesis: the 2023 ASTRO Radiation and Cancer Biology
// Study Guide stand-in.
//
// What matters for reproducing Tables 3-4 is the exam's *relationship to
// the retrieval corpus*, not its literal wording:
//   * 337 questions, 2 requiring visuals (excluded -> 335 evaluated);
//   * ~44% need arithmetic (335 -> 189 no-math split, classified by a
//     simulated GPT-5);
//   * stems are written independently of the corpus: some probed facts
//     appear somewhere in the chunk store ("covered"), many do not —
//     chunk retrieval for uncovered questions returns near-miss passages
//     that can actively mislead (the Olmo regression in Table 3);
//   * five options per question (study-guide style), versus seven in the
//     synthetic benchmark.

#include <unordered_set>
#include <vector>

#include "corpus/knowledge_base.hpp"
#include "qgen/mcq_record.hpp"
#include "util/rng.hpp"

namespace mcqa::exam {

struct ExamConfig {
  std::size_t total_questions = 337;
  std::size_t multimodal_questions = 2;  ///< excluded from evaluation
  double math_fraction = 0.436;          ///< 146 of 335 usable questions
  /// Fraction of non-math questions probing facts present in the corpus
  /// chunk store (retrievable); the rest probe exam-only knowledge.  The
  /// exam and the corpus cover the same specialty, so most canon is
  /// somewhere in 22k papers — but far from all of it.
  double covered_fraction = 0.90;
  std::size_t options = 5;
  /// Expert-written items still carry a little ambiguity.
  double ambiguity = 0.03;
  std::uint64_t seed = 0xa57209u;
};

struct ExamQuestion {
  qgen::McqRecord record;
  bool multimodal = false;
  bool math = false;  ///< ground truth (the classifier approximates this)
};

struct Exam {
  std::vector<ExamQuestion> questions;

  /// The 335 evaluated records (multimodal excluded).
  std::vector<qgen::McqRecord> usable() const;
  /// Ground-truth no-math subset of usable().
  std::vector<qgen::McqRecord> no_math_truth() const;
};

class AstroExamBuilder {
 public:
  AstroExamBuilder(const corpus::KnowledgeBase& kb, ExamConfig config = {});

  /// `covered_facts`: fact ids present somewhere in the chunk store.
  Exam build(const std::unordered_set<corpus::FactId>& covered_facts) const;

 private:
  const corpus::KnowledgeBase& kb_;
  ExamConfig config_;
};

/// Simulated GPT-5 classifier for "requires mathematical reasoning or
/// arithmetic tool use".  High but imperfect agreement with ground
/// truth, so the no-math subset has the same soft boundary as the
/// paper's.
class MathClassifier {
 public:
  explicit MathClassifier(double accuracy = 0.97,
                          std::uint64_t seed = 0x9f5a11u)
      : accuracy_(accuracy), seed_(seed) {}

  bool classify(const qgen::McqRecord& record, bool truth_math) const;

  /// Apply to a full exam: returns the records classified as no-math.
  std::vector<qgen::McqRecord> no_math_subset(const Exam& exam) const;

 private:
  double accuracy_;
  std::uint64_t seed_;
};

}  // namespace mcqa::exam
