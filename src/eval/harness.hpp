#pragma once
// Evaluation harness: model x condition accuracy sweeps (the engine
// behind Tables 2-4 and Figures 4-6).

#include <map>
#include <string>
#include <vector>

#include "eval/judge.hpp"
#include "llm/language_model.hpp"
#include "llm/model_spec.hpp"
#include "qgen/mcq_record.hpp"
#include "rag/rag_pipeline.hpp"

namespace mcqa::eval {

struct Accuracy {
  std::size_t correct = 0;
  std::size_t total = 0;
  std::size_t unparseable = 0;  ///< judge could not extract an option

  double value() const {
    return total == 0 ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(total);
  }

  /// Wilson 95% confidence half-width.
  double ci95_halfwidth() const;
};

struct CellResult {
  std::string model;
  rag::Condition condition = rag::Condition::kBaseline;
  Accuracy accuracy;
};

struct SweepResult {
  std::vector<CellResult> cells;

  const Accuracy& at(std::string_view model, rag::Condition c) const;
  /// Highest-accuracy trace condition for a model ("RAG-RTs (best)").
  std::pair<rag::Condition, Accuracy> best_trace(std::string_view model) const;
};

struct HarnessConfig {
  std::size_t threads = 0;
};

class EvalHarness {
 public:
  EvalHarness(const rag::RagPipeline& rag, HarnessConfig config = {});

  /// Accuracy of one model under one condition over the records.
  Accuracy evaluate(const llm::LanguageModel& model,
                    const llm::ModelSpec& spec,
                    const std::vector<qgen::McqRecord>& records,
                    rag::Condition condition) const;

  /// Full sweep: every model in `models` under every condition in
  /// `conditions`.
  SweepResult sweep(
      const std::vector<const llm::LanguageModel*>& models,
      const std::vector<llm::ModelSpec>& specs,
      const std::vector<qgen::McqRecord>& records,
      const std::vector<rag::Condition>& conditions) const;

 private:
  const rag::RagPipeline& rag_;
  Judge judge_;
  HarnessConfig config_;
};

/// All five conditions of Table 2.
std::vector<rag::Condition> all_conditions();
/// Baseline / chunks / the three trace modes for exam tables (3 and 4
/// report best-of-traces).
std::vector<rag::Condition> trace_conditions();

}  // namespace mcqa::eval
