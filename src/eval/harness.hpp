#pragma once
// Evaluation harness: model x condition accuracy sweeps (the engine
// behind Tables 2-4 and Figures 4-6).
//
// sweep() runs as a memoized cell-parallel grid on one thread pool:
//
//   * retrieval hits for a (records, condition) pair are computed once
//     into a rag::RetrievalPlan and shared by every model's cell (hits
//     never depend on the model — with 8 models that removes 7/8 of all
//     retrieval work versus per-cell prepare_batch);
//   * the grid is one parallel::TaskGroup on a single shared pool: each
//     condition's plan fans out across records, the completion of the
//     last plan block spawns that condition's per-model cell tasks, and
//     cells fan out per-record answer+grade blocks on the same workers
//     (no per-cell pool construction, no serial double loop);
//   * an optional content-addressed CellCache (core::EvalCellCache)
//     restores finished cells wholesale, so warm re-runs of the
//     table/figure benches skip evaluation entirely.
//
// Accuracy tallies are commutative integer sums into slot-indexed
// cells merged in (model, condition) order, so the SweepResult is
// bitwise-identical to the seed's serial double loop at any thread
// count, with the cell cache on or off (tested).

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "eval/judge.hpp"
#include "llm/language_model.hpp"
#include "llm/model_spec.hpp"
#include "qgen/mcq_record.hpp"
#include "rag/rag_pipeline.hpp"

namespace mcqa::parallel {
class ThreadPool;
}

namespace mcqa::eval {

struct Accuracy {
  std::size_t correct = 0;
  std::size_t total = 0;
  std::size_t unparseable = 0;  ///< judge could not extract an option

  double value() const {
    return total == 0 ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(total);
  }

  /// Wilson 95% confidence half-width.
  double ci95_halfwidth() const;
};

struct CellResult {
  std::string model;
  rag::Condition condition = rag::Condition::kBaseline;
  Accuracy accuracy;
};

struct SweepResult {
  std::vector<CellResult> cells;

  const Accuracy& at(std::string_view model, rag::Condition c) const;
  /// Highest-accuracy trace condition for a model ("RAG-RTs (best)").
  /// Ties break toward the earliest trace cell in `cells` order — i.e.
  /// the first trace condition swept (detailed before focused before
  /// efficient under all_conditions()), deterministically.
  std::pair<rag::Condition, Accuracy> best_trace(std::string_view model) const;

 private:
  /// Lazily-built (model, condition) -> cell index, rebuilt whenever the
  /// cell count changes, so at() is O(1) amortized instead of the seed's
  /// O(cells) scan per lookup (benches call it per printed cell).
  mutable std::unordered_map<std::string, std::size_t> index_;
  mutable std::size_t indexed_cells_ = 0;
};

/// One delta-eval record group: a slice of the swept record set whose
/// members share a provenance unit (one source document, or a single
/// exam item).  `content_fp` fingerprints the group's record bytes; the
/// harness combines it with a fingerprint of the group's actual
/// retrieval hits per condition, so a group's cached tally can only hit
/// when neither its questions nor anything it retrieves changed —
/// including documents *other* than its own that rank into its hits.
struct RecordGroup {
  std::uint64_t content_fp = 0;
  std::vector<std::size_t> indexes;  ///< into the swept record vector
};

/// Content-addressed per-cell accuracy cache.  The harness only sees
/// load/store; the concrete implementation (core::EvalCellCache) keys
/// cells by the fnv1a chain over the benchmark/store checkpoint keys,
/// the swept record set, the model fingerprint, the condition and the
/// judge/RAG/simulation config fingerprints.
class CellCache {
 public:
  virtual ~CellCache() = default;

  /// The cached accuracy for (model, condition), or nullopt on miss.
  /// `expected_total` is the swept record count — a stored cell with a
  /// different total is treated as a miss (all-or-nothing per cell).
  virtual std::optional<Accuracy> load(std::string_view model,
                                       rag::Condition condition,
                                       std::size_t expected_total) const = 0;

  virtual void store(std::string_view model, rag::Condition condition,
                     const Accuracy& accuracy) const = 0;

  /// Group-granular tallies (delta eval): default implementations make
  /// the feature opt-in per cache.  `group_fp` is the harness-combined
  /// (content, hits) fingerprint; `expected_total` the group size.
  virtual bool supports_groups() const { return false; }
  virtual std::optional<Accuracy> load_group(std::string_view model,
                                             rag::Condition condition,
                                             std::uint64_t group_fp,
                                             std::size_t expected_total) const {
    (void)model;
    (void)condition;
    (void)group_fp;
    (void)expected_total;
    return std::nullopt;
  }
  virtual void store_group(std::string_view model, rag::Condition condition,
                           std::uint64_t group_fp,
                           const Accuracy& accuracy) const {
    (void)model;
    (void)condition;
    (void)group_fp;
    (void)accuracy;
  }
};

/// Work accounting for one sweep() call (cache effectiveness and the
/// retrieval-sharing win; never part of the SweepResult itself).
struct SweepStats {
  /// Store queries this sweep actually issued (once per record for each
  /// retrieval-active condition that had at least one uncached cell).
  std::size_t retrieval_queries = 0;
  /// Queries the seed's per-cell prepare path would have issued for the
  /// same grid (once per record per *cell* under retrieval conditions).
  std::size_t naive_retrieval_queries = 0;
  std::size_t cells_computed = 0;
  std::size_t cells_restored = 0;  ///< filled from the cell cache
  /// Delta-eval accounting (zeros when the grouped path is off): per
  /// uncached cell, how many record groups were restored from the
  /// cache versus answered+graded, and the total (cell, record)
  /// evaluations actually executed.
  std::size_t groups_restored = 0;
  std::size_t groups_computed = 0;
  std::size_t records_evaluated = 0;
};

struct HarnessConfig {
  /// Worker count for harness-owned pools (0 = hardware concurrency).
  /// Ignored when `pool` is set.
  std::size_t threads = 0;
  /// Caller-owned pool; evaluate()/sweep() run on it instead of
  /// constructing their own, so nested or repeated calls never
  /// oversubscribe the machine.  Not owned; must outlive the harness
  /// calls that use it.
  parallel::ThreadPool* pool = nullptr;
  /// Optional content-addressed eval-cell cache (not owned).
  const CellCache* cell_cache = nullptr;
  /// Optional delta-eval partition of the swept record set (not owned;
  /// must cover every record index exactly once).  When set and the
  /// cache supports_groups(), an uncached cell restores its unchanged
  /// groups' tallies and answers only the dirty groups — the summed
  /// counts are bitwise-identical to a full sweep at any thread count.
  const std::vector<RecordGroup>* groups = nullptr;
};

class EvalHarness {
 public:
  EvalHarness(const rag::RagPipeline& rag, HarnessConfig config = {});

  /// Accuracy of one model under one condition over the records.
  Accuracy evaluate(const llm::LanguageModel& model,
                    const llm::ModelSpec& spec,
                    const std::vector<qgen::McqRecord>& records,
                    rag::Condition condition) const;

  /// Full sweep: every model in `models` under every condition in
  /// `conditions`.  Cells land in (model, condition) order.  `stats`
  /// (optional) receives the work accounting for this call.
  SweepResult sweep(
      const std::vector<const llm::LanguageModel*>& models,
      const std::vector<llm::ModelSpec>& specs,
      const std::vector<qgen::McqRecord>& records,
      const std::vector<rag::Condition>& conditions,
      SweepStats* stats = nullptr) const;

 private:
  const rag::RagPipeline& rag_;
  Judge judge_;
  HarnessConfig config_;
};

/// All five conditions of Table 2.
std::vector<rag::Condition> all_conditions();
/// Baseline / chunks / the three trace modes for exam tables (3 and 4
/// report best-of-traces).
std::vector<rag::Condition> trace_conditions();

}  // namespace mcqa::eval
