#pragma once
// LLM-judge answer grading (Fig. 1: "an arbitrary LLM judge performs the
// grading and provides a reasoning").
//
// The judge works from the model's *free text only* — never from the
// simulation-layer chosen index — extracting the referenced option via a
// cascade: explicit letter/number patterns, exact option-text match,
// then fuzzy (edit-distance) matching.  Output follows the
// grading_result block of the paper's Fig. 3 schema.

#include <string>
#include <vector>

#include "llm/language_model.hpp"
#include "trace/trace_record.hpp"

namespace mcqa::eval {

class Judge {
 public:
  /// min_similarity: fuzzy-match floor for option-text rescue.
  explicit Judge(double min_similarity = 0.82)
      : min_similarity_(min_similarity) {}

  /// Extract the 0-based option index referenced by `answer_text`;
  /// -1 when no option can be identified.
  int extract_option(const std::string& answer_text,
                     const std::vector<std::string>& options) const;

  /// Full grading of one answer against the task.
  trace::GradingResult grade(const llm::McqTask& task,
                             const std::string& answer_text) const;

  /// Fuzzy-match floor (part of the eval-cell cache fingerprint).
  double min_similarity() const { return min_similarity_; }

 private:
  double min_similarity_;
};

}  // namespace mcqa::eval
