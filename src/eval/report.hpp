#pragma once
// Report rendering: aligned tables (Tables 1-4) and ASCII grouped-bar
// figures (Figures 4-6) for bench output, with paper-reference columns
// alongside measured values.

#include <string>
#include <vector>

namespace mcqa::eval {

class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a proportion as "0.731".
std::string fmt_acc(double v);
/// Format a percent improvement as "+31.4%" / "-2.0%".
std::string fmt_pct(double v);

/// Percent improvement of `now` over `base` (relative), in percent.
double pct_improvement(double now, double base);

struct FigureSeries {
  std::string label;  ///< e.g. "vs Baseline"
  std::vector<double> values;
};

/// Grouped horizontal bar chart: one group per model, one bar per
/// series.  Values in percent (improvements); negative bars render left.
std::string render_grouped_bars(const std::vector<std::string>& groups,
                                const std::vector<FigureSeries>& series,
                                std::string_view title,
                                double scale_pct_per_char = 2.0);

}  // namespace mcqa::eval
