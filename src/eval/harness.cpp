#include "eval/harness.hpp"

#include <atomic>
#include <cmath>
#include <stdexcept>

#include "parallel/thread_pool.hpp"

namespace mcqa::eval {

double Accuracy::ci95_halfwidth() const {
  if (total == 0) return 0.0;
  const double n = static_cast<double>(total);
  const double p = value();
  const double z = 1.96;
  const double denom = 1.0 + z * z / n;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n)) / denom;
  return half;
}

const Accuracy& SweepResult::at(std::string_view model,
                                rag::Condition c) const {
  for (const auto& cell : cells) {
    if (cell.model == model && cell.condition == c) return cell.accuracy;
  }
  throw std::out_of_range("SweepResult::at: no such cell");
}

std::pair<rag::Condition, Accuracy> SweepResult::best_trace(
    std::string_view model) const {
  std::pair<rag::Condition, Accuracy> best{rag::Condition::kTraceDetailed, {}};
  bool found = false;
  for (const auto& cell : cells) {
    if (cell.model != model || !rag::is_trace_condition(cell.condition)) {
      continue;
    }
    if (!found || cell.accuracy.value() > best.second.value()) {
      best = {cell.condition, cell.accuracy};
      found = true;
    }
  }
  if (!found) throw std::out_of_range("SweepResult::best_trace: no traces");
  return best;
}

EvalHarness::EvalHarness(const rag::RagPipeline& rag, HarnessConfig config)
    : rag_(rag), config_(config) {}

Accuracy EvalHarness::evaluate(const llm::LanguageModel& model,
                               const llm::ModelSpec& spec,
                               const std::vector<qgen::McqRecord>& records,
                               rag::Condition condition) const {
  std::atomic<std::size_t> correct{0};
  std::atomic<std::size_t> unparseable{0};

  parallel::ThreadPool pool(config_.threads);
  // Retrieval for the whole record set goes through the batched path
  // (one VectorStore::query_batch fan-out on the pool), then answering
  // and grading fan out over the prepared tasks.
  const std::vector<llm::McqTask> tasks =
      rag_.prepare_batch(records, condition, spec, pool);
  parallel::parallel_for(pool, 0, tasks.size(), [&](std::size_t i) {
    const llm::AnswerResult answer = model.answer(tasks[i]);
    const trace::GradingResult grading = judge_.grade(tasks[i], answer.text);
    if (grading.is_correct) correct.fetch_add(1, std::memory_order_relaxed);
    if (grading.extracted_option_number < 0) {
      unparseable.fetch_add(1, std::memory_order_relaxed);
    }
  });

  Accuracy acc;
  acc.correct = correct.load();
  acc.total = records.size();
  acc.unparseable = unparseable.load();
  return acc;
}

SweepResult EvalHarness::sweep(
    const std::vector<const llm::LanguageModel*>& models,
    const std::vector<llm::ModelSpec>& specs,
    const std::vector<qgen::McqRecord>& records,
    const std::vector<rag::Condition>& conditions) const {
  if (models.size() != specs.size()) {
    throw std::invalid_argument("sweep: models/specs size mismatch");
  }
  SweepResult out;
  for (std::size_t m = 0; m < models.size(); ++m) {
    for (const rag::Condition c : conditions) {
      CellResult cell;
      cell.model = std::string(models[m]->name());
      cell.condition = c;
      cell.accuracy = evaluate(*models[m], specs[m], records, c);
      out.cells.push_back(std::move(cell));
    }
  }
  return out;
}

std::vector<rag::Condition> all_conditions() {
  return {rag::Condition::kBaseline, rag::Condition::kChunks,
          rag::Condition::kTraceDetailed, rag::Condition::kTraceFocused,
          rag::Condition::kTraceEfficient};
}

std::vector<rag::Condition> trace_conditions() {
  return {rag::Condition::kTraceDetailed, rag::Condition::kTraceFocused,
          rag::Condition::kTraceEfficient};
}

}  // namespace mcqa::eval
