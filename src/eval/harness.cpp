#include "eval/harness.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>

#include "parallel/dag.hpp"
#include "parallel/thread_pool.hpp"

namespace mcqa::eval {

double Accuracy::ci95_halfwidth() const {
  if (total == 0) return 0.0;
  const double n = static_cast<double>(total);
  const double p = value();
  const double z = 1.96;
  const double denom = 1.0 + z * z / n;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n)) / denom;
  return half;
}

namespace {

std::string cell_index_key(std::string_view model, rag::Condition c) {
  std::string key(model);
  key += '\x1f';
  key += static_cast<char>('0' + static_cast<int>(c));
  return key;
}

}  // namespace

const Accuracy& SweepResult::at(std::string_view model,
                                rag::Condition c) const {
  if (indexed_cells_ != cells.size()) {
    index_.clear();
    index_.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      // First occurrence wins, matching the seed's front-to-back scan.
      index_.emplace(cell_index_key(cells[i].model, cells[i].condition), i);
    }
    indexed_cells_ = cells.size();
  }
  const auto it = index_.find(cell_index_key(model, c));
  if (it == index_.end()) {
    throw std::out_of_range("SweepResult::at: no such cell");
  }
  return cells[it->second].accuracy;
}

std::pair<rag::Condition, Accuracy> SweepResult::best_trace(
    std::string_view model) const {
  std::pair<rag::Condition, Accuracy> best{rag::Condition::kTraceDetailed, {}};
  bool found = false;
  for (const auto& cell : cells) {
    if (cell.model != model || !rag::is_trace_condition(cell.condition)) {
      continue;
    }
    // Strict > keeps the earliest trace cell on ties (deterministic:
    // the first trace condition swept wins).
    if (!found || cell.accuracy.value() > best.second.value()) {
      best = {cell.condition, cell.accuracy};
      found = true;
    }
  }
  if (!found) throw std::out_of_range("SweepResult::best_trace: no traces");
  return best;
}

EvalHarness::EvalHarness(const rag::RagPipeline& rag, HarnessConfig config)
    : rag_(rag), config_(config) {}

namespace {

/// Block size for per-record fan-out (same sizing rule as parallel_for).
std::size_t block_grain(std::size_t n, std::size_t workers) {
  return std::max<std::size_t>(1, n / (std::max<std::size_t>(workers, 1) * 4));
}

}  // namespace

Accuracy EvalHarness::evaluate(const llm::LanguageModel& model,
                               const llm::ModelSpec& spec,
                               const std::vector<qgen::McqRecord>& records,
                               rag::Condition condition) const {
  // Caller-owned pool when configured; the throwaway-pool path survives
  // only for zero-config callers.
  std::optional<parallel::ThreadPool> own_pool;
  parallel::ThreadPool* pool = config_.pool;
  if (pool == nullptr) {
    own_pool.emplace(config_.threads);
    pool = &*own_pool;
  }

  std::atomic<std::size_t> correct{0};
  std::atomic<std::size_t> unparseable{0};
  // Retrieval for the whole record set goes through the batched path
  // (one VectorStore::query_batch fan-out on the pool), then answering
  // and grading fan out over the prepared tasks.
  const std::vector<llm::McqTask> tasks =
      rag_.prepare_batch(records, condition, spec, *pool);
  parallel::parallel_for(*pool, 0, tasks.size(), [&](std::size_t i) {
    const llm::AnswerResult answer = model.answer(tasks[i]);
    const trace::GradingResult grading = judge_.grade(tasks[i], answer.text);
    if (grading.is_correct) correct.fetch_add(1, std::memory_order_relaxed);
    if (grading.extracted_option_number < 0) {
      unparseable.fetch_add(1, std::memory_order_relaxed);
    }
  });

  Accuracy acc;
  acc.correct = correct.load();
  acc.total = records.size();
  acc.unparseable = unparseable.load();
  return acc;
}

namespace {

/// Slot-indexed cell accumulator: answer blocks add commutative integer
/// tallies, so the final counts are thread-count invariant.
struct CellSlot {
  std::atomic<std::size_t> correct{0};
  std::atomic<std::size_t> unparseable{0};
  bool restored = false;
  Accuracy restored_accuracy;
};

}  // namespace

SweepResult EvalHarness::sweep(
    const std::vector<const llm::LanguageModel*>& models,
    const std::vector<llm::ModelSpec>& specs,
    const std::vector<qgen::McqRecord>& records,
    const std::vector<rag::Condition>& conditions, SweepStats* stats) const {
  if (models.size() != specs.size()) {
    throw std::invalid_argument("sweep: models/specs size mismatch");
  }
  const std::size_t m_count = models.size();
  const std::size_t c_count = conditions.size();
  const std::size_t n = records.size();

  SweepStats tally;
  std::vector<CellSlot> slots(m_count * c_count);

  // --- cell-cache pre-pass ---------------------------------------------------
  if (config_.cell_cache != nullptr) {
    for (std::size_t m = 0; m < m_count; ++m) {
      for (std::size_t ci = 0; ci < c_count; ++ci) {
        const auto cached = config_.cell_cache->load(models[m]->name(),
                                                     conditions[ci], n);
        if (cached.has_value()) {
          auto& slot = slots[m * c_count + ci];
          slot.restored = true;
          slot.restored_accuracy = *cached;
          ++tally.cells_restored;
        }
      }
    }
  }

  std::optional<parallel::ThreadPool> own_pool;
  parallel::ThreadPool* pool = config_.pool;
  if (pool == nullptr) {
    own_pool.emplace(config_.threads);
    pool = &*own_pool;
  }
  const std::size_t grain = block_grain(n, pool->thread_count());

  // --- the grid: one TaskGroup, plans shared across models -------------------
  //
  // Per condition: plan blocks fan the (model-independent) retrieval
  // across records; the completion of the last block spawns the
  // condition's per-model cell blocks, which answer+grade on the same
  // pool.  Tasks only spawn, never block (TaskGroup discipline), and
  // every write lands in its own slot or is a commutative counter add.
  std::vector<rag::RetrievalPlan> plans(c_count);
  parallel::TaskGroup group(*pool);

  for (std::size_t ci = 0; ci < c_count; ++ci) {
    const rag::Condition condition = conditions[ci];
    plans[ci] = rag_.make_plan(records, condition);
    const rag::RetrievalPlan& plan = plans[ci];
    if (plan.active) tally.naive_retrieval_queries += m_count * n;

    auto todo = std::make_shared<std::vector<std::size_t>>();
    for (std::size_t m = 0; m < m_count; ++m) {
      if (!slots[m * c_count + ci].restored) todo->push_back(m);
    }
    if (todo->empty()) continue;
    tally.cells_computed += todo->size();

    const auto spawn_cells = [this, &group, &slots, &plan, &records, &specs,
                              &models, ci, c_count, grain, n, todo]() {
      for (const std::size_t m : *todo) {
        for (std::size_t lo = 0; lo < n; lo += grain) {
          const std::size_t hi = std::min(n, lo + grain);
          group.spawn([this, &slots, &plan, &records, &specs, &models, ci,
                       c_count, m, lo, hi]() {
            std::size_t correct = 0;
            std::size_t unparseable = 0;
            for (std::size_t i = lo; i < hi; ++i) {
              const llm::McqTask task =
                  rag_.prepare_from_plan(records[i], plan, i, specs[m]);
              const llm::AnswerResult answer = models[m]->answer(task);
              const trace::GradingResult grading =
                  judge_.grade(task, answer.text);
              if (grading.is_correct) ++correct;
              if (grading.extracted_option_number < 0) ++unparseable;
            }
            auto& slot = slots[m * c_count + ci];
            slot.correct.fetch_add(correct, std::memory_order_relaxed);
            slot.unparseable.fetch_add(unparseable,
                                       std::memory_order_relaxed);
          });
        }
      }
    };

    if (!plan.active || n == 0) {
      spawn_cells();
      continue;
    }
    tally.retrieval_queries += n;
    const std::size_t blocks = (n + grain - 1) / grain;
    auto remaining = std::make_shared<std::atomic<std::size_t>>(blocks);
    for (std::size_t lo = 0; lo < n; lo += grain) {
      const std::size_t hi = std::min(n, lo + grain);
      group.spawn([this, &plans, &records, ci, lo, hi, remaining,
                   spawn_cells]() {
        rag_.fill_plan(plans[ci], records, lo, hi);
        if (remaining->fetch_sub(1, std::memory_order_acq_rel) == 1) {
          // Hits exist for every record: release this condition's cells.
          spawn_cells();
        }
      });
    }
  }
  group.wait();

  // --- merge, in (model, condition) order ------------------------------------
  SweepResult out;
  out.cells.reserve(m_count * c_count);
  for (std::size_t m = 0; m < m_count; ++m) {
    for (std::size_t ci = 0; ci < c_count; ++ci) {
      auto& slot = slots[m * c_count + ci];
      CellResult cell;
      cell.model = std::string(models[m]->name());
      cell.condition = conditions[ci];
      if (slot.restored) {
        cell.accuracy = slot.restored_accuracy;
      } else {
        cell.accuracy.correct = slot.correct.load();
        cell.accuracy.total = n;
        cell.accuracy.unparseable = slot.unparseable.load();
        if (config_.cell_cache != nullptr) {
          config_.cell_cache->store(cell.model, cell.condition,
                                    cell.accuracy);
        }
      }
      out.cells.push_back(std::move(cell));
    }
  }
  if (stats != nullptr) *stats = tally;
  return out;
}

std::vector<rag::Condition> all_conditions() {
  return {rag::Condition::kBaseline, rag::Condition::kChunks,
          rag::Condition::kTraceDetailed, rag::Condition::kTraceFocused,
          rag::Condition::kTraceEfficient};
}

std::vector<rag::Condition> trace_conditions() {
  return {rag::Condition::kTraceDetailed, rag::Condition::kTraceFocused,
          rag::Condition::kTraceEfficient};
}

}  // namespace mcqa::eval
