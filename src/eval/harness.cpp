#include "eval/harness.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <optional>
#include <stdexcept>

#include "parallel/dag.hpp"
#include "parallel/thread_pool.hpp"
#include "util/hash.hpp"

namespace mcqa::eval {

double Accuracy::ci95_halfwidth() const {
  if (total == 0) return 0.0;
  const double n = static_cast<double>(total);
  const double p = value();
  const double z = 1.96;
  const double denom = 1.0 + z * z / n;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n)) / denom;
  return half;
}

namespace {

std::string cell_index_key(std::string_view model, rag::Condition c) {
  std::string key(model);
  key += '\x1f';
  key += static_cast<char>('0' + static_cast<int>(c));
  return key;
}

}  // namespace

const Accuracy& SweepResult::at(std::string_view model,
                                rag::Condition c) const {
  if (indexed_cells_ != cells.size()) {
    index_.clear();
    index_.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      // First occurrence wins, matching the seed's front-to-back scan.
      index_.emplace(cell_index_key(cells[i].model, cells[i].condition), i);
    }
    indexed_cells_ = cells.size();
  }
  const auto it = index_.find(cell_index_key(model, c));
  if (it == index_.end()) {
    throw std::out_of_range("SweepResult::at: no such cell");
  }
  return cells[it->second].accuracy;
}

std::pair<rag::Condition, Accuracy> SweepResult::best_trace(
    std::string_view model) const {
  std::pair<rag::Condition, Accuracy> best{rag::Condition::kTraceDetailed, {}};
  bool found = false;
  for (const auto& cell : cells) {
    if (cell.model != model || !rag::is_trace_condition(cell.condition)) {
      continue;
    }
    // Strict > keeps the earliest trace cell on ties (deterministic:
    // the first trace condition swept wins).
    if (!found || cell.accuracy.value() > best.second.value()) {
      best = {cell.condition, cell.accuracy};
      found = true;
    }
  }
  if (!found) throw std::out_of_range("SweepResult::best_trace: no traces");
  return best;
}

EvalHarness::EvalHarness(const rag::RagPipeline& rag, HarnessConfig config)
    : rag_(rag), config_(config) {}

namespace {

/// Block size for per-record fan-out (same sizing rule as parallel_for).
std::size_t block_grain(std::size_t n, std::size_t workers) {
  return std::max<std::size_t>(1, n / (std::max<std::size_t>(workers, 1) * 4));
}

}  // namespace

Accuracy EvalHarness::evaluate(const llm::LanguageModel& model,
                               const llm::ModelSpec& spec,
                               const std::vector<qgen::McqRecord>& records,
                               rag::Condition condition) const {
  // Caller-owned pool when configured; the throwaway-pool path survives
  // only for zero-config callers.
  std::optional<parallel::ThreadPool> own_pool;
  parallel::ThreadPool* pool = config_.pool;
  if (pool == nullptr) {
    own_pool.emplace(config_.threads);
    pool = &*own_pool;
  }

  std::atomic<std::size_t> correct{0};
  std::atomic<std::size_t> unparseable{0};
  // Retrieval for the whole record set goes through the batched path
  // (one VectorStore::query_batch fan-out on the pool), then answering
  // and grading fan out over the prepared tasks.
  const std::vector<llm::McqTask> tasks =
      rag_.prepare_batch(records, condition, spec, *pool);
  parallel::parallel_for(*pool, 0, tasks.size(), [&](std::size_t i) {
    const llm::AnswerResult answer = model.answer(tasks[i]);
    const trace::GradingResult grading = judge_.grade(tasks[i], answer.text);
    if (grading.is_correct) correct.fetch_add(1, std::memory_order_relaxed);
    if (grading.extracted_option_number < 0) {
      unparseable.fetch_add(1, std::memory_order_relaxed);
    }
  });

  Accuracy acc;
  acc.correct = correct.load();
  acc.total = records.size();
  acc.unparseable = unparseable.load();
  return acc;
}

namespace {

/// Slot-indexed cell accumulator: answer blocks add commutative integer
/// tallies, so the final counts are thread-count invariant.
struct CellSlot {
  std::atomic<std::size_t> correct{0};
  std::atomic<std::size_t> unparseable{0};
  bool restored = false;
  Accuracy restored_accuracy;
};

/// Per-(cell, group) work item for the delta-eval path.  Each is
/// tallied by exactly one task, so no atomics are needed; the merge
/// sums groups in partition order (commutative integer adds — the cell
/// counts are bitwise those of a full sweep).
struct GroupWork {
  bool restored = false;
  Accuracy acc;  ///< tally over the group's records (total = group size)
};

/// True iff `groups` covers every index in [0, n) exactly once.
bool is_partition(const std::vector<RecordGroup>& groups, std::size_t n) {
  std::vector<char> seen(n, 0);
  std::size_t covered = 0;
  for (const auto& g : groups) {
    for (const std::size_t i : g.indexes) {
      if (i >= n || seen[i] != 0) return false;
      seen[i] = 1;
      ++covered;
    }
  }
  return covered == n;
}

/// Fingerprint of a group's retrieval inputs under one condition: per
/// record (in group order) the hit count, then each hit's id, payload
/// text and exact score bits.  Conditions that do not retrieve share a
/// constant — their cells depend on record content alone.
std::uint64_t group_hits_fp(const rag::RetrievalPlan& plan,
                            const RecordGroup& group) {
  std::uint64_t h = util::fnv1a64("group-hits");
  if (!plan.active) return h;
  for (const std::size_t i : group.indexes) {
    const auto& hits = plan.hits[i];
    h = util::hash_combine(h, util::fnv1a64(hits.size()));
    for (const auto& hit : hits) {
      h = util::hash_combine(h, util::fnv1a64(hit.id));
      h = util::hash_combine(h, util::fnv1a64(hit.text));
      std::uint32_t bits = 0;
      static_assert(sizeof(bits) == sizeof(hit.score));
      std::memcpy(&bits, &hit.score, sizeof(bits));
      h = util::hash_combine(h, util::fnv1a64(bits));
    }
  }
  return h;
}

}  // namespace

SweepResult EvalHarness::sweep(
    const std::vector<const llm::LanguageModel*>& models,
    const std::vector<llm::ModelSpec>& specs,
    const std::vector<qgen::McqRecord>& records,
    const std::vector<rag::Condition>& conditions, SweepStats* stats) const {
  if (models.size() != specs.size()) {
    throw std::invalid_argument("sweep: models/specs size mismatch");
  }
  const std::size_t m_count = models.size();
  const std::size_t c_count = conditions.size();
  const std::size_t n = records.size();

  SweepStats tally;
  std::vector<CellSlot> slots(m_count * c_count);

  // --- cell-cache pre-pass ---------------------------------------------------
  if (config_.cell_cache != nullptr) {
    for (std::size_t m = 0; m < m_count; ++m) {
      for (std::size_t ci = 0; ci < c_count; ++ci) {
        const auto cached = config_.cell_cache->load(models[m]->name(),
                                                     conditions[ci], n);
        if (cached.has_value()) {
          auto& slot = slots[m * c_count + ci];
          slot.restored = true;
          slot.restored_accuracy = *cached;
          ++tally.cells_restored;
        }
      }
    }
  }

  std::optional<parallel::ThreadPool> own_pool;
  parallel::ThreadPool* pool = config_.pool;
  if (pool == nullptr) {
    own_pool.emplace(config_.threads);
    pool = &*own_pool;
  }
  const std::size_t grain = block_grain(n, pool->thread_count());

  // --- delta-eval: group-granular restore for uncached cells -----------------
  const std::vector<RecordGroup>* groups = config_.groups;
  const bool grouped = groups != nullptr && !groups->empty() &&
                       config_.cell_cache != nullptr &&
                       config_.cell_cache->supports_groups();
  if (grouped && !is_partition(*groups, n)) {
    throw std::invalid_argument("sweep: groups must partition the record set");
  }
  if (grouped) {
    const CellCache& cache = *config_.cell_cache;
    const std::size_t g_count = groups->size();

    // Shared retrieval plans, filled only for conditions that still
    // have uncached cells (the same sharing the plain grid does).
    std::vector<rag::RetrievalPlan> plans(c_count);
    std::vector<std::vector<std::size_t>> todo(c_count);
    for (std::size_t ci = 0; ci < c_count; ++ci) {
      plans[ci] = rag_.make_plan(records, conditions[ci]);
      if (plans[ci].active) tally.naive_retrieval_queries += m_count * n;
      for (std::size_t m = 0; m < m_count; ++m) {
        if (!slots[m * c_count + ci].restored) todo[ci].push_back(m);
      }
      if (todo[ci].empty() || n == 0) continue;
      tally.cells_computed += todo[ci].size();
      if (!plans[ci].active) continue;
      tally.retrieval_queries += n;
      const std::size_t blocks = (n + grain - 1) / grain;
      parallel::parallel_for(*pool, 0, blocks, [&, ci](std::size_t b) {
        rag_.fill_plan(plans[ci], records, b * grain,
                       std::min(n, (b + 1) * grain));
      });
    }

    // Combined (content, hits) fingerprint per (condition, group).
    std::vector<std::uint64_t> group_fps(c_count * g_count, 0);
    for (std::size_t ci = 0; ci < c_count; ++ci) {
      if (todo[ci].empty()) continue;
      for (std::size_t g = 0; g < g_count; ++g) {
        group_fps[ci * g_count + g] = util::hash_combine(
            (*groups)[g].content_fp, group_hits_fp(plans[ci], (*groups)[g]));
      }
    }

    // Restore what the cache has; answer+grade only the dirty groups.
    // One task per dirty (cell, group) — each writes only its own slot.
    std::vector<GroupWork> work(m_count * c_count * g_count);
    parallel::TaskGroup group_tasks(*pool);
    for (std::size_t ci = 0; ci < c_count; ++ci) {
      for (const std::size_t m : todo[ci]) {
        for (std::size_t g = 0; g < g_count; ++g) {
          GroupWork& w = work[(m * c_count + ci) * g_count + g];
          const auto cached =
              cache.load_group(models[m]->name(), conditions[ci],
                               group_fps[ci * g_count + g],
                               (*groups)[g].indexes.size());
          if (cached.has_value()) {
            w.restored = true;
            w.acc = *cached;
            ++tally.groups_restored;
            continue;
          }
          ++tally.groups_computed;
          tally.records_evaluated += (*groups)[g].indexes.size();
          group_tasks.spawn([this, &work, &plans, &records, &specs, &models,
                             groups, ci, c_count, g_count, m, g]() {
            const RecordGroup& grp = (*groups)[g];
            GroupWork& out = work[(m * c_count + ci) * g_count + g];
            for (const std::size_t i : grp.indexes) {
              const llm::McqTask task =
                  rag_.prepare_from_plan(records[i], plans[ci], i, specs[m]);
              const llm::AnswerResult answer = models[m]->answer(task);
              const trace::GradingResult grading =
                  judge_.grade(task, answer.text);
              if (grading.is_correct) ++out.acc.correct;
              if (grading.extracted_option_number < 0) ++out.acc.unparseable;
            }
            out.acc.total = grp.indexes.size();
          });
        }
      }
    }
    group_tasks.wait();

    // Merge: sum groups in partition order; store computed groups and
    // the completed cells.
    SweepResult out;
    out.cells.reserve(m_count * c_count);
    for (std::size_t m = 0; m < m_count; ++m) {
      for (std::size_t ci = 0; ci < c_count; ++ci) {
        auto& slot = slots[m * c_count + ci];
        CellResult cell;
        cell.model = std::string(models[m]->name());
        cell.condition = conditions[ci];
        if (slot.restored) {
          cell.accuracy = slot.restored_accuracy;
        } else {
          Accuracy acc;
          acc.total = n;
          for (std::size_t g = 0; g < g_count; ++g) {
            const GroupWork& w = work[(m * c_count + ci) * g_count + g];
            acc.correct += w.acc.correct;
            acc.unparseable += w.acc.unparseable;
            if (!w.restored) {
              cache.store_group(cell.model, cell.condition,
                                group_fps[ci * g_count + g], w.acc);
            }
          }
          cell.accuracy = acc;
          cache.store(cell.model, cell.condition, cell.accuracy);
        }
        out.cells.push_back(std::move(cell));
      }
    }
    if (stats != nullptr) *stats = tally;
    return out;
  }

  // --- the grid: one TaskGroup, plans shared across models -------------------
  //
  // Per condition: plan blocks fan the (model-independent) retrieval
  // across records; the completion of the last block spawns the
  // condition's per-model cell blocks, which answer+grade on the same
  // pool.  Tasks only spawn, never block (TaskGroup discipline), and
  // every write lands in its own slot or is a commutative counter add.
  std::vector<rag::RetrievalPlan> plans(c_count);
  parallel::TaskGroup group(*pool);

  for (std::size_t ci = 0; ci < c_count; ++ci) {
    const rag::Condition condition = conditions[ci];
    plans[ci] = rag_.make_plan(records, condition);
    const rag::RetrievalPlan& plan = plans[ci];
    if (plan.active) tally.naive_retrieval_queries += m_count * n;

    auto todo = std::make_shared<std::vector<std::size_t>>();
    for (std::size_t m = 0; m < m_count; ++m) {
      if (!slots[m * c_count + ci].restored) todo->push_back(m);
    }
    if (todo->empty()) continue;
    tally.cells_computed += todo->size();
    tally.records_evaluated += todo->size() * n;

    const auto spawn_cells = [this, &group, &slots, &plan, &records, &specs,
                              &models, ci, c_count, grain, n, todo]() {
      for (const std::size_t m : *todo) {
        for (std::size_t lo = 0; lo < n; lo += grain) {
          const std::size_t hi = std::min(n, lo + grain);
          group.spawn([this, &slots, &plan, &records, &specs, &models, ci,
                       c_count, m, lo, hi]() {
            std::size_t correct = 0;
            std::size_t unparseable = 0;
            for (std::size_t i = lo; i < hi; ++i) {
              const llm::McqTask task =
                  rag_.prepare_from_plan(records[i], plan, i, specs[m]);
              const llm::AnswerResult answer = models[m]->answer(task);
              const trace::GradingResult grading =
                  judge_.grade(task, answer.text);
              if (grading.is_correct) ++correct;
              if (grading.extracted_option_number < 0) ++unparseable;
            }
            auto& slot = slots[m * c_count + ci];
            slot.correct.fetch_add(correct, std::memory_order_relaxed);
            slot.unparseable.fetch_add(unparseable,
                                       std::memory_order_relaxed);
          });
        }
      }
    };

    if (!plan.active || n == 0) {
      spawn_cells();
      continue;
    }
    tally.retrieval_queries += n;
    const std::size_t blocks = (n + grain - 1) / grain;
    auto remaining = std::make_shared<std::atomic<std::size_t>>(blocks);
    for (std::size_t lo = 0; lo < n; lo += grain) {
      const std::size_t hi = std::min(n, lo + grain);
      group.spawn([this, &plans, &records, ci, lo, hi, remaining,
                   spawn_cells]() {
        rag_.fill_plan(plans[ci], records, lo, hi);
        if (remaining->fetch_sub(1, std::memory_order_acq_rel) == 1) {
          // Hits exist for every record: release this condition's cells.
          spawn_cells();
        }
      });
    }
  }
  group.wait();

  // --- merge, in (model, condition) order ------------------------------------
  SweepResult out;
  out.cells.reserve(m_count * c_count);
  for (std::size_t m = 0; m < m_count; ++m) {
    for (std::size_t ci = 0; ci < c_count; ++ci) {
      auto& slot = slots[m * c_count + ci];
      CellResult cell;
      cell.model = std::string(models[m]->name());
      cell.condition = conditions[ci];
      if (slot.restored) {
        cell.accuracy = slot.restored_accuracy;
      } else {
        cell.accuracy.correct = slot.correct.load();
        cell.accuracy.total = n;
        cell.accuracy.unparseable = slot.unparseable.load();
        if (config_.cell_cache != nullptr) {
          config_.cell_cache->store(cell.model, cell.condition,
                                    cell.accuracy);
        }
      }
      out.cells.push_back(std::move(cell));
    }
  }
  if (stats != nullptr) *stats = tally;
  return out;
}

std::vector<rag::Condition> all_conditions() {
  return {rag::Condition::kBaseline, rag::Condition::kChunks,
          rag::Condition::kTraceDetailed, rag::Condition::kTraceFocused,
          rag::Condition::kTraceEfficient};
}

std::vector<rag::Condition> trace_conditions() {
  return {rag::Condition::kTraceDetailed, rag::Condition::kTraceFocused,
          rag::Condition::kTraceEfficient};
}

}  // namespace mcqa::eval
