#include "eval/paper_reference.hpp"

#include <stdexcept>

namespace mcqa::eval {

const std::vector<PaperRow2>& paper_table2() {
  static const std::vector<PaperRow2> kTable = {
      {"OLMo-7B", {0.380, 0.443, 0.709, 0.736, 0.720}},
      {"TinyLlama-1.1B-Chat", {0.176, 0.434, 0.710, 0.699, 0.581}},
      {"Gemma 3 4B-IT", {0.745, 0.837, 0.860, 0.878, 0.873}},
      {"SmolLM3-3B", {0.471, 0.803, 0.826, 0.854, 0.856}},
      {"Mistral-7B-Instruct-v0.3", {0.737, 0.839, 0.886, 0.889, 0.882}},
      {"Llama-3-8B-Instruct", {0.830, 0.864, 0.875, 0.892, 0.897}},
      {"Llama-3.1-8B-Instruct", {0.819, 0.900, 0.915, 0.902, 0.916}},
      {"Qwen-1.5-14B-Chat", {0.776, 0.853, 0.913, 0.908, 0.914}},
  };
  return kTable;
}

const std::vector<PaperRow3>& paper_table3() {
  static const std::vector<PaperRow3> kTable = {
      {"OLMo-7B", {0.446, 0.269, 0.563}},
      {"TinyLlama-1.1B-Chat", {0.089, 0.263, 0.319}},
      {"Gemma 3 4B-IT", {0.484, 0.551, 0.605}},
      {"SmolLM3-3B", {0.377, 0.706, 0.772}},
      {"Mistral-7B-Instruct-v0.3", {0.494, 0.542, 0.575}},
      {"Llama-3-8B-Instruct", {0.665, 0.674, 0.542}},
      {"Llama-3.1-8B-Instruct", {0.644, 0.704, 0.686}},
      {"Qwen-1.5-14B-Chat", {0.560, 0.587, 0.602}},
  };
  return kTable;
}

const std::vector<PaperRow3>& paper_table4() {
  static const std::vector<PaperRow3> kTable = {
      {"OLMo-7B", {0.471, 0.238, 0.587}},
      {"TinyLlama-1.1B-Chat", {0.138, 0.259, 0.312}},
      {"Gemma 3 4B-IT", {0.540, 0.640, 0.804}},
      {"SmolLM3-3B", {0.466, 0.751, 0.894}},
      {"Mistral-7B-Instruct-v0.3", {0.598, 0.614, 0.757}},
      {"Llama-3-8B-Instruct", {0.757, 0.730, 0.804}},
      {"Llama-3.1-8B-Instruct", {0.762, 0.783, 0.857}},
      {"Qwen-1.5-14B-Chat", {0.667, 0.667, 0.825}},
  };
  return kTable;
}

namespace {
template <typename Row>
const Row& find_row(const std::vector<Row>& rows, std::string_view model) {
  for (const auto& row : rows) {
    if (row.model == model) return row;
  }
  throw std::out_of_range("paper reference: unknown model " +
                          std::string(model));
}
}  // namespace

const PaperRow2& paper_table2_row(std::string_view model) {
  return find_row(paper_table2(), model);
}
const PaperRow3& paper_table3_row(std::string_view model) {
  return find_row(paper_table3(), model);
}
const PaperRow3& paper_table4_row(std::string_view model) {
  return find_row(paper_table4(), model);
}

std::size_t paper_condition_index(rag::Condition c) {
  switch (c) {
    case rag::Condition::kBaseline: return 0;
    case rag::Condition::kChunks: return 1;
    case rag::Condition::kTraceDetailed: return 2;
    case rag::Condition::kTraceFocused: return 3;
    case rag::Condition::kTraceEfficient: return 4;
  }
  throw std::out_of_range("unknown condition");
}

}  // namespace mcqa::eval
