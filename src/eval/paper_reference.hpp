#pragma once
// The paper's published numbers (Tables 2-4 and the §2 pipeline funnel),
// kept in one place so benches print measured-vs-paper columns and the
// shape tests assert the same orderings the paper reports.

#include <array>
#include <string_view>
#include <vector>

#include "rag/rag_pipeline.hpp"

namespace mcqa::eval {

struct PaperRow2 {
  std::string_view model;
  /// Baseline, RAG-Chunks, RT-Detail, RT-Focused, RT-Efficient.
  std::array<double, 5> accuracy;
};

struct PaperRow3 {
  std::string_view model;
  /// Baseline, RAG-Chunks, RAG-RTs (best).
  std::array<double, 3> accuracy;
};

/// Table 2: synthetic benchmark (16,680 MCQs).
const std::vector<PaperRow2>& paper_table2();
/// Table 3: Astro exam, all 335 usable questions.
const std::vector<PaperRow3>& paper_table3();
/// Table 4: Astro exam, 189-question no-math subset.
const std::vector<PaperRow3>& paper_table4();

/// Lookup helpers; throw std::out_of_range for unknown models.
const PaperRow2& paper_table2_row(std::string_view model);
const PaperRow3& paper_table3_row(std::string_view model);
const PaperRow3& paper_table4_row(std::string_view model);

/// Index into PaperRow2::accuracy for a condition.
std::size_t paper_condition_index(rag::Condition c);

/// §2 funnel constants at full scale.
struct PaperFunnel {
  static constexpr std::size_t kDocuments = 22548;   // 14115 + 8433
  static constexpr std::size_t kPapers = 14115;
  static constexpr std::size_t kAbstracts = 8433;
  static constexpr std::size_t kChunks = 173318;
  static constexpr std::size_t kCandidates = 173318;
  static constexpr std::size_t kAccepted = 16680;
  static constexpr double kEmbeddingMegabytes = 747.0;
  static constexpr double acceptance_rate() {
    return static_cast<double>(kAccepted) / static_cast<double>(kChunks);
  }
};

}  // namespace mcqa::eval
