#include "eval/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace mcqa::eval {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TableWriter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TableWriter::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit_row = [&](const std::vector<std::string>& cells,
                            std::string& out) {
    out += "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += " ";
      out += cells[c];
      out.append(widths[c] - cells[c].size(), ' ');
      out += " |";
    }
    out += "\n";
  };
  std::string out;
  emit_row(headers_, out);
  out += "|";
  for (const std::size_t w : widths) {
    out.append(w + 2, '-');
    out += "|";
  }
  out += "\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string fmt_acc(double v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string fmt_pct(double v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", v);
  return buf;
}

double pct_improvement(double now, double base) {
  if (base <= 0.0) return 0.0;
  return (now - base) / base * 100.0;
}

std::string render_grouped_bars(const std::vector<std::string>& groups,
                                const std::vector<FigureSeries>& series,
                                std::string_view title,
                                double scale_pct_per_char) {
  std::string out;
  out += std::string(title) + "\n";
  out.append(title.size(), '=');
  out += "\n";

  std::size_t label_width = 0;
  for (const auto& g : groups) label_width = std::max(label_width, g.size());
  for (const auto& s : series) label_width = std::max(label_width, s.label.size());
  label_width += 2;

  constexpr std::size_t kNegRoom = 20;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    out += groups[g] + "\n";
    for (const auto& s : series) {
      if (g >= s.values.size()) continue;
      const double v = s.values[g];
      std::string line = "  " + s.label;
      line.append(label_width > s.label.size() ? label_width - s.label.size()
                                               : 1,
                  ' ');
      const auto chars = static_cast<std::size_t>(
          std::min(60.0, std::fabs(v) / scale_pct_per_char));
      if (v >= 0.0) {
        line.append(kNegRoom, ' ');
        line += "|";
        line.append(chars, '#');
      } else {
        line.append(kNegRoom > chars ? kNegRoom - chars : 0, ' ');
        line.append(chars, '#');
        line += "|";
      }
      char buf[24];
      std::snprintf(buf, sizeof(buf), " %+.1f%%", v);
      line += buf;
      out += line + "\n";
    }
  }
  return out;
}

}  // namespace mcqa::eval
