#include "eval/judge.hpp"

#include <algorithm>
#include <cctype>

#include "text/normalize.hpp"
#include "util/strings.hpp"

namespace mcqa::eval {

namespace {

/// Find "(C)", "option 3", "answer: B", "3." style references.
int extract_pattern(const std::string& text, std::size_t n_options) {
  const std::string lower = util::to_lower(text);

  // "(c)" / "(3)" parenthesized markers, first occurrence wins.
  for (std::size_t i = 0; i + 2 < lower.size(); ++i) {
    if (lower[i] != '(') continue;
    const char c = lower[i + 1];
    if (lower[i + 2] != ')') continue;
    if (c >= 'a' && c < static_cast<char>('a' + n_options)) {
      return c - 'a';
    }
    if (c >= '1' && c < static_cast<char>('1' + n_options)) {
      return c - '1';
    }
  }

  // "answer is c" / "answer: 3" / "option b" phrasings.
  static constexpr std::string_view kAnchors[] = {
      "answer is ", "answer: ", "option ", "choice ", "select "};
  for (const auto anchor : kAnchors) {
    std::size_t pos = 0;
    while ((pos = lower.find(anchor, pos)) != std::string::npos) {
      const std::size_t at = pos + anchor.size();
      pos = at;
      if (at >= lower.size()) break;
      const char c = lower[at];
      const bool end_ok = at + 1 >= lower.size() ||
                          !std::isalnum(static_cast<unsigned char>(lower[at + 1]));
      if (!end_ok) continue;
      if (c >= 'a' && c < static_cast<char>('a' + n_options)) return c - 'a';
      if (c >= '1' && c < static_cast<char>('1' + n_options)) return c - '1';
    }
  }
  return -1;
}

}  // namespace

int Judge::extract_option(const std::string& answer_text,
                          const std::vector<std::string>& options) const {
  if (options.empty()) return -1;

  const int by_pattern = extract_pattern(answer_text, options.size());
  if (by_pattern >= 0) return by_pattern;

  // Exact option-text containment (normalized).  When several options
  // appear, prefer the one mentioned first in the answer.
  const std::string norm_answer =
      text::normalize_for_matching(answer_text);
  int best = -1;
  std::size_t best_pos = std::string::npos;
  for (std::size_t i = 0; i < options.size(); ++i) {
    const std::string norm_opt = text::normalize_for_matching(options[i]);
    if (norm_opt.empty()) continue;
    const std::size_t pos = norm_answer.find(norm_opt);
    if (pos != std::string::npos && pos < best_pos) {
      best_pos = pos;
      best = static_cast<int>(i);
    }
  }
  if (best >= 0) return best;

  // Fuzzy rescue: compare each option against the answer's final clause
  // (models usually restate their pick at the end).
  const std::size_t tail_start =
      norm_answer.size() > 80 ? norm_answer.size() - 80 : 0;
  const std::string_view tail =
      std::string_view(norm_answer).substr(tail_start);
  double best_sim = min_similarity_;
  best = -1;
  for (std::size_t i = 0; i < options.size(); ++i) {
    const std::string norm_opt = text::normalize_for_matching(options[i]);
    if (norm_opt.empty() || norm_opt.size() > tail.size() + 2) continue;
    // Slide the option over the tail for the best local alignment; the
    // final windows clip at the string end so a truncated restatement
    // ("cisplatn") still aligns.
    for (std::size_t off = 0; off < tail.size(); ++off) {
      const double sim = util::string_similarity(
          tail.substr(off, norm_opt.size()), norm_opt);
      if (sim > best_sim) {
        best_sim = sim;
        best = static_cast<int>(i);
      }
    }
  }
  return best;
}

trace::GradingResult Judge::grade(const llm::McqTask& task,
                                  const std::string& answer_text) const {
  trace::GradingResult g;
  const int extracted = extract_option(answer_text, task.options);
  g.extracted_option_number = extracted >= 0 ? extracted + 1 : -1;
  g.correct_option_number = task.correct_index + 1;
  g.is_correct = extracted >= 0 && extracted == task.correct_index;
  g.confidence = extracted >= 0 ? 0.95 : 0.3;
  if (extracted < 0) {
    g.reasoning = "no option reference could be extracted from the answer";
  } else if (g.is_correct) {
    g.reasoning = "extracted option matches the keyed answer";
  } else {
    g.reasoning = "extracted option differs from the keyed answer";
  }
  return g;
}

}  // namespace mcqa::eval
