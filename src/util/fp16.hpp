#pragma once
// IEEE 754 binary16 conversion.
//
// The paper stores PubMedBERT chunk embeddings as FP16 (747 MB total for
// 173,318 x 768 vectors).  Our vector store keeps the same storage
// discipline: vectors are quantized to half precision at rest and widened
// to float for arithmetic.  Software conversion keeps us portable (no
// reliance on _Float16 availability) and is fast enough off the hot path.

#include <bit>
#include <cstdint>
#include <vector>

namespace mcqa::util {

using fp16_t = std::uint16_t;

constexpr fp16_t float_to_fp16(float f) noexcept {
  const std::uint32_t x = std::bit_cast<std::uint32_t>(f);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  std::uint32_t mantissa = x & 0x007fffffu;
  const std::int32_t exp = static_cast<std::int32_t>((x >> 23) & 0xffu) - 127;

  if (exp > 15) {
    // Overflow (or inf/nan source): inf, preserving nan payload bit.
    const bool is_nan = exp == 128 && mantissa != 0;
    return static_cast<fp16_t>(sign | 0x7c00u | (is_nan ? 0x0200u : 0u));
  }
  if (exp >= -14) {
    // Normal range: round-to-nearest-even on the 13 dropped bits.
    std::uint32_t half = sign | (static_cast<std::uint32_t>(exp + 15) << 10) |
                         (mantissa >> 13);
    const std::uint32_t rem = mantissa & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) ++half;
    return static_cast<fp16_t>(half);
  }
  if (exp >= -24) {
    // Subnormal half: value = mantissa24 * 2^(exp-23), subnormal unit is
    // 2^-24, so the bits are mantissa24 >> (-exp - 1).
    mantissa |= 0x00800000u;
    const int shift = -exp - 2;
    std::uint32_t half = sign | (mantissa >> (shift + 1));
    const std::uint32_t rem = mantissa & ((1u << (shift + 1)) - 1);
    const std::uint32_t halfway = 1u << shift;
    if (rem > halfway || (rem == halfway && (half & 1u))) ++half;
    return static_cast<fp16_t>(half);
  }
  return static_cast<fp16_t>(sign);  // underflow to signed zero
}

constexpr float fp16_to_float(fp16_t h) noexcept {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  std::uint32_t mantissa = h & 0x3ffu;

  if (exp == 0x1f) {  // inf / nan
    return std::bit_cast<float>(sign | 0x7f800000u | (mantissa << 13));
  }
  if (exp == 0) {
    if (mantissa == 0) return std::bit_cast<float>(sign);
    // Normalize the subnormal.
    int e = -1;
    do {
      ++e;
      mantissa <<= 1;
    } while ((mantissa & 0x400u) == 0);
    mantissa &= 0x3ffu;
    return std::bit_cast<float>(
        sign | static_cast<std::uint32_t>(127 - 15 - e) << 23 |
        (mantissa << 13));
  }
  return std::bit_cast<float>(sign |
                              ((exp + 127 - 15) << 23) | (mantissa << 13));
}

inline std::vector<fp16_t> quantize_fp16(const std::vector<float>& v) {
  std::vector<fp16_t> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = float_to_fp16(v[i]);
  return out;
}

inline std::vector<float> dequantize_fp16(const std::vector<fp16_t>& v) {
  std::vector<float> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = fp16_to_float(v[i]);
  return out;
}

}  // namespace mcqa::util
