#pragma once
// Stable, platform-independent hashing.
//
// std::hash is implementation-defined, so anything that must be
// reproducible across runs and toolchains (document ids, embedding
// feature hashing, RNG forking) goes through these FNV-1a variants.

#include <cstdint>
#include <string>
#include <string_view>

namespace mcqa::util {

constexpr std::uint64_t kFnvOffset64 = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime64 = 0x100000001b3ULL;

constexpr std::uint64_t fnv1a64(std::string_view s,
                                std::uint64_t seed = kFnvOffset64) noexcept {
  std::uint64_t h = seed;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime64;
  }
  return h;
}

constexpr std::uint64_t fnv1a64(std::uint64_t v,
                                std::uint64_t seed = kFnvOffset64) noexcept {
  std::uint64_t h = seed;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffu;
    h *= kFnvPrime64;
  }
  return h;
}

/// boost-style combiner on top of FNV words.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

/// Short stable hex digest, used for chunk_id provenance ("filehash_index"
/// in the paper's Fig. 2 schema).
std::string hex_digest(std::uint64_t h, int width = 12);

}  // namespace mcqa::util
