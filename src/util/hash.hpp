#pragma once
// Stable, platform-independent hashing.
//
// std::hash is implementation-defined, so anything that must be
// reproducible across runs and toolchains (document ids, embedding
// feature hashing, RNG forking) goes through these FNV-1a variants.

#include <cstdint>
#include <string>
#include <string_view>

namespace mcqa::util {

constexpr std::uint64_t kFnvOffset64 = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime64 = 0x100000001b3ULL;

constexpr std::uint64_t fnv1a64(std::string_view s,
                                std::uint64_t seed = kFnvOffset64) noexcept {
  std::uint64_t h = seed;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime64;
  }
  return h;
}

constexpr std::uint64_t fnv1a64(std::uint64_t v,
                                std::uint64_t seed = kFnvOffset64) noexcept {
  std::uint64_t h = seed;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffu;
    h *= kFnvPrime64;
  }
  return h;
}

/// boost-style combiner on top of FNV words.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

/// Incremental FNV-1a: feeding bytes piecewise produces exactly the
/// one-shot `fnv1a64` digest of their concatenation, because FNV-1a
/// folds one byte at a time with no finalization step.  This is what
/// lets the streaming embedder hash an n-gram as
/// `update(w1).update(' ').update(w2)` without materializing the
/// "w1 w2" string: the digest equals fnv1a64("w1 w2") bit-for-bit.
class Fnv1a {
 public:
  constexpr explicit Fnv1a(std::uint64_t seed = kFnvOffset64) noexcept
      : h_(seed) {}

  constexpr Fnv1a& update(char c) noexcept {
    h_ ^= static_cast<std::uint8_t>(c);
    h_ *= kFnvPrime64;
    return *this;
  }

  constexpr Fnv1a& update(std::string_view s) noexcept {
    for (const char c : s) update(c);
    return *this;
  }

  constexpr std::uint64_t digest() const noexcept { return h_; }

 private:
  std::uint64_t h_;
};

/// Short stable hex digest, used for chunk_id provenance ("filehash_index"
/// in the paper's Fig. 2 schema).
std::string hex_digest(std::uint64_t h, int width = 12);

}  // namespace mcqa::util
