#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace mcqa::util {

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    const std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

namespace {
template <typename Parts>
std::string join_impl(const Parts& parts, std::string_view sep) {
  std::string out;
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size() + sep.size();
  out.reserve(total);
  bool first = true;
  for (const auto& p : parts) {
    if (!first) out.append(sep);
    out.append(p);
    first = false;
  }
  return out;
}
}  // namespace

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  return join_impl(parts, sep);
}

std::string join(const std::vector<std::string_view>& parts,
                 std::string_view sep) {
  return join_impl(parts, sep);
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool contains_ci(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  const auto lower = [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  };
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (std::size_t j = 0; j < needle.size(); ++j) {
      if (lower(static_cast<unsigned char>(haystack[i + j])) !=
          lower(static_cast<unsigned char>(needle[j]))) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  out.reserve(s.size());
  std::size_t pos = 0;
  for (;;) {
    const std::size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      return out;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string format_param_count(double billions) {
  char buf[32];
  if (billions == static_cast<long long>(billions)) {
    std::snprintf(buf, sizeof(buf), "%lld B",
                  static_cast<long long>(billions));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f B", billions);
  }
  return buf;
}

std::size_t edit_distance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<std::size_t> prev(a.size() + 1);
  std::vector<std::size_t> cur(a.size() + 1);
  for (std::size_t i = 0; i <= a.size(); ++i) prev[i] = i;
  for (std::size_t j = 1; j <= b.size(); ++j) {
    cur[0] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
      const std::size_t sub = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[a.size()];
}

double string_similarity(std::string_view a, std::string_view b) {
  const std::size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  const std::size_t d = edit_distance(a, b);
  return 1.0 - static_cast<double>(d) / static_cast<double>(longest);
}

}  // namespace mcqa::util
