#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace mcqa::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_line(LogLevel level, std::string_view module, std::string_view msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(module.size()), module.data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace mcqa::util
