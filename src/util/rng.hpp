#pragma once
// Deterministic pseudo-random number generation for the whole pipeline.
//
// Every stochastic component in the library (corpus synthesis, question
// generation, student-model sampling, index construction) draws from an
// explicitly seeded Rng so that a given ExperimentConfig reproduces the
// same benchmark bit-for-bit on any platform.  We use PCG32 (O'Neill,
// 2014) rather than std::mt19937 because its output is identical across
// standard library implementations and it is cheap to fork into
// independent streams — forkability is what lets parallel pipeline
// stages stay deterministic regardless of scheduling order.

#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

namespace mcqa::util {

/// splitmix64: used to expand a single user seed into stream seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// PCG32 generator: 64-bit state, 32-bit output, 2^63 selectable streams.
class Rng {
 public:
  using result_type = std::uint32_t;

  constexpr explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
                         std::uint64_t stream = 0xda3e39cb94b95bdbULL) noexcept
      : state_(0), inc_((stream << 1u) | 1u) {
    next();
    state_ += seed;
    next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept { return next(); }

  /// Uniform in [0, bound) without modulo bias (Lemire's method would be
  /// faster; rejection keeps it obviously correct).
  constexpr std::uint32_t bounded(std::uint32_t bound) noexcept {
    if (bound <= 1) return 0;
    const std::uint32_t threshold = (0u - bound) % bound;
    for (;;) {
      const std::uint32_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    if (hi <= lo) return lo;
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // Compose two 32-bit draws when the span exceeds 32 bits.
    if (span <= std::numeric_limits<std::uint32_t>::max()) {
      return lo + static_cast<std::int64_t>(bounded(static_cast<std::uint32_t>(span)));
    }
    const std::uint64_t r = (static_cast<std::uint64_t>(next()) << 32) | next();
    return lo + static_cast<std::int64_t>(r % span);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(next()) * 0x1.0p-32;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Bernoulli draw.
  constexpr bool chance(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box-Muller (polar-free variant; two uniforms).
  double normal(double mean = 0.0, double stddev = 1.0) noexcept;

  /// Zipf-distributed rank in [0, n) with exponent s.  Scientific topic
  /// and entity frequencies are heavy-tailed; the corpus generator uses
  /// this to mimic the skew of real literature.
  std::size_t zipf(std::size_t n, double s = 1.1) noexcept;

  /// Fork an independent stream keyed by `salt`.  Children are
  /// statistically independent of the parent and of each other, which
  /// makes per-item generators order-independent under parallelism.
  constexpr Rng fork(std::uint64_t salt) const noexcept {
    std::uint64_t s = state_ ^ (salt * 0x9e3779b97f4a7c15ULL);
    const std::uint64_t seed = splitmix64(s);
    const std::uint64_t stream = splitmix64(s);
    return Rng(seed, stream);
  }

  /// Fork keyed by a string (e.g. a document id).
  Rng fork(std::string_view salt) const noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = bounded(static_cast<std::uint32_t>(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k) noexcept;

  /// Pick an index according to non-negative weights; returns n if all
  /// weights are zero or the vector is empty.
  std::size_t weighted_pick(const std::vector<double>& weights) noexcept;

 private:
  constexpr std::uint32_t next() noexcept {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((0u - rot) & 31u));
  }

  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace mcqa::util
