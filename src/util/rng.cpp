#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/hash.hpp"

namespace mcqa::util {

double Rng::normal(double mean, double stddev) noexcept {
  // Box-Muller; draws two uniforms per call and discards the cosine twin
  // so the generator state advances a fixed amount per call (cheaper to
  // reason about reproducibility than caching the spare).
  double u1 = uniform();
  const double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-40;  // avoid log(0)
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

std::size_t Rng::zipf(std::size_t n, double s) noexcept {
  if (n <= 1) return 0;
  if (s <= 1.0) s = 1.0 + 1e-6;  // Devroye's sampler needs s > 1
  // Devroye's rejection sampler (Non-Uniform Random Variate Generation,
  // ch. X.6).  Expected O(1) draws per sample regardless of n.
  const double b = std::pow(2.0, s - 1.0);
  const double nd = static_cast<double>(n);
  for (;;) {
    const double u = uniform();
    const double v = uniform();
    const double x = std::floor(std::pow(1.0 - u, -1.0 / (s - 1.0)));
    if (x < 1.0 || x > nd) continue;
    const double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      return static_cast<std::size_t>(x) - 1;
    }
  }
}

Rng Rng::fork(std::string_view salt) const noexcept {
  return fork(fnv1a64(salt));
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) noexcept {
  if (k > n) k = n;
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k == 0) return out;
  // Partial Fisher-Yates over an index vector; O(n) memory but simple and
  // exact.  n in this codebase is at most a few hundred thousand.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j =
        i + bounded(static_cast<std::uint32_t>(n - i));
    std::swap(idx[i], idx[j]);
    out.push_back(idx[i]);
  }
  return out;
}

std::size_t Rng::weighted_pick(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return weights.size();
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

}  // namespace mcqa::util
