#include "util/hash.hpp"

namespace mcqa::util {

std::string hex_digest(std::uint64_t h, int width) {
  static const char* kHex = "0123456789abcdef";
  if (width < 1) width = 1;
  if (width > 16) width = 16;
  std::string out(static_cast<std::size_t>(width), '0');
  for (int i = width - 1; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[h & 0xf];
    h >>= 4;
  }
  return out;
}

}  // namespace mcqa::util
