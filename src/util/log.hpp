#pragma once
// Minimal leveled logger.  Thread-safe; a single global sink writes
// whole lines so parallel pipeline stages never interleave mid-line.

#include <sstream>
#include <string>
#include <string_view>

namespace mcqa::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped before formatting.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line (thread-safe).  Prefer the LOG_* macros below.
void log_line(LogLevel level, std::string_view module, std::string_view msg);

namespace detail {
class LogStream {
 public:
  LogStream(LogLevel level, std::string_view module)
      : level_(level), module_(module) {}
  ~LogStream() { log_line(level_, module_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string module_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace mcqa::util

#define MCQA_LOG(level, module)                                      \
  if (static_cast<int>(level) < static_cast<int>(::mcqa::util::log_level())) \
    ;                                                                \
  else                                                               \
    ::mcqa::util::detail::LogStream(level, module)

#define MCQA_DEBUG(module) MCQA_LOG(::mcqa::util::LogLevel::kDebug, module)
#define MCQA_INFO(module) MCQA_LOG(::mcqa::util::LogLevel::kInfo, module)
#define MCQA_WARN(module) MCQA_LOG(::mcqa::util::LogLevel::kWarn, module)
#define MCQA_ERROR(module) MCQA_LOG(::mcqa::util::LogLevel::kError, module)
