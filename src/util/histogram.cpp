#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mcqa::util {

void SummaryStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  sum_sq_ += x * x;
}

void SummaryStats::merge(const SummaryStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

double SummaryStats::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double SummaryStats::variance() const {
  if (count_ == 0) return 0.0;
  const double m = mean();
  const double v = sum_sq_ / static_cast<double>(count_) - m * m;
  return v > 0.0 ? v : 0.0;
}

double SummaryStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
}

void Histogram::add(double x) {
  stats_.add(x);
  samples_.push_back(x);
  samples_sorted_ = false;
  ++total_;
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::size_t>(
      q * static_cast<double>(total_ - 1));
  std::size_t seen = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    seen += counts_[b];
    if (seen > target) {
      const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
      return lo_ + (static_cast<double>(b) + 0.5) * width;
    }
  }
  return hi_;
}

double Histogram::exact_quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!samples_sorted_) {
    std::sort(samples_.begin(), samples_.end());
    samples_sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the smallest sample with cumulative frequency >= q.
  const double rank = std::ceil(q * static_cast<double>(samples_.size()));
  const auto idx = static_cast<std::size_t>(
      std::clamp<double>(rank - 1.0, 0.0,
                         static_cast<double>(samples_.size() - 1)));
  return samples_[idx];
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 0;
  for (const std::size_t c : counts_) peak = std::max(peak, c);
  if (peak == 0) return "(empty histogram)\n";
  std::string out;
  const double bin_width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double left = lo_ + static_cast<double>(b) * bin_width;
    char label[48];
    std::snprintf(label, sizeof(label), "%10.2f | ", left);
    out += label;
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out.append(bar, '#');
    out += " (" + std::to_string(counts_[b]) + ")\n";
  }
  return out;
}

}  // namespace mcqa::util
