#pragma once
// Small string helpers shared across modules.  Everything here is
// allocation-conscious: splitters return string_views into the input
// where lifetime permits.

#include <string>
#include <string_view>
#include <vector>

namespace mcqa::util {

/// Split on a single delimiter character; empty fields are kept.
std::vector<std::string_view> split(std::string_view s, char delim);

/// Split on any run of whitespace; empty fields are dropped.
std::vector<std::string_view> split_ws(std::string_view s);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string join(const std::vector<std::string_view>& parts,
                 std::string_view sep);

std::string_view trim(std::string_view s);
std::string to_lower(std::string_view s);
std::string to_upper(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);
bool contains_ci(std::string_view haystack, std::string_view needle);

/// Replace all occurrences of `from` with `to`.
std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to);

/// printf-lite formatting of doubles with fixed precision (locale-free).
std::string format_double(double v, int precision);

/// "1.1 B", "14 B" style parameter-count formatting.
std::string format_param_count(double billions);

/// Levenshtein edit distance (used by the judge to match noisy option
/// references back to canonical option text).
std::size_t edit_distance(std::string_view a, std::string_view b);

/// Normalized similarity in [0,1] derived from edit distance.
double string_similarity(std::string_view a, std::string_view b);

}  // namespace mcqa::util
