#pragma once
// Streaming summary statistics + fixed-bin histogram.  Used for chunk
// length distributions, quality-score distributions, and retrieval
// similarity diagnostics.

#include <cstddef>
#include <string>
#include <vector>

namespace mcqa::util {

class SummaryStats {
 public:
  void add(double x);
  void merge(const SummaryStats& other);

  std::size_t count() const { return count_; }
  double mean() const;
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  const SummaryStats& stats() const { return stats_; }

  /// Approximate quantile from bin midpoints, q in [0,1].
  double quantile(double q) const;

  /// Exact quantile over the retained samples (nearest-rank: the
  /// ceil(q*n)-th smallest, with q=0 mapping to the minimum).  Unlike
  /// quantile(), this does not round to a bin midpoint — ServerMetrics
  /// uses it for tail latencies, where bin-midpoint error would swamp
  /// p95/p99/p99.9 differences.  Returns 0.0 on an empty histogram
  /// (never NaN); with one sample every q returns that sample.
  double exact_quantile(double q) const;
  double p50() const { return exact_quantile(0.50); }
  double p95() const { return exact_quantile(0.95); }
  double p99() const { return exact_quantile(0.99); }
  /// The serving tier's headline tail (live-serving bench): nearest-rank
  /// p99.9, i.e. the max until the sample count reaches 1000.
  double p999() const { return exact_quantile(0.999); }

  /// Simple ASCII rendering for bench output.
  std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  SummaryStats stats_;
  /// Raw samples backing exact_quantile(); sorted lazily on access.
  mutable std::vector<double> samples_;
  mutable bool samples_sorted_ = true;
};

}  // namespace mcqa::util
