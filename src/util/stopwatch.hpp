#pragma once
// Wall-clock stopwatch for throughput reporting in benches and the
// scaling experiment.  Not used anywhere determinism matters.

#include <chrono>

namespace mcqa::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mcqa::util
