#include "index/vector_index.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "index/kmeans.hpp"
#include "parallel/thread_pool.hpp"

namespace mcqa::index {

namespace {

/// Keep the best k results in descending score order (ties by row).
/// Cold paths only; hot paths go through the bounded-heap TopK.
void sort_and_trim(std::vector<SearchResult>& results, std::size_t k) {
  std::sort(results.begin(), results.end(),
            [](const SearchResult& a, const SearchResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.row < b.row;
            });
  if (results.size() > k) results.resize(k);
}

}  // namespace

std::string_view index_kind_name(IndexKind kind) {
  switch (kind) {
    case IndexKind::kFlat:
      return "flat";
    case IndexKind::kIvf:
      return "ivf";
    case IndexKind::kHnsw:
      return "hnsw";
    case IndexKind::kSq8:
      return "sq8";
    case IndexKind::kIvfPq:
      return "ivfpq";
  }
  return "unknown";
}

// --- bulk construction -------------------------------------------------------

void VectorIndex::add_batch(const std::vector<embed::Vector>& vs) {
  // Fallback for index types without a storage-reservation override:
  // insertion order (and therefore the resulting index) matches the
  // sequential add() loop exactly.
  for (const auto& v : vs) add(v);
}

void VectorIndex::build(parallel::ThreadPool& pool) {
  (void)pool;
  build();
}

// --- batched search ----------------------------------------------------------

void VectorIndex::search_block(
    const std::vector<embed::Vector>& queries, std::size_t begin,
    std::size_t end, std::size_t k,
    std::vector<std::vector<SearchResult>>& out) const {
  // Graph/list indexes without a tiled override keep the per-query
  // scan; the batched paths still gain the grain-size chunking.
  for (std::size_t i = begin; i < end; ++i) out[i] = search(queries[i], k);
}

std::vector<std::vector<SearchResult>> VectorIndex::search_tiled(
    const std::vector<embed::Vector>& queries, std::size_t k) const {
  std::vector<std::vector<SearchResult>> out(queries.size());
  search_block(queries, 0, queries.size(), k, out);
  return out;
}

namespace {

/// Deterministic tile-aligned block size for search_batch: a pure
/// function of (batch size, store rows, pool width) — never of timing.
/// Tasks own whole kTileQ query tiles and at least ~2^15 row-score
/// operations, so pool dispatch overhead cannot dominate small
/// (--smoke) corpora; the ceil(n / (threads * 4)) term stops blocks
/// shrinking below ~4 tasks per worker on big batches.
std::size_t batch_block_queries(std::size_t n, std::size_t rows,
                                std::size_t threads) {
  constexpr std::size_t kMinRowScores = std::size_t{1} << 15;
  const std::size_t per_query = std::max<std::size_t>(rows, 1);
  std::size_t block = (kMinRowScores + per_query - 1) / per_query;
  const std::size_t tasks = std::max<std::size_t>(threads, 1) * 4;
  block = std::max(block, (n + tasks - 1) / tasks);
  const std::size_t tile = kernels::kTileQ;
  block = (block + tile - 1) / tile * tile;
  return std::min(block, std::max<std::size_t>(n, 1));
}

}  // namespace

std::vector<std::vector<SearchResult>> VectorIndex::search_batch(
    const std::vector<embed::Vector>& queries, std::size_t k,
    parallel::ThreadPool& pool) const {
  const std::size_t n = queries.size();
  std::vector<std::vector<SearchResult>> out(n);
  if (n == 0) return out;
  const std::size_t block = batch_block_queries(n, size(), pool.thread_count());
  const std::size_t blocks = (n + block - 1) / block;
  // Each task scans a contiguous query block and writes only its own
  // result slots, so output never depends on completion order.
  parallel::parallel_for(
      pool, 0, blocks,
      [&](std::size_t b) {
        const std::size_t lo = b * block;
        search_block(queries, lo, std::min(n, lo + block), k, out);
      },
      /*grain=*/1);
  return out;
}

std::vector<std::vector<SearchResult>> VectorIndex::search_batch(
    const std::vector<embed::Vector>& queries, std::size_t k) const {
  return search_batch(queries, k, parallel::ThreadPool::global());
}

// --- FlatIndex ---------------------------------------------------------------

void FlatIndex::add(const embed::Vector& v) {
  if (v.size() != dim_) throw std::invalid_argument("FlatIndex::add: dim");
  // No per-add reserve: an exact-fit reserve on every call forces a
  // full reallocate-and-copy per row (quadratic build); push_back's
  // geometric growth amortizes to linear.
  for (const float x : v) data_.push_value(util::float_to_fp16(x));
}

void FlatIndex::add_batch(const std::vector<embed::Vector>& vs) {
  data_.reserve(data_.size() + vs.size());
  for (const auto& v : vs) add(v);
}

float FlatIndex::score_row(std::size_t row, const embed::Vector& q) const {
  return kernels::dot_fp16(data_.row(row), q.data(), dim_);
}

std::vector<SearchResult> FlatIndex::search(const embed::Vector& query,
                                            std::size_t k) const {
  const std::size_t rows = data_.size();
  TopK top(std::min(k, rows));
  const util::fp16_t* base = data_.raw();
  for (std::size_t row = 0; row < rows; ++row) {
    top.push(row, kernels::dot_fp16(base + row * dim_, query.data(), dim_));
  }
  return top.take_sorted();
}

void FlatIndex::search_block(
    const std::vector<embed::Vector>& queries, std::size_t begin,
    std::size_t end, std::size_t k,
    std::vector<std::vector<SearchResult>>& out) const {
  const std::size_t rows = data_.size();
  const std::size_t kk = std::min(k, rows);
  const util::fp16_t* base = data_.raw();
  constexpr std::size_t kQ = kernels::kTileQ;
  std::vector<TopK> tops(kQ, TopK(kk));
  const float* qs[kQ];
  float scores[kQ];
  for (std::size_t t = begin; t < end; t += kQ) {
    const std::size_t qn = std::min(kQ, end - t);
    for (std::size_t qi = 0; qi < qn; ++qi) {
      qs[qi] = queries[t + qi].data();
      tops[qi].reset(kk);
    }
    // One pass over the rows: each fp16 row is widened once and scored
    // against the whole tile; dot_fp16_tile keeps every per-query score
    // bit-identical to the single-query kernel search() uses.
    for (std::size_t row = 0; row < rows; ++row) {
      kernels::dot_fp16_tile(base + row * dim_, qs, qn, dim_, scores);
      for (std::size_t qi = 0; qi < qn; ++qi) tops[qi].push(row, scores[qi]);
    }
    for (std::size_t qi = 0; qi < qn; ++qi) {
      out[t + qi] = tops[qi].take_sorted();
    }
  }
}

embed::Vector FlatIndex::vector(std::size_t row) const {
  embed::Vector out(dim_);
  const util::fp16_t* src = data_.row(row);
  for (std::size_t i = 0; i < dim_; ++i) out[i] = util::fp16_to_float(src[i]);
  return out;
}

// --- IvfIndex ----------------------------------------------------------------

IvfIndex::IvfIndex(std::size_t dim, IvfConfig config)
    : dim_(dim), config_(config), vectors_(dim), centroids_(dim) {}

void IvfIndex::add(const embed::Vector& v) {
  if (v.size() != dim_) throw std::invalid_argument("IvfIndex::add: dim");
  vectors_.add(v);
  built_ = false;
}

void IvfIndex::add_batch(const std::vector<embed::Vector>& vs) {
  vectors_.reserve(vectors_.size() + vs.size());
  for (const auto& v : vs) add(v);
}

void IvfIndex::build() {
  const std::size_t n = vectors_.size();
  if (n == 0) {
    built_ = true;
    return;
  }
  // Seeded spherical k-means (kmeans.cpp carries the historic training
  // loop verbatim, so the trained centroids are bit-identical to
  // pre-extraction builds).
  centroids_ = kmeans_spherical({vectors_.raw(), n, dim_, dim_},
                                std::min(config_.nlist, n),
                                config_.train_iters,
                                util::Rng(config_.seed));

  // Final assignment into inverted lists (same max-dot rule as the
  // trainer's assignment step).
  lists_.assign(centroids_.size(), {});
  for (std::size_t i = 0; i < n; ++i) {
    lists_[nearest_dot(centroids_, vectors_.row(i))].push_back(i);
  }
  built_ = true;
}

std::vector<SearchResult> IvfIndex::search(const embed::Vector& query,
                                           std::size_t k) const {
  if (!built_) {
    throw std::logic_error("IvfIndex::search called before build()");
  }
  if (centroids_.size() == 0) return {};

  // Rank cells by centroid similarity; probe the top nprobe.
  TopK cell_top(std::min(config_.nprobe, centroids_.size()));
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    cell_top.push(c, kernels::dot(query.data(), centroids_.row(c), dim_));
  }
  const auto cells = cell_top.take_sorted();

  TopK top(k);
  for (const auto& cell : cells) {
    for (const std::size_t row : lists_[cell.row]) {
      top.push(row, kernels::dot(query.data(), vectors_.row(row), dim_));
    }
  }
  return top.take_sorted();
}

// --- HnswIndex ---------------------------------------------------------------

namespace {

/// Heap orders matching the classic HNSW beam: candidates pop highest
/// score first, `best` evicts its lowest score first.
inline bool cand_less(const SearchResult& a, const SearchResult& b) {
  return a.score < b.score;  // max-heap on candidates
}
inline bool best_less(const SearchResult& a, const SearchResult& b) {
  return a.score > b.score;  // min-heap on results
}

/// One scratch per worker thread: batched searches run allocation-free
/// after warm-up, and the single-query path reuses it across calls.
HnswIndex::SearchScratch& hnsw_scratch() {
  static thread_local HnswIndex::SearchScratch scratch;
  return scratch;
}

}  // namespace

void HnswIndex::SearchScratch::begin(std::size_t n) {
  if (visited_epoch.size() < n) visited_epoch.resize(n, 0);
  if (++epoch == 0) {  // stamp wrap: invalidate everything once
    std::fill(visited_epoch.begin(), visited_epoch.end(), 0u);
    epoch = 1;
  }
  candidates.clear();
  best.clear();
}

bool HnswIndex::SearchScratch::visit(std::size_t row) {
  if (visited_epoch[row] == epoch) return false;
  visited_epoch[row] = epoch;
  return true;
}

HnswIndex::HnswIndex(std::size_t dim, HnswConfig config)
    : dim_(dim), config_(config), vectors_(dim), level_rng_(config.seed) {}

float HnswIndex::sim(std::size_t row, const embed::Vector& q) const {
  return kernels::dot(vectors_.row(row), q.data(), dim_);
}

std::size_t HnswIndex::greedy_descend(const embed::Vector& q,
                                      std::size_t entry, int from_level,
                                      int to_level) const {
  std::size_t current = entry;
  float current_sim = sim(current, q);
  for (int layer = from_level; layer > to_level; --layer) {
    bool improved = true;
    while (improved) {
      improved = false;
      const auto& nbrs = nodes_[current].links[static_cast<std::size_t>(layer)];
      for (const std::uint32_t nb : nbrs) {
        const float s = sim(nb, q);
        if (s > current_sim) {
          current_sim = s;
          current = nb;
          improved = true;
        }
      }
    }
  }
  return current;
}

std::vector<SearchResult> HnswIndex::search_layer(
    const embed::Vector& q, std::size_t entry, std::size_t ef, int layer,
    SearchScratch& scratch) const {
  // Classic best-first beam with a bounded result heap, running on the
  // scratch's reusable buffers.
  scratch.begin(nodes_.size());
  auto& candidates = scratch.candidates;
  auto& best = scratch.best;

  const SearchResult start{entry, sim(entry, q)};
  candidates.push_back(start);
  best.push_back(start);
  scratch.visit(entry);

  while (!candidates.empty()) {
    const SearchResult cand = candidates.front();
    std::pop_heap(candidates.begin(), candidates.end(), cand_less);
    candidates.pop_back();
    if (best.size() >= ef && cand.score < best.front().score) break;
    const auto& nbrs =
        nodes_[cand.row].links[static_cast<std::size_t>(layer)];
    for (const std::uint32_t nb : nbrs) {
      if (!scratch.visit(nb)) continue;
      const SearchResult next{nb, sim(nb, q)};
      if (best.size() < ef || next.score > best.front().score) {
        candidates.push_back(next);
        std::push_heap(candidates.begin(), candidates.end(), cand_less);
        best.push_back(next);
        std::push_heap(best.begin(), best.end(), best_less);
        if (best.size() > ef) {
          std::pop_heap(best.begin(), best.end(), best_less);
          best.pop_back();
        }
      }
    }
  }

  // sort_heap == repeated pop_heap, so equal scores leave in the same
  // order the old priority_queue drain produced; best_less ascending is
  // score-descending.
  std::vector<SearchResult> out(best.begin(), best.end());
  std::sort_heap(out.begin(), out.end(), best_less);
  return out;
}

void HnswIndex::connect(std::size_t row, int layer,
                        const std::vector<SearchResult>& candidates) {
  auto& links = nodes_[row].links[static_cast<std::size_t>(layer)];
  const std::size_t max_links =
      layer == 0 ? config_.m * 2 : config_.m;
  for (const auto& cand : candidates) {
    if (cand.row == row) continue;
    if (links.size() >= max_links) break;
    links.push_back(static_cast<std::uint32_t>(cand.row));
    // Reciprocal edge, pruned to the neighbor's budget by keeping the
    // strongest connections.
    auto& back =
        nodes_[cand.row].links[static_cast<std::size_t>(layer)];
    back.push_back(static_cast<std::uint32_t>(row));
    if (back.size() > max_links) {
      const float* pivot = vectors_.row(cand.row);
      std::sort(back.begin(), back.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  return kernels::dot(vectors_.row(a), pivot, dim_) >
                         kernels::dot(vectors_.row(b), pivot, dim_);
                });
      back.resize(max_links);
    }
  }
}

void HnswIndex::add_batch(const std::vector<embed::Vector>& vs) {
  // Graph insertion itself stays sequential (it consumes level_rng_ and
  // links depend on all prior rows), so the batch is bit-identical to
  // the add() loop; the win is the one-shot storage reservation.
  vectors_.reserve(vectors_.size() + vs.size());
  nodes_.reserve(nodes_.size() + vs.size());
  for (const auto& v : vs) add(v);
}

void HnswIndex::add(const embed::Vector& v) {
  if (v.size() != dim_) throw std::invalid_argument("HnswIndex::add: dim");
  const std::size_t row = vectors_.size();
  vectors_.add(v);

  // Exponentially distributed level (p = 1/e discipline via uniform).
  int level = 0;
  {
    const double ml = 1.0 / std::log(static_cast<double>(config_.m));
    const double u = level_rng_.uniform();
    level = static_cast<int>(-std::log(std::max(u, 1e-12)) * ml);
    level = std::min(level, 16);
  }

  Node node;
  node.level = level;
  node.links.resize(static_cast<std::size_t>(level) + 1);
  nodes_.push_back(std::move(node));

  if (row == 0) {
    entry_point_ = 0;
    max_level_ = level;
    return;
  }

  std::size_t entry = entry_point_;
  if (level < max_level_) {
    entry = greedy_descend(v, entry, max_level_, level);
  }
  SearchScratch& scratch = hnsw_scratch();
  for (int layer = std::min(level, max_level_); layer >= 0; --layer) {
    auto found = search_layer(v, entry, config_.ef_construction, layer,
                              scratch);
    connect(row, layer, found);
    if (!found.empty()) entry = found.front().row;
  }
  if (level > max_level_) {
    max_level_ = level;
    entry_point_ = row;
  }
}

std::vector<SearchResult> HnswIndex::search(const embed::Vector& query,
                                            std::size_t k) const {
  if (vectors_.size() == 0) return {};
  const std::size_t entry =
      greedy_descend(query, entry_point_, max_level_, 0);
  auto results = search_layer(query, entry, std::max(config_.ef_search, k),
                              0, hnsw_scratch());
  sort_and_trim(results, k);
  return results;
}

std::size_t HnswIndex::payload_bytes() const {
  std::size_t bytes = vectors_.value_count() * sizeof(float);
  for (const auto& node : nodes_) {
    for (const auto& layer : node.links) {
      bytes += layer.size() * sizeof(std::uint32_t);
    }
  }
  return bytes;
}

// --- Ground truth helpers ------------------------------------------------------

std::vector<SearchResult> exact_search(const std::vector<embed::Vector>& data,
                                       const embed::Vector& query,
                                       std::size_t k) {
  TopK top(std::min(k, data.size()));
  for (std::size_t i = 0; i < data.size(); ++i) {
    top.push(i, embed::dot(data[i], query));
  }
  return top.take_sorted();
}

double recall_at_k(const std::vector<SearchResult>& got,
                   const std::vector<SearchResult>& want) {
  if (want.empty()) return 1.0;
  std::unordered_set<std::size_t> want_rows;
  for (const auto& r : want) want_rows.insert(r.row);
  std::size_t hits = 0;
  for (const auto& r : got) hits += want_rows.contains(r.row) ? 1 : 0;
  return static_cast<double>(hits) / static_cast<double>(want.size());
}

}  // namespace mcqa::index
