#include "index/mmap_file.hpp"

#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define MCQA_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#include <fstream>
#endif

namespace mcqa::index {

MappedFile::~MappedFile() { reset(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : addr_(std::exchange(other.addr_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      fallback_(std::move(other.fallback_)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    addr_ = std::exchange(other.addr_, nullptr);
    size_ = std::exchange(other.size_, 0);
    fallback_ = std::move(other.fallback_);
  }
  return *this;
}

void MappedFile::reset() noexcept {
#ifdef MCQA_HAVE_MMAP
  if (addr_ != nullptr) ::munmap(addr_, size_);
#endif
  addr_ = nullptr;
  size_ = 0;
  fallback_.reset();
}

MappedFile MappedFile::open(const std::string& path) {
  MappedFile out;
#ifdef MCQA_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("MappedFile::open: cannot open " + path);
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("MappedFile::open: cannot stat " + path);
  }
  out.size_ = static_cast<std::size_t>(st.st_size);
  if (out.size_ == 0) {
    // mmap of length 0 is an error; an empty file is a valid (empty)
    // blob, represented by the fallback buffer.
    ::close(fd);
    out.fallback_ = std::make_unique<std::string>();
    return out;
  }
  void* addr = ::mmap(nullptr, out.size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (addr == MAP_FAILED) {
    throw std::runtime_error("MappedFile::open: mmap failed for " + path);
  }
  out.addr_ = addr;
#else
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("MappedFile::open: cannot open " + path);
  }
  auto buf = std::make_unique<std::string>(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  out.size_ = buf->size();
  out.fallback_ = std::move(buf);
#endif
  return out;
}

std::string_view MappedFile::bytes() const {
  if (addr_ != nullptr) {
    return std::string_view(static_cast<const char*>(addr_), size_);
  }
  if (fallback_ != nullptr) return *fallback_;
  return {};
}

}  // namespace mcqa::index
