// AVX2 kernel table: the same -ffp-contract=off loop bodies as the
// scalar TU, compiled with -mavx2 so the 8 independent lanes map onto
// 256-bit registers.  Selected at runtime only when cpuid reports AVX2
// (kernels.cpp).  When the compiler cannot target AVX2 the body
// compiles away and avx2_ops() reports the table unavailable.

#include "index/kernels_detail.hpp"

#if defined(__AVX2__)
#define MCQA_KERNEL_IMPL_NAMESPACE avx2_impl
#include "index/kernels_impl.inc"
#undef MCQA_KERNEL_IMPL_NAMESPACE
#endif

namespace mcqa::index::kernels::detail {

const KernelOps* avx2_ops() {
#if defined(__AVX2__)
  return &avx2_impl::ops();
#else
  return nullptr;
#endif
}

}  // namespace mcqa::index::kernels::detail
