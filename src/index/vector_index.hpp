#pragma once
// Vector similarity indexes (FAISS-equivalent substrate).
//
// Three implementations with the classic accuracy/speed trade-offs:
//   FlatIndex  exact brute force over FP16-at-rest vectors
//   IvfIndex   k-means coarse quantizer + inverted lists, nprobe knob
//   HnswIndex  navigable small-world graph, efSearch knob
//
// All operate on unit-norm vectors with inner-product scoring (cosine),
// computed by the blocked fixed-lane-order kernels in kernels.hpp —
// scores are bit-identical across runs, thread counts and build flags.
// IVF and HNSW keep their vectors in contiguous RowStorage so the
// kernels stream rows instead of chasing per-vector allocations.
//
// The index ablation bench (A1) sweeps recall@k versus queries/second
// across the three, reproducing the trade-off the paper delegates to
// FAISS.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "embed/embedder.hpp"
#include "index/kernels.hpp"
#include "index/row_storage.hpp"
#include "util/fp16.hpp"
#include "util/rng.hpp"

namespace mcqa::parallel {
class ThreadPool;
}

namespace mcqa::index {

struct SearchResult {
  std::size_t row = 0;
  float score = 0.0f;  ///< inner product (cosine for unit vectors)
};

class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  virtual std::string_view name() const = 0;
  virtual std::size_t dim() const = 0;
  virtual std::size_t size() const = 0;

  /// Append a vector; rows number 0..n-1 in insertion order.
  virtual void add(const embed::Vector& v) = 0;

  /// Append a batch of vectors.  Equivalent to calling add() row by row
  /// in order — bit-identical resulting index — but reserves storage
  /// once up front (bulk construction path).
  virtual void add_batch(const std::vector<embed::Vector>& vs);

  /// Finalize after adds (train the coarse quantizer, etc.).  Must be
  /// called before search for IVF; no-op elsewhere.
  virtual void build() {}

  /// Top-k rows by score, descending; ties broken by row id.
  virtual std::vector<SearchResult> search(const embed::Vector& query,
                                           std::size_t k) const = 0;

  /// Batched search: queries fan out across `pool` workers, each query
  /// runs with its own scratch, and results land in query order.
  /// Result i is identical (rows and scores) to `search(queries[i], k)`
  /// regardless of the pool's thread count.
  std::vector<std::vector<SearchResult>> search_batch(
      const std::vector<embed::Vector>& queries, std::size_t k,
      parallel::ThreadPool& pool) const;

  /// Batched search on the process-wide default pool.
  std::vector<std::vector<SearchResult>> search_batch(
      const std::vector<embed::Vector>& queries, std::size_t k) const;
};

// --- Flat ------------------------------------------------------------------

class FlatIndex final : public VectorIndex {
 public:
  explicit FlatIndex(std::size_t dim) : dim_(dim) {}

  std::string_view name() const override { return "flat"; }
  std::size_t dim() const override { return dim_; }
  std::size_t size() const override { return rows_; }
  void add(const embed::Vector& v) override;
  void add_batch(const std::vector<embed::Vector>& vs) override;
  std::vector<SearchResult> search(const embed::Vector& query,
                                   std::size_t k) const override;

  std::string save() const;
  static FlatIndex load(std::string_view blob);

  /// Widened copy of a stored row (shared with IVF/HNSW via protected
  /// storage would over-couple; each index owns its vectors).
  embed::Vector vector(std::size_t row) const;

 private:
  float score_row(std::size_t row, const embed::Vector& q) const;

  std::size_t dim_;
  std::size_t rows_ = 0;
  std::vector<util::fp16_t> data_;  ///< row-major FP16 at rest
};

// --- IVF -------------------------------------------------------------------

struct IvfConfig {
  std::size_t nlist = 64;      ///< number of k-means cells
  std::size_t nprobe = 8;      ///< cells visited per query
  std::size_t train_iters = 12;
  std::uint64_t seed = 99;
};

class IvfIndex final : public VectorIndex {
 public:
  IvfIndex(std::size_t dim, IvfConfig config = {});

  std::string_view name() const override { return "ivf"; }
  std::size_t dim() const override { return dim_; }
  std::size_t size() const override { return vectors_.size(); }
  void add(const embed::Vector& v) override;
  void add_batch(const std::vector<embed::Vector>& vs) override;
  void build() override;
  std::vector<SearchResult> search(const embed::Vector& query,
                                   std::size_t k) const override;

  void set_nprobe(std::size_t nprobe) { config_.nprobe = nprobe; }
  std::size_t nlist() const { return centroids_.size(); }

  /// Serialize the trained index (vectors + centroids + lists).
  std::string save() const;
  static IvfIndex load(std::string_view blob);

 private:
  std::size_t dim_;
  IvfConfig config_;
  bool built_ = false;
  RowStorage vectors_;
  RowStorage centroids_;
  std::vector<std::vector<std::size_t>> lists_;  ///< rows per centroid
};

// --- HNSW ------------------------------------------------------------------

struct HnswConfig {
  std::size_t m = 12;               ///< links per node per layer
  std::size_t ef_construction = 80;
  std::size_t ef_search = 48;
  std::uint64_t seed = 4242;
};

class HnswIndex final : public VectorIndex {
 public:
  HnswIndex(std::size_t dim, HnswConfig config = {});

  std::string_view name() const override { return "hnsw"; }
  std::size_t dim() const override { return dim_; }
  std::size_t size() const override { return vectors_.size(); }
  void add(const embed::Vector& v) override;
  void add_batch(const std::vector<embed::Vector>& vs) override;
  std::vector<SearchResult> search(const embed::Vector& query,
                                   std::size_t k) const override;

  void set_ef_search(std::size_t ef) { config_.ef_search = ef; }

  /// Serialize the graph (vectors + per-layer links + entry point).
  std::string save() const;
  static HnswIndex load(std::string_view blob);

  /// Reusable per-thread search state: an epoch-stamped visited buffer
  /// (one ++epoch instead of a fresh hash set per search_layer call)
  /// and the two beam heaps.  Each worker thread owns one via
  /// thread_local, so batched queries never contend or allocate.
  struct SearchScratch {
    std::vector<std::uint32_t> visited_epoch;
    std::uint32_t epoch = 0;
    std::vector<SearchResult> candidates;  ///< max-heap on score
    std::vector<SearchResult> best;        ///< min-heap on score

    /// Start a fresh visited set covering rows [0, n).
    void begin(std::size_t n);
    /// True on first visit of `row` this epoch.
    bool visit(std::size_t row);
  };

 private:
  struct Node {
    int level = 0;
    /// links[layer] = neighbor rows.
    std::vector<std::vector<std::uint32_t>> links;
  };

  float sim(std::size_t row, const embed::Vector& q) const;
  std::size_t greedy_descend(const embed::Vector& q, std::size_t entry,
                             int from_level, int to_level) const;
  std::vector<SearchResult> search_layer(const embed::Vector& q,
                                         std::size_t entry, std::size_t ef,
                                         int layer,
                                         SearchScratch& scratch) const;
  void connect(std::size_t row, int layer,
               const std::vector<SearchResult>& candidates);

  std::size_t dim_;
  HnswConfig config_;
  RowStorage vectors_;
  std::vector<Node> nodes_;
  std::size_t entry_point_ = 0;
  int max_level_ = -1;
  util::Rng level_rng_;
};

/// Exact ground truth for recall measurement: brute force over raw
/// vectors (float precision).
std::vector<SearchResult> exact_search(const std::vector<embed::Vector>& data,
                                       const embed::Vector& query,
                                       std::size_t k);

/// recall@k of `got` against exact `want` (fraction of want rows present).
double recall_at_k(const std::vector<SearchResult>& got,
                   const std::vector<SearchResult>& want);

}  // namespace mcqa::index
