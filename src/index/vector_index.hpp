#pragma once
// Vector similarity indexes (FAISS-equivalent substrate).
//
// Five implementations with the classic accuracy/speed/memory
// trade-offs:
//   FlatIndex    exact brute force over FP16-at-rest vectors
//   IvfIndex     k-means coarse quantizer + inverted lists, nprobe knob
//   HnswIndex    navigable small-world graph, efSearch knob
//   Sq8Index     scalar-quantized (uint8/dim) scan + exact fp16 rerank
//   IvfPqIndex   IVF cells over product-quantized codes + exact rerank
// (the quantized tier lives in quantized.hpp; this header carries the
// interface and the three full-precision indexes).
//
// All operate on unit-norm vectors with inner-product scoring (cosine),
// computed by the blocked fixed-lane-order kernels in kernels.hpp —
// scores are bit-identical across runs, thread counts and build flags.
// IVF and HNSW keep their vectors in contiguous RowStorage so the
// kernels stream rows instead of chasing per-vector allocations.
//
// Serialization: every index saves to a version-stamped blob
// (index_io.cpp).  Blobs load either resident (payload copied) or as a
// borrowed view over caller-owned bytes — the mmap path (mmap_file.hpp)
// that opens stores larger than RAM in O(1).  try_load_index() is the
// fail-soft dispatcher: unknown magic or truncated payloads return
// nullptr instead of throwing, which the checkpoint cache treats as a
// corrupt-blob miss.
//
// The index ablation bench (A1) sweeps recall@k versus queries/second
// and bytes/vector across all five kinds x {resident, mmap},
// reproducing the trade-off surface the paper delegates to FAISS.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "embed/embedder.hpp"
#include "index/kernels.hpp"
#include "index/mmap_file.hpp"
#include "index/row_storage.hpp"
#include "util/fp16.hpp"
#include "util/rng.hpp"

namespace mcqa::parallel {
class ThreadPool;
}

namespace mcqa::index {

enum class IndexKind { kFlat, kIvf, kHnsw, kSq8, kIvfPq };

std::string_view index_kind_name(IndexKind kind);

struct SearchResult {
  std::size_t row = 0;
  float score = 0.0f;  ///< inner product (cosine for unit vectors)
};

class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  virtual std::string_view name() const = 0;
  virtual IndexKind kind() const = 0;
  virtual std::size_t dim() const = 0;
  virtual std::size_t size() const = 0;

  /// Append a vector; rows number 0..n-1 in insertion order.
  virtual void add(const embed::Vector& v) = 0;

  /// Append a batch of vectors.  Equivalent to calling add() row by row
  /// in order — bit-identical resulting index — but reserves storage
  /// once up front (bulk construction path).
  virtual void add_batch(const std::vector<embed::Vector>& vs);

  /// Finalize after adds (train quantizers, encode rows, etc.).  Must
  /// be called before search for IVF and the quantized tier; no-op
  /// elsewhere.
  virtual void build() {}

  /// Finalize using `pool` for the parallelizable build phases (row
  /// encoding).  The result is bit-identical to build() at any thread
  /// count; the default forwards to the sequential build().
  virtual void build(parallel::ThreadPool& pool);

  /// Serialize to the version-stamped blob format (index_io.cpp).
  virtual std::string save() const = 0;

  /// Bytes of the structures a query scan touches (rows or codes plus
  /// codebooks/centroids) — the "bytes/vector" numerator of the
  /// ablation bench.  Excludes the exact-rerank source; see
  /// rerank_bytes().
  virtual std::size_t payload_bytes() const = 0;

  /// Bytes of the exact fp16 rerank source held by the quantized tier
  /// (0 for full-precision indexes).  Under mmap these pages stay cold
  /// except for the oversampled candidates each query touches.
  virtual std::size_t rerank_bytes() const { return 0; }

  /// True when the primary payload is a borrowed view over an mmap'd
  /// blob (no resident copy was made at load time).
  virtual bool mmap_backed() const { return false; }

  /// Top-k rows by score, descending; ties broken by row id.
  virtual std::vector<SearchResult> search(const embed::Vector& query,
                                           std::size_t k) const = 0;

  /// Score queries [begin, end) on the calling thread, writing
  /// out[begin..end) — the sequential unit the batched paths are built
  /// from.  Contract: out[i] is identical (rows and scores) to
  /// search(queries[i], k).  The base runs the per-query search();
  /// Flat/SQ8/IVF-PQ override it with Q x R tiled scans (kTileQ
  /// queries share each row load — kernels.hpp) whose per-query
  /// results the tile kernels keep bit-identical.
  virtual void search_block(const std::vector<embed::Vector>& queries,
                            std::size_t begin, std::size_t end,
                            std::size_t k,
                            std::vector<std::vector<SearchResult>>& out) const;

  /// Tiled batch search on the calling thread (no pool): one
  /// search_block over the whole batch.  Result i is bit-identical to
  /// search(queries[i], k).
  std::vector<std::vector<SearchResult>> search_tiled(
      const std::vector<embed::Vector>& queries, std::size_t k) const;

  /// Batched search: whole query tiles fan out across `pool` workers
  /// in deterministic tile-aligned blocks (each task owns a contiguous
  /// query range and writes its own result slots), each with its own
  /// scratch, and results land in query order.  Result i is identical
  /// (rows and scores) to `search(queries[i], k)` regardless of the
  /// pool's thread count.
  std::vector<std::vector<SearchResult>> search_batch(
      const std::vector<embed::Vector>& queries, std::size_t k,
      parallel::ThreadPool& pool) const;

  /// Batched search on the process-wide default pool.
  std::vector<std::vector<SearchResult>> search_batch(
      const std::vector<embed::Vector>& queries, std::size_t k) const;
};

// --- blob IO (index_io.cpp) --------------------------------------------------

/// Load any index blob, dispatching on the version-stamped magic.
/// Throws std::runtime_error on unknown magic or malformed payload.
std::unique_ptr<VectorIndex> load_index(std::string_view blob);

/// Fail-soft variant: nullptr on unknown magic, truncated payload, or
/// any other defect — never throws.  The checkpoint restore path treats
/// nullptr as a corrupt-blob cache miss and rebuilds.
std::unique_ptr<VectorIndex> try_load_index(std::string_view blob) noexcept;

/// View-mode variant: row/code payloads borrow from `blob` instead of
/// being copied, so the caller must keep `blob`'s bytes alive (and
/// suitably aligned — guaranteed when `blob` is a whole mapped file)
/// for the index's lifetime.  Small metadata (headers, IVF lists, HNSW
/// adjacency) is still materialized.
std::unique_ptr<VectorIndex> load_index_view(std::string_view blob);

/// An index opened straight from a file: the mapping and the index
/// (whose payloads view the mapping) travel together.
struct MappedIndex {
  std::shared_ptr<MappedFile> file;
  std::unique_ptr<VectorIndex> index;
};

/// Map `path` and open the index inside it in view mode — O(1) in the
/// payload size.  Throws std::runtime_error on IO errors or bad blobs.
MappedIndex open_index_mmap(const std::string& path);

// --- Flat ------------------------------------------------------------------

class FlatIndex final : public VectorIndex {
 public:
  explicit FlatIndex(std::size_t dim) : dim_(dim), data_(dim) {}

  std::string_view name() const override { return "flat"; }
  IndexKind kind() const override { return IndexKind::kFlat; }
  std::size_t dim() const override { return dim_; }
  std::size_t size() const override { return data_.size(); }
  void add(const embed::Vector& v) override;
  void add_batch(const std::vector<embed::Vector>& vs) override;
  std::vector<SearchResult> search(const embed::Vector& query,
                                   std::size_t k) const override;
  /// Tiled: each fp16 row is table-widened once per kTileQ queries.
  void search_block(const std::vector<embed::Vector>& queries,
                    std::size_t begin, std::size_t end, std::size_t k,
                    std::vector<std::vector<SearchResult>>& out) const override;

  std::string save() const override;
  static FlatIndex load(std::string_view blob);
  /// Payload views `blob` (caller keeps the bytes alive).
  static FlatIndex load_view(std::string_view blob);

  std::size_t payload_bytes() const override {
    return data_.value_count() * sizeof(util::fp16_t);
  }
  bool mmap_backed() const override { return data_.is_view(); }

  /// Widened copy of a stored row (shared with IVF/HNSW via protected
  /// storage would over-couple; each index owns its vectors).
  embed::Vector vector(std::size_t row) const;

  /// The FP16-at-rest rows — the quantized tier's exact-rerank source
  /// stores the same bits, so rerank scores match these bit-for-bit.
  const Fp16Rows& rows() const { return data_; }

 private:
  friend struct IndexIo;

  float score_row(std::size_t row, const embed::Vector& q) const;

  std::size_t dim_;
  Fp16Rows data_;  ///< row-major FP16 at rest (resident or mmap view)
};

// --- IVF -------------------------------------------------------------------

struct IvfConfig {
  std::size_t nlist = 64;      ///< number of k-means cells
  std::size_t nprobe = 8;      ///< cells visited per query
  std::size_t train_iters = 12;
  std::uint64_t seed = 99;
};

class IvfIndex final : public VectorIndex {
 public:
  IvfIndex(std::size_t dim, IvfConfig config = {});

  std::string_view name() const override { return "ivf"; }
  IndexKind kind() const override { return IndexKind::kIvf; }
  std::size_t dim() const override { return dim_; }
  std::size_t size() const override { return vectors_.size(); }
  void add(const embed::Vector& v) override;
  void add_batch(const std::vector<embed::Vector>& vs) override;
  void build() override;
  using VectorIndex::build;
  std::vector<SearchResult> search(const embed::Vector& query,
                                   std::size_t k) const override;

  void set_nprobe(std::size_t nprobe) { config_.nprobe = nprobe; }
  std::size_t nlist() const { return centroids_.size(); }

  /// Serialize the trained index (vectors + centroids + lists).
  std::string save() const override;
  static IvfIndex load(std::string_view blob);
  static IvfIndex load_view(std::string_view blob);

  std::size_t payload_bytes() const override {
    return (vectors_.value_count() + centroids_.value_count()) *
               sizeof(float) +
           size() * sizeof(std::uint64_t);  // one list slot per row
  }
  bool mmap_backed() const override { return vectors_.is_view(); }

 private:
  friend struct IndexIo;

  std::size_t dim_;
  IvfConfig config_;
  bool built_ = false;
  RowStorage vectors_;
  RowStorage centroids_;
  std::vector<std::vector<std::size_t>> lists_;  ///< rows per centroid
};

// --- HNSW ------------------------------------------------------------------

struct HnswConfig {
  std::size_t m = 12;               ///< links per node per layer
  std::size_t ef_construction = 80;
  std::size_t ef_search = 48;
  std::uint64_t seed = 4242;
};

class HnswIndex final : public VectorIndex {
 public:
  HnswIndex(std::size_t dim, HnswConfig config = {});

  std::string_view name() const override { return "hnsw"; }
  IndexKind kind() const override { return IndexKind::kHnsw; }
  std::size_t dim() const override { return dim_; }
  std::size_t size() const override { return vectors_.size(); }
  void add(const embed::Vector& v) override;
  void add_batch(const std::vector<embed::Vector>& vs) override;
  std::vector<SearchResult> search(const embed::Vector& query,
                                   std::size_t k) const override;

  void set_ef_search(std::size_t ef) { config_.ef_search = ef; }

  /// Serialize the graph (vectors + per-layer links + entry point).
  std::string save() const override;
  static HnswIndex load(std::string_view blob);
  /// Vectors view `blob`; the adjacency lists are always materialized.
  static HnswIndex load_view(std::string_view blob);

  std::size_t payload_bytes() const override;
  bool mmap_backed() const override { return vectors_.is_view(); }

  /// Reusable per-thread search state: an epoch-stamped visited buffer
  /// (one ++epoch instead of a fresh hash set per search_layer call)
  /// and the two beam heaps.  Each worker thread owns one via
  /// thread_local, so batched queries never contend or allocate.
  struct SearchScratch {
    std::vector<std::uint32_t> visited_epoch;
    std::uint32_t epoch = 0;
    std::vector<SearchResult> candidates;  ///< max-heap on score
    std::vector<SearchResult> best;        ///< min-heap on score

    /// Start a fresh visited set covering rows [0, n).
    void begin(std::size_t n);
    /// True on first visit of `row` this epoch.
    bool visit(std::size_t row);
  };

 private:
  friend struct IndexIo;

  struct Node {
    int level = 0;
    /// links[layer] = neighbor rows.
    std::vector<std::vector<std::uint32_t>> links;
  };

  float sim(std::size_t row, const embed::Vector& q) const;
  std::size_t greedy_descend(const embed::Vector& q, std::size_t entry,
                             int from_level, int to_level) const;
  std::vector<SearchResult> search_layer(const embed::Vector& q,
                                         std::size_t entry, std::size_t ef,
                                         int layer,
                                         SearchScratch& scratch) const;
  void connect(std::size_t row, int layer,
               const std::vector<SearchResult>& candidates);

  std::size_t dim_;
  HnswConfig config_;
  RowStorage vectors_;
  std::vector<Node> nodes_;
  std::size_t entry_point_ = 0;
  int max_level_ = -1;
  util::Rng level_rng_;
};

/// Exact ground truth for recall measurement: brute force over raw
/// vectors (float precision).
std::vector<SearchResult> exact_search(const std::vector<embed::Vector>& data,
                                       const embed::Vector& query,
                                       std::size_t k);

/// recall@k of `got` against exact `want` (fraction of want rows present).
double recall_at_k(const std::vector<SearchResult>& got,
                   const std::vector<SearchResult>& want);

}  // namespace mcqa::index
