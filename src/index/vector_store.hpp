#pragma once
// Vector store: ids + payload text + a similarity index.
//
// The paper's retrieval databases — one store of paper-derived chunks,
// and one store per reasoning-trace mode — are FAISS indexes keyed back
// to JSON records.  VectorStore is that binding: add(id, text) embeds
// and indexes; query(text, k) returns the payloads RAG will paste into
// the prompt.  query_batch fans a whole question set across a thread
// pool through VectorIndex::search_batch — the retrieval path the
// evaluation harness uses, since it issues one query per
// (question x condition x model).

#include <memory>
#include <string>
#include <vector>

#include "embed/embedder.hpp"
#include "index/vector_index.hpp"

namespace mcqa::parallel {
class ThreadPool;
}

namespace mcqa::index {

struct Hit {
  std::string id;
  std::string text;
  float score = 0.0f;
};

class VectorStore {
 public:
  VectorStore(const embed::Embedder& embedder, IndexKind kind = IndexKind::kFlat);

  /// Embed and stage one payload.
  void add(std::string id, std::string text);

  /// Bulk construction: embeds all texts across `pool` (embedding is
  /// thread-safe by contract), then inserts rows sequentially in input
  /// order — the resulting store is bit-identical to calling
  /// add(ids[i], texts[i]) in a loop, at any thread count.
  void add_batch(std::vector<std::string> ids, std::vector<std::string> texts,
                 parallel::ThreadPool& pool);

  /// Bulk construction on the process-wide default pool.
  void add_batch(std::vector<std::string> ids, std::vector<std::string> texts);

  /// Bulk construction from embeddings computed elsewhere (the overlapped
  /// executor embeds chunk-by-chunk as upstream stages produce them).
  /// `vectors[i]` must equal `embedder().embed(texts[i])` — the store is
  /// then bit-identical to the add_batch path; dimension is checked.
  void add_precomputed(std::vector<std::string> ids,
                       std::vector<std::string> texts,
                       const std::vector<embed::Vector>& vectors);

  /// Finalize the underlying index (required before query for IVF).
  void build();

  /// Delta-aware finalization for incremental rebuilds.  For an IVF-PQ
  /// store whose row set changed by at most `retrain_threshold`
  /// (fraction of rows) relative to `donor` — an older built store of
  /// the same kind and dimension — the quantizers are NOT retrained:
  /// rows are re-assigned and re-encoded against the donor's frozen
  /// coarse centroids and PQ codebooks (IvfPqIndex::build_frozen).
  /// Query results stay exact either way (the fp16 rerank contract does
  /// not care how codes were trained), but the saved bytes of a
  /// frozen-codebook store may differ from a cold retrain's.  Every
  /// other index kind — and any unusable donor — falls through to a
  /// plain build(), whose output is byte-identical to the cold path.
  void build_delta(const VectorStore* donor, double changed_fraction,
                   double retrain_threshold);

  /// Serialize the built store: ids, payload texts and the index blob
  /// (index_io formats).  Deterministic bytes for a deterministic store.
  std::string save() const;

  /// Rebuild a store from save() output.  `embedder` must be the same
  /// encoder the store was built with (queries re-embed through it).
  static VectorStore load(const embed::Embedder& embedder,
                          std::string_view blob);

  /// Open a saved store straight from disk with the index payload
  /// memory-mapped: ids and texts are materialized, but the index's
  /// row/code blocks stay views over the mapping — O(1) in the vector
  /// payload size, so stores larger than RAM open instantly.  The store
  /// owns the mapping; queries are identical to a load()ed store.
  static VectorStore open_mmap(const embed::Embedder& embedder,
                               const std::string& path);

  IndexKind kind() const { return kind_; }

  /// True when the index payload views an mmap'd file (open_mmap path).
  bool mmap_backed() const { return index_ && index_->mmap_backed(); }

  std::vector<Hit> query(std::string_view text, std::size_t k) const;

  /// Query with a precomputed embedding.
  std::vector<Hit> query_vector(const embed::Vector& v, std::size_t k) const;

  /// Batched query: embeds and searches all texts across `pool`.
  /// Result i is identical to query(texts[i], k) at any thread count.
  std::vector<std::vector<Hit>> query_batch(
      const std::vector<std::string>& texts, std::size_t k,
      parallel::ThreadPool& pool) const;

  /// Batched query on the process-wide default pool.
  std::vector<std::vector<Hit>> query_batch(
      const std::vector<std::string>& texts, std::size_t k) const;

  std::size_t size() const { return ids_.size(); }
  const std::string& text_of(std::size_t row) const { return texts_.at(row); }
  const std::string& id_of(std::size_t row) const { return ids_.at(row); }

  /// The embedder queries go through.  Sharded serving re-embeds rows
  /// and queries through the same embedder so shard scores stay
  /// bit-identical to this store's.
  const embed::Embedder& embedder() const { return embedder_; }

  /// The underlying index.  Live serving seeds its epoch-0 base from a
  /// frozen store; a flat index lets it copy the fp16 rows instead of
  /// re-embedding (bit-identical either way).
  const VectorIndex* index() const { return index_.get(); }

  /// FP16-equivalent storage footprint of the embedded vectors.
  std::size_t embedding_bytes() const {
    return ids_.size() * embedder_.dim() * 2;
  }

 private:
  static VectorStore load_parsed(const embed::Embedder& embedder,
                                 std::string_view blob, bool view);

  std::vector<Hit> hits_for(const std::vector<SearchResult>& results) const;

  const embed::Embedder& embedder_;
  IndexKind kind_ = IndexKind::kFlat;
  std::unique_ptr<VectorIndex> index_;
  std::shared_ptr<MappedFile> backing_;  ///< keeps mmap views alive
  std::vector<std::string> ids_;
  std::vector<std::string> texts_;
  bool built_ = false;
};

}  // namespace mcqa::index
