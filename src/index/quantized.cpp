#include "index/quantized.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "index/kmeans.hpp"
#include "parallel/thread_pool.hpp"

namespace mcqa::index {

namespace {

/// Candidate-set size of the rerank contract.
std::size_t candidate_count(std::size_t k, std::size_t oversample,
                            std::size_t min_candidates, std::size_t n) {
  return std::min(n, std::max(min_candidates, k * oversample));
}

/// Widen one fp16 row into a float scratch row.
void widen_row(const util::fp16_t* src, float* dst, std::size_t dim) {
  for (std::size_t d = 0; d < dim; ++d) dst[d] = util::fp16_to_float(src[d]);
}

/// Per-thread float scratch (query weight vectors, ADC tables): batched
/// searches run allocation-free after warm-up.
std::vector<float>& float_scratch() {
  static thread_local std::vector<float> scratch;
  return scratch;
}

/// Tiled exact rerank over a query tile: drains each member's approx
/// candidate TopK, regroups the union by row, and scores each row ONCE
/// per querying member via dot_fp16_tile.  Bit-identical to the
/// per-query rerank loop: the tile kernel reproduces dot_fp16 exactly
/// and TopK's kept set is push-order invariant, so regrouping rows
/// across the tile cannot change any member's results.  Writes
/// out[out_base + qi] for qi in [0, qn).
void rerank_tile(const Fp16Rows& rows, std::size_t dim,
                 const float* const* qs, std::size_t qn,
                 std::vector<TopK>& approx, std::size_t kk,
                 std::vector<std::vector<SearchResult>>& out,
                 std::size_t out_base) {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;  // (row, member)
  for (std::size_t qi = 0; qi < qn; ++qi) {
    for (const auto& cand : approx[qi].take_sorted()) {
      pairs.emplace_back(cand.row, qi);
    }
  }
  std::sort(pairs.begin(), pairs.end());
  std::vector<TopK> exact(qn, TopK(kk));
  const float* sub_qs[kernels::kTileQ];
  std::size_t sub_member[kernels::kTileQ];
  float scores[kernels::kTileQ];
  std::size_t i = 0;
  while (i < pairs.size()) {
    const std::size_t row = pairs[i].first;
    std::size_t sn = 0;  // <= qn: a row appears once per member's set
    for (; i < pairs.size() && pairs[i].first == row; ++i) {
      sub_qs[sn] = qs[pairs[i].second];
      sub_member[sn] = pairs[i].second;
      ++sn;
    }
    kernels::dot_fp16_tile(rows.row(row), sub_qs, sn, dim, scores);
    for (std::size_t s = 0; s < sn; ++s) {
      exact[sub_member[s]].push(row, scores[s]);
    }
  }
  for (std::size_t qi = 0; qi < qn; ++qi) {
    out[out_base + qi] = exact[qi].take_sorted();
  }
}

}  // namespace

// --- Sq8Index ----------------------------------------------------------------

Sq8Index::Sq8Index(std::size_t dim, Sq8Config config)
    : dim_(dim), config_(config), rows_(dim), codes_(dim) {}

void Sq8Index::add(const embed::Vector& v) {
  if (v.size() != dim_) throw std::invalid_argument("Sq8Index::add: dim");
  for (const float x : v) rows_.push_value(util::float_to_fp16(x));
  built_ = false;
}

void Sq8Index::add_batch(const std::vector<embed::Vector>& vs) {
  rows_.reserve(rows_.size() + vs.size());
  for (const auto& v : vs) add(v);
}

void Sq8Index::build() { build(parallel::ThreadPool::global()); }

void Sq8Index::build(parallel::ThreadPool& pool) {
  const std::size_t n = rows_.size();
  // Per-dimension affine range over the fp16-widened values (the same
  // values the rerank pass sees), scanned sequentially in row order so
  // the params never depend on thread count.
  min_.assign(dim_, 0.0f);
  scale_.assign(dim_, 0.0f);
  std::vector<float> max_v(dim_, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    const util::fp16_t* row = rows_.row(i);
    for (std::size_t d = 0; d < dim_; ++d) {
      const float x = util::fp16_to_float(row[d]);
      if (i == 0 || x < min_[d]) min_[d] = x;
      if (i == 0 || x > max_v[d]) max_v[d] = x;
    }
  }
  std::vector<float> inv_scale(dim_, 0.0f);
  for (std::size_t d = 0; d < dim_; ++d) {
    scale_[d] = (max_v[d] - min_[d]) / 255.0f;
    inv_scale[d] = scale_[d] > 0.0f ? 1.0f / scale_[d] : 0.0f;
  }

  // Encode rows in parallel: each row writes its own pre-sized slot, so
  // the codes are byte-identical at any thread count.
  codes_ = CodeRows(dim_);
  codes_.resize_rows(n);
  std::uint8_t* base = n > 0 ? codes_.mutable_raw() : nullptr;
  parallel::parallel_for(pool, 0, n, [&](std::size_t i) {
    const util::fp16_t* row = rows_.row(i);
    std::uint8_t* dst = base + i * dim_;
    for (std::size_t d = 0; d < dim_; ++d) {
      const float x = util::fp16_to_float(row[d]);
      const long q = std::lround((x - min_[d]) * inv_scale[d]);
      dst[d] = static_cast<std::uint8_t>(std::clamp<long>(q, 0, 255));
    }
  });
  built_ = true;
}

embed::Vector Sq8Index::decode(std::size_t row) const {
  embed::Vector out(dim_);
  const std::uint8_t* codes = codes_.row(row);
  for (std::size_t d = 0; d < dim_; ++d) {
    out[d] = min_[d] + scale_[d] * static_cast<float>(codes[d]);
  }
  return out;
}

std::vector<SearchResult> Sq8Index::approx_candidates(
    const embed::Vector& query, std::size_t count) const {
  if (!built_) {
    throw std::logic_error("Sq8Index::search called before build()");
  }
  const std::size_t n = size();
  if (n == 0) return {};
  // score = dot(min, q) + sum_d code[d] * (scale[d] * q[d]): fold the
  // scale into a per-query weight vector once, scan codes with the
  // fused decode-and-dot kernel.
  auto& w = float_scratch();
  w.resize(dim_);
  for (std::size_t d = 0; d < dim_; ++d) w[d] = scale_[d] * query[d];
  const float bias = kernels::dot(min_.data(), query.data(), dim_);

  TopK top(std::min(count, n));
  for (std::size_t row = 0; row < n; ++row) {
    top.push(row, bias + kernels::dot_u8(codes_.row(row), w.data(), dim_));
  }
  return top.take_sorted();
}

std::vector<SearchResult> Sq8Index::search(const embed::Vector& query,
                                           std::size_t k) const {
  const std::size_t n = size();
  const auto cands = approx_candidates(
      query,
      candidate_count(k, config_.oversample, config_.min_candidates, n));
  // Exact rerank: same fp16 bits, same kernel, same comparator as
  // FlatIndex — bit-identical output whenever `cands` covers the true
  // top-k.
  TopK exact(std::min(k, n));
  for (const auto& cand : cands) {
    exact.push(cand.row,
               kernels::dot_fp16(rows_.row(cand.row), query.data(), dim_));
  }
  return exact.take_sorted();
}

void Sq8Index::search_block(
    const std::vector<embed::Vector>& queries, std::size_t begin,
    std::size_t end, std::size_t k,
    std::vector<std::vector<SearchResult>>& out) const {
  if (!built_) {
    throw std::logic_error("Sq8Index::search called before build()");
  }
  const std::size_t n = size();
  if (n == 0) {
    for (std::size_t i = begin; i < end; ++i) out[i] = {};
    return;
  }
  constexpr std::size_t kQ = kernels::kTileQ;
  const std::size_t count =
      candidate_count(k, config_.oversample, config_.min_candidates, n);
  std::vector<float> w(kQ * dim_);
  std::vector<TopK> approx(kQ, TopK(0));
  const float* ws[kQ];
  const float* qs[kQ];
  float bias[kQ];
  float scores[kQ];
  for (std::size_t t = begin; t < end; t += kQ) {
    const std::size_t qn = std::min(kQ, end - t);
    for (std::size_t qi = 0; qi < qn; ++qi) {
      const embed::Vector& q = queries[t + qi];
      qs[qi] = q.data();
      float* wq = w.data() + qi * dim_;
      for (std::size_t d = 0; d < dim_; ++d) wq[d] = scale_[d] * q[d];
      ws[qi] = wq;
      bias[qi] = kernels::dot(min_.data(), q.data(), dim_);
      approx[qi].reset(std::min(count, n));
    }
    // One pass over the codes: each row is decoded once per tile, and
    // every member's score is bias + dot_u8 exactly as in the
    // per-query approx_candidates scan.
    for (std::size_t row = 0; row < n; ++row) {
      kernels::dot_u8_tile(codes_.row(row), ws, qn, dim_, scores);
      for (std::size_t qi = 0; qi < qn; ++qi) {
        approx[qi].push(row, bias[qi] + scores[qi]);
      }
    }
    rerank_tile(rows_, dim_, qs, qn, approx, std::min(k, n), out, t);
  }
}

// --- IvfPqIndex --------------------------------------------------------------

IvfPqIndex::IvfPqIndex(std::size_t dim, IvfPqConfig config)
    : dim_(dim), config_(config), rows_(dim), codes_(0), centroids_(dim),
      codebooks_(0) {}

void IvfPqIndex::add(const embed::Vector& v) {
  if (v.size() != dim_) throw std::invalid_argument("IvfPqIndex::add: dim");
  for (const float x : v) rows_.push_value(util::float_to_fp16(x));
  built_ = false;
}

void IvfPqIndex::add_batch(const std::vector<embed::Vector>& vs) {
  rows_.reserve(rows_.size() + vs.size());
  for (const auto& v : vs) add(v);
}

void IvfPqIndex::build() { build(parallel::ThreadPool::global()); }

void IvfPqIndex::build(parallel::ThreadPool& pool) {
  const std::size_t n = rows_.size();
  // Effective subquantizer count: largest divisor of dim <= config.m.
  m_ = std::max<std::size_t>(std::min(config_.m, dim_), 1);
  while (m_ > 1 && dim_ % m_ != 0) --m_;
  const std::size_t dsub = dim_ > 0 ? dim_ / m_ : 0;
  codebooks_ = RowStorage(dsub);
  codes_ = CodeRows(m_);
  centroids_ = RowStorage(dim_);
  lists_.clear();
  ksub_ = 0;
  if (n == 0) {
    built_ = true;
    return;
  }

  // Transient fp16->float widening: training and encoding read float
  // rows; the buffer is dropped before build returns.
  RowStorage floats(dim_);
  floats.resize_rows(n);
  float* fbase = floats.mutable_raw();
  parallel::parallel_for(pool, 0, n, [&](std::size_t i) {
    widen_row(rows_.row(i), fbase + i * dim_, dim_);
  });

  util::Rng root(config_.seed);

  // Coarse quantizer + inverted lists (same spherical trainer and
  // max-dot assignment rule as IvfIndex).
  centroids_ = kmeans_spherical({floats.raw(), n, dim_, dim_},
                                std::min(config_.nlist, n),
                                config_.coarse_iters, root.fork(1));
  std::vector<std::uint32_t> cell(n, 0);
  parallel::parallel_for(pool, 0, n, [&](std::size_t i) {
    cell[i] = static_cast<std::uint32_t>(
        nearest_dot(centroids_, floats.row(i)));
  });
  lists_.assign(centroids_.size(), {});
  for (std::size_t i = 0; i < n; ++i) {
    lists_[cell[i]].push_back(static_cast<std::uint32_t>(i));
  }

  // PQ codebooks: train each subspace on a (sorted, seeded) row sample.
  const std::size_t sample_n =
      std::min(n, std::max<std::size_t>(config_.train_sample, 1));
  RowStorage sample(dim_);
  const float* train_base = floats.raw();
  std::size_t train_stride = dim_;
  if (sample_n < n) {
    auto picks = root.fork(2).sample_indices(n, sample_n);
    std::sort(picks.begin(), picks.end());
    sample.reserve(sample_n);
    for (const std::size_t i : picks) sample.add_row(floats.row(i));
    train_base = sample.raw();
    train_stride = dim_;
  }
  ksub_ = std::min<std::size_t>({config_.ksub, sample_n, 256});
  ksub_ = std::max<std::size_t>(ksub_, 1);
  for (std::size_t j = 0; j < m_; ++j) {
    RowStorage cb = kmeans_l2({train_base + j * dsub, sample_n, dsub,
                               train_stride},
                              ksub_, config_.train_iters, root.fork(16 + j));
    // Seeding can exhaust distinct points early; pad to a uniform ksub_
    // by repeating centroid 0 (nearest-assignment ties break to the
    // lowest index, so padding never changes an encoding).
    for (std::size_t r = 0; r < cb.size(); ++r) codebooks_.add_row(cb.row(r));
    for (std::size_t r = cb.size(); r < ksub_; ++r) {
      codebooks_.add_row(cb.row(0));
    }
  }

  // Encode rows in parallel (disjoint pre-sized slots).
  encode_rows(pool, floats);
  built_ = true;
}

void IvfPqIndex::encode_rows(parallel::ThreadPool& pool,
                             const RowStorage& floats) {
  const std::size_t n = rows_.size();
  const std::size_t dsub = dim_ / m_;
  codes_.resize_rows(n);
  std::uint8_t* cbase = n > 0 ? codes_.mutable_raw() : nullptr;
  parallel::parallel_for(pool, 0, n, [&](std::size_t i) {
    const float* row = floats.row(i);
    std::uint8_t* dst = cbase + i * m_;
    for (std::size_t j = 0; j < m_; ++j) {
      const float* sub = row + j * dsub;
      float best = -1.0f;
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < ksub_; ++c) {
        const float d =
            kernels::l2_sq(sub, codebooks_.row(j * ksub_ + c), dsub);
        if (best < 0.0f || d < best) {
          best = d;
          best_c = c;
        }
      }
      dst[j] = static_cast<std::uint8_t>(best_c);
    }
  });
}

void IvfPqIndex::build_frozen(const IvfPqIndex& donor,
                              parallel::ThreadPool& pool) {
  if (donor.dim_ != dim_ || !donor.built_ || donor.m_ == 0 ||
      donor.ksub_ == 0 || donor.centroids_.size() == 0 ||
      donor.codebooks_.size() == 0) {
    build(pool);
    return;
  }
  m_ = donor.m_;
  ksub_ = donor.ksub_;
  const std::size_t dsub = dim_ / m_;

  // Copy the trained quantizers out of the donor (it may be a view over
  // an mmap'd blob with a shorter lifetime than this index).
  centroids_ = RowStorage(dim_);
  centroids_.reserve(donor.centroids_.size());
  for (std::size_t r = 0; r < donor.centroids_.size(); ++r) {
    centroids_.add_row(donor.centroids_.row(r));
  }
  codebooks_ = RowStorage(dsub);
  codebooks_.reserve(donor.codebooks_.size());
  for (std::size_t r = 0; r < donor.codebooks_.size(); ++r) {
    codebooks_.add_row(donor.codebooks_.row(r));
  }

  codes_ = CodeRows(m_);
  lists_.clear();
  const std::size_t n = rows_.size();
  if (n == 0) {
    built_ = true;
    return;
  }

  RowStorage floats(dim_);
  floats.resize_rows(n);
  float* fbase = floats.mutable_raw();
  parallel::parallel_for(pool, 0, n, [&](std::size_t i) {
    widen_row(rows_.row(i), fbase + i * dim_, dim_);
  });

  std::vector<std::uint32_t> cell(n, 0);
  parallel::parallel_for(pool, 0, n, [&](std::size_t i) {
    cell[i] = static_cast<std::uint32_t>(
        nearest_dot(centroids_, floats.row(i)));
  });
  lists_.assign(centroids_.size(), {});
  for (std::size_t i = 0; i < n; ++i) {
    lists_[cell[i]].push_back(static_cast<std::uint32_t>(i));
  }

  encode_rows(pool, floats);
  built_ = true;
}

std::vector<SearchResult> IvfPqIndex::approx_candidates(
    const embed::Vector& query, std::size_t count) const {
  if (!built_) {
    throw std::logic_error("IvfPqIndex::search called before build()");
  }
  const std::size_t n = size();
  if (n == 0 || centroids_.size() == 0) return {};
  const std::size_t dsub = dim_ / m_;

  // Rank cells by centroid similarity; probe the top nprobe.
  TopK cell_top(std::min(config_.nprobe, centroids_.size()));
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    cell_top.push(c, kernels::dot(query.data(), centroids_.row(c), dim_));
  }
  const auto cells = cell_top.take_sorted();

  // ADC table: tab[j][c] = dot(q_sub_j, codebook[j][c]); each row then
  // scores as m table lookups (kernels::pq_lookup).
  auto& tab = float_scratch();
  tab.resize(m_ * ksub_);
  for (std::size_t j = 0; j < m_; ++j) {
    for (std::size_t c = 0; c < ksub_; ++c) {
      tab[j * ksub_ + c] = kernels::dot(query.data() + j * dsub,
                                        codebooks_.row(j * ksub_ + c), dsub);
    }
  }

  TopK top(std::min(count, n));
  for (const auto& cellr : cells) {
    for (const std::uint32_t row : lists_[cellr.row]) {
      top.push(row, kernels::pq_lookup(codes_.row(row), tab.data(), m_,
                                       ksub_));
    }
  }
  return top.take_sorted();
}

std::vector<SearchResult> IvfPqIndex::search(const embed::Vector& query,
                                             std::size_t k) const {
  const std::size_t n = size();
  const auto cands = approx_candidates(
      query,
      candidate_count(k, config_.oversample, config_.min_candidates, n));
  TopK exact(std::min(k, n));
  for (const auto& cand : cands) {
    exact.push(cand.row,
               kernels::dot_fp16(rows_.row(cand.row), query.data(), dim_));
  }
  return exact.take_sorted();
}

void IvfPqIndex::search_block(
    const std::vector<embed::Vector>& queries, std::size_t begin,
    std::size_t end, std::size_t k,
    std::vector<std::vector<SearchResult>>& out) const {
  if (!built_) {
    throw std::logic_error("IvfPqIndex::search called before build()");
  }
  const std::size_t n = size();
  if (n == 0 || centroids_.size() == 0) {
    for (std::size_t i = begin; i < end; ++i) out[i] = {};
    return;
  }
  constexpr std::size_t kQ = kernels::kTileQ;
  const std::size_t dsub = dim_ / m_;
  const std::size_t ncells = centroids_.size();
  const std::size_t nprobe = std::min(config_.nprobe, ncells);
  const std::size_t count =
      candidate_count(k, config_.oversample, config_.min_candidates, n);
  std::vector<float> tabs(kQ * m_ * ksub_);
  std::vector<TopK> cell_top(kQ, TopK(0));
  std::vector<TopK> approx(kQ, TopK(0));
  std::vector<std::pair<std::size_t, std::size_t>> probes;  // (cell, member)
  const float* qs[kQ];
  const float* tabp[kQ];
  float scores[kQ];
  for (std::size_t t = begin; t < end; t += kQ) {
    const std::size_t qn = std::min(kQ, end - t);
    for (std::size_t qi = 0; qi < qn; ++qi) {
      qs[qi] = queries[t + qi].data();
      cell_top[qi].reset(nprobe);
      approx[qi].reset(std::min(count, n));
    }

    // Rank cells: each centroid row is loaded once per tile.
    for (std::size_t c = 0; c < ncells; ++c) {
      kernels::dot_tile(centroids_.row(c), qs, qn, dim_, scores);
      for (std::size_t qi = 0; qi < qn; ++qi) {
        cell_top[qi].push(c, scores[qi]);
      }
    }

    // Per-member ADC tables (identical math to the per-query path).
    for (std::size_t qi = 0; qi < qn; ++qi) {
      float* tab = tabs.data() + qi * m_ * ksub_;
      for (std::size_t j = 0; j < m_; ++j) {
        for (std::size_t c = 0; c < ksub_; ++c) {
          tab[j * ksub_ + c] = kernels::dot(
              qs[qi] + j * dsub, codebooks_.row(j * ksub_ + c), dsub);
        }
      }
      tabp[qi] = tab;
    }

    // Scan each cell probed by ANY member once, scoring only the
    // sub-tile of members that probe it: every member scores exactly
    // the rows of its own probed cells, so candidate sets match the
    // per-query path (TopK makes the visiting order irrelevant).
    probes.clear();
    for (std::size_t qi = 0; qi < qn; ++qi) {
      for (const auto& cell : cell_top[qi].take_sorted()) {
        probes.emplace_back(cell.row, qi);
      }
    }
    std::sort(probes.begin(), probes.end());
    const float* sub_tabs[kQ];
    std::size_t sub_member[kQ];
    std::size_t i = 0;
    while (i < probes.size()) {
      const std::size_t cell = probes[i].first;
      std::size_t sn = 0;  // <= qn: nprobe distinct cells per member
      for (; i < probes.size() && probes[i].first == cell; ++i) {
        sub_tabs[sn] = tabp[probes[i].second];
        sub_member[sn] = probes[i].second;
        ++sn;
      }
      for (const std::uint32_t row : lists_[cell]) {
        kernels::pq_lookup_tile(codes_.row(row), sub_tabs, sn, m_, ksub_,
                                scores);
        for (std::size_t s = 0; s < sn; ++s) {
          approx[sub_member[s]].push(row, scores[s]);
        }
      }
    }

    rerank_tile(rows_, dim_, qs, qn, approx, std::min(k, n), out, t);
  }
}

}  // namespace mcqa::index
