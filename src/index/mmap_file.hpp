#pragma once
// Read-only memory-mapped file handle for the index/store blob formats.
//
// Opening is O(1) in the payload size: the kernel maps the file's pages
// and faults them in lazily, so an index much larger than RAM opens
// instantly and only the rows a query actually scans (or the rerank
// pass touches) ever become resident.  On platforms without mmap the
// class degrades to reading the file into an owned buffer — same bytes,
// same views, just an O(n) open.
//
// Lifetime rule: every index/store opened in view mode (load_view /
// open_index_mmap / VectorStore::open_mmap) borrows directly from this
// mapping.  The MappedFile must outlive every such view; the open_*
// helpers enforce this by bundling the file and the index in one
// handle.

#include <memory>
#include <string>
#include <string_view>

namespace mcqa::index {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Map `path` read-only.  Throws std::runtime_error when the file
  /// cannot be opened or mapped.
  static MappedFile open(const std::string& path);

  bool valid() const { return addr_ != nullptr || fallback_ != nullptr; }
  std::size_t size() const { return size_; }

  /// The file's bytes.  Page-aligned base when actually mapped.
  std::string_view bytes() const;

  /// True when the bytes are a real kernel mapping (false on the
  /// read-into-memory fallback platforms).
  bool is_mapped() const { return addr_ != nullptr; }

 private:
  void reset() noexcept;

  void* addr_ = nullptr;
  std::size_t size_ = 0;
  std::unique_ptr<std::string> fallback_;  ///< non-mmap platforms
};

}  // namespace mcqa::index
