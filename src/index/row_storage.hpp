#pragma once
// Contiguous row-major storage shared by the vector indexes.
//
// IVF and HNSW used to hold a std::vector<embed::Vector> — one heap
// allocation and one pointer chase per row, which is what the scan
// kernels end up waiting on.  TypedRows flattens all rows into a
// single element buffer so the blocked kernels stream through memory,
// and save()/load() can move the whole payload with one memcpy.
//
// Two backing modes:
//   * resident — the storage owns a std::vector<T> (the default; all
//     mutating operations work).
//   * view — the storage borrows a pointer into caller-owned bytes
//     (an mmap'd index blob).  Views are read-only snapshots: every
//     mutating call throws, and the caller must keep the backing bytes
//     (the MappedFile) alive for the lifetime of the view — see
//     DESIGN.md §2 "quantized tier" for the lifetime rules.
//
// Instantiations: RowStorage (float rows, the scan payload of
// flat/IVF/HNSW), Fp16Rows (fp16-at-rest rows: FlatIndex payload and
// the quantized tier's exact-rerank source), CodeRows (uint8 codes of
// the SQ8/PQ tier).

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "embed/embedder.hpp"
#include "util/fp16.hpp"

namespace mcqa::index {

template <typename T>
class TypedRows {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  TypedRows() = default;
  explicit TypedRows(std::size_t dim) : dim_(dim) {}

  /// Borrow `rows` rows of `dim` elements from caller-owned memory
  /// (e.g. an mmap'd blob).  `base` must stay valid and suitably
  /// aligned for T for the lifetime of the view.
  static TypedRows view(const T* base, std::size_t rows, std::size_t dim) {
    TypedRows out(dim);
    out.view_ = base;
    out.view_rows_ = rows;
    return out;
  }

  bool is_view() const { return view_ != nullptr; }

  std::size_t dim() const { return dim_; }
  std::size_t size() const {
    if (is_view()) return view_rows_;
    return dim_ == 0 ? 0 : owned_.size() / dim_;
  }
  bool empty() const { return size() == 0; }

  void reserve(std::size_t rows) {
    require_resident("reserve");
    owned_.reserve(rows * dim_);
  }

  /// Append a row from a raw pointer (dim() elements).
  void add_row(const T* p) {
    require_resident("add_row");
    owned_.insert(owned_.end(), p, p + dim_);
  }

  /// Append a single element (callers append exactly dim() per row).
  void push_value(T v) {
    require_resident("push_value");
    owned_.push_back(v);
  }

  const T* row(std::size_t i) const { return raw() + i * dim_; }

  /// Flat payload, row-major — serialization and kernels read this
  /// directly.
  const T* raw() const { return is_view() ? view_ : owned_.data(); }
  std::size_t value_count() const { return size() * dim_; }

  T* mutable_raw() {
    require_resident("mutable_raw");
    return owned_.data();
  }

  void clear() {
    owned_.clear();
    view_ = nullptr;
    view_rows_ = 0;
  }

  void resize_rows(std::size_t rows) {
    require_resident("resize_rows");
    owned_.resize(rows * dim_);
  }

  // --- float-row conveniences (embedding vectors) ----------------------------

  void add(const embed::Vector& v)
    requires std::same_as<T, float>
  {
    if (v.size() != dim_) throw std::invalid_argument("TypedRows::add: dim");
    require_resident("add");
    owned_.insert(owned_.end(), v.begin(), v.end());
  }

  void set_row(std::size_t i, const embed::Vector& v)
    requires std::same_as<T, float>
  {
    if (v.size() != dim_) {
      throw std::invalid_argument("TypedRows::set_row: dim");
    }
    require_resident("set_row");
    std::memcpy(owned_.data() + i * dim_, v.data(), dim_ * sizeof(float));
  }

  /// Widened copy of one row.
  embed::Vector vector(std::size_t i) const
    requires std::same_as<T, float>
  {
    return embed::Vector(row(i), row(i) + dim_);
  }

 private:
  void require_resident(const char* op) const {
    if (is_view()) {
      throw std::logic_error(std::string("TypedRows::") + op +
                             ": storage is an mmap-backed read-only view");
    }
  }

  std::size_t dim_ = 0;
  std::vector<T> owned_;
  const T* view_ = nullptr;
  std::size_t view_rows_ = 0;
};

using RowStorage = TypedRows<float>;
using Fp16Rows = TypedRows<util::fp16_t>;
using CodeRows = TypedRows<std::uint8_t>;

}  // namespace mcqa::index
