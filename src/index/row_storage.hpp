#pragma once
// Contiguous row-major float storage shared by the vector indexes.
//
// IVF and HNSW used to hold a std::vector<embed::Vector> — one heap
// allocation and one pointer chase per row, which is what the scan
// kernels end up waiting on.  RowStorage flattens all rows into a
// single float buffer so the blocked kernels stream through memory, and
// save()/load() can move the whole payload with one memcpy.

#include <cstring>
#include <stdexcept>
#include <vector>

#include "embed/embedder.hpp"

namespace mcqa::index {

class RowStorage {
 public:
  RowStorage() = default;
  explicit RowStorage(std::size_t dim) : dim_(dim) {}

  std::size_t dim() const { return dim_; }
  std::size_t size() const { return dim_ == 0 ? 0 : data_.size() / dim_; }
  bool empty() const { return data_.empty(); }

  void reserve(std::size_t rows) { data_.reserve(rows * dim_); }

  void add(const embed::Vector& v) {
    if (v.size() != dim_) throw std::invalid_argument("RowStorage::add: dim");
    data_.insert(data_.end(), v.begin(), v.end());
  }

  /// Append a row from a raw pointer (dim() floats).
  void add_row(const float* p) { data_.insert(data_.end(), p, p + dim_); }

  const float* row(std::size_t i) const { return data_.data() + i * dim_; }

  void set_row(std::size_t i, const embed::Vector& v) {
    if (v.size() != dim_) {
      throw std::invalid_argument("RowStorage::set_row: dim");
    }
    std::memcpy(data_.data() + i * dim_, v.data(), dim_ * sizeof(float));
  }

  /// Widened copy of one row.
  embed::Vector vector(std::size_t i) const {
    return embed::Vector(row(i), row(i) + dim_);
  }

  void clear() { data_.clear(); }
  void resize_rows(std::size_t rows) { data_.resize(rows * dim_); }

  /// Flat payload, row-major — serialization and kernels read this
  /// directly.
  const std::vector<float>& data() const { return data_; }
  std::vector<float>& data() { return data_; }

 private:
  std::size_t dim_ = 0;
  std::vector<float> data_;
};

}  // namespace mcqa::index
