// Serialization for the vector indexes.  Length-prefixed binary
// sections after a version-stamped magic line; payloads are memcpy'd
// (indexes are a cache, not an interchange format — the canonical
// artifacts are the JSON records).
//
// Current formats (flatidx2, ivfidx3, hnswidx3, sq8idx1, ivfpqidx1)
// zero-pad every bulk payload block to an 8-byte offset from the blob
// start.  The pad is recomputed from the stream position on both sides
// — nothing variable is stored — and buys view-mode loads: when the
// blob is a whole mapped file (page-aligned base), every float/fp16/u8
// payload is naturally aligned, so load_index_view() wraps the mapped
// bytes in TypedRows views instead of copying.  A misaligned buffer
// silently degrades to a copy — view mode is an optimization, never a
// correctness knob.
//
// The one-generation-old formats (flatidx1, ivfidx2, hnswidx2) still
// load (resident only).  Anything else — unknown magic, truncated
// payload, out-of-range structure — throws from load_index() and
// returns nullptr from try_load_index(), which the checkpoint restore
// path treats as a corrupt-blob miss and rebuilds from scratch.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "index/quantized.hpp"
#include "index/vector_index.hpp"

namespace mcqa::index {

namespace {

constexpr std::size_t kMaxDim = 1u << 20;
constexpr std::size_t kMaxRows = 1ull << 34;

void put_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

std::uint64_t take_u64(std::string_view blob, std::size_t& pos) {
  if (pos + 8 > blob.size()) {
    throw std::runtime_error("index load: truncated integer");
  }
  std::uint64_t v = 0;
  std::memcpy(&v, blob.data() + pos, 8);
  pos += 8;
  return v;
}

/// Zero-pad to the next 8-byte offset from the blob start.
void pad8(std::string& out) {
  while (out.size() % 8 != 0) out.push_back('\0');
}

/// Skip the loader-side pad; the pad length is recomputed from `pos`,
/// never stored.
void align8(std::string_view blob, std::size_t& pos) {
  while (pos % 8 != 0) {
    if (pos >= blob.size()) {
      throw std::runtime_error("index load: truncated pad");
    }
    ++pos;
  }
}

/// Append a bulk payload block: pad to 8, then the raw bytes.
void put_bytes(std::string& out, const void* p, std::size_t bytes) {
  pad8(out);
  const std::size_t at = out.size();
  out.resize(at + bytes);
  if (bytes > 0) std::memcpy(out.data() + at, p, bytes);
}

/// Align to 8 and hand back a pointer to `bytes` payload bytes.
const char* take_bytes(std::string_view blob, std::size_t& pos,
                       std::size_t bytes) {
  align8(blob, pos);
  if (pos + bytes > blob.size() || pos + bytes < pos) {
    throw std::runtime_error("index load: truncated payload");
  }
  const char* p = blob.data() + pos;
  pos += bytes;
  return p;
}

template <typename T>
void put_block(std::string& out, const TypedRows<T>& rows) {
  put_bytes(out, rows.raw(), rows.value_count() * sizeof(T));
}

/// Read a rows*dim typed block.  In view mode the returned storage
/// borrows the blob bytes when they are aligned for T (always true for
/// a whole mapped file); otherwise it falls back to a resident copy.
template <typename T>
TypedRows<T> take_block(std::string_view blob, std::size_t& pos,
                        std::size_t rows, std::size_t dim, bool view) {
  if (rows > kMaxRows || dim > kMaxDim) {
    throw std::runtime_error("index load: implausible block shape");
  }
  const std::size_t bytes = rows * dim * sizeof(T);
  const char* p = take_bytes(blob, pos, bytes);
  if (view && reinterpret_cast<std::uintptr_t>(p) % alignof(T) == 0) {
    return TypedRows<T>::view(reinterpret_cast<const T*>(p), rows, dim);
  }
  TypedRows<T> out(dim);
  out.resize_rows(rows);
  if (bytes > 0) std::memcpy(out.mutable_raw(), p, bytes);
  return out;
}

void put_float_vec(std::string& out, const std::vector<float>& v) {
  put_bytes(out, v.data(), v.size() * sizeof(float));
}

std::vector<float> take_float_vec(std::string_view blob, std::size_t& pos,
                                  std::size_t n) {
  const char* p = take_bytes(blob, pos, n * sizeof(float));
  std::vector<float> v(n);
  if (n > 0) std::memcpy(v.data(), p, n * sizeof(float));
  return v;
}

bool has_magic(std::string_view blob, std::string_view magic) {
  return blob.substr(0, magic.size()) == magic;
}

std::size_t checked_dim(std::uint64_t dim) {
  if (dim == 0 || dim > kMaxDim) {
    throw std::runtime_error("index load: bad dim");
  }
  return static_cast<std::size_t>(dim);
}

// --- legacy (one generation old) readers -------------------------------------

/// ivfidx2/hnswidx2 row block: u64 count then unpadded floats.
RowStorage take_rows_legacy(std::string_view blob, std::size_t& pos,
                            std::size_t dim) {
  const std::size_t n = take_u64(blob, pos);
  if (n > kMaxRows) throw std::runtime_error("index load: bad row count");
  const std::size_t bytes = n * dim * sizeof(float);
  if (pos + bytes > blob.size()) {
    throw std::runtime_error("index load: truncated row block");
  }
  RowStorage rows(dim);
  rows.resize_rows(n);
  if (bytes > 0) std::memcpy(rows.mutable_raw(), blob.data() + pos, bytes);
  pos += bytes;
  return rows;
}

}  // namespace

// All index classes befriend IndexIo, so the per-kind readers live here
// as statics with access to the private fields.
struct IndexIo {
  // --- Flat ------------------------------------------------------------------

  static std::string save_flat(const FlatIndex& idx) {
    std::string out = "flatidx2\n";
    put_u64(out, idx.dim_);
    put_u64(out, idx.data_.size());
    put_block(out, idx.data_);
    return out;
  }

  static FlatIndex load_flat(std::string_view blob, bool view) {
    constexpr std::string_view kMagic = "flatidx2\n";
    if (has_magic(blob, "flatidx1\n")) return load_flat_v1(blob);
    if (!has_magic(blob, kMagic)) {
      throw std::runtime_error("FlatIndex::load: bad magic");
    }
    std::size_t pos = kMagic.size();
    const std::size_t dim = checked_dim(take_u64(blob, pos));
    const std::size_t rows = take_u64(blob, pos);
    FlatIndex idx(dim);
    idx.data_ = take_block<util::fp16_t>(blob, pos, rows, dim, view);
    return idx;
  }

  static FlatIndex load_flat_v1(std::string_view blob) {
    // Text header: "flatidx1\n<dim> <rows>\n" then the fp16 payload at
    // whatever offset the header ends on (resident load only).
    std::size_t pos = blob.find('\n');
    const std::size_t line_start = pos + 1;
    pos = blob.find('\n', line_start);
    if (pos == std::string_view::npos) {
      throw std::runtime_error("FlatIndex::load: truncated");
    }
    std::size_t dim = 0;
    std::size_t rows = 0;
    const std::string counts(blob.substr(line_start, pos - line_start));
    if (std::sscanf(counts.c_str(), "%zu %zu", &dim, &rows) != 2 || dim == 0) {
      throw std::runtime_error("FlatIndex::load: bad counts");
    }
    const std::size_t payload = rows * dim * sizeof(util::fp16_t);
    if (blob.size() - (pos + 1) < payload) {
      throw std::runtime_error("FlatIndex::load: truncated payload");
    }
    FlatIndex idx(dim);
    idx.data_.resize_rows(rows);
    if (payload > 0) {
      std::memcpy(idx.data_.mutable_raw(), blob.data() + pos + 1, payload);
    }
    return idx;
  }

  // --- IVF -------------------------------------------------------------------

  static std::string save_ivf(const IvfIndex& idx) {
    if (!idx.built_) {
      throw std::logic_error("IvfIndex::save: build() the index first");
    }
    std::string out = "ivfidx3\n";
    put_u64(out, idx.dim_);
    put_u64(out, idx.config_.nprobe);
    put_u64(out, idx.vectors_.size());
    put_u64(out, idx.centroids_.size());
    put_block(out, idx.vectors_);
    put_block(out, idx.centroids_);
    for (const auto& list : idx.lists_) {
      put_u64(out, list.size());
      for (const std::size_t row : list) put_u64(out, row);
    }
    return out;
  }

  static IvfIndex load_ivf(std::string_view blob, bool view) {
    constexpr std::string_view kMagic = "ivfidx3\n";
    if (has_magic(blob, "ivfidx2\n")) return load_ivf_v2(blob);
    if (!has_magic(blob, kMagic)) {
      throw std::runtime_error("IvfIndex::load: bad magic");
    }
    std::size_t pos = kMagic.size();
    const std::size_t dim = checked_dim(take_u64(blob, pos));
    IvfConfig cfg;
    cfg.nprobe = take_u64(blob, pos);
    const std::size_t n = take_u64(blob, pos);
    const std::size_t k = take_u64(blob, pos);
    IvfIndex idx(dim, cfg);
    idx.vectors_ = take_block<float>(blob, pos, n, dim, view);
    idx.centroids_ = take_block<float>(blob, pos, k, dim, view);
    take_ivf_lists(blob, pos, idx, n, k);
    idx.built_ = true;
    return idx;
  }

  static IvfIndex load_ivf_v2(std::string_view blob) {
    std::size_t pos = 8;  // "ivfidx2\n"
    const std::size_t dim = checked_dim(take_u64(blob, pos));
    IvfConfig cfg;
    cfg.nprobe = take_u64(blob, pos);
    IvfIndex idx(dim, cfg);
    idx.vectors_ = take_rows_legacy(blob, pos, dim);
    idx.centroids_ = take_rows_legacy(blob, pos, dim);
    take_ivf_lists(blob, pos, idx, idx.vectors_.size(),
                   idx.centroids_.size());
    idx.built_ = true;
    return idx;
  }

  static void take_ivf_lists(std::string_view blob, std::size_t& pos,
                             IvfIndex& idx, std::size_t n, std::size_t k) {
    idx.lists_.resize(k);
    for (std::size_t c = 0; c < k; ++c) {
      const std::size_t len = take_u64(blob, pos);
      if (len > n) throw std::runtime_error("IvfIndex::load: bad list");
      idx.lists_[c].reserve(len);
      for (std::size_t i = 0; i < len; ++i) {
        const std::size_t row = take_u64(blob, pos);
        if (row >= n) throw std::runtime_error("IvfIndex::load: bad row");
        idx.lists_[c].push_back(row);
      }
    }
  }

  // --- HNSW ------------------------------------------------------------------

  static std::string save_hnsw(const HnswIndex& idx) {
    std::string out = "hnswidx3\n";
    put_u64(out, idx.dim_);
    put_u64(out, idx.config_.m);
    put_u64(out, idx.config_.ef_search);
    put_u64(out, idx.entry_point_);
    put_u64(out, static_cast<std::uint64_t>(idx.max_level_ + 1));
    put_u64(out, idx.vectors_.size());
    put_block(out, idx.vectors_);
    for (const auto& node : idx.nodes_) {
      put_u64(out, static_cast<std::uint64_t>(node.level));
      for (const auto& layer : node.links) {
        put_u64(out, layer.size());
        for (const std::uint32_t nb : layer) put_u64(out, nb);
      }
    }
    return out;
  }

  static HnswIndex load_hnsw(std::string_view blob, bool view) {
    constexpr std::string_view kMagic = "hnswidx3\n";
    if (has_magic(blob, "hnswidx2\n")) return load_hnsw_v2(blob);
    if (!has_magic(blob, kMagic)) {
      throw std::runtime_error("HnswIndex::load: bad magic");
    }
    std::size_t pos = kMagic.size();
    const std::size_t dim = checked_dim(take_u64(blob, pos));
    HnswConfig cfg;
    cfg.m = take_u64(blob, pos);
    cfg.ef_search = take_u64(blob, pos);
    HnswIndex idx(dim, cfg);
    idx.entry_point_ = take_u64(blob, pos);
    idx.max_level_ = static_cast<int>(take_u64(blob, pos)) - 1;
    const std::size_t n = take_u64(blob, pos);
    idx.vectors_ = take_block<float>(blob, pos, n, dim, view);
    take_hnsw_nodes(blob, pos, idx, n);
    return idx;
  }

  static HnswIndex load_hnsw_v2(std::string_view blob) {
    std::size_t pos = 9;  // "hnswidx2\n"
    const std::size_t dim = checked_dim(take_u64(blob, pos));
    HnswConfig cfg;
    cfg.m = take_u64(blob, pos);
    cfg.ef_search = take_u64(blob, pos);
    HnswIndex idx(dim, cfg);
    idx.entry_point_ = take_u64(blob, pos);
    idx.max_level_ = static_cast<int>(take_u64(blob, pos)) - 1;
    idx.vectors_ = take_rows_legacy(blob, pos, dim);
    take_hnsw_nodes(blob, pos, idx, idx.vectors_.size());
    return idx;
  }

  static void take_hnsw_nodes(std::string_view blob, std::size_t& pos,
                              HnswIndex& idx, std::size_t n) {
    idx.nodes_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      HnswIndex::Node& node = idx.nodes_[i];
      node.level = static_cast<int>(take_u64(blob, pos));
      if (node.level < 0 || node.level > 64) {
        throw std::runtime_error("HnswIndex::load: bad level");
      }
      node.links.resize(static_cast<std::size_t>(node.level) + 1);
      for (auto& layer : node.links) {
        const std::size_t len = take_u64(blob, pos);
        if (len > n) throw std::runtime_error("HnswIndex::load: bad layer");
        layer.reserve(len);
        for (std::size_t j = 0; j < len; ++j) {
          const std::uint64_t nb = take_u64(blob, pos);
          if (nb >= n) throw std::runtime_error("HnswIndex::load: bad link");
          layer.push_back(static_cast<std::uint32_t>(nb));
        }
      }
    }
    if (n > 0 && idx.entry_point_ >= n) {
      throw std::runtime_error("HnswIndex::load: bad entry point");
    }
  }

  // --- SQ8 -------------------------------------------------------------------

  static std::string save_sq8(const Sq8Index& idx) {
    if (!idx.built_) {
      throw std::logic_error("Sq8Index::save: build() the index first");
    }
    std::string out = "sq8idx1\n";
    put_u64(out, idx.dim_);
    put_u64(out, idx.config_.oversample);
    put_u64(out, idx.config_.min_candidates);
    put_u64(out, idx.rows_.size());
    put_float_vec(out, idx.min_);
    put_float_vec(out, idx.scale_);
    put_block(out, idx.codes_);
    put_block(out, idx.rows_);
    return out;
  }

  static Sq8Index load_sq8(std::string_view blob, bool view) {
    constexpr std::string_view kMagic = "sq8idx1\n";
    if (!has_magic(blob, kMagic)) {
      throw std::runtime_error("Sq8Index::load: bad magic");
    }
    std::size_t pos = kMagic.size();
    const std::size_t dim = checked_dim(take_u64(blob, pos));
    Sq8Config cfg;
    cfg.oversample = take_u64(blob, pos);
    cfg.min_candidates = take_u64(blob, pos);
    const std::size_t n = take_u64(blob, pos);
    Sq8Index idx(dim, cfg);
    idx.min_ = take_float_vec(blob, pos, dim);
    idx.scale_ = take_float_vec(blob, pos, dim);
    idx.codes_ = take_block<std::uint8_t>(blob, pos, n, dim, view);
    idx.rows_ = take_block<util::fp16_t>(blob, pos, n, dim, view);
    idx.built_ = true;
    return idx;
  }

  // --- IVF-PQ ----------------------------------------------------------------

  static std::string save_ivfpq(const IvfPqIndex& idx) {
    if (!idx.built_) {
      throw std::logic_error("IvfPqIndex::save: build() the index first");
    }
    std::string out = "ivfpqidx1\n";
    put_u64(out, idx.dim_);
    put_u64(out, idx.m_);
    put_u64(out, idx.ksub_);
    put_u64(out, idx.config_.nprobe);
    put_u64(out, idx.config_.oversample);
    put_u64(out, idx.config_.min_candidates);
    put_u64(out, idx.rows_.size());
    put_u64(out, idx.centroids_.size());
    put_block(out, idx.centroids_);
    put_block(out, idx.codebooks_);
    put_block(out, idx.codes_);
    put_block(out, idx.rows_);
    for (const auto& list : idx.lists_) {
      put_u64(out, list.size());
      for (const std::uint32_t row : list) put_u64(out, row);
    }
    return out;
  }

  static IvfPqIndex load_ivfpq(std::string_view blob, bool view) {
    constexpr std::string_view kMagic = "ivfpqidx1\n";
    if (!has_magic(blob, kMagic)) {
      throw std::runtime_error("IvfPqIndex::load: bad magic");
    }
    std::size_t pos = kMagic.size();
    const std::size_t dim = checked_dim(take_u64(blob, pos));
    const std::size_t m = take_u64(blob, pos);
    const std::size_t ksub = take_u64(blob, pos);
    if (m == 0 || dim % m != 0 || ksub > 256) {
      throw std::runtime_error("IvfPqIndex::load: bad quantizer shape");
    }
    IvfPqConfig cfg;
    cfg.m = m;
    cfg.ksub = ksub;
    cfg.nprobe = take_u64(blob, pos);
    cfg.oversample = take_u64(blob, pos);
    cfg.min_candidates = take_u64(blob, pos);
    const std::size_t n = take_u64(blob, pos);
    const std::size_t nlist = take_u64(blob, pos);
    IvfPqIndex idx(dim, cfg);
    idx.m_ = m;
    idx.ksub_ = ksub;
    idx.centroids_ = take_block<float>(blob, pos, nlist, dim, view);
    idx.codebooks_ = take_block<float>(blob, pos, m * ksub, dim / m, view);
    idx.codes_ = take_block<std::uint8_t>(blob, pos, n, m, view);
    idx.rows_ = take_block<util::fp16_t>(blob, pos, n, dim, view);
    idx.lists_.resize(nlist);
    for (std::size_t c = 0; c < nlist; ++c) {
      const std::size_t len = take_u64(blob, pos);
      if (len > n) throw std::runtime_error("IvfPqIndex::load: bad list");
      idx.lists_[c].reserve(len);
      for (std::size_t i = 0; i < len; ++i) {
        const std::uint64_t row = take_u64(blob, pos);
        if (row >= n) throw std::runtime_error("IvfPqIndex::load: bad row");
        idx.lists_[c].push_back(static_cast<std::uint32_t>(row));
      }
    }
    idx.built_ = true;
    return idx;
  }
};

// --- member save/load entry points -------------------------------------------

std::string FlatIndex::save() const { return IndexIo::save_flat(*this); }
FlatIndex FlatIndex::load(std::string_view blob) {
  return IndexIo::load_flat(blob, /*view=*/false);
}
FlatIndex FlatIndex::load_view(std::string_view blob) {
  return IndexIo::load_flat(blob, /*view=*/true);
}

std::string IvfIndex::save() const { return IndexIo::save_ivf(*this); }
IvfIndex IvfIndex::load(std::string_view blob) {
  return IndexIo::load_ivf(blob, /*view=*/false);
}
IvfIndex IvfIndex::load_view(std::string_view blob) {
  return IndexIo::load_ivf(blob, /*view=*/true);
}

std::string HnswIndex::save() const { return IndexIo::save_hnsw(*this); }
HnswIndex HnswIndex::load(std::string_view blob) {
  return IndexIo::load_hnsw(blob, /*view=*/false);
}
HnswIndex HnswIndex::load_view(std::string_view blob) {
  return IndexIo::load_hnsw(blob, /*view=*/true);
}

std::string Sq8Index::save() const { return IndexIo::save_sq8(*this); }
Sq8Index Sq8Index::load(std::string_view blob) {
  return IndexIo::load_sq8(blob, /*view=*/false);
}
Sq8Index Sq8Index::load_view(std::string_view blob) {
  return IndexIo::load_sq8(blob, /*view=*/true);
}

std::string IvfPqIndex::save() const { return IndexIo::save_ivfpq(*this); }
IvfPqIndex IvfPqIndex::load(std::string_view blob) {
  return IndexIo::load_ivfpq(blob, /*view=*/false);
}
IvfPqIndex IvfPqIndex::load_view(std::string_view blob) {
  return IndexIo::load_ivfpq(blob, /*view=*/true);
}

// --- dispatchers -------------------------------------------------------------

namespace {

std::unique_ptr<VectorIndex> load_dispatch(std::string_view blob, bool view) {
  if (has_magic(blob, "flatidx2\n") || has_magic(blob, "flatidx1\n")) {
    return std::make_unique<FlatIndex>(IndexIo::load_flat(blob, view));
  }
  if (has_magic(blob, "ivfidx3\n") || has_magic(blob, "ivfidx2\n")) {
    return std::make_unique<IvfIndex>(IndexIo::load_ivf(blob, view));
  }
  if (has_magic(blob, "hnswidx3\n") || has_magic(blob, "hnswidx2\n")) {
    return std::make_unique<HnswIndex>(IndexIo::load_hnsw(blob, view));
  }
  if (has_magic(blob, "sq8idx1\n")) {
    return std::make_unique<Sq8Index>(IndexIo::load_sq8(blob, view));
  }
  if (has_magic(blob, "ivfpqidx1\n")) {
    return std::make_unique<IvfPqIndex>(IndexIo::load_ivfpq(blob, view));
  }
  throw std::runtime_error("load_index: unknown index magic");
}

}  // namespace

std::unique_ptr<VectorIndex> load_index(std::string_view blob) {
  return load_dispatch(blob, /*view=*/false);
}

std::unique_ptr<VectorIndex> load_index_view(std::string_view blob) {
  return load_dispatch(blob, /*view=*/true);
}

std::unique_ptr<VectorIndex> try_load_index(std::string_view blob) noexcept {
  try {
    return load_dispatch(blob, /*view=*/false);
  } catch (...) {
    return nullptr;
  }
}

MappedIndex open_index_mmap(const std::string& path) {
  auto file = std::make_shared<MappedFile>(MappedFile::open(path));
  auto index = load_index_view(file->bytes());
  return MappedIndex{std::move(file), std::move(index)};
}

}  // namespace mcqa::index
