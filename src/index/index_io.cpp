// Serialization for the trained IVF and HNSW indexes.  Simple
// length-prefixed binary sections after a text header; float payloads
// are memcpy'd (indexes are a cache, not an interchange format — the
// canonical artifacts are the JSON records).
//
// Format v2: vectors and centroids live in contiguous RowStorage, so
// the whole row-major payload moves as one block instead of a
// per-vector loop.

#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "index/vector_index.hpp"

namespace mcqa::index {

namespace {

void put_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

std::uint64_t take_u64(std::string_view blob, std::size_t& pos) {
  if (pos + 8 > blob.size()) {
    throw std::runtime_error("index load: truncated integer");
  }
  std::uint64_t v = 0;
  std::memcpy(&v, blob.data() + pos, 8);
  pos += 8;
  return v;
}

/// Write a RowStorage payload: row count then the flat float block.
void put_rows(std::string& out, const RowStorage& rows) {
  put_u64(out, rows.size());
  const std::size_t bytes = rows.data().size() * sizeof(float);
  const std::size_t at = out.size();
  out.resize(at + bytes);
  std::memcpy(out.data() + at, rows.data().data(), bytes);
}

RowStorage take_rows(std::string_view blob, std::size_t& pos,
                     std::size_t dim) {
  const std::size_t n = take_u64(blob, pos);
  const std::size_t bytes = n * dim * sizeof(float);
  if (pos + bytes > blob.size()) {
    throw std::runtime_error("index load: truncated row block");
  }
  RowStorage rows(dim);
  rows.resize_rows(n);
  std::memcpy(rows.data().data(), blob.data() + pos, bytes);
  pos += bytes;
  return rows;
}

}  // namespace

// --- IVF ---------------------------------------------------------------------

std::string IvfIndex::save() const {
  if (!built_) {
    throw std::logic_error("IvfIndex::save: build() the index first");
  }
  std::string out = "ivfidx2\n";
  put_u64(out, dim_);
  put_u64(out, config_.nprobe);
  put_rows(out, vectors_);
  put_rows(out, centroids_);
  for (const auto& list : lists_) {
    put_u64(out, list.size());
    for (const std::size_t row : list) put_u64(out, row);
  }
  return out;
}

IvfIndex IvfIndex::load(std::string_view blob) {
  constexpr std::string_view kMagic = "ivfidx2\n";
  if (blob.substr(0, kMagic.size()) != kMagic) {
    throw std::runtime_error("IvfIndex::load: bad magic");
  }
  std::size_t pos = kMagic.size();
  const std::size_t dim = take_u64(blob, pos);
  if (dim == 0 || dim > 1u << 20) {
    throw std::runtime_error("IvfIndex::load: bad dim");
  }
  IvfConfig cfg;
  cfg.nprobe = take_u64(blob, pos);
  IvfIndex idx(dim, cfg);
  idx.vectors_ = take_rows(blob, pos, dim);
  idx.centroids_ = take_rows(blob, pos, dim);
  const std::size_t n = idx.vectors_.size();
  const std::size_t k = idx.centroids_.size();
  idx.lists_.resize(k);
  for (std::size_t c = 0; c < k; ++c) {
    const std::size_t len = take_u64(blob, pos);
    idx.lists_[c].reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      const std::size_t row = take_u64(blob, pos);
      if (row >= n) throw std::runtime_error("IvfIndex::load: bad row");
      idx.lists_[c].push_back(row);
    }
  }
  idx.built_ = true;
  return idx;
}

// --- HNSW --------------------------------------------------------------------

std::string HnswIndex::save() const {
  std::string out = "hnswidx2\n";
  put_u64(out, dim_);
  put_u64(out, config_.m);
  put_u64(out, config_.ef_search);
  put_u64(out, entry_point_);
  put_u64(out, static_cast<std::uint64_t>(max_level_ + 1));
  put_rows(out, vectors_);
  for (const auto& node : nodes_) {
    put_u64(out, static_cast<std::uint64_t>(node.level));
    for (const auto& layer : node.links) {
      put_u64(out, layer.size());
      for (const std::uint32_t nb : layer) put_u64(out, nb);
    }
  }
  return out;
}

HnswIndex HnswIndex::load(std::string_view blob) {
  constexpr std::string_view kMagic = "hnswidx2\n";
  if (blob.substr(0, kMagic.size()) != kMagic) {
    throw std::runtime_error("HnswIndex::load: bad magic");
  }
  std::size_t pos = kMagic.size();
  const std::size_t dim = take_u64(blob, pos);
  if (dim == 0 || dim > 1u << 20) {
    throw std::runtime_error("HnswIndex::load: bad dim");
  }
  HnswConfig cfg;
  cfg.m = take_u64(blob, pos);
  cfg.ef_search = take_u64(blob, pos);
  HnswIndex idx(dim, cfg);
  idx.entry_point_ = take_u64(blob, pos);
  idx.max_level_ = static_cast<int>(take_u64(blob, pos)) - 1;
  idx.vectors_ = take_rows(blob, pos, dim);
  const std::size_t n = idx.vectors_.size();
  idx.nodes_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    Node& node = idx.nodes_[i];
    node.level = static_cast<int>(take_u64(blob, pos));
    if (node.level < 0 || node.level > 64) {
      throw std::runtime_error("HnswIndex::load: bad level");
    }
    node.links.resize(static_cast<std::size_t>(node.level) + 1);
    for (auto& layer : node.links) {
      const std::size_t len = take_u64(blob, pos);
      layer.reserve(len);
      for (std::size_t j = 0; j < len; ++j) {
        const std::uint64_t nb = take_u64(blob, pos);
        if (nb >= n) throw std::runtime_error("HnswIndex::load: bad link");
        layer.push_back(static_cast<std::uint32_t>(nb));
      }
    }
  }
  if (n > 0 && idx.entry_point_ >= n) {
    throw std::runtime_error("HnswIndex::load: bad entry point");
  }
  return idx;
}

}  // namespace mcqa::index
