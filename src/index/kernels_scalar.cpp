// Baseline kernel table.  Compiled with -ffp-contract=off -O3 and NO
// vector ISA flags (src/index/CMakeLists.txt): whatever the default
// target provides is the "scalar" reference every other table must
// match bit-for-bit.

#include "index/kernels_detail.hpp"

#define MCQA_KERNEL_IMPL_NAMESPACE scalar_impl
#include "index/kernels_impl.inc"
#undef MCQA_KERNEL_IMPL_NAMESPACE

namespace mcqa::index::kernels::detail {

const KernelOps& scalar_ops() { return scalar_impl::ops(); }

}  // namespace mcqa::index::kernels::detail
