#include "index/vector_store.hpp"

#include <cstdint>
#include <cstring>
#include <stdexcept>

#include "index/quantized.hpp"
#include "parallel/thread_pool.hpp"

namespace mcqa::index {

namespace {
std::unique_ptr<VectorIndex> make_index(IndexKind kind, std::size_t dim) {
  switch (kind) {
    case IndexKind::kFlat: return std::make_unique<FlatIndex>(dim);
    case IndexKind::kIvf: return std::make_unique<IvfIndex>(dim);
    case IndexKind::kHnsw: return std::make_unique<HnswIndex>(dim);
    case IndexKind::kSq8: return std::make_unique<Sq8Index>(dim);
    case IndexKind::kIvfPq: return std::make_unique<IvfPqIndex>(dim);
  }
  throw std::invalid_argument("unknown IndexKind");
}

IndexKind kind_from_name(std::string_view name) {
  if (name == "flat") return IndexKind::kFlat;
  if (name == "ivf") return IndexKind::kIvf;
  if (name == "hnsw") return IndexKind::kHnsw;
  if (name == "sq8") return IndexKind::kSq8;
  if (name == "ivfpq") return IndexKind::kIvfPq;
  throw std::runtime_error("VectorStore::load: unknown index kind");
}
}  // namespace

VectorStore::VectorStore(const embed::Embedder& embedder, IndexKind kind)
    : embedder_(embedder), kind_(kind), index_(make_index(kind, embedder.dim())) {}

void VectorStore::add(std::string id, std::string text) {
  index_->add(embedder_.embed(text));
  ids_.push_back(std::move(id));
  texts_.push_back(std::move(text));
  built_ = false;
}

void VectorStore::add_batch(std::vector<std::string> ids,
                            std::vector<std::string> texts,
                            parallel::ThreadPool& pool) {
  if (ids.size() != texts.size()) {
    throw std::invalid_argument("VectorStore::add_batch: size mismatch");
  }
  const std::vector<embed::Vector> vectors = embedder_.embed_batch(texts, pool);
  index_->add_batch(vectors);
  ids_.reserve(ids_.size() + ids.size());
  texts_.reserve(texts_.size() + texts.size());
  for (auto& id : ids) ids_.push_back(std::move(id));
  for (auto& text : texts) texts_.push_back(std::move(text));
  built_ = false;
}

void VectorStore::add_batch(std::vector<std::string> ids,
                            std::vector<std::string> texts) {
  add_batch(std::move(ids), std::move(texts), parallel::ThreadPool::global());
}

void VectorStore::add_precomputed(std::vector<std::string> ids,
                                  std::vector<std::string> texts,
                                  const std::vector<embed::Vector>& vectors) {
  if (ids.size() != texts.size() || ids.size() != vectors.size()) {
    throw std::invalid_argument("VectorStore::add_precomputed: size mismatch");
  }
  for (const auto& v : vectors) {
    if (v.size() != embedder_.dim()) {
      throw std::invalid_argument(
          "VectorStore::add_precomputed: dimension mismatch");
    }
  }
  index_->add_batch(vectors);
  ids_.reserve(ids_.size() + ids.size());
  texts_.reserve(texts_.size() + texts.size());
  for (auto& id : ids) ids_.push_back(std::move(id));
  for (auto& text : texts) texts_.push_back(std::move(text));
  built_ = false;
}

void VectorStore::build() {
  index_->build();
  built_ = true;
}

void VectorStore::build_delta(const VectorStore* donor,
                              double changed_fraction,
                              double retrain_threshold) {
  if (kind_ == IndexKind::kIvfPq && donor != nullptr &&
      donor->kind() == IndexKind::kIvfPq && donor->built_ &&
      donor->size() > 0 && changed_fraction <= retrain_threshold) {
    const auto* src = static_cast<const IvfPqIndex*>(donor->index());
    auto* dst = static_cast<IvfPqIndex*>(index_.get());
    if (src->dim() == dst->dim()) {
      dst->build_frozen(*src, parallel::ThreadPool::global());
      built_ = true;
      return;
    }
  }
  build();
}

namespace {

void put_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

std::uint64_t take_u64(std::string_view blob, std::size_t& pos) {
  if (pos + 8 > blob.size()) {
    throw std::runtime_error("VectorStore::load: truncated integer");
  }
  std::uint64_t v = 0;
  std::memcpy(&v, blob.data() + pos, 8);
  pos += 8;
  return v;
}

void put_str(std::string& out, std::string_view s) {
  put_u64(out, s.size());
  out.append(s);
}

std::string take_str(std::string_view blob, std::size_t& pos) {
  const std::size_t n = take_u64(blob, pos);
  if (pos + n > blob.size()) {
    throw std::runtime_error("VectorStore::load: truncated string");
  }
  std::string s(blob.substr(pos, n));
  pos += n;
  return s;
}

}  // namespace

std::string VectorStore::save() const {
  if (!built_) {
    throw std::logic_error("VectorStore::save: build() the store first");
  }
  // vstore2: like vstore1 but the index blob is zero-padded to an
  // 8-byte offset from the store start, so a whole mapped store file
  // keeps the index payload blocks naturally aligned for view loads.
  std::string out = "vstore2\n";
  put_str(out, index_kind_name(kind_));
  put_u64(out, ids_.size());
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    put_str(out, ids_[i]);
    put_str(out, texts_[i]);
  }
  const std::string index_blob = index_->save();
  put_u64(out, index_blob.size());
  while (out.size() % 8 != 0) out.push_back('\0');
  out.append(index_blob);
  return out;
}

VectorStore VectorStore::load_parsed(const embed::Embedder& embedder,
                                     std::string_view blob, bool view) {
  constexpr std::string_view kMagicV2 = "vstore2\n";
  constexpr std::string_view kMagicV1 = "vstore1\n";
  const bool v2 = blob.substr(0, kMagicV2.size()) == kMagicV2;
  if (!v2 && blob.substr(0, kMagicV1.size()) != kMagicV1) {
    throw std::runtime_error("VectorStore::load: bad magic");
  }
  std::size_t pos = kMagicV2.size();
  const IndexKind kind = kind_from_name(take_str(blob, pos));

  VectorStore store(embedder, kind);
  const std::size_t n = take_u64(blob, pos);
  store.ids_.reserve(n);
  store.texts_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    store.ids_.push_back(take_str(blob, pos));
    store.texts_.push_back(take_str(blob, pos));
  }
  const std::size_t blob_len = take_u64(blob, pos);
  if (v2) {
    // Loader-side pad skip: recomputed from the stream position, never
    // stored (mirrors the index blob formats).
    while (pos % 8 != 0) {
      if (pos >= blob.size()) {
        throw std::runtime_error("VectorStore::load: truncated pad");
      }
      ++pos;
    }
  }
  if (pos + blob_len > blob.size()) {
    throw std::runtime_error("VectorStore::load: truncated index blob");
  }
  const std::string_view index_blob = blob.substr(pos, blob_len);
  store.index_ = view ? load_index_view(index_blob) : load_index(index_blob);
  if (store.index_->kind() != kind || store.index_->size() != n) {
    throw std::runtime_error("VectorStore::load: index/store mismatch");
  }
  store.built_ = true;
  return store;
}

VectorStore VectorStore::load(const embed::Embedder& embedder,
                              std::string_view blob) {
  return load_parsed(embedder, blob, /*view=*/false);
}

VectorStore VectorStore::open_mmap(const embed::Embedder& embedder,
                                   const std::string& path) {
  auto file = std::make_shared<MappedFile>(MappedFile::open(path));
  VectorStore store = load_parsed(embedder, file->bytes(), /*view=*/true);
  store.backing_ = std::move(file);  // outlives the index's views
  return store;
}

std::vector<Hit> VectorStore::hits_for(
    const std::vector<SearchResult>& results) const {
  std::vector<Hit> hits;
  hits.reserve(results.size());
  for (const auto& r : results) {
    hits.push_back(Hit{ids_[r.row], texts_[r.row], r.score});
  }
  return hits;
}

std::vector<Hit> VectorStore::query(std::string_view text,
                                    std::size_t k) const {
  return query_vector(embedder_.embed(text), k);
}

std::vector<Hit> VectorStore::query_vector(const embed::Vector& v,
                                           std::size_t k) const {
  if (!built_) {
    throw std::logic_error("VectorStore::query before build()");
  }
  return hits_for(index_->search(v, k));
}

std::vector<std::vector<Hit>> VectorStore::query_batch(
    const std::vector<std::string>& texts, std::size_t k,
    parallel::ThreadPool& pool) const {
  if (!built_) {
    throw std::logic_error("VectorStore::query_batch before build()");
  }
  // Embedding is thread-safe by contract, so it rides the same pool.
  std::vector<embed::Vector> queries(texts.size());
  parallel::parallel_for(pool, 0, texts.size(), [&](std::size_t i) {
    queries[i] = embedder_.embed(texts[i]);
  });
  const auto batches = index_->search_batch(queries, k, pool);
  std::vector<std::vector<Hit>> out(batches.size());
  for (std::size_t i = 0; i < batches.size(); ++i) {
    out[i] = hits_for(batches[i]);
  }
  return out;
}

std::vector<std::vector<Hit>> VectorStore::query_batch(
    const std::vector<std::string>& texts, std::size_t k) const {
  return query_batch(texts, k, parallel::ThreadPool::global());
}

}  // namespace mcqa::index
