#include "index/vector_store.hpp"

#include <stdexcept>

#include "parallel/thread_pool.hpp"

namespace mcqa::index {

std::string_view index_kind_name(IndexKind kind) {
  switch (kind) {
    case IndexKind::kFlat: return "flat";
    case IndexKind::kIvf: return "ivf";
    case IndexKind::kHnsw: return "hnsw";
  }
  return "unknown";
}

namespace {
std::unique_ptr<VectorIndex> make_index(IndexKind kind, std::size_t dim) {
  switch (kind) {
    case IndexKind::kFlat: return std::make_unique<FlatIndex>(dim);
    case IndexKind::kIvf: return std::make_unique<IvfIndex>(dim);
    case IndexKind::kHnsw: return std::make_unique<HnswIndex>(dim);
  }
  throw std::invalid_argument("unknown IndexKind");
}
}  // namespace

VectorStore::VectorStore(const embed::Embedder& embedder, IndexKind kind)
    : embedder_(embedder), index_(make_index(kind, embedder.dim())) {}

void VectorStore::add(std::string id, std::string text) {
  index_->add(embedder_.embed(text));
  ids_.push_back(std::move(id));
  texts_.push_back(std::move(text));
  built_ = false;
}

void VectorStore::add_batch(std::vector<std::string> ids,
                            std::vector<std::string> texts,
                            parallel::ThreadPool& pool) {
  if (ids.size() != texts.size()) {
    throw std::invalid_argument("VectorStore::add_batch: size mismatch");
  }
  const std::vector<embed::Vector> vectors = embedder_.embed_batch(texts, pool);
  index_->add_batch(vectors);
  ids_.reserve(ids_.size() + ids.size());
  texts_.reserve(texts_.size() + texts.size());
  for (auto& id : ids) ids_.push_back(std::move(id));
  for (auto& text : texts) texts_.push_back(std::move(text));
  built_ = false;
}

void VectorStore::add_batch(std::vector<std::string> ids,
                            std::vector<std::string> texts) {
  add_batch(std::move(ids), std::move(texts), parallel::ThreadPool::global());
}

void VectorStore::build() {
  index_->build();
  built_ = true;
}

std::vector<Hit> VectorStore::hits_for(
    const std::vector<SearchResult>& results) const {
  std::vector<Hit> hits;
  hits.reserve(results.size());
  for (const auto& r : results) {
    hits.push_back(Hit{ids_[r.row], texts_[r.row], r.score});
  }
  return hits;
}

std::vector<Hit> VectorStore::query(std::string_view text,
                                    std::size_t k) const {
  return query_vector(embedder_.embed(text), k);
}

std::vector<Hit> VectorStore::query_vector(const embed::Vector& v,
                                           std::size_t k) const {
  if (!built_) {
    throw std::logic_error("VectorStore::query before build()");
  }
  return hits_for(index_->search(v, k));
}

std::vector<std::vector<Hit>> VectorStore::query_batch(
    const std::vector<std::string>& texts, std::size_t k,
    parallel::ThreadPool& pool) const {
  if (!built_) {
    throw std::logic_error("VectorStore::query_batch before build()");
  }
  // Embedding is thread-safe by contract, so it rides the same pool.
  std::vector<embed::Vector> queries(texts.size());
  parallel::parallel_for(pool, 0, texts.size(), [&](std::size_t i) {
    queries[i] = embedder_.embed(texts[i]);
  });
  const auto batches = index_->search_batch(queries, k, pool);
  std::vector<std::vector<Hit>> out(batches.size());
  for (std::size_t i = 0; i < batches.size(); ++i) {
    out[i] = hits_for(batches[i]);
  }
  return out;
}

std::vector<std::vector<Hit>> VectorStore::query_batch(
    const std::vector<std::string>& texts, std::size_t k) const {
  return query_batch(texts, k, parallel::ThreadPool::global());
}

}  // namespace mcqa::index
