#include "index/vector_store.hpp"

#include <stdexcept>

namespace mcqa::index {

std::string_view index_kind_name(IndexKind kind) {
  switch (kind) {
    case IndexKind::kFlat: return "flat";
    case IndexKind::kIvf: return "ivf";
    case IndexKind::kHnsw: return "hnsw";
  }
  return "unknown";
}

namespace {
std::unique_ptr<VectorIndex> make_index(IndexKind kind, std::size_t dim) {
  switch (kind) {
    case IndexKind::kFlat: return std::make_unique<FlatIndex>(dim);
    case IndexKind::kIvf: return std::make_unique<IvfIndex>(dim);
    case IndexKind::kHnsw: return std::make_unique<HnswIndex>(dim);
  }
  throw std::invalid_argument("unknown IndexKind");
}
}  // namespace

VectorStore::VectorStore(const embed::Embedder& embedder, IndexKind kind)
    : embedder_(embedder), index_(make_index(kind, embedder.dim())) {}

void VectorStore::add(std::string id, std::string text) {
  index_->add(embedder_.embed(text));
  ids_.push_back(std::move(id));
  texts_.push_back(std::move(text));
  built_ = false;
}

void VectorStore::build() {
  index_->build();
  built_ = true;
}

std::vector<Hit> VectorStore::query(std::string_view text,
                                    std::size_t k) const {
  return query_vector(embedder_.embed(text), k);
}

std::vector<Hit> VectorStore::query_vector(const embed::Vector& v,
                                           std::size_t k) const {
  if (!built_) {
    throw std::logic_error("VectorStore::query before build()");
  }
  std::vector<Hit> hits;
  for (const auto& r : index_->search(v, k)) {
    hits.push_back(Hit{ids_[r.row], texts_[r.row], r.score});
  }
  return hits;
}

}  // namespace mcqa::index
