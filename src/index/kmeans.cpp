#include "index/kmeans.hpp"

#include <algorithm>

// vector_index.hpp (not kernels.hpp directly): completes SearchResult,
// which the inline TopK members in kernels.hpp need by end of TU.
#include "index/vector_index.hpp"

namespace mcqa::index {

namespace {

/// k-means++ style seeding: first centroid uniform, then
/// distance-biased.  Each point's best squared distance is cached and
/// refreshed against only the newest centroid (O(n*k) total, not
/// O(n*k^2)); min over the same distances in any order is exact, so the
/// picks are unchanged.  (Moved verbatim from IvfIndex::build.)
RowStorage seed_centroids(const StridedRows& data, std::size_t k,
                          util::Rng& rng) {
  const std::size_t n = data.rows;
  RowStorage centroids(data.dim);
  centroids.add_row(data.row(rng.bounded(static_cast<std::uint32_t>(n))));
  std::vector<double> d2(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    d2[i] = kernels::l2_sq(data.row(i), centroids.row(0), data.dim);
  }
  while (centroids.size() < k) {
    double total = 0.0;
    for (const double d : d2) total += d;
    if (total <= 0.0) break;
    const std::size_t pick = rng.weighted_pick(d2);
    if (pick >= n) break;
    centroids.add_row(data.row(pick));
    const float* newest = centroids.row(centroids.size() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      d2[i] = std::min(
          d2[i],
          static_cast<double>(kernels::l2_sq(data.row(i), newest, data.dim)));
    }
  }
  return centroids;
}

enum class Metric { kDot, kL2 };

std::size_t assign(const RowStorage& centroids, const float* v, Metric metric) {
  if (metric == Metric::kDot) {
    float best = -2.0f;
    std::size_t best_c = 0;
    for (std::size_t c = 0; c < centroids.size(); ++c) {
      const float s = kernels::dot(v, centroids.row(c), centroids.dim());
      if (s > best) {
        best = s;
        best_c = c;
      }
    }
    return best_c;
  }
  float best = -1.0f;
  std::size_t best_c = 0;
  for (std::size_t c = 0; c < centroids.size(); ++c) {
    const float d = kernels::l2_sq(v, centroids.row(c), centroids.dim());
    if (best < 0.0f || d < best) {
      best = d;
      best_c = c;
    }
  }
  return best_c;
}

RowStorage lloyd(const StridedRows& data, std::size_t k, std::size_t iters,
                 util::Rng rng, Metric metric) {
  const std::size_t n = data.rows;
  if (n == 0) return RowStorage(data.dim);
  RowStorage centroids = seed_centroids(data, std::min(k, n), rng);

  std::vector<std::size_t> assignment(n, 0);
  for (std::size_t iter = 0; iter < iters; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t best_c = assign(centroids, data.row(i), metric);
      if (assignment[i] != best_c) {
        assignment[i] = best_c;
        changed = true;
      }
    }
    // Recompute centroids (mean; renormalized to the unit sphere for
    // the spherical metric).
    std::vector<embed::Vector> sums(centroids.size(),
                                    embed::Vector(data.dim, 0.0f));
    std::vector<std::size_t> counts(centroids.size(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const float* row = data.row(i);
      for (std::size_t d = 0; d < data.dim; ++d) {
        sums[assignment[i]][d] += row[d];
      }
      ++counts[assignment[i]];
    }
    for (std::size_t c = 0; c < centroids.size(); ++c) {
      if (counts[c] == 0) continue;  // keep the stale centroid
      if (metric == Metric::kDot) {
        embed::normalize(sums[c]);
      } else {
        const float inv = 1.0f / static_cast<float>(counts[c]);
        for (float& x : sums[c]) x *= inv;
      }
      centroids.set_row(c, sums[c]);
    }
    if (!changed) break;
  }
  return centroids;
}

}  // namespace

RowStorage kmeans_spherical(const StridedRows& data, std::size_t k,
                            std::size_t iters, util::Rng rng) {
  return lloyd(data, k, iters, rng, Metric::kDot);
}

RowStorage kmeans_l2(const StridedRows& data, std::size_t k,
                     std::size_t iters, util::Rng rng) {
  return lloyd(data, k, iters, rng, Metric::kL2);
}

std::size_t nearest_dot(const RowStorage& centroids, const float* v) {
  float best = -2.0f;
  std::size_t best_c = 0;
  for (std::size_t c = 0; c < centroids.size(); ++c) {
    const float s = kernels::dot(v, centroids.row(c), centroids.dim());
    if (s > best) {
      best = s;
      best_c = c;
    }
  }
  return best_c;
}

std::size_t nearest_l2(const RowStorage& centroids, const float* v) {
  float best = -1.0f;
  std::size_t best_c = 0;
  for (std::size_t c = 0; c < centroids.size(); ++c) {
    const float d = kernels::l2_sq(v, centroids.row(c), centroids.dim());
    if (best < 0.0f || d < best) {
      best = d;
      best_c = c;
    }
  }
  return best_c;
}

}  // namespace mcqa::index
