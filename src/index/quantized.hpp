#pragma once
// Quantized index tier: SQ8 (scalar quantization, 1 byte/dim) and
// IVF-PQ (inverted lists over product-quantized codes, m bytes/row),
// both followed by an exact FP16 rerank pass.
//
// Rerank contract (property-tested): the approximate scan only selects
// an oversampled candidate set — max(min_candidates, k * oversample)
// rows.  Final scores always come from kernels::dot_fp16 over rows
// stored with the exact float->fp16 conversion FlatIndex uses, ranked
// by the same (score desc, row asc) comparator.  Whenever the candidate
// set covers the true top-k (always when it spans the whole store), the
// returned rows AND scores are bit-identical to FlatIndex::search.
// When it does not, the miss is a recall loss, never a score
// perturbation — measured as the recall@k floor in the ablation bench.
//
// Determinism: quantizer training consumes util::Rng streams forked
// from the config seed by stable ids; row encoding parallelizes over a
// pool but writes disjoint pre-sized slots, so built indexes are
// byte-identical across 1/2/8 threads and across add() vs add_batch()
// construction.
//
// Memory accounting (bytes/vector in the ablation bench): SQ8 scans
// 1 byte/dim codes (0.5x the FP16 flat payload), IVF-PQ scans m-byte
// codes plus amortized centroids/codebooks (<= 0.35x flat at the 1M
// scale).  The FP16 rerank source is reported separately
// (rerank_bytes()); under mmap those pages stay cold except for the
// few candidate rows each query touches.

#include <cstdint>
#include <string>
#include <vector>

#include "index/vector_index.hpp"

namespace mcqa::index {

struct Sq8Config {
  /// Candidate set size = max(min_candidates, k * oversample), clamped
  /// to the store size.
  std::size_t oversample = 4;
  std::size_t min_candidates = 64;
};

/// Scalar-quantized index: per-dimension affine codes
/// code[d] = round((x[d] - min[d]) / scale[d]) in [0, 255], scanned by
/// the fused kernels::dot_u8 decode-and-dot, then exact-reranked.
class Sq8Index final : public VectorIndex {
 public:
  explicit Sq8Index(std::size_t dim, Sq8Config config = {});

  std::string_view name() const override { return "sq8"; }
  IndexKind kind() const override { return IndexKind::kSq8; }
  std::size_t dim() const override { return dim_; }
  std::size_t size() const override { return rows_.size(); }
  void add(const embed::Vector& v) override;
  void add_batch(const std::vector<embed::Vector>& vs) override;
  void build() override;
  void build(parallel::ThreadPool& pool) override;
  std::vector<SearchResult> search(const embed::Vector& query,
                                   std::size_t k) const override;
  /// Tiled: codes are widened once per kTileQ queries on the approx
  /// scan, and the rerank scores each candidate row once per querying
  /// tile member (bit-identical — see DESIGN.md §18).
  void search_block(const std::vector<embed::Vector>& queries,
                    std::size_t begin, std::size_t end, std::size_t k,
                    std::vector<std::vector<SearchResult>>& out) const override;

  std::string save() const override;
  static Sq8Index load(std::string_view blob);
  /// Codes and rerank rows view `blob` (caller keeps the bytes alive).
  static Sq8Index load_view(std::string_view blob);

  std::size_t payload_bytes() const override {
    return codes_.value_count() * sizeof(std::uint8_t) +
           2 * dim_ * sizeof(float);  // min + scale
  }
  std::size_t rerank_bytes() const override {
    return rows_.value_count() * sizeof(util::fp16_t);
  }
  bool mmap_backed() const override { return codes_.is_view(); }

  void set_oversample(std::size_t oversample) {
    config_.oversample = oversample;
  }
  /// Raise the candidate floor — with min_candidates >= size() the scan
  /// covers the store and results are bit-identical to FlatIndex.
  void set_min_candidates(std::size_t min_candidates) {
    config_.min_candidates = min_candidates;
  }

  // --- introspection (tests / round-trip error bounds) -----------------------

  /// Per-dimension quantization params (valid after build()).
  float min_of(std::size_t d) const { return min_[d]; }
  float scale_of(std::size_t d) const { return scale_[d]; }
  /// Decoded (dequantized) row — |decode(d) - fp16(x[d])| <= scale[d]/2
  /// + half-ulp, the SQ8 round-trip bound.
  embed::Vector decode(std::size_t row) const;
  const CodeRows& codes() const { return codes_; }
  const Fp16Rows& rows() const { return rows_; }

  /// Approximate candidate rows (pre-rerank), best first — exposed so
  /// tests can check the rerank contract's coverage condition directly.
  std::vector<SearchResult> approx_candidates(const embed::Vector& query,
                                              std::size_t count) const;

 private:
  friend struct IndexIo;

  std::size_t dim_;
  Sq8Config config_;
  bool built_ = false;
  Fp16Rows rows_;    ///< exact-rerank source, same bits as FlatIndex
  CodeRows codes_;   ///< 1 byte/dim affine codes
  std::vector<float> min_;    ///< per-dimension code-0 value
  std::vector<float> scale_;  ///< per-dimension step ((max-min)/255)
};

struct IvfPqConfig {
  std::size_t nlist = 64;   ///< coarse cells
  std::size_t nprobe = 8;   ///< cells visited per query
  std::size_t m = 16;       ///< subquantizers (bytes/row); clamped to a
                            ///< divisor of dim at build time
  std::size_t ksub = 256;   ///< centroids per subquantizer (<= 256)
  std::size_t coarse_iters = 12;
  std::size_t train_iters = 12;
  std::size_t train_sample = 32768;  ///< PQ codebook training sample cap
  std::size_t oversample = 8;
  std::size_t min_candidates = 64;
  std::uint64_t seed = 77;
};

/// IVF cells over PQ codes: coarse spherical k-means routes queries to
/// nprobe inverted lists; rows inside are scored by the ADC table
/// lookup kernels::pq_lookup, then exact-reranked.  No residual
/// encoding — codebooks quantize the raw sub-vectors, which keeps
/// encode/search simple and is accurate enough for unit-norm rows.
class IvfPqIndex final : public VectorIndex {
 public:
  explicit IvfPqIndex(std::size_t dim, IvfPqConfig config = {});

  std::string_view name() const override { return "ivfpq"; }
  IndexKind kind() const override { return IndexKind::kIvfPq; }
  std::size_t dim() const override { return dim_; }
  std::size_t size() const override { return rows_.size(); }
  void add(const embed::Vector& v) override;
  void add_batch(const std::vector<embed::Vector>& vs) override;
  void build() override;
  void build(parallel::ThreadPool& pool) override;

  /// Delta build: reuse `donor`'s trained coarse centroids and PQ
  /// codebooks verbatim (no k-means) and only re-assign cells and
  /// re-encode this index's own rows against them.  Search stays exact
  /// regardless — the fp16 rerank never reads the quantizers' training
  /// provenance — so results remain bit-identical to FlatIndex whenever
  /// the candidate set covers the true top-k.  Falls back to a full
  /// build() when the donor is unusable (dimension mismatch or
  /// untrained).  The donor's quantizers are copied out, so the donor
  /// may be destroyed afterwards (it may view an mmap'd blob).
  void build_frozen(const IvfPqIndex& donor, parallel::ThreadPool& pool);

  std::vector<SearchResult> search(const embed::Vector& query,
                                   std::size_t k) const override;
  /// Tiled: centroid ranking and list scans share row loads across the
  /// tile; each query still scores exactly the rows of its own probed
  /// cells (per-cell sub-tiles), so candidate sets — and therefore the
  /// reranked results — match the per-query path bit-for-bit.
  void search_block(const std::vector<embed::Vector>& queries,
                    std::size_t begin, std::size_t end, std::size_t k,
                    std::vector<std::vector<SearchResult>>& out) const override;

  std::string save() const override;
  static IvfPqIndex load(std::string_view blob);
  /// Codes and rerank rows view `blob` (caller keeps the bytes alive).
  static IvfPqIndex load_view(std::string_view blob);

  std::size_t payload_bytes() const override {
    return codes_.value_count() * sizeof(std::uint8_t) +
           (centroids_.value_count() + codebooks_.value_count()) *
               sizeof(float) +
           size() * sizeof(std::uint32_t);  // one list slot per row
  }
  std::size_t rerank_bytes() const override {
    return rows_.value_count() * sizeof(util::fp16_t);
  }
  bool mmap_backed() const override { return codes_.is_view(); }

  void set_nprobe(std::size_t nprobe) { config_.nprobe = nprobe; }
  void set_oversample(std::size_t oversample) {
    config_.oversample = oversample;
  }
  void set_min_candidates(std::size_t min_candidates) {
    config_.min_candidates = min_candidates;
  }
  std::size_t nlist() const { return centroids_.size(); }

  // --- introspection (tests) -------------------------------------------------

  /// Effective subquantizer count (largest divisor of dim <= config.m).
  std::size_t subquantizers() const { return m_; }
  std::size_t codebook_size() const { return ksub_; }
  /// Trained codebooks, [m * ksub] rows of dim/m floats — byte-stable
  /// across thread counts (determinism property tests compare these).
  const RowStorage& codebooks() const { return codebooks_; }
  const CodeRows& codes() const { return codes_; }
  const Fp16Rows& rows() const { return rows_; }

  std::vector<SearchResult> approx_candidates(const embed::Vector& query,
                                              std::size_t count) const;

 private:
  friend struct IndexIo;

  void encode_rows(parallel::ThreadPool& pool, const RowStorage& floats);

  std::size_t dim_;
  IvfPqConfig config_;
  std::size_t m_ = 0;     ///< effective subquantizers (divisor of dim)
  std::size_t ksub_ = 0;  ///< effective codebook size
  bool built_ = false;
  Fp16Rows rows_;         ///< exact-rerank source
  CodeRows codes_;        ///< m_ codes per row
  RowStorage centroids_;  ///< coarse quantizer (dim floats per row)
  RowStorage codebooks_;  ///< m_*ksub_ rows of dim/m_ floats
  std::vector<std::vector<std::uint32_t>> lists_;  ///< rows per cell
};

}  // namespace mcqa::index
