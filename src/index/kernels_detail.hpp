#pragma once
// Internal seams between the kernel dispatch layer (kernels.cpp) and
// the per-ISA translation units (kernels_scalar.cpp, kernels_avx2.cpp).
// Not part of the public API.

#include "index/kernels.hpp"
#include "index/vector_index.hpp"  // complete SearchResult for TopK's inline bodies

namespace mcqa::index::kernels::detail {

/// Dequantization table: fp16 bit pattern -> float, identical to
/// util::fp16_to_float for every one of the 65536 inputs.  Defined in
/// kernels.cpp so both ISA tables share one 256 KB table.
const float* fp16_table();

/// The baseline table (always available).
const KernelOps& scalar_ops();

/// The AVX2 table, or nullptr when its TU was compiled without AVX2
/// codegen (compiler lacked -mavx2).  Runtime cpuid gating happens in
/// ops_for(), not here.
const KernelOps* avx2_ops();

/// The resolved dispatch table the public free functions forward to.
const KernelOps& active_ops();

}  // namespace mcqa::index::kernels::detail
