#pragma once
// Seeded k-means shared by the IVF coarse quantizer and the product
// quantizer's per-subspace codebooks.
//
// Extracted verbatim from IvfIndex::build (PR 1's seeded k-means++):
// distance-biased seeding over squared L2, then Lloyd iterations.  Two
// metric flavours:
//   * spherical — assignment by max inner product, centroid update =
//     renormalized mean (unit-norm embedding rows; exactly the historic
//     IVF training loop, so trained IVF indexes are bit-identical to
//     pre-extraction builds), and
//   * l2 — assignment by min squared Euclidean distance, centroid
//     update = plain mean (PQ sub-vectors are not unit-norm).
//
// Determinism: all stochastic choices come from the caller's Rng
// (streams keyed by stable ids upstream); training is sequential and
// touches no wall-clock or global state, so codebooks are byte-stable
// across runs, thread counts, and add/add_batch construction order.

#include <cstddef>
#include <vector>

#include "index/row_storage.hpp"
#include "util/rng.hpp"

namespace mcqa::index {

/// Row accessor over strided caller memory: row i starts at
/// base + i * stride and spans `dim` floats.  Lets PQ train on the m-th
/// sub-vector of each sample row without materializing sub-matrices.
struct StridedRows {
  const float* base = nullptr;
  std::size_t rows = 0;
  std::size_t dim = 0;
  std::size_t stride = 0;  ///< floats between consecutive rows

  const float* row(std::size_t i) const { return base + i * stride; }
};

/// Spherical k-means (k-means++ seeding, Lloyd with inner-product
/// assignment and renormalized means).  Returns min(k, data.rows)
/// centroids, or fewer when seeding exhausts distinct points.
RowStorage kmeans_spherical(const StridedRows& data, std::size_t k,
                            std::size_t iters, util::Rng rng);

/// Euclidean k-means (same seeding, Lloyd with L2 assignment and plain
/// means) — the PQ codebook trainer.
RowStorage kmeans_l2(const StridedRows& data, std::size_t k,
                     std::size_t iters, util::Rng rng);

/// Nearest centroid of `v` by max inner product (ties -> lowest index);
/// the assignment rule of the spherical trainer and the IVF lists.
std::size_t nearest_dot(const RowStorage& centroids, const float* v);

/// Nearest centroid of `v` by min squared L2 (ties -> lowest index);
/// the assignment rule of the PQ encoder.
std::size_t nearest_l2(const RowStorage& centroids, const float* v);

}  // namespace mcqa::index
