// Blocked kernels.  This translation unit is compiled with
// -ffp-contract=off unconditionally (see src/index/CMakeLists.txt): the
// 8-lane blocked loops below are written so that auto-vectorization
// only changes instruction selection, never the summation order or
// rounding, keeping scores bit-identical across build configurations.

#include "index/kernels.hpp"

#include <algorithm>
#include <limits>

#include "index/vector_index.hpp"

namespace mcqa::index {

namespace kernels {

namespace {

/// Dequantization table: fp16 bit pattern -> float, identical to
/// util::fp16_to_float for every one of the 65536 inputs (asserted by
/// the kernel-equivalence tests).  One 256 KB table turns the branchy
/// software conversion into a single load on the FlatIndex scan path.
const float* fp16_table() {
  static const std::vector<float> table = [] {
    std::vector<float> t(1u << 16);
    for (std::uint32_t i = 0; i < (1u << 16); ++i) {
      t[i] = util::fp16_to_float(static_cast<util::fp16_t>(i));
    }
    return t;
  }();
  return table.data();
}

inline float combine(const float* acc) {
  return ((acc[0] + acc[1]) + (acc[2] + acc[3])) +
         ((acc[4] + acc[5]) + (acc[6] + acc[7]));
}

}  // namespace

float dot(const float* a, const float* b, std::size_t n) {
  float acc[kLanes] = {};
  const std::size_t main = n - n % kLanes;
  std::size_t i = 0;
  for (; i < main; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      acc[l] += a[i + l] * b[i + l];
    }
  }
  for (; i < n; ++i) acc[i - main] += a[i] * b[i];
  return combine(acc);
}

float l2_sq(const float* a, const float* b, std::size_t n) {
  float acc[kLanes] = {};
  const std::size_t main = n - n % kLanes;
  std::size_t i = 0;
  for (; i < main; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      const float d = a[i + l] - b[i + l];
      acc[l] += d * d;
    }
  }
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    acc[i - main] += d * d;
  }
  return combine(acc);
}

float dot_fp16(const util::fp16_t* a, const float* b, std::size_t n) {
  const float* table = fp16_table();
  float acc[kLanes] = {};
  const std::size_t main = n - n % kLanes;
  std::size_t i = 0;
  for (; i < main; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      acc[l] += table[a[i + l]] * b[i + l];
    }
  }
  for (; i < n; ++i) acc[i - main] += table[a[i]] * b[i];
  return combine(acc);
}

float dot_u8(const std::uint8_t* codes, const float* w, std::size_t n) {
  float acc[kLanes] = {};
  const std::size_t main = n - n % kLanes;
  std::size_t i = 0;
  for (; i < main; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      acc[l] += static_cast<float>(codes[i + l]) * w[i + l];
    }
  }
  for (; i < n; ++i) acc[i - main] += static_cast<float>(codes[i]) * w[i];
  return combine(acc);
}

float pq_lookup(const std::uint8_t* codes, const float* tables,
                std::size_t m, std::size_t ksub) {
  float acc[kLanes] = {};
  const std::size_t main = m - m % kLanes;
  std::size_t j = 0;
  for (; j < main; j += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      acc[l] += tables[(j + l) * ksub + codes[j + l]];
    }
  }
  for (; j < m; ++j) acc[j - main] += tables[j * ksub + codes[j]];
  return combine(acc);
}

}  // namespace kernels

// --- TopK --------------------------------------------------------------------

namespace {

/// Ranking order of the indexes: higher score first, ties by row id.
/// Used as the heap "less" so the WORST kept result sits on top.
inline bool better(const SearchResult& a, const SearchResult& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.row < b.row;
}

}  // namespace

void TopK::reset(std::size_t k) {
  k_ = k;
  heap_.clear();
}

float TopK::threshold() const {
  return heap_.empty() ? -std::numeric_limits<float>::infinity()
                       : heap_.front().score;
}

void TopK::push(std::size_t row, float score) {
  if (k_ == 0) return;
  const SearchResult cand{row, score};
  if (heap_.size() < k_) {
    heap_.push_back(cand);
    std::push_heap(heap_.begin(), heap_.end(), better);
    return;
  }
  if (!better(cand, heap_.front())) return;
  std::pop_heap(heap_.begin(), heap_.end(), better);
  heap_.back() = cand;
  std::push_heap(heap_.begin(), heap_.end(), better);
}

std::vector<SearchResult> TopK::take_sorted() {
  std::sort_heap(heap_.begin(), heap_.end(), better);
  // sort_heap leaves ascending order w.r.t. `better`, i.e. best first.
  return std::move(heap_);
}

}  // namespace mcqa::index

// --- embed-layer similarity shims -------------------------------------------
//
// embed::dot / embed::l2_sq are declared in embed/embedder.hpp but
// defined here so there is exactly one similarity implementation in the
// codebase: the blocked fixed-lane-order kernels above.  (The embed
// library cannot host them without inverting the embed <- index
// dependency.)  Callers on mismatched lengths keep the historical
// behaviour of comparing the common prefix.

namespace mcqa::embed {

float dot(const Vector& a, const Vector& b) {
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  return index::kernels::dot(a.data(), b.data(), n);
}

float l2_sq(const Vector& a, const Vector& b) {
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  return index::kernels::l2_sq(a.data(), b.data(), n);
}

}  // namespace mcqa::embed
