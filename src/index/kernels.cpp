// Kernel dispatch layer.  The loop bodies live in kernels_impl.inc and
// are compiled twice — kernels_scalar.cpp (baseline flags) and
// kernels_avx2.cpp (-mavx2) — both with -ffp-contract=off, so the two
// tables are bit-identical and dispatch is purely a throughput choice.
// This TU resolves which table the public free functions forward to:
// MCQA_KERNEL_ISA=scalar|avx2 if set (unusable or unknown values fail
// soft to auto), otherwise the best table cpuid supports.

#include "index/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>

#include "index/kernels_detail.hpp"
#include "index/vector_index.hpp"

namespace mcqa::index {

namespace kernels {

const float* detail::fp16_table() {
  // One 256 KB table shared by both ISA tables: fp16 bit pattern ->
  // float, identical to util::fp16_to_float for every one of the 65536
  // inputs (asserted by the kernel-equivalence tests).  Turns the
  // branchy software conversion into a single load on the scan paths.
  static const std::vector<float> table = [] {
    std::vector<float> t(1u << 16);
    for (std::uint32_t i = 0; i < (1u << 16); ++i) {
      t[i] = util::fp16_to_float(static_cast<util::fp16_t>(i));
    }
    return t;
  }();
  return table.data();
}

bool cpu_supports_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

const KernelOps* ops_for(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return &detail::scalar_ops();
    case KernelIsa::kAvx2: {
      const KernelOps* table = detail::avx2_ops();
      return (table != nullptr && cpu_supports_avx2()) ? table : nullptr;
    }
  }
  return nullptr;
}

KernelIsa resolve_isa(const char* override_name, bool avx2_usable) {
  if (override_name != nullptr) {
    const std::string_view v(override_name);
    if (v == "scalar") return KernelIsa::kScalar;
    if (v == "avx2") {
      return avx2_usable ? KernelIsa::kAvx2 : KernelIsa::kScalar;
    }
    // Unknown names fall through to auto detection (fail soft: results
    // are bit-identical either way, only throughput differs).
  }
  return avx2_usable ? KernelIsa::kAvx2 : KernelIsa::kScalar;
}

namespace {

/// The active table.  Starts unresolved; the first kernel call runs
/// the env + cpuid resolution.  A racing first call resolves to the
/// same pointer, so the store is idempotent.
std::atomic<const KernelOps*> g_active{nullptr};

}  // namespace

const KernelOps& detail::active_ops() {
  const KernelOps* table = g_active.load(std::memory_order_acquire);
  if (table != nullptr) return *table;
  const KernelIsa isa = resolve_isa(std::getenv("MCQA_KERNEL_ISA"),
                                    ops_for(KernelIsa::kAvx2) != nullptr);
  table = ops_for(isa);
  g_active.store(table, std::memory_order_release);
  return *table;
}

KernelIsa dispatched_isa() {
  return &detail::active_ops() == detail::avx2_ops() ? KernelIsa::kAvx2
                                                     : KernelIsa::kScalar;
}

std::string_view isa_name(KernelIsa isa) {
  return isa == KernelIsa::kAvx2 ? "avx2" : "scalar";
}

bool set_dispatch_for_testing(KernelIsa isa) {
  const KernelOps* table = ops_for(isa);
  if (table == nullptr) return false;
  g_active.store(table, std::memory_order_release);
  return true;
}

// --- public entry points (forward through the active table) -----------------

float dot(const float* a, const float* b, std::size_t n) {
  return detail::active_ops().dot(a, b, n);
}

float l2_sq(const float* a, const float* b, std::size_t n) {
  return detail::active_ops().l2_sq(a, b, n);
}

float dot_fp16(const util::fp16_t* a, const float* b, std::size_t n) {
  return detail::active_ops().dot_fp16(a, b, n);
}

float dot_u8(const std::uint8_t* codes, const float* w, std::size_t n) {
  return detail::active_ops().dot_u8(codes, w, n);
}

float pq_lookup(const std::uint8_t* codes, const float* tables,
                std::size_t m, std::size_t ksub) {
  return detail::active_ops().pq_lookup(codes, tables, m, ksub);
}

void dot_tile(const float* row, const float* const* qs, std::size_t qn,
              std::size_t n, float* out) {
  detail::active_ops().dot_tile(row, qs, qn, n, out);
}

void dot_fp16_tile(const util::fp16_t* row, const float* const* qs,
                   std::size_t qn, std::size_t n, float* out) {
  detail::active_ops().dot_fp16_tile(row, qs, qn, n, out);
}

void dot_u8_tile(const std::uint8_t* codes, const float* const* ws,
                 std::size_t qn, std::size_t n, float* out) {
  detail::active_ops().dot_u8_tile(codes, ws, qn, n, out);
}

void pq_lookup_tile(const std::uint8_t* codes, const float* const* tables,
                    std::size_t qn, std::size_t m, std::size_t ksub,
                    float* out) {
  detail::active_ops().pq_lookup_tile(codes, tables, qn, m, ksub, out);
}

}  // namespace kernels

// --- TopK --------------------------------------------------------------------

namespace {

/// Ranking order of the indexes: higher score first, ties by row id.
/// Used as the heap "less" so the WORST kept result sits on top.
inline bool better(const SearchResult& a, const SearchResult& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.row < b.row;
}

}  // namespace

void TopK::reset(std::size_t k) {
  k_ = k;
  heap_.clear();
}

float TopK::threshold() const {
  return heap_.empty() ? -std::numeric_limits<float>::infinity()
                       : heap_.front().score;
}

void TopK::push(std::size_t row, float score) {
  if (k_ == 0) return;
  const SearchResult cand{row, score};
  if (heap_.size() < k_) {
    heap_.push_back(cand);
    std::push_heap(heap_.begin(), heap_.end(), better);
    return;
  }
  if (!better(cand, heap_.front())) return;
  std::pop_heap(heap_.begin(), heap_.end(), better);
  heap_.back() = cand;
  std::push_heap(heap_.begin(), heap_.end(), better);
}

std::vector<SearchResult> TopK::take_sorted() {
  std::sort_heap(heap_.begin(), heap_.end(), better);
  // sort_heap leaves ascending order w.r.t. `better`, i.e. best first.
  return std::move(heap_);
}

}  // namespace mcqa::index

// --- embed-layer similarity shims -------------------------------------------
//
// embed::dot / embed::l2_sq are declared in embed/embedder.hpp but
// defined here so there is exactly one similarity implementation in the
// codebase: the blocked fixed-lane-order kernels above.  (The embed
// library cannot host them without inverting the embed <- index
// dependency.)  Callers on mismatched lengths keep the historical
// behaviour of comparing the common prefix.

namespace mcqa::embed {

float dot(const Vector& a, const Vector& b) {
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  return index::kernels::dot(a.data(), b.data(), n);
}

float l2_sq(const Vector& a, const Vector& b) {
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  return index::kernels::l2_sq(a.data(), b.data(), n);
}

}  // namespace mcqa::embed
