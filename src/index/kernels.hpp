#pragma once
// Blocked similarity kernels + bounded top-k selection for the vector
// indexes (the FAISS-equivalent hot path).
//
// Determinism contract (see DESIGN.md "Similarity kernels"): every
// kernel accumulates into kLanes == 8 partial sums — lane l takes
// elements l, l+8, l+16, ... (the tail continues the same lane
// rotation) — and combines them in one fixed tree:
//
//   ((l0+l1) + (l2+l3)) + ((l4+l5) + (l6+l7))
//
// That blocked order is the ONLY summation order on every build
// configuration.  kernels.cpp is always compiled with -ffp-contract=off
// so enabling vector ISA flags (-DMCQA_KERNEL_SIMD=ON) merely lets the
// compiler map the 8 independent lanes onto SIMD registers; it cannot
// fuse multiply-adds or reassociate, so scores stay bit-identical
// across -march flags, thread counts and runs.

#include <cstddef>
#include <vector>

#include "util/fp16.hpp"

namespace mcqa::index {

struct SearchResult;  // vector_index.hpp

namespace kernels {

/// Lane count of the blocked accumulation (fixed by the determinism
/// contract; chosen to fill one AVX2 register of floats).
inline constexpr std::size_t kLanes = 8;

/// Blocked inner product over two float rows.
float dot(const float* a, const float* b, std::size_t n);

/// Blocked squared Euclidean distance over two float rows.
float l2_sq(const float* a, const float* b, std::size_t n);

/// Fused fp16-dequantize + blocked inner product: `a` is an FP16-at-rest
/// row, widened through a 64K-entry table that reproduces
/// util::fp16_to_float bit-for-bit.
float dot_fp16(const util::fp16_t* a, const float* b, std::size_t n);

/// Fused uint8-decode + blocked inner product for the SQ8 tier:
/// sum_i float(codes[i]) * w[i] in the fixed 8-lane order.  Callers
/// fold the per-dimension scale into `w` (w[d] = scale[d] * q[d]) and
/// add the query-constant bias dot(min, q) afterwards, so the scan
/// itself is one widening multiply-add per element.
float dot_u8(const std::uint8_t* codes, const float* w, std::size_t n);

/// PQ asymmetric-distance lookup: sum_{j<m} tables[j * ksub + codes[j]]
/// in the fixed 8-lane order.  `tables` is the per-query score table
/// laid out [subquantizer][centroid].
float pq_lookup(const std::uint8_t* codes, const float* tables,
                std::size_t m, std::size_t ksub);

}  // namespace kernels

/// Bounded-heap top-k selector: keeps the best k results by
/// (score descending, row ascending) without materializing or sorting
/// the full candidate set.  Replaces sort-everything-then-trim on the
/// search hot paths; `take_sorted()` yields exactly the order the old
/// full sort produced.
class TopK {
 public:
  explicit TopK(std::size_t k) : k_(k) {}

  /// Drop accumulated results and change capacity (scratch reuse).
  void reset(std::size_t k);

  void push(std::size_t row, float score);

  std::size_t size() const { return heap_.size(); }

  /// Worst kept score (only meaningful once size() == k).
  float threshold() const;

  /// True when a candidate with `score` cannot enter the heap.
  bool full() const { return heap_.size() >= k_; }

  /// Results in descending score order (ties by ascending row).
  /// Leaves the selector empty.
  std::vector<SearchResult> take_sorted();

 private:
  std::size_t k_;
  std::vector<SearchResult> heap_;  ///< worst-kept-on-top heap
};

}  // namespace mcqa::index
