#pragma once
// Blocked similarity kernels + bounded top-k selection for the vector
// indexes (the FAISS-equivalent hot path).
//
// Determinism contract (see DESIGN.md "Similarity kernels"): every
// kernel accumulates into kLanes == 8 partial sums — lane l takes
// elements l, l+8, l+16, ... (the tail continues the same lane
// rotation) — and combines them in one fixed tree:
//
//   ((l0+l1) + (l2+l3)) + ((l4+l5) + (l6+l7))
//
// That blocked order is the ONLY summation order on every build
// configuration.  The kernel translation units are always compiled
// with -ffp-contract=off, so vector ISA flags merely let the compiler
// map the 8 independent lanes onto SIMD registers; they cannot fuse
// multiply-adds or reassociate, and scores stay bit-identical across
// ISAs, thread counts and runs.
//
// Two layers sit on that contract:
//
//  * Tiled multi-query variants (`*_tile`): score one row against a
//    block of up to kTileQ queries in a single pass, loading /
//    fp16-widening / SQ8-decoding / ADC-indexing the row ONCE per tile
//    instead of once per query.  Each query's accumulator sees exactly
//    the per-element operation sequence of the single-query kernel, so
//    tiling can change throughput but never a score bit (property-
//    tested in tiled_scan_test).
//
//  * Runtime ISA dispatch: the same loop bodies are compiled twice —
//    a baseline scalar TU and an AVX2 TU (-mavx2) — and a function-
//    pointer table (KernelOps) picks one at startup via cpuid.
//    MCQA_KERNEL_ISA=scalar|avx2 overrides the choice for testing;
//    unavailable requests fail soft to scalar.  Because both TUs share
//    one -ffp-contract=off source, every entry point is bit-identical
//    across the two tables.

#include <cstddef>
#include <string_view>
#include <vector>

#include "util/fp16.hpp"

namespace mcqa::index {

struct SearchResult;  // vector_index.hpp

namespace kernels {

/// Lane count of the blocked accumulation (fixed by the determinism
/// contract; chosen to fill one AVX2 register of floats).
inline constexpr std::size_t kLanes = 8;

/// Maximum query-tile width of the `*_tile` kernels.  Callers pass
/// qn <= kTileQ per call; ragged final tiles (qn < kTileQ) are fine.
inline constexpr std::size_t kTileQ = 8;

/// Blocked inner product over two float rows.
float dot(const float* a, const float* b, std::size_t n);

/// Blocked squared Euclidean distance over two float rows.
float l2_sq(const float* a, const float* b, std::size_t n);

/// Fused fp16-dequantize + blocked inner product: `a` is an FP16-at-rest
/// row, widened through a 64K-entry table that reproduces
/// util::fp16_to_float bit-for-bit.
float dot_fp16(const util::fp16_t* a, const float* b, std::size_t n);

/// Fused uint8-decode + blocked inner product for the SQ8 tier:
/// sum_i float(codes[i]) * w[i] in the fixed 8-lane order.  Callers
/// fold the per-dimension scale into `w` (w[d] = scale[d] * q[d]) and
/// add the query-constant bias dot(min, q) afterwards, so the scan
/// itself is one widening multiply-add per element.
float dot_u8(const std::uint8_t* codes, const float* w, std::size_t n);

/// PQ asymmetric-distance lookup: sum_{j<m} tables[j * ksub + codes[j]]
/// in the fixed 8-lane order.  `tables` is the per-query score table
/// laid out [subquantizer][centroid].
float pq_lookup(const std::uint8_t* codes, const float* tables,
                std::size_t m, std::size_t ksub);

// --- tiled multi-query variants ---------------------------------------------
//
// Each scores ONE row against qn (<= kTileQ) queries in a single pass,
// writing out[q] for q in [0, qn).  Guarantee: out[q] is bit-identical
// to the corresponding single-query kernel on (row, query q) — the
// per-query accumulator lanes see the same elements in the same order;
// only the row-side loads/decodes are shared across the tile.

/// out[q] = dot(row, qs[q], n).
void dot_tile(const float* row, const float* const* qs, std::size_t qn,
              std::size_t n, float* out);

/// out[q] = dot_fp16(row, qs[q], n) — the row is table-widened once.
void dot_fp16_tile(const util::fp16_t* row, const float* const* qs,
                   std::size_t qn, std::size_t n, float* out);

/// out[q] = dot_u8(codes, ws[q], n) — the codes are widened once.
void dot_u8_tile(const std::uint8_t* codes, const float* const* ws,
                 std::size_t qn, std::size_t n, float* out);

/// out[q] = pq_lookup(codes, tables[q], m, ksub) — code bytes and table
/// offsets are computed once per tile.
void pq_lookup_tile(const std::uint8_t* codes, const float* const* tables,
                    std::size_t qn, std::size_t m, std::size_t ksub,
                    float* out);

// --- runtime ISA dispatch ---------------------------------------------------

enum class KernelIsa { kScalar, kAvx2 };

/// One resolved kernel table: the free functions above forward through
/// the active one.  Exposed so tests/benches can drive a specific ISA
/// directly (ops_for) and compare tables bit-for-bit.
struct KernelOps {
  float (*dot)(const float*, const float*, std::size_t);
  float (*l2_sq)(const float*, const float*, std::size_t);
  float (*dot_fp16)(const util::fp16_t*, const float*, std::size_t);
  float (*dot_u8)(const std::uint8_t*, const float*, std::size_t);
  float (*pq_lookup)(const std::uint8_t*, const float*, std::size_t,
                     std::size_t);
  void (*dot_tile)(const float*, const float* const*, std::size_t,
                   std::size_t, float*);
  void (*dot_fp16_tile)(const util::fp16_t*, const float* const*,
                        std::size_t, std::size_t, float*);
  void (*dot_u8_tile)(const std::uint8_t*, const float* const*, std::size_t,
                      std::size_t, float*);
  void (*pq_lookup_tile)(const std::uint8_t*, const float* const*,
                         std::size_t, std::size_t, std::size_t, float*);
};

/// Table for `isa`, or nullptr when it is unusable here (compiler had
/// no -mavx2, or the CPU lacks the feature).  kScalar never fails.
const KernelOps* ops_for(KernelIsa isa);

/// The ISA the free functions currently forward to.  Resolved once on
/// first kernel call: MCQA_KERNEL_ISA=scalar|avx2 if set (unusable or
/// unknown values fail soft), else the best cpuid-supported table.
KernelIsa dispatched_isa();

/// "scalar" / "avx2".
std::string_view isa_name(KernelIsa isa);

/// Pure resolution rule (unit-testable): what dispatched_isa() would
/// pick given an MCQA_KERNEL_ISA value (nullptr = unset) and whether
/// the AVX2 table is usable.
KernelIsa resolve_isa(const char* override_name, bool avx2_usable);

/// True when this CPU reports AVX2 support.
bool cpu_supports_avx2();

/// Swap the active table (tests/benches comparing ISAs in-process).
/// Returns false — leaving dispatch unchanged — when `isa` is
/// unusable.  Not safe to call concurrently with running kernels.
bool set_dispatch_for_testing(KernelIsa isa);

}  // namespace kernels

/// Bounded-heap top-k selector: keeps the best k results by
/// (score descending, row ascending) without materializing or sorting
/// the full candidate set.  Replaces sort-everything-then-trim on the
/// search hot paths; `take_sorted()` yields exactly the order the old
/// full sort produced.
///
/// The kept set — and therefore take_sorted() — is a pure function of
/// the (row, score) multiset pushed: the comparator is a total order,
/// so push order cannot change the outcome.  The tiled scan paths rely
/// on this to regroup row visits across a query tile without
/// perturbing any query's results (tested in tiled_scan_test).
class TopK {
 public:
  explicit TopK(std::size_t k) : k_(k) {}

  /// Drop accumulated results and change capacity (scratch reuse).
  void reset(std::size_t k);

  void push(std::size_t row, float score);

  std::size_t size() const { return heap_.size(); }

  /// Worst kept score (only meaningful once size() == k).
  float threshold() const;

  /// True when a candidate with `score` cannot enter the heap.
  bool full() const { return heap_.size() >= k_; }

  /// Results in descending score order (ties by ascending row).
  /// Leaves the selector empty.
  std::vector<SearchResult> take_sorted();

 private:
  std::size_t k_;
  std::vector<SearchResult> heap_;  ///< worst-kept-on-top heap
};

}  // namespace mcqa::index
