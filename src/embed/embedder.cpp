#include "embed/embedder.hpp"

#include <cmath>

#include "parallel/thread_pool.hpp"

namespace mcqa::embed {

std::vector<Vector> Embedder::embed_batch(
    const std::vector<std::string_view>& texts,
    parallel::ThreadPool& pool) const {
  std::vector<Vector> out(texts.size());
  parallel::parallel_for(pool, 0, texts.size(),
                         [&](std::size_t i) { out[i] = embed(texts[i]); });
  return out;
}

std::vector<Vector> Embedder::embed_batch(const std::vector<std::string>& texts,
                                          parallel::ThreadPool& pool) const {
  std::vector<std::string_view> views(texts.begin(), texts.end());
  return embed_batch(views, pool);
}

std::vector<Vector> Embedder::embed_batch(
    const std::vector<std::string_view>& texts) const {
  return embed_batch(texts, parallel::ThreadPool::global());
}

std::vector<Vector> Embedder::embed_batch(
    const std::vector<std::string>& texts) const {
  return embed_batch(texts, parallel::ThreadPool::global());
}

void normalize(Vector& v) {
  double norm_sq = 0.0;
  for (const float x : v) norm_sq += static_cast<double>(x) * x;
  if (norm_sq <= 0.0) return;
  const auto inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
  for (float& x : v) x *= inv;
}

}  // namespace mcqa::embed
