#pragma once
// FP16 embedding storage.
//
// The paper keeps 173,318 x 768-dim PubMedBERT embeddings in FP16
// (747 MB) inside FAISS.  Our store applies the same at-rest
// quantization: vectors are held as binary16 and widened on access.
// Binary save/load lets pipelines checkpoint the embedding stage.

#include <cstdint>
#include <string>
#include <vector>

#include "embed/embedder.hpp"
#include "util/fp16.hpp"

namespace mcqa::embed {

class EmbeddingStore {
 public:
  explicit EmbeddingStore(std::size_t dim) : dim_(dim) {}

  std::size_t dim() const { return dim_; }
  std::size_t size() const { return ids_.size(); }

  /// Append a vector under an external id.  Quantizes to FP16.
  void add(std::string id, const Vector& v);

  const std::string& id(std::size_t row) const { return ids_.at(row); }

  /// Widen row to float (FP16 round-trip applied).
  Vector vector(std::size_t row) const;

  /// Raw FP16 row access for zero-copy consumers.
  const util::fp16_t* raw(std::size_t row) const {
    return data_.data() + row * dim_;
  }

  /// At-rest bytes (the paper's 747 MB figure at full scale).
  std::size_t storage_bytes() const { return data_.size() * sizeof(util::fp16_t); }

  /// Max absolute quantization error across a float round-trip of `v`.
  static float quantization_error(const Vector& v);

  std::string save() const;
  static EmbeddingStore load(std::string_view blob);

 private:
  std::size_t dim_;
  std::vector<std::string> ids_;
  std::vector<util::fp16_t> data_;  ///< row-major, size() * dim_
};

}  // namespace mcqa::embed
