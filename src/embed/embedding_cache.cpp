#include "embed/embedding_cache.hpp"

#include <mutex>

#include "util/hash.hpp"

namespace mcqa::embed {

Vector CachingEmbedder::embed(std::string_view text) const {
  const std::uint64_t key = util::fnv1a64(text);
  {
    std::shared_lock lock(mutex_);
    const auto it = map_.find(key);
    if (it != map_.end() && it->second.text == text) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second.vec;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  Vector v = base_.embed(text);
  {
    std::unique_lock lock(mutex_);
    if ((max_entries_ == 0 || map_.size() < max_entries_) &&
        map_.find(key) == map_.end()) {
      map_.emplace(key, Entry{std::string(text), v});
    }
  }
  return v;
}

EmbeddingCacheStats CachingEmbedder::stats() const {
  EmbeddingCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  std::shared_lock lock(mutex_);
  s.entries = map_.size();
  return s;
}

void CachingEmbedder::clear() {
  std::unique_lock lock(mutex_);
  map_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace mcqa::embed
