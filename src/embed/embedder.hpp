#pragma once
// Text embedding interface.
//
// Stand-in for PubMedBERT (330M parameters in the paper): any
// implementation maps text to a unit-norm float vector whose cosine
// similarity tracks topical relatedness.  Retrieval, semantic chunking
// and the vector indexes are all written against this interface.

#include <string_view>
#include <vector>

namespace mcqa::embed {

using Vector = std::vector<float>;

class Embedder {
 public:
  virtual ~Embedder() = default;

  virtual std::size_t dim() const = 0;

  /// Embed one text span.  Returns an L2-normalized vector of dim().
  /// Must be thread-safe: pipeline stages embed in parallel.
  virtual Vector embed(std::string_view text) const = 0;
};

/// Dot product (== cosine for unit vectors).
float dot(const Vector& a, const Vector& b);

/// Squared Euclidean distance.
float l2_sq(const Vector& a, const Vector& b);

/// In-place L2 normalization; zero vectors are left untouched.
void normalize(Vector& v);

}  // namespace mcqa::embed
