#pragma once
// Text embedding interface.
//
// Stand-in for PubMedBERT (330M parameters in the paper): any
// implementation maps text to a unit-norm float vector whose cosine
// similarity tracks topical relatedness.  Retrieval, semantic chunking
// and the vector indexes are all written against this interface.

#include <string>
#include <string_view>
#include <vector>

namespace mcqa::parallel {
class ThreadPool;
}

namespace mcqa::embed {

using Vector = std::vector<float>;

class Embedder {
 public:
  virtual ~Embedder() = default;

  virtual std::size_t dim() const = 0;

  /// Embed one text span.  Returns an L2-normalized vector of dim().
  /// Must be thread-safe: pipeline stages embed in parallel.
  virtual Vector embed(std::string_view text) const = 0;

  /// Embed a batch across `pool` workers.  Result i is identical to
  /// embed(texts[i]) at any thread count (embedding is pure, so the
  /// fan-out only changes when work runs, never what it computes).
  std::vector<Vector> embed_batch(const std::vector<std::string_view>& texts,
                                  parallel::ThreadPool& pool) const;
  std::vector<Vector> embed_batch(const std::vector<std::string>& texts,
                                  parallel::ThreadPool& pool) const;

  /// Batch embedding on the process-wide default pool.
  std::vector<Vector> embed_batch(
      const std::vector<std::string_view>& texts) const;
  std::vector<Vector> embed_batch(const std::vector<std::string>& texts) const;
};

/// Dot product (== cosine for unit vectors).  Defined in the similarity
/// kernel TU (index/kernels.cpp) — one blocked implementation serves
/// the indexes, the chunker and exact search alike.
float dot(const Vector& a, const Vector& b);

/// Squared Euclidean distance.  Defined in the kernel TU as well.
float l2_sq(const Vector& a, const Vector& b);

/// In-place L2 normalization; zero vectors are left untouched.
void normalize(Vector& v);

}  // namespace mcqa::embed
