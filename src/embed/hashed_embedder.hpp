#pragma once
// Feature-hashing embedder.
//
// Deterministic replacement for a transformer encoder: word unigrams,
// word bigrams and character trigrams are hashed into a d-dimensional
// signed feature space (Weinberger et al., 2009), sublinearly weighted
// and L2-normalized.  On synthetic scientific text whose semantics are
// carried by domain terms, cosine over these vectors reproduces the
// retrieval behaviour the paper gets from PubMedBERT embeddings:
// fact-bearing chunks score high against questions probing those facts.

#include <string>

#include "embed/embedder.hpp"

namespace mcqa::embed {

struct HashedEmbedderConfig {
  std::size_t dim = 256;
  bool word_unigrams = true;
  bool word_bigrams = true;
  bool char_trigrams = true;
  /// Weight multipliers per feature family.
  double unigram_weight = 1.0;
  double bigram_weight = 1.5;   // bigrams are more discriminative
  double trigram_weight = 0.4;  // char features add robustness to noise
  std::uint64_t seed = 0xb10cfee1u;
};

class HashedNGramEmbedder final : public Embedder {
 public:
  explicit HashedNGramEmbedder(HashedEmbedderConfig config = {});

  std::size_t dim() const override { return config_.dim; }
  Vector embed(std::string_view text) const override;

  const HashedEmbedderConfig& config() const { return config_; }

 private:
  void add_feature(Vector& v, std::string_view feature, double weight) const;

  HashedEmbedderConfig config_;
};

/// The role PubMedBERT plays in the paper: the corpus/chunk encoder.
/// 256-dim hashed embedder with the default feature mix.
HashedNGramEmbedder make_biomed_encoder();

}  // namespace mcqa::embed
