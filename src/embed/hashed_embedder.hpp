#pragma once
// Feature-hashing embedder.
//
// Deterministic replacement for a transformer encoder: word unigrams,
// word bigrams and character trigrams are hashed into a d-dimensional
// signed feature space (Weinberger et al., 2009), sublinearly weighted
// and L2-normalized.  On synthetic scientific text whose semantics are
// carried by domain terms, cosine over these vectors reproduces the
// retrieval behaviour the paper gets from PubMedBERT embeddings:
// fact-bearing chunks score high against questions probing those facts.
//
// embed() streams every feature through an incremental FNV-1a hasher
// over string views — no per-feature string is ever materialized, and
// the per-thread normalize buffers are reused across calls, so the hot
// path performs zero allocations beyond the output vector once warm.
// embed_reference() keeps the original string-materializing
// formulation; the two are bit-identical (asserted by property tests),
// because FNV-1a folds bytes one at a time: hashing w1, ' ', w2
// piecewise equals hashing the "w1 w2" string.

#include <array>
#include <cstdint>
#include <string>

#include "embed/embedder.hpp"

namespace mcqa::embed {

struct HashedEmbedderConfig {
  std::size_t dim = 256;
  bool word_unigrams = true;
  bool word_bigrams = true;
  bool char_trigrams = true;
  /// Weight multipliers per feature family.
  double unigram_weight = 1.0;
  double bigram_weight = 1.5;   // bigrams are more discriminative
  double trigram_weight = 0.4;  // char features add robustness to noise
  std::uint64_t seed = 0xb10cfee1u;
};

class HashedNGramEmbedder final : public Embedder {
 public:
  explicit HashedNGramEmbedder(HashedEmbedderConfig config = {});

  std::size_t dim() const override { return config_.dim; }
  Vector embed(std::string_view text) const override;

  /// The original string-materializing implementation, kept as the
  /// oracle for the streaming kernel: allocates per n-gram, returns the
  /// same bits.  Used by equivalence tests and the embed ablation bench.
  Vector embed_reference(std::string_view text) const;

  const HashedEmbedderConfig& config() const { return config_; }

 private:
  void add_feature(Vector& v, std::string_view feature, double weight) const;
  void add_hashed(Vector& v, std::uint64_t h, double weight) const;

  HashedEmbedderConfig config_;
  /// dim-1 when dim is a power of two (h & mask_ == h % dim), else 0.
  std::size_t mask_;
  /// FNV-1a state after feeding byte b from the seed — the first step of
  /// every feature hash, precomputed per byte value.
  std::array<std::uint64_t, 256> first_state_;
};

/// The role PubMedBERT plays in the paper: the corpus/chunk encoder.
/// 256-dim hashed embedder with the default feature mix.
HashedNGramEmbedder make_biomed_encoder();

}  // namespace mcqa::embed
