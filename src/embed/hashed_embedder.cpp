#include "embed/hashed_embedder.hpp"

#include <vector>

#include "text/normalize.hpp"
#include "text/tokenizer.hpp"
#include "util/hash.hpp"

namespace mcqa::embed {

namespace {

/// Fold a byte sequence into an FNV-1a state (same math as util::Fnv1a,
/// kept local so the hot loops inline).
inline std::uint64_t fnv_extend(std::uint64_t h, std::string_view s) {
  for (const char c : s) {
    h = (h ^ static_cast<std::uint8_t>(c)) * util::kFnvPrime64;
  }
  return h;
}

// --- reference (strings) formulation ----------------------------------------
//
// The original multi-pass, string-materializing implementation, kept
// verbatim as the oracle and throughput baseline for the streaming
// kernel: per-call locale-aware <cctype> normalization in three passes,
// materialized n-gram strings, and a 64-bit divide per feature.  It must
// produce the same bits as the streaming path (property-tested); only
// the work it performs per byte differs.

std::string reference_normalize_ws(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool in_space = true;  // leading whitespace is dropped
  for (const char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!in_space) out += ' ';
      in_space = true;
    } else {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::string reference_normalize_for_matching(std::string_view s) {
  const std::string lowered = reference_normalize_ws(s);
  std::string out;
  out.reserve(lowered.size());
  for (std::size_t i = 0; i < lowered.size(); ++i) {
    const char c = lowered[i];
    if (std::isalnum(static_cast<unsigned char>(c)) || c == ' ') {
      out += c;
    } else if ((c == '-' || c == '.') && i > 0 && i + 1 < lowered.size() &&
               std::isalnum(static_cast<unsigned char>(lowered[i - 1])) &&
               std::isalnum(static_cast<unsigned char>(lowered[i + 1]))) {
      out += c;  // intra-word: cobalt-60, 2.5
    }
    // other punctuation dropped
  }
  // Collapse possible double spaces introduced by dropped punctuation.
  std::string collapsed;
  collapsed.reserve(out.size());
  bool in_space = true;
  for (const char c : out) {
    if (c == ' ') {
      if (!in_space) collapsed += ' ';
      in_space = true;
    } else {
      collapsed += c;
      in_space = false;
    }
  }
  while (!collapsed.empty() && collapsed.back() == ' ') collapsed.pop_back();
  return collapsed;
}

}  // namespace

HashedNGramEmbedder::HashedNGramEmbedder(HashedEmbedderConfig config)
    : config_(config),
      mask_(config_.dim != 0 && (config_.dim & (config_.dim - 1)) == 0
                ? config_.dim - 1
                : 0) {
  for (std::size_t b = 0; b < first_state_.size(); ++b) {
    first_state_[b] = (config_.seed ^ b) * util::kFnvPrime64;
  }
}

void HashedNGramEmbedder::add_hashed(Vector& v, std::uint64_t h,
                                     double weight) const {
  // h & (dim-1) == h % dim for power-of-two dims; the AND replaces a
  // 64-bit divide on the per-feature hot path.
  const std::size_t bucket = mask_ != 0 ? (h & mask_) : (h % config_.dim);
  // Sign bit from an independent hash region removes the bias a single
  // hash would introduce (standard signed feature hashing).
  const float sign = ((h >> 61) & 1) != 0 ? 1.0f : -1.0f;
  v[bucket] += sign * static_cast<float>(weight);
}

void HashedNGramEmbedder::add_feature(Vector& v, std::string_view feature,
                                      double weight) const {
  // Reference-path bucket: a divide per feature, exactly as the original
  // formulation computed it.  h % dim == h & mask_ for power-of-two
  // dims, so the two paths always agree on the bucket.
  const std::uint64_t h = util::fnv1a64(feature, config_.seed);
  const std::size_t bucket = h % config_.dim;
  const float sign = ((h >> 61) & 1) != 0 ? 1.0f : -1.0f;
  v[bucket] += sign * static_cast<float>(weight);
}

Vector HashedNGramEmbedder::embed(std::string_view text) const {
  Vector v(config_.dim, 0.0f);

  // Per-thread reusable state: the normalize buffer plus the word-view
  // list.  embed() is const and thread-safe by contract; thread_local
  // keeps the buffers private to each pipeline worker, so once they hit
  // steady-state capacity the whole call allocates nothing but `v`.
  thread_local std::string norm;
  thread_local std::vector<std::string_view> words;
  thread_local std::vector<std::uint64_t> word_states;

  text::normalize_for_matching_into(text, norm);
  if (norm.empty()) return v;

  // Accumulation order is part of the bit-identity contract with
  // embed_reference(): all unigrams, then all bigrams, then all char
  // trigrams, each in left-to-right text order.  Every feature hash
  // starts from the precomputed first-byte state (words are never empty,
  // trigrams have three bytes), saving one xor-multiply per feature.
  if (config_.word_unigrams || config_.word_bigrams) {
    words.clear();
    word_states.clear();
    for (const std::string_view w : text::WordViews(norm)) {
      words.push_back(w);
      // The FNV state after a whole word doubles as the word's unigram
      // hash and as the bigram prefix state, so each word's bytes are
      // folded from the seed exactly once.
      word_states.push_back(fnv_extend(
          first_state_[static_cast<std::uint8_t>(w[0])], w.substr(1)));
    }
    if (config_.word_unigrams) {
      for (const std::uint64_t h : word_states) {
        add_hashed(v, h, config_.unigram_weight);
      }
    }
    if (config_.word_bigrams && words.size() >= 2) {
      for (std::size_t i = 0; i + 1 < words.size(); ++i) {
        // Piecewise FNV over (w1, ' ', w2) == one-shot FNV of "w1 w2".
        std::uint64_t h =
            (word_states[i] ^ static_cast<std::uint8_t>(' ')) *
            util::kFnvPrime64;
        h = fnv_extend(h, words[i + 1]);
        add_hashed(v, h, config_.bigram_weight);
      }
    }
  }
  if (config_.char_trigrams && norm.size() >= 3) {
    const auto* p = reinterpret_cast<const unsigned char*>(norm.data());
    for (std::size_t i = 0; i + 3 <= norm.size(); ++i) {
      std::uint64_t h = first_state_[p[i]];
      h = (h ^ p[i + 1]) * util::kFnvPrime64;
      h = (h ^ p[i + 2]) * util::kFnvPrime64;
      add_hashed(v, h, config_.trigram_weight);
    }
  }
  normalize(v);
  return v;
}

Vector HashedNGramEmbedder::embed_reference(std::string_view text) const {
  Vector v(config_.dim, 0.0f);
  const std::string norm = reference_normalize_for_matching(text);
  if (norm.empty()) return v;

  if (config_.word_unigrams || config_.word_bigrams) {
    const auto unigrams = text::word_ngrams(norm, 1);
    if (config_.word_unigrams) {
      for (const auto& g : unigrams) {
        // Sublinear weighting: repeated terms shouldn't dominate.
        add_feature(v, g, config_.unigram_weight);
      }
    }
    if (config_.word_bigrams) {
      for (const auto& g : text::word_ngrams(norm, 2)) {
        add_feature(v, g, config_.bigram_weight);
      }
    }
  }
  if (config_.char_trigrams) {
    for (std::size_t i = 0; i + 3 <= norm.size(); ++i) {
      add_feature(v, norm.substr(i, 3), config_.trigram_weight);
    }
  }
  normalize(v);
  return v;
}

HashedNGramEmbedder make_biomed_encoder() {
  return HashedNGramEmbedder(HashedEmbedderConfig{});
}

}  // namespace mcqa::embed
