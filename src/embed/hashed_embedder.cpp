#include "embed/hashed_embedder.hpp"

#include <cmath>

#include "text/normalize.hpp"
#include "text/tokenizer.hpp"
#include "util/hash.hpp"

namespace mcqa::embed {

float dot(const Vector& a, const Vector& b) {
  float s = 0.0f;
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

float l2_sq(const Vector& a, const Vector& b) {
  float s = 0.0f;
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n; ++i) {
    const float d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

void normalize(Vector& v) {
  double norm_sq = 0.0;
  for (const float x : v) norm_sq += static_cast<double>(x) * x;
  if (norm_sq <= 0.0) return;
  const auto inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
  for (float& x : v) x *= inv;
}

HashedNGramEmbedder::HashedNGramEmbedder(HashedEmbedderConfig config)
    : config_(config) {}

void HashedNGramEmbedder::add_feature(Vector& v, std::string_view feature,
                                      double weight) const {
  const std::uint64_t h = util::fnv1a64(feature, config_.seed);
  const std::size_t bucket = h % config_.dim;
  // Sign bit from an independent hash region removes the bias a single
  // hash would introduce (standard signed feature hashing).
  const float sign = ((h >> 61) & 1) != 0 ? 1.0f : -1.0f;
  v[bucket] += sign * static_cast<float>(weight);
}

Vector HashedNGramEmbedder::embed(std::string_view text) const {
  Vector v(config_.dim, 0.0f);
  const std::string norm = text::normalize_for_matching(text);
  if (norm.empty()) return v;

  if (config_.word_unigrams || config_.word_bigrams) {
    const auto unigrams = text::word_ngrams(norm, 1);
    if (config_.word_unigrams) {
      for (const auto& g : unigrams) {
        // Sublinear weighting: repeated terms shouldn't dominate.
        add_feature(v, g, config_.unigram_weight);
      }
    }
    if (config_.word_bigrams) {
      for (const auto& g : text::word_ngrams(norm, 2)) {
        add_feature(v, g, config_.bigram_weight);
      }
    }
  }
  if (config_.char_trigrams) {
    for (std::size_t i = 0; i + 3 <= norm.size(); ++i) {
      add_feature(v, norm.substr(i, 3), config_.trigram_weight);
    }
  }
  normalize(v);
  return v;
}

HashedNGramEmbedder make_biomed_encoder() {
  return HashedNGramEmbedder(HashedEmbedderConfig{});
}

}  // namespace mcqa::embed
