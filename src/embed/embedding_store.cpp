#include "embed/embedding_store.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace mcqa::embed {

void EmbeddingStore::add(std::string id, const Vector& v) {
  if (v.size() != dim_) {
    throw std::invalid_argument("EmbeddingStore::add: dim mismatch");
  }
  ids_.push_back(std::move(id));
  data_.reserve(data_.size() + dim_);
  for (const float x : v) data_.push_back(util::float_to_fp16(x));
}

Vector EmbeddingStore::vector(std::size_t row) const {
  if (row >= ids_.size()) {
    throw std::out_of_range("EmbeddingStore::vector: bad row");
  }
  Vector out(dim_);
  const util::fp16_t* src = raw(row);
  for (std::size_t i = 0; i < dim_; ++i) out[i] = util::fp16_to_float(src[i]);
  return out;
}

float EmbeddingStore::quantization_error(const Vector& v) {
  float worst = 0.0f;
  for (const float x : v) {
    const float back = util::fp16_to_float(util::float_to_fp16(x));
    worst = std::max(worst, std::fabs(back - x));
  }
  return worst;
}

std::string EmbeddingStore::save() const {
  std::string out = "embst1\n";
  out += std::to_string(dim_) + " " + std::to_string(ids_.size()) + "\n";
  for (const auto& id : ids_) out += id + "\n";
  const std::size_t payload = data_.size() * sizeof(util::fp16_t);
  const std::size_t header = out.size();
  out.resize(header + payload);
  std::memcpy(out.data() + header, data_.data(), payload);
  return out;
}

EmbeddingStore EmbeddingStore::load(std::string_view blob) {
  const auto fail = [](const char* why) -> EmbeddingStore {
    throw std::runtime_error(std::string("EmbeddingStore::load: ") + why);
  };
  std::size_t pos = blob.find('\n');
  if (pos == std::string_view::npos || blob.substr(0, pos) != "embst1") {
    return fail("bad magic");
  }
  std::size_t line_start = pos + 1;
  pos = blob.find('\n', line_start);
  if (pos == std::string_view::npos) return fail("truncated header");
  const std::string counts(blob.substr(line_start, pos - line_start));
  std::size_t dim = 0;
  std::size_t n = 0;
  if (std::sscanf(counts.c_str(), "%zu %zu", &dim, &n) != 2 || dim == 0) {
    return fail("bad counts");
  }
  EmbeddingStore store(dim);
  line_start = pos + 1;
  for (std::size_t i = 0; i < n; ++i) {
    pos = blob.find('\n', line_start);
    if (pos == std::string_view::npos) return fail("truncated ids");
    store.ids_.emplace_back(blob.substr(line_start, pos - line_start));
    line_start = pos + 1;
  }
  const std::size_t payload = n * dim * sizeof(util::fp16_t);
  if (blob.size() - line_start < payload) return fail("truncated payload");
  store.data_.resize(n * dim);
  std::memcpy(store.data_.data(), blob.data() + line_start, payload);
  return store;
}

}  // namespace mcqa::embed
