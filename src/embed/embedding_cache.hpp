#pragma once
// Content-hash embedding cache.
//
// The build pipeline embeds the same byte strings repeatedly: the
// semantic chunker's final window text is re-embedded when the chunk
// store is built, duplicate sentences recur across synthetic documents,
// and the evaluation harness issues one retrieval query per
// (question x condition x model) — the same stem text dozens of times.
// CachingEmbedder wraps any Embedder and memoizes vectors keyed by the
// FNV-1a content hash of the text.
//
// Determinism: a hit returns a vector computed by the wrapped embedder
// for the *same bytes* (entries store their text; a 64-bit hash
// collision falls back to recomputing without caching), so results are
// identical to the uncached embedder at every thread count and for any
// hit/miss interleaving.  The cache only changes *when* a vector is
// computed, never *what* is returned.

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "embed/embedder.hpp"

namespace mcqa::embed {

struct EmbeddingCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t entries = 0;
  double hit_rate() const {
    const std::size_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class CachingEmbedder final : public Embedder {
 public:
  /// `max_entries` bounds memory: once full, new texts are computed but
  /// no longer inserted (a deterministic, order-independent policy for
  /// results — only timing changes).  0 means unbounded.
  explicit CachingEmbedder(const Embedder& base, std::size_t max_entries = 0)
      : base_(base), max_entries_(max_entries) {}

  std::size_t dim() const override { return base_.dim(); }
  Vector embed(std::string_view text) const override;

  const Embedder& base() const { return base_; }
  EmbeddingCacheStats stats() const;
  void clear();

 private:
  struct Entry {
    std::string text;  ///< collision guard: hit only on byte equality
    Vector vec;
  };

  const Embedder& base_;
  std::size_t max_entries_;
  mutable std::shared_mutex mutex_;
  mutable std::unordered_map<std::uint64_t, Entry> map_;
  mutable std::atomic<std::size_t> hits_{0};
  mutable std::atomic<std::size_t> misses_{0};
};

}  // namespace mcqa::embed
