#include "serve/engine.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <future>
#include <queue>
#include <stdexcept>

#include "parallel/bounded_queue.hpp"
#include "parallel/thread_pool.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace mcqa::serve {

std::string_view status_name(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kRejected: return "rejected";
    case RequestStatus::kExpired: return "expired";
    case RequestStatus::kFailed: return "failed";
  }
  return "unknown";
}

std::string_view class_name(RequestClass klass) {
  return klass == RequestClass::kInteractive ? "interactive" : "batch";
}

// --- workload ----------------------------------------------------------------

std::vector<QueryRequest> synth_workload(const WorkloadConfig& config,
                                         std::size_t records) {
  std::vector<QueryRequest> out;
  out.reserve(config.requests);
  const util::Rng base(config.seed);
  const std::vector<double> weights(config.condition_weights.begin(),
                                    config.condition_weights.end());
  const double mean_gap_ms =
      config.offered_qps > 0.0 ? 1000.0 / config.offered_qps : 0.0;
  double clock_ms = 0.0;
  for (std::size_t i = 0; i < config.requests; ++i) {
    util::Rng rng = base.fork(i);
    // Exponential inter-arrival; uniform() < 1 keeps the log finite.
    clock_ms += mean_gap_ms * -std::log(1.0 - rng.uniform());
    QueryRequest r;
    r.request_id = "rq_" + std::to_string(i);
    r.record = records == 0
                   ? 0
                   : rng.bounded(static_cast<std::uint32_t>(
                         std::min<std::size_t>(records, 0xffffffffu)));
    std::size_t pick = rng.weighted_pick(weights);
    if (pick >= static_cast<std::size_t>(rag::kConditionCount)) {
      pick = static_cast<std::size_t>(rag::Condition::kChunks);
    }
    r.condition = static_cast<rag::Condition>(pick);
    r.arrival_ms = clock_ms;
    // Class and hot-key draws come from streams independent of the
    // arrival/record/condition sequence, so the defaults (all
    // interactive, no hot key) reproduce pre-lane workloads bit-for-bit.
    if (config.interactive_fraction < 1.0) {
      util::Rng crng(util::hash_combine(config.seed, 0xc1a55ULL), i);
      if (crng.uniform() >= config.interactive_fraction) {
        r.klass = RequestClass::kBatch;
      }
    }
    if (config.hot_fraction > 0.0 && records > 0) {
      util::Rng hrng(util::hash_combine(config.seed, 0x407ULL), i);
      if (hrng.uniform() < config.hot_fraction) r.record = 0;
    }
    out.push_back(std::move(r));
  }
  return out;
}

// --- micro-batcher -----------------------------------------------------------

std::vector<MicroBatcher::Item> MicroBatcher::take_batch() {
  const std::size_t n = std::min(batch_max_, waiting_.size());
  std::vector<Item> batch(waiting_.begin(),
                          waiting_.begin() + static_cast<std::ptrdiff_t>(n));
  waiting_.erase(waiting_.begin(),
                 waiting_.begin() + static_cast<std::ptrdiff_t>(n));
  return batch;
}

// --- engine ------------------------------------------------------------------

QueryEngine::QueryEngine(const rag::RagPipeline& rag,
                         const rag::RetrievalStores& stores,
                         const llm::ModelSpec& spec, ServeConfig config)
    : rag_(&rag),
      spec_(spec),
      config_(config),
      router_(stores, config.shards) {}

double QueryEngine::jitter(std::string_view request_id,
                           std::string_view stage, double amplitude) const {
  util::Rng rng(util::hash_combine(config_.seed, util::fnv1a64(request_id)),
                util::fnv1a64(stage));
  return amplitude * rng.uniform();
}

double QueryEngine::embed_cost_ms(const QueryRequest& request) const {
  return config_.embed_base_ms +
         jitter(request.request_id, "embed", config_.embed_jitter_ms);
}

double QueryEngine::retrieve_cost_ms(const QueryRequest& request) const {
  const ShardedStore* store = router_.store_for(request.condition);
  if (store == nullptr || store->rows() == 0) return 0.0;
  // Shards scan in parallel: per-query scan cost covers the largest
  // partition (ceil(rows/shards)); the exact merge grows with the
  // number of per-shard candidate lists.
  const std::size_t shards = router_.shard_count();
  const std::size_t partition = (store->rows() + shards - 1) / shards;
  return config_.retrieve_scan_ms_per_kilorow *
             (static_cast<double>(partition) / 1000.0) +
         config_.retrieve_merge_ms_per_shard *
             static_cast<double>(shards) +
         jitter(request.request_id, "retrieve", config_.retrieve_jitter_ms);
}

double QueryEngine::assemble_cost_ms(const QueryRequest& request) const {
  return config_.assemble_base_ms +
         jitter(request.request_id, "assemble", config_.assemble_jitter_ms);
}

bool QueryEngine::attempt_fails(std::string_view request_id,
                                std::size_t attempt) const {
  // Same derivation as BatchTeacherClient::attempt_fails: one odd-stream
  // probe per (id, attempt).
  util::Rng probe(
      util::hash_combine(config_.seed, util::fnv1a64(request_id)),
      attempt * 2 + 1);
  return probe.uniform() < config_.transient_failure_rate;
}

bool QueryEngine::replica_slow(std::size_t replica,
                               std::string_view request_id) const {
  util::Rng probe(util::hash_combine(config_.seed ^ 0x510dULL, replica),
                  util::fnv1a64(request_id));
  return probe.uniform() < config_.replica_slow_rate;
}

bool QueryEngine::replica_fails(std::size_t replica,
                                std::string_view request_id) const {
  util::Rng probe(util::hash_combine(config_.seed ^ 0xfa11ULL, replica),
                  util::fnv1a64(request_id));
  return probe.uniform() < config_.replica_failure_rate;
}

double QueryEngine::deadline_ms_for(RequestClass klass) const {
  if (klass == RequestClass::kInteractive) {
    return config_.interactive_deadline_ms >= 0.0
               ? config_.interactive_deadline_ms
               : config_.deadline_ms;
  }
  return config_.batch_deadline_ms >= 0.0 ? config_.batch_deadline_ms
                                          : 4.0 * config_.deadline_ms;
}

double QueryEngine::hedge_delay_for(
    const std::vector<QueryRequest>& requests) const {
  if (config_.hedge_delay_ms >= 0.0) return config_.hedge_delay_ms;
  if (requests.empty()) return 0.0;
  // The "hedge at p-tail" policy: the delay is a quantile of the
  // workload's own nominal dispatch costs, so it adapts to the cost
  // model without ever consulting a clock.
  util::Histogram nominal(0.0, 1.0, 1);  // exact quantiles ignore bins
  for (const QueryRequest& r : requests) {
    nominal.add(config_.batch_overhead_ms + embed_cost_ms(r) +
                retrieve_cost_ms(r) + assemble_cost_ms(r));
  }
  return nominal.exact_quantile(config_.hedge_delay_quantile);
}

struct QueryEngine::BatchExec {
  /// Requests whose *succeeding* attempt this batch carries; the
  /// execution plane assembles exactly these tasks.
  std::vector<std::size_t> ok_members;
};

std::vector<QueryEngine::BatchExec> QueryEngine::simulate(
    const std::vector<QueryRequest>& requests,
    std::vector<QueryResult>& results, ServerMetrics& metrics) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t n = requests.size();
  for (std::size_t i = 1; i < n; ++i) {
    if (requests[i].arrival_ms < requests[i - 1].arrival_ms) {
      throw std::invalid_argument(
          "QueryEngine::serve: arrivals must be nondecreasing");
    }
  }

  const std::size_t workers = std::max<std::size_t>(1, config_.workers);
  const std::size_t replicas = std::max<std::size_t>(1, config_.replicas);
  metrics = ServerMetrics(config_.deadline_ms * 4.0, workers * replicas);
  metrics.offered = n;
  metrics.lane_serviced.assign(router_.shard_count(), 0);
  metrics.replica_serviced.assign(replicas, 0);

  AdmissionController admission(config_.queue_capacity);
  const auto batch_capacity = static_cast<std::size_t>(
      static_cast<double>(config_.queue_capacity) *
      std::clamp(config_.batch_admission_fraction, 0.0, 1.0));
  // One micro-batcher per priority lane; batches never mix classes.
  // The batch lane tolerates a wider cutoff (bulk traffic prefers full
  // batches over formation latency).
  MicroBatcher interactive_lane(config_.batch_max, config_.batch_cutoff_ms);
  MicroBatcher batch_lane(config_.batch_max,
                          config_.batch_lane_cutoff_ms >= 0.0
                              ? config_.batch_lane_cutoff_ms
                              : 4.0 * config_.batch_cutoff_ms);
  const auto lane_for = [&](RequestClass klass) -> MicroBatcher& {
    return klass == RequestClass::kInteractive ? interactive_lane : batch_lane;
  };
  using Item = MicroBatcher::Item;
  const auto later = [](const Item& a, const Item& b) {
    if (a.ready_ms != b.ready_ms) return a.ready_ms > b.ready_ms;
    return a.req > b.req;
  };
  std::priority_queue<Item, std::vector<Item>, decltype(later)> retry_queue(
      later);
  // Replicated service slots: slot_free[replica * workers + w].
  // Batch-class dispatches are confined to the non-reserved tail of
  // each replica, so interactive batches always find a slot the batch
  // lane cannot have taken.
  std::vector<double> slot_free(replicas * workers, 0.0);
  const std::size_t reserved =
      std::min(config_.reserved_interactive_slots, workers - 1);
  struct SlotPick {
    std::size_t replica = 0;
    std::size_t slot = 0;  ///< index into slot_free
    double free_ms = 0.0;
  };
  // Earliest eligible slot, first minimum wins (stable).  `exclude`
  // keeps a hedge off the primary's replica.
  const auto pick_slot = [&](RequestClass klass,
                             std::size_t exclude) -> SlotPick {
    SlotPick best;
    bool found = false;
    for (std::size_t r = 0; r < replicas; ++r) {
      if (r == exclude) continue;
      const std::size_t lo = klass == RequestClass::kBatch ? reserved : 0;
      for (std::size_t w = lo; w < workers; ++w) {
        const std::size_t s = r * workers + w;
        if (!found || slot_free[s] < best.free_ms) {
          best = SlotPick{r, s, slot_free[s]};
          found = true;
        }
      }
    }
    return best;
  };
  const double hedge_delay = hedge_delay_for(requests);
  const bool hedging = config_.hedge && replicas >= 2;
  std::vector<BatchExec> plan;

  // Shard-heat window: serviced requests bump their salted record-lane;
  // a lane running heat_imbalance x the mean bumps the salt (the
  // deterministic stand-in for migrating shard ownership).
  std::uint64_t heat_salt = 0;
  std::vector<std::size_t> heat(router_.shard_count(), 0);
  std::size_t heat_seen = 0;
  const auto note_heat = [&](std::size_t record) {
    if (config_.heat_window == 0) return;
    const std::string key = "rec_" + std::to_string(record);
    ++heat[router_.lane_of(key, heat_salt)];
    if (++heat_seen < config_.heat_window) return;
    std::size_t hottest = 0;
    for (const std::size_t h : heat) hottest = std::max(hottest, h);
    const double mean = static_cast<double>(heat_seen) /
                        static_cast<double>(heat.size());
    if (static_cast<double>(hottest) > config_.heat_imbalance * mean) {
      ++heat_salt;
      ++metrics.rebalances;
    }
    std::fill(heat.begin(), heat.end(), 0);
    heat_seen = 0;
  };

  // Admission bounds *outstanding* work: requests waiting in the
  // batcher plus members of formed batches still waiting for a slot.
  // When workers saturate, formed batches back up, occupancy climbs to
  // capacity, and fresh arrivals shed — which is what makes shed > 0 a
  // pure function of offered load vs service capacity.  Backlog release
  // times are known at formation (list scheduling), so the heap drains
  // lazily as the event clock advances.
  using Release = std::pair<double, std::size_t>;  // (start_ms, members)
  std::priority_queue<Release, std::vector<Release>, std::greater<>>
      backlog_releases;
  std::size_t backlog = 0;
  const auto occupancy_at = [&](double now_ms) {
    while (!backlog_releases.empty() &&
           backlog_releases.top().first <= now_ms) {
      backlog -= backlog_releases.top().second;
      backlog_releases.pop();
    }
    return interactive_lane.waiting() + batch_lane.waiting() + backlog;
  };

  const auto deadline_of = [&](std::size_t req) {
    return requests[req].arrival_ms + deadline_ms_for(requests[req].klass);
  };
  // Per-stage simulated costs are stable per request id; memoized so
  // retries and the service sum reuse one evaluation.
  std::vector<double> cost_embed(n), cost_retrieve(n), cost_assemble(n);
  for (std::size_t i = 0; i < n; ++i) {
    cost_embed[i] = embed_cost_ms(requests[i]);
    cost_retrieve[i] = retrieve_cost_ms(requests[i]);
    cost_assemble[i] = assemble_cost_ms(requests[i]);
    results[i].lane = router_.lane_of(requests[i].request_id);
    results[i].klass = requests[i].klass;
  }

  const auto record_stage_times = [&](QueryResult& res, std::size_t req) {
    res.embed_ms = cost_embed[req];
    res.retrieve_ms = cost_retrieve[req];
    res.assemble_ms = cost_assemble[req];
    metrics.embed.add(cost_embed[req]);
    metrics.retrieve.add(cost_retrieve[req]);
    metrics.assemble.add(cost_assemble[req]);
  };
  const auto record_latency = [&](std::size_t req, double latency_ms) {
    metrics.latency.add(latency_ms);
    (requests[req].klass == RequestClass::kInteractive
         ? metrics.interactive_latency
         : metrics.batch_latency)
        .add(latency_ms);
  };

  const auto service_batch = [&](RequestClass klass, double form_ms) {
    BatchExec exec;
    const std::vector<Item> items = lane_for(klass).take_batch();
    // Deadline check at dispatch: an expired waiter never reaches a
    // slot (it would waste service on an answer nobody is waiting for).
    // `>=` pins the formation-tick tie: service time is strictly
    // positive, so a request whose deadline falls exactly on the tick
    // can never finish in time — it expires here, not after consuming
    // a slot.
    std::vector<Item> live;
    live.reserve(items.size());
    for (const Item& item : items) {
      if (form_ms >= deadline_of(item.req)) {
        QueryResult& res = results[item.req];
        res.status = RequestStatus::kExpired;
        res.attempts = item.attempt;
        res.enqueue_wait_ms = form_ms - item.ready_ms;
        res.latency_ms = form_ms - requests[item.req].arrival_ms;
        ++metrics.expired;
        metrics.enqueue_wait.add(res.enqueue_wait_ms);
        record_latency(item.req, res.latency_ms);
        continue;
      }
      live.push_back(item);
    }
    if (live.empty()) return;

    double service_ms = config_.batch_overhead_ms;
    for (const Item& item : live) {
      service_ms +=
          cost_embed[item.req] + cost_retrieve[item.req] +
          cost_assemble[item.req];
    }
    // Per-(replica, batch) injections: any afflicted member afflicts
    // the whole dispatch (the batch shares one service call).
    const auto dispatch_slow = [&](std::size_t replica) {
      for (const Item& item : live) {
        if (replica_slow(replica, requests[item.req].request_id)) return true;
      }
      return false;
    };
    const auto dispatch_fails = [&](std::size_t replica) {
      for (const Item& item : live) {
        if (replica_fails(replica, requests[item.req].request_id)) return true;
      }
      return false;
    };
    const auto service_on = [&](std::size_t replica) {
      return dispatch_slow(replica) ? service_ms * config_.replica_slow_factor
                                    : service_ms;
    };

    // Primary dispatch: list scheduling onto the earliest eligible slot.
    const SlotPick primary = pick_slot(klass, replicas);
    const double start_p = std::max(form_ms, primary.free_ms);
    const double service_p = service_on(primary.replica);
    const double done_p = start_p + service_p;
    const bool slow_p = service_p != service_ms;
    const bool fail_p = dispatch_fails(primary.replica);
    if (slow_p) ++metrics.replica_slow;
    if (fail_p) ++metrics.replica_failures;

    // Hedge: duplicate to a second replica once the primary has not
    // answered by form + hedge_delay (a primary failure surfacing
    // earlier triggers the failover immediately).
    bool hedged = false;
    SlotPick secondary;
    double start_q = 0.0, done_q = 0.0;
    bool fail_q = false;
    if (hedging) {
      const double hedge_at =
          fail_p ? std::min(form_ms + hedge_delay, done_p)
                 : form_ms + hedge_delay;
      if (fail_p || done_p > hedge_at) {
        hedged = true;
        ++metrics.hedges;
        secondary = pick_slot(klass, primary.replica);
        start_q = std::max(hedge_at, secondary.free_ms);
        const double service_q = service_on(secondary.replica);
        done_q = start_q + service_q;
        if (service_q != service_ms) ++metrics.replica_slow;
        fail_q = dispatch_fails(secondary.replica);
        if (fail_q) ++metrics.replica_failures;
      }
    }

    // Race resolution: first valid completion wins; the loser's slot
    // frees at the winning instant (cancellation) — unless it never
    // started, in which case it keeps its prior free time.
    const auto cancel_at = [&](const SlotPick& pick, double started,
                               double done, double t) {
      slot_free[pick.slot] = t <= started ? pick.free_ms : std::min(done, t);
    };
    double done_ms = 0.0;
    std::size_t winner = primary.replica;
    bool dispatch_failed = false;
    if (!fail_p && (!hedged || fail_q || done_p <= done_q)) {
      done_ms = done_p;
      slot_free[primary.slot] = done_p;
      if (hedged) {
        ++metrics.hedge_cancels;
        cancel_at(secondary, start_q, done_q, done_ms);
      }
    } else if (hedged && !fail_q) {
      done_ms = done_q;
      winner = secondary.replica;
      ++metrics.hedge_wins;
      slot_free[secondary.slot] = done_q;
      // A failed primary holds its slot until the failure surfaces.
      if (fail_p) {
        slot_free[primary.slot] = done_p;
      } else {
        cancel_at(primary, start_p, done_p, done_ms);
      }
    } else {
      // Every dispatched path failed: the attempt fails as a whole and
      // the members fall back to the retry path (failover by retry).
      dispatch_failed = true;
      done_ms = hedged ? std::max(done_p, done_q) : done_p;
      slot_free[primary.slot] = done_p;
      if (hedged) {
        ++metrics.hedge_failed;
        slot_free[secondary.slot] = done_q;
      }
    }

    if (start_p > form_ms) {
      backlog += live.size();
      backlog_releases.emplace(start_p, live.size());
    }
    ++metrics.batches;
    metrics.busy_ms += std::max(0.0, slot_free[primary.slot] - start_p);
    if (hedged) {
      metrics.busy_ms += std::max(0.0, slot_free[secondary.slot] - start_q);
    }
    metrics.makespan_ms = std::max(metrics.makespan_ms, done_ms);
    metrics.batch_fill.add(static_cast<double>(live.size()));

    for (const Item& item : live) {
      QueryResult& res = results[item.req];
      const QueryRequest& req = requests[item.req];
      ++metrics.serviced;
      ++metrics.lane_serviced[res.lane];
      ++metrics.replica_serviced[winner];
      note_heat(req.record);
      res.attempts = item.attempt + 1;
      res.replica = winner;
      res.hedged = hedged;
      res.enqueue_wait_ms = start_p - item.ready_ms;
      res.latency_ms = done_ms - req.arrival_ms;
      if (dispatch_failed || attempt_fails(req.request_id, item.attempt)) {
        if (item.attempt < config_.max_retries) {
          ++metrics.retries;
          const double backoff =
              config_.backoff_base_ms *
              static_cast<double>(
                  1u << std::min<std::size_t>(item.attempt, 10));
          retry_queue.push(
              Item{item.req, item.attempt + 1, done_ms + backoff});
          continue;  // not terminal yet
        }
        res.status = RequestStatus::kFailed;
        ++metrics.failed;
      } else if (done_ms > deadline_of(item.req)) {
        res.status = RequestStatus::kExpired;
        ++metrics.expired;
      } else {
        res.status = RequestStatus::kOk;
        ++metrics.completed;
        exec.ok_members.push_back(item.req);
      }
      record_stage_times(res, item.req);
      metrics.enqueue_wait.add(res.enqueue_wait_ms);
      record_latency(item.req, res.latency_ms);
    }
    if (!exec.ok_members.empty()) plan.push_back(std::move(exec));
  };

  // Discrete-event loop.  Fixed tie order: cutoff flushes fire before a
  // same-instant admission, the interactive lane flushing before the
  // batch lane (the weighted-drain priority); a retry re-enters before
  // a same-instant fresh arrival (it has been waiting longer).
  std::size_t next_arrival = 0;
  while (true) {
    const double t_cut_i = interactive_lane.cutoff_at();
    const double t_cut_b = batch_lane.cutoff_at();
    const double t_arrival =
        next_arrival < n ? requests[next_arrival].arrival_ms : kInf;
    const double t_retry =
        retry_queue.empty() ? kInf : retry_queue.top().ready_ms;
    const double t = std::min({t_cut_i, t_cut_b, t_arrival, t_retry});
    if (t == kInf) break;
    if (t_cut_i <= t) {
      service_batch(RequestClass::kInteractive, t_cut_i);
      continue;
    }
    if (t_cut_b <= t) {
      service_batch(RequestClass::kBatch, t_cut_b);
      continue;
    }
    Item item;
    if (t_retry <= t_arrival) {
      item = retry_queue.top();
      retry_queue.pop();
    } else {
      item = Item{next_arrival, 0, t_arrival};
      ++next_arrival;
    }
    QueryResult& res = results[item.req];
    const RequestClass klass = requests[item.req].klass;
    if (item.ready_ms > deadline_of(item.req)) {
      // Backoff outlived the deadline: terminal expiry, never re-queued.
      res.status = RequestStatus::kExpired;
      res.attempts = item.attempt;
      res.latency_ms = item.ready_ms - requests[item.req].arrival_ms;
      ++metrics.expired;
      record_latency(item.req, res.latency_ms);
      continue;
    }
    const std::size_t capacity = klass == RequestClass::kBatch
                                     ? batch_capacity
                                     : admission.capacity();
    if (!admission.try_admit(occupancy_at(item.ready_ms), capacity)) {
      res.status = RequestStatus::kRejected;
      res.attempts = item.attempt;
      res.latency_ms = item.ready_ms - requests[item.req].arrival_ms;
      ++metrics.rejected;
      continue;
    }
    lane_for(klass).push(item);
    if (lane_for(klass).size_ready()) service_batch(klass, item.ready_ms);
  }

  metrics.admitted = admission.admitted();
  return plan;
}

std::vector<QueryResult> QueryEngine::serve(
    const std::vector<qgen::McqRecord>& records,
    const std::vector<QueryRequest>& requests, parallel::ThreadPool& pool,
    ServerMetrics* metrics) const {
  std::vector<QueryResult> results(requests.size());
  ServerMetrics local;
  const std::vector<BatchExec> plan = simulate(requests, results, local);

  // Execution plane: formed batches flow through a bounded queue to
  // pool workers, which run the real sharded retrieval + assembly.
  // Writes land in disjoint result slots, so output is independent of
  // the drain order and the pool width.
  const auto execute = [&](const BatchExec& batch) {
    // Group the batch's retrieval members by condition: each group then
    // queries its sharded store as ONE tiled batch, so shard rows are
    // decoded once per kTileQ-query tile instead of once per member.
    // Bit-identical to per-member query() calls (tile-kernel contract),
    // and group order is condition enum order — deterministic.
    std::array<std::vector<std::size_t>, rag::kConditionCount> groups;
    for (const std::size_t i : batch.ok_members) {
      const QueryRequest& req = requests[i];
      if (req.record >= records.size()) {
        throw std::out_of_range("QueryEngine::serve: record index");
      }
      const ShardedStore* store = router_.store_for(req.condition);
      if (req.condition == rag::Condition::kBaseline || store == nullptr ||
          store->rows() == 0) {
        // Mirrors RagPipeline::prepare's baseline/empty-store path.
        results[i].task = records[req.record].to_task();
        continue;
      }
      groups[static_cast<std::size_t>(req.condition)].push_back(i);
    }
    for (int c = 0; c < rag::kConditionCount; ++c) {
      const std::vector<std::size_t>& members =
          groups[static_cast<std::size_t>(c)];
      if (members.empty()) continue;
      const auto condition = static_cast<rag::Condition>(c);
      const ShardedStore* store = router_.store_for(condition);
      std::vector<std::string> texts;
      texts.reserve(members.size());
      for (const std::size_t i : members) {
        texts.push_back(
            rag_->query_for(records[requests[i].record], condition));
      }
      const auto hits = store->query_batch(
          texts, rag_->config().top_k_for(condition));
      for (std::size_t j = 0; j < members.size(); ++j) {
        const std::size_t i = members[j];
        results[i].task = rag_->prepare_from_hits(
            records[requests[i].record], condition, spec_, hits[j]);
      }
    }
  };

  if (!plan.empty()) {
    parallel::BoundedQueue<const BatchExec*> dispatch(
        std::max<std::size_t>(1, config_.queue_capacity));
    const std::size_t consumers =
        std::max<std::size_t>(1, std::min(pool.thread_count(), plan.size()));
    std::vector<std::future<void>> drained;
    drained.reserve(consumers);
    for (std::size_t c = 0; c < consumers; ++c) {
      drained.push_back(pool.submit([&] {
        while (const auto batch = dispatch.pop()) execute(**batch);
      }));
    }
    for (const BatchExec& batch : plan) dispatch.push(&batch);
    dispatch.close();
    for (auto& f : drained) f.get();
  }

  if (metrics != nullptr) *metrics = local;
  return results;
}

std::vector<QueryResult> QueryEngine::serve(
    const std::vector<qgen::McqRecord>& records,
    const std::vector<QueryRequest>& requests, ServerMetrics* metrics) const {
  return serve(records, requests, parallel::ThreadPool::global(), metrics);
}

}  // namespace mcqa::serve
