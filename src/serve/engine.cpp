#include "serve/engine.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <future>
#include <queue>
#include <stdexcept>

#include "parallel/bounded_queue.hpp"
#include "parallel/thread_pool.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace mcqa::serve {

std::string_view status_name(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kRejected: return "rejected";
    case RequestStatus::kExpired: return "expired";
    case RequestStatus::kFailed: return "failed";
  }
  return "unknown";
}

// --- workload ----------------------------------------------------------------

std::vector<QueryRequest> synth_workload(const WorkloadConfig& config,
                                         std::size_t records) {
  std::vector<QueryRequest> out;
  out.reserve(config.requests);
  const util::Rng base(config.seed);
  const std::vector<double> weights(config.condition_weights.begin(),
                                    config.condition_weights.end());
  const double mean_gap_ms =
      config.offered_qps > 0.0 ? 1000.0 / config.offered_qps : 0.0;
  double clock_ms = 0.0;
  for (std::size_t i = 0; i < config.requests; ++i) {
    util::Rng rng = base.fork(i);
    // Exponential inter-arrival; uniform() < 1 keeps the log finite.
    clock_ms += mean_gap_ms * -std::log(1.0 - rng.uniform());
    QueryRequest r;
    r.request_id = "rq_" + std::to_string(i);
    r.record = records == 0
                   ? 0
                   : rng.bounded(static_cast<std::uint32_t>(
                         std::min<std::size_t>(records, 0xffffffffu)));
    std::size_t pick = rng.weighted_pick(weights);
    if (pick >= static_cast<std::size_t>(rag::kConditionCount)) {
      pick = static_cast<std::size_t>(rag::Condition::kChunks);
    }
    r.condition = static_cast<rag::Condition>(pick);
    r.arrival_ms = clock_ms;
    out.push_back(std::move(r));
  }
  return out;
}

// --- micro-batcher -----------------------------------------------------------

std::vector<MicroBatcher::Item> MicroBatcher::take_batch() {
  const std::size_t n = std::min(batch_max_, waiting_.size());
  std::vector<Item> batch(waiting_.begin(),
                          waiting_.begin() + static_cast<std::ptrdiff_t>(n));
  waiting_.erase(waiting_.begin(),
                 waiting_.begin() + static_cast<std::ptrdiff_t>(n));
  return batch;
}

// --- engine ------------------------------------------------------------------

QueryEngine::QueryEngine(const rag::RagPipeline& rag,
                         const rag::RetrievalStores& stores,
                         const llm::ModelSpec& spec, ServeConfig config)
    : rag_(&rag),
      spec_(spec),
      config_(config),
      router_(stores, config.shards) {}

double QueryEngine::jitter(std::string_view request_id,
                           std::string_view stage, double amplitude) const {
  util::Rng rng(util::hash_combine(config_.seed, util::fnv1a64(request_id)),
                util::fnv1a64(stage));
  return amplitude * rng.uniform();
}

double QueryEngine::embed_cost_ms(const QueryRequest& request) const {
  return config_.embed_base_ms +
         jitter(request.request_id, "embed", config_.embed_jitter_ms);
}

double QueryEngine::retrieve_cost_ms(const QueryRequest& request) const {
  const ShardedStore* store = router_.store_for(request.condition);
  if (store == nullptr || store->rows() == 0) return 0.0;
  // Shards scan in parallel: per-query scan cost covers the largest
  // partition (ceil(rows/shards)); the exact merge grows with the
  // number of per-shard candidate lists.
  const std::size_t shards = router_.shard_count();
  const std::size_t partition = (store->rows() + shards - 1) / shards;
  return config_.retrieve_scan_ms_per_kilorow *
             (static_cast<double>(partition) / 1000.0) +
         config_.retrieve_merge_ms_per_shard *
             static_cast<double>(shards) +
         jitter(request.request_id, "retrieve", config_.retrieve_jitter_ms);
}

double QueryEngine::assemble_cost_ms(const QueryRequest& request) const {
  return config_.assemble_base_ms +
         jitter(request.request_id, "assemble", config_.assemble_jitter_ms);
}

bool QueryEngine::attempt_fails(std::string_view request_id,
                                std::size_t attempt) const {
  // Same derivation as BatchTeacherClient::attempt_fails: one odd-stream
  // probe per (id, attempt).
  util::Rng probe(
      util::hash_combine(config_.seed, util::fnv1a64(request_id)),
      attempt * 2 + 1);
  return probe.uniform() < config_.transient_failure_rate;
}

struct QueryEngine::BatchExec {
  /// Requests whose *succeeding* attempt this batch carries; the
  /// execution plane assembles exactly these tasks.
  std::vector<std::size_t> ok_members;
};

std::vector<QueryEngine::BatchExec> QueryEngine::simulate(
    const std::vector<QueryRequest>& requests,
    std::vector<QueryResult>& results, ServerMetrics& metrics) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t n = requests.size();
  for (std::size_t i = 1; i < n; ++i) {
    if (requests[i].arrival_ms < requests[i - 1].arrival_ms) {
      throw std::invalid_argument(
          "QueryEngine::serve: arrivals must be nondecreasing");
    }
  }

  metrics = ServerMetrics(config_.deadline_ms * 4.0,
                          std::max<std::size_t>(1, config_.workers));
  metrics.offered = n;
  metrics.lane_serviced.assign(router_.shard_count(), 0);

  AdmissionController admission(config_.queue_capacity);
  MicroBatcher batcher(config_.batch_max, config_.batch_cutoff_ms);
  using Item = MicroBatcher::Item;
  const auto later = [](const Item& a, const Item& b) {
    if (a.ready_ms != b.ready_ms) return a.ready_ms > b.ready_ms;
    return a.req > b.req;
  };
  std::priority_queue<Item, std::vector<Item>, decltype(later)> retry_queue(
      later);
  std::vector<double> slot_free(std::max<std::size_t>(1, config_.workers),
                                0.0);
  std::vector<BatchExec> plan;

  // Admission bounds *outstanding* work: requests waiting in the
  // batcher plus members of formed batches still waiting for a slot.
  // When workers saturate, formed batches back up, occupancy climbs to
  // capacity, and fresh arrivals shed — which is what makes shed > 0 a
  // pure function of offered load vs service capacity.  Backlog release
  // times are known at formation (list scheduling), so the heap drains
  // lazily as the event clock advances.
  using Release = std::pair<double, std::size_t>;  // (start_ms, members)
  std::priority_queue<Release, std::vector<Release>, std::greater<>>
      backlog_releases;
  std::size_t backlog = 0;
  const auto occupancy_at = [&](double now_ms) {
    while (!backlog_releases.empty() &&
           backlog_releases.top().first <= now_ms) {
      backlog -= backlog_releases.top().second;
      backlog_releases.pop();
    }
    return batcher.waiting() + backlog;
  };

  const auto deadline_of = [&](std::size_t req) {
    return requests[req].arrival_ms + config_.deadline_ms;
  };
  // Per-stage simulated costs are stable per request id; memoized so
  // retries and the service sum reuse one evaluation.
  std::vector<double> cost_embed(n), cost_retrieve(n), cost_assemble(n);
  for (std::size_t i = 0; i < n; ++i) {
    cost_embed[i] = embed_cost_ms(requests[i]);
    cost_retrieve[i] = retrieve_cost_ms(requests[i]);
    cost_assemble[i] = assemble_cost_ms(requests[i]);
    results[i].lane = router_.lane_of(requests[i].request_id);
  }

  const auto record_stage_times = [&](QueryResult& res, std::size_t req) {
    res.embed_ms = cost_embed[req];
    res.retrieve_ms = cost_retrieve[req];
    res.assemble_ms = cost_assemble[req];
    metrics.embed.add(cost_embed[req]);
    metrics.retrieve.add(cost_retrieve[req]);
    metrics.assemble.add(cost_assemble[req]);
  };

  const auto service_batch = [&](double form_ms) {
    BatchExec exec;
    const std::vector<Item> items = batcher.take_batch();
    // Deadline check at dispatch: an expired waiter never reaches a
    // slot (it would waste service on an answer nobody is waiting for).
    std::vector<Item> live;
    live.reserve(items.size());
    for (const Item& item : items) {
      if (form_ms > deadline_of(item.req)) {
        QueryResult& res = results[item.req];
        res.status = RequestStatus::kExpired;
        res.attempts = item.attempt;
        res.enqueue_wait_ms = form_ms - item.ready_ms;
        res.latency_ms = form_ms - requests[item.req].arrival_ms;
        ++metrics.expired;
        metrics.enqueue_wait.add(res.enqueue_wait_ms);
        metrics.latency.add(res.latency_ms);
        continue;
      }
      live.push_back(item);
    }
    if (live.empty()) return;

    double service_ms = config_.batch_overhead_ms;
    for (const Item& item : live) {
      service_ms +=
          cost_embed[item.req] + cost_retrieve[item.req] +
          cost_assemble[item.req];
    }
    // List scheduling: earliest-free slot (first minimum — stable).
    auto slot = std::min_element(slot_free.begin(), slot_free.end());
    const double start_ms = std::max(form_ms, *slot);
    const double done_ms = start_ms + service_ms;
    *slot = done_ms;
    if (start_ms > form_ms) {
      backlog += live.size();
      backlog_releases.emplace(start_ms, live.size());
    }
    ++metrics.batches;
    metrics.busy_ms += service_ms;
    metrics.makespan_ms = std::max(metrics.makespan_ms, done_ms);
    metrics.batch_fill.add(static_cast<double>(live.size()));

    for (const Item& item : live) {
      QueryResult& res = results[item.req];
      const QueryRequest& req = requests[item.req];
      ++metrics.serviced;
      ++metrics.lane_serviced[res.lane];
      res.attempts = item.attempt + 1;
      res.enqueue_wait_ms = start_ms - item.ready_ms;
      res.latency_ms = done_ms - req.arrival_ms;
      if (attempt_fails(req.request_id, item.attempt)) {
        if (item.attempt < config_.max_retries) {
          ++metrics.retries;
          const double backoff =
              config_.backoff_base_ms *
              static_cast<double>(
                  1u << std::min<std::size_t>(item.attempt, 10));
          retry_queue.push(
              Item{item.req, item.attempt + 1, done_ms + backoff});
          continue;  // not terminal yet
        }
        res.status = RequestStatus::kFailed;
        ++metrics.failed;
      } else if (done_ms > deadline_of(item.req)) {
        res.status = RequestStatus::kExpired;
        ++metrics.expired;
      } else {
        res.status = RequestStatus::kOk;
        ++metrics.completed;
        exec.ok_members.push_back(item.req);
      }
      record_stage_times(res, item.req);
      metrics.enqueue_wait.add(res.enqueue_wait_ms);
      metrics.latency.add(res.latency_ms);
    }
    if (!exec.ok_members.empty()) plan.push_back(std::move(exec));
  };

  // Discrete-event loop.  Fixed tie order: a cutoff flush fires before
  // a same-instant admission; a retry re-enters before a same-instant
  // fresh arrival (it has been waiting longer).
  std::size_t next_arrival = 0;
  while (true) {
    const double t_cutoff = batcher.cutoff_at();
    const double t_arrival =
        next_arrival < n ? requests[next_arrival].arrival_ms : kInf;
    const double t_retry =
        retry_queue.empty() ? kInf : retry_queue.top().ready_ms;
    const double t = std::min({t_cutoff, t_arrival, t_retry});
    if (t == kInf) break;
    if (t_cutoff <= t) {
      service_batch(t_cutoff);
      continue;
    }
    Item item;
    if (t_retry <= t_arrival) {
      item = retry_queue.top();
      retry_queue.pop();
    } else {
      item = Item{next_arrival, 0, t_arrival};
      ++next_arrival;
    }
    QueryResult& res = results[item.req];
    if (item.ready_ms > deadline_of(item.req)) {
      // Backoff outlived the deadline: terminal expiry, never re-queued.
      res.status = RequestStatus::kExpired;
      res.attempts = item.attempt;
      res.latency_ms = item.ready_ms - requests[item.req].arrival_ms;
      ++metrics.expired;
      metrics.latency.add(res.latency_ms);
      continue;
    }
    if (!admission.try_admit(occupancy_at(item.ready_ms))) {
      res.status = RequestStatus::kRejected;
      res.attempts = item.attempt;
      res.latency_ms = item.ready_ms - requests[item.req].arrival_ms;
      ++metrics.rejected;
      continue;
    }
    batcher.push(item);
    if (batcher.size_ready()) service_batch(item.ready_ms);
  }

  metrics.admitted = admission.admitted();
  return plan;
}

std::vector<QueryResult> QueryEngine::serve(
    const std::vector<qgen::McqRecord>& records,
    const std::vector<QueryRequest>& requests, parallel::ThreadPool& pool,
    ServerMetrics* metrics) const {
  std::vector<QueryResult> results(requests.size());
  ServerMetrics local;
  const std::vector<BatchExec> plan = simulate(requests, results, local);

  // Execution plane: formed batches flow through a bounded queue to
  // pool workers, which run the real sharded retrieval + assembly.
  // Writes land in disjoint result slots, so output is independent of
  // the drain order and the pool width.
  const auto execute = [&](const BatchExec& batch) {
    for (const std::size_t i : batch.ok_members) {
      const QueryRequest& req = requests[i];
      if (req.record >= records.size()) {
        throw std::out_of_range("QueryEngine::serve: record index");
      }
      const qgen::McqRecord& record = records[req.record];
      const ShardedStore* store = router_.store_for(req.condition);
      if (req.condition == rag::Condition::kBaseline || store == nullptr ||
          store->rows() == 0) {
        // Mirrors RagPipeline::prepare's baseline/empty-store path.
        results[i].task = record.to_task();
        continue;
      }
      const std::vector<index::Hit> hits =
          store->query(rag_->query_for(record, req.condition),
                       rag_->config().top_k_for(req.condition));
      results[i].task =
          rag_->prepare_from_hits(record, req.condition, spec_, hits);
    }
  };

  if (!plan.empty()) {
    parallel::BoundedQueue<const BatchExec*> dispatch(
        std::max<std::size_t>(1, config_.queue_capacity));
    const std::size_t consumers =
        std::max<std::size_t>(1, std::min(pool.thread_count(), plan.size()));
    std::vector<std::future<void>> drained;
    drained.reserve(consumers);
    for (std::size_t c = 0; c < consumers; ++c) {
      drained.push_back(pool.submit([&] {
        while (const auto batch = dispatch.pop()) execute(**batch);
      }));
    }
    for (const BatchExec& batch : plan) dispatch.push(&batch);
    dispatch.close();
    for (auto& f : drained) f.get();
  }

  if (metrics != nullptr) *metrics = local;
  return results;
}

std::vector<QueryResult> QueryEngine::serve(
    const std::vector<qgen::McqRecord>& records,
    const std::vector<QueryRequest>& requests, ServerMetrics* metrics) const {
  return serve(records, requests, parallel::ThreadPool::global(), metrics);
}

}  // namespace mcqa::serve
