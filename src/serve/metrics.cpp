#include "serve/metrics.hpp"

namespace mcqa::serve {

namespace {

double ratio(std::size_t num, std::size_t den) {
  return den > 0 ? static_cast<double>(num) / static_cast<double>(den) : 0.0;
}

}  // namespace

json::Value StageMetrics::to_json() const {
  json::Value v = json::Value::object();
  v["count"] = count();
  v["mean_ms"] = mean();
  v["p50_ms"] = p50();
  v["p95_ms"] = p95();
  v["p99_ms"] = p99();
  v["p999_ms"] = p999();
  v["max_ms"] = max();
  return v;
}

ServerMetrics::ServerMetrics(double latency_hi_ms, std::size_t workers_in)
    : workers(workers_in),
      enqueue_wait(latency_hi_ms),
      latency(latency_hi_ms) {}

double ServerMetrics::completion_rate() const {
  return ratio(completed, offered);
}

double ServerMetrics::shed_rate() const { return ratio(rejected, offered); }

double ServerMetrics::expiry_rate() const { return ratio(expired, offered); }

double ServerMetrics::failure_rate() const { return ratio(failed, offered); }

double ServerMetrics::retry_rate() const { return ratio(retries, serviced); }

double ServerMetrics::mean_batch_fill() const {
  return ratio(serviced, batches);
}

double ServerMetrics::throughput_qps() const {
  return makespan_ms > 0.0
             ? static_cast<double>(completed) * 1000.0 / makespan_ms
             : 0.0;
}

double ServerMetrics::utilization() const {
  const double span = static_cast<double>(workers) * makespan_ms;
  return span > 0.0 ? busy_ms / span : 0.0;
}

json::Value ServerMetrics::to_json() const {
  json::Value v = json::Value::object();
  {
    json::Value c = json::Value::object();
    c["offered"] = offered;
    c["completed"] = completed;
    c["rejected"] = rejected;
    c["expired"] = expired;
    c["failed"] = failed;
    c["admitted"] = admitted;
    c["serviced"] = serviced;
    c["retries"] = retries;
    c["batches"] = batches;
    c["hedges"] = hedges;
    c["hedge_wins"] = hedge_wins;
    c["hedge_cancels"] = hedge_cancels;
    c["hedge_failed"] = hedge_failed;
    c["replica_slow"] = replica_slow;
    c["replica_failures"] = replica_failures;
    c["rebalances"] = rebalances;
    json::Array lanes;
    lanes.reserve(lane_serviced.size());
    for (const std::size_t s : lane_serviced) {
      lanes.emplace_back(static_cast<std::int64_t>(s));
    }
    c["lane_serviced"] = json::Value(std::move(lanes));
    json::Array reps;
    reps.reserve(replica_serviced.size());
    for (const std::size_t s : replica_serviced) {
      reps.emplace_back(static_cast<std::int64_t>(s));
    }
    c["replica_serviced"] = json::Value(std::move(reps));
    v["counters"] = std::move(c);
  }
  {
    json::Value r = json::Value::object();
    r["completion_rate"] = completion_rate();
    r["shed_rate"] = shed_rate();
    r["expiry_rate"] = expiry_rate();
    r["failure_rate"] = failure_rate();
    r["retry_rate"] = retry_rate();
    r["mean_batch_fill"] = mean_batch_fill();
    r["throughput_qps"] = throughput_qps();
    r["utilization"] = utilization();
    v["rates"] = std::move(r);
  }
  v["makespan_ms"] = makespan_ms;
  v["busy_ms"] = busy_ms;
  v["workers"] = workers;
  {
    json::Value s = json::Value::object();
    s["enqueue_wait"] = enqueue_wait.to_json();
    s["embed"] = embed.to_json();
    s["retrieve"] = retrieve.to_json();
    s["assemble"] = assemble.to_json();
    s["latency"] = latency.to_json();
    s["interactive_latency"] = interactive_latency.to_json();
    s["batch_latency"] = batch_latency.to_json();
    s["batch_fill"] = batch_fill.to_json();
    v["stages"] = std::move(s);
  }
  return v;
}

}  // namespace mcqa::serve
