#pragma once
// Deterministic sharding of a VectorStore for the serving engine.
//
// A ShardedStore hash-partitions the rows of an existing store across S
// flat shards (shard = fnv1a64(row id) % S — a stable function of the
// payload id, so the partition is identical across runs, machines and
// shard-build order).  A query fans out to every shard, takes each
// shard's exact top-k, and merges on (score desc, global row asc) — the
// same comparator FlatIndex::search uses — so the merged result is
// bit-identical (ids, texts, scores) to querying the unsharded flat
// store.  Exactness argument: any member of the global top-k is at
// worst the k-th best row of its own shard, so it survives the
// per-shard cut; scores are per-row kernel evaluations (dot_fp16 over
// the same fp16 row bits and the same query vector), independent of
// which shard holds the row.
//
// Shards re-embed row texts through the base store's own embedder —
// embedding is pure, so the fp16 rows at rest are the same bits the
// base index holds.
//
// Quantized shards: shard_kind kSq8/kIvfPq swaps each shard's flat
// index for a quantized one.  Every per-shard score that reaches the
// merge still comes from the exact fp16 rerank pass (same row bits,
// same kernel), so the scatter-gather merge stays exact — scores are
// never perturbed, and results are bit-identical to the flat sharded
// store whenever each shard's candidate set covers its top-k (always
// when shards hold <= min_candidates rows; IVF-PQ shards probe every
// cell so coverage is governed by the same candidate-count knob).
//
// QueryRouter bundles one ShardedStore per retrieval condition (chunk
// store + the three trace stores) and supplies the request-id -> lane
// hash the engine uses for per-shard accounting.

#include <array>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "index/vector_index.hpp"
#include "index/vector_store.hpp"
#include "rag/rag_pipeline.hpp"

namespace mcqa::serve {

class ShardedStore {
 public:
  /// Partition `base` into `shards` shards (>= 1; 0 is clamped) of
  /// `shard_kind` indexes (kFlat, kSq8 or kIvfPq — the kinds whose
  /// final scores are exact fp16 kernel evaluations).
  ShardedStore(const index::VectorStore& base, std::size_t shards,
               index::IndexKind shard_kind = index::IndexKind::kFlat);

  /// Exact scatter-gather top-k: bit-identical to the unsharded flat
  /// store's query(text, k).
  std::vector<index::Hit> query(std::string_view text, std::size_t k) const;
  std::vector<index::Hit> query_vector(const embed::Vector& v,
                                       std::size_t k) const;

  /// Tiled scatter-gather: each shard scans the whole batch in kTileQ
  /// query tiles (search_tiled), then results merge per query.  Entry
  /// i is bit-identical to query(texts[i], k) / query_vector(vs[i], k).
  std::vector<std::vector<index::Hit>> query_batch(
      const std::vector<std::string>& texts, std::size_t k) const;
  std::vector<std::vector<index::Hit>> query_vectors(
      const std::vector<embed::Vector>& vs, std::size_t k) const;

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t shard_size(std::size_t shard) const {
    return shards_.at(shard).global_rows.size();
  }
  std::size_t rows() const { return base_->size(); }
  const index::VectorStore& base() const { return *base_; }
  index::IndexKind shard_kind() const { return shard_kind_; }

  /// The partition function: shard owning payload id.
  static std::size_t shard_of(std::string_view id, std::size_t shards);

 private:
  struct Shard {
    std::unique_ptr<index::VectorIndex> index;
    /// Local row -> row in the base store (ascending by construction,
    /// which makes per-shard local-row tie-breaks match global ones).
    std::vector<std::size_t> global_rows;
  };

  const index::VectorStore* base_;
  index::IndexKind shard_kind_;
  std::vector<Shard> shards_;
};

class QueryRouter {
 public:
  QueryRouter(const rag::RetrievalStores& stores, std::size_t shards);

  std::size_t shard_count() const { return shard_count_; }

  /// Shard lane a request id hashes to (stable; used for per-lane
  /// accounting in ServerMetrics).
  std::size_t lane_of(std::string_view request_id) const;

  /// Salted lane: salt 0 is the unsalted mapping above; a nonzero salt
  /// re-keys the partition (the engine's deterministic heat rebalance
  /// bumps it when one lane runs hot).
  std::size_t lane_of(std::string_view key, std::uint64_t salt) const;

  /// Sharded store backing `condition`; nullptr for Baseline or when
  /// the bundle carries no store for it.
  const ShardedStore* store_for(rag::Condition condition) const;

  /// Scatter-gather query against the condition's store.  Empty when
  /// store_for(condition) is null.
  std::vector<index::Hit> query(rag::Condition condition,
                                std::string_view text, std::size_t k) const;

  /// Tiled batch variant: entry i is bit-identical to
  /// query(condition, texts[i], k).  All-empty when the condition has
  /// no store.
  std::vector<std::vector<index::Hit>> query_batch(
      rag::Condition condition, const std::vector<std::string>& texts,
      std::size_t k) const;

 private:
  std::size_t shard_count_;
  std::unique_ptr<ShardedStore> chunks_;
  std::array<std::unique_ptr<ShardedStore>, trace::kTraceModeCount> traces_;
};

}  // namespace mcqa::serve
