#include "serve/live_store.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "index/quantized.hpp"
#include "util/fp16.hpp"

namespace mcqa::serve {

// --- StoreSnapshot -----------------------------------------------------------

embed::Vector StoreSnapshot::Segment::widen(std::size_t r) const {
  if (const auto* flat = dynamic_cast<const index::FlatIndex*>(index.get())) {
    return flat->vector(r);
  }
  if (const auto* sq8 = dynamic_cast<const index::Sq8Index*>(index.get())) {
    // The SQ8 rerank rows hold the same fp16 bits a flat index would;
    // widening them is exact (fp16 -> float is injective).
    const std::size_t dim = sq8->dim();
    const util::fp16_t* src = sq8->rows().row(r);
    embed::Vector out(dim);
    for (std::size_t i = 0; i < dim; ++i) out[i] = util::fp16_to_float(src[i]);
    return out;
  }
  throw std::logic_error("StoreSnapshot: segment index kind has no fp16 rows");
}

std::size_t StoreSnapshot::base_rows() const {
  return base_ == nullptr ? 0 : base_->ids.size();
}

std::vector<index::Hit> StoreSnapshot::query(std::string_view text,
                                             std::size_t k) const {
  return query_vector(embedder_->embed(text), k);
}

std::vector<index::Hit> StoreSnapshot::query_vector(const embed::Vector& v,
                                                    std::size_t k) const {
  // Each segment is asked for k + tombstones rows: at most dead_count_
  // of a segment's hits can be filtered, so the survivors still cover
  // that segment's live top-k, and the merge covers the global one.
  const std::size_t fetch = k + dead_count_;
  struct Cand {
    std::size_t ordinal;
    float score;
    const Segment* segment;
    std::size_t local;
  };
  std::vector<Cand> merged;
  const auto scan = [&](const Segment& seg) {
    for (const index::SearchResult& r : seg.index->search(v, fetch)) {
      const std::size_t ordinal = seg.first_ordinal + r.row;
      if (dead_ != nullptr && (*dead_)[ordinal] != 0) continue;
      merged.push_back(Cand{ordinal, r.score, &seg, r.row});
    }
  };
  if (base_ != nullptr) scan(*base_);
  for (const auto& seg : deltas_) scan(*seg);

  // The comparator FlatIndex::search applies, with insertion-ordered
  // ordinals standing in for rebuilt row numbers (gaps left by dead
  // rows preserve relative order, which is all the tie-break uses).
  std::sort(merged.begin(), merged.end(), [](const Cand& a, const Cand& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.ordinal < b.ordinal;
  });
  if (merged.size() > k) merged.resize(k);

  std::vector<index::Hit> hits;
  hits.reserve(merged.size());
  for (const Cand& c : merged) {
    hits.push_back(index::Hit{c.segment->ids[c.local],
                              c.segment->texts[c.local], c.score});
  }
  return hits;
}

std::vector<std::vector<index::Hit>> StoreSnapshot::query_batch(
    const std::vector<std::string>& texts, std::size_t k) const {
  std::vector<embed::Vector> vs;
  vs.reserve(texts.size());
  for (const auto& text : texts) vs.push_back(embedder_->embed(text));
  return query_vectors(vs, k);
}

std::vector<std::vector<index::Hit>> StoreSnapshot::query_vectors(
    const std::vector<embed::Vector>& vs, std::size_t k) const {
  // Same per-segment fetch depth and merge as query_vector; the only
  // change is that each segment scans the whole batch through its
  // tiled path, sharing row decodes across kTileQ queries.  Per-query
  // segment results are bit-identical to search(v, fetch) — the
  // tile-kernel contract — so the filtered merge is too.
  const std::size_t fetch = k + dead_count_;
  struct Cand {
    std::size_t ordinal;
    float score;
    const Segment* segment;
    std::size_t local;
  };
  std::vector<const Segment*> segments;
  if (base_ != nullptr) segments.push_back(base_.get());
  for (const auto& seg : deltas_) segments.push_back(seg.get());

  std::vector<std::vector<std::vector<index::SearchResult>>> per_segment;
  per_segment.reserve(segments.size());
  for (const Segment* seg : segments) {
    per_segment.push_back(seg->index->search_tiled(vs, fetch));
  }

  std::vector<std::vector<index::Hit>> out(vs.size());
  std::vector<Cand> merged;
  for (std::size_t i = 0; i < vs.size(); ++i) {
    merged.clear();
    for (std::size_t s = 0; s < segments.size(); ++s) {
      const Segment& seg = *segments[s];
      for (const index::SearchResult& r : per_segment[s][i]) {
        const std::size_t ordinal = seg.first_ordinal + r.row;
        if (dead_ != nullptr && (*dead_)[ordinal] != 0) continue;
        merged.push_back(Cand{ordinal, r.score, &seg, r.row});
      }
    }
    std::sort(merged.begin(), merged.end(),
              [](const Cand& a, const Cand& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.ordinal < b.ordinal;
              });
    if (merged.size() > k) merged.resize(k);
    out[i].reserve(merged.size());
    for (const Cand& c : merged) {
      out[i].push_back(index::Hit{c.segment->ids[c.local],
                                  c.segment->texts[c.local], c.score});
    }
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> StoreSnapshot::live_rows()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(rows());
  const auto emit = [&](const Segment& seg) {
    for (std::size_t r = 0; r < seg.ids.size(); ++r) {
      const std::size_t ordinal = seg.first_ordinal + r;
      if (dead_ != nullptr && (*dead_)[ordinal] != 0) continue;
      out.emplace_back(seg.ids[r], seg.texts[r]);
    }
  };
  if (base_ != nullptr) emit(*base_);
  for (const auto& seg : deltas_) emit(*seg);
  return out;
}

// --- LiveStore ---------------------------------------------------------------

std::unique_ptr<index::VectorIndex> LiveStore::make_base_index(
    std::size_t dim) const {
  switch (config_.compact_kind) {
    case index::IndexKind::kFlat:
      return std::make_unique<index::FlatIndex>(dim);
    case index::IndexKind::kSq8:
      return std::make_unique<index::Sq8Index>(
          dim, index::Sq8Config{config_.oversample, config_.min_candidates});
    case index::IndexKind::kIvf:
    case index::IndexKind::kHnsw:
    case index::IndexKind::kIvfPq:
      break;
  }
  throw std::invalid_argument(
      "LiveStore: compact_kind must be flat or sq8 (exact fp16 rows)");
}

LiveStore::LiveStore(const embed::Embedder& embedder, LiveStoreConfig config)
    : embedder_(&embedder), config_(config) {
  auto empty = std::make_shared<StoreSnapshot>();
  empty->embedder_ = embedder_;
  head_.store(std::move(empty), std::memory_order_release);
}

LiveStore::LiveStore(const index::VectorStore& seed, LiveStoreConfig config)
    : LiveStore(seed.embedder(), config) {
  // Seed rows become epoch 1's base segment; a flat seed's fp16 rows
  // widen without re-embedding (bit-identical either way).
  const std::size_t n = seed.size();
  const auto* flat = dynamic_cast<const index::FlatIndex*>(seed.index());
  auto base = std::make_shared<StoreSnapshot::Segment>();
  std::vector<embed::Vector> vecs;
  vecs.reserve(n);
  base->ids.reserve(n);
  base->texts.reserve(n);
  for (std::size_t row = 0; row < n; ++row) {
    base->ids.push_back(seed.id_of(row));
    base->texts.push_back(seed.text_of(row));
    vecs.push_back(flat != nullptr ? flat->vector(row)
                                   : embedder_->embed(seed.text_of(row)));
    live_.emplace(seed.id_of(row), row);
  }
  auto next = std::make_shared<StoreSnapshot>();
  next->embedder_ = embedder_;
  next->epoch_ = 1;
  next->total_rows_ = n;
  next->dead_ = std::make_shared<const std::vector<std::uint8_t>>(n, 0);
  if (n > 0) {
    auto idx = make_base_index(embedder_->dim());
    idx->add_batch(vecs);
    idx->build();
    base->index = std::move(idx);
    next->base_ = std::move(base);
  }
  head_.store(std::move(next), std::memory_order_release);
  epoch_hint_.store(1, std::memory_order_release);
}

void LiveStore::append(std::string id, std::string text) {
  embed::Vector v = embedder_->embed(text);  // off the writer critical path
  const std::lock_guard<std::mutex> lock(writer_mu_);
  const auto it = live_.find(id);
  if (it != live_.end()) {
    pend_dead_.push_back(it->second);  // upsert: old row dies this epoch
    live_.erase(it);
  }
  const auto head = head_.load(std::memory_order_acquire);
  const std::size_t ordinal = head->total_rows_ + pend_ids_.size();
  live_.emplace(id, ordinal);
  pend_ids_.push_back(std::move(id));
  pend_texts_.push_back(std::move(text));
  pend_vecs_.push_back(std::move(v));
  pending_hint_.store(pend_ids_.size() + pend_dead_.size(),
                      std::memory_order_release);
}

bool LiveStore::tombstone(std::string_view id) {
  const std::lock_guard<std::mutex> lock(writer_mu_);
  const auto it = live_.find(std::string(id));
  if (it == live_.end()) return false;
  pend_dead_.push_back(it->second);
  live_.erase(it);
  pending_hint_.store(pend_ids_.size() + pend_dead_.size(),
                      std::memory_order_release);
  return true;
}

std::shared_ptr<const StoreSnapshot> LiveStore::publish(double sim_now_ms) {
  const std::lock_guard<std::mutex> lock(writer_mu_);
  return publish_locked(sim_now_ms);
}

std::shared_ptr<const StoreSnapshot> LiveStore::publish_locked(
    double sim_now_ms) {
  const auto old = head_.load(std::memory_order_acquire);
  auto next = std::make_shared<StoreSnapshot>();
  next->embedder_ = embedder_;
  next->epoch_ = old->epoch_ + 1;
  next->published_at_ms_ = sim_now_ms;
  next->base_ = old->base_;
  next->deltas_ = old->deltas_;
  next->total_rows_ = old->total_rows_ + pend_ids_.size();
  next->dead_count_ = old->dead_count_ + pend_dead_.size();

  if (!pend_ids_.empty()) {
    auto seg = std::make_shared<StoreSnapshot::Segment>();
    seg->first_ordinal = old->total_rows_;
    seg->ids = std::move(pend_ids_);
    seg->texts = std::move(pend_texts_);
    auto idx = std::make_unique<index::FlatIndex>(embedder_->dim());
    idx->add_batch(pend_vecs_);
    seg->index = std::move(idx);
    next->deltas_.push_back(std::move(seg));
  }
  auto dead = std::make_shared<std::vector<std::uint8_t>>();
  if (old->dead_ != nullptr) *dead = *old->dead_;
  dead->resize(next->total_rows_, 0);
  for (const std::size_t ordinal : pend_dead_) (*dead)[ordinal] = 1;
  next->dead_ = std::move(dead);

  pend_ids_.clear();
  pend_texts_.clear();
  pend_vecs_.clear();
  pend_dead_.clear();

  std::shared_ptr<const StoreSnapshot> sealed = std::move(next);
  const std::size_t fold = sealed->delta_rows() + sealed->tombstones();
  if (fold > 0 && fold >= config_.compact_threshold) {
    sealed = compact_locked(*sealed, sim_now_ms);
  }
  head_.store(sealed, std::memory_order_release);
  epoch_hint_.store(sealed->epoch(), std::memory_order_release);
  pending_hint_.store(0, std::memory_order_release);
  compactions_hint_.store(compactions_, std::memory_order_release);
  return sealed;
}

std::shared_ptr<const StoreSnapshot> LiveStore::compact_locked(
    const StoreSnapshot& sealed, double sim_now_ms) {
  auto base = std::make_shared<StoreSnapshot::Segment>();
  std::vector<embed::Vector> vecs;
  const std::size_t live = sealed.rows();
  base->ids.reserve(live);
  base->texts.reserve(live);
  vecs.reserve(live);
  const auto fold = [&](const StoreSnapshot::Segment& seg) {
    for (std::size_t r = 0; r < seg.ids.size(); ++r) {
      const std::size_t ordinal = seg.first_ordinal + r;
      if ((*sealed.dead_)[ordinal] != 0) continue;
      base->ids.push_back(seg.ids[r]);
      base->texts.push_back(seg.texts[r]);
      vecs.push_back(seg.widen(r));
    }
  };
  if (sealed.base_ != nullptr) fold(*sealed.base_);
  for (const auto& seg : sealed.deltas_) fold(*seg);

  auto next = std::make_shared<StoreSnapshot>();
  next->embedder_ = embedder_;
  next->epoch_ = sealed.epoch_;
  next->published_at_ms_ = sim_now_ms;
  next->total_rows_ = base->ids.size();
  next->dead_ =
      std::make_shared<const std::vector<std::uint8_t>>(base->ids.size(), 0);
  if (!base->ids.empty()) {
    auto idx = make_base_index(embedder_->dim());
    idx->add_batch(vecs);
    idx->build();
    base->index = std::move(idx);
    next->base_ = std::move(base);
  }
  // Ordinals restart at 0; remap the live id table to match.
  live_.clear();
  const StoreSnapshot::Segment* folded = next->base_.get();
  if (folded != nullptr) {
    for (std::size_t r = 0; r < folded->ids.size(); ++r) {
      live_.emplace(folded->ids[r], r);
    }
  }
  ++compactions_;
  return next;
}

}  // namespace mcqa::serve
