#pragma once
// Live (mutable-under-traffic) retrieval store: RCU-style epoch
// snapshots over the vector-index substrate.
//
// The offline stores (index/vector_store.hpp) are frozen after build().
// The live-serving tier needs the corpus to keep growing *under* query
// traffic — the ROADMAP's "millions of users while the corpus grows"
// shape — without read-path locks and without giving up determinism.
//
// Design (classic read-copy-update, with shared_ptr as the grace
// period):
//
//   * Readers call snapshot() — one atomic shared_ptr load — and run
//     every query against that immutable StoreSnapshot.  No locks, no
//     waits; in-flight queries keep their epoch alive until they drain
//     (the shared_ptr refcount is the RCU grace period).
//   * Writers buffer append/tombstone mutations (embedding happens at
//     append time, off the publish path) and publish() seals them into
//     a new immutable snapshot: the sealed delta becomes one more
//     exact-scan segment, tombstones flip bits in a copied dead bitmap,
//     and the epoch pointer swaps atomically.  Writers serialize on a
//     writer mutex that readers never touch.
//   * When the accumulated deltas + tombstones reach the compaction
//     threshold, publish() folds everything into one rebuilt base
//     segment (flat, or SQ8 via Sq8Index::add_batch — the quantized
//     tier's deterministic construction path), resetting ordinals and
//     clearing the dead bitmap.
//
// Exactness contract (the live analogue of the sharded scatter-gather
// argument, DESIGN.md §11/§14): every segment's per-query scores are
// exact fp16 kernel evaluations (FlatIndex rows, or the SQ8 rerank pass
// over the same bits), each segment is asked for k + dead_count rows so
// tombstone filtering can never evict a true top-k member, and the
// merge comparator is (score desc, live-ordinal asc) where ordinals
// increase in insertion order.  A from-scratch flat store built from
// the snapshot's live rows in ordinal order therefore returns
// bit-identical hits (ids, texts, scores) at every published epoch —
// for SQ8 bases whenever the candidate floor covers the base (the same
// coverage condition the quantized tier documents; flat bases always).
//
// Determinism: publish/compaction decisions are pure functions of the
// mutation sequence and config — no wall-clock, no thread-count
// dependence.  The simulated-time stamp on each snapshot is caller
// provided (the serving engine's simulated clock), never measured.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "embed/embedder.hpp"
#include "index/vector_index.hpp"
#include "index/vector_store.hpp"

namespace mcqa::serve {

struct LiveStoreConfig {
  /// Index kind the compacted base is rebuilt as: kFlat (always exact)
  /// or kSq8 (exact whenever min_candidates covers the base — the
  /// quantized tier's rerank-coverage condition).
  index::IndexKind compact_kind = index::IndexKind::kSq8;
  /// Fold deltas + tombstones into a rebuilt base when their combined
  /// count reaches this at publish time.  0 compacts on every publish.
  std::size_t compact_threshold = 256;
  /// Sq8Config knobs for the compacted base.
  std::size_t min_candidates = 64;
  std::size_t oversample = 4;
};

/// One immutable published epoch: a base segment, zero or more sealed
/// delta segments, and a dead bitmap over row ordinals.  Queries touch
/// only immutable state, so a snapshot can be shared by any number of
/// concurrent readers while later epochs are published.
class StoreSnapshot {
 public:
  std::uint64_t epoch() const { return epoch_; }
  /// Caller-supplied simulated publish instant (0 when unstamped);
  /// staleness of a query = its simulated time minus this.
  double published_at_ms() const { return published_at_ms_; }

  std::size_t rows() const { return total_rows_ - dead_count_; }
  std::size_t base_rows() const;
  std::size_t delta_rows() const { return total_rows_ - base_rows(); }
  std::size_t delta_segments() const { return deltas_.size(); }
  std::size_t tombstones() const { return dead_count_; }

  /// Exact top-k over the live rows: bit-identical to a from-scratch
  /// flat store of live_rows() under the coverage condition above.
  std::vector<index::Hit> query(std::string_view text, std::size_t k) const;
  std::vector<index::Hit> query_vector(const embed::Vector& v,
                                       std::size_t k) const;

  /// Tiled batch variant: every segment scans the whole batch in
  /// kTileQ query tiles (search_tiled) before the per-query dead-row
  /// filter + merge.  Entry i is bit-identical to query(texts[i], k) /
  /// query_vector(vs[i], k).
  std::vector<std::vector<index::Hit>> query_batch(
      const std::vector<std::string>& texts, std::size_t k) const;
  std::vector<std::vector<index::Hit>> query_vectors(
      const std::vector<embed::Vector>& vs, std::size_t k) const;

  /// Live (id, text) pairs in ordinal order — exactly the rows a
  /// from-scratch rebuild of this epoch would index, in order.
  std::vector<std::pair<std::string, std::string>> live_rows() const;

 private:
  friend class LiveStore;

  /// One immutable run of rows sharing a contiguous ordinal range.
  struct Segment {
    std::unique_ptr<const index::VectorIndex> index;
    std::vector<std::string> ids;
    std::vector<std::string> texts;
    std::size_t first_ordinal = 0;
    /// Widened copy of stored row `r` (fp16 bits -> float, exact).
    embed::Vector widen(std::size_t r) const;
  };

  const embed::Embedder* embedder_ = nullptr;
  std::uint64_t epoch_ = 0;
  double published_at_ms_ = 0.0;
  std::shared_ptr<const Segment> base_;
  std::vector<std::shared_ptr<const Segment>> deltas_;
  /// Dead bitmap indexed by ordinal (size total_rows_); copied on
  /// publish, never mutated after.
  std::shared_ptr<const std::vector<std::uint8_t>> dead_;
  std::size_t dead_count_ = 0;
  std::size_t total_rows_ = 0;
};

class LiveStore {
 public:
  LiveStore(const embed::Embedder& embedder, LiveStoreConfig config = {});
  /// Seed from a frozen store's rows (flat stores copy their fp16 rows
  /// without re-embedding; other kinds re-embed, which is pure).  The
  /// seed rows become epoch 1's base segment.
  LiveStore(const index::VectorStore& seed, LiveStoreConfig config = {});

  // --- write path (serialized on a writer mutex; never blocks readers) ------

  /// Buffer one row.  Appending an id that is already live upserts:
  /// the old row is tombstoned and the new one appended.
  void append(std::string id, std::string text);
  /// Buffer a tombstone.  False when `id` is not live.
  bool tombstone(std::string_view id);
  /// Seal buffered mutations into a new immutable snapshot and swap the
  /// epoch pointer.  `sim_now_ms` stamps the snapshot (simulated clock).
  /// Compacts when deltas + tombstones reach config.compact_threshold.
  /// Publishing with nothing buffered still advances the epoch.
  std::shared_ptr<const StoreSnapshot> publish(double sim_now_ms = 0.0);

  // --- read path (zero locks) -----------------------------------------------

  /// The current epoch's snapshot: one atomic load.  The returned
  /// snapshot stays valid for as long as the caller holds it, however
  /// many epochs are published meanwhile.
  std::shared_ptr<const StoreSnapshot> snapshot() const {
    return head_.load(std::memory_order_acquire);
  }

  std::uint64_t epoch() const {
    return epoch_hint_.load(std::memory_order_acquire);
  }
  /// Buffered mutations not yet published (staleness numerator).
  std::size_t pending() const {
    return pending_hint_.load(std::memory_order_acquire);
  }
  std::size_t compactions() const {
    return compactions_hint_.load(std::memory_order_acquire);
  }

  const embed::Embedder& embedder() const { return *embedder_; }
  const LiveStoreConfig& config() const { return config_; }

 private:
  std::shared_ptr<const StoreSnapshot> publish_locked(double sim_now_ms);
  std::shared_ptr<const StoreSnapshot> compact_locked(
      const StoreSnapshot& sealed, double sim_now_ms);
  std::unique_ptr<index::VectorIndex> make_base_index(
      std::size_t dim) const;

  const embed::Embedder* embedder_;
  LiveStoreConfig config_;

  mutable std::mutex writer_mu_;
  std::atomic<std::shared_ptr<const StoreSnapshot>> head_;
  // Writer-side state (guarded by writer_mu_).
  std::vector<std::string> pend_ids_;
  std::vector<std::string> pend_texts_;
  std::vector<embed::Vector> pend_vecs_;
  std::vector<std::size_t> pend_dead_;  ///< ordinals tombstoned since publish
  std::unordered_map<std::string, std::size_t> live_;  ///< id -> ordinal
  std::uint64_t compactions_ = 0;

  // Lock-free mirrors for monitoring (read path / metrics).
  std::atomic<std::uint64_t> epoch_hint_{0};
  std::atomic<std::size_t> pending_hint_{0};
  std::atomic<std::uint64_t> compactions_hint_{0};
};

}  // namespace mcqa::serve
