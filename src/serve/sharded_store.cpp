#include "serve/sharded_store.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "index/quantized.hpp"
#include "util/hash.hpp"

namespace mcqa::serve {

namespace {

std::unique_ptr<index::VectorIndex> make_shard_index(
    index::IndexKind kind, std::size_t dim) {
  switch (kind) {
    case index::IndexKind::kFlat:
      return std::make_unique<index::FlatIndex>(dim);
    case index::IndexKind::kSq8:
      return std::make_unique<index::Sq8Index>(dim);
    case index::IndexKind::kIvfPq: {
      // Serving shards probe every cell (nprobe clamps to nlist): the
      // memory win is the PQ codes, and full probing keeps candidate
      // coverage governed by the same min_candidates/oversample knob
      // as SQ8 instead of compounding with cell routing misses.
      index::IvfPqConfig cfg;
      cfg.nprobe = std::numeric_limits<std::size_t>::max();
      return std::make_unique<index::IvfPqIndex>(dim, cfg);
    }
    case index::IndexKind::kIvf:
    case index::IndexKind::kHnsw:
      break;
  }
  throw std::invalid_argument(
      "ShardedStore: shard kind must be flat, sq8 or ivfpq");
}

}  // namespace

std::size_t ShardedStore::shard_of(std::string_view id, std::size_t shards) {
  return shards <= 1 ? 0 : util::fnv1a64(id) % shards;
}

ShardedStore::ShardedStore(const index::VectorStore& base, std::size_t shards,
                           index::IndexKind shard_kind)
    : base_(&base), shard_kind_(shard_kind) {
  const std::size_t count = std::max<std::size_t>(1, shards);
  const std::size_t dim = base.embedder().dim();
  shards_.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    shards_.push_back(Shard{make_shard_index(shard_kind, dim), {}});
  }
  // Rows visit shards in ascending global order, so each shard's local
  // row order is the global order restricted to its rows — per-shard
  // tie-breaks (score desc, local row asc) agree with global ones.
  for (std::size_t row = 0; row < base.size(); ++row) {
    Shard& shard = shards_[shard_of(base.id_of(row), count)];
    shard.index->add(base.embedder().embed(base.text_of(row)));
    shard.global_rows.push_back(row);
  }
  // Quantized shards train/encode; a flat shard's build() is a no-op.
  for (Shard& shard : shards_) shard.index->build();
}

std::vector<index::Hit> ShardedStore::query(std::string_view text,
                                            std::size_t k) const {
  return query_vector(base_->embedder().embed(text), k);
}

namespace {

/// Exact merge: the comparator FlatIndex::search applies globally.
void sort_and_trim_merged(std::vector<index::SearchResult>& merged,
                          std::size_t k) {
  std::sort(merged.begin(), merged.end(),
            [](const index::SearchResult& a, const index::SearchResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.row < b.row;
            });
  if (merged.size() > k) merged.resize(k);
}

}  // namespace

std::vector<index::Hit> ShardedStore::query_vector(const embed::Vector& v,
                                                   std::size_t k) const {
  // Gather each shard's exact top-k with rows mapped back to global ids.
  std::vector<index::SearchResult> merged;
  merged.reserve(shards_.size() * k);
  for (const Shard& shard : shards_) {
    for (const auto& r : shard.index->search(v, k)) {
      merged.push_back(
          index::SearchResult{shard.global_rows[r.row], r.score});
    }
  }
  sort_and_trim_merged(merged, k);

  std::vector<index::Hit> hits;
  hits.reserve(merged.size());
  for (const auto& r : merged) {
    hits.push_back(index::Hit{base_->id_of(r.row), base_->text_of(r.row),
                              r.score});
  }
  return hits;
}

std::vector<std::vector<index::Hit>> ShardedStore::query_batch(
    const std::vector<std::string>& texts, std::size_t k) const {
  std::vector<embed::Vector> vs;
  vs.reserve(texts.size());
  for (const auto& text : texts) vs.push_back(base_->embedder().embed(text));
  return query_vectors(vs, k);
}

std::vector<std::vector<index::Hit>> ShardedStore::query_vectors(
    const std::vector<embed::Vector>& vs, std::size_t k) const {
  // Scatter: every shard scans the whole batch through its tiled path
  // (per-shard results are bit-identical to per-query search — the
  // tile-kernel contract), then each query merges exactly as in
  // query_vector.
  std::vector<std::vector<std::vector<index::SearchResult>>> per_shard;
  per_shard.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    per_shard.push_back(shard.index->search_tiled(vs, k));
  }

  std::vector<std::vector<index::Hit>> out(vs.size());
  std::vector<index::SearchResult> merged;
  for (std::size_t i = 0; i < vs.size(); ++i) {
    merged.clear();
    merged.reserve(shards_.size() * k);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      for (const auto& r : per_shard[s][i]) {
        merged.push_back(
            index::SearchResult{shards_[s].global_rows[r.row], r.score});
      }
    }
    sort_and_trim_merged(merged, k);
    out[i].reserve(merged.size());
    for (const auto& r : merged) {
      out[i].push_back(index::Hit{base_->id_of(r.row), base_->text_of(r.row),
                                  r.score});
    }
  }
  return out;
}

QueryRouter::QueryRouter(const rag::RetrievalStores& stores,
                         std::size_t shards)
    : shard_count_(std::max<std::size_t>(1, shards)) {
  if (stores.chunks != nullptr) {
    chunks_ = std::make_unique<ShardedStore>(*stores.chunks, shard_count_);
  }
  for (int m = 0; m < trace::kTraceModeCount; ++m) {
    if (stores.traces[static_cast<std::size_t>(m)] != nullptr) {
      traces_[static_cast<std::size_t>(m)] = std::make_unique<ShardedStore>(
          *stores.traces[static_cast<std::size_t>(m)], shard_count_);
    }
  }
}

std::size_t QueryRouter::lane_of(std::string_view request_id) const {
  return ShardedStore::shard_of(request_id, shard_count_);
}

std::size_t QueryRouter::lane_of(std::string_view key,
                                 std::uint64_t salt) const {
  if (salt == 0) return lane_of(key);  // bit-compatible with the unsalted map
  return static_cast<std::size_t>(
      util::hash_combine(salt, util::fnv1a64(key)) % shard_count_);
}

const ShardedStore* QueryRouter::store_for(rag::Condition condition) const {
  switch (condition) {
    case rag::Condition::kBaseline: return nullptr;
    case rag::Condition::kChunks: return chunks_.get();
    case rag::Condition::kTraceDetailed:
      return traces_[static_cast<std::size_t>(trace::TraceMode::kDetailed)]
          .get();
    case rag::Condition::kTraceFocused:
      return traces_[static_cast<std::size_t>(trace::TraceMode::kFocused)]
          .get();
    case rag::Condition::kTraceEfficient:
      return traces_[static_cast<std::size_t>(trace::TraceMode::kEfficient)]
          .get();
  }
  return nullptr;
}

std::vector<index::Hit> QueryRouter::query(rag::Condition condition,
                                           std::string_view text,
                                           std::size_t k) const {
  const ShardedStore* store = store_for(condition);
  return store == nullptr ? std::vector<index::Hit>{} : store->query(text, k);
}

std::vector<std::vector<index::Hit>> QueryRouter::query_batch(
    rag::Condition condition, const std::vector<std::string>& texts,
    std::size_t k) const {
  const ShardedStore* store = store_for(condition);
  if (store == nullptr) {
    return std::vector<std::vector<index::Hit>>(texts.size());
  }
  return store->query_batch(texts, k);
}

}  // namespace mcqa::serve
