#pragma once
// Deterministic online RAG query-serving engine.
//
// Turns the offline pipeline (stores + RagPipeline) into a query
// service: requests arrive on a synthetic trace, pass admission control
// (bounded queue with explicit shed accounting), micro-batch by
// size-or-deadline cutoff, fan out across worker slots, and produce
// assembled llm::McqTask results — with per-request deadlines, bounded
// retry on transient failure, and typed error results (a request is
// never dropped silently).
//
// Determinism contract (the Argo-proxy pattern, argo_proxy.hpp, scaled
// up to a full service): the engine separates a *simulated time plane*
// from an *execution plane*.
//
//   Time plane   — arrival times, per-stage service costs and transient
//                  failures are hash-derived from stable request ids; a
//                  single-threaded discrete-event loop replays
//                  admission, batching, list-scheduled worker slots,
//                  deadlines and retries on that simulated clock.
//                  Every latency number, queue decision and batch
//                  composition is a pure function of (config,
//                  workload), identical across runs and thread counts.
//
//   Execution    — the batches the time plane formed are pushed through
//   plane          a parallel::BoundedQueue and drained by pool
//                  workers, which run the *real* retrieval (sharded
//                  scatter-gather through QueryRouter) and assembly
//                  (RagPipeline::prepare_from_hits).  The pool changes
//                  only when work runs, never what it computes, so
//                  tasks are bit-identical at any thread count.
//
// This mirrors how the paper's batch proxy makes batching/retry logic
// testable without wall-clock sleeps, extended with the knobs an online
// front-end needs: shards, admission capacity, batch cutoff, deadlines.

#include <array>
#include <cstdint>
#include <deque>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "llm/model_spec.hpp"
#include "qgen/mcq_record.hpp"
#include "rag/rag_pipeline.hpp"
#include "serve/metrics.hpp"
#include "serve/sharded_store.hpp"

namespace mcqa::parallel {
class ThreadPool;
}

namespace mcqa::serve {

/// Terminal outcome of one request.  Exactly one per offered request.
enum class RequestStatus {
  kOk,        ///< task assembled within the deadline
  kRejected,  ///< shed at admission (queue at capacity)
  kExpired,   ///< deadline passed while queued or in service
  kFailed,    ///< transient failures exhausted the retry budget
};

std::string_view status_name(RequestStatus status);

/// Priority class: interactive traffic batches and drains ahead of
/// bulk/batch traffic (tighter cutoff and deadline, reserved slots).
enum class RequestClass { kInteractive, kBatch };

std::string_view class_name(RequestClass klass);

struct QueryRequest {
  std::string request_id;  ///< stable id; keys costs, failures, lanes
  std::size_t record = 0;  ///< index into the served record set
  rag::Condition condition = rag::Condition::kChunks;
  double arrival_ms = 0.0;  ///< simulated arrival (nondecreasing)
  RequestClass klass = RequestClass::kInteractive;
};

struct QueryResult {
  RequestStatus status = RequestStatus::kRejected;
  std::size_t attempts = 0;  ///< service attempts consumed
  std::size_t lane = 0;      ///< QueryRouter::lane_of(request_id)
  RequestClass klass = RequestClass::kInteractive;
  std::size_t replica = 0;  ///< replica whose dispatch won the final attempt
  bool hedged = false;      ///< final attempt launched a hedge
  // Simulated per-stage times of the final attempt (ms).
  double enqueue_wait_ms = 0.0;
  double embed_ms = 0.0;
  double retrieve_ms = 0.0;
  double assemble_ms = 0.0;
  /// Completion (or shed/expiry instant) minus arrival.
  double latency_ms = 0.0;
  /// Assembled task; meaningful only when status == kOk.
  llm::McqTask task;
};

struct ServeConfig {
  std::size_t shards = 4;
  std::size_t queue_capacity = 64;  ///< admission bound (waiting requests)
  std::size_t batch_max = 8;        ///< size cutoff
  double batch_cutoff_ms = 4.0;     ///< deadline cutoff from oldest waiting
  std::size_t workers = 4;          ///< simulated service slots
  double deadline_ms = 250.0;       ///< per-request, from arrival
  std::size_t max_retries = 1;      ///< per request, after the first attempt
  /// P(attempt fails transiently); hash-resolved per (id, attempt).
  double transient_failure_rate = 0.0;
  double backoff_base_ms = 2.0;  ///< retry k backs off base * 2^(k-1)

  // Simulated per-stage cost model (ms).  Retrieval models a parallel
  // scan of this condition's shard partition plus a merge that grows
  // with shard count — so the shard sweep trades scan time against
  // merge overhead.
  double batch_overhead_ms = 0.6;
  double embed_base_ms = 0.08;
  double embed_jitter_ms = 0.06;
  double retrieve_scan_ms_per_kilorow = 0.9;
  double retrieve_merge_ms_per_shard = 0.05;
  double retrieve_jitter_ms = 0.2;
  double assemble_base_ms = 0.25;
  double assemble_jitter_ms = 0.2;

  // --- live tier: replicas + hedged requests ---------------------------------
  // Each replica is an independent group of `workers` slots serving the
  // same snapshot.  Slowdowns/failures are injected per (replica,
  // request) from hash probes, so a hedge to a second replica sees
  // independent tail behavior — the hedging win the bench measures.
  std::size_t replicas = 1;
  /// Duplicate a dispatched batch to a second replica once the primary
  /// has not answered by the hedge delay; first completion wins and the
  /// loser is cancelled (its slot frees at the winner's instant).
  /// Needs replicas >= 2.
  bool hedge = false;
  /// Hedge delay; < 0 derives it as hedge_delay_quantile of the
  /// workload's nominal per-request service cost (the classic
  /// "hedge at p95" policy, computed deterministically).
  double hedge_delay_ms = -1.0;
  double hedge_delay_quantile = 0.95;
  /// P(batch dispatch on a replica is slowed / hard-fails); resolved
  /// per (replica, request id) and aggregated per batch (any member
  /// firing afflicts the whole dispatch).
  double replica_slow_rate = 0.0;
  double replica_slow_factor = 4.0;  ///< service multiplier when slow
  double replica_failure_rate = 0.0;

  // --- live tier: priority lanes ---------------------------------------------
  // Interactive and batch-class requests never share a micro-batch.
  // Interactive batches may use every slot; batch-class dispatches only
  // the non-reserved tail, so a saturating batch lane cannot occupy the
  // slots interactive tails depend on.
  std::size_t reserved_interactive_slots = 0;  ///< per replica, clamped < workers
  double interactive_deadline_ms = -1.0;  ///< < 0: deadline_ms
  double batch_deadline_ms = -1.0;        ///< < 0: 4 * deadline_ms
  double batch_lane_cutoff_ms = -1.0;     ///< < 0: 4 * batch_cutoff_ms
  /// Admission for batch-class requests sheds above this fraction of
  /// queue_capacity (interactive uses the full capacity).
  double batch_admission_fraction = 0.5;

  // --- live tier: shard heat -------------------------------------------------
  /// Serviced-request window for heat tracking; 0 disables.  When one
  /// salted record-lane exceeds heat_imbalance x the window mean, the
  /// lane salt bumps deterministically (metrics.rebalances) and the
  /// window restarts — the hook a deployment would use to migrate
  /// shard ownership.  Keep heat_imbalance < shards: the hottest lane
  /// can carry at most shards x the mean.
  std::size_t heat_window = 0;
  double heat_imbalance = 2.0;

  std::uint64_t seed = 0x5e59eULL;
};

struct WorkloadConfig {
  std::size_t requests = 512;
  double offered_qps = 400.0;  ///< mean arrival rate (exponential gaps)
  /// Condition mix, indexed by rag::Condition.
  std::array<double, rag::kConditionCount> condition_weights{
      0.10, 0.40, 0.20, 0.15, 0.15};
  /// Fraction of requests in the interactive class.  Drawn from a
  /// stream independent of the arrival/record/condition draws, so 1.0
  /// (the default) reproduces the pre-lane workloads bit-for-bit.
  double interactive_fraction = 1.0;
  /// Fraction of requests redirected to record 0 (a hot key) — the
  /// skew that drives shard-heat rebalancing.  Independent stream; 0.0
  /// leaves the record picks untouched.
  double hot_fraction = 0.0;
  std::uint64_t seed = 0x10ad5ULL;
};

/// Deterministic synthetic request trace: exponential inter-arrivals at
/// offered_qps; record and condition hash-picked per request index from
/// forked Rng streams.  `records` is the size of the served record set.
std::vector<QueryRequest> synth_workload(const WorkloadConfig& config,
                                         std::size_t records);

/// Bounded-queue admission with explicit shed accounting.  Decisions
/// are a pure function of the simulated queue occupancy (requests
/// waiting to batch plus batched requests still waiting for a worker
/// slot), so the admitted/shed split is deterministic.
class AdmissionController {
 public:
  explicit AdmissionController(std::size_t capacity) : capacity_(capacity) {}

  /// Admit when occupancy `waiting` is under capacity; otherwise count
  /// a shed.
  bool try_admit(std::size_t waiting) { return try_admit(waiting, capacity_); }

  /// Class-capped admission: the batch lane admits against a lower
  /// effective capacity so bulk traffic cannot fill the whole queue.
  bool try_admit(std::size_t waiting, std::size_t capacity) {
    if (waiting >= capacity) {
      ++shed_;
      return false;
    }
    ++admitted_;
    return true;
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t admitted() const { return admitted_; }
  std::size_t shed() const { return shed_; }

 private:
  std::size_t capacity_;
  std::size_t admitted_ = 0;
  std::size_t shed_ = 0;
};

/// Size-or-deadline micro-batching over a simulated clock: a batch
/// forms the moment batch_max requests wait, or when the oldest waiting
/// request has waited cutoff_ms.
class MicroBatcher {
 public:
  struct Item {
    std::size_t req = 0;      ///< request index
    std::size_t attempt = 0;  ///< 0-based service attempt
    double ready_ms = 0.0;    ///< arrival, or retry-backoff expiry
  };

  MicroBatcher(std::size_t batch_max, double cutoff_ms)
      : batch_max_(std::max<std::size_t>(1, batch_max)),
        cutoff_ms_(cutoff_ms) {}

  /// Items must arrive in nondecreasing ready_ms order (the event loop
  /// guarantees it).
  void push(Item item) { waiting_.push_back(item); }

  std::size_t waiting() const { return waiting_.size(); }
  std::size_t batch_max() const { return batch_max_; }
  bool size_ready() const { return waiting_.size() >= batch_max_; }

  /// Simulated instant the oldest waiting item forces a flush;
  /// +infinity when nothing waits.
  double cutoff_at() const {
    return waiting_.empty() ? std::numeric_limits<double>::infinity()
                            : waiting_.front().ready_ms + cutoff_ms_;
  }

  /// Pop the up-to-batch_max oldest waiting items.
  std::vector<Item> take_batch();

 private:
  std::size_t batch_max_;
  double cutoff_ms_;
  std::deque<Item> waiting_;
};

class QueryEngine {
 public:
  /// `stores` must outlive the engine (shards reference their base
  /// stores); `rag` assembles tasks from the sharded hits.
  QueryEngine(const rag::RagPipeline& rag, const rag::RetrievalStores& stores,
              const llm::ModelSpec& spec, ServeConfig config = {});

  /// Serve `requests` against `records`.  Result i corresponds to
  /// requests[i].  Metrics, statuses and all simulated timings are
  /// identical across runs and pool thread counts; tasks are
  /// bit-identical to RagPipeline::prepare for the same (record,
  /// condition, spec).
  std::vector<QueryResult> serve(const std::vector<qgen::McqRecord>& records,
                                 const std::vector<QueryRequest>& requests,
                                 parallel::ThreadPool& pool,
                                 ServerMetrics* metrics = nullptr) const;

  /// Serve on the process-wide default pool.
  std::vector<QueryResult> serve(const std::vector<qgen::McqRecord>& records,
                                 const std::vector<QueryRequest>& requests,
                                 ServerMetrics* metrics = nullptr) const;

  const ServeConfig& config() const { return config_; }
  const QueryRouter& router() const { return router_; }

  /// Hash-derived per-request simulated stage costs (ms).  Public so
  /// tests can reconstruct expected latencies.
  double embed_cost_ms(const QueryRequest& request) const;
  double retrieve_cost_ms(const QueryRequest& request) const;
  double assemble_cost_ms(const QueryRequest& request) const;
  /// Does attempt `attempt` (0-based) of `request_id` fail transiently?
  bool attempt_fails(std::string_view request_id, std::size_t attempt) const;

  /// Hash-derived per-(replica, request) injections — public so tests
  /// can reconstruct hedge outcomes.
  bool replica_slow(std::size_t replica, std::string_view request_id) const;
  bool replica_fails(std::size_t replica, std::string_view request_id) const;
  /// Effective per-class deadline (resolves the < 0 defaults).
  double deadline_ms_for(RequestClass klass) const;
  /// Effective hedge delay: config value, or the configured quantile of
  /// the workload's nominal service costs when hedge_delay_ms < 0.
  double hedge_delay_for(const std::vector<QueryRequest>& requests) const;

 private:
  struct BatchExec;

  /// The single-threaded discrete-event time plane: fills statuses and
  /// timings in `results`, aggregates `metrics`, and returns the batch
  /// plan (members whose succeeding attempt each batch carries) for the
  /// execution plane.
  std::vector<BatchExec> simulate(
      const std::vector<QueryRequest>& requests,
      std::vector<QueryResult>& results, ServerMetrics& metrics) const;

  double jitter(std::string_view request_id, std::string_view stage,
                double amplitude) const;

  const rag::RagPipeline* rag_;
  llm::ModelSpec spec_;
  ServeConfig config_;
  QueryRouter router_;
};

}  // namespace mcqa::serve
