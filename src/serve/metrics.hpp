#pragma once
// Per-stage serving metrics: counters for every terminal request
// outcome (nothing is dropped silently — every offered request lands in
// exactly one of completed/rejected/expired/failed) and latency
// histograms with exact tail quantiles per pipeline stage.
//
// Because the engine runs on a simulated clock (see engine.hpp), every
// number in a snapshot is deterministic: identical across runs and
// thread counts for a given config + workload.  Snapshots drain to JSON
// for dashboards and the BENCH_serve.json trajectory file.

#include <cstddef>
#include <vector>

#include "json/json.hpp"
#include "util/histogram.hpp"

namespace mcqa::serve {

/// Latency histogram for one pipeline stage.  The fixed-bin histogram
/// gives the shape; p50/p95/p99 come from util::Histogram's exact
/// (retained-sample) quantiles, since bin-midpoint rounding would swamp
/// tail differences.
class StageMetrics {
 public:
  explicit StageMetrics(double hi_ms = 1000.0)
      : histogram_(0.0, hi_ms, 64) {}

  void add(double ms) { histogram_.add(ms); }

  std::size_t count() const { return histogram_.total(); }
  double mean() const { return histogram_.stats().mean(); }
  double max() const {
    return histogram_.total() == 0 ? 0.0 : histogram_.stats().max();
  }
  double p50() const { return histogram_.p50(); }
  double p95() const { return histogram_.p95(); }
  double p99() const { return histogram_.p99(); }
  /// The live-serving headline tail (nearest-rank; the max until the
  /// stage has 1000 samples).
  double p999() const { return histogram_.p999(); }
  const util::Histogram& histogram() const { return histogram_; }

  /// {count, mean_ms, p50_ms, p95_ms, p99_ms, p999_ms, max_ms}.
  json::Value to_json() const;

 private:
  util::Histogram histogram_;
};

/// One engine run's aggregate accounting.  All rate accessors return
/// 0.0 (never NaN/inf) on empty stats.
struct ServerMetrics {
  ServerMetrics() = default;
  /// `latency_hi_ms` bounds the histogram bin range (exact quantiles are
  /// unaffected); `workers` feeds utilization().
  ServerMetrics(double latency_hi_ms, std::size_t workers);

  // --- terminal outcome counters (partition `offered`) -----------------------
  std::size_t offered = 0;
  std::size_t completed = 0;  ///< answered within deadline
  std::size_t rejected = 0;   ///< shed at admission (queue full)
  std::size_t expired = 0;    ///< deadline passed (queued or in service)
  std::size_t failed = 0;     ///< transient failures exhausted retries

  // --- flow counters ---------------------------------------------------------
  std::size_t admitted = 0;   ///< passed admission (incl. retry re-entries)
  std::size_t serviced = 0;   ///< attempts that reached a worker slot
  std::size_t retries = 0;    ///< re-enqueued attempts
  std::size_t batches = 0;
  /// Serviced attempts per shard lane (QueryRouter request hash).
  std::vector<std::size_t> lane_serviced;

  // --- live tier (replicas, hedging, heat) -----------------------------------
  /// Every launched hedge terminates in exactly one bucket:
  /// hedges == hedge_wins + hedge_cancels + hedge_failed.
  std::size_t hedges = 0;        ///< duplicate dispatches launched
  std::size_t hedge_wins = 0;    ///< hedge completed first (primary cancelled)
  std::size_t hedge_cancels = 0; ///< primary completed first (hedge cancelled)
  std::size_t hedge_failed = 0;  ///< both paths failed; batch fell to retry
  std::size_t replica_slow = 0;      ///< batch dispatches hit by slowdown
  std::size_t replica_failures = 0;  ///< batch dispatches hit by hard failure
  std::size_t rebalances = 0;        ///< heat-triggered lane-salt bumps
  /// Serviced attempts per replica (winning path for hedged batches).
  std::vector<std::size_t> replica_serviced;

  // --- simulated time --------------------------------------------------------
  double makespan_ms = 0.0;  ///< last batch completion
  double busy_ms = 0.0;      ///< total service time across slots
  std::size_t workers = 0;

  // --- per-stage latency -----------------------------------------------------
  StageMetrics enqueue_wait{2000.0};
  StageMetrics embed{50.0};
  StageMetrics retrieve{200.0};
  StageMetrics assemble{50.0};
  /// End-to-end latency (completion - arrival) of every request whose
  /// final attempt was dispatched; rejected requests contribute nothing.
  StageMetrics latency{5000.0};
  /// The same universe as `latency`, split by priority class — the
  /// interactive-isolation shape check reads interactive_latency.p99().
  StageMetrics interactive_latency{5000.0};
  StageMetrics batch_latency{5000.0};
  /// Requests per formed batch.
  StageMetrics batch_fill{256.0};

  // --- rates (0.0 on empty, never NaN/inf) -----------------------------------
  double completion_rate() const;
  double shed_rate() const;
  double expiry_rate() const;
  double failure_rate() const;
  double retry_rate() const;       ///< retries / serviced attempts
  double mean_batch_fill() const;  ///< serviced / batches
  double throughput_qps() const;   ///< completed per simulated second
  double utilization() const;      ///< busy / (workers * makespan)

  /// Drain the whole snapshot (counters, rates, per-stage quantiles).
  json::Value to_json() const;
};

}  // namespace mcqa::serve
