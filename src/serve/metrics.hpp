#pragma once
// Per-stage serving metrics: counters for every terminal request
// outcome (nothing is dropped silently — every offered request lands in
// exactly one of completed/rejected/expired/failed) and latency
// histograms with exact tail quantiles per pipeline stage.
//
// Because the engine runs on a simulated clock (see engine.hpp), every
// number in a snapshot is deterministic: identical across runs and
// thread counts for a given config + workload.  Snapshots drain to JSON
// for dashboards and the BENCH_serve.json trajectory file.

#include <cstddef>
#include <vector>

#include "json/json.hpp"
#include "util/histogram.hpp"

namespace mcqa::serve {

/// Latency histogram for one pipeline stage.  The fixed-bin histogram
/// gives the shape; p50/p95/p99 come from util::Histogram's exact
/// (retained-sample) quantiles, since bin-midpoint rounding would swamp
/// tail differences.
class StageMetrics {
 public:
  explicit StageMetrics(double hi_ms = 1000.0)
      : histogram_(0.0, hi_ms, 64) {}

  void add(double ms) { histogram_.add(ms); }

  std::size_t count() const { return histogram_.total(); }
  double mean() const { return histogram_.stats().mean(); }
  double max() const {
    return histogram_.total() == 0 ? 0.0 : histogram_.stats().max();
  }
  double p50() const { return histogram_.p50(); }
  double p95() const { return histogram_.p95(); }
  double p99() const { return histogram_.p99(); }
  const util::Histogram& histogram() const { return histogram_; }

  /// {count, mean_ms, p50_ms, p95_ms, p99_ms, max_ms}.
  json::Value to_json() const;

 private:
  util::Histogram histogram_;
};

/// One engine run's aggregate accounting.  All rate accessors return
/// 0.0 (never NaN/inf) on empty stats.
struct ServerMetrics {
  ServerMetrics() = default;
  /// `latency_hi_ms` bounds the histogram bin range (exact quantiles are
  /// unaffected); `workers` feeds utilization().
  ServerMetrics(double latency_hi_ms, std::size_t workers);

  // --- terminal outcome counters (partition `offered`) -----------------------
  std::size_t offered = 0;
  std::size_t completed = 0;  ///< answered within deadline
  std::size_t rejected = 0;   ///< shed at admission (queue full)
  std::size_t expired = 0;    ///< deadline passed (queued or in service)
  std::size_t failed = 0;     ///< transient failures exhausted retries

  // --- flow counters ---------------------------------------------------------
  std::size_t admitted = 0;   ///< passed admission (incl. retry re-entries)
  std::size_t serviced = 0;   ///< attempts that reached a worker slot
  std::size_t retries = 0;    ///< re-enqueued attempts
  std::size_t batches = 0;
  /// Serviced attempts per shard lane (QueryRouter request hash).
  std::vector<std::size_t> lane_serviced;

  // --- simulated time --------------------------------------------------------
  double makespan_ms = 0.0;  ///< last batch completion
  double busy_ms = 0.0;      ///< total service time across slots
  std::size_t workers = 0;

  // --- per-stage latency -----------------------------------------------------
  StageMetrics enqueue_wait{2000.0};
  StageMetrics embed{50.0};
  StageMetrics retrieve{200.0};
  StageMetrics assemble{50.0};
  /// End-to-end latency (completion - arrival) of every request whose
  /// final attempt was dispatched; rejected requests contribute nothing.
  StageMetrics latency{5000.0};
  /// Requests per formed batch.
  StageMetrics batch_fill{256.0};

  // --- rates (0.0 on empty, never NaN/inf) -----------------------------------
  double completion_rate() const;
  double shed_rate() const;
  double expiry_rate() const;
  double failure_rate() const;
  double retry_rate() const;       ///< retries / serviced attempts
  double mean_batch_fill() const;  ///< serviced / batches
  double throughput_qps() const;   ///< completed per simulated second
  double utilization() const;      ///< busy / (workers * makespan)

  /// Drain the whole snapshot (counters, rates, per-stage quantiles).
  json::Value to_json() const;
};

}  // namespace mcqa::serve
