#include "trace/trace_record.hpp"

#include <stdexcept>

namespace mcqa::trace {

std::string_view trace_mode_name(TraceMode mode) {
  switch (mode) {
    case TraceMode::kDetailed: return "detailed";
    case TraceMode::kFocused: return "focused";
    case TraceMode::kEfficient: return "efficient";
  }
  return "unknown";
}

TraceMode trace_mode_from_name(std::string_view name) {
  if (name == "detailed") return TraceMode::kDetailed;
  if (name == "focused") return TraceMode::kFocused;
  if (name == "efficient") return TraceMode::kEfficient;
  throw std::invalid_argument("unknown trace mode: " + std::string(name));
}

namespace {

json::Value prediction_to_json(const Prediction& p) {
  json::Value v = json::Value::object();
  v["predicted_answer"] = p.predicted_answer;
  v["prediction_reasoning"] = p.prediction_reasoning;
  v["confidence_level"] = p.confidence_level;
  v["confidence_explanation"] = p.confidence_explanation;
  return v;
}

Prediction prediction_from_json(const json::Value& v) {
  Prediction p;
  p.predicted_answer = v.get_or("predicted_answer", "");
  p.prediction_reasoning = v.get_or("prediction_reasoning", "");
  p.confidence_level = v.get_or("confidence_level", "");
  p.confidence_explanation = v.get_or("confidence_explanation", "");
  return p;
}

json::Array strings_to_json(const std::vector<std::string>& xs) {
  json::Array arr;
  for (const auto& x : xs) arr.emplace_back(x);
  return arr;
}

std::vector<std::string> strings_from_json(const json::Value* v) {
  std::vector<std::string> out;
  if (v == nullptr || !v->is_array()) return out;
  for (const auto& x : v->as_array()) out.push_back(x.as_string());
  return out;
}

}  // namespace

json::Value TraceRecord::to_json() const {
  json::Value v = json::Value::object();
  v["trace_id"] = trace_id;
  v["question"] = question;
  v["context"] = context;
  v["options"] = json::Value(strings_to_json(options));
  v["correct_answer_index"] = correct_answer_index;
  v["correct_answer"] = correct_answer;
  v["source_record_id"] = source_record_id;

  json::Value reasoning = json::Value::object();
  reasoning["mode"] = std::string(trace_mode_name(mode));
  switch (mode) {
    case TraceMode::kDetailed: {
      json::Value tp = json::Value::object();
      for (std::size_t i = 0; i < thought_process.size(); ++i) {
        tp["option_" + std::to_string(i + 1)] = thought_process[i];
      }
      reasoning["thought_process"] = std::move(tp);
      reasoning["prediction"] = prediction_to_json(prediction);
      reasoning["scientific_conclusion"] = scientific_conclusion;
      break;
    }
    case TraceMode::kFocused: {
      reasoning["key_principle"] = key_principle;
      json::Value qe = json::Value::object();
      qe["dismissed_options"] = json::Value(strings_to_json(dismissed_options));
      qe["reasoning"] = quick_elimination_reasoning;
      reasoning["quick_elimination"] = std::move(qe);
      json::Value fa = json::Value::object();
      fa["viable_options"] = json::Value(strings_to_json(viable_options));
      fa["detailed_reasoning"] = focused_detailed_reasoning;
      reasoning["focused_analysis"] = std::move(fa);
      reasoning["prediction"] = prediction_to_json(prediction);
      reasoning["scientific_conclusion"] = scientific_conclusion;
      break;
    }
    case TraceMode::kEfficient: {
      reasoning["quick_analysis"] = quick_analysis;
      reasoning["elimination"] = elimination;
      reasoning["prediction"] = prediction_to_json(prediction);
      break;
    }
  }
  v["reasoning"] = std::move(reasoning);

  if (has_grading) {
    json::Value g = json::Value::object();
    g["is_correct"] = grading.is_correct;
    g["confidence"] = grading.confidence;
    g["reasoning"] = grading.reasoning;
    g["extracted_option_number"] = grading.extracted_option_number;
    g["correct_option_number"] = grading.correct_option_number;
    v["grading_result"] = std::move(g);
  }
  return v;
}

TraceRecord TraceRecord::from_json(const json::Value& v) {
  TraceRecord t;
  t.trace_id = v.get_or("trace_id", "");
  t.question = v.get_or("question", "");
  t.context = v.get_or("context", "");
  t.options = strings_from_json(v.as_object().find("options"));
  t.correct_answer_index =
      static_cast<int>(v.get_or("correct_answer_index", std::int64_t{-1}));
  t.correct_answer = v.get_or("correct_answer", "");
  t.source_record_id = v.get_or("source_record_id", "");

  if (const auto* reasoning = v.as_object().find("reasoning")) {
    t.mode = trace_mode_from_name(reasoning->get_or("mode", "detailed"));
    if (const auto* tp = reasoning->as_object().find("thought_process")) {
      for (std::size_t i = 1;; ++i) {
        const auto* opt = tp->as_object().find("option_" + std::to_string(i));
        if (opt == nullptr) break;
        t.thought_process.push_back(opt->as_string());
      }
    }
    t.scientific_conclusion = reasoning->get_or("scientific_conclusion", "");
    t.key_principle = reasoning->get_or("key_principle", "");
    if (const auto* qe = reasoning->as_object().find("quick_elimination")) {
      t.dismissed_options =
          strings_from_json(qe->as_object().find("dismissed_options"));
      t.quick_elimination_reasoning = qe->get_or("reasoning", "");
    }
    if (const auto* fa = reasoning->as_object().find("focused_analysis")) {
      t.viable_options =
          strings_from_json(fa->as_object().find("viable_options"));
      t.focused_detailed_reasoning = fa->get_or("detailed_reasoning", "");
    }
    t.quick_analysis = reasoning->get_or("quick_analysis", "");
    t.elimination = reasoning->get_or("elimination", "");
    if (const auto* pred = reasoning->as_object().find("prediction")) {
      t.prediction = prediction_from_json(*pred);
    }
  }

  if (const auto* g = v.as_object().find("grading_result")) {
    t.has_grading = true;
    t.grading.is_correct = g->get_or("is_correct", false);
    t.grading.confidence = g->get_or("confidence", 0.0);
    t.grading.reasoning = g->get_or("reasoning", "");
    t.grading.extracted_option_number =
        static_cast<int>(g->get_or("extracted_option_number", std::int64_t{-1}));
    t.grading.correct_option_number =
        static_cast<int>(g->get_or("correct_option_number", std::int64_t{-1}));
  }
  return t;
}

std::string TraceRecord::retrieval_text() const {
  // Everything reasoning-bearing, nothing answer-bearing: the question
  // restated plus the mode's analysis sections.  The prediction block,
  // correct_answer and correct_answer_index never appear here.
  std::string out = question;
  out += "\n";
  switch (mode) {
    case TraceMode::kDetailed:
      for (std::size_t i = 0; i < thought_process.size(); ++i) {
        out += "Option " + std::to_string(i + 1) + ": " + thought_process[i] +
               "\n";
      }
      out += scientific_conclusion;
      break;
    case TraceMode::kFocused:
      out += "Key principle: " + key_principle + "\n";
      if (!dismissed_options.empty()) {
        out += "Quickly dismissed: ";
        for (std::size_t i = 0; i < dismissed_options.size(); ++i) {
          if (i != 0) out += "; ";
          out += dismissed_options[i];
        }
        out += ". " + quick_elimination_reasoning + "\n";
      }
      out += focused_detailed_reasoning + "\n";
      out += scientific_conclusion;
      break;
    case TraceMode::kEfficient:
      out += quick_analysis + "\n";
      out += elimination;
      break;
  }
  return out;
}

}  // namespace mcqa::trace
