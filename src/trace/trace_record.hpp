#pragma once
// Reasoning-trace record: the paper's Fig. 3 JSON schema.
//
// Three modes are generated simultaneously for every benchmark question
// and stored in *separate* retrieval databases:
//   detailed  — option-by-option thought process
//   focused   — key principle + quick elimination + focused analysis
//   efficient — compact high-level analysis
// The prediction block exists in the record but is EXCLUDED from the
// retrieval text (the paper withholds final answers to prevent leakage).

#include <string>
#include <vector>

#include "json/json.hpp"

namespace mcqa::trace {

enum class TraceMode { kDetailed, kFocused, kEfficient };
constexpr int kTraceModeCount = 3;

std::string_view trace_mode_name(TraceMode mode);
TraceMode trace_mode_from_name(std::string_view name);

struct Prediction {
  std::string predicted_answer;
  std::string prediction_reasoning;
  std::string confidence_level;  ///< "high" | "medium" | "low"
  std::string confidence_explanation;
};

struct GradingResult {
  bool is_correct = false;
  double confidence = 0.0;
  std::string reasoning;
  int extracted_option_number = -1;  ///< 1-based, per the schema
  int correct_option_number = -1;
};

struct TraceRecord {
  // Common header (Fig. 3).
  std::string trace_id;
  std::string question;  ///< full stem (choices embedded allowed)
  std::string context;   ///< optional source chunk
  std::vector<std::string> options;
  int correct_answer_index = -1;  ///< 0-based integer per the schema
  std::string correct_answer;

  TraceMode mode = TraceMode::kDetailed;

  // detailed
  std::vector<std::string> thought_process;  ///< option_1..N analyses
  std::string scientific_conclusion;

  // focused
  std::string key_principle;
  std::vector<std::string> dismissed_options;
  std::string quick_elimination_reasoning;
  std::vector<std::string> viable_options;
  std::string focused_detailed_reasoning;

  // efficient
  std::string quick_analysis;
  std::string elimination;

  Prediction prediction;
  bool has_grading = false;
  GradingResult grading;

  /// Source question's record id (provenance back to Fig. 2 records).
  std::string source_record_id;

  json::Value to_json() const;
  static TraceRecord from_json(const json::Value& v);

  /// The text stored in the retrieval database: all reasoning content
  /// for the mode, with the prediction/answer withheld.
  std::string retrieval_text() const;
};

}  // namespace mcqa::trace
