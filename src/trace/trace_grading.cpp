#include "trace/trace_grading.hpp"

#include <algorithm>

#include "text/normalize.hpp"
#include "util/strings.hpp"

namespace mcqa::trace {

void grade_trace(TraceRecord& trace) {
  GradingResult g;
  g.correct_option_number = trace.correct_answer_index + 1;

  // Match the predicted answer text back to an option (the judge's
  // option-matching discipline, applied to the teacher's own output).
  const std::string pred_norm =
      text::normalize_for_matching(trace.prediction.predicted_answer);
  int extracted = -1;
  double best_sim = 0.80;
  for (std::size_t i = 0; i < trace.options.size(); ++i) {
    const std::string opt_norm =
        text::normalize_for_matching(trace.options[i]);
    if (opt_norm.empty()) continue;
    if (opt_norm == pred_norm) {
      extracted = static_cast<int>(i);
      break;
    }
    const double sim = util::string_similarity(opt_norm, pred_norm);
    if (sim > best_sim) {
      best_sim = sim;
      extracted = static_cast<int>(i);
    }
  }

  g.extracted_option_number = extracted >= 0 ? extracted + 1 : -1;
  g.is_correct = extracted == trace.correct_answer_index;
  g.confidence = extracted >= 0 ? 0.95 : 0.2;
  g.reasoning = g.is_correct
                    ? "prediction matches the keyed option"
                    : (extracted < 0
                           ? "prediction could not be matched to an option"
                           : "prediction names a different option");
  trace.grading = g;
  trace.has_grading = true;
}

TraceGradingStats grade_all(std::vector<TraceRecord>& traces) {
  TraceGradingStats stats;
  for (auto& t : traces) {
    grade_trace(t);
    ++stats.graded;
    stats.correct += t.grading.is_correct ? 1 : 0;
  }
  return stats;
}

std::size_t filter_incorrect(std::vector<TraceRecord>& traces) {
  const std::size_t before = traces.size();
  traces.erase(std::remove_if(traces.begin(), traces.end(),
                              [](const TraceRecord& t) {
                                return t.has_grading && !t.grading.is_correct;
                              }),
               traces.end());
  return before - traces.size();
}

}  // namespace mcqa::trace
