#include "trace/trace_generator.hpp"

#include "parallel/thread_pool.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace mcqa::trace {

TraceGenerator::TraceGenerator(const llm::TeacherModel& teacher,
                               TraceGenConfig config)
    : teacher_(teacher), config_(config) {}

TraceRecord TraceGenerator::generate(const qgen::McqRecord& record,
                                     TraceMode mode) const {
  util::Rng rng(util::hash_combine(config_.seed,
                                   util::fnv1a64(record.record_id)),
                static_cast<std::uint64_t>(mode) * 2 + 1);

  // Reconstruct the teacher's draft view of this record for dismissal
  // phrasing.
  llm::McqDraft draft;
  draft.stem = record.stem;
  draft.options = record.options;
  draft.correct_index = record.correct_index;
  draft.fact = record.fact;
  draft.math = record.math;
  draft.key_principle = record.key_principle;

  TraceRecord t;
  t.trace_id = "t_" + std::string(trace_mode_name(mode)) + "_" +
               record.record_id;
  t.question = record.question;
  t.context = "";  // the trace prompt is context-free in the paper
  t.options = record.options;
  t.correct_answer_index = record.correct_index;
  t.correct_answer = record.answer;
  t.mode = mode;
  t.source_record_id = record.record_id;

  const std::string explanation = teacher_.explain_fact(record.fact);
  const std::string principle = record.key_principle.empty()
                                    ? explanation
                                    : record.key_principle;

  // Prediction block (kept in the JSON record; excluded from retrieval).
  t.prediction.predicted_answer = record.answer;
  t.prediction.prediction_reasoning =
      "The analysis above points to this option.";
  t.prediction.confidence_level = record.math ? "medium" : "high";
  t.prediction.confidence_explanation =
      record.math ? "The numeric computation admits arithmetic slips."
                  : "The underlying relationship is well established.";

  switch (mode) {
    case TraceMode::kDetailed: {
      t.thought_process.resize(record.options.size());
      for (std::size_t i = 0; i < record.options.size(); ++i) {
        if (static_cast<int>(i) == record.correct_index) {
          t.thought_process[i] =
              record.options[i] + " aligns with the principle: " + principle;
        } else {
          t.thought_process[i] =
              teacher_.dismiss_option(draft, static_cast<int>(i));
        }
      }
      t.scientific_conclusion =
          "Synthesis: " + explanation +
          " Option-level analysis identifies a single candidate consistent "
          "with this mechanism.";
      break;
    }
    case TraceMode::kFocused: {
      t.key_principle = principle;
      // Dismiss 3-4 of the wrong options quickly; the rest stay viable.
      std::vector<int> wrong;
      for (std::size_t i = 0; i < record.options.size(); ++i) {
        if (static_cast<int>(i) != record.correct_index) {
          wrong.push_back(static_cast<int>(i));
        }
      }
      rng.shuffle(wrong);
      const std::size_t dismiss_count =
          wrong.size() <= 2 ? wrong.size()
                            : 3 + rng.bounded(static_cast<std::uint32_t>(
                                      std::min<std::size_t>(2, wrong.size() - 3) +
                                      1));
      for (std::size_t i = 0; i < dismiss_count && i < wrong.size(); ++i) {
        t.dismissed_options.push_back(
            record.options[static_cast<std::size_t>(wrong[i])]);
      }
      t.quick_elimination_reasoning =
          "These options contradict the key principle or are numerically "
          "implausible.";
      t.viable_options.push_back(
          record.options[static_cast<std::size_t>(record.correct_index)]);
      for (std::size_t i = dismiss_count; i < wrong.size() &&
           t.viable_options.size() < 3; ++i) {
        t.viable_options.push_back(
            record.options[static_cast<std::size_t>(wrong[i])]);
      }
      t.focused_detailed_reasoning =
          "Weighing the viable options against the principle: " + explanation;
      t.scientific_conclusion =
          "The remaining analysis narrows to the option consistent with "
          "the stated principle.";
      break;
    }
    case TraceMode::kEfficient: {
      t.quick_analysis = principle;
      t.elimination =
          "Most options are inconsistent with this principle and can be "
          "set aside directly.";
      break;
    }
  }
  return t;
}

std::vector<TraceRecord> TraceGenerator::generate_all(
    const std::vector<qgen::McqRecord>& records, TraceMode mode) const {
  std::vector<TraceRecord> out(records.size());
  parallel::ThreadPool pool(config_.threads);
  parallel::parallel_for(pool, 0, records.size(), [&](std::size_t i) {
    out[i] = generate(records[i], mode);
  });
  return out;
}

}  // namespace mcqa::trace
