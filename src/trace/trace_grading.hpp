#pragma once
// Trace grading: fill the optional grading_result block of the Fig. 3
// schema by judging the teacher's prediction for every trace (the
// paper's workflow grades traces so low-quality reasoning can be
// filtered before it enters a retrieval store).

#include <vector>

#include "qgen/mcq_record.hpp"
#include "trace/trace_record.hpp"

namespace mcqa::trace {

struct TraceGradingStats {
  std::size_t graded = 0;
  std::size_t correct = 0;
  double accuracy() const {
    return graded == 0 ? 0.0
                       : static_cast<double>(correct) /
                             static_cast<double>(graded);
  }
};

/// Grade one trace's prediction against its keyed answer; fills
/// `grading_result` in place.
void grade_trace(TraceRecord& trace);

/// Grade every trace (in place); returns aggregate stats.
TraceGradingStats grade_all(std::vector<TraceRecord>& traces);

/// Drop traces whose prediction was graded incorrect (quality gate on
/// the retrieval store: a wrong chain of reasoning should not be
/// retrievable).  Returns the removed count.
std::size_t filter_incorrect(std::vector<TraceRecord>& traces);

}  // namespace mcqa::trace
