#pragma once
// Reasoning-trace distillation: the teacher answers every benchmark
// question in all three modes, prediction withheld from retrieval text.

#include <vector>

#include "llm/teacher_model.hpp"
#include "qgen/mcq_record.hpp"
#include "trace/trace_record.hpp"

namespace mcqa::trace {

struct TraceGenConfig {
  std::size_t threads = 0;
  std::uint64_t seed = 0x7ace5eedu;
};

class TraceGenerator {
 public:
  TraceGenerator(const llm::TeacherModel& teacher, TraceGenConfig config = {});

  /// One trace for one record in one mode.
  TraceRecord generate(const qgen::McqRecord& record, TraceMode mode) const;

  /// All records, one mode (parallel, order-stable).
  std::vector<TraceRecord> generate_all(
      const std::vector<qgen::McqRecord>& records, TraceMode mode) const;

 private:
  const llm::TeacherModel& teacher_;
  TraceGenConfig config_;
};

}  // namespace mcqa::trace
