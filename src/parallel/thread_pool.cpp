#include "parallel/thread_pool.hpp"

#include <algorithm>

namespace mcqa::parallel {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  stop_.store(true, std::memory_order_release);
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  const std::size_t q =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mutex);
    queues_[q]->tasks.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t id, std::function<void()>& task) {
  // Own queue first (LIFO for locality)...
  {
    auto& q = *queues_[id];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.back());
      q.tasks.pop_back();
      return true;
    }
  }
  // ...then steal from victims (FIFO end, classic Chase-Lev discipline).
  for (std::size_t offset = 1; offset < queues_.size(); ++offset) {
    auto& victim = *queues_[(id + offset) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t id) {
  std::function<void()> task;
  for (;;) {
    if (try_pop(id, task)) {
      task();
      task = nullptr;
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Take the lock so a waiter can't check the predicate and then
        // miss this notification (classic lost-wakeup window).
        std::lock_guard<std::mutex> lock(wake_mutex_);
        idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    if (stop_.load(std::memory_order_acquire)) return;
    wake_cv_.wait_for(lock, std::chrono::milliseconds(1));
    if (stop_.load(std::memory_order_acquire)) return;
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(wake_mutex_);
  idle_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (grain == 0) {
    // Aim for ~4 blocks per worker to balance load vs dispatch cost.
    grain = std::max<std::size_t>(1, n / (pool.thread_count() * 4));
  }
  const std::size_t blocks = (n + grain - 1) / grain;
  if (blocks <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  std::vector<std::future<void>> futs;
  futs.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = begin + b * grain;
    const std::size_t hi = std::min(end, lo + grain);
    futs.push_back(pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  for (auto& f : futs) f.get();  // propagate exceptions
}

}  // namespace mcqa::parallel
