#pragma once
// Staged streaming pipeline.
//
// Mirrors the paper's Parsl dataflow: documents stream through
// parse -> chunk -> embed -> generate stages, each stage running with
// its own worker count, connected by bounded queues for backpressure.
// Output order is restored by sequence number so downstream artifacts
// (chunk ids, question ids) are independent of scheduling.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "parallel/bounded_queue.hpp"

namespace mcqa::parallel {

template <typename T>
struct Sequenced {
  std::size_t seq = 0;
  T value{};
};

/// Run `stage` over every input with `workers` threads, producing outputs
/// in input order.  One-to-many stages return a vector per input; the
/// flattened outputs keep input-major order.
template <typename In, typename Out>
std::vector<Out> run_stage(const std::vector<In>& inputs,
                           const std::function<std::vector<Out>(const In&)>& stage,
                           std::size_t workers,
                           std::size_t queue_capacity = 256) {
  if (workers == 0) workers = 1;
  BoundedQueue<Sequenced<const In*>> in_q(queue_capacity);
  std::mutex out_mutex;
  std::map<std::size_t, std::vector<Out>> out_by_seq;

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&] {
      for (;;) {
        auto item = in_q.pop();
        if (!item) return;
        std::vector<Out> produced = stage(*item->value);
        std::lock_guard<std::mutex> lock(out_mutex);
        out_by_seq.emplace(item->seq, std::move(produced));
      }
    });
  }

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    in_q.push(Sequenced<const In*>{i, &inputs[i]});
  }
  in_q.close();
  for (auto& t : threads) t.join();

  std::vector<Out> out;
  for (auto& [seq, items] : out_by_seq) {
    for (auto& item : items) out.push_back(std::move(item));
  }
  return out;
}

/// Convenience wrapper for one-to-one stages.
template <typename In, typename Out>
std::vector<Out> run_map_stage(const std::vector<In>& inputs,
                               const std::function<Out(const In&)>& fn,
                               std::size_t workers) {
  return run_stage<In, Out>(
      inputs,
      [&fn](const In& in) {
        std::vector<Out> one;
        one.push_back(fn(in));
        return one;
      },
      workers);
}

/// Throughput record for the scaling bench.
struct StageStats {
  std::string name;
  std::size_t items_in = 0;
  std::size_t items_out = 0;
  double seconds = 0.0;
  double items_per_second() const {
    return seconds > 0.0 ? static_cast<double>(items_in) / seconds : 0.0;
  }
};

}  // namespace mcqa::parallel
