#pragma once
// Bounded multi-producer multi-consumer queue with close semantics.
//
// Backs the staged Pipeline: each stage pulls from an input queue and
// pushes to an output queue; closing propagates end-of-stream so the
// whole pipeline drains cleanly (the same dataflow discipline a Parsl
// DAG gives the paper's distributed pipeline).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

namespace mcqa::parallel {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity = 1024) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full.  Returns false (drops the item) if closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty.  Returns nullopt once closed *and* drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return out;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return out;
  }

  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace mcqa::parallel
