#pragma once
// Work-stealing thread pool.
//
// The paper scales its pipeline with Parsl across ALCF nodes; our
// shared-memory equivalent is a pool of workers with per-worker deques
// and random stealing.  All pipeline stages (parsing, chunking,
// embedding, question generation, evaluation) submit tasks here, and the
// scaling bench (S1 in DESIGN.md) measures throughput against worker
// count.
//
// Determinism note: tasks themselves must be deterministic (each owns a
// forked Rng keyed by item id); the pool only changes *when* work runs,
// never *what* it computes.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mcqa::parallel {

class ThreadPool {
 public:
  /// threads == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Submit any callable; returns a future for its result.
  template <typename F, typename... Args>
  auto submit(F&& f, Args&&... args)
      -> std::future<std::invoke_result_t<F, Args...>> {
    using R = std::invoke_result_t<F, Args...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [fn = std::forward<F>(f),
         ... as = std::forward<Args>(args)]() mutable {
          return std::invoke(std::move(fn), std::move(as)...);
        });
    std::future<R> fut = task->get_future();
    enqueue([task]() { (*task)(); });
    return fut;
  }

  /// Fire-and-forget.
  void enqueue(std::function<void()> task);

  /// Block until every submitted task (including tasks submitted by
  /// tasks) has finished.
  void wait_idle();

  /// A process-wide default pool, sized to the machine.  Library code
  /// that doesn't care about pool identity uses this.
  static ThreadPool& global();

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t id);
  bool try_pop(std::size_t id, std::function<void()>& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable idle_cv_;

  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<bool> stop_{false};
};

/// Parallel for over [begin, end) with automatic grain sizing.  Blocks
/// until done.  `body(i)` must be safe to run concurrently for distinct i.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 0);

/// Map items through `fn` in parallel, preserving order.
template <typename In, typename Fn>
auto parallel_map(ThreadPool& pool, const std::vector<In>& items, Fn fn)
    -> std::vector<std::invoke_result_t<Fn, const In&>> {
  using Out = std::invoke_result_t<Fn, const In&>;
  std::vector<Out> out(items.size());
  parallel_for(pool, 0, items.size(),
               [&](std::size_t i) { out[i] = fn(items[i]); });
  return out;
}

}  // namespace mcqa::parallel
