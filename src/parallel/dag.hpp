#pragma once
// Dynamic task-DAG execution on a ThreadPool.
//
// TaskGroup tracks a set of tasks that may spawn further tasks into the
// same group (continuation style): a parse task spawns per-chunk embed
// tasks the moment its document is chunked, a question task spawns its
// three trace-mode tasks the moment the record is accepted.  wait()
// returns once the transitive set has drained.
//
// Deadlock discipline: tasks must only *spawn* — they never block on
// the group (the pool would otherwise starve when every worker waits on
// work only a worker can run).  The single wait() lives on the caller's
// thread, outside the pool.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>

#include "parallel/thread_pool.hpp"

namespace mcqa::parallel {

class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  ~TaskGroup() { wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Run `fn` on the pool as part of this group.  Safe to call from
  /// inside a group task: the parent's own pending count keeps the
  /// group open until it returns, so the count can never hit zero
  /// between a parent observing data and spawning its continuation.
  void spawn(std::function<void()> fn) {
    pending_.fetch_add(1, std::memory_order_relaxed);
    pool_.enqueue([this, fn = std::move(fn)]() {
      fn();
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mutex_);
        cv_.notify_all();
      }
    });
  }

  /// Block until every spawned task (including tasks spawned by tasks)
  /// has finished.  Call from outside the pool only.
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this]() {
      return pending_.load(std::memory_order_acquire) == 0;
    });
  }

 private:
  ThreadPool& pool_;
  std::atomic<std::size_t> pending_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace mcqa::parallel
