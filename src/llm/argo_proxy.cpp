#include "llm/argo_proxy.hpp"

#include <algorithm>

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace mcqa::llm {

BatchTeacherClient::BatchTeacherClient(const TeacherModel& teacher,
                                       ProxyConfig config)
    : teacher_(teacher), config_(config) {}

bool BatchTeacherClient::attempt_fails(std::string_view id,
                                       std::size_t attempt) const {
  util::Rng probe(util::hash_combine(config_.seed, util::fnv1a64(id)),
                  attempt * 2 + 1);
  return probe.uniform() < config_.transient_failure_rate;
}

std::vector<std::optional<McqDraft>> BatchTeacherClient::generate_mcqs(
    const std::vector<chunk::Chunk>& chunks, ProxyStats* stats) const {
  std::vector<std::optional<McqDraft>> out(chunks.size());
  ProxyStats local;
  local.requests = chunks.size();

  // Simulated slot clocks: batch b is assigned to the earliest-free
  // worker slot (list scheduling — the same discipline a real async
  // client with N in-flight calls follows).
  std::vector<double> slot_free_ms(std::max<std::size_t>(1, config_.workers),
                                   0.0);

  const std::size_t batch =
      std::max<std::size_t>(1, config_.batch_size);
  for (std::size_t start = 0; start < chunks.size(); start += batch) {
    const std::size_t end = std::min(chunks.size(), start + batch);
    ++local.batches;

    // Per-batch simulated duration: call overhead + per-item work +
    // retry tax for the items that fail transiently.
    double batch_ms = config_.per_call_overhead_ms +
                      static_cast<double>(end - start) *
                          config_.per_item_cost_ms;

    for (std::size_t i = start; i < end; ++i) {
      const std::string& id = chunks[i].chunk_id;
      bool done = false;
      for (std::size_t attempt = 0; attempt <= config_.max_retries;
           ++attempt) {
        ++local.attempts;
        if (attempt_fails(id, attempt)) {
          ++local.retries;
          // Failed attempt: pay the backoff plus a re-issued single-item
          // call.
          batch_ms += config_.backoff_base_ms *
                          static_cast<double>(1u << std::min<std::size_t>(
                                                  attempt, 10)) +
                      config_.per_call_overhead_ms +
                      config_.per_item_cost_ms;
          continue;
        }
        out[i] = teacher_.generate_mcq(chunks[i]);
        done = true;
        break;
      }
      if (!done) {
        ++local.permanent_failures;
        // retries counted one extra above on the final failing attempt;
        // the last attempt was a failure, not a retry.
        --local.retries;
      }
    }

    // Assign to the earliest-free worker.
    auto slot = std::min_element(slot_free_ms.begin(), slot_free_ms.end());
    *slot += batch_ms;
    local.simulated_compute_ms += batch_ms;
  }
  local.simulated_wall_ms =
      *std::max_element(slot_free_ms.begin(), slot_free_ms.end());

  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace mcqa::llm
