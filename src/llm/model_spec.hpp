#pragma once
// Model cards for the evaluated SLM suite (paper Table 1) plus the
// calibrated behavioural profile each simulated student runs with.
//
// The profile parameters are the reproduction's stand-in for model
// weights: they were calibrated so that the simulated students land on
// the paper's measured accuracies (Tables 2-4) through the same causal
// mechanisms the paper describes (parametric knowledge, context
// extraction, option elimination, susceptibility to misleading
// retrieval, arithmetic ability, output formatting discipline).

#include <string>
#include <vector>

namespace mcqa::llm {

struct ModelSpec {
  std::string name;        ///< e.g. "Llama-3.1-8B-Instruct"
  std::string vendor;      ///< e.g. "Meta"
  double params_billions = 0.0;
  int release_year = 2024;
  std::size_t context_window = 4096;  ///< tokens
};

/// Behavioural profile of a simulated student.
struct StudentProfile {
  /// Propensity to hold a domain fact in parametric memory; combined
  /// with fact importance to give P(knows fact).
  double knowledge = 0.5;
  /// Ability to pull an answer out of supplied context (reading skill).
  double extraction = 0.7;
  /// Ability to discard implausible distractors when guessing.
  double elimination = 0.4;
  /// Susceptibility to near-miss support in retrieved *document* text:
  /// the model flips onto a wrong option the passage appears to endorse
  /// (drives the Astro RAG-Chunks regressions, e.g. OLMo).
  double chunk_distraction = 0.2;
  /// Susceptibility to copying stale arithmetic out of a retrieved
  /// reasoning trace written for *different numbers* (drives the
  /// Llama-3-8B Astro RAG-RT regression, concentrated on math items).
  double trace_math_confusion = 0.15;
  /// Multi-step arithmetic reliability (decay/BED computations).
  double arithmetic = 0.1;
  /// Ability to exploit terse, abstract rationales (the `efficient`
  /// trace mode); low values model small LMs needing spelled-out
  /// reasoning.
  double abstraction = 0.95;
  /// Cross-phrasing transfer: ability to map retrieved content written
  /// for other question phrasings onto the question at hand.  Synthetic
  /// questions share phrasing with their sources (transfer is free);
  /// the independently written exam engages this dial.
  double transfer = 0.9;
  /// Probability the final answer is stated in a cleanly parseable form.
  double format_reliability = 0.97;
  /// Extra boost traces give this model's elimination step (distilled
  /// dismissals transfer directly).
  double trace_elimination_boost = 0.35;
  /// Additive knowledge shift on expert-exam items.  Models differ in
  /// how much of the (public, widely mirrored) study-guide material and
  /// its sources entered pretraining — the contamination axis the paper
  /// flags for static benchmarks.  Positive = relatively more familiar
  /// with exam-style canon than with the synthetic corpus's fact mix.
  double exam_familiarity = 0.0;
};

struct ModelCard {
  ModelSpec spec;
  StudentProfile profile;
};

/// The eight evaluated SLMs, in the paper's Table 1 order.
const std::vector<ModelCard>& student_registry();

/// Lookup by name; throws std::out_of_range when unknown.
const ModelCard& student_card(std::string_view name);

/// Reference accuracy the paper cites for GPT-4 on the Astro exam
/// (approximate; used as a horizontal reference line in Fig. 5/6
/// reproductions, not as a simulated model).
constexpr double kGpt4AstroReference = 0.67;

}  // namespace mcqa::llm
