#pragma once
// Argo-Proxy batch client simulation.
//
// The paper feeds chunks "to GPT-4.1 in batches through the Argo-Proxy
// API" — the operational glue of any remote-LLM pipeline: request
// batching to amortize per-call overhead, concurrent in-flight slots,
// transient failures, and retry with exponential backoff.  We reproduce
// that layer against the local oracle with a *simulated clock*: latency
// and failure are deterministic functions of request identity, so the
// batching/backoff logic is fully testable without wall-clock sleeps.

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "chunk/chunker.hpp"
#include "llm/teacher_model.hpp"

namespace mcqa::llm {

struct ProxyConfig {
  std::size_t batch_size = 8;   ///< requests per upstream call
  std::size_t workers = 4;      ///< concurrent in-flight batches
  std::size_t max_retries = 3;  ///< per request, after the first attempt
  /// Probability a request attempt fails transiently (rate-limit, node
  /// drain, ...).  Hash-resolved per (request id, attempt): deterministic.
  double transient_failure_rate = 0.02;

  // Simulated latency model (milliseconds): a batch costs
  // per_call_overhead + items * per_item_cost.
  double per_call_overhead_ms = 250.0;
  double per_item_cost_ms = 40.0;
  /// Backoff before retry attempt k: base * 2^(k-1).
  double backoff_base_ms = 100.0;

  std::uint64_t seed = 0xa4905u;
};

struct ProxyStats {
  std::size_t requests = 0;
  std::size_t batches = 0;          ///< upstream calls issued
  std::size_t attempts = 0;         ///< per-request attempts (incl. retries)
  std::size_t retries = 0;
  std::size_t permanent_failures = 0;  ///< retries exhausted
  /// Simulated makespan: critical-path time with `workers` slots.
  double simulated_wall_ms = 0.0;
  /// Total simulated compute across all calls (sum, not makespan).
  double simulated_compute_ms = 0.0;

  // Rate accessors return 0.0 on empty stats (never NaN/inf), so bench
  // tables and JSON reports stay well-formed for degenerate runs.
  double throughput_per_s() const {
    return simulated_wall_ms > 0.0
               ? requests * 1000.0 / simulated_wall_ms
               : 0.0;
  }
  /// Fraction of attempts that were retries.
  double retry_rate() const {
    return attempts > 0
               ? static_cast<double>(retries) / static_cast<double>(attempts)
               : 0.0;
  }
  /// Fraction of requests that exhausted their retries.
  double failure_rate() const {
    return requests > 0 ? static_cast<double>(permanent_failures) /
                              static_cast<double>(requests)
                        : 0.0;
  }
  /// Mean requests per upstream call.
  double mean_batch_fill() const {
    return batches > 0
               ? static_cast<double>(requests) / static_cast<double>(batches)
               : 0.0;
  }
};

/// Batched MCQ generation through the simulated proxy.
class BatchTeacherClient {
 public:
  BatchTeacherClient(const TeacherModel& teacher, ProxyConfig config = {});

  /// Generate one candidate per chunk.  Output is aligned with the
  /// input; a slot is nullopt when the chunk carried no fact OR the
  /// request permanently failed.  Deterministic in config.seed.
  std::vector<std::optional<McqDraft>> generate_mcqs(
      const std::vector<chunk::Chunk>& chunks,
      ProxyStats* stats = nullptr) const;

  /// Does attempt `attempt` (0-based) of request `id` fail transiently?
  bool attempt_fails(std::string_view id, std::size_t attempt) const;

 private:
  const TeacherModel& teacher_;
  ProxyConfig config_;
};

}  // namespace mcqa::llm
