#pragma once
// Language-model interface for MCQA answering.
//
// The evaluation harness treats every model as: (task with optional
// retrieved context) -> free-text answer.  Simulated students, the
// n-gram statistical backend and the oracle teacher all implement this.
//
// An McqTask carries two layers:
//   * the PROMPT layer (stem, options, context) — what a real model
//     would see;
//   * the SIMULATION layer (probed fact, correct index, context
//     diagnostics) — ground truth the mechanistic student uses to decide
//     whether it "knows"/"extracts" the answer.  A real inference
//     backend (e.g. llama.cpp) would simply ignore this layer.

#include <string>
#include <vector>

#include "corpus/knowledge_base.hpp"

namespace mcqa::llm {

struct McqTask {
  // --- prompt layer ---
  std::string id;                    ///< stable task id
  std::string stem;
  std::vector<std::string> options;  ///< display order
  std::string context;               ///< retrieved context ("" = baseline)

  // --- simulation layer ---
  int correct_index = -1;
  corpus::FactId fact = 0;
  bool has_fact = false;      ///< probed fact exists in the KB
  bool math = false;          ///< needs arithmetic beyond recall
  double fact_importance = 0.5;

  /// Probability this item is ambiguous/flawed (automated benchmarks
  /// carry noise; expert exams much less).  Hash-resolved per item.
  double ambiguity = 0.0;
  /// Expert-exam item (engages profile.exam_familiarity).
  bool exam_item = false;

  // Context diagnostics (filled by the RAG assembler; all false/0 for
  // baseline):
  bool context_is_trace = false;      ///< retrieved from a trace store
  bool context_is_terse = false;      ///< efficient-mode trace context
  bool context_has_fact = false;      ///< probed fact present after truncation
  double context_saliency = 0.0;      ///< fact tokens / context tokens, [0,1]
  bool context_has_elimination = false;  ///< trace dismisses wrong options
  bool context_has_worked_math = false;  ///< trace shows the computation
  /// Options (by index) that near-miss facts in the context lend false
  /// support to; misleading-retrieval hazard.
  std::vector<int> context_misleading_options;
  /// 1.0 when a misleading option is anchored to the question's subject
  /// matter in one sentence; lower for diffuse (weak) support.
  double context_mislead_strength = 0.0;
};

struct AnswerResult {
  std::string text;       ///< free-text answer, graded by the judge
  int chosen_index = -1;  ///< model's internal pick; -1 = garbled/refused
  double confidence = 0.0;
};

class LanguageModel {
 public:
  virtual ~LanguageModel() = default;

  virtual std::string_view name() const = 0;

  /// Answer one task.  Must be deterministic in (model, task.id) and
  /// thread-safe.
  virtual AnswerResult answer(const McqTask& task) const = 0;
};

}  // namespace mcqa::llm
