#include "llm/student_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/hash.hpp"

namespace mcqa::llm {

namespace {

double clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

const char* kOptionLetters = "ABCDEFGHIJ";

}  // namespace

StudentModel::StudentModel(const ModelCard& card, SimulationCoefficients coeffs,
                           std::uint64_t seed)
    : card_(card), coeffs_(coeffs), seed_(seed) {}

bool StudentModel::knows_fact(corpus::FactId fact, double importance,
                              bool exam_item) const {
  const double p = clamp01(card_.profile.knowledge +
                           (exam_item ? card_.profile.exam_familiarity : 0.0) +
                           coeffs_.importance_tilt *
                               (importance - coeffs_.importance_center));
  // Stable hash-threshold membership: forking an RNG keyed by (model,
  // fact) and taking one uniform draw gives a fixed pseudo-random number
  // per pair, so knowledge is a consistent set rather than a coin
  // flipped per question.
  util::Rng probe(util::hash_combine(util::fnv1a64(card_.spec.name),
                                     util::fnv1a64(std::uint64_t{fact})),
                  seed_);
  return probe.uniform() < p;
}

AnswerResult StudentModel::emit(const McqTask& task, int choice,
                                double confidence, std::string_view rationale,
                                util::Rng& rng) const {
  AnswerResult out;
  out.chosen_index = choice;
  out.confidence = confidence;

  if (choice < 0 || choice >= static_cast<int>(task.options.size())) {
    out.text = "I am not able to determine the answer from the information "
               "provided.";
    out.chosen_index = -1;
    return out;
  }

  // Format discipline: strong models answer in a clean, judge-friendly
  // pattern; weak models sometimes ramble without naming an option.
  if (!rng.chance(card_.profile.format_reliability)) {
    // Degraded output: mentions the option text mid-sentence without a
    // letter, or trails off.  The judge may still rescue the former.
    if (rng.chance(0.5)) {
      out.text = std::string("Well, considering the question, ") +
                 std::string(rationale) +
                 " it could relate to " + task.options[static_cast<std::size_t>(
                     choice)] +
                 " though other mechanisms are plausible in this setting.";
    } else {
      out.text =
          "The question concerns radiobiology. There are several options and "
          "the mechanisms are complex; more context would be needed.";
      out.chosen_index = -1;
    }
    return out;
  }

  out.text = std::string("Answer: (") +
             kOptionLetters[choice] + ") " +
             task.options[static_cast<std::size_t>(choice)] + ". " +
             std::string(rationale);
  return out;
}

int StudentModel::eliminate_and_guess(const McqTask& task,
                                      util::Rng& rng) const {
  const int n = static_cast<int>(task.options.size());
  if (n == 0) return -1;

  // Elimination power: base skill, plus the distilled dismissals when a
  // reasoning trace covering this question's options is in context.
  double elim = card_.profile.elimination;
  if (task.context_has_elimination) {
    // Terse rationales ("most options are inconsistent with this
    // principle") only transfer elimination power to readers that can
    // unpack them.
    const double boost = task.context_is_terse
                             ? card_.profile.trace_elimination_boost *
                                   card_.profile.abstraction
                             : card_.profile.trace_elimination_boost;
    elim = std::min(0.85, elim + boost);
  }

  // Each wrong option is independently discarded with prob `elim`.  The
  // correct option usually survives (distractors are constructed to be
  // recognizably implausible, not trick items), but the weakest models
  // sometimes talk themselves out of it — which is how sub-random exam
  // scores happen.
  const double correct_survives =
      clamp01(0.62 + elim + card_.profile.knowledge);
  std::vector<int> alive;
  for (int i = 0; i < n; ++i) {
    if (i == task.correct_index) {
      if (rng.chance(correct_survives)) alive.push_back(i);
    } else if (!rng.chance(elim)) {
      alive.push_back(i);
    }
  }
  if (alive.empty()) return task.correct_index;
  return alive[rng.bounded(static_cast<std::uint32_t>(alive.size()))];
}

int StudentModel::random_wrong(const McqTask& task, util::Rng& rng) const {
  const int n = static_cast<int>(task.options.size());
  if (n <= 1) return 0;
  for (;;) {
    const int pick = static_cast<int>(rng.bounded(static_cast<std::uint32_t>(n)));
    if (pick != task.correct_index) return pick;
  }
}

AnswerResult StudentModel::answer(const McqTask& task) const {
  util::Rng rng(util::hash_combine(util::fnv1a64(card_.spec.name),
                                   util::fnv1a64(task.id)),
                seed_ ^ 0x5bd1e995u);

  const StudentProfile& p = card_.profile;
  const double transfer = task.exam_item ? p.transfer : 1.0;

  // --- Item ambiguity: a flawed auto-generated question has no reliably
  // keyed answer; every model coin-flips between the key and the most
  // confusable alternative.  Resolved per ITEM (hash of task id only) so
  // the same items are flawed for every model.
  {
    util::Rng item_rng(util::fnv1a64(task.id), 0x11d5u);
    if (item_rng.uniform() < task.ambiguity) {
      const bool lands_on_key = rng.chance(0.5);
      return emit(task,
                  lands_on_key ? task.correct_index : random_wrong(task, rng),
                  0.5, "The options are closely matched here.", rng);
    }
  }

  // --- Misleading retrieval hazard (document text lending false support
  // to a distractor).  Applies to chunk contexts; trace contexts carry a
  // much weaker version of this hazard (they are single-principle
  // statements, not entity-dense passages).
  bool misled = false;
  if (!task.context_misleading_options.empty()) {
    const double sus = task.context_is_trace ? p.chunk_distraction * 0.3
                                             : p.chunk_distraction;
    misled = rng.chance(clamp01(sus * coeffs_.mislead_scale *
                                task.context_mislead_strength));
  }

  // --- Math tasks --------------------------------------------------------
  if (task.math) {
    // Stale-arithmetic confusion: a retrieved trace that worked through
    // *different numbers* invites copying its magnitude.
    if (task.context_is_trace && !task.context.empty() &&
        rng.chance(p.trace_math_confusion)) {
      return emit(task, random_wrong(task, rng), 0.5,
                  "Following the computation in the retrieved reasoning.",
                  rng);
    }
    double p_compute = p.arithmetic;
    if (task.context_has_worked_math) {
      // A worked decay computation in context can be pattern-matched even
      // by models with no native arithmetic (substitute the new numbers
      // into the shown steps) — hence the reading-skill floor.
      p_compute = clamp01(std::max(p_compute * coeffs_.worked_math_boost + 0.05,
                                   0.35 * p.extraction));
    }
    // Needs the underlying quantity too: from context or memory.
    const bool have_quantity =
        (task.context_has_fact &&
         rng.chance(clamp01(p.extraction * transfer))) ||
        (task.has_fact && knows_fact(task.fact, task.fact_importance, task.exam_item));
    if (have_quantity && rng.chance(p_compute)) {
      return emit(task, task.correct_index, 0.8,
                  "Working through the decay arithmetic step by step gives "
                  "this value.",
                  rng);
    }
    if (misled) {
      const int pick = task.context_misleading_options[rng.bounded(
          static_cast<std::uint32_t>(task.context_misleading_options.size()))];
      return emit(task, pick, 0.4,
                  "The retrieved material points to this value.", rng);
    }
    // Failed computation: weak models often garble numeric answers
    // entirely rather than guessing an option cleanly.
    if (!rng.chance(clamp01(p.arithmetic + 0.35))) {
      AnswerResult garbled;
      garbled.chosen_index = -1;
      garbled.confidence = 0.1;
      garbled.text =
          "Computing the remaining activity requires applying the decay "
          "equation; the value would be approximately... the calculation is "
          "involved and I cannot complete it reliably.";
      return garbled;
    }
    return emit(task, eliminate_and_guess(task, rng), 0.25,
                "Estimating among the plausible magnitudes.", rng);
  }

  // --- Misleading support can pre-empt extraction for weak readers: a
  // model that cannot reliably tell the load-bearing passage from a
  // near-miss one answers from whichever it latched onto first.
  if (misled &&
      rng.chance(clamp01(1.0 - p.extraction * transfer))) {
    const int pick = task.context_misleading_options[rng.bounded(
        static_cast<std::uint32_t>(task.context_misleading_options.size()))];
    if (pick != task.correct_index) {
      return emit(task, pick, 0.5,
                  "The retrieved passage emphasizes this factor.", rng);
    }
  }

  // --- Context extraction path -------------------------------------------
  if (task.context_has_fact) {
    double p_extract =
        p.extraction * (coeffs_.saliency_floor +
                        (1.0 - coeffs_.saliency_floor) *
                            std::sqrt(std::max(0.0, task.context_saliency)));
    // Terse (efficient-mode) rationales demand more from the reader.
    if (task.context_is_terse) p_extract *= p.abstraction;
    // Cross-phrasing transfer penalty on expert-exam items.
    p_extract *= transfer;
    if (rng.chance(clamp01(p_extract)) &&
        rng.chance(coeffs_.extract_fidelity)) {
      return emit(task, task.correct_index, 0.9,
                  "The retrieved context states this relationship directly.",
                  rng);
    }
  }

  // --- Misleading context can fire before parametric recall when the
  // model trusts retrieval over its own knowledge.
  if (misled) {
    const int pick = task.context_misleading_options[rng.bounded(
        static_cast<std::uint32_t>(task.context_misleading_options.size()))];
    if (pick != task.correct_index) {
      return emit(task, pick, 0.55,
                  "The retrieved passage emphasizes this factor.", rng);
    }
  }

  // --- Parametric knowledge ------------------------------------------------
  if (task.has_fact && knows_fact(task.fact, task.fact_importance, task.exam_item) &&
      rng.chance(coeffs_.recall_fidelity)) {
    return emit(task, task.correct_index, 0.85,
                "This is an established relationship in the radiobiology "
                "literature.",
                rng);
  }

  // --- Eliminate and guess --------------------------------------------------
  return emit(task, eliminate_and_guess(task, rng), 0.3,
              "Choosing the most plausible remaining option.", rng);
}

}  // namespace mcqa::llm
