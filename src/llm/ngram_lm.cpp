#include "llm/ngram_lm.hpp"

#include <algorithm>
#include <cmath>

#include "text/bpe_cache.hpp"
#include "util/hash.hpp"

namespace mcqa::llm {

namespace {

std::uint64_t key2(std::uint32_t a, std::uint32_t b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

std::uint64_t key3(std::uint32_t a, std::uint32_t b, std::uint32_t c) {
  // 21 bits per id is ample for our vocab budgets.
  return (static_cast<std::uint64_t>(a & 0x1fffff) << 42) |
         (static_cast<std::uint64_t>(b & 0x1fffff) << 21) |
         (c & 0x1fffff);
}

constexpr std::uint32_t kBos = 0xffffffffu;  // sentinel, never a real id

}  // namespace

NgramLm NgramLm::train(std::string_view corpus_text, NgramLmConfig config) {
  NgramLm lm;
  lm.config_ = config;

  // "Smaller model" == less pretraining text: keep a prefix of the
  // corpus proportional to corpus_fraction.
  const std::size_t keep = static_cast<std::size_t>(
      static_cast<double>(corpus_text.size()) *
      std::clamp(config.corpus_fraction, 0.0, 1.0));
  const std::string_view train_view = corpus_text.substr(0, keep);

  lm.bpe_ = text::shared_bpe(train_view, config.bpe_vocab);
  const std::vector<std::uint32_t> stream = lm.bpe_->encode(train_view);
  lm.total_tokens_ = stream.size();

  std::uint32_t w2 = kBos;
  std::uint32_t w1 = kBos;
  for (const std::uint32_t w0 : stream) {
    ++lm.unigrams_[w0];
    ++lm.bigrams_[key2(w1, w0)];
    ++lm.trigrams_[key3(w2, w1, w0)];
    w2 = w1;
    w1 = w0;
  }
  return lm;
}

double NgramLm::token_log_prob(std::uint32_t w2, std::uint32_t w1,
                               std::uint32_t w0) const {
  const double v = static_cast<double>(std::max<std::size_t>(vocab_size(), 1));
  const double uni_den = static_cast<double>(total_tokens_) + v;

  const auto uni_it = unigrams_.find(w0);
  const double uni_count = uni_it == unigrams_.end()
                               ? 0.0
                               : static_cast<double>(uni_it->second);
  const double p_uni = (uni_count + 1.0) / uni_den;

  // Interpolated absolute discounting: trigram backs off to bigram backs
  // off to (add-one) unigram.
  const auto ctx2_it = bigrams_.find(key2(w2, w1));
  double p_bi = p_uni;
  const auto uni_ctx_it = unigrams_.find(w1);
  if (uni_ctx_it != unigrams_.end() && uni_ctx_it->second > 0) {
    const double den = static_cast<double>(uni_ctx_it->second);
    const auto bi_it = bigrams_.find(key2(w1, w0));
    const double num = bi_it == bigrams_.end()
                           ? 0.0
                           : std::max(0.0, static_cast<double>(bi_it->second) -
                                               config_.discount);
    p_bi = num / den + config_.discount / den * p_uni * v * 0.05 + 1e-9;
    p_bi = std::max(p_bi, 0.2 * p_uni);
  }

  double p_tri = p_bi;
  if (ctx2_it != bigrams_.end() && ctx2_it->second > 0) {
    const double den = static_cast<double>(ctx2_it->second);
    const auto tri_it = trigrams_.find(key3(w2, w1, w0));
    const double num = tri_it == trigrams_.end()
                           ? 0.0
                           : std::max(0.0, static_cast<double>(tri_it->second) -
                                               config_.discount);
    p_tri = num / den + 1e-9;
    p_tri = std::max(p_tri, 0.3 * p_bi);
  }
  return std::log(std::max(p_tri, 1e-12));
}

double NgramLm::log_prob(std::string_view txt) const {
  const auto ids = bpe_->encode(txt);
  if (ids.empty()) return -30.0;
  double total = 0.0;
  std::uint32_t w2 = kBos;
  std::uint32_t w1 = kBos;
  for (const std::uint32_t w0 : ids) {
    total += token_log_prob(w2, w1, w0);
    w2 = w1;
    w1 = w0;
  }
  return total / static_cast<double>(ids.size());
}

double NgramLm::continuation_log_prob(std::string_view prefix,
                                      std::string_view continuation) const {
  const auto prefix_ids = bpe_->encode(prefix);
  const auto cont_ids = bpe_->encode(continuation);
  if (cont_ids.empty()) return -30.0;
  std::uint32_t w2 = kBos;
  std::uint32_t w1 = kBos;
  if (prefix_ids.size() >= 2) {
    w2 = prefix_ids[prefix_ids.size() - 2];
    w1 = prefix_ids[prefix_ids.size() - 1];
  } else if (prefix_ids.size() == 1) {
    w1 = prefix_ids[0];
  }
  double total = 0.0;
  for (const std::uint32_t w0 : cont_ids) {
    total += token_log_prob(w2, w1, w0);
    w2 = w1;
    w1 = w0;
  }
  return total / static_cast<double>(cont_ids.size());
}

AnswerResult NgramLm::answer(const McqTask& task) const {
  AnswerResult out;
  if (task.options.empty()) {
    out.text = "(no options)";
    return out;
  }
  std::string prompt;
  if (!task.context.empty()) {
    prompt += task.context;
    prompt += "\n";
  }
  prompt += task.stem;
  prompt += " The answer is ";

  double best = -1e18;
  int best_idx = 0;
  std::vector<double> scores(task.options.size());
  for (std::size_t i = 0; i < task.options.size(); ++i) {
    const double s = continuation_log_prob(prompt, task.options[i]);
    scores[i] = s;
    if (s > best) {
      best = s;
      best_idx = static_cast<int>(i);
    }
  }
  out.chosen_index = best_idx;
  // Softmax-ish confidence over the per-token scores.
  double denom = 0.0;
  for (const double s : scores) denom += std::exp(s - best);
  out.confidence = denom > 0.0 ? 1.0 / denom : 0.0;
  out.text = "Answer: (" + std::string(1, static_cast<char>('A' + best_idx)) +
             ") " + task.options[static_cast<std::size_t>(best_idx)] +
             ". (likelihood-ranked)";
  return out;
}

}  // namespace mcqa::llm
