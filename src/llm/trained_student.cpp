#include "llm/trained_student.hpp"

#include <cmath>
#include <vector>

namespace mcqa::llm {

namespace {

/// BOS-padded history window ending just before `upto` in `ids`.
std::vector<std::uint32_t> tail_window(const std::vector<std::uint32_t>& ids,
                                       std::size_t upto, std::size_t n,
                                       std::uint32_t bos) {
  std::vector<std::uint32_t> hist(n, bos);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t back = n - j;
    if (upto >= back) hist[j] = ids[upto - back];
  }
  return hist;
}

}  // namespace

TrainedStudent TrainedStudent::train(std::string_view corpus_text,
                                     TrainedStudentConfig config,
                                     parallel::ThreadPool* pool) {
  TrainedStudent out;
  out.fingerprint_ =
      train::trained_model_fingerprint(config.train, corpus_text);
  out.lm_ = train::train_lbl(corpus_text, config.train, pool);
  out.config_ = std::move(config);
  return out;
}

TrainedStudent TrainedStudent::restore(std::string_view blob,
                                       TrainedStudentConfig config,
                                       std::uint64_t fingerprint) {
  TrainedStudent out;
  out.lm_ = train::deserialize_trained(blob);
  out.config_ = std::move(config);
  out.fingerprint_ = fingerprint;
  return out;
}

double TrainedStudent::log_prob(std::string_view text) const {
  const auto ids = lm_.bpe->encode(text);
  if (ids.empty()) return -30.0;
  const std::size_t n = lm_.model.config().context;
  double total = 0.0;
  std::vector<std::uint32_t> hist;
  for (std::size_t p = 0; p < ids.size(); ++p) {
    hist = tail_window(ids, p, n, lm_.model.bos_id());
    total += lm_.model.log_prob(hist.data(), ids[p]);
  }
  return total / static_cast<double>(ids.size());
}

double TrainedStudent::continuation_log_prob(
    std::string_view prefix, std::string_view continuation) const {
  const auto prefix_ids = lm_.bpe->encode(prefix);
  const auto cont_ids = lm_.bpe->encode(continuation);
  if (cont_ids.empty()) return -30.0;
  const std::size_t n = lm_.model.config().context;
  const std::uint32_t bos = lm_.model.bos_id();

  // Rolling window seeded from the prefix tail; continuation tokens
  // then slide through it.
  std::vector<std::uint32_t> hist =
      tail_window(prefix_ids, prefix_ids.size(), n, bos);
  double total = 0.0;
  for (const std::uint32_t w : cont_ids) {
    total += lm_.model.log_prob(hist.data(), w);
    hist.erase(hist.begin());
    hist.push_back(w);
  }
  return total / static_cast<double>(cont_ids.size());
}

AnswerResult TrainedStudent::answer(const McqTask& task) const {
  AnswerResult out;
  if (task.options.empty()) {
    out.text = "(no options)";
    return out;
  }
  std::string prompt;
  if (!task.context.empty()) {
    prompt += task.context;
    prompt += "\n";
  }
  prompt += task.stem;
  prompt += " The answer is ";

  double best = -1e18;
  int best_idx = 0;
  std::vector<double> scores(task.options.size());
  for (std::size_t i = 0; i < task.options.size(); ++i) {
    const double s = continuation_log_prob(prompt, task.options[i]);
    scores[i] = s;
    if (s > best) {
      best = s;
      best_idx = static_cast<int>(i);
    }
  }
  out.chosen_index = best_idx;
  double denom = 0.0;
  for (const double s : scores) denom += std::exp(s - best);
  out.confidence = denom > 0.0 ? 1.0 / denom : 0.0;
  out.text = "Answer: (" + std::string(1, static_cast<char>('A' + best_idx)) +
             ") " + task.options[static_cast<std::size_t>(best_idx)] +
             ". (likelihood-ranked)";
  return out;
}

ModelSpec TrainedStudent::spec() const {
  ModelSpec s;
  s.name = config_.name;
  s.vendor = "in-tree";
  s.params_billions =
      static_cast<double>(lm_.model.param_count()) * 1e-9;
  s.release_year = 2026;
  s.context_window = 8192;
  return s;
}

}  // namespace mcqa::llm
