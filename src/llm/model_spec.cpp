#include "llm/model_spec.hpp"

#include <stdexcept>

namespace mcqa::llm {

const std::vector<ModelCard>& student_registry() {
  // Table 1 specs verbatim; profiles calibrated against Tables 2-4.
  // Field order: knowledge, extraction, elimination, chunk_distraction,
  // trace_math_confusion, arithmetic, abstraction, transfer,
  // format_reliability, trace_elimination_boost, exam_familiarity.
  static const std::vector<ModelCard> kRegistry = {
      {{"OLMo-7B", "Allen Institute", 7.0, 2024, 2048},
       {0.255, 0.62, 0.15, 0.95, 0.10, 0.45, 0.92, 0.50, 0.93, 0.40, +0.12}},
      {{"TinyLlama-1.1B-Chat", "TinyLlama Team", 1.1, 2024, 2048},
       {0.07, 0.95, 0.05, 0.15, 0.00, 0.02, 0.78, 0.35, 0.80, 0.50, -0.07}},
      {{"Gemma 3 4B-IT", "Google", 4.0, 2025, 128000},
       {0.72, 0.88, 0.45, 0.30, 0.40, 0.45, 1.00, 0.95, 0.98, 0.45, -0.30}},
      {{"SmolLM3-3B", "HuggingFace", 3.0, 2025, 32768},
       {0.36, 0.96, 0.30, 0.08, 0.05, 0.55, 1.00, 1.00, 0.96, 0.50, 0.00}},
      {{"Mistral-7B-Instruct-v0.3", "Mistral AI", 7.0, 2024, 4096},
       {0.71, 0.88, 0.45, 0.15, 0.30, 0.45, 0.98, 0.55, 0.98, 0.40, -0.22}},
      {{"Llama-3-8B-Instruct", "Meta", 8.0, 2024, 8192},
       {0.85, 0.86, 0.50, 0.30, 0.85, 0.55, 0.97, 0.85, 0.99, 0.35, -0.15}},
      {{"Llama-3.1-8B-Instruct", "Meta", 8.0, 2024, 32768},
       {0.83, 0.92, 0.52, 0.08, 0.35, 0.55, 1.00, 0.95, 0.99, 0.45, -0.14}},
      {{"Qwen-1.5-14B-Chat", "Alibaba", 14.0, 2024, 32768},
       {0.77, 0.90, 0.50, 0.12, 0.45, 0.50, 1.00, 0.90, 0.98, 0.45, -0.26}},
  };
  return kRegistry;
}

const ModelCard& student_card(std::string_view name) {
  for (const auto& card : student_registry()) {
    if (card.spec.name == name) return card;
  }
  throw std::out_of_range("unknown student model: " + std::string(name));
}

}  // namespace mcqa::llm
