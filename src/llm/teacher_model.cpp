#include "llm/teacher_model.hpp"

#include <algorithm>

#include "util/hash.hpp"

namespace mcqa::llm {

TeacherModel::TeacherModel(const corpus::KnowledgeBase& kb,
                           const corpus::FactMatcher& matcher,
                           std::uint64_t seed)
    : kb_(kb), matcher_(matcher), seed_(seed) {}

std::optional<McqDraft> TeacherModel::generate_mcq(
    const chunk::Chunk& chunk) const {
  util::Rng rng(util::hash_combine(seed_, util::fnv1a64(chunk.chunk_id)));

  // Which KB facts survive in this chunk's text (post parse noise)?
  const std::vector<corpus::FactId> present = matcher_.match(chunk.text);
  if (present.empty()) return std::nullopt;

  // Prefer important facts — the teacher prompt asks for educationally
  // valuable questions.
  std::vector<double> weights;
  weights.reserve(present.size());
  for (const corpus::FactId f : present) {
    weights.push_back(0.1 + kb_.fact(f).importance);
  }
  const std::size_t pick = rng.weighted_pick(weights);
  if (pick >= present.size()) return std::nullopt;
  const corpus::Fact& fact = kb_.fact(present[pick]);

  corpus::QuestionRealization real =
      corpus::realize_question(kb_, fact, rng, /*max_distractors=*/6);
  if (real.distractors.size() < 3) {
    return std::nullopt;  // can't build a credible option set
  }

  McqDraft draft;
  draft.stem = std::move(real.stem);
  draft.fact = fact.id;
  draft.math = real.math;
  draft.fact_importance = fact.importance;
  draft.key_principle = std::move(real.key_principle);

  // Assemble and shuffle options (1 correct + up to 6 distractors).
  draft.options.push_back(real.correct);
  for (auto& d : real.distractors) draft.options.push_back(std::move(d));
  std::vector<std::size_t> order(draft.options.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  std::vector<std::string> shuffled(draft.options.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    shuffled[i] = std::move(draft.options[order[i]]);
    if (order[i] == 0) draft.correct_index = static_cast<int>(i);
  }
  draft.options = std::move(shuffled);
  return draft;
}

ScoreCheck TeacherModel::quality_check(const McqDraft& draft,
                                       const chunk::Chunk& chunk) const {
  util::Rng rng(util::hash_combine(seed_ ^ 0x71a9u,
                                   util::fnv1a64(chunk.chunk_id)));
  ScoreCheck check;

  // Structural floor: option count and stem health.
  double score = 3.0;
  std::string critique;
  if (draft.options.size() >= 7) {
    score += 1.0;
  } else {
    critique += "fewer than seven options; ";
  }
  if (draft.stem.size() >= 40) {
    score += 0.5;
  } else {
    critique += "stem too terse; ";
  }

  // Educational value tracks the probed fact's importance.
  score += 1.8 * draft.fact_importance;

  // Distractor plausibility: all options distinct and non-trivial.
  std::vector<std::string> sorted_opts = draft.options;
  std::sort(sorted_opts.begin(), sorted_opts.end());
  if (std::adjacent_find(sorted_opts.begin(), sorted_opts.end()) !=
      sorted_opts.end()) {
    score -= 2.0;
    critique += "duplicate options; ";
  }

  // Source-quality leakage: questions written from damaged text lose
  // clarity (mirrors GPT-4.1 rating garbled extractions poorly).
  if (chunk.text.find('\x01') != std::string::npos ||
      chunk.text.find("~HDR~") != std::string::npos) {
    score -= 1.5;
    critique += "source text artifacts; ";
  }

  // Judgement noise: the rating prompt is itself an LLM sample.  The
  // spread below, against the 7.0 threshold, reproduces the paper's
  // ~10% acceptance funnel at our corpus' fact density.
  score += rng.uniform(-1.2, 2.2);

  check.score = std::clamp(score, 1.0, 10.0);
  check.reasoning = critique.empty()
                        ? "clear stem, plausible distractors, educational"
                        : critique;
  return check;
}

ScoreCheck TeacherModel::relevance_check(const chunk::Chunk& chunk) const {
  util::Rng rng(util::hash_combine(seed_ ^ 0x52e1u,
                                   util::fnv1a64(chunk.chunk_id)));
  ScoreCheck check;
  const std::size_t facts = matcher_.match(chunk.text).size();
  double score = 4.0 + 1.6 * static_cast<double>(std::min<std::size_t>(facts, 3));
  score += rng.uniform(-0.8, 0.8);
  check.score = std::clamp(score, 1.0, 10.0);
  check.reasoning = facts > 0
                        ? "chunk asserts domain mechanisms relevant to "
                          "radiation and cancer biology"
                        : "chunk is methodological boilerplate with little "
                          "domain content";
  return check;
}

std::string TeacherModel::explain_fact(corpus::FactId fact) const {
  const corpus::Fact& f = kb_.fact(fact);
  std::string out = corpus::realize_statement(kb_, f, 0);
  if (f.quantitative) {
    out += " This value is the anchor for the quantitative comparison.";
  } else {
    out += " This relationship is well established across irradiated "
           "model systems.";
  }
  return out;
}

std::string TeacherModel::dismiss_option(const McqDraft& draft,
                                         int option) const {
  if (option < 0 || option >= static_cast<int>(draft.options.size())) {
    return "not applicable";
  }
  const std::string& text = draft.options[static_cast<std::size_t>(option)];
  if (option == draft.correct_index) {
    return text + " matches the established relationship.";
  }
  // Targeted refutation: the oracle checks the KB and states the miss.
  const auto entity = kb_.find_entity(text);
  if (entity.has_value()) {
    return text +
           " participates in other pathways but the literature does not "
           "support this specific relationship.";
  }
  return text + " is numerically inconsistent with the reported value.";
}

AnswerResult TeacherModel::answer(const McqTask& task) const {
  util::Rng rng(util::hash_combine(seed_ ^ 0x7e4cu, util::fnv1a64(task.id)));
  AnswerResult out;
  // Near-ceiling: the oracle misses only occasionally on math items
  // (transcription-style errors), mirroring a frontier model's profile.
  const double p_correct = task.math ? 0.93 : 0.985;
  int choice = task.correct_index;
  if (!rng.chance(p_correct) && !task.options.empty()) {
    choice = static_cast<int>(
        rng.bounded(static_cast<std::uint32_t>(task.options.size())));
  }
  out.chosen_index = choice;
  out.confidence = 0.97;
  out.text = "Answer: (" + std::string(1, static_cast<char>('A' + choice)) +
             ") " +
             (choice >= 0 && choice < static_cast<int>(task.options.size())
                  ? task.options[static_cast<std::size_t>(choice)]
                  : "") +
             ". The underlying mechanism is well characterized.";
  return out;
}

}  // namespace mcqa::llm
