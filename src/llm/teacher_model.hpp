#pragma once
// Oracle teacher (the GPT-4.1 role).
//
// The teacher sees the full knowledge base — the idealization of "a much
// larger model that knows the domain".  It plays three parts from the
// paper's pipeline:
//   1. MCQ generation: turn a semantic chunk into a self-contained
//      7-option question with provenance (Fig. 1 "MCQ generation");
//   2. quality / relevance scoring of candidates on a 1-10 scale, with
//      the >= 7 filter producing the benchmark (the 173,318 -> 16,680
//      funnel);
//   3. domain reasoning content: explanations and option dismissals the
//      reasoning-trace generator distills (answer withheld).
// It also implements LanguageModel so benches can report a near-ceiling
// teacher reference row.

#include <optional>
#include <string>
#include <vector>

#include "chunk/chunker.hpp"
#include "corpus/fact_matcher.hpp"
#include "corpus/knowledge_base.hpp"
#include "corpus/realization.hpp"
#include "llm/language_model.hpp"
#include "util/rng.hpp"

namespace mcqa::llm {

struct McqDraft {
  std::string stem;
  std::vector<std::string> options;  ///< shuffled; 7 entries when healthy
  int correct_index = -1;
  corpus::FactId fact = 0;
  bool math = false;
  double fact_importance = 0.5;
  std::string key_principle;  ///< teacher's one-line rationale
};

struct ScoreCheck {
  double score = 0.0;  ///< 1-10
  std::string reasoning;
};

class TeacherModel final : public LanguageModel {
 public:
  TeacherModel(const corpus::KnowledgeBase& kb,
               const corpus::FactMatcher& matcher,
               std::uint64_t seed = 0x6ea2c001u);

  std::string_view name() const override { return "GPT-4.1 (oracle teacher)"; }

  /// Generate one MCQ candidate from a chunk.  Returns nullopt when the
  /// chunk carries no usable fact (pure filler / parse-damaged text).
  std::optional<McqDraft> generate_mcq(const chunk::Chunk& chunk) const;

  /// Second-pass quality prompt: clarity, accuracy, distractor
  /// plausibility, educational value (1-10).  The >=7 threshold is the
  /// paper's published filter.
  ScoreCheck quality_check(const McqDraft& draft,
                           const chunk::Chunk& chunk) const;

  /// Domain-relevance prompt on the source chunk (1-10).
  ScoreCheck relevance_check(const chunk::Chunk& chunk) const;

  /// Prose explanation of a fact (used by trace distillation).
  std::string explain_fact(corpus::FactId fact) const;

  /// Why `option` is wrong for a question probing `fact`; generic when
  /// the oracle has no targeted refutation.
  std::string dismiss_option(const McqDraft& draft, int option) const;

  /// Near-ceiling MCQA answering (the teacher reference row).
  AnswerResult answer(const McqTask& task) const override;

  const corpus::KnowledgeBase& kb() const { return kb_; }

 private:
  const corpus::KnowledgeBase& kb_;
  const corpus::FactMatcher& matcher_;
  std::uint64_t seed_;
};

}  // namespace mcqa::llm
