#pragma once
// Statistical language-model backend.
//
// An interpolated Kneser-Ney-flavoured trigram LM over BPE subwords,
// trained on a configurable fraction of the synthetic corpus.  It is
// the repository's *non-mechanistic* student: it answers MCQs by
// log-likelihood scoring of each option continuation, the way llama.cpp
// scores choices for the paper's models.  Scaling the training fraction
// stands in for parameter count, giving an independent sanity check
// that RAG context measurably shifts option likelihoods (ablation bench
// A3 reports it).

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "llm/language_model.hpp"
#include "text/bpe.hpp"

namespace mcqa::llm {

struct NgramLmConfig {
  std::size_t bpe_vocab = 1200;
  double corpus_fraction = 1.0;  ///< fraction of training text consumed
  double discount = 0.4;         ///< absolute discounting mass
  std::uint64_t seed = 7;
  std::string name = "ngram-lm";
};

class NgramLm final : public LanguageModel {
 public:
  /// Train on raw text (already concatenated corpus).
  static NgramLm train(std::string_view corpus_text, NgramLmConfig config);

  std::string_view name() const override { return config_.name; }

  /// Average per-token log probability of `text`.
  double log_prob(std::string_view text) const;

  /// Conditional score of `continuation` after `prefix` (total log prob
  /// of the continuation tokens given the running context).
  double continuation_log_prob(std::string_view prefix,
                               std::string_view continuation) const;

  /// MCQA via likelihood ranking: argmax over options of
  /// log P(option | context + stem).
  AnswerResult answer(const McqTask& task) const override;

  std::size_t vocab_size() const { return bpe_ ? bpe_->vocab_size() : 0; }
  std::size_t trigram_count() const { return trigrams_.size(); }

 private:
  NgramLm() = default;

  double token_log_prob(std::uint32_t w2, std::uint32_t w1,
                        std::uint32_t w0) const;

  NgramLmConfig config_;
  /// Shared via text::shared_bpe — the n-gram and trainable students
  /// build their tokenizer through one code path and one cached vocab
  /// per (corpus hash, vocab budget).
  std::shared_ptr<const text::BpeTokenizer> bpe_;
  std::unordered_map<std::uint64_t, std::uint32_t> trigrams_;
  std::unordered_map<std::uint64_t, std::uint32_t> bigrams_;
  std::unordered_map<std::uint32_t, std::uint32_t> unigrams_;
  std::uint64_t total_tokens_ = 0;
};

}  // namespace mcqa::llm
