#pragma once
// Mechanistic simulated student (the SLM under evaluation).
//
// Decision procedure per task, mirroring how the paper explains its
// results (§3):
//
//   1. math tasks require an arithmetic step; worked computations in a
//      retrieved trace raise the success odds, raw context does not;
//   2. if the retrieved context still contains the probed fact after
//      window truncation, the model tries to extract it — success rises
//      with reading skill and with the fact's saliency in the context
//      (traces are short and fact-dense, chunks bury the needle);
//   3. otherwise the model consults parametric knowledge: it knows a
//      stable, importance-skewed subset of KB facts;
//   4. otherwise it eliminates implausible distractors (trace-derived
//      dismissals eliminate more) and guesses among the rest;
//   5. near-miss facts in the context can mislead the model onto a
//      supported-but-wrong option (the Astro RAG-Chunks regressions);
//   6. weak models sometimes emit unparseable answers, graded wrong.
//
// All randomness forks from (model name, task id): per-task results are
// reproducible and independent of evaluation order.

#include "llm/language_model.hpp"
#include "llm/model_spec.hpp"
#include "util/rng.hpp"

namespace mcqa::llm {

/// Global coefficients of the simulation, shared by all students.
/// Centralized so calibration touches one struct.
struct SimulationCoefficients {
  /// P(know) = clamp01(knowledge + tilt * (importance - center)).  The
  /// center sits at the mean importance of *accepted benchmark facts*
  /// (the quality filter skews toward important facts), so per-model
  /// `knowledge` values read directly as expected benchmark P(know).
  double importance_tilt = 0.35;
  double importance_center = 0.75;
  /// P(extract | fact in ctx) = extraction * (floor + (1-floor)*sqrt(sal)).
  double saliency_floor = 0.65;
  /// Correctness when answering from parametric knowledge.
  double recall_fidelity = 0.96;
  /// Correctness when answering from successfully extracted context.
  double extract_fidelity = 0.97;
  /// Arithmetic multiplier when a worked computation is in context.
  double worked_math_boost = 1.6;
  /// P(mislead) scales with this when context carries near-miss support.
  double mislead_scale = 1.0;
};

class StudentModel final : public LanguageModel {
 public:
  explicit StudentModel(const ModelCard& card,
                        SimulationCoefficients coeffs = {},
                        std::uint64_t seed = 0xabcdef12u);

  std::string_view name() const override { return card_.spec.name; }
  const ModelCard& card() const { return card_; }

  AnswerResult answer(const McqTask& task) const override;

  /// Does this model hold `fact` in parametric memory?  Stable across
  /// tasks (the same fact is consistently known or not known).
  /// `exam_item` engages the profile's exam_familiarity shift.
  bool knows_fact(corpus::FactId fact, double importance,
                  bool exam_item = false) const;

 private:
  AnswerResult emit(const McqTask& task, int choice, double confidence,
                    std::string_view rationale, util::Rng& rng) const;
  int eliminate_and_guess(const McqTask& task, util::Rng& rng) const;
  int random_wrong(const McqTask& task, util::Rng& rng) const;

  ModelCard card_;
  SimulationCoefficients coeffs_;
  std::uint64_t seed_;
};

}  // namespace mcqa::llm
