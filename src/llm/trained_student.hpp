#pragma once
// Trainable student backend: the 9th/10th roster rows.
//
// Wraps a src/train log-bilinear model behind the LanguageModel
// contract and answers MCQs exactly the way NgramLm does — likelihood
// ranking of each option continuation after the assembled prompt — so
// trace-trained vs chunk-trained comparisons isolate the *training
// medium*, not the answering mechanism.  Unlike the eight calibrated
// profiles this model has no simulation layer at all: it never reads
// McqTask's ground-truth fields, it just scores text it was trained on.
//
// Determinism: answers are a pure function of (training text,
// TrainedStudentConfig, task prompt) — the trainer's byte-identity
// contract (train/trainer.hpp) plus deterministic scoring.  The
// fingerprint() feeds the eval-cell cache so editing training text or
// config invalidates exactly this model's cells.

#include <string>
#include <string_view>

#include "llm/language_model.hpp"
#include "llm/model_spec.hpp"
#include "train/train_io.hpp"
#include "train/trainer.hpp"

namespace mcqa::parallel {
class ThreadPool;
}

namespace mcqa::llm {

struct TrainedStudentConfig {
  train::TrainConfig train;
  std::string name = "lbl-lm";
};

class TrainedStudent final : public LanguageModel {
 public:
  /// Minibatch-SGD train on raw text (see train/trainer.hpp for the
  /// byte-identity contract).  epochs == 0 gives the untrained-init
  /// baseline: seeded weights, same tokenizer/classes, no SGD steps.
  static TrainedStudent train(std::string_view corpus_text,
                              TrainedStudentConfig config,
                              parallel::ThreadPool* pool = nullptr);

  /// Warm restore from a serialize() blob (byte-identical to the cold
  /// train that produced it; throws on malformed blobs).  `fingerprint`
  /// is the train::trained_model_fingerprint of the (config, text) the
  /// blob was trained under — the caller's checkpoint key pins that.
  static TrainedStudent restore(std::string_view blob,
                                TrainedStudentConfig config,
                                std::uint64_t fingerprint);

  std::string serialize() const { return train::serialize_trained(lm_); }

  std::string_view name() const override { return config_.name; }

  /// Average per-token log probability of `text`.
  double log_prob(std::string_view text) const;

  /// Mean per-token score of `continuation` given the running context
  /// (NgramLm's convention, so the two backends rank alike).
  double continuation_log_prob(std::string_view prefix,
                               std::string_view continuation) const;

  AnswerResult answer(const McqTask& task) const override;

  const train::TrainReport& report() const { return lm_.report; }
  const train::LblModel& model() const { return lm_.model; }
  std::size_t vocab_size() const { return lm_.bpe->vocab_size(); }

  /// (config, training text) fingerprint for eval-cell keying
  /// (train::trained_model_fingerprint; stable across processes).
  std::uint64_t fingerprint() const { return fingerprint_; }

  /// Spec row for harness sweeps: parameter count measured, not
  /// calibrated.
  ModelSpec spec() const;

 private:
  TrainedStudent() = default;

  TrainedStudentConfig config_;
  train::TrainedLm lm_;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace mcqa::llm
