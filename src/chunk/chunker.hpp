#pragma once
// Chunking: parsed documents -> retrieval units.
//
// The paper chunks with PubMedBERT embeddings to respect semantic
// boundaries ("semantic chunking ... yielding 173,318 chunks").  We
// implement the same drift-based algorithm over our embedder, plus a
// fixed-size baseline used by the chunker ablation (A2 in DESIGN.md).

#include <memory>
#include <string>
#include <vector>

#include "embed/embedder.hpp"
#include "parse/document.hpp"

namespace mcqa::chunk {

struct Chunk {
  std::string chunk_id;  ///< "filehash_index" per the paper's Fig. 2 schema
  std::string doc_id;
  std::string path;      ///< provenance: source "file" path
  std::string text;
  std::size_t index = 0;        ///< position within the document
  std::size_t word_count = 0;
  std::size_t sentence_count = 0;
};

struct ChunkerConfig {
  std::size_t target_words = 160;  ///< soft target per chunk
  std::size_t max_words = 260;     ///< hard ceiling (SLM context safety)
  std::size_t min_words = 40;      ///< merge tiny trailing chunks
  /// Semantic chunker: boundary declared when the cosine between the
  /// running window embedding and the next sentence drops below this.
  double drift_threshold = 0.22;
  /// Fixed chunker: words of overlap between consecutive chunks.
  std::size_t overlap_words = 24;
};

class Chunker {
 public:
  virtual ~Chunker() = default;
  virtual std::string_view name() const = 0;

  /// Split a parsed document.  Chunk ids are assigned from the doc id
  /// hash + running index; deterministic.
  virtual std::vector<Chunk> chunk(const parse::ParsedDocument& doc) const = 0;
};

/// Boundary at embedding drift between the accumulated window and the
/// next sentence; sections always break.
class SemanticChunker final : public Chunker {
 public:
  SemanticChunker(const embed::Embedder& embedder, ChunkerConfig config = {});
  std::string_view name() const override { return "semantic"; }
  std::vector<Chunk> chunk(const parse::ParsedDocument& doc) const override;

 private:
  const embed::Embedder& embedder_;
  ChunkerConfig config_;
};

/// Fixed word-count windows with overlap; ignores semantics.
class FixedSizeChunker final : public Chunker {
 public:
  explicit FixedSizeChunker(ChunkerConfig config = {});
  std::string_view name() const override { return "fixed"; }
  std::vector<Chunk> chunk(const parse::ParsedDocument& doc) const override;

 private:
  ChunkerConfig config_;
};

/// Helper shared by implementations: provenance-stable chunk id.
std::string make_chunk_id(const std::string& doc_id, std::size_t index);

}  // namespace mcqa::chunk
