#include "chunk/chunker.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>

#include "text/sentence.hpp"
#include "text/tokenizer.hpp"
#include "util/hash.hpp"

namespace mcqa::chunk {

std::string make_chunk_id(const std::string& doc_id, std::size_t index) {
  return util::hex_digest(util::fnv1a64(doc_id)) + "_" + std::to_string(index);
}

namespace {

/// `word_count` is the caller's precomputed text::count_words(text):
/// both chunkers already know it (running window sums, byte-offset
/// prefix sums), so finishing a chunk never re-scans its text.
Chunk finish_chunk(const std::string& doc_id, std::size_t index,
                   std::string text, std::size_t sentences,
                   std::size_t word_count) {
  Chunk c;
  c.doc_id = doc_id;
  c.index = index;
  c.chunk_id = make_chunk_id(doc_id, index);
  c.path = "corpus/" + doc_id + ".spdf";
  c.sentence_count = sentences;
  c.word_count = word_count;
  c.text = std::move(text);
  return c;
}

/// Merge a trailing too-small chunk into its predecessor.  `floor` bounds
/// the merge so it never crosses a section boundary.
void merge_small_tail(std::vector<Chunk>& chunks, std::size_t min_words,
                      std::size_t floor = 0) {
  if (chunks.size() < 2 || chunks.size() - floor < 2) return;
  Chunk& tail = chunks.back();
  if (tail.word_count >= min_words) return;
  Chunk& prev = chunks[chunks.size() - 2];
  prev.text += ' ';
  prev.text += tail.text;
  prev.word_count += tail.word_count;
  prev.sentence_count += tail.sentence_count;
  chunks.pop_back();
}

}  // namespace

// --- SemanticChunker --------------------------------------------------------

SemanticChunker::SemanticChunker(const embed::Embedder& embedder,
                                 ChunkerConfig config)
    : embedder_(embedder), config_(config) {}

std::vector<Chunk> SemanticChunker::chunk(
    const parse::ParsedDocument& doc) const {
  std::vector<Chunk> out;
  std::size_t index = 0;

  for (const auto& section : doc.sections) {
    const auto sentences = text::split_sentences(section.text);
    if (sentences.empty()) continue;
    const std::size_t section_floor = out.size();

    std::string window_text;
    std::size_t window_words = 0;
    std::size_t window_sentences = 0;
    embed::Vector window_vec;

    const auto flush = [&]() {
      if (window_sentences == 0) return;
      // Sentences join with single spaces, so the window's word count is
      // exactly the sum of the per-sentence counts already accumulated.
      out.push_back(
          finish_chunk(doc.doc_id, index++, std::move(window_text),
                       window_sentences, window_words));
      window_text.clear();
      window_words = 0;
      window_sentences = 0;
      window_vec.clear();
    };

    for (const auto& sentence : sentences) {
      const std::size_t words = text::count_words(sentence.text);

      bool boundary = false;
      if (window_sentences > 0) {
        if (window_words + words > config_.max_words) {
          boundary = true;
        } else if (window_words >= config_.min_words) {
          // Drift test: compare the running window against the incoming
          // sentence; low cosine means the topic moved on.
          const embed::Vector next_vec = embedder_.embed(sentence.text);
          const float sim = embed::dot(window_vec, next_vec);
          if (sim < static_cast<float>(config_.drift_threshold) &&
              window_words >= config_.target_words / 2) {
            boundary = true;
          } else if (window_words >= config_.target_words &&
                     sim < static_cast<float>(config_.drift_threshold) + 0.1f) {
            boundary = true;
          }
        }
      }
      if (boundary) flush();

      if (!window_text.empty()) window_text += ' ';
      window_text += sentence.text;
      window_words += words;
      ++window_sentences;
      // Re-embed the window; embedding cost is linear in window length
      // and windows are capped, so this stays O(section length) overall
      // up to the cap factor.
      window_vec = embedder_.embed(window_text);
    }
    flush();
    // Tiny trailing chunks merge into their predecessor, but never
    // across a section boundary.
    merge_small_tail(out, config_.min_words, section_floor);
  }
  return out;
}

// --- FixedSizeChunker -------------------------------------------------------

FixedSizeChunker::FixedSizeChunker(ChunkerConfig config) : config_(config) {}

std::vector<Chunk> FixedSizeChunker::chunk(
    const parse::ParsedDocument& doc) const {
  std::vector<Chunk> out;
  std::size_t index = 0;

  // Flatten to a single word stream; fixed chunking ignores structure.
  const std::string body = doc.body_text();
  const auto words = text::word_tokenize(body);
  if (words.empty()) return out;

  const std::size_t stride = config_.target_words > config_.overlap_words
                                 ? config_.target_words - config_.overlap_words
                                 : config_.target_words;

  // Prefix word-start counts over the body: starts[j] = number of
  // positions p in [1, j) where body[p] begins a whitespace-delimited
  // word (non-space preceded by space).  Overlapping chunks share body
  // bytes, so counting each chunk with count_words() re-scans the
  // overlap; every chunk starts on a token (non-space) byte, so
  //   count_words(body.substr(b, e - b)) == 1 + starts[e] - starts[b + 1]
  // and the whole sweep counts words in O(body) total.
  std::vector<std::uint32_t> starts(body.size() + 1, 0);
  for (std::size_t p = 1; p < body.size(); ++p) {
    const bool word_start =
        !std::isspace(static_cast<unsigned char>(body[p])) &&
        std::isspace(static_cast<unsigned char>(body[p - 1]));
    starts[p + 1] = starts[p] + (word_start ? 1u : 0u);
  }

  for (std::size_t start = 0; start < words.size(); start += stride) {
    const std::size_t end =
        std::min(words.size(), start + config_.target_words);
    const std::size_t byte_begin = words[start].begin;
    const std::size_t byte_end = words[end - 1].end;
    std::string chunk_text = body.substr(byte_begin, byte_end - byte_begin);
    const std::size_t chunk_words =
        1 + starts[byte_end] - starts[byte_begin + 1];
    out.push_back(finish_chunk(doc.doc_id, index++, std::move(chunk_text),
                               /*sentences=*/0, chunk_words));
    if (end == words.size()) break;
  }
  merge_small_tail(out, config_.min_words);
  return out;
}

}  // namespace mcqa::chunk
