#include "corpus/paper_generator.hpp"

#include <algorithm>

#include "corpus/realization.hpp"

namespace mcqa::corpus {

std::string PaperSpec::plain_text() const {
  std::string out = title;
  out += "\n\n";
  for (const auto& section : sections) {
    if (!section.heading.empty()) {
      out += section.heading;
      out += "\n\n";
    }
    for (const auto& s : section.sentences) {
      out += s.text;
      out += ' ';
    }
    if (!section.sentences.empty()) {
      out.back() = '\n';
      out += '\n';
    }
  }
  return out;
}

std::vector<FactId> PaperGenerator::sample_facts(
    const std::vector<TopicId>& topics, std::size_t count,
    util::Rng& rng) const {
  // Importance-weighted sampling without replacement across the paper's
  // topics: high-importance facts appear in many papers (hub facts),
  // low-importance ones are rare — the long tail retrieval must cover.
  std::vector<FactId> pool;
  std::vector<double> weights;
  for (const TopicId t : topics) {
    for (const FactId f : kb_.topic(t).facts) {
      pool.push_back(f);
      weights.push_back(0.05 + kb_.fact(f).importance);
    }
  }
  std::vector<FactId> out;
  while (out.size() < count && !pool.empty()) {
    const std::size_t pick = rng.weighted_pick(weights);
    if (pick >= pool.size()) break;
    out.push_back(pool[pick]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
    weights.erase(weights.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return out;
}

SentenceSpec PaperGenerator::fact_sentence(FactId fid, util::Rng& rng) const {
  const Fact& fact = kb_.fact(fid);
  const int variant = static_cast<int>(
      rng.uniform_int(0, statement_variant_count(fact) - 1));
  SentenceSpec s;
  s.text = realize_statement(kb_, fact, variant);
  s.facts.push_back(fid);
  return s;
}

SentenceSpec PaperGenerator::filler_sentence(util::Rng& rng) const {
  const auto& bank = discourse_bank();
  SentenceSpec s;
  s.text = std::string(bank[rng.bounded(static_cast<std::uint32_t>(bank.size()))]);
  return s;
}

std::string PaperGenerator::make_title(const std::vector<TopicId>& topics,
                                       util::Rng& rng) const {
  static const char* kPrefixes[] = {
      "Mechanisms of", "New insights into", "A quantitative analysis of",
      "Modulation of", "Preclinical evaluation of"};
  const auto& topic_name = kb_.topic(topics.front()).name;
  std::string title = kPrefixes[rng.bounded(5)];
  title += " ";
  title += topic_name;
  if (topics.size() > 1 && rng.chance(0.5)) {
    title += " and its interplay with ";
    title += kb_.topic(topics[1]).name;
  }
  return title;
}

PaperSpec PaperGenerator::generate(std::size_t doc_index, DocKind kind,
                                   util::Rng rng) const {
  PaperSpec spec;
  spec.kind = kind;
  {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%s_%06zu",
                  kind == DocKind::kFullPaper ? "paper" : "abstract",
                  doc_index);
    spec.doc_id = buf;
  }

  // 1-3 topics, Zipf over the topic list so some topics dominate the
  // corpus (matching keyword-crawled literature).
  const std::size_t topic_count =
      kind == DocKind::kAbstract ? 1 : 1 + rng.bounded(3);
  const std::size_t n_topics = kb_.topics().size();
  while (spec.topics.size() < topic_count) {
    const TopicId t = static_cast<TopicId>(rng.zipf(n_topics, 1.05));
    if (std::find(spec.topics.begin(), spec.topics.end(), t) ==
        spec.topics.end()) {
      spec.topics.push_back(t);
    }
  }
  spec.title = make_title(spec.topics, rng);

  const double mean_facts = kind == DocKind::kFullPaper
                                ? config_.facts_per_paper
                                : config_.facts_per_abstract;
  const auto fact_count = static_cast<std::size_t>(std::max(
      1.0, rng.normal(mean_facts, mean_facts * 0.3)));
  spec.facts = sample_facts(spec.topics, fact_count, rng);

  const auto emit_mixed = [&](SectionSpec& section,
                              const std::vector<FactId>& facts) {
    for (const FactId fid : facts) {
      // Filler before the fact sentence with configurable density.
      double debt = config_.filler_ratio;
      while (debt > 0.0 && rng.chance(std::min(1.0, debt))) {
        section.sentences.push_back(filler_sentence(rng));
        debt -= 1.0;
      }
      section.sentences.push_back(fact_sentence(fid, rng));
    }
    if (rng.chance(0.7)) section.sentences.push_back(filler_sentence(rng));
  };

  if (kind == DocKind::kAbstract) {
    SectionSpec abstract;
    abstract.heading = "Abstract";
    emit_mixed(abstract, spec.facts);
    spec.sections.push_back(std::move(abstract));
    return spec;
  }

  // Full paper: distribute facts across Abstract / Intro / Results /
  // Discussion; Methods is pure filler.
  const std::size_t n = spec.facts.size();
  const std::size_t n_abs = std::max<std::size_t>(1, n / 6);
  const std::size_t n_intro = std::max<std::size_t>(1, n / 4);
  const std::size_t n_results = std::max<std::size_t>(1, n / 2);

  auto take = [&](std::size_t& cursor, std::size_t count) {
    std::vector<FactId> out;
    for (std::size_t i = 0; i < count && cursor < spec.facts.size();
         ++i, ++cursor) {
      out.push_back(spec.facts[cursor]);
    }
    return out;
  };

  std::size_t cursor = 0;
  struct SectionPlan {
    const char* heading;
    std::vector<FactId> facts;
  };
  std::vector<SectionPlan> plan;
  plan.push_back({"Abstract", take(cursor, n_abs)});
  plan.push_back({"Introduction", take(cursor, n_intro)});
  plan.push_back({"Materials and Methods", {}});
  plan.push_back({"Results", take(cursor, n_results)});
  plan.push_back({"Discussion", take(cursor, spec.facts.size())});

  for (auto& p : plan) {
    SectionSpec section;
    section.heading = p.heading;
    if (p.facts.empty()) {
      // Methods: 4-8 filler sentences.
      const std::size_t k = 4 + rng.bounded(5);
      for (std::size_t i = 0; i < k; ++i) {
        section.sentences.push_back(filler_sentence(rng));
      }
    } else {
      emit_mixed(section, p.facts);
    }
    spec.sections.push_back(std::move(section));
  }
  return spec;
}

}  // namespace mcqa::corpus
