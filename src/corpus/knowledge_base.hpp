#pragma once
// Ground-truth domain knowledge base.
//
// The reproduction's central substitution: instead of 22,548 real
// radiation/cancer-biology documents whose fact content is unknown, we
// synthesize documents from a knowledge base with *known* fact
// inventory.  Every downstream behaviour the paper measures — can a
// model answer from parametric knowledge, does a retrieved chunk contain
// the needed fact, does a distilled reasoning trace transfer it — becomes
// exactly measurable because facts are first-class objects with ids.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "corpus/term_banks.hpp"
#include "util/rng.hpp"

namespace mcqa::corpus {

using EntityId = std::uint32_t;
using FactId = std::uint32_t;
using TopicId = std::uint32_t;

struct Entity {
  EntityId id = 0;
  EntityKind kind = EntityKind::kGene;
  std::string name;
};

enum class RelationKind {
  kActivates,       // gene -> gene/process
  kInhibits,        // gene/agent -> gene/process
  kPhosphorylates,  // gene -> gene
  kStabilizes,      // gene -> gene
  kIsRequiredFor,   // gene -> process
  kSensitizes,      // agent -> cell type (to radiation)
  kProtects,        // agent -> cell type
  kInduces,         // modality -> process
  kPredominantIn,   // process -> cell type
  kHasQuantity,     // modality/cell type -> quantity, with numeric value
  kHalfLife,        // isotope -> numeric value (days)
};

constexpr int kRelationKindCount = 11;

std::string_view relation_name(RelationKind r);

/// Verb phrase used when realizing the relation in prose.
std::string_view relation_verb(RelationKind r);

struct Fact {
  FactId id = 0;
  TopicId topic = 0;
  RelationKind relation = RelationKind::kActivates;
  EntityId subject = 0;
  EntityId object = 0;      ///< unused for kHalfLife
  double value = 0.0;       ///< numeric payload for quantitative relations
  std::string unit;         ///< e.g. "Gy", "days"
  bool quantitative = false;  ///< has a numeric payload
  bool math = false;        ///< derived questions need arithmetic
  double importance = 0.5;  ///< [0,1]: corpus frequency & prior-knowledge weight
};

struct Topic {
  TopicId id = 0;
  std::string name;
  std::vector<FactId> facts;
};

struct KbConfig {
  std::size_t facts_per_topic = 48;
  std::uint64_t seed = 17;
  /// Fraction of quantitative facts flagged `math` (decay/BED arithmetic).
  double math_fraction = 0.45;
};

class KnowledgeBase {
 public:
  static KnowledgeBase generate(const KbConfig& config);

  const std::vector<Entity>& entities() const { return entities_; }
  const std::vector<Fact>& facts() const { return facts_; }
  const std::vector<Topic>& topics() const { return topics_; }

  const Entity& entity(EntityId id) const { return entities_.at(id); }
  const Fact& fact(FactId id) const { return facts_.at(id); }
  const Topic& topic(TopicId id) const { return topics_.at(id); }

  /// All entity ids of one kind (stable order).
  const std::vector<EntityId>& entities_of_kind(EntityKind kind) const;

  /// Does some fact assert (subject, relation, object)?  Distractor
  /// generation uses this to guarantee distractors are actually false.
  bool relation_holds(EntityId subject, RelationKind relation,
                      EntityId object) const;

  /// Facts whose subject or object is `id`.
  std::vector<FactId> facts_mentioning(EntityId id) const;

  /// Entity lookup by exact name; nullopt when absent.
  std::optional<EntityId> find_entity(std::string_view name) const;

 private:
  std::vector<Entity> entities_;
  std::vector<Fact> facts_;
  std::vector<Topic> topics_;
  std::vector<std::vector<EntityId>> by_kind_;
  std::unordered_set<std::uint64_t> relation_set_;
  std::unordered_map<std::string, EntityId> by_name_;
  std::vector<std::vector<FactId>> facts_by_entity_;
};

}  // namespace mcqa::corpus
