#pragma once
// Synthetic embedding-space corpus for index benchmarking at scales
// where embedding real text would dominate the run (the ~1M-chunk
// ablation sweep).
//
// Real chunk embeddings are not uniform on the sphere — they clump by
// topic, and topic sizes are skewed.  VectorCorpus reproduces that
// shape directly in vector space: `clusters` unit-norm centers, rows
// assigned by a bounded power law (cluster = floor(clusters * u^skew),
// so the biggest topic is ~clusters^(1-1/skew) times the mean — skewed
// but never degenerate), each row = normalize(center + noise * g/|g|·
// ... i.e. the noise norm is `noise`, NOT noise*sqrt(dim); the center
// must dominate or "clusters" collapse into uniform sphere noise).
// Queries draw from the same mixture with their own noise level, so a
// query's true nearest neighbors live in its cluster — the regime
// where IVF cell routing and quantized-code ranking are actually
// exercised (uniform random vectors would make every index look the
// same and recall floors meaningless).  Bounded topic sizes are also
// what makes an exact-rerank recall floor meaningful: a rerank pass
// over c candidates can only cover the true top-k when the query's
// topic (whose rows near-tie in approximate score) fits inside c.
//
// Determinism: every row, center and query comes from an Rng stream
// forked from the corpus seed by a stable id ("row"/i, "center"/c,
// "query"/j), so row(i) is a pure function — blocks can be generated
// in parallel in any order, and two processes sweeping the same config
// build bit-identical indexes.

#include <cstdint>
#include <vector>

#include "embed/embedder.hpp"
#include "util/rng.hpp"

namespace mcqa::parallel {
class ThreadPool;
}

namespace mcqa::corpus {

struct VectorCorpusConfig {
  std::size_t rows = 1'000'000;
  std::size_t dim = 256;
  std::size_t clusters = 32768;  ///< clamped to >= 1
  double skew = 1.3;    ///< topic-size skew; >= 1, 1 = uniform sizes
  float row_noise = 0.35f;      ///< total noise norm around the center
  float query_noise = 0.25f;    ///< queries sit a bit tighter
  std::uint64_t seed = 1234;
};

class VectorCorpus {
 public:
  explicit VectorCorpus(VectorCorpusConfig config = {});

  const VectorCorpusConfig& config() const { return config_; }
  std::size_t rows() const { return config_.rows; }
  std::size_t dim() const { return config_.dim; }

  /// Row i of the corpus (unit-norm).  Pure: depends only on (seed, i).
  embed::Vector row(std::size_t i) const;

  /// Query j (unit-norm), drawn from the same cluster mixture.
  embed::Vector query(std::size_t j) const;

  /// Rows [begin, end) generated across `pool` — result is identical to
  /// calling row(i) sequentially (per-row streams make order moot).
  /// Blocked generation keeps the 1M sweep's peak memory at one block.
  std::vector<embed::Vector> block(std::size_t begin, std::size_t end,
                                   parallel::ThreadPool& pool) const;

  const embed::Vector& center(std::size_t cluster) const {
    return centers_[cluster];
  }

 private:
  embed::Vector sample(util::Rng rng, float noise) const;

  VectorCorpusConfig config_;
  util::Rng row_base_;
  util::Rng query_base_;
  std::vector<embed::Vector> centers_;
};

}  // namespace mcqa::corpus
