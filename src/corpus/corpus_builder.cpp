#include "corpus/corpus_builder.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/thread_pool.hpp"

namespace mcqa::corpus {

std::string_view doc_format_name(DocFormat f) {
  switch (f) {
    case DocFormat::kSpdf: return "spdf";
    case DocFormat::kMarkdown: return "markdown";
    case DocFormat::kPlainText: return "text";
  }
  return "unknown";
}

std::size_t CorpusConfig::paper_count() const {
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(scale * static_cast<double>(kPaperCountFullScale))));
}

std::size_t CorpusConfig::abstract_count() const {
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(
             scale * static_cast<double>(kAbstractCountFullScale))));
}

std::vector<std::size_t> edited_doc_indexes(const CorpusConfig& config,
                                            std::size_t total_documents) {
  if (config.edits.count == 0 || total_documents == 0) return {};
  util::Rng rng(config.edits.seed);
  std::vector<std::size_t> picked = rng.sample_indices(
      total_documents, std::min(config.edits.count, total_documents));
  std::sort(picked.begin(), picked.end());
  return picked;
}

const PaperSpec* SyntheticCorpus::spec_for(std::string_view doc_id) const {
  for (const auto& spec : specs) {
    if (spec.doc_id == doc_id) return &spec;
  }
  return nullptr;
}

SyntheticCorpus build_corpus(const KnowledgeBase& kb,
                             const CorpusConfig& config, std::size_t threads) {
  const std::size_t n_papers = config.paper_count();
  const std::size_t n_abstracts = config.abstract_count();
  const std::size_t total = n_papers + n_abstracts;

  SyntheticCorpus corpus;
  corpus.documents.resize(total);
  corpus.specs.resize(total);

  const PaperGenerator generator(kb, config.paper_gen);
  const util::Rng root(config.seed);

  std::vector<char> edited(total, 0);
  for (const std::size_t i : edited_doc_indexes(config, total)) edited[i] = 1;

  parallel::ThreadPool pool(threads);
  parallel::parallel_for(pool, 0, total, [&](std::size_t i) {
    const bool is_paper = i < n_papers;
    const std::size_t index = is_paper ? i : i - n_papers;
    const DocKind kind = is_paper ? DocKind::kFullPaper : DocKind::kAbstract;

    // Fork per-document streams keyed by identity, not loop order.
    util::Rng doc_rng = root.fork((is_paper ? 0x10000000ULL : 0x20000000ULL) +
                                  index);
    // Edited documents re-draw everything downstream (content, format,
    // render noise) from a revision-keyed stream; the id stays put.
    if (edited[i]) doc_rng = doc_rng.fork("edit").fork(config.edits.revision);
    PaperSpec spec = generator.generate(index, kind, doc_rng.fork("content"));

    RawDocument doc;
    doc.doc_id = spec.doc_id;
    doc.kind = kind;

    util::Rng fmt_rng = doc_rng.fork("format");
    const double fmt_draw = fmt_rng.uniform();
    if (is_paper && fmt_draw < config.markdown_fraction) {
      doc.format = DocFormat::kMarkdown;
      doc.bytes = write_markdown(spec);
    } else if (is_paper &&
               fmt_draw < config.markdown_fraction + config.text_fraction) {
      doc.format = DocFormat::kPlainText;
      doc.bytes = write_text(spec);
    } else {
      doc.format = DocFormat::kSpdf;
      const double difficulty = fmt_rng.uniform();
      SpdfNoise noise = SpdfNoise::clean();
      if (difficulty < config.hard_fraction) {
        noise = SpdfNoise::hard();
      } else if (difficulty < config.hard_fraction + config.moderate_fraction) {
        noise = SpdfNoise::moderate();
      }
      doc.bytes = write_spdf(spec, noise, doc_rng.fork("render"));
    }

    corpus.documents[i] = std::move(doc);
    corpus.specs[i] = std::move(spec);
  });

  return corpus;
}

}  // namespace mcqa::corpus
