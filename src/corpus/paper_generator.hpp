#pragma once
// Synthetic scientific paper synthesis from the knowledge base.
//
// A paper draws 1-3 topics, realizes a Zipf-weighted sample of their
// facts into prose, and pads with discourse filler so fact density
// mirrors real articles (most sentences carry no testable fact).  Every
// sentence records the fact ids it realizes — the ground truth that the
// evaluation uses to decide whether a retrieved chunk actually contained
// the knowledge a question probes.

#include <string>
#include <vector>

#include "corpus/knowledge_base.hpp"
#include "util/rng.hpp"

namespace mcqa::corpus {

struct SentenceSpec {
  std::string text;
  std::vector<FactId> facts;  ///< facts realized by this sentence (usually 0-1)
};

struct SectionSpec {
  std::string heading;
  std::vector<SentenceSpec> sentences;
};

enum class DocKind { kFullPaper, kAbstract };

struct PaperSpec {
  std::string doc_id;       ///< stable id, e.g. "paper_000042"
  std::string title;
  DocKind kind = DocKind::kFullPaper;
  std::vector<TopicId> topics;
  std::vector<SectionSpec> sections;
  std::vector<FactId> facts;  ///< all fact ids realized anywhere in the doc

  /// Concatenated plain text (headings + sentences), the reference
  /// output a perfect parser would recover.
  std::string plain_text() const;
};

struct PaperGenConfig {
  /// Mean number of facts realized in a full paper / an abstract.
  double facts_per_paper = 14.0;
  double facts_per_abstract = 3.0;
  /// Discourse sentences inserted per fact sentence (noise floor).
  double filler_ratio = 1.6;
};

class PaperGenerator {
 public:
  PaperGenerator(const KnowledgeBase& kb, PaperGenConfig config)
      : kb_(kb), config_(config) {}

  /// Deterministic for a given (doc_index, seed_rng state).
  PaperSpec generate(std::size_t doc_index, DocKind kind,
                     util::Rng rng) const;

 private:
  std::vector<FactId> sample_facts(const std::vector<TopicId>& topics,
                                   std::size_t count, util::Rng& rng) const;
  SentenceSpec fact_sentence(FactId fid, util::Rng& rng) const;
  SentenceSpec filler_sentence(util::Rng& rng) const;
  std::string make_title(const std::vector<TopicId>& topics,
                         util::Rng& rng) const;

  const KnowledgeBase& kb_;
  PaperGenConfig config_;
};

}  // namespace mcqa::corpus
