#pragma once
// Fact detection in free text.
//
// After parsing and chunking, chunk text is all that survives; the
// evaluation needs to know which ground-truth facts a chunk (or a
// reasoning trace) still carries.  A fact counts as present when its
// subject surface form, its relation cue, and its object surface form
// (or numeric payload) co-occur in the normalized text.  This tolerates
// parser noise — a dropped ligature breaks a name and correctly
// registers as knowledge lost.

#include <string_view>
#include <vector>

#include "corpus/knowledge_base.hpp"

namespace mcqa::corpus {

class FactMatcher {
 public:
  explicit FactMatcher(const KnowledgeBase& kb);

  /// All facts detected in `text` (any casing/punctuation).
  std::vector<FactId> match(std::string_view text) const;

  /// Is this one fact present in `text`?
  bool contains(std::string_view text, FactId fact) const;

 private:
  bool fact_in_normalized(std::string_view normalized, const Fact& fact) const;

  const KnowledgeBase& kb_;
  std::vector<std::string> entity_norm_;  ///< normalized entity names
};

}  // namespace mcqa::corpus
