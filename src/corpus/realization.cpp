#include "corpus/realization.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace mcqa::corpus {

std::string format_quantity(double value, const std::string& unit) {
  // Two significant-ish decimals, trimmed.
  std::string num = util::format_double(value, value < 10.0 ? 2 : 1);
  while (!num.empty() && num.back() == '0') num.pop_back();
  if (!num.empty() && num.back() == '.') num.pop_back();
  if (unit.empty()) return num;
  return num + " " + unit;
}

int statement_variant_count(const Fact& fact) {
  switch (fact.relation) {
    case RelationKind::kHalfLife: return 3;
    case RelationKind::kHasQuantity: return 3;
    default: return 4;
  }
}

std::string realize_statement(const KnowledgeBase& kb, const Fact& fact,
                              int variant) {
  const std::string& subj = kb.entity(fact.subject).name;
  const auto verb = std::string(relation_verb(fact.relation));

  if (fact.relation == RelationKind::kHalfLife) {
    const std::string q = format_quantity(fact.value, fact.unit);
    switch (variant % 3) {
      case 0: return "The physical half-life of " + subj + " is " + q + ".";
      case 1:
        return "Decay measurements confirm that " + subj +
               " has a physical half-life of " + q + ".";
      default:
        return "Clinical dosimetry for " + subj +
               " assumes a physical half-life of " + q + ".";
    }
  }

  const std::string& obj = kb.entity(fact.object).name;

  if (fact.relation == RelationKind::kHasQuantity) {
    const std::string q = format_quantity(fact.value, fact.unit);
    switch (variant % 3) {
      case 0:
        return "For " + subj + ", " + obj + " is approximately " + q + ".";
      case 1:
        return "Measurements in " + subj + " yield a value of " + q +
               " for " + obj + ".";
      default:
        return "In " + subj + ", " + obj + " was estimated at " + q +
               " under standard assay conditions.";
    }
  }

  switch (variant % 4) {
    case 0:
      return subj + " " + verb + " " + obj +
             " following exposure to ionizing radiation.";
    case 1:
      return "Our data indicate that " + subj + " " + verb + " " + obj +
             " in irradiated cells.";
    case 2:
      return "Consistent with prior reports, " + subj + " " + verb + " " +
             obj + " after radiation exposure.";
    default:
      return "Mechanistic experiments establish that " + subj + " " + verb +
             " " + obj + ".";
  }
}

namespace {

/// Distractor entities: same kind as `like`, for which the relation does
/// NOT hold in the direction asked.
std::vector<std::string> entity_distractors(const KnowledgeBase& kb,
                                            const Fact& fact, bool ask_subject,
                                            util::Rng& rng, std::size_t want) {
  const EntityId anchor = ask_subject ? fact.subject : fact.object;
  const EntityKind kind = kb.entity(anchor).kind;
  std::vector<std::string> out;
  std::vector<EntityId> pool;
  for (const EntityId cand : kb.entities_of_kind(kind)) {
    if (cand == fact.subject || cand == fact.object) continue;
    const bool holds = ask_subject
                           ? kb.relation_holds(cand, fact.relation, fact.object)
                           : kb.relation_holds(fact.subject, fact.relation, cand);
    if (!holds) pool.push_back(cand);
  }
  rng.shuffle(pool);
  for (const EntityId cand : pool) {
    if (out.size() >= want) break;
    out.push_back(kb.entity(cand).name);
  }
  return out;
}

/// Numeric distractors: perturbed but plausible values, all distinct from
/// the correct rendering.
std::vector<std::string> numeric_distractors(double correct,
                                             const std::string& unit,
                                             util::Rng& rng, std::size_t want) {
  const std::string correct_str = format_quantity(correct, unit);
  std::vector<std::string> out;
  static constexpr double kFactors[] = {0.25, 0.4, 0.5, 1.6, 2.0,
                                        2.5,  3.0, 4.0, 0.1, 10.0};
  std::vector<double> factors(std::begin(kFactors), std::end(kFactors));
  rng.shuffle(factors);
  for (const double f : factors) {
    if (out.size() >= want) break;
    const double v = correct * f * rng.uniform(0.92, 1.08);
    const std::string s = format_quantity(v, unit);
    if (s == correct_str) continue;
    if (std::find(out.begin(), out.end(), s) != out.end()) continue;
    out.push_back(s);
  }
  return out;
}

std::string capitalize(std::string s) {
  // Leave mixed-case scientific names alone ("mTOR" must not become
  // "MTOR"); only promote fully-lowercase starts.
  if (s.size() >= 2 && s[0] >= 'a' && s[0] <= 'z' &&
      !(s[1] >= 'A' && s[1] <= 'Z')) {
    s[0] = static_cast<char>(s[0] - 'a' + 'A');
  }
  return s;
}

}  // namespace

QuestionRealization realize_question(const KnowledgeBase& kb, const Fact& fact,
                                     util::Rng& rng,
                                     std::size_t max_distractors) {
  QuestionRealization q;
  const std::string& subj = kb.entity(fact.subject).name;
  const auto verb = std::string(relation_verb(fact.relation));

  if (fact.relation == RelationKind::kHalfLife) {
    if (fact.math) {
      // Arithmetic question: radioactive decay over an integer number of
      // half-lives.  Mirrors the Astro exam's computation items.
      const int halvings = static_cast<int>(rng.uniform_int(1, 3));
      const double initial = static_cast<double>(rng.uniform_int(4, 40)) * 10.0;
      const double elapsed = fact.value * halvings;
      const double remaining = initial / std::pow(2.0, halvings);
      q.math = true;
      q.stem = "A sealed source of " + subj + " has an initial activity of " +
               format_quantity(initial, "MBq") +
               ". Given its physical half-life of " +
               format_quantity(fact.value, fact.unit) +
               ", approximately what activity remains after " +
               format_quantity(elapsed, fact.unit) + "?";
      q.correct = format_quantity(remaining, "MBq");
      q.distractors = numeric_distractors(remaining, "MBq", rng,
                                          max_distractors);
      q.key_principle =
          "Activity falls by a factor of two for every elapsed physical "
          "half-life; after n half-lives a fraction 1/2^n remains.";
    } else {
      q.math = false;
      q.stem = "What is the physical half-life of " + subj + "?";
      q.correct = format_quantity(fact.value, fact.unit);
      q.distractors =
          numeric_distractors(fact.value, fact.unit, rng, max_distractors);
      q.key_principle = "The physical half-life of " + subj + " is " +
                        format_quantity(fact.value, fact.unit) + ".";
    }
    return q;
  }

  const std::string& obj = kb.entity(fact.object).name;

  if (fact.relation == RelationKind::kHasQuantity) {
    q.math = fact.math;
    if (fact.math) {
      // Simple dose-ratio arithmetic on the quantity.
      const double scale = static_cast<double>(rng.uniform_int(2, 4));
      q.stem = "If " + obj + " for " + subj + " is " +
               format_quantity(fact.value, fact.unit) +
               ", what value results when it increases by a factor of " +
               format_quantity(scale, "") + "?";
      q.correct = format_quantity(fact.value * scale, fact.unit);
      q.distractors = numeric_distractors(fact.value * scale, fact.unit, rng,
                                          max_distractors);
      q.key_principle = "Scaling " + obj +
                        " multiplies its numeric value by the given factor.";
    } else {
      q.stem = "What is the approximate value of " + obj + " for " + subj + "?";
      q.correct = format_quantity(fact.value, fact.unit);
      q.distractors =
          numeric_distractors(fact.value, fact.unit, rng, max_distractors);
      q.key_principle = capitalize(obj) + " for " + subj +
                        " is approximately " +
                        format_quantity(fact.value, fact.unit) + ".";
    }
    return q;
  }

  // Relational fact: ask for the subject or the object.
  const bool ask_subject = rng.chance(0.55);
  q.math = false;
  if (ask_subject) {
    const std::string_view kind_word = [&] {
      switch (kb.entity(fact.subject).kind) {
        case EntityKind::kGene: return std::string_view("factor");
        case EntityKind::kAgent: return std::string_view("agent");
        case EntityKind::kModality: return std::string_view("modality");
        case EntityKind::kProcess: return std::string_view("process");
        default: return std::string_view("entity");
      }
    }();
    q.stem = "Which " + std::string(kind_word) + " " + verb + " " + obj +
             " in the setting of ionizing radiation exposure?";
    q.correct = subj;
    q.distractors = entity_distractors(kb, fact, /*ask_subject=*/true, rng,
                                       max_distractors);
  } else {
    q.stem = capitalize(subj) + " " + verb +
             " which of the following after irradiation?";
    q.correct = obj;
    q.distractors = entity_distractors(kb, fact, /*ask_subject=*/false, rng,
                                       max_distractors);
  }
  q.key_principle =
      capitalize(subj) + " " + verb + " " + obj + " after irradiation.";
  return q;
}

}  // namespace mcqa::corpus
