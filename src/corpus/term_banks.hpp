#pragma once
// Domain vocabulary for radiation and cancer biology.
//
// The paper's corpus is 22,548 Semantic Scholar documents retrieved with
// cancer/radiation-biology keywords; ours is synthesized from a knowledge
// base built over these curated term banks.  The banks are grouped by
// entity kind so distractor generation can sample plausible same-kind
// alternatives (the property that makes generated MCQs non-trivial).

#include <string_view>
#include <vector>

namespace mcqa::corpus {

enum class EntityKind {
  kGene,          // proteins / genes (TP53, ATM, ...)
  kProcess,       // biological processes (apoptosis, HR repair, ...)
  kModality,      // radiation modalities / physics concepts
  kCellType,      // cell lines and tissues
  kAgent,         // drugs, sensitizers, protectors
  kQuantity,      // named quantitative parameters (D0, alpha/beta, ...)
  kIsotope,       // radioisotopes with decay data
};

constexpr int kEntityKindCount = 7;

std::string_view entity_kind_name(EntityKind kind);

/// Canonical surface names per kind (stable order).
const std::vector<std::string_view>& term_bank(EntityKind kind);

/// Topic names for the domain (stable order), e.g. "DNA damage response".
const std::vector<std::string_view>& topic_bank();

/// Sub-domain label for a topic (paper §5: benchmarks "organized by
/// sub-domain with metadata linking each question to its source").
/// One of "molecular-mechanisms", "clinical-radiotherapy",
/// "radiation-physics".
std::string_view sub_domain_of_topic(std::string_view topic_name);

/// Discourse fillers used to pad paper sections with realistic prose that
/// carries no facts (tests that chunk retrieval must find the needle).
const std::vector<std::string_view>& discourse_bank();

/// Half-life table for kIsotope entries, aligned by index with
/// term_bank(kIsotope); value in days.
const std::vector<double>& isotope_half_life_days();

}  // namespace mcqa::corpus
