#pragma once
// SPDF: the synthetic PDF-like container format.
//
// The paper ingests real PDFs through AdaParse.  We cannot ship those,
// so documents are rendered into SPDF — a structured container with the
// failure modes that make PDF parsing genuinely hard: line wrapping with
// hyphenation, running headers/footers interleaved with body text,
// ligature corruption, two-column interleaving, and outright truncation.
// The adaptive parser (src/parse) must undo exactly these artifacts,
// which keeps the AdaParse code path honest.

#include <string>

#include "corpus/paper_generator.hpp"
#include "util/rng.hpp"

namespace mcqa::corpus {

struct SpdfNoise {
  double hyphenation = 0.25;   ///< probability a wrapped line hyphenates
  double header_footer = 0.5;  ///< insert running headers/footers
  double ligature = 0.0;       ///< per-word probability of fi/fl corruption
  double two_column = 0.0;     ///< render body in interleaved columns
  double truncate = 0.0;       ///< probability the byte stream is cut short

  /// Difficulty presets roughly matching AdaParse's easy/medium/hard
  /// document classes.
  static SpdfNoise clean();
  static SpdfNoise moderate();
  static SpdfNoise hard();
};

/// Serialize a PaperSpec into SPDF bytes.
std::string write_spdf(const PaperSpec& spec, const SpdfNoise& noise,
                       util::Rng rng);

/// Serialize as Markdown ("# title", "## heading" sections).
std::string write_markdown(const PaperSpec& spec);

/// Serialize as plain text.
std::string write_text(const PaperSpec& spec);

}  // namespace mcqa::corpus
