#include "corpus/vector_corpus.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/thread_pool.hpp"

namespace mcqa::corpus {

VectorCorpus::VectorCorpus(VectorCorpusConfig config)
    : config_(config),
      row_base_(util::Rng(config.seed).fork("vc-row")),
      query_base_(util::Rng(config.seed).fork("vc-query")) {
  config_.clusters = std::max<std::size_t>(config_.clusters, 1);
  const util::Rng center_base = util::Rng(config_.seed).fork("vc-center");
  centers_.reserve(config_.clusters);
  for (std::size_t c = 0; c < config_.clusters; ++c) {
    util::Rng rng = center_base.fork(c);
    embed::Vector v(config_.dim);
    for (float& x : v) x = static_cast<float>(rng.normal());
    embed::normalize(v);
    centers_.push_back(std::move(v));
  }
}

embed::Vector VectorCorpus::sample(util::Rng rng, float noise) const {
  // Bounded power-law topic pick: floor(clusters * u^skew).  Topic 0 is
  // the biggest at ~clusters^(1-1/skew) times the mean size.
  const double u = rng.uniform();
  const auto raw = static_cast<std::size_t>(
      static_cast<double>(config_.clusters) *
      std::pow(u, std::max(config_.skew, 1.0)));
  const std::size_t cluster = std::min(raw, config_.clusters - 1);
  const embed::Vector& center = centers_[cluster];
  // Per-dim noise is scaled by 1/sqrt(dim) so the TOTAL noise norm is
  // ~`noise`: the unit center must dominate, otherwise the mixture
  // degenerates into uniform sphere noise and recall floors are
  // meaningless.
  const float per_dim =
      noise / std::sqrt(static_cast<float>(std::max<std::size_t>(
                 config_.dim, 1)));
  embed::Vector v(config_.dim);
  for (std::size_t d = 0; d < config_.dim; ++d) {
    v[d] = center[d] + per_dim * static_cast<float>(rng.normal());
  }
  embed::normalize(v);
  return v;
}

embed::Vector VectorCorpus::row(std::size_t i) const {
  return sample(row_base_.fork(i), config_.row_noise);
}

embed::Vector VectorCorpus::query(std::size_t j) const {
  return sample(query_base_.fork(j), config_.query_noise);
}

std::vector<embed::Vector> VectorCorpus::block(
    std::size_t begin, std::size_t end, parallel::ThreadPool& pool) const {
  std::vector<embed::Vector> out(end - begin);
  parallel::parallel_for(pool, begin, end, [&](std::size_t i) {
    out[i - begin] = row(i);
  });
  return out;
}

}  // namespace mcqa::corpus
