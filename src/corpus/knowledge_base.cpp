#include "corpus/knowledge_base.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "util/hash.hpp"

namespace mcqa::corpus {

std::string_view relation_name(RelationKind r) {
  switch (r) {
    case RelationKind::kActivates: return "activates";
    case RelationKind::kInhibits: return "inhibits";
    case RelationKind::kPhosphorylates: return "phosphorylates";
    case RelationKind::kStabilizes: return "stabilizes";
    case RelationKind::kIsRequiredFor: return "is_required_for";
    case RelationKind::kSensitizes: return "sensitizes";
    case RelationKind::kProtects: return "protects";
    case RelationKind::kInduces: return "induces";
    case RelationKind::kPredominantIn: return "predominant_in";
    case RelationKind::kHasQuantity: return "has_quantity";
    case RelationKind::kHalfLife: return "half_life";
  }
  return "unknown";
}

std::string_view relation_verb(RelationKind r) {
  switch (r) {
    case RelationKind::kActivates: return "activates";
    case RelationKind::kInhibits: return "inhibits";
    case RelationKind::kPhosphorylates: return "phosphorylates";
    case RelationKind::kStabilizes: return "stabilizes";
    case RelationKind::kIsRequiredFor: return "is required for";
    case RelationKind::kSensitizes: return "radiosensitizes";
    case RelationKind::kProtects: return "protects";
    case RelationKind::kInduces: return "preferentially induces";
    case RelationKind::kPredominantIn: return "predominates in";
    case RelationKind::kHasQuantity: return "is characterized by";
    case RelationKind::kHalfLife: return "has a physical half-life of";
  }
  return "relates to";
}

namespace {

std::uint64_t relation_key(EntityId s, RelationKind r, EntityId o) {
  return (static_cast<std::uint64_t>(s) << 40) |
         (static_cast<std::uint64_t>(r) << 32) | o;
}

/// Valid (subject kind, object kind) signature per relation.
struct RelationSignature {
  RelationKind relation;
  EntityKind subject_kind;
  EntityKind object_kind;
  double weight;  ///< sampling weight within a topic
};

const std::array<RelationSignature, 14>& signatures() {
  static const std::array<RelationSignature, 14> kSigs = {{
      {RelationKind::kActivates, EntityKind::kGene, EntityKind::kGene, 1.2},
      {RelationKind::kActivates, EntityKind::kGene, EntityKind::kProcess, 1.0},
      {RelationKind::kInhibits, EntityKind::kGene, EntityKind::kGene, 1.0},
      {RelationKind::kInhibits, EntityKind::kAgent, EntityKind::kGene, 1.0},
      {RelationKind::kInhibits, EntityKind::kAgent, EntityKind::kProcess, 0.7},
      {RelationKind::kPhosphorylates, EntityKind::kGene, EntityKind::kGene, 1.0},
      {RelationKind::kStabilizes, EntityKind::kGene, EntityKind::kGene, 0.6},
      {RelationKind::kIsRequiredFor, EntityKind::kGene, EntityKind::kProcess, 1.2},
      {RelationKind::kSensitizes, EntityKind::kAgent, EntityKind::kCellType, 0.9},
      {RelationKind::kProtects, EntityKind::kAgent, EntityKind::kCellType, 0.7},
      {RelationKind::kInduces, EntityKind::kModality, EntityKind::kProcess, 0.9},
      {RelationKind::kPredominantIn, EntityKind::kProcess, EntityKind::kCellType, 0.7},
      {RelationKind::kHasQuantity, EntityKind::kModality, EntityKind::kQuantity, 0.8},
      {RelationKind::kHasQuantity, EntityKind::kCellType, EntityKind::kQuantity, 0.8},
  }};
  return kSigs;
}

double quantity_value_for(std::string_view quantity_name, util::Rng& rng) {
  // Plausible value ranges for the named radiobiology quantities.
  if (quantity_name.find("alpha/beta") != std::string_view::npos) {
    return rng.chance(0.5) ? rng.uniform(1.5, 4.5)     // late-responding
                           : rng.uniform(8.0, 12.0);   // early-responding
  }
  if (quantity_name.find("oxygen enhancement") != std::string_view::npos) {
    return rng.uniform(1.2, 3.2);
  }
  if (quantity_name.find("biological effectiveness") != std::string_view::npos) {
    return rng.uniform(1.0, 3.8);
  }
  if (quantity_name.find("surviving fraction") != std::string_view::npos) {
    return rng.uniform(0.2, 0.8);
  }
  if (quantity_name.find("energy transfer") != std::string_view::npos) {
    return rng.uniform(0.2, 180.0);
  }
  return rng.uniform(0.5, 5.0);
}

std::string quantity_unit_for(std::string_view quantity_name) {
  if (quantity_name.find("alpha/beta") != std::string_view::npos) return "Gy";
  if (quantity_name.find("effective dose") != std::string_view::npos) return "Gy";
  if (quantity_name.find("energy transfer") != std::string_view::npos) {
    return "keV/um";
  }
  if (quantity_name.find("inactivation dose") != std::string_view::npos) {
    return "Gy";
  }
  return "";  // dimensionless ratios
}

}  // namespace

const std::vector<EntityId>& KnowledgeBase::entities_of_kind(
    EntityKind kind) const {
  return by_kind_.at(static_cast<std::size_t>(kind));
}

bool KnowledgeBase::relation_holds(EntityId subject, RelationKind relation,
                                   EntityId object) const {
  return relation_set_.contains(relation_key(subject, relation, object));
}

std::vector<FactId> KnowledgeBase::facts_mentioning(EntityId id) const {
  if (id >= facts_by_entity_.size()) return {};
  return facts_by_entity_[id];
}

std::optional<EntityId> KnowledgeBase::find_entity(
    std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

KnowledgeBase KnowledgeBase::generate(const KbConfig& config) {
  KnowledgeBase kb;
  util::Rng rng(config.seed, 0x9d2c5680u);

  // --- Entities: the full term banks, every kind. -------------------------
  kb.by_kind_.resize(kEntityKindCount);
  for (int k = 0; k < kEntityKindCount; ++k) {
    const auto kind = static_cast<EntityKind>(k);
    for (const auto name : term_bank(kind)) {
      Entity e;
      e.id = static_cast<EntityId>(kb.entities_.size());
      e.kind = kind;
      e.name = std::string(name);
      kb.by_kind_[static_cast<std::size_t>(k)].push_back(e.id);
      kb.by_name_.emplace(e.name, e.id);
      kb.entities_.push_back(std::move(e));
    }
  }
  kb.facts_by_entity_.resize(kb.entities_.size());

  // --- Topics ----------------------------------------------------------------
  const auto& topic_names = topic_bank();
  for (std::size_t t = 0; t < topic_names.size(); ++t) {
    Topic topic;
    topic.id = static_cast<TopicId>(t);
    topic.name = std::string(topic_names[t]);
    kb.topics_.push_back(std::move(topic));
  }

  const auto add_fact = [&kb](Fact f) -> bool {
    const std::uint64_t key = relation_key(f.subject, f.relation, f.object);
    if (kb.relation_set_.contains(key)) return false;
    f.id = static_cast<FactId>(kb.facts_.size());
    kb.relation_set_.insert(key);
    kb.topics_[f.topic].facts.push_back(f.id);
    kb.facts_by_entity_[f.subject].push_back(f.id);
    if (f.object < kb.facts_by_entity_.size() && f.object != f.subject &&
        f.relation != RelationKind::kHalfLife) {
      kb.facts_by_entity_[f.object].push_back(f.id);
    }
    kb.facts_.push_back(std::move(f));
    return true;
  };

  // --- Relational facts per topic -------------------------------------------
  std::vector<double> sig_weights;
  for (const auto& sig : signatures()) sig_weights.push_back(sig.weight);

  for (auto& topic : kb.topics_) {
    util::Rng topic_rng = rng.fork(topic.name);
    std::size_t produced = 0;
    std::size_t attempts = 0;
    const std::size_t budget = config.facts_per_topic;
    while (produced < budget && attempts < budget * 30) {
      ++attempts;
      const std::size_t si = topic_rng.weighted_pick(sig_weights);
      const auto& sig = signatures()[si];
      const auto& subjects = kb.entities_of_kind(sig.subject_kind);
      const auto& objects = kb.entities_of_kind(sig.object_kind);
      if (subjects.empty() || objects.empty()) continue;
      // Zipf-skewed entity choice: a few hub entities (TP53, apoptosis)
      // participate in many facts, as in real literature.
      const EntityId subj =
          subjects[topic_rng.zipf(subjects.size(), 1.15)];
      const EntityId obj = objects[topic_rng.zipf(objects.size(), 1.15)];
      if (subj == obj) continue;

      Fact f;
      f.topic = topic.id;
      f.relation = sig.relation;
      f.subject = subj;
      f.object = obj;
      f.importance = topic_rng.uniform(0.05, 1.0);
      if (sig.relation == RelationKind::kHasQuantity) {
        const auto& qname = kb.entity(obj).name;
        f.value = quantity_value_for(qname, topic_rng);
        f.unit = quantity_unit_for(qname);
        f.quantitative = true;
        // Value-recall questions are not "math"; only a subset spawn
        // computation-style questions (handled below for isotopes, and
        // via math_fraction here for dose quantities).
        f.math = topic_rng.chance(config.math_fraction * 0.5);
      }
      produced += add_fact(std::move(f)) ? 1 : 0;
    }
  }

  // --- Isotope half-life facts (the arithmetic question source) -------------
  {
    // Attach them to the brachytherapy/radionuclide topic when present.
    TopicId iso_topic = 0;
    for (const auto& t : kb.topics_) {
      if (t.name.find("radionuclide") != std::string::npos) iso_topic = t.id;
    }
    const auto& isotopes = kb.entities_of_kind(EntityKind::kIsotope);
    const auto& half_lives = isotope_half_life_days();
    util::Rng iso_rng = rng.fork("isotopes");
    for (std::size_t i = 0; i < isotopes.size(); ++i) {
      Fact f;
      f.topic = iso_topic;
      f.relation = RelationKind::kHalfLife;
      f.subject = isotopes[i];
      f.object = isotopes[i];  // self; object unused
      f.value = i < half_lives.size() ? half_lives[i] : 10.0;
      f.unit = "days";
      f.quantitative = true;
      f.math = iso_rng.chance(config.math_fraction * 2.0 > 1.0
                                  ? 0.9
                                  : config.math_fraction * 2.0);
      f.importance = iso_rng.uniform(0.3, 1.0);
      add_fact(std::move(f));
    }
  }

  if (kb.facts_.empty()) {
    throw std::runtime_error("KnowledgeBase::generate produced no facts");
  }
  return kb;
}

}  // namespace mcqa::corpus
