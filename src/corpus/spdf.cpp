#include "corpus/spdf.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace mcqa::corpus {

SpdfNoise SpdfNoise::clean() {
  SpdfNoise n;
  n.hyphenation = 0.05;
  n.header_footer = 0.0;
  n.ligature = 0.0;
  n.two_column = 0.0;
  n.truncate = 0.0;
  return n;
}

SpdfNoise SpdfNoise::moderate() {
  SpdfNoise n;
  n.hyphenation = 0.3;
  n.header_footer = 0.8;
  n.ligature = 0.01;
  n.two_column = 0.0;
  n.truncate = 0.0;
  return n;
}

SpdfNoise SpdfNoise::hard() {
  SpdfNoise n;
  n.hyphenation = 0.45;
  n.header_footer = 1.0;
  n.ligature = 0.04;
  n.two_column = 0.35;
  n.truncate = 0.02;
  return n;
}

namespace {

constexpr std::size_t kLineWidth = 78;

/// Wrap a paragraph into lines, optionally hyphenating long words at the
/// wrap point (the classic PDF extraction hazard).
std::vector<std::string> wrap_paragraph(const std::string& para,
                                        double hyphenation, util::Rng& rng) {
  std::vector<std::string> lines;
  std::string line;
  for (const auto word_view : util::split_ws(para)) {
    std::string word(word_view);
    if (line.empty()) {
      line = word;
      continue;
    }
    if (line.size() + 1 + word.size() <= kLineWidth) {
      line += ' ';
      line += word;
      continue;
    }
    // Wrap point.  Maybe split the word with a hyphen.
    if (word.size() > 6 && rng.chance(hyphenation)) {
      const std::size_t room = kLineWidth > line.size() + 2
                                   ? kLineWidth - line.size() - 2
                                   : 0;
      const std::size_t cut = std::min(word.size() - 3,
                                       std::max<std::size_t>(3, room));
      if (cut >= 3 && cut < word.size()) {
        line += ' ';
        line += word.substr(0, cut);
        line += '-';
        lines.push_back(line);
        line = word.substr(cut);
        continue;
      }
    }
    lines.push_back(line);
    line = word;
  }
  if (!line.empty()) lines.push_back(line);
  return lines;
}

void corrupt_ligatures(std::string& line, double p, util::Rng& rng) {
  // Real PDF extractors drop ligature glyphs; emulate by deleting the
  // "fi"/"fl" pair occasionally.
  if (p <= 0.0) return;
  for (std::size_t i = 0; i + 1 < line.size(); ++i) {
    if (line[i] == 'f' && (line[i + 1] == 'i' || line[i + 1] == 'l') &&
        rng.chance(p)) {
      line.erase(i, 2);
      line.insert(i, 1, '\x01');  // placeholder glyph the parser must handle
    }
  }
}

}  // namespace

std::string write_spdf(const PaperSpec& spec, const SpdfNoise& noise,
                       util::Rng rng) {
  std::string out;
  out += "%SPDF-1.2\n";
  out += "%%Title: " + spec.title + "\n";
  out += "%%DocId: " + spec.doc_id + "\n";
  out += std::string("%%Kind: ") +
         (spec.kind == DocKind::kFullPaper ? "paper" : "abstract") + "\n";

  // Collect all body lines first so pagination can interleave headers.
  std::vector<std::string> body;
  for (const auto& section : spec.sections) {
    if (!section.heading.empty()) {
      body.push_back("<<section " + section.heading + ">>");
    }
    std::string para;
    for (const auto& s : section.sentences) {
      if (!para.empty()) para += ' ';
      para += s.text;
    }
    auto lines = wrap_paragraph(para, noise.hyphenation, rng);
    for (auto& line : lines) {
      corrupt_ligatures(line, noise.ligature, rng);
      body.push_back(std::move(line));
    }
    body.emplace_back();  // blank line between sections
  }

  // Two-column emulation: split a page's lines into halves and
  // interleave them, the way naive text extraction serializes columns.
  const bool columns = rng.chance(noise.two_column);

  constexpr std::size_t kLinesPerPage = 48;
  std::size_t page = 1;
  std::size_t i = 0;
  while (i < body.size()) {
    out += "%%BeginPage " + std::to_string(page) + "\n";
    if (rng.chance(noise.header_footer)) {
      out += "~HDR~ J Radiat Cancer Biol " + spec.doc_id + " | page " +
             std::to_string(page) + "\n";
    }
    const std::size_t end = std::min(body.size(), i + kLinesPerPage);
    if (columns && end - i > 8) {
      const std::size_t half = (end - i) / 2;
      for (std::size_t k = 0; k < half; ++k) {
        out += body[i + k] + "\n";
        if (i + half + k < end) out += body[i + half + k] + "\n";
      }
      if ((end - i) % 2 == 1) out += body[end - 1] + "\n";
    } else {
      for (std::size_t k = i; k < end; ++k) out += body[k] + "\n";
    }
    if (rng.chance(noise.header_footer * 0.6)) {
      out += "~FTR~ (c) Synthetic Radiobiology Consortium\n";
    }
    out += "%%EndPage\n";
    i = end;
    ++page;
  }
  out += "%%EOF\n";

  if (rng.chance(noise.truncate)) {
    // Simulate a corrupt download: cut somewhere in the middle.
    const std::size_t keep =
        out.size() / 4 + rng.bounded(static_cast<std::uint32_t>(out.size() / 2));
    out.resize(keep);
  }
  return out;
}

std::string write_markdown(const PaperSpec& spec) {
  std::string out = "# " + spec.title + "\n\n";
  for (const auto& section : spec.sections) {
    if (!section.heading.empty()) out += "## " + section.heading + "\n\n";
    for (const auto& s : section.sentences) {
      out += s.text;
      out += ' ';
    }
    if (!section.sentences.empty()) {
      out.back() = '\n';
      out += '\n';
    }
  }
  return out;
}

std::string write_text(const PaperSpec& spec) { return spec.plain_text(); }

}  // namespace mcqa::corpus
