#include "corpus/term_banks.hpp"

namespace mcqa::corpus {

std::string_view entity_kind_name(EntityKind kind) {
  switch (kind) {
    case EntityKind::kGene: return "gene";
    case EntityKind::kProcess: return "process";
    case EntityKind::kModality: return "modality";
    case EntityKind::kCellType: return "cell_type";
    case EntityKind::kAgent: return "agent";
    case EntityKind::kQuantity: return "quantity";
    case EntityKind::kIsotope: return "isotope";
  }
  return "unknown";
}

const std::vector<std::string_view>& term_bank(EntityKind kind) {
  static const std::vector<std::string_view> kGenes = {
      "TP53",      "ATM",        "ATR",       "BRCA1",     "BRCA2",
      "RAD51",     "Ku70",       "Ku80",      "DNA-PKcs",  "CHK1",
      "CHK2",      "p21",        "EGFR",      "HIF-1alpha", "VEGF",
      "CDK4",      "CDK6",       "MDM2",      "KRAS",      "MYC",
      "PTEN",      "RB1",        "PARP1",     "53BP1",     "gamma-H2AX",
      "XRCC1",     "XRCC4",      "LIG4",      "ERCC1",     "MRE11",
      "NBS1",      "AKT1",       "mTOR",      "NF-kB",     "STAT3",
      "caspase-3", "caspase-9",  "BAX",       "BCL-2",     "survivin",
      "ATRIP",     "TOPBP1",     "FANCD2",    "WEE1",      "PLK1",
      "AURKA",     "SOD2",       "NRF2",      "KEAP1",     "GPX4"};
  static const std::vector<std::string_view> kProcesses = {
      "apoptosis",
      "necrosis",
      "autophagy",
      "replicative senescence",
      "mitotic catastrophe",
      "homologous recombination",
      "non-homologous end joining",
      "base excision repair",
      "nucleotide excision repair",
      "mismatch repair",
      "single-strand annealing",
      "cell cycle arrest",
      "the G2/M checkpoint",
      "the G1/S checkpoint",
      "the intra-S checkpoint",
      "angiogenesis",
      "the hypoxia response",
      "oxidative stress signaling",
      "lipid peroxidation",
      "the bystander effect",
      "the adaptive response",
      "tumor reoxygenation",
      "accelerated repopulation",
      "cell cycle redistribution",
      "sublethal damage repair",
      "potentially lethal damage repair",
      "immunogenic cell death",
      "ferroptosis",
      "chromothripsis",
      "replication stress"};
  static const std::vector<std::string_view> kModalities = {
      "cobalt-60 gamma rays",
      "6 MV photon beams",
      "proton beams",
      "carbon ion beams",
      "alpha particles",
      "fast neutrons",
      "low-dose-rate brachytherapy",
      "high-dose-rate brachytherapy",
      "stereotactic body radiotherapy",
      "FLASH irradiation",
      "total body irradiation",
      "intensity-modulated radiotherapy",
      "boron neutron capture therapy",
      "targeted radionuclide therapy",
      "ultraviolet radiation",
      "diagnostic X-rays"};
  static const std::vector<std::string_view> kCellTypes = {
      "primary human fibroblasts",
      "peripheral blood lymphocytes",
      "glioblastoma cells",
      "HeLa cells",
      "A549 lung carcinoma cells",
      "MCF-7 breast cancer cells",
      "tumor endothelial cells",
      "jejunal crypt cells",
      "bone marrow stem cells",
      "oral mucosa keratinocytes",
      "hippocampal neural progenitors",
      "cardiomyocytes",
      "alveolar type II pneumocytes",
      "colorectal carcinoma organoids",
      "head and neck squamous carcinoma cells",
      "prostate adenocarcinoma cells"};
  static const std::vector<std::string_view> kAgents = {
      "cisplatin",     "5-fluorouracil", "gemcitabine",  "olaparib",
      "temozolomide",  "cetuximab",      "nimorazole",   "misonidazole",
      "amifostine",    "WR-1065",        "caffeine",     "wortmannin",
      "veliparib",     "AZD6738",        "adavosertib",  "pentoxifylline",
      "hyperbaric oxygen", "metformin",  "curcumin",     "N-acetylcysteine"};
  static const std::vector<std::string_view> kQuantities = {
      "the alpha/beta ratio",
      "the oxygen enhancement ratio",
      "the relative biological effectiveness",
      "the surviving fraction at 2 Gy",
      "the mean inactivation dose",
      "the dose-modifying factor",
      "the therapeutic ratio",
      "the tumor control probability",
      "the normal tissue complication probability",
      "the biologically effective dose",
      "linear energy transfer",
      "the dose rate effect factor"};
  static const std::vector<std::string_view> kIsotopes = {
      "iodine-131",   "iridium-192", "cesium-137", "cobalt-60",
      "radium-223",   "lutetium-177", "yttrium-90", "palladium-103",
      "iodine-125",   "phosphorus-32", "strontium-89", "technetium-99m"};

  switch (kind) {
    case EntityKind::kGene: return kGenes;
    case EntityKind::kProcess: return kProcesses;
    case EntityKind::kModality: return kModalities;
    case EntityKind::kCellType: return kCellTypes;
    case EntityKind::kAgent: return kAgents;
    case EntityKind::kQuantity: return kQuantities;
    case EntityKind::kIsotope: return kIsotopes;
  }
  static const std::vector<std::string_view> kEmpty;
  return kEmpty;
}

const std::vector<double>& isotope_half_life_days() {
  // Aligned with term_bank(kIsotope).  Approximate physical half-lives.
  static const std::vector<double> kHalfLives = {
      8.02,     // iodine-131
      73.8,     // iridium-192
      11020.0,  // cesium-137 (30.17 y)
      1925.0,   // cobalt-60 (5.27 y)
      11.4,     // radium-223
      6.65,     // lutetium-177
      2.67,     // yttrium-90
      17.0,     // palladium-103
      59.4,     // iodine-125
      14.3,     // phosphorus-32
      50.6,     // strontium-89
      0.25,     // technetium-99m (6.01 h)
  };
  return kHalfLives;
}

const std::vector<std::string_view>& topic_bank() {
  static const std::vector<std::string_view> kTopics = {
      "DNA damage response and repair",
      "cell cycle checkpoints after irradiation",
      "radiation-induced cell death pathways",
      "tumor hypoxia and reoxygenation",
      "radiosensitizers and radioprotectors",
      "high-LET particle radiobiology",
      "fractionation and the linear-quadratic model",
      "normal tissue toxicity and late effects",
      "radiation carcinogenesis and genomic instability",
      "brachytherapy and radionuclide therapy",
      "immune modulation by radiotherapy",
      "stem cells and tissue regeneration after exposure",
      "molecular targeting combined with radiation",
      "radiation biodosimetry and biomarkers",
      "FLASH and spatially fractionated radiotherapy",
      "radiation effects on the tumor microenvironment"};
  return kTopics;
}

std::string_view sub_domain_of_topic(std::string_view topic_name) {
  // Physics-flavoured topics.
  for (const auto key : {"LET", "fractionation", "linear-quadratic",
                         "FLASH", "biodosimetry"}) {
    if (topic_name.find(key) != std::string_view::npos) {
      return "radiation-physics";
    }
  }
  // Clinically-flavoured topics.
  for (const auto key : {"radiosensitizers", "toxicity", "brachytherapy",
                         "radionuclide", "immune", "targeting",
                         "microenvironment"}) {
    if (topic_name.find(key) != std::string_view::npos) {
      return "clinical-radiotherapy";
    }
  }
  return "molecular-mechanisms";
}

const std::vector<std::string_view>& discourse_bank() {
  static const std::vector<std::string_view> kDiscourse = {
      "These observations are consistent with earlier reports in "
      "comparable experimental systems.",
      "Further mechanistic studies will be required to delineate the "
      "precise signaling intermediates involved.",
      "Taken together, the data support a model in which multiple "
      "pathways converge on a common effector program.",
      "Experiments were performed in triplicate and repeated on at least "
      "three independent occasions.",
      "The clinical implications of these findings remain to be "
      "established in prospective cohorts.",
      "Statistical significance was assessed with two-sided tests and a "
      "type I error rate of five percent.",
      "Samples were processed within thirty minutes of collection to "
      "minimize ex vivo artifacts.",
      "A growing body of literature has addressed this question with "
      "conflicting conclusions.",
      "We next asked whether the observed phenotype generalizes across "
      "cell lineages.",
      "The limitations of the present study include modest sample size "
      "and single-institution accrual.",
      "Dose calculations were verified independently by two medical "
      "physicists.",
      "Image analysis was automated with an in-house pipeline to avoid "
      "observer bias.",
      "These results extend prior work by isolating the contribution of "
      "individual pathway components.",
      "Control cultures were sham-irradiated and handled identically in "
      "all other respects.",
      "Future work should examine the durability of the response beyond "
      "the acute window."};
  return kDiscourse;
}

}  // namespace mcqa::corpus
