#pragma once
// Whole-corpus synthesis: the reproduction's stand-in for the Semantic
// Scholar download stage.
//
// Produces raw document byte streams (SPDF / Markdown / plain text) plus
// the ground-truth PaperSpecs.  The paper's case study used 14,115
// full-text papers and 8,433 abstracts; the builder takes a scale factor
// so benches can run a proportionally shrunken corpus with the same
// paper:abstract ratio.

#include <cstddef>
#include <string>
#include <vector>

#include "corpus/knowledge_base.hpp"
#include "corpus/paper_generator.hpp"
#include "corpus/spdf.hpp"

namespace mcqa::corpus {

enum class DocFormat { kSpdf, kMarkdown, kPlainText };

std::string_view doc_format_name(DocFormat f);

struct RawDocument {
  std::string doc_id;
  DocFormat format = DocFormat::kSpdf;
  DocKind kind = DocKind::kFullPaper;
  std::string bytes;
};

/// Deterministic corpus-edit generator: when `count > 0`, that many
/// documents (sampled without replacement from `seed`) are re-drawn from
/// an edit-forked RNG stream keyed by `revision`.  Document ids and the
/// paper:abstract split are untouched — only the selected documents'
/// content/format/noise change — so per-document artifact keys stay
/// stable for the other N−K documents.  Bumping `revision` re-edits the
/// same index set with fresh content.
struct CorpusEdits {
  std::uint64_t seed = 20250807;
  std::size_t count = 0;
  std::uint64_t revision = 0;
};

struct CorpusConfig {
  /// Paper-scale counts at scale = 1.0.
  static constexpr std::size_t kPaperCountFullScale = 14115;
  static constexpr std::size_t kAbstractCountFullScale = 8433;

  double scale = 0.025;  ///< fraction of the paper's corpus size
  std::uint64_t seed = 20250706;
  PaperGenConfig paper_gen;
  /// Mix of parse difficulty across documents (must sum to <= 1; the
  /// remainder is "clean").
  double moderate_fraction = 0.45;
  double hard_fraction = 0.15;
  /// Fraction of full papers delivered as Markdown / plain text instead
  /// of SPDF (the framework accepts all three, per the paper).
  double markdown_fraction = 0.08;
  double text_fraction = 0.05;
  CorpusEdits edits;

  std::size_t paper_count() const;
  std::size_t abstract_count() const;
};

/// The sorted document indexes `config.edits` selects out of
/// `total_documents` (empty when edits are inactive).  Pure function of
/// (edits.seed, edits.count, total) — the revision only changes content.
std::vector<std::size_t> edited_doc_indexes(const CorpusConfig& config,
                                            std::size_t total_documents);

struct SyntheticCorpus {
  std::vector<RawDocument> documents;
  std::vector<PaperSpec> specs;  ///< aligned with `documents`

  const PaperSpec* spec_for(std::string_view doc_id) const;
};

/// Build the corpus.  Deterministic in config.seed; each document's
/// generation forks an independent RNG stream keyed by its id so the
/// result is identical regardless of generation order or thread count.
SyntheticCorpus build_corpus(const KnowledgeBase& kb,
                             const CorpusConfig& config,
                             std::size_t threads = 0);

}  // namespace mcqa::corpus
