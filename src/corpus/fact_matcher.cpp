#include "corpus/fact_matcher.hpp"

#include "corpus/realization.hpp"
#include "text/normalize.hpp"

namespace mcqa::corpus {

namespace {

/// Word-boundary-ish substring search over normalized text.
bool contains_phrase(std::string_view haystack, std::string_view phrase) {
  if (phrase.empty()) return false;
  std::size_t pos = 0;
  while ((pos = haystack.find(phrase, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || haystack[pos - 1] == ' ';
    const std::size_t end = pos + phrase.size();
    const bool right_ok = end == haystack.size() || haystack[end] == ' ';
    if (left_ok && right_ok) return true;
    ++pos;
  }
  return false;
}

}  // namespace

FactMatcher::FactMatcher(const KnowledgeBase& kb) : kb_(kb) {
  entity_norm_.reserve(kb.entities().size());
  for (const auto& e : kb.entities()) {
    entity_norm_.push_back(text::normalize_for_matching(e.name));
  }
}

bool FactMatcher::fact_in_normalized(std::string_view normalized,
                                     const Fact& fact) const {
  const std::string& subj = entity_norm_[fact.subject];
  if (!contains_phrase(normalized, subj)) return false;

  if (fact.relation == RelationKind::kHalfLife) {
    // Subject + the phrase "half-life" + the numeric value.
    if (normalized.find("half-life") == std::string_view::npos &&
        normalized.find("half life") == std::string_view::npos) {
      return false;
    }
    const std::string value_norm =
        text::normalize_for_matching(format_quantity(fact.value, fact.unit));
    return contains_phrase(normalized, value_norm);
  }

  const std::string& obj = entity_norm_[fact.object];
  if (!contains_phrase(normalized, obj)) return false;

  if (fact.relation == RelationKind::kHasQuantity) {
    const std::string value_norm =
        text::normalize_for_matching(format_quantity(fact.value, fact.unit));
    return contains_phrase(normalized, value_norm);
  }

  // Relational fact: require a cue word from the verb phrase so that a
  // chunk merely mentioning both entities in unrelated sentences doesn't
  // count as carrying the relation.
  const std::string verb_norm =
      text::normalize_for_matching(relation_verb(fact.relation));
  // First word of the verb phrase is the discriminative cue
  // ("activates", "inhibits", "radiosensitizes", ...).
  const std::size_t space = verb_norm.find(' ');
  const std::string_view cue =
      space == std::string::npos ? std::string_view(verb_norm)
                                 : std::string_view(verb_norm).substr(0, space);
  return normalized.find(cue) != std::string_view::npos;
}

std::vector<FactId> FactMatcher::match(std::string_view txt) const {
  const std::string normalized = text::normalize_for_matching(txt);
  std::vector<FactId> out;
  for (const auto& fact : kb_.facts()) {
    if (fact_in_normalized(normalized, fact)) out.push_back(fact.id);
  }
  return out;
}

bool FactMatcher::contains(std::string_view txt, FactId fact) const {
  const std::string normalized = text::normalize_for_matching(txt);
  return fact_in_normalized(normalized, kb_.fact(fact));
}

}  // namespace mcqa::corpus
